(* The benchmark harness.

   1. Regenerates every table and figure of the paper's evaluation
      (Table 1, Figs 9-13, and the §5.3 summary numbers), printing the
      same rows/series the paper reports.
   2. Registers one Bechamel micro-benchmark per pipeline stage /
      experiment so the cost of each component is measurable.

   Usage:
     bench/main.exe                 -- everything
     bench/main.exe table1 fig9 ... -- selected experiments
     bench/main.exe micro           -- only the Bechamel micro-benchmarks *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks: one per experiment's dominant pipeline stage. *)

let bug = Bugbase.Pbzip2.bug

let failure =
  lazy (snd (Option.get (Bugbase.Common.find_target_failure bug)))

let slice = lazy (Slicing.Slicer.compute bug.program (Lazy.force failure))

let micro_tests () =
  let failure = Lazy.force failure in
  let slice = Lazy.force slice in
  let tracked = Slicing.Slicer.take slice 8 in
  let plan = Instrument.Place.compute bug.program tracked in
  let workload = bug.workload_of 0 in
  (* A pre-recorded PT stream for the decode benchmark. *)
  let counters = Exec.Cost.create () in
  let pt = Hw.Pt.create counters in
  let wp = Hw.Watchpoint.create counters in
  let hooks = Instrument.Runtime.hooks ~data_via_pt:false ~plan ~pt ~wp ~wp_allowed:[] in
  let _ = Exec.Interp.run ~hooks ~counters bug.program workload in
  Hw.Pt.finish pt;
  let packets = Hw.Pt.packets_of pt 1 in
  (* A set of client observations for the ranking benchmark. *)
  let observations =
    List.init 20 (fun c ->
        let report =
          Gist.Client.run_one ~plan ~wp_allowed:plan.Instrument.Plan.wp_targets
            ~preempt_prob:bug.preempt_prob bug.program (bug.workload_of c)
        in
        Predict.Stats.
          {
            predictors =
              Predict.Predictor.of_run ~tracked
                ~branch_outcomes:report.r_branches ~traps:report.r_traps ();
            failing = Gist.Client.failing report;
          })
  in
  [
    Test.make ~name:"table1/interpreter-run (one production run)"
      (Staged.stage (fun () -> Exec.Interp.run bug.program workload));
    Test.make ~name:"table1/static-slice (Algorithm 1)"
      (Staged.stage (fun () -> Slicing.Slicer.compute bug.program failure));
    Test.make ~name:"table1/instrumentation-plan (Fig 4 placement)"
      (Staged.stage (fun () -> Instrument.Place.compute bug.program tracked));
    Test.make ~name:"fig13/pt-decode (trace reconstruction)"
      (Staged.stage (fun () -> Hw.Pt.decode bug.program packets));
    Test.make ~name:"fig9/predictor-ranking (F-measure)"
      (Staged.stage (fun () -> Predict.Stats.rank observations));
    Test.make ~name:"fig11/monitored-client (one Gist-tracked run)"
      (Staged.stage (fun () ->
           Gist.Client.run_one ~plan
             ~wp_allowed:plan.Instrument.Plan.wp_targets
             ~preempt_prob:bug.preempt_prob bug.program workload));
    Test.make ~name:"fig13/rr-record (record/replay baseline)"
      (Staged.stage (fun () ->
           Baseline.Rr.record ~preempt_prob:bug.preempt_prob bug.program
             workload));
  ]

(* Per-stage ns/run estimates as data, shared by the [micro] printer
   and the machine-readable [perf] report. *)
let micro_results () =
  let tests = Test.make_grouped ~name:"gist" (micro_tests ()) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.map (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (x :: _) -> x
        | _ -> nan
      in
      (name, ns))

let run_micro () =
  print_endline "Micro-benchmarks (Bechamel, monotonic clock):";
  List.iter
    (fun (name, ns) -> Printf.printf "  %-55s %12.0f ns/run\n" name ns)
    (micro_results ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* PR 2 performance report: sequential vs parallel end-to-end
   diagnosis, cold vs warm instrumentation placement (the analysis
   cache), and the per-stage micro numbers, emitted as BENCH_PR2.json
   with a [vs_pr1] block comparing against the committed
   BENCH_PR1.json baseline. *)

let time_wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_num f = if Float.is_finite f then f else 0.0

(* Every ["key": number] pair of a flat JSON report (the baseline
   BENCH_PR1.json), by a plain character scan -- no JSON dependency.
   Object-valued keys simply yield no number and are skipped. *)
let json_numbers path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> '"' do incr j done;
      let key = String.sub s (!i + 1) (!j - !i - 1) in
      let k = ref (!j + 1) in
      while !k < n && (s.[!k] = ' ' || s.[!k] = ':') do incr k done;
      let m = ref !k in
      while
        !m < n
        && (match s.[!m] with
            | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
            | _ -> false)
      do
        incr m
      done;
      (if !m > !k then
         match float_of_string_opt (String.sub s !k (!m - !k)) with
         | Some v -> out := (key, v) :: !out
         | None -> ());
      i := max (!j + 1) !m
    end
    else incr i
  done;
  List.rev !out

let pr1_baseline () =
  let candidates =
    [
      "BENCH_PR1.json";
      "../BENCH_PR1.json";
      "../../BENCH_PR1.json";
      "../../../BENCH_PR1.json";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> json_numbers path
  | None -> []

let diagnose_all ?pool bugs =
  List.iter
    (fun b -> ignore (Experiments.Harness.diagnose_bug ?pool b))
    bugs

let placement_timings (bug : Bugbase.Common.t) ~reps =
  let _, failure = Option.get (Bugbase.Common.find_target_failure bug) in
  let tracked =
    Slicing.Slicer.take (Slicing.Slicer.compute bug.program failure) 8
  in
  let cold = ref 0.0 and warm = ref 0.0 in
  for _ = 1 to reps do
    Analysis.Cache.clear ();
    let _, c = time_wall (fun () -> Instrument.Place.compute bug.program tracked) in
    let _, w = time_wall (fun () -> Instrument.Place.compute bug.program tracked) in
    cold := !cold +. c;
    warm := !warm +. w
  done;
  (!cold /. float_of_int reps, !warm /. float_of_int reps)

let run_perf ?(smoke = false) () =
  let jobs = max 2 (Parallel.Jobs.default ()) in
  let bugs =
    if smoke then
      List.filteri (fun i _ -> i < 2) Bugbase.Registry.all
    else Bugbase.Registry.all
  in
  let micro = if smoke then [] else micro_results () in
  (* Warm the analysis cache and allocator once, untimed, so the
     sequential and parallel passes see the same steady state. *)
  diagnose_all [ List.hd bugs ];
  let (), seq_s = time_wall (fun () -> diagnose_all bugs) in
  let (), par_s =
    Parallel.Pool.with_pool ~jobs (fun pool ->
        time_wall (fun () -> diagnose_all ~pool bugs))
  in
  let speedup = if par_s > 0.0 then seq_s /. par_s else 0.0 in
  let reps = if smoke then 3 else 10 in
  let cold_s, warm_s = placement_timings Bugbase.Pbzip2.bug ~reps in
  let reduction =
    if cold_s > 0.0 then 100.0 *. (cold_s -. warm_s) /. cold_s else 0.0
  in
  Printf.printf
    "PR2 perf: %d bugs diagnosed, sequential %.3fs, parallel (%d domains \
     requested) %.3fs, speedup %.2fx\n"
    (List.length bugs) seq_s jobs par_s speedup;
  Printf.printf
    "PR2 perf: placement cold %.1fus, warm (cached analysis) %.1fus, \
     reduction %.1f%%\n"
    (1e6 *. cold_s) (1e6 *. warm_s) reduction;
  if not smoke then begin
    let pr1 = pr1_baseline () in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Printf.bprintf buf "  \"pr\": 2,\n";
    Printf.bprintf buf "  \"available_cores\": %d,\n"
      (Parallel.Jobs.available ());
    Printf.bprintf buf "  \"jobs\": %d,\n" jobs;
    Buffer.add_string buf "  \"micro_ns_per_op\": {\n";
    List.iteri
      (fun i (name, ns) ->
        Printf.bprintf buf "    \"%s\": %.0f%s\n" (json_escape name)
          (json_num ns)
          (if i = List.length micro - 1 then "" else ","))
      micro;
    Buffer.add_string buf "  },\n";
    Printf.bprintf buf
      "  \"diagnosis\": {\"bugs\": %d, \"sequential_s\": %.4f, \
       \"parallel_s\": %.4f, \"speedup\": %.3f},\n"
      (List.length bugs) seq_s par_s speedup;
    Printf.bprintf buf
      "  \"placement\": {\"cold_us\": %.2f, \"warm_us\": %.2f, \
       \"cache_reduction_pct\": %.1f}%s\n"
      (1e6 *. cold_s) (1e6 *. warm_s) reduction
      (if pr1 = [] then "" else ",");
    (* Speedups vs the committed PR1 baseline: baseline / this-run, so
       > 1.0 means this PR is faster. *)
    if pr1 <> [] then begin
      Buffer.add_string buf "  \"vs_pr1\": {\n";
      Buffer.add_string buf "    \"micro_speedup\": {\n";
      let comparable =
        List.filter_map
          (fun (name, ns) ->
            match List.assoc_opt name pr1 with
            | Some base when base > 0.0 && ns > 0.0 ->
              Some (name, base /. ns)
            | _ -> None)
          micro
      in
      List.iteri
        (fun i (name, sp) ->
          Printf.bprintf buf "      \"%s\": %.3f%s\n" (json_escape name)
            (json_num sp)
            (if i = List.length comparable - 1 then "" else ","))
        comparable;
      Buffer.add_string buf "    },\n";
      let vs key now =
        match List.assoc_opt key pr1 with
        | Some base when base > 0.0 && now > 0.0 -> base /. now
        | _ -> 0.0
      in
      Printf.bprintf buf
        "    \"diagnosis_sequential_speedup\": %.3f,\n"
        (json_num (vs "sequential_s" seq_s));
      Printf.bprintf buf
        "    \"diagnosis_parallel_speedup\": %.3f\n"
        (json_num (vs "parallel_s" par_s));
      Buffer.add_string buf "  }\n"
    end;
    Buffer.add_string buf "}\n";
    let oc = open_out "BENCH_PR2.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "PR2 perf: wrote %s/BENCH_PR2.json\n%!" (Sys.getcwd ())
  end

(* ------------------------------------------------------------------ *)
(* Fuzzer throughput: labelled-bug generation alone, then a small
   campaign (generate, probe, diagnose, score) sequential vs
   parallel. *)

let run_fuzz () =
  let n_gen = 500 in
  let patterns = Array.of_list Fuzz.Gen.all_patterns in
  let (), gen_s =
    time_wall (fun () ->
        for i = 0 to n_gen - 1 do
          ignore
            (Fuzz.Gen.generate patterns.(i mod Array.length patterns) i)
        done)
  in
  let count = 54 in
  let r, seq_s =
    time_wall (fun () ->
        Fuzz.Runner.run ~jobs:0 ~shrink:false ~seed:7 ~count ())
  in
  let jobs = max 2 (Parallel.Jobs.default ()) in
  let _, par_s =
    time_wall (fun () ->
        Fuzz.Runner.run ~jobs ~shrink:false ~seed:7 ~count ())
  in
  Printf.printf "fuzz: generation %.0f cases/s\n"
    (float_of_int n_gen /. gen_s);
  Printf.printf
    "fuzz: campaign of %d (accuracy %.3f): sequential %.3fs, parallel \
     (%d jobs) %.3fs, speedup %.2fx\n"
    count
    (Fuzz.Runner.overall_accuracy r)
    seq_s jobs par_s
    (if par_s > 0.0 then seq_s /. par_s else 0.0)

(* ------------------------------------------------------------------ *)
(* PR 4 robustness report: the cost of the always-on report protocol
   (seal + validate on every delivery) at fault rate 0 — the < 2%
   budget — and the fleet's behaviour under a seeded fault sweep,
   emitted as BENCH_PR4.json with a [vs_pr2] block against the
   committed BENCH_PR2.json baseline. *)

let pr2_baseline () =
  let candidates =
    [
      "BENCH_PR2.json";
      "../BENCH_PR2.json";
      "../../BENCH_PR2.json";
      "../../../BENCH_PR2.json";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> json_numbers path
  | None -> []

let run_faults ?(smoke = false) () =
  let bug = Bugbase.Pbzip2.bug in
  let _, failure = Option.get (Bugbase.Common.find_target_failure bug) in
  let tracked =
    Slicing.Slicer.take (Slicing.Slicer.compute bug.program failure) 8
  in
  let plan = Instrument.Place.compute bug.program tracked in
  let plan_id = Instrument.Plan.id plan in
  let n_instrs =
    1
    + List.fold_left
        (fun m (i : Ir.Types.instr) -> max m i.iid)
        0
        (Ir.Program.all_instrs bug.program)
  in
  let client () =
    Gist.Client.run_one ~plan ~wp_allowed:plan.Instrument.Plan.wp_targets
      ~preempt_prob:bug.preempt_prob bug.program (bug.workload_of 0)
  in
  let report = client () in
  (* Protocol cost per delivery, relative to the client run it wraps:
     this ratio is the validation overhead a zero-fault fleet pays. *)
  let reps = if smoke then 300 else 3000 in
  let (), run_s = time_wall (fun () ->
      for _ = 1 to reps / 10 do ignore (client ()) done)
  in
  let (), proto_s = time_wall (fun () ->
      for c = 1 to reps do
        let env = Gist.Protocol.seal ~client:c ~plan_id report in
        ignore (Gist.Protocol.validate ~n_instrs ~plan_id env)
      done)
  in
  let run_ns = 1e9 *. run_s /. float_of_int (reps / 10) in
  let proto_ns = 1e9 *. proto_s /. float_of_int reps in
  let per_run_pct = 100.0 *. proto_ns /. run_ns in
  Printf.printf
    "PR4 faults: seal+validate %.0f ns vs client run %.0f ns \
     (%.3f%% of a delivery)\n"
    proto_ns run_ns per_run_pct;
  (* End-to-end fault sweep over the whole registry. *)
  let bugs =
    if smoke then List.filteri (fun i _ -> i < 2) Bugbase.Registry.all
    else Bugbase.Registry.all
  in
  let sweep_rates = [ 0.0; 0.05; 0.10 ] in
  let sweep =
    List.map
      (fun rate ->
        let stats = ref Gist.Server.{
            f_dispatched = 0; f_delivered = 0; f_valid = 0; f_lost = 0;
            f_rejected = 0; f_retried = 0; f_quarantined = 0;
            f_degraded_iters = 0; f_by_kind = []; f_by_reason = [] }
        in
        let online = ref 0.0 in
        let (), wall_s =
          time_wall (fun () ->
              List.iter
                (fun (b : Bugbase.Common.t) ->
                  let _, failure =
                    Option.get (Bugbase.Common.find_target_failure b)
                  in
                  let config =
                    {
                      Gist.Config.default with
                      preempt_prob = b.preempt_prob;
                      fault_rates = Faults.Fault.spread rate;
                      fault_seed = 42;
                    }
                  in
                  let d =
                    Gist.Server.diagnose ~config
                      ~oracle:(Experiments.Oracle.for_bug b)
                      ~bug_name:b.name ~failure_type:b.failure_type
                      ~program:b.program ~workload_of:b.workload_of ~failure
                      ()
                  in
                  let f = d.Gist.Server.fleet in
                  online := !online +. d.Gist.Server.online_time_s;
                  stats :=
                    Gist.Server.{
                      f_dispatched = !stats.f_dispatched + f.f_dispatched;
                      f_delivered = !stats.f_delivered + f.f_delivered;
                      f_valid = !stats.f_valid + f.f_valid;
                      f_lost = !stats.f_lost + f.f_lost;
                      f_rejected = !stats.f_rejected + f.f_rejected;
                      f_retried = !stats.f_retried + f.f_retried;
                      f_quarantined = !stats.f_quarantined + f.f_quarantined;
                      f_degraded_iters =
                        !stats.f_degraded_iters + f.f_degraded_iters;
                      f_by_kind = []; f_by_reason = [] })
                bugs)
        in
        let f = !stats in
        Printf.printf
          "PR4 faults: rate %4.0f%%: %d bugs in %.3fs (simulated online \
           %.1fs) -- %d dispatched, %d lost, %d rejected, %d retried, %d \
           quarantined, %d degraded iterations\n"
          (100.0 *. rate) (List.length bugs) wall_s !online
          f.Gist.Server.f_dispatched f.Gist.Server.f_lost
          f.Gist.Server.f_rejected f.Gist.Server.f_retried
          f.Gist.Server.f_quarantined f.Gist.Server.f_degraded_iters;
        (rate, wall_s, !online, f))
      sweep_rates
  in
  (* The budget number: the protocol's share of a whole zero-fault
     diagnosis — per-delivery seal+validate cost times deliveries,
     over the measured wall time (a diagnosis also probes for the
     failure, slices, places instrumentation and ranks predictors, so
     this is far below the per-delivery ratio). *)
  let overhead_pct =
    match sweep with
    | (0.0, wall_s, _, f) :: _ when wall_s > 0.0 ->
      100.0
      *. (float_of_int f.Gist.Server.f_dispatched *. proto_ns /. 1e9)
      /. wall_s
    | _ -> 0.0
  in
  Printf.printf
    "PR4 faults: validation overhead at rate 0: %.3f%% of end-to-end \
     diagnosis (budget 2%%)\n"
    overhead_pct;
  (* Campaign accuracy at the acceptance point: 10% aggregate. *)
  let count = if smoke then 9 else 27 in
  let jobs = max 2 (Parallel.Jobs.default ()) in
  let campaign, campaign_s =
    time_wall (fun () ->
        Fuzz.Runner.run ~jobs ~shrink:false
          ~faults:(Faults.Fault.spread 0.10, 42)
          ~seed:42 ~count ())
  in
  Printf.printf
    "PR4 faults: campaign of %d at 10%% faults: accuracy %.3f \
     (worst pattern %.3f) in %.3fs\n"
    count
    (Fuzz.Runner.overall_accuracy campaign)
    (Fuzz.Runner.min_pattern_accuracy campaign)
    campaign_s;
  if not smoke then begin
    let pr2 = pr2_baseline () in
    let zero_wall =
      match sweep with (0.0, w, _, _) :: _ -> w | _ -> 0.0
    in
    let buf = Buffer.create 2048 in
    Buffer.add_string buf "{\n";
    Printf.bprintf buf "  \"pr\": 4,\n";
    Printf.bprintf buf "  \"available_cores\": %d,\n"
      (Parallel.Jobs.available ());
    Printf.bprintf buf
      "  \"protocol\": {\"seal_validate_ns\": %.0f, \"client_run_ns\": \
       %.0f, \"per_delivery_pct\": %.4f, \"validation_overhead_pct\": \
       %.4f, \"budget_pct\": 2.0},\n"
      (json_num proto_ns) (json_num run_ns) (json_num per_run_pct)
      (json_num overhead_pct);
    Buffer.add_string buf "  \"sweep\": [\n";
    List.iteri
      (fun i (rate, wall_s, online, (f : Gist.Server.fleet_stats)) ->
        Printf.bprintf buf
          "    {\"aggregate_rate\": %.2f, \"bugs\": %d, \"wall_s\": %.4f, \
           \"online_s\": %.2f, \"dispatched\": %d, \"lost\": %d, \
           \"rejected\": %d, \"retried\": %d, \"quarantined\": %d, \
           \"degraded_iterations\": %d}%s\n"
          rate (List.length bugs) (json_num wall_s) (json_num online)
          f.f_dispatched f.f_lost f.f_rejected f.f_retried f.f_quarantined
          f.f_degraded_iters
          (if i = List.length sweep - 1 then "" else ","))
      sweep;
    Buffer.add_string buf "  ],\n";
    Printf.bprintf buf
      "  \"campaign\": {\"count\": %d, \"aggregate_rate\": 0.10, \
       \"accuracy\": %.4f, \"min_pattern_accuracy\": %.4f, \"wall_s\": \
       %.4f}%s\n"
      count
      (json_num (Fuzz.Runner.overall_accuracy campaign))
      (json_num (Fuzz.Runner.min_pattern_accuracy campaign))
      (json_num campaign_s)
      (if pr2 = [] then "" else ",");
    (* The zero-fault sweep repeats PR2's sequential diagnosis of the
       whole registry, now with every report sealed and validated:
       the ratio is the end-to-end price of the protocol. *)
    if pr2 <> [] then begin
      let vs key now =
        match List.assoc_opt key pr2 with
        | Some base when base > 0.0 && now > 0.0 -> now /. base
        | _ -> 0.0
      in
      Printf.bprintf buf
        "  \"vs_pr2\": {\"diagnosis_sequential_ratio\": %.3f}\n"
        (json_num (vs "sequential_s" zero_wall))
    end;
    Buffer.add_string buf "}\n";
    let oc = open_out "BENCH_PR4.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "PR4 faults: wrote %s/BENCH_PR4.json\n%!" (Sys.getcwd ())
  end

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", Experiments.Table1.print);
    ("fig9", Experiments.Fig9.print);
    ("fig10", Experiments.Fig10.print);
    ("fig11", Experiments.Fig11.print);
    ("fig12", Experiments.Fig12.print);
    ("fig13", Experiments.Fig13.print);
    ("summary", Experiments.Summary.print);
    ("extensions", Experiments.Extensions.print);
    ("micro", run_micro);
    ("fuzz", run_fuzz);
    ("perf", fun () -> run_perf ());
    ("faults", fun () -> run_faults ());
    ("smoke",
     fun () ->
       run_perf ~smoke:true ();
       run_faults ~smoke:true ());
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected = if args = [] then List.map fst experiments else args in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        Printf.printf "=== %s ===\n%!" name;
        f ()
      | None ->
        Printf.eprintf "unknown experiment %s (known: %s)\n" name
          (String.concat ", " (List.map fst experiments));
        exit 1)
    selected
