(* The benchmark harness.

   1. Regenerates every table and figure of the paper's evaluation
      (Table 1, Figs 9-13, and the §5.3 summary numbers), printing the
      same rows/series the paper reports.
   2. Registers one Bechamel micro-benchmark per pipeline stage /
      experiment so the cost of each component is measurable.

   Usage:
     bench/main.exe                 -- everything
     bench/main.exe table1 fig9 ... -- selected experiments
     bench/main.exe micro           -- only the Bechamel micro-benchmarks *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks: one per experiment's dominant pipeline stage. *)

let bug = Bugbase.Pbzip2.bug

let failure =
  lazy (snd (Option.get (Bugbase.Common.find_target_failure bug)))

let slice = lazy (Slicing.Slicer.compute bug.program (Lazy.force failure))

let micro_tests () =
  let failure = Lazy.force failure in
  let slice = Lazy.force slice in
  let tracked = Slicing.Slicer.take slice 8 in
  let plan = Instrument.Place.compute bug.program tracked in
  let workload = bug.workload_of 0 in
  (* A pre-recorded PT stream for the decode benchmark. *)
  let counters = Exec.Cost.create () in
  let pt = Hw.Pt.create counters in
  let wp = Hw.Watchpoint.create counters in
  let hooks = Instrument.Runtime.hooks ~data_via_pt:false ~plan ~pt ~wp ~wp_allowed:[] in
  let _ = Exec.Interp.run ~hooks ~counters bug.program workload in
  Hw.Pt.finish pt;
  let packets = Hw.Pt.packets_of pt 1 in
  (* A set of client observations for the ranking benchmark. *)
  let observations =
    List.init 20 (fun c ->
        let report =
          Gist.Client.run_one ~plan ~wp_allowed:plan.Instrument.Plan.wp_targets
            ~preempt_prob:bug.preempt_prob bug.program (bug.workload_of c)
        in
        Predict.Stats.
          {
            predictors =
              Predict.Predictor.of_run ~tracked
                ~branch_outcomes:report.r_branches ~traps:report.r_traps ();
            failing = Gist.Client.failing report;
          })
  in
  [
    Test.make ~name:"table1/interpreter-run (one production run)"
      (Staged.stage (fun () -> Exec.Interp.run bug.program workload));
    Test.make ~name:"table1/static-slice (Algorithm 1)"
      (Staged.stage (fun () -> Slicing.Slicer.compute bug.program failure));
    Test.make ~name:"table1/instrumentation-plan (Fig 4 placement)"
      (Staged.stage (fun () -> Instrument.Place.compute bug.program tracked));
    Test.make ~name:"fig13/pt-decode (trace reconstruction)"
      (Staged.stage (fun () -> Hw.Pt.decode bug.program packets));
    Test.make ~name:"fig9/predictor-ranking (F-measure)"
      (Staged.stage (fun () -> Predict.Stats.rank observations));
    Test.make ~name:"fig11/monitored-client (one Gist-tracked run)"
      (Staged.stage (fun () ->
           Gist.Client.run_one ~plan
             ~wp_allowed:plan.Instrument.Plan.wp_targets
             ~preempt_prob:bug.preempt_prob bug.program workload));
    Test.make ~name:"fig13/rr-record (record/replay baseline)"
      (Staged.stage (fun () ->
           Baseline.Rr.record ~preempt_prob:bug.preempt_prob bug.program
             workload));
  ]

let run_micro () =
  print_endline "Micro-benchmarks (Bechamel, monotonic clock):";
  let tests = Test.make_grouped ~name:"gist" (micro_tests ()) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (x :: _) -> x
        | _ -> nan
      in
      Printf.printf "  %-55s %12.0f ns/run\n" name ns);
  print_newline ()

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", Experiments.Table1.print);
    ("fig9", Experiments.Fig9.print);
    ("fig10", Experiments.Fig10.print);
    ("fig11", Experiments.Fig11.print);
    ("fig12", Experiments.Fig12.print);
    ("fig13", Experiments.Fig13.print);
    ("summary", Experiments.Summary.print);
    ("extensions", Experiments.Extensions.print);
    ("micro", run_micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected = if args = [] then List.map fst experiments else args in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        Printf.printf "=== %s ===\n%!" name;
        f ()
      | None ->
        Printf.eprintf "unknown experiment %s (known: %s)\n" name
          (String.concat ", " (List.map fst experiments));
        exit 1)
    selected
