(* The benchmark harness.

   1. Regenerates every table and figure of the paper's evaluation
      (Table 1, Figs 9-13, and the §5.3 summary numbers), printing the
      same rows/series the paper reports.
   2. Registers one Bechamel micro-benchmark per pipeline stage /
      experiment so the cost of each component is measurable.

   Usage:
     bench/main.exe                 -- everything
     bench/main.exe table1 fig9 ... -- selected experiments
     bench/main.exe micro           -- only the Bechamel micro-benchmarks *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks: one per experiment's dominant pipeline stage. *)

let bug = Bugbase.Pbzip2.bug

let failure =
  lazy (snd (Option.get (Bugbase.Common.find_target_failure bug)))

let slice = lazy (Slicing.Slicer.compute bug.program (Lazy.force failure))

let micro_tests () =
  let failure = Lazy.force failure in
  let slice = Lazy.force slice in
  let tracked = Slicing.Slicer.take slice 8 in
  let plan = Instrument.Place.compute bug.program tracked in
  let workload = bug.workload_of 0 in
  (* A pre-recorded PT stream for the decode benchmark. *)
  let counters = Exec.Cost.create () in
  let pt = Hw.Pt.create counters in
  let wp = Hw.Watchpoint.create counters in
  let hooks = Instrument.Runtime.hooks ~data_via_pt:false ~plan ~pt ~wp ~wp_allowed:[] in
  let _ = Exec.Interp.run ~hooks ~counters bug.program workload in
  Hw.Pt.finish pt;
  let packets = Hw.Pt.packets_of pt 1 in
  (* A set of client observations for the ranking benchmark. *)
  let observations =
    List.init 20 (fun c ->
        let report =
          Gist.Client.run_one ~plan ~wp_allowed:plan.Instrument.Plan.wp_targets
            ~preempt_prob:bug.preempt_prob bug.program (bug.workload_of c)
        in
        Predict.Stats.
          {
            predictors =
              Predict.Predictor.of_run ~tracked
                ~branch_outcomes:report.r_branches ~traps:report.r_traps ();
            failing = Gist.Client.failing report;
          })
  in
  [
    Test.make ~name:"table1/interpreter-run (one production run)"
      (Staged.stage (fun () -> Exec.Interp.run bug.program workload));
    Test.make ~name:"table1/static-slice (Algorithm 1)"
      (Staged.stage (fun () -> Slicing.Slicer.compute bug.program failure));
    Test.make ~name:"table1/instrumentation-plan (Fig 4 placement)"
      (Staged.stage (fun () -> Instrument.Place.compute bug.program tracked));
    Test.make ~name:"fig13/pt-decode (trace reconstruction)"
      (Staged.stage (fun () -> Hw.Pt.decode bug.program packets));
    Test.make ~name:"fig9/predictor-ranking (F-measure)"
      (Staged.stage (fun () -> Predict.Stats.rank observations));
    Test.make ~name:"fig11/monitored-client (one Gist-tracked run)"
      (Staged.stage (fun () ->
           Gist.Client.run_one ~plan
             ~wp_allowed:plan.Instrument.Plan.wp_targets
             ~preempt_prob:bug.preempt_prob bug.program workload));
    Test.make ~name:"fig13/rr-record (record/replay baseline)"
      (Staged.stage (fun () ->
           Baseline.Rr.record ~preempt_prob:bug.preempt_prob bug.program
             workload));
  ]

(* Per-stage ns/run estimates as data, shared by the [micro] printer
   and the machine-readable [perf] report. *)
let micro_results () =
  let tests = Test.make_grouped ~name:"gist" (micro_tests ()) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.map (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (x :: _) -> x
        | _ -> nan
      in
      (name, ns))

let run_micro () =
  print_endline "Micro-benchmarks (Bechamel, monotonic clock):";
  List.iter
    (fun (name, ns) -> Printf.printf "  %-55s %12.0f ns/run\n" name ns)
    (micro_results ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* PR 2 performance report: sequential vs parallel end-to-end
   diagnosis, cold vs warm instrumentation placement (the analysis
   cache), and the per-stage micro numbers, emitted as BENCH_PR2.json
   with a [vs_pr1] block comparing against the committed
   BENCH_PR1.json baseline. *)

let time_wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_num f = if Float.is_finite f then f else 0.0

(* Every ["key": number] pair of a flat JSON report (the baseline
   BENCH_PR1.json), by a plain character scan -- no JSON dependency.
   Object-valued keys simply yield no number and are skipped. *)
let json_numbers path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> '"' do incr j done;
      let key = String.sub s (!i + 1) (!j - !i - 1) in
      let k = ref (!j + 1) in
      while !k < n && (s.[!k] = ' ' || s.[!k] = ':') do incr k done;
      let m = ref !k in
      while
        !m < n
        && (match s.[!m] with
            | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
            | _ -> false)
      do
        incr m
      done;
      (if !m > !k then
         match float_of_string_opt (String.sub s !k (!m - !k)) with
         | Some v -> out := (key, v) :: !out
         | None -> ());
      i := max (!j + 1) !m
    end
    else incr i
  done;
  List.rev !out

(* Minimal structural JSON validator.  The bench reports are written
   by hand with [Printf]; a stray NaN ("nan" is not JSON), a missing
   comma or an unescaped string would otherwise ship silently.  Any
   bench JSON this executable writes is validated before it exits, so
   `dune build @check` fails on a malformed artifact. *)
let json_check path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    failwith (Printf.sprintf "%s: malformed JSON at byte %d: %s" path !pos msg)
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let lit w =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then pos := !pos + l
    else fail (Printf.sprintf "expected %s" w)
  in
  let str () =
    expect '"';
    let fin = ref false in
    while not !fin do
      if !pos >= n then fail "unterminated string";
      (match s.[!pos] with
       | '"' -> fin := true
       | '\\' ->
         incr pos;
         if !pos >= n then fail "unterminated escape"
       | c when Char.code c < 0x20 -> fail "raw control byte in string"
       | _ -> ());
      incr pos
    done
  in
  let number () =
    let st = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      && (match s.[!pos] with
          | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
          | _ -> false)
    do
      incr pos
    done;
    if
      !pos = st
      || float_of_string_opt (String.sub s st (!pos - st)) = None
    then fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> str ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected a value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else
      let fin = ref false in
      while not !fin do
        skip_ws ();
        str ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some '}' ->
          incr pos;
          fin := true
        | _ -> fail "expected ',' or '}' in object"
      done
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else
      let fin = ref false in
      while not !fin do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some ']' ->
          incr pos;
          fin := true
        | _ -> fail "expected ',' or ']' in array"
      done
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing bytes after the top-level value"

let pr1_baseline () =
  let candidates =
    [
      "BENCH_PR1.json";
      "../BENCH_PR1.json";
      "../../BENCH_PR1.json";
      "../../../BENCH_PR1.json";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> json_numbers path
  | None -> []

let diagnose_all ?pool bugs =
  List.iter
    (fun b -> ignore (Experiments.Harness.diagnose_bug ?pool b))
    bugs

let placement_timings (bug : Bugbase.Common.t) ~reps =
  let _, failure = Option.get (Bugbase.Common.find_target_failure bug) in
  let tracked =
    Slicing.Slicer.take (Slicing.Slicer.compute bug.program failure) 8
  in
  let cold = ref 0.0 and warm = ref 0.0 in
  for _ = 1 to reps do
    Analysis.Cache.clear ();
    let _, c = time_wall (fun () -> Instrument.Place.compute bug.program tracked) in
    let _, w = time_wall (fun () -> Instrument.Place.compute bug.program tracked) in
    cold := !cold +. c;
    warm := !warm +. w
  done;
  (!cold /. float_of_int reps, !warm /. float_of_int reps)

let run_perf ?(smoke = false) () =
  let jobs = max 2 (Parallel.Jobs.default ()) in
  let bugs =
    if smoke then
      List.filteri (fun i _ -> i < 2) Bugbase.Registry.all
    else Bugbase.Registry.all
  in
  let micro = if smoke then [] else micro_results () in
  (* Warm the analysis cache and allocator once, untimed, so the
     sequential and parallel passes see the same steady state. *)
  diagnose_all [ List.hd bugs ];
  let (), seq_s = time_wall (fun () -> diagnose_all bugs) in
  let (), par_s =
    Parallel.Pool.with_pool ~jobs (fun pool ->
        time_wall (fun () -> diagnose_all ~pool bugs))
  in
  let speedup = if par_s > 0.0 then seq_s /. par_s else 0.0 in
  let reps = if smoke then 3 else 10 in
  let cold_s, warm_s = placement_timings Bugbase.Pbzip2.bug ~reps in
  let reduction =
    if cold_s > 0.0 then 100.0 *. (cold_s -. warm_s) /. cold_s else 0.0
  in
  Printf.printf
    "PR2 perf: %d bugs diagnosed, sequential %.3fs, parallel (%d domains \
     requested) %.3fs, speedup %.2fx\n"
    (List.length bugs) seq_s jobs par_s speedup;
  Printf.printf
    "PR2 perf: placement cold %.1fus, warm (cached analysis) %.1fus, \
     reduction %.1f%%\n"
    (1e6 *. cold_s) (1e6 *. warm_s) reduction;
  if not smoke then begin
    let pr1 = pr1_baseline () in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Printf.bprintf buf "  \"pr\": 2,\n";
    Printf.bprintf buf "  \"available_cores\": %d,\n"
      (Parallel.Jobs.available ());
    Printf.bprintf buf "  \"jobs\": %d,\n" jobs;
    Buffer.add_string buf "  \"micro_ns_per_op\": {\n";
    List.iteri
      (fun i (name, ns) ->
        Printf.bprintf buf "    \"%s\": %.0f%s\n" (json_escape name)
          (json_num ns)
          (if i = List.length micro - 1 then "" else ","))
      micro;
    Buffer.add_string buf "  },\n";
    Printf.bprintf buf
      "  \"diagnosis\": {\"bugs\": %d, \"sequential_s\": %.4f, \
       \"parallel_s\": %.4f, \"speedup\": %.3f},\n"
      (List.length bugs) seq_s par_s speedup;
    Printf.bprintf buf
      "  \"placement\": {\"cold_us\": %.2f, \"warm_us\": %.2f, \
       \"cache_reduction_pct\": %.1f}%s\n"
      (1e6 *. cold_s) (1e6 *. warm_s) reduction
      (if pr1 = [] then "" else ",");
    (* Speedups vs the committed PR1 baseline: baseline / this-run, so
       > 1.0 means this PR is faster. *)
    if pr1 <> [] then begin
      Buffer.add_string buf "  \"vs_pr1\": {\n";
      Buffer.add_string buf "    \"micro_speedup\": {\n";
      let comparable =
        List.filter_map
          (fun (name, ns) ->
            match List.assoc_opt name pr1 with
            | Some base when base > 0.0 && ns > 0.0 ->
              Some (name, base /. ns)
            | _ -> None)
          micro
      in
      List.iteri
        (fun i (name, sp) ->
          Printf.bprintf buf "      \"%s\": %.3f%s\n" (json_escape name)
            (json_num sp)
            (if i = List.length comparable - 1 then "" else ","))
        comparable;
      Buffer.add_string buf "    },\n";
      let vs key now =
        match List.assoc_opt key pr1 with
        | Some base when base > 0.0 && now > 0.0 -> base /. now
        | _ -> 0.0
      in
      Printf.bprintf buf
        "    \"diagnosis_sequential_speedup\": %.3f,\n"
        (json_num (vs "sequential_s" seq_s));
      Printf.bprintf buf
        "    \"diagnosis_parallel_speedup\": %.3f\n"
        (json_num (vs "parallel_s" par_s));
      Buffer.add_string buf "  }\n"
    end;
    Buffer.add_string buf "}\n";
    let oc = open_out "BENCH_PR2.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    json_check "BENCH_PR2.json";
    Printf.printf "PR2 perf: wrote %s/BENCH_PR2.json\n%!" (Sys.getcwd ())
  end

(* ------------------------------------------------------------------ *)
(* Fuzzer throughput: labelled-bug generation alone, then a small
   campaign (generate, probe, diagnose, score) sequential vs
   parallel. *)

let run_fuzz () =
  let n_gen = 500 in
  let patterns = Array.of_list Fuzz.Gen.all_patterns in
  let (), gen_s =
    time_wall (fun () ->
        for i = 0 to n_gen - 1 do
          ignore
            (Fuzz.Gen.generate patterns.(i mod Array.length patterns) i)
        done)
  in
  let count = 54 in
  let r, seq_s =
    time_wall (fun () ->
        Fuzz.Runner.run ~jobs:0 ~shrink:false ~seed:7 ~count ())
  in
  let jobs = max 2 (Parallel.Jobs.default ()) in
  let _, par_s =
    time_wall (fun () ->
        Fuzz.Runner.run ~jobs ~shrink:false ~seed:7 ~count ())
  in
  Printf.printf "fuzz: generation %.0f cases/s\n"
    (float_of_int n_gen /. gen_s);
  Printf.printf
    "fuzz: campaign of %d (accuracy %.3f): sequential %.3fs, parallel \
     (%d jobs) %.3fs, speedup %.2fx\n"
    count
    (Fuzz.Runner.overall_accuracy r)
    seq_s jobs par_s
    (if par_s > 0.0 then seq_s /. par_s else 0.0)

(* ------------------------------------------------------------------ *)
(* PR 4 robustness report: the cost of the always-on report protocol
   (seal + validate on every delivery) at fault rate 0 — the < 2%
   budget — and the fleet's behaviour under a seeded fault sweep,
   emitted as BENCH_PR4.json with a [vs_pr2] block against the
   committed BENCH_PR2.json baseline. *)

let pr2_baseline () =
  let candidates =
    [
      "BENCH_PR2.json";
      "../BENCH_PR2.json";
      "../../BENCH_PR2.json";
      "../../../BENCH_PR2.json";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> json_numbers path
  | None -> []

let run_faults ?(smoke = false) () =
  let bug = Bugbase.Pbzip2.bug in
  let _, failure = Option.get (Bugbase.Common.find_target_failure bug) in
  let tracked =
    Slicing.Slicer.take (Slicing.Slicer.compute bug.program failure) 8
  in
  let plan = Instrument.Place.compute bug.program tracked in
  let plan_id = Instrument.Plan.id plan in
  let n_instrs =
    1
    + List.fold_left
        (fun m (i : Ir.Types.instr) -> max m i.iid)
        0
        (Ir.Program.all_instrs bug.program)
  in
  let client () =
    Gist.Client.run_one ~plan ~wp_allowed:plan.Instrument.Plan.wp_targets
      ~preempt_prob:bug.preempt_prob bug.program (bug.workload_of 0)
  in
  let report = client () in
  (* Protocol cost per delivery.  Two percentages with explicitly
     different denominators follow (an earlier report printed both
     under near-identical names):

     - [pct_of_one_client_run]: per-delivery protocol cost over the
       cost of the one monitored client run it wraps.  Diagnostic
       only — it says how heavy the envelope is relative to the work
       that produced it.
     - [validation_pct_of_diagnosis_wall]: aggregate validation cost
       over the wall time of a whole zero-fault diagnosis.  This is
       the number the < 2% budget gates: the budget governs what the
       always-on integrity checking adds to an end-to-end diagnosis.

     Since the binary wire era the delivery path is
     [Protocol.Encode.encode]/[ingest].  Validation proper is
     [Encode.check] — the allocation-free layer walk; serialising and
     materialising reports ([encode] + the decode inside [ingest])
     is transport and aggregation work any fleet protocol pays and is
     reported separately ([wire_total_pct_of_diagnosis_wall]).  The
     in-memory seal+validate pair is kept as the reference-oracle
     figure. *)
  let reps = if smoke then 300 else 3000 in
  let (), run_s = time_wall (fun () ->
      for _ = 1 to reps / 10 do ignore (client ()) done)
  in
  let enc_arena = Gist.Protocol.Encode.arena () in
  let wire_bytes =
    Gist.Protocol.Encode.encode enc_arena ~client:1 ~plan_id report
  in
  let (), wire_s = time_wall (fun () ->
      for c = 1 to reps do
        let bytes =
          Gist.Protocol.Encode.encode enc_arena ~client:c ~plan_id report
        in
        ignore (Gist.Protocol.Encode.ingest ~n_instrs ~plan_id bytes)
      done)
  in
  let (), check_s = time_wall (fun () ->
      for _ = 1 to reps do
        ignore (Gist.Protocol.Encode.check ~n_instrs ~plan_id wire_bytes)
      done)
  in
  let (), proto_s = time_wall (fun () ->
      for c = 1 to reps do
        let env = Gist.Protocol.seal ~client:c ~plan_id report in
        ignore (Gist.Protocol.validate ~n_instrs ~plan_id env)
      done)
  in
  let run_ns = 1e9 *. run_s /. float_of_int (reps / 10) in
  let wire_ns = 1e9 *. wire_s /. float_of_int reps in
  let check_ns = 1e9 *. check_s /. float_of_int reps in
  let proto_ns = 1e9 *. proto_s /. float_of_int reps in
  let per_run_pct = 100.0 *. wire_ns /. run_ns in
  Printf.printf
    "PR4 faults: wire encode+ingest %.0f ns, validation alone \
     (Encode.check) %.0f ns, in-memory seal+validate reference %.0f ns, \
     vs client run %.0f ns\n"
    wire_ns check_ns proto_ns run_ns;
  Printf.printf
    "PR4 faults: per-delivery wire cost is %.3f%% of one monitored \
     client run (diagnostic only, not the budget-gated number)\n"
    per_run_pct;
  (* End-to-end fault sweep over the whole registry. *)
  let bugs =
    if smoke then List.filteri (fun i _ -> i < 2) Bugbase.Registry.all
    else Bugbase.Registry.all
  in
  let sweep_rates = [ 0.0; 0.05; 0.10 ] in
  let sweep =
    List.map
      (fun rate ->
        let stats = ref Gist.Server.{
            f_dispatched = 0; f_delivered = 0; f_valid = 0; f_lost = 0;
            f_rejected = 0; f_retried = 0; f_quarantined = 0;
            f_degraded_iters = 0; f_by_kind = []; f_by_reason = [] }
        in
        let online = ref 0.0 in
        let (), wall_s =
          time_wall (fun () ->
              List.iter
                (fun (b : Bugbase.Common.t) ->
                  let _, failure =
                    Option.get (Bugbase.Common.find_target_failure b)
                  in
                  let config =
                    {
                      Gist.Config.default with
                      preempt_prob = b.preempt_prob;
                      fault_rates = Faults.Fault.spread rate;
                      fault_seed = 42;
                    }
                  in
                  let d =
                    Gist.Server.diagnose ~config
                      ~oracle:(Experiments.Oracle.for_bug b)
                      ~bug_name:b.name ~failure_type:b.failure_type
                      ~program:b.program ~workload_of:b.workload_of ~failure
                      ()
                  in
                  let f = d.Gist.Server.fleet in
                  online := !online +. d.Gist.Server.online_time_s;
                  stats :=
                    Gist.Server.{
                      f_dispatched = !stats.f_dispatched + f.f_dispatched;
                      f_delivered = !stats.f_delivered + f.f_delivered;
                      f_valid = !stats.f_valid + f.f_valid;
                      f_lost = !stats.f_lost + f.f_lost;
                      f_rejected = !stats.f_rejected + f.f_rejected;
                      f_retried = !stats.f_retried + f.f_retried;
                      f_quarantined = !stats.f_quarantined + f.f_quarantined;
                      f_degraded_iters =
                        !stats.f_degraded_iters + f.f_degraded_iters;
                      f_by_kind = []; f_by_reason = [] })
                bugs)
        in
        let f = !stats in
        Printf.printf
          "PR4 faults: rate %4.0f%%: %d bugs in %.3fs (simulated online \
           %.1fs) -- %d dispatched, %d lost, %d rejected, %d retried, %d \
           quarantined, %d degraded iterations\n"
          (100.0 *. rate) (List.length bugs) wall_s !online
          f.Gist.Server.f_dispatched f.Gist.Server.f_lost
          f.Gist.Server.f_rejected f.Gist.Server.f_retried
          f.Gist.Server.f_quarantined f.Gist.Server.f_degraded_iters;
        (rate, wall_s, !online, f))
      sweep_rates
  in
  (* The budget number: the protocol's share of a whole zero-fault
     diagnosis — per-delivery seal+validate cost times deliveries,
     over the measured wall time (a diagnosis also probes for the
     failure, slices, places instrumentation and ranks predictors, so
     this is far below the per-delivery ratio). *)
  let share_of_wall per_delivery_ns =
    match sweep with
    | (0.0, wall_s, _, f) :: _ when wall_s > 0.0 ->
      100.0
      *. (float_of_int f.Gist.Server.f_dispatched *. per_delivery_ns /. 1e9)
      /. wall_s
    | _ -> 0.0
  in
  let overhead_pct = share_of_wall check_ns in
  let wire_total_pct = share_of_wall wire_ns in
  Printf.printf
    "PR4 faults: budget-gated number: validation share of a zero-fault \
     end-to-end diagnosis is %.3f%% (budget 2%%); whole wire path \
     (serialise + validate + materialise) is %.3f%%\n"
    overhead_pct wire_total_pct;
  (* Campaign accuracy at the acceptance point: 10% aggregate. *)
  let count = if smoke then 9 else 27 in
  let jobs = max 2 (Parallel.Jobs.default ()) in
  let campaign, campaign_s =
    time_wall (fun () ->
        Fuzz.Runner.run ~jobs ~shrink:false
          ~faults:(Faults.Fault.spread 0.10, 42)
          ~seed:42 ~count ())
  in
  Printf.printf
    "PR4 faults: campaign of %d at 10%% faults: accuracy %.3f \
     (worst pattern %.3f) in %.3fs\n"
    count
    (Fuzz.Runner.overall_accuracy campaign)
    (Fuzz.Runner.min_pattern_accuracy campaign)
    campaign_s;
  if not smoke then begin
    let pr2 = pr2_baseline () in
    let zero_wall =
      match sweep with (0.0, w, _, _) :: _ -> w | _ -> 0.0
    in
    let buf = Buffer.create 2048 in
    Buffer.add_string buf "{\n";
    Printf.bprintf buf "  \"pr\": 4,\n";
    Printf.bprintf buf "  \"available_cores\": %d,\n"
      (Parallel.Jobs.available ());
    Printf.bprintf buf
      "  \"protocol\": {\"wire_encode_ingest_ns\": %.0f, \
       \"wire_check_ns\": %.0f, \"seal_validate_reference_ns\": %.0f, \
       \"client_run_ns\": %.0f, \"pct_of_one_client_run\": %.4f, \
       \"validation_pct_of_diagnosis_wall\": %.4f, \
       \"wire_total_pct_of_diagnosis_wall\": %.4f, \"budget_gated\": \
       \"validation_pct_of_diagnosis_wall\", \"budget_pct\": 2.0},\n"
      (json_num wire_ns) (json_num check_ns) (json_num proto_ns)
      (json_num run_ns) (json_num per_run_pct) (json_num overhead_pct)
      (json_num wire_total_pct);
    Buffer.add_string buf "  \"sweep\": [\n";
    List.iteri
      (fun i (rate, wall_s, online, (f : Gist.Server.fleet_stats)) ->
        Printf.bprintf buf
          "    {\"aggregate_rate\": %.2f, \"bugs\": %d, \"wall_s\": %.4f, \
           \"online_s\": %.2f, \"dispatched\": %d, \"lost\": %d, \
           \"rejected\": %d, \"retried\": %d, \"quarantined\": %d, \
           \"degraded_iterations\": %d}%s\n"
          rate (List.length bugs) (json_num wall_s) (json_num online)
          f.f_dispatched f.f_lost f.f_rejected f.f_retried f.f_quarantined
          f.f_degraded_iters
          (if i = List.length sweep - 1 then "" else ","))
      sweep;
    Buffer.add_string buf "  ],\n";
    Printf.bprintf buf
      "  \"campaign\": {\"count\": %d, \"aggregate_rate\": 0.10, \
       \"accuracy\": %.4f, \"min_pattern_accuracy\": %.4f, \"wall_s\": \
       %.4f}%s\n"
      count
      (json_num (Fuzz.Runner.overall_accuracy campaign))
      (json_num (Fuzz.Runner.min_pattern_accuracy campaign))
      (json_num campaign_s)
      (if pr2 = [] then "" else ",");
    (* The zero-fault sweep repeats PR2's sequential diagnosis of the
       whole registry, now with every report sealed and validated:
       the ratio is the end-to-end price of the protocol. *)
    if pr2 <> [] then begin
      let vs key now =
        match List.assoc_opt key pr2 with
        | Some base when base > 0.0 && now > 0.0 -> now /. base
        | _ -> 0.0
      in
      Printf.bprintf buf
        "  \"vs_pr2\": {\"diagnosis_sequential_ratio\": %.3f}\n"
        (json_num (vs "sequential_s" zero_wall))
    end;
    Buffer.add_string buf "}\n";
    let oc = open_out "BENCH_PR4.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    json_check "BENCH_PR4.json";
    Printf.printf "PR4 faults: wrote %s/BENCH_PR4.json\n%!" (Sys.getcwd ())
  end

(* ------------------------------------------------------------------ *)
(* PR 6 ingestion report: wire-speed report ingestion.  A fleet of
   [n] simulated clients per AsT iteration ships pre-encoded binary
   wire envelopes (a handful of distinct client runs, encoded once and
   cycled over the slots, so server-side ingestion is what gets
   measured, not client simulation).  The server side runs in both
   ingest modes:

   - streaming: [Protocol.Encode.ingest], fold the report's
     predictors into [Predict.Stats.Acc], drop the report — live
     server state stays O(slice) whatever the fleet size;
   - retained: same ingest, but every decoded report is retained and
     observations are built and ranked in one batch at the end — the
     pre-streaming reference path, kept as the oracle.

   Emits BENCH_PR6.json: reports/second per mode, bytes/report, live
   words at growing fleet sizes (flat for streaming, O(fleet) for
   retained), and the multi-core scaling curve over requested [jobs]
   with the worker count [Pool.effective] actually grants — on a
   single-core host the curve is honestly flat.  The scaling pass
   folds per-chunk accumulators with [Acc.merge] in slot order and
   cross-checks every ranking against the sequential one, so it is
   also a determinism test. *)

let run_ingest ?(smoke = false) () =
  let bug = Bugbase.Pbzip2.bug in
  let _, failure = Option.get (Bugbase.Common.find_target_failure bug) in
  let tracked =
    Slicing.Slicer.take (Slicing.Slicer.compute bug.program failure) 8
  in
  let plan = Instrument.Place.compute bug.program tracked in
  let plan_id = Instrument.Plan.id plan in
  let n_instrs =
    1
    + List.fold_left
        (fun m (i : Ir.Types.instr) -> max m i.iid)
        0
        (Ir.Program.all_instrs bug.program)
  in
  let n_templates = 32 in
  let templates =
    Array.init n_templates (fun c ->
        Gist.Client.run_one ~plan ~wp_allowed:plan.Instrument.Plan.wp_targets
          ~preempt_prob:bug.preempt_prob bug.program (bug.workload_of c))
  in
  let arena = Gist.Protocol.Encode.arena () in
  let blobs =
    Array.mapi
      (fun c r -> Gist.Protocol.Encode.encode arena ~client:c ~plan_id r)
      templates
  in
  let bytes_per_report =
    Array.fold_left (fun a b -> a + String.length b) 0 blobs / n_templates
  in
  let observe (r : Gist.Client.report) =
    Predict.Stats.
      {
        predictors =
          Predict.Predictor.of_run ~tracked ~branch_outcomes:r.r_branches
            ~traps:r.r_traps ();
        failing = Gist.Client.failing r;
      }
  in
  let ingest_slot i =
    match
      Gist.Protocol.Encode.ingest ~n_instrs ~plan_id
        blobs.(i mod n_templates)
    with
    | Ok r -> r
    | Error rej ->
      failwith
        ("ingest bench: a template blob was rejected: "
         ^ Gist.Protocol.reject_to_string rej)
  in
  (* One iteration's worth of server work, streaming mode: ingest,
     fold, drop. *)
  let streaming_pass n =
    let acc = Predict.Stats.Acc.create () in
    for i = 0 to n - 1 do
      Predict.Stats.Acc.add acc (observe (ingest_slot i))
    done;
    acc
  in
  (* Reference mode: ingest and retain every report (in slot order);
     the caller builds observations and ranks in one end batch. *)
  let retained_pass n =
    let reports = ref [] in
    for i = n - 1 downto 0 do
      reports := ingest_slot i :: !reports
    done;
    !reports
  in
  (* Per-delivery micro numbers. *)
  let reps = if smoke then 2_000 else 20_000 in
  let (), enc_s = time_wall (fun () ->
      for i = 0 to reps - 1 do
        ignore
          (Gist.Protocol.Encode.encode arena ~client:i ~plan_id
             templates.(i mod n_templates))
      done)
  in
  let (), ing_s = time_wall (fun () ->
      for i = 0 to reps - 1 do
        ignore (ingest_slot i)
      done)
  in
  let encode_ns = 1e9 *. enc_s /. float_of_int reps in
  let ingest_ns = 1e9 *. ing_s /. float_of_int reps in
  Printf.printf
    "PR6 ingest: %d bytes/report on the wire, encode %.0f ns, \
     ingest (validate+decode) %.0f ns\n"
    bytes_per_report encode_ns ingest_ns;
  (* Throughput at the headline fleet size. *)
  let n = if smoke then 1_000 else 100_000 in
  let acc, stream_s = time_wall (fun () -> streaming_pass n) in
  let stream_rank = Predict.Stats.Acc.rank acc in
  let retained_rank, retained_s =
    time_wall (fun () ->
        Predict.Stats.rank (List.map observe (retained_pass n)))
  in
  let stream_rps = float_of_int n /. stream_s in
  let retained_rps = float_of_int n /. retained_s in
  let speedup = retained_s /. stream_s in
  let identical = stream_rank = retained_rank in
  Printf.printf
    "PR6 ingest: %d clients/iteration: streaming %.0f reports/s, \
     retained %.0f reports/s, streaming %.2fx faster, rankings %s\n"
    n stream_rps retained_rps speedup
    (if identical then "identical" else "DIFFER");
  if not identical then
    failwith "ingest bench: streaming and retained rankings differ";
  (* Live heap while one iteration's server state is held, at growing
     fleet sizes.  Streaming holds an accumulator (O(slice)); retained
     holds every decoded report (O(fleet)). *)
  let live_while f =
    let keep = f () in
    Gc.full_major ();
    let words = (Gc.stat ()).Gc.live_words in
    ignore (Sys.opaque_identity keep);
    words
  in
  let sizes = if smoke then [ 250; 500; 1_000 ] else [ 1_000; 10_000; 100_000 ] in
  let memory =
    List.map
      (fun size ->
        let sw = live_while (fun () -> streaming_pass size) in
        let rw = live_while (fun () -> retained_pass size) in
        Printf.printf
          "PR6 ingest: %6d clients: live words streaming %d, retained %d\n"
          size sw rw;
        (size, sw, rw))
      sizes
  in
  (* Zero-growth gate: repeated streaming iterations must not grow the
     live heap (the arenas and tables reach steady state after the
     first pass). *)
  let steady () =
    let acc = streaming_pass 1_000 in
    ignore (Sys.opaque_identity (Predict.Stats.Acc.rank acc));
    Gc.compact ();
    (Gc.stat ()).Gc.live_words
  in
  let w1 = steady () in
  let w2 = steady () in
  let w3 = steady () in
  Printf.printf
    "PR6 ingest: live words across 3 repeated iterations: %d %d %d\n"
    w1 w2 w3;
  if w3 > w2 then
    failwith
      (Printf.sprintf
         "ingest bench: live words grew across iterations (%d -> %d)" w2 w3);
  (* Scaling curve: per-chunk accumulators on the pool, merged with
     Acc.merge in slot order.  Pool.effective grants 0 workers on a
     single-core host (inline execution), which the report records. *)
  let chunk = 1_024 in
  let n_chunks = (n + chunk - 1) / chunk in
  let chunks =
    Array.init n_chunks (fun k ->
        let start = k * chunk in
        (start, min chunk (n - start)))
  in
  let scale_pass pool =
    let accs =
      Parallel.Pool.map_array pool
        (fun (start, len) ->
          let acc = Predict.Stats.Acc.create () in
          for i = start to start + len - 1 do
            Predict.Stats.Acc.add acc (observe (ingest_slot i))
          done;
          acc)
        chunks
    in
    let total = Predict.Stats.Acc.create () in
    Array.iter (fun a -> Predict.Stats.Acc.merge ~into:total a) accs;
    total
  in
  let jobs_list = if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let scaling =
    List.map
      (fun jobs ->
        let acc, s =
          Parallel.Pool.with_pool ~jobs (fun pool ->
              time_wall (fun () -> scale_pass pool))
        in
        if Predict.Stats.Acc.rank acc <> stream_rank then
          failwith
            (Printf.sprintf
               "ingest bench: ranking at --jobs %d differs from sequential"
               jobs);
        let eff = Parallel.Pool.effective ~jobs in
        let rps = float_of_int n /. s in
        (* A host with too few cores clamps the grant ([effective] can
           drop to 0 = run inline): say so, per request, so a flat
           scaling curve reads as a host limit, not a scheduler bug. *)
        let clamped = eff < jobs in
        Printf.printf
          "PR6 ingest: jobs %d (Pool.effective %d%s): %.0f reports/s, \
           ranking identical to sequential\n"
          jobs eff
          (if clamped then ", clamped by host cores" else "")
          rps;
        (jobs, eff, rps))
      jobs_list
  in
  let any_clamped =
    List.exists (fun (jobs, eff, _) -> eff < jobs) scaling
  in
  if smoke then begin
    (* An order-of-magnitude tripwire, not a tuning gate: measured
       streaming throughput is ~16k reports/s on the 1-core reference
       host. *)
    let floor = 2_000.0 in
    if stream_rps < floor then
      failwith
        (Printf.sprintf
           "ingest bench: streaming throughput %.0f reports/s is below \
            the %.0f floor"
           stream_rps floor)
  end;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"pr\": 6,\n";
  Printf.bprintf buf "  \"available_cores\": %d,\n"
    (Parallel.Jobs.available ());
  Printf.bprintf buf "  \"smoke\": %b,\n" smoke;
  Printf.bprintf buf
    "  \"wire\": {\"templates\": %d, \"bytes_per_report\": %d, \
     \"encode_ns\": %.0f, \"ingest_ns\": %.0f},\n"
    n_templates bytes_per_report (json_num encode_ns) (json_num ingest_ns);
  Printf.bprintf buf
    "  \"ingest\": {\"clients_per_iteration\": %d, \
     \"streaming_reports_per_s\": %.0f, \"retained_reports_per_s\": \
     %.0f, \"streaming_speedup\": %.3f, \"rank_identical\": %b},\n"
    n (json_num stream_rps) (json_num retained_rps) (json_num speedup)
    identical;
  Buffer.add_string buf "  \"memory\": [\n";
  List.iteri
    (fun i (size, sw, rw) ->
      Printf.bprintf buf
        "    {\"clients\": %d, \"streaming_live_words\": %d, \
         \"retained_live_words\": %d}%s\n"
        size sw rw
        (if i = List.length memory - 1 then "" else ","))
    memory;
  Buffer.add_string buf "  ],\n";
  Printf.bprintf buf
    "  \"steady_state_live_words\": [%d, %d, %d],\n" w1 w2 w3;
  Buffer.add_string buf "  \"scaling\": [\n";
  List.iteri
    (fun i (jobs, eff, rps) ->
      Printf.bprintf buf
        "    {\"jobs_requested\": %d, \"workers_effective\": %d, \
         \"workers_clamped\": %b, \"reports_per_s\": %.0f, \
         \"rank_identical\": true}%s\n"
        jobs eff (eff < jobs) (json_num rps)
        (if i = List.length scaling - 1 then "" else ","))
    scaling;
  Buffer.add_string buf "  ],\n";
  Printf.bprintf buf
    "  \"scaling_note\": \"%s\"\n"
    (if any_clamped then
       "some requested job counts were clamped by host cores \
        (workers_effective < jobs_requested); throughput at those \
        points measures the host, not the scheduler"
     else "no job count was clamped by host cores");
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_PR6.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  json_check "BENCH_PR6.json";
  Printf.printf "PR6 ingest: wrote %s/BENCH_PR6.json\n%!" (Sys.getcwd ())

(* ------------------------------------------------------------------ *)
(* PR 7 adaptive early-exit report: the sequential stopping rule vs
   the exhaustive reference over the Bugbase under the production
   fleet regime ([Experiments.Adaptive.fleet_base]), both modes
   unattended (no developer oracle).  Emits BENCH_PR7.json and gates:

   - the top-ranked predictor is identical in both modes on every bug;
   - the Bugbase mean of per-bug dispatch ratios is >= 3x;
   - the adaptive diagnosis is bit-identical at --jobs 1 and 4;
   - fuzz worst-pattern accuracy with early exit on stays 1.000 at
     seed 42, and >= 0.95 under 10% aggregate injected faults. *)

(* Everything observable about one diagnosis, as a string: dispatch
   and iteration counts, per-iteration trace (including stopping-rule
   verdicts), and the full final ranking with counts.  Two runs are
   "bit-identical" when these agree. *)
let diagnosis_signature (d : Gist.Server.diagnosis) =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "dispatched=%d iterations=%d recurrences=%d|"
    d.fleet.f_dispatched d.iterations d.recurrences;
  List.iter
    (fun (it : Gist.Server.iteration_info) ->
      Printf.bprintf buf "it(sigma=%d,clients=%d,fails=%d,succs=%d,%s)"
        it.it_sigma it.it_clients it.it_fails it.it_succs
        (match it.it_early_exit with
         | None -> "-"
         | Some e -> Gist.Server.early_exit_label e))
    d.trace;
  Buffer.add_char buf '|';
  List.iter
    (fun (r : Predict.Stats.ranked) ->
      Printf.bprintf buf "%s(f=%d,s=%d);"
        (Predict.Predictor.to_string r.predictor)
        r.n_failing_with r.n_success_with)
    d.sketch.Fsketch.Sketch.predictors;
  Buffer.contents buf

let adaptive_determinism () =
  let bug = Bugbase.Pbzip2.bug in
  let config =
    { Experiments.Adaptive.fleet_base with Gist.Config.early_exit = true }
  in
  let sig_at jobs =
    Parallel.Pool.with_pool ~jobs (fun pool ->
        match
          Experiments.Harness.diagnose_bug ~config ~pool ~with_oracle:false bug
        with
        | Some r -> diagnosis_signature r.diagnosis
        | None -> failwith "adaptive bench: Pbzip2 failure did not manifest")
  in
  let s1 = sig_at 1 and s4 = sig_at 4 in
  if s1 <> s4 then
    failwith
      (Printf.sprintf
         "adaptive bench: diagnosis differs between --jobs 1 and 4:\n%s\nvs\n%s"
         s1 s4);
  Printf.printf
    "PR7 adaptive: diagnosis bit-identical at --jobs 1 and 4 (%s)\n"
    bug.name

let run_adaptive ?(smoke = false) () =
  let bugs =
    if smoke then
      List.filter
        (fun (b : Bugbase.Common.t) ->
          List.mem b.name [ "Curl"; "Pbzip2"; "SQLite" ])
        Bugbase.Registry.all
    else Bugbase.Registry.all
  in
  let t, cmp_s =
    time_wall (fun () -> Experiments.Adaptive.run ~bugs ())
  in
  List.iter
    (fun (r : Experiments.Adaptive.row) ->
      Printf.printf
        "PR7 adaptive: %-14s exhaustive %5d -> adaptive %5d clients \
         (%.1fx)%s%s\n"
        r.r_bug r.r_exh_dispatched r.r_ad_dispatched
        (if r.r_ad_dispatched = 0 then 1.0
         else float_of_int r.r_exh_dispatched /. float_of_int r.r_ad_dispatched)
        (if r.r_converged then ", converged" else "")
        (if r.r_top_identical then "" else " TOP DIVERGED"))
    t.rows;
  Printf.printf
    "PR7 adaptive: totals %d -> %d (ratio %.2fx, mean per-bug ratio %.2fx) \
     in %.1fs\n"
    t.total_exh t.total_ad t.ratio t.mean_ratio cmp_s;
  (match List.filter (fun (r : Experiments.Adaptive.row) -> not r.r_top_identical) t.rows with
   | [] -> ()
   | l ->
     failwith
       (Printf.sprintf "adaptive bench: top predictor diverged on %s"
          (String.concat ", "
             (List.map (fun (r : Experiments.Adaptive.row) -> r.r_bug) l))));
  if t.total_ad >= t.total_exh then
    failwith
      (Printf.sprintf
         "adaptive bench: adaptive dispatched %d >= exhaustive %d"
         t.total_ad t.total_exh);
  if (not smoke) && t.mean_ratio < 3.0 then
    failwith
      (Printf.sprintf
         "adaptive bench: mean per-bug dispatch ratio %.2f is below the \
          3x target"
         t.mean_ratio);
  adaptive_determinism ();
  (* Fuzz accuracy with the stopping rule on: the ground-truth
     campaigns from the @check gates, re-run with early exit.  The
     rule must not trade accuracy for the saved budget. *)
  let count = if smoke then 9 else 27 in
  let jobs = max 2 (Parallel.Jobs.default ()) in
  let campaign =
    Fuzz.Runner.run ~jobs ~shrink:false ~early_exit:true ~seed:42 ~count ()
  in
  let c_acc = Fuzz.Runner.overall_accuracy campaign in
  let c_min = Fuzz.Runner.min_pattern_accuracy campaign in
  Printf.printf
    "PR7 adaptive: fuzz campaign of %d with early exit: accuracy %.3f \
     (worst pattern %.3f)\n"
    count c_acc c_min;
  if c_min < 1.0 then
    failwith
      (Printf.sprintf
         "adaptive bench: early exit dropped fuzz worst-pattern accuracy \
          to %.3f (must stay 1.000)"
         c_min);
  let campaign_f =
    Fuzz.Runner.run ~jobs ~shrink:false ~early_exit:true
      ~faults:(Faults.Fault.spread 0.10, 42)
      ~seed:42 ~count ()
  in
  let f_acc = Fuzz.Runner.overall_accuracy campaign_f in
  let f_min = Fuzz.Runner.min_pattern_accuracy campaign_f in
  Printf.printf
    "PR7 adaptive: fuzz campaign of %d with early exit at 10%% faults: \
     accuracy %.3f (worst pattern %.3f)\n"
    count f_acc f_min;
  if f_min < 0.95 then
    failwith
      (Printf.sprintf
         "adaptive bench: early exit under 10%% faults dropped \
          worst-pattern accuracy to %.3f (floor 0.95)"
         f_min);
  if not smoke then begin
    let base = Experiments.Adaptive.fleet_base in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n";
    Printf.bprintf buf "  \"pr\": 7,\n";
    Printf.bprintf buf "  \"available_cores\": %d,\n"
      (Parallel.Jobs.available ());
    Printf.bprintf buf
      "  \"config\": {\"fail_quota\": %d, \"succ_quota\": %d, \
       \"max_clients_per_iter\": %d, \"wp_capacity\": %d, \
       \"separation_delta\": %.4f, \"checkpoint_every\": %d, \
       \"oracle\": \"none (unattended production, both modes)\"},\n"
      base.Gist.Config.fail_quota base.Gist.Config.succ_quota
      base.Gist.Config.max_clients_per_iter base.Gist.Config.wp_capacity
      base.Gist.Config.separation_delta base.Gist.Config.checkpoint_every;
    Buffer.add_string buf "  \"bugs\": [\n";
    List.iteri
      (fun i (r : Experiments.Adaptive.row) ->
        Printf.bprintf buf
          "    {\"bug\": \"%s\", \"exhaustive_dispatched\": %d, \
           \"exhaustive_online_s\": %.3f, \"exhaustive_iterations\": %d, \
           \"adaptive_dispatched\": %d, \"adaptive_online_s\": %.3f, \
           \"adaptive_iterations\": %d, \"early_exit_iterations\": %d, \
           \"converged\": %b, \"top_identical\": %b, \"top\": \"%s\"}%s\n"
          (json_escape r.r_bug) r.r_exh_dispatched
          (json_num r.r_exh_online_s) r.r_exh_iterations r.r_ad_dispatched
          (json_num r.r_ad_online_s) r.r_ad_iterations r.r_ad_early_iters
          r.r_converged r.r_top_identical
          (json_escape (Option.value ~default:"-" r.r_top))
          (if i = List.length t.rows - 1 then "" else ","))
      t.rows;
    Buffer.add_string buf "  ],\n";
    Printf.bprintf buf
      "  \"totals\": {\"exhaustive_dispatched\": %d, \
       \"adaptive_dispatched\": %d, \"ratio\": %.3f, \
       \"mean_per_bug_ratio\": %.3f, \"saved\": %d, \
       \"mean_ratio_target\": 3.0},\n"
      t.total_exh t.total_ad (json_num t.ratio) (json_num t.mean_ratio)
      t.saved;
    Buffer.add_string buf "  \"reallocation\": [\n";
    List.iteri
      (fun i (ra : Experiments.Adaptive.realloc) ->
        Printf.bprintf buf
          "    {\"bug\": \"%s\", \"extra_clients_per_iter\": %d, \
           \"dispatched\": %d, \"converged\": %b}%s\n"
          (json_escape ra.ra_bug) ra.ra_extra ra.ra_dispatched
          ra.ra_converged
          (if i = List.length t.reallocated - 1 then "" else ","))
      t.reallocated;
    Buffer.add_string buf "  ],\n";
    Printf.bprintf buf
      "  \"determinism\": {\"bug\": \"Pbzip2\", \"jobs\": [1, 4], \
       \"identical\": true},\n";
    Printf.bprintf buf
      "  \"fuzz\": {\"count\": %d, \"seed\": 42, \"early_exit\": true, \
       \"accuracy\": %.4f, \"min_pattern_accuracy\": %.4f},\n"
      count (json_num c_acc) (json_num c_min);
    Printf.bprintf buf
      "  \"fuzz_faults\": {\"count\": %d, \"seed\": 42, \"early_exit\": \
       true, \"aggregate_rate\": 0.10, \"accuracy\": %.4f, \
       \"min_pattern_accuracy\": %.4f}\n"
      count (json_num f_acc) (json_num f_min);
    Buffer.add_string buf "}\n";
    let oc = open_out "BENCH_PR7.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    json_check "BENCH_PR7.json";
    Printf.printf "PR7 adaptive: wrote %s/BENCH_PR7.json\n%!" (Sys.getcwd ())
  end

(* ------------------------------------------------------------------ *)
(* PR8: diagnosis as a service.  Replays a heavy synthetic report
   stream — every Bugbase bug recycled under distinct session names
   plus fuzz-generated bugs — through the multiplexed scheduler
   (lib/serve), and gates the service's soak behaviour:

     - zero session leaks: submitted = completed + rejected once the
       service drains, nothing left queued or in flight;
     - flat live heap across repeated waves through one service (the
       PR6 methodology: Gc.compact + live_words after each wave);
     - a reports/s floor (fleet slots dispatched per second);
     - in the full run, >= 100 sessions sustained concurrently.

   Emits BENCH_PR8.json: sessions/s, reports/s, p50/p99 per-bug
   time-to-diagnosis, and live-heap-vs-in-flight-cap points. *)

(* Soak configs are bounded so @check stays fast: two AsT iterations
   of a 40-client fleet are plenty to exercise scheduling, admission
   and delivery; the differential suite (test_serve) covers full
   diagnoses. *)
let soak_tweak (c : Gist.Config.t) =
  {
    c with
    Gist.Config.max_iterations = 2;
    max_clients_per_iter = 40;
    fail_quota = 2;
    succ_quota = 4;
  }

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
    let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

(* One wave: submit [specs] (riding Busy backpressure), drain, harvest.
   Returns (completions, wall seconds). *)
let serve_wave svc specs =
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun sp ->
      let rec push () =
        match Serve.Service.submit svc sp with
        | Ok _ -> ()
        | Error (Serve.Service.Busy _ | Serve.Service.Shed _) ->
          ignore (Serve.Service.step svc);
          ignore (Sys.opaque_identity (Serve.Service.take_completions svc));
          push ()
      in
      push ())
    specs;
  Serve.Service.drain svc;
  let wall = Unix.gettimeofday () -. t0 in
  (Serve.Service.take_completions svc, wall)

let run_serve ?(smoke = false) () =
  let jobs = max 2 (Parallel.Jobs.default ()) in
  let sessions = if smoke then 200 else 300 in
  let sconfig =
    {
      Serve.Service.default with
      Serve.Service.max_inflight = (if smoke then 32 else 128);
      max_queue = sessions;
      round_budget = (if smoke then 128 else 512);
    }
  in
  Parallel.Pool.with_pool ~jobs (fun pool ->
      (* Soak: three waves through ONE long-running service.  Leaks —
         a session retained past completion, a completion never
         harvested, an arena growing per session — show up as live-heap
         growth from wave 2 to wave 3. *)
      let svc = Serve.Service.create ~sconfig ~pool () in
      (* The same stream each wave — the same physical spec list, since
         the offline caches key programs by identity: they reach steady
         state after wave 1, so any residual growth is a per-session
         leak, not cache warm-up. *)
      let soak_specs =
        Serve.Stream.mixed ~tweak:soak_tweak ~seed:42 ~sessions ()
      in
      let wave () =
        let completions, wall = serve_wave svc soak_specs in
        ignore (Sys.opaque_identity completions);
        let done_ = List.length completions in
        Gc.compact ();
        (done_, wall, (Gc.stat ()).Gc.live_words)
      in
      let d1, wall1, w1 = wave () in
      let d2, _, w2 = wave () in
      let d3, _, w3 = wave () in
      Printf.printf
        "PR8 serve: 3 waves of %d sessions: completed %d %d %d; live words \
         %d %d %d\n"
        sessions d1 d2 d3 w1 w2 w3;
      (* The service journals by default since PR9: the WAL is
         compacted to the last two checkpoints, so it is bounded, but
         its steady-state size jitters by a few words across waves
         (round-number varints widen, Buffer capacity doubles).  A
         real per-session leak is kilobytes times 200 sessions, so 1%
         slack loses no detection — this gate is what caught the
         uncompacted journal growing without bound. *)
      if w3 > w2 + (w2 / 100) then
        failwith
          (Printf.sprintf
             "serve bench: live words grew across waves (%d -> %d)" w2 w3);
      let st = Serve.Service.stats svc in
      let leaked =
        st.Serve.Service.st_submitted
        - st.Serve.Service.st_completed - st.Serve.Service.st_rejected
      in
      if
        leaked <> 0
        || Serve.Service.inflight svc <> 0
        || Serve.Service.queued svc <> 0
      then
        failwith
          (Printf.sprintf
             "serve bench: session leak: %d submitted, %d completed, %d \
              rejected, %d in flight, %d queued"
             st.st_submitted st.st_completed st.st_rejected
             (Serve.Service.inflight svc)
             (Serve.Service.queued svc));
      if st.st_completed < 3 * sessions then
        failwith
          (Printf.sprintf "serve bench: %d of %d sessions completed"
             st.st_completed (3 * sessions));
      let reports_s = float_of_int st.st_slots /. wall1 in
      (* Conservative floor: the soak dispatches tens of thousands of
         client runs; even a sequential host clears hundreds/s. *)
      let floor = 200.0 in
      Printf.printf
        "PR8 serve: wave 1: %.1f sessions/s, %.0f reports/s (floor %.0f), \
         peak %d in flight, max wait %d round(s)\n"
        (float_of_int d1 /. wall1)
        reports_s floor st.st_peak_inflight st.st_max_wait_rounds;
      if reports_s < floor then
        failwith
          (Printf.sprintf "serve bench: %.0f reports/s below the %.0f floor"
             reports_s floor);
      if st.st_max_wait_rounds > sconfig.Serve.Service.max_inflight then
        failwith
          (Printf.sprintf
             "serve bench: a session waited %d rounds (fairness bound %d)"
             st.st_max_wait_rounds sconfig.Serve.Service.max_inflight);
      (* Headline run for the report: one fresh wave, timed, with
         per-session time-to-diagnosis percentiles. *)
      let svc2 = Serve.Service.create ~sconfig ~pool () in
      let specs =
        Serve.Stream.mixed ~tweak:soak_tweak ~seed:42 ~sessions ()
      in
      let completions, wall = serve_wave svc2 specs in
      let st2 = Serve.Service.stats svc2 in
      if (not smoke) && st2.st_peak_inflight < 100 then
        failwith
          (Printf.sprintf
             "serve bench: peak in-flight %d, wanted >= 100 concurrent \
              sessions"
             st2.st_peak_inflight);
      let ttd =
        let a =
          Array.of_list
            (List.map
               (fun (c : Serve.Service.completion) -> c.Serve.Service.c_wall_s)
               completions)
        in
        Array.sort compare a;
        a
      in
      let p50 = percentile ttd 0.50 and p99 = percentile ttd 0.99 in
      let sessions_s = float_of_int (List.length completions) /. wall in
      let reports_s2 = float_of_int st2.st_slots /. wall in
      Printf.printf
        "PR8 serve: headline: %d sessions in %.2fs (%.1f sessions/s, %.0f \
         reports/s), time-to-diagnosis p50 %.3fs p99 %.3fs, peak %d in \
         flight\n"
        (List.length completions)
        wall sessions_s reports_s2 p50 p99 st2.st_peak_inflight;
      (* Live heap while a full complement of sessions is in flight,
         at growing in-flight caps: per-session state is O(slice), so
         the curve grows with the cap, not with the stream length. *)
      let inflight_caps = if smoke then [ 8; 16; 32 ] else [ 32; 64; 128 ] in
      let heap_points =
        List.map
          (fun cap ->
            let sc =
              { sconfig with Serve.Service.max_inflight = cap;
                             max_queue = sessions }
            in
            let svc = Serve.Service.create ~sconfig:sc ~pool () in
            List.iter
              (fun sp -> ignore (Serve.Service.submit svc sp))
              specs;
            (* Step until the ring is full, then measure mid-flight. *)
            let rec fill () =
              if
                Serve.Service.inflight svc < cap
                && Serve.Service.queued svc > 0
                && Serve.Service.step svc
              then fill ()
            in
            fill ();
            let inflight = Serve.Service.inflight svc in
            Gc.full_major ();
            let words = (Gc.stat ()).Gc.live_words in
            Serve.Service.drain svc;
            ignore (Sys.opaque_identity (Serve.Service.take_completions svc));
            Printf.printf
              "PR8 serve: cap %3d: %d sessions in flight, live words %d\n"
              cap inflight words;
            (cap, inflight, words))
          inflight_caps
      in
      if not smoke then begin
        let buf = Buffer.create 4096 in
        Buffer.add_string buf "{\n";
        Printf.bprintf buf "  \"pr\": 8,\n";
        Printf.bprintf buf "  \"available_cores\": %d,\n"
          (Parallel.Jobs.available ());
        Printf.bprintf buf "  \"jobs\": %d,\n" jobs;
        Printf.bprintf buf
          "  \"sconfig\": {\"max_inflight\": %d, \"max_queue\": %d, \
           \"quantum\": %d, \"round_budget\": %d},\n"
          sconfig.Serve.Service.max_inflight sconfig.Serve.Service.max_queue
          sconfig.Serve.Service.quantum sconfig.Serve.Service.round_budget;
        Printf.bprintf buf
          "  \"headline\": {\"sessions\": %d, \"wall_s\": %.3f, \
           \"sessions_per_s\": %.2f, \"reports_per_s\": %.1f, \
           \"ttd_p50_s\": %.4f, \"ttd_p99_s\": %.4f, \"peak_inflight\": %d, \
           \"rounds\": %d, \"fleet_slots\": %d, \"max_wait_rounds\": %d},\n"
          (List.length completions)
          (json_num wall) (json_num sessions_s) (json_num reports_s2)
          (json_num p50) (json_num p99) st2.st_peak_inflight st2.st_rounds
          st2.st_slots st2.st_max_wait_rounds;
        Printf.bprintf buf
          "  \"soak\": {\"waves\": 3, \"sessions_per_wave\": %d, \
           \"completed\": %d, \"rejected\": %d, \"leaked\": %d, \
           \"live_words\": [%d, %d, %d], \"reports_per_s_floor\": %.0f},\n"
          sessions st.st_completed st.st_rejected leaked w1 w2 w3 floor;
        Buffer.add_string buf "  \"heap_vs_inflight\": [\n";
        List.iteri
          (fun i (cap, inflight, words) ->
            Printf.bprintf buf
              "    {\"cap\": %d, \"inflight\": %d, \"live_words\": %d}%s\n"
              cap inflight words
              (if i = List.length heap_points - 1 then "" else ","))
          heap_points;
        Buffer.add_string buf "  ],\n";
        Printf.bprintf buf
          "  \"determinism\": {\"differential\": \"test_serve\", \
           \"bit_identical_to_one_shot\": true}\n";
        Buffer.add_string buf "}\n";
        let oc = open_out "BENCH_PR8.json" in
        output_string oc (Buffer.contents buf);
        close_out oc;
        json_check "BENCH_PR8.json";
        Printf.printf "PR8 serve: wrote %s/BENCH_PR8.json\n%!" (Sys.getcwd ())
      end)

(* ------------------------------------------------------------------ *)
(* PR9: crash-only diagnosis.  Measures what the durability machinery
   costs and what recovery buys:

     - journal + checkpoint overhead: the same session stream through
       one service with the journal on and off; the wall-clock delta
       must stay under 5%;
     - recovery cost: kill mid-stream at growing total history with a
       fixed checkpoint cadence; recovery wall must be sublinear in
       the sessions already diagnosed (it restores the newest
       checkpoint and replays at most one cadence of rounds, so the
       curve should be near-flat);
     - a cadence sweep (recovery wall vs checkpoint_every_rounds) to
       show recovery is O(rounds since last checkpoint);
     - kill-and-recover soak: 3 chaos waves of the full stream with
       seeded kills, torn tails and corrupted checkpoints — every
       session still completes, ledgers balance, live heap stays flat.

   Emits BENCH_PR9.json. *)

(* The kill-and-recover chaos soak: 3 waves of [sessions] interleaved
   sessions, each wave a fresh service driven to completion under
   seeded kills, torn journal tails and corrupted checkpoints.  Gates:
   every session completes, refusals bounded by damaged kills, the
   final incarnation's ledger balances, at least one kill landed, and
   the live heap stays flat across waves.  Shared by the full recover
   bench and the standalone @check gate. *)
let chaos_rates =
  {
    Faults.Chaos.kill = 0.15;
    ckpt_corrupt = 0.25;
    torn_write = 0.25;
    poison = 0.0;
  }

let chaos_soak ~pool ~sconfig ~specs ~resolve ~sessions () =
  let rates = chaos_rates in
  let wave i =
    let svc = Serve.Service.create ~sconfig ~pool () in
    List.iter
      (fun sp ->
        let rec push () =
          match Serve.Service.submit svc sp with
          | Ok _ -> ()
          | Error (Serve.Service.Busy _ | Serve.Service.Shed _) ->
            ignore (Serve.Service.step svc);
            push ()
        in
        push ())
      specs;
    let oc =
      Serve.Chaos.drive ~pool ~rates ~seed:(42 + i) ~resolve ~specs svc
    in
    if List.length oc.Serve.Chaos.o_done <> sessions then
      failwith
        (Printf.sprintf
           "recover bench: wave %d: %d of %d sessions completed" i
           (List.length oc.Serve.Chaos.o_done)
           sessions);
    (* A recovery refusal is legal only when the kill's damage ate
       every checkpoint; the campaign then continued on the live
       object and the completion count above already proves nothing
       was lost. *)
    if
      oc.Serve.Chaos.o_failed_recoveries
      > oc.Serve.Chaos.o_torn + oc.Serve.Chaos.o_corrupted
    then
      failwith
        (Printf.sprintf
           "recover bench: wave %d: %d refusals exceed the %d damaged kills"
           i oc.Serve.Chaos.o_failed_recoveries
           (oc.Serve.Chaos.o_torn + oc.Serve.Chaos.o_corrupted));
    let st = oc.Serve.Chaos.o_stats in
    (* The final incarnation's ledger still balances: everything it
       was asked to do it either completed or refused. *)
    if
      st.Serve.Service.st_submitted
      <> st.Serve.Service.st_completed + st.Serve.Service.st_rejected
    then
      failwith
        (Printf.sprintf
           "recover bench: wave %d ledger: %d submitted <> %d completed + \
            %d rejected"
           i st.Serve.Service.st_submitted st.Serve.Service.st_completed
           st.Serve.Service.st_rejected);
    ignore (Sys.opaque_identity oc);
    Gc.compact ();
    let words = (Gc.stat ()).Gc.live_words in
    Printf.printf
      "PR9 recover: wave %d: %d sessions, %d kill(s) (%d torn, %d \
       corrupted), %d resubmitted, live words %d\n%!"
      i sessions oc.Serve.Chaos.o_kills oc.Serve.Chaos.o_torn
      oc.Serve.Chaos.o_corrupted oc.Serve.Chaos.o_resubmitted words;
    (oc.Serve.Chaos.o_kills, oc.Serve.Chaos.o_torn,
     oc.Serve.Chaos.o_corrupted, oc.Serve.Chaos.o_resubmitted, words)
  in
  let waves = List.map wave [ 1; 2; 3 ] in
  let kills = List.fold_left (fun a (k, _, _, _, _) -> a + k) 0 waves in
  if kills = 0 then
    failwith "recover bench: the chaos soak never killed the service";
  (* Unlike the PR8 soak (one service reused across waves, so the end
     state is identical and the gate is strict), every chaos wave here
     builds a fresh service and draws different kills — the final heap
     shape jitters by a few hundred words.  A real session leak is
     megabytes, so 1% slack loses no detection. *)
  (match List.rev_map (fun (_, _, _, _, w) -> w) waves with
   | w3 :: w2 :: _ when w3 > w2 + (w2 / 100) ->
     failwith
       (Printf.sprintf
          "recover bench: live words grew across chaos waves (%d -> %d)" w2
          w3)
   | _ -> ());
  waves

(* The standalone @check gate: the full-scale chaos soak alone, no
   timing phases. *)
let run_recover_soak () =
  let jobs = max 2 (Parallel.Jobs.default ()) in
  let sessions = 200 in
  let sconfig =
    {
      Serve.Service.default with
      Serve.Service.max_inflight = 32;
      max_queue = sessions;
      round_budget = 128;
      checkpoint_every_rounds = 8;
    }
  in
  Parallel.Pool.with_pool ~jobs (fun pool ->
      let specs =
        Serve.Stream.mixed ~tweak:soak_tweak ~seed:42 ~sessions ()
      in
      let resolve =
        let by_name = Hashtbl.create sessions in
        List.iter
          (fun (sp : Serve.Service.spec) ->
            Hashtbl.replace by_name sp.Serve.Service.sp_name sp)
          specs;
        fun name -> Hashtbl.find_opt by_name name
      in
      ignore (chaos_soak ~pool ~sconfig ~specs ~resolve ~sessions ()))

let run_recover ?(smoke = false) () =
  let jobs = max 2 (Parallel.Jobs.default ()) in
  let sessions = if smoke then 60 else 200 in
  let sconfig =
    {
      Serve.Service.default with
      Serve.Service.max_inflight = 32;
      max_queue = sessions;
      round_budget = 128;
      checkpoint_every_rounds = 8;
    }
  in
  Parallel.Pool.with_pool ~jobs (fun pool ->
      let specs =
        Serve.Stream.mixed ~tweak:soak_tweak ~seed:42 ~sessions ()
      in
      let resolve =
        let by_name = Hashtbl.create sessions in
        List.iter
          (fun (sp : Serve.Service.spec) ->
            Hashtbl.replace by_name sp.Serve.Service.sp_name sp)
          specs;
        fun name -> Hashtbl.find_opt by_name name
      in
      (* --- journal + checkpoint overhead ------------------------- *)
      let wave_with ~journal specs =
        let svc = Serve.Service.create ~sconfig ~journal ~pool () in
        let completions, wall = serve_wave svc specs in
        ignore (Sys.opaque_identity completions);
        (wall, String.length (Serve.Service.journal_bytes svc))
      in
      (* Warm the offline caches before timing anything.  Interleave
         the timed samples (base, journaled, base, ...) so machine
         drift lands on both sides, and keep the min of each: noise is
         additive, so min-of-N converges on the true cost. *)
      ignore (wave_with ~journal:false specs);
      let base = ref infinity and journaled = ref infinity in
      for _ = 1 to 3 do
        base := min !base (fst (wave_with ~journal:false specs));
        journaled := min !journaled (fst (wave_with ~journal:true specs))
      done;
      let base_s = !base and journaled_s = !journaled in
      let journal_len = snd (wave_with ~journal:true specs) in
      let overhead = (journaled_s -. base_s) /. base_s in
      Printf.printf
        "PR9 recover: %d sessions: %.2fs bare, %.2fs journaled (%+.1f%% \
         overhead, %d journal bytes)\n"
        sessions base_s journaled_s (100.0 *. overhead) journal_len;
      if (not smoke) && overhead > 0.05 then
        failwith
          (Printf.sprintf
             "recover bench: journal+checkpoint overhead %.1f%% above the \
              5%% bar"
             (100.0 *. overhead));
      (* --- recovery wall vs total history ------------------------ *)
      (* Run the stream until [frac] of the sessions have completed,
         harvesting every round (checkpoints only land on harvested
         states), then take the journal bytes as the crash image. *)
      let kill_image n =
        let specs =
          Serve.Stream.mixed ~tweak:soak_tweak ~seed:42 ~sessions:n ()
        in
        let sc = { sconfig with Serve.Service.max_queue = n } in
        let svc = Serve.Service.create ~sconfig:sc ~pool () in
        List.iter
          (fun sp ->
            let rec push () =
              match Serve.Service.submit svc sp with
              | Ok _ -> ()
              | Error (Serve.Service.Busy _ | Serve.Service.Shed _) ->
                ignore (Serve.Service.step svc);
                ignore
                  (Sys.opaque_identity (Serve.Service.take_completions svc));
                push ()
            in
            push ())
          specs;
        let target = 2 * n / 3 in
        let harvested = ref [] in
        let rec run () =
          harvested := Serve.Service.take_completions svc @ !harvested;
          if
            (Serve.Service.stats svc).Serve.Service.st_completed < target
            && Serve.Service.step svc
          then run ()
        in
        run ();
        (specs, Serve.Service.journal_bytes svc, !harvested)
      in
      let recover_point n =
        let specs, bytes, harvested = kill_image n in
        let resolve =
          let by_name = Hashtbl.create n in
          List.iter
            (fun (sp : Serve.Service.spec) ->
              Hashtbl.replace by_name sp.Serve.Service.sp_name sp)
            specs;
          fun name -> Hashtbl.find_opt by_name name
        in
        let recovered, wall =
          time_wall (fun () -> Serve.Service.recover ~pool ~resolve bytes)
        in
        match recovered with
        | Error e ->
          failwith
            (Printf.sprintf "recover bench: recover refused at %d: %s" n
               (Serve.Service.rerror_to_string e))
        | Ok svc ->
          Serve.Service.drain svc;
          let names = Hashtbl.create n in
          List.iter
            (fun (c : Serve.Service.completion) ->
              Hashtbl.replace names c.Serve.Service.c_name ())
            (harvested @ Serve.Service.take_completions svc);
          if Hashtbl.length names <> n then
            failwith
              (Printf.sprintf
                 "recover bench: %d of %d sessions completed across the kill"
                 (Hashtbl.length names) n);
          let st = Serve.Service.stats svc in
          if st.Serve.Service.st_divergences <> 0 then
            failwith
              (Printf.sprintf "recover bench: %d replay divergences at %d"
                 st.Serve.Service.st_divergences n);
          Printf.printf
            "PR9 recover: history %3d sessions: recovery %.4fs (every \
             session accounted for)\n%!"
            n wall;
          (n, wall)
      in
      let history_sizes =
        if smoke then [ 20; 40; 60 ] else [ 50; 100; 200 ]
      in
      let history_curve = List.map recover_point history_sizes in
      (match (history_curve, List.rev history_curve) with
       | (n0, w0) :: _, (n1, w1) :: _ when n0 <> n1 ->
         (* Sublinear: growing the diagnosed history by Kx must not
            grow recovery by Kx — checkpoints bound the replayed tail.
            Floors keep the ratio meaningful on a fast host. *)
         let ratio = max w1 0.001 /. max w0 0.001 in
         let size_ratio = float_of_int n1 /. float_of_int n0 in
         Printf.printf
           "PR9 recover: recovery wall grew %.2fx over a %.1fx history\n"
           ratio size_ratio;
         if (not smoke) && ratio >= size_ratio then
           failwith
             (Printf.sprintf
                "recover bench: recovery wall grew %.2fx over a %.1fx \
                 history (not sublinear)"
                ratio size_ratio)
       | _ -> ());
      (* --- recovery wall vs checkpoint cadence ------------------- *)
      let cadence_curve =
        List.map
          (fun every ->
            let n = if smoke then 30 else 80 in
            let specs =
              Serve.Stream.mixed ~tweak:soak_tweak ~seed:42 ~sessions:n ()
            in
            let resolve =
              let by_name = Hashtbl.create n in
              List.iter
                (fun (sp : Serve.Service.spec) ->
                  Hashtbl.replace by_name sp.Serve.Service.sp_name sp)
                specs;
              fun name -> Hashtbl.find_opt by_name name
            in
            let sc =
              { sconfig with
                Serve.Service.max_queue = n;
                checkpoint_every_rounds = every }
            in
            let svc = Serve.Service.create ~sconfig:sc ~pool () in
            List.iter (fun sp -> ignore (Serve.Service.submit svc sp)) specs;
            let target = 2 * n / 3 in
            let rec run () =
              ignore
                (Sys.opaque_identity (Serve.Service.take_completions svc));
              if
                (Serve.Service.stats svc).Serve.Service.st_completed < target
                && Serve.Service.step svc
              then run ()
            in
            run ();
            let bytes = Serve.Service.journal_bytes svc in
            let recovered, wall =
              time_wall (fun () ->
                  Serve.Service.recover ~pool ~resolve bytes)
            in
            (match recovered with
             | Ok svc -> Serve.Service.drain svc
             | Error e ->
               failwith
                 (Printf.sprintf
                    "recover bench: recover refused at cadence %d: %s" every
                    (Serve.Service.rerror_to_string e)));
            Printf.printf
              "PR9 recover: cadence %2d rounds: recovery %.4fs\n%!" every
              wall;
            (every, wall))
          (if smoke then [ 4; 16 ] else [ 2; 8; 32 ])
      in
      (* --- kill-and-recover soak --------------------------------- *)
      let waves = chaos_soak ~pool ~sconfig ~specs ~resolve ~sessions () in
      if not smoke then begin
        let buf = Buffer.create 4096 in
        Buffer.add_string buf "{\n";
        Printf.bprintf buf "  \"pr\": 9,\n";
        Printf.bprintf buf "  \"available_cores\": %d,\n"
          (Parallel.Jobs.available ());
        Printf.bprintf buf "  \"jobs\": %d,\n" jobs;
        Printf.bprintf buf
          "  \"sconfig\": {\"max_inflight\": %d, \"max_queue\": %d, \
           \"quantum\": %d, \"round_budget\": %d, \
           \"checkpoint_every_rounds\": %d},\n"
          sconfig.Serve.Service.max_inflight sconfig.Serve.Service.max_queue
          sconfig.Serve.Service.quantum sconfig.Serve.Service.round_budget
          sconfig.Serve.Service.checkpoint_every_rounds;
        Printf.bprintf buf
          "  \"overhead\": {\"sessions\": %d, \"bare_s\": %.3f, \
           \"journaled_s\": %.3f, \"overhead_frac\": %.4f, \
           \"journal_bytes\": %d, \"bar\": 0.05},\n"
          sessions (json_num base_s) (json_num journaled_s)
          (json_num overhead) journal_len;
        Buffer.add_string buf "  \"recovery_vs_history\": [\n";
        List.iteri
          (fun i (n, w) ->
            Printf.bprintf buf
              "    {\"sessions\": %d, \"recovery_s\": %.4f}%s\n" n
              (json_num w)
              (if i = List.length history_curve - 1 then "" else ","))
          history_curve;
        Buffer.add_string buf "  ],\n";
        Buffer.add_string buf "  \"recovery_vs_cadence\": [\n";
        List.iteri
          (fun i (every, w) ->
            Printf.bprintf buf
              "    {\"checkpoint_every_rounds\": %d, \"recovery_s\": \
               %.4f}%s\n"
              every (json_num w)
              (if i = List.length cadence_curve - 1 then "" else ","))
          cadence_curve;
        Buffer.add_string buf "  ],\n";
        Printf.bprintf buf
          "  \"soak\": {\"waves\": %d, \"sessions_per_wave\": %d, \
           \"rates\": {\"kill\": %.2f, \"ckpt_corrupt\": %.2f, \
           \"torn_write\": %.2f}, \"waves_detail\": [\n"
          (List.length waves) sessions chaos_rates.Faults.Chaos.kill
          chaos_rates.Faults.Chaos.ckpt_corrupt
          chaos_rates.Faults.Chaos.torn_write;
        List.iteri
          (fun i (k, t, c, r, w) ->
            Printf.bprintf buf
              "    {\"kills\": %d, \"torn\": %d, \"corrupted\": %d, \
               \"resubmitted\": %d, \"live_words\": %d}%s\n"
              k t c r w
              (if i = List.length waves - 1 then "" else ","))
          waves;
        Buffer.add_string buf "  ]}\n";
        Buffer.add_string buf "}\n";
        let oc = open_out "BENCH_PR9.json" in
        output_string oc (Buffer.contents buf);
        close_out oc;
        json_check "BENCH_PR9.json";
        Printf.printf "PR9 recover: wrote %s/BENCH_PR9.json\n%!"
          (Sys.getcwd ())
      end)

(* ------------------------------------------------------------------ *)
(* PR10: storm-proof triage.  Benches the duplicate-storm front-end
   (fingerprint coalescing, two admission lanes, recurrence shedding)
   and gates its point: under a duplicate-heavy stream,

     - fresh bugs are diagnosed no later than they would be on a
       service without triage fed the same storm (rounds-based, so
       the gate is deterministic at any core count);
     - fresh-bug latency does not regress against the storm-free
       baseline (the same fresh traffic with no storm around it);
     - duplicates actually coalesce (a dedup-ratio floor at 80%
       duplicates) and shedding under a tight queue is typed, counted
       and ledger-balanced — never silent;
     - the triage tables are bounded: flat live heap across repeated
       storm waves through one service, and no fresh-lane starvation
       (the st_fresh_wait_rounds witness stays within the storm-free
       bound plus the in-flight cap).

   Emits BENCH_PR10.json: sessions/s, time-to-first/last-new-diagnosis
   with and without triage, dedup ratio, shed counts, soak heap. *)

(* Storm streams name duplicate re-reports "<bug>@<k>"; fresh traffic
   keeps its own name.  (Hot bugs' own first arrival is also "@"-named
   — their fingerprint is new, but the bug is the storm's, not fresh
   traffic's, so it stays out of the fresh-latency metrics.) *)
let is_fresh_name name = not (String.contains name '@')

let storm_sconfig ~sessions ~triage =
  {
    Serve.Service.default with
    Serve.Service.max_inflight = 32;
    max_queue = sessions;
    round_budget = 128;
    triage;
    (* One round of grace after a diagnosis, then duplicates re-open
       the cluster as recurrences — so multi-wave soaks exercise the
       recurrence lane, not just coalescing. *)
    recency_rounds = 1;
  }

(* One wave: submit [specs] riding [Busy] backpressure; a [Shed] is
   final for that submission (load shedding means the client backs
   off).  Returns (completions, shed notices, wall seconds). *)
let storm_wave svc specs =
  let t0 = Unix.gettimeofday () in
  let completions = ref [] in
  let sheds = ref [] in
  let harvest () =
    completions := !completions @ Serve.Service.take_completions svc;
    sheds := !sheds @ Serve.Service.take_shed svc
  in
  List.iter
    (fun sp ->
      let rec push () =
        match Serve.Service.submit svc sp with
        | Ok _ -> ()
        | Error (Serve.Service.Shed _) -> ()
        | Error (Serve.Service.Busy _) ->
          ignore (Serve.Service.step svc);
          harvest ();
          push ()
      in
      push ())
    specs;
  Serve.Service.drain svc;
  harvest ();
  (!completions, !sheds, Unix.gettimeofday () -. t0)

(* Completion rounds of the fresh-named sessions: (first, last).
   Rounds, not wall seconds — deterministic at any [jobs]. *)
let fresh_rounds completions =
  List.fold_left
    (fun (first, last) (c : Serve.Service.completion) ->
      if is_fresh_name c.Serve.Service.c_name then
        ( (if first = 0 then c.c_completed_round
           else min first c.c_completed_round),
          max last c.c_completed_round )
      else (first, last))
    (0, 0) completions

let storm_ledger_check label svc (st : Serve.Service.stats) =
  if
    st.st_submitted
    <> st.st_completed + st.st_rejected + st.st_coalesced + st.st_shed
    || Serve.Service.inflight svc <> 0
    || Serve.Service.queued svc <> 0
  then
    failwith
      (Printf.sprintf
         "storm bench (%s): ledger does not balance: %d submitted, %d \
          completed, %d rejected, %d coalesced, %d shed, %d in flight, %d \
          queued"
         label st.st_submitted st.st_completed st.st_rejected st.st_coalesced
         st.st_shed
         (Serve.Service.inflight svc)
         (Serve.Service.queued svc))

let run_storm ?(sessions = 200) ?(json = true) () =
  let jobs = max 2 (Parallel.Jobs.default ()) in
  let dup_ratio = 0.8 in
  let specs =
    Serve.Stream.storm ~tweak:soak_tweak ~seed:42 ~sessions ~dup_ratio ()
  in
  let fresh_specs =
    List.filter
      (fun (sp : Serve.Service.spec) -> is_fresh_name sp.sp_name)
      specs
  in
  Parallel.Pool.with_pool ~jobs (fun pool ->
      let one label ~triage specs =
        let sconfig = storm_sconfig ~sessions ~triage in
        let svc = Serve.Service.create ~sconfig ~pool () in
        let completions, sheds, wall = storm_wave svc specs in
        let st = Serve.Service.stats svc in
        storm_ledger_check label svc st;
        (completions, sheds, wall, st)
      in
      (* The same storm, with and without the triage front-end, plus
         the storm-free baseline: just the fresh traffic. *)
      let c_on, _, wall_on, st_on = one "triage" ~triage:true specs in
      let c_off, _, wall_off, st_off = one "no-triage" ~triage:false specs in
      let c_free, _, _, st_free = one "storm-free" ~triage:true fresh_specs in
      let first_on, last_on = fresh_rounds c_on in
      let first_off, last_off = fresh_rounds c_off in
      let first_free, last_free = fresh_rounds c_free in
      let dedup = float_of_int st_on.st_coalesced /. float_of_int st_on.st_submitted in
      Printf.printf
        "PR10 storm: %d sessions at %.0f%% duplicates: triage %d diagnosed \
         (%.1f sessions/s offered, dedup %.2f), no-triage %d diagnosed \
         (%.1f/s)\n"
        sessions (100. *. dup_ratio) st_on.st_completed
        (float_of_int sessions /. wall_on)
        dedup st_off.st_completed
        (float_of_int sessions /. wall_off);
      Printf.printf
        "PR10 storm: fresh diagnosis rounds first/last: triage %d/%d, \
         no-triage %d/%d, storm-free %d/%d\n"
        first_on last_on first_off last_off first_free last_free;
      (* Gate 1: triage never delays the fresh traffic relative to the
         same storm without it. *)
      if last_on > last_off || first_on > first_off then
        failwith
          (Printf.sprintf
             "storm bench: triage delayed fresh diagnoses (first %d vs %d, \
              last %d vs %d)"
             first_on first_off last_on last_off);
      (* Gate 2: no regression against the storm-free baseline beyond
         one in-flight window of slack. *)
      let slack = (storm_sconfig ~sessions ~triage:true).Serve.Service.max_inflight in
      if last_on > last_free + slack then
        failwith
          (Printf.sprintf
             "storm bench: storm pushed the last fresh diagnosis to round \
              %d (storm-free %d + slack %d)"
             last_on last_free slack);
      (* Gate 3: at 80%% duplicates, at least half the offered sessions
         must coalesce (the rest are first arrivals and recurrences). *)
      if dedup < 0.5 then
        failwith
          (Printf.sprintf "storm bench: dedup ratio %.2f below 0.5" dedup);
      if st_on.st_fresh_wait_rounds
         > st_free.st_max_wait_rounds + slack
      then
        failwith
          (Printf.sprintf
             "storm bench: fresh lane waited %d rounds (storm-free bound %d \
              + %d)"
             st_on.st_fresh_wait_rounds st_free.st_max_wait_rounds slack);
      (* Shed regime: a tight waiting room under the same storm.
         Recurrences must be refused/evicted typed and counted; fresh
         bugs never shed; the ledger still balances. *)
      let shed_sc =
        {
          (storm_sconfig ~sessions ~triage:true) with
          Serve.Service.max_inflight = 4;
          max_queue = 4;
          round_budget = 32;
        }
      in
      let shed_svc = Serve.Service.create ~sconfig:shed_sc ~pool () in
      let _, shed_notices, _ = storm_wave shed_svc specs in
      let st_shed = Serve.Service.stats shed_svc in
      storm_ledger_check "shed" shed_svc st_shed;
      Printf.printf
        "PR10 storm: tight queue (%d/%d): %d shed (%d evicted-queued \
         notices), %d coalesced, %d completed\n"
        shed_sc.Serve.Service.max_inflight shed_sc.Serve.Service.max_queue
        st_shed.st_shed
        (List.length shed_notices)
        st_shed.st_coalesced st_shed.st_completed;
      (* Soak: 3 storm waves through ONE service.  Waves 2..3 re-offer
         every bug, so diagnosed clusters re-open as recurrences (the
         recurrence lane earns its keep) and the cluster table, lanes
         and journal must stay bounded: flat live heap, like PR8. *)
      let soak_sc = storm_sconfig ~sessions ~triage:true in
      let soak_svc = Serve.Service.create ~sconfig:soak_sc ~pool () in
      let wave () =
        let completions, _, _ = storm_wave soak_svc specs in
        ignore (Sys.opaque_identity completions);
        Gc.compact ();
        (List.length completions, (Gc.stat ()).Gc.live_words)
      in
      let d1, w1 = wave () in
      let d2, w2 = wave () in
      let d3, w3 = wave () in
      let st_soak = Serve.Service.stats soak_svc in
      storm_ledger_check "soak" soak_svc st_soak;
      Printf.printf
        "PR10 storm: soak 3 waves of %d: diagnosed %d %d %d; live words %d \
         %d %d; %d coalesced, %d recurrence-admitted, fresh wait %d\n"
        sessions d1 d2 d3 w1 w2 w3 st_soak.st_coalesced
        st_soak.st_recur_admitted st_soak.st_fresh_wait_rounds;
      if w3 > w2 + (w2 / 100) then
        failwith
          (Printf.sprintf
             "storm bench: live words grew across storm waves (%d -> %d)" w2
             w3);
      if st_soak.st_recur_admitted = 0 then
        failwith "storm bench: the soak never exercised the recurrence lane";
      if st_soak.st_fresh_wait_rounds > st_free.st_max_wait_rounds + slack
      then
        failwith
          (Printf.sprintf
             "storm bench: soak fresh lane waited %d rounds (storm-free \
              bound %d + %d)"
             st_soak.st_fresh_wait_rounds st_free.st_max_wait_rounds slack);
      if json then begin
        let buf = Buffer.create 4096 in
        Buffer.add_string buf "{\n";
        Printf.bprintf buf "  \"pr\": 10,\n";
        Printf.bprintf buf "  \"available_cores\": %d,\n"
          (Parallel.Jobs.available ());
        Printf.bprintf buf "  \"jobs\": %d,\n" jobs;
        Printf.bprintf buf
          "  \"storm\": {\"sessions\": %d, \"dup_ratio\": %.2f, \
           \"hot\": 4},\n"
          sessions dup_ratio;
        Printf.bprintf buf
          "  \"triage\": {\"diagnosed\": %d, \"coalesced\": %d, \
           \"dedup_ratio\": %.3f, \"sessions_per_s\": %.2f, \
           \"fresh_first_round\": %d, \"fresh_last_round\": %d, \
           \"fresh_wait_rounds\": %d},\n"
          st_on.st_completed st_on.st_coalesced (json_num dedup)
          (json_num (float_of_int sessions /. wall_on))
          first_on last_on st_on.st_fresh_wait_rounds;
        Printf.bprintf buf
          "  \"no_triage\": {\"diagnosed\": %d, \"sessions_per_s\": %.2f, \
           \"fresh_first_round\": %d, \"fresh_last_round\": %d},\n"
          st_off.st_completed
          (json_num (float_of_int sessions /. wall_off))
          first_off last_off;
        Printf.bprintf buf
          "  \"storm_free\": {\"fresh_first_round\": %d, \
           \"fresh_last_round\": %d, \"max_wait_rounds\": %d},\n"
          first_free last_free st_free.st_max_wait_rounds;
        Printf.bprintf buf
          "  \"shed_regime\": {\"max_inflight\": %d, \"max_queue\": %d, \
           \"shed\": %d, \"evicted_notices\": %d, \"coalesced\": %d, \
           \"completed\": %d},\n"
          shed_sc.Serve.Service.max_inflight shed_sc.Serve.Service.max_queue
          st_shed.st_shed
          (List.length shed_notices)
          st_shed.st_coalesced st_shed.st_completed;
        Printf.bprintf buf
          "  \"soak\": {\"waves\": 3, \"sessions_per_wave\": %d, \
           \"diagnosed\": [%d, %d, %d], \"live_words\": [%d, %d, %d], \
           \"recur_admitted\": %d, \"fresh_wait_rounds\": %d},\n"
          sessions d1 d2 d3 w1 w2 w3 st_soak.st_recur_admitted
          st_soak.st_fresh_wait_rounds;
        Printf.bprintf buf
          "  \"gates\": {\"fresh_not_delayed_vs_no_triage\": true, \
           \"fresh_last_round_within_storm_free_slack\": true, \
           \"dedup_floor\": 0.5, \"ledger_balanced\": true}\n";
        Buffer.add_string buf "}\n";
        let oc = open_out "BENCH_PR10.json" in
        output_string oc (Buffer.contents buf);
        close_out oc;
        json_check "BENCH_PR10.json";
        Printf.printf "PR10 storm: wrote %s/BENCH_PR10.json\n%!"
          (Sys.getcwd ())
      end)

(* The standalone @check gate: the full-scale storm (3 x 200 sessions
   at 80% duplicates through one service, plus the triage-vs-no-triage
   and storm-free differentials), no JSON. *)
let run_storm_soak () = run_storm ~json:false ()

(* The @check gate (fast variant of the full report): Bugbase plus the
   25-case seed-42 fuzz campaign, early exit on, asserting the top-1
   predictor matches the exhaustive oracle everywhere and that the
   total dispatched-client count strictly decreased. *)
let run_adaptive_gate () =
  let t = Experiments.Adaptive.run () in
  (match
     List.filter
       (fun (r : Experiments.Adaptive.row) -> not r.r_top_identical)
       t.rows
   with
   | [] -> ()
   | l ->
     failwith
       (Printf.sprintf "adaptive gate: Bugbase top predictor diverged on %s"
          (String.concat ", "
             (List.map (fun (r : Experiments.Adaptive.row) -> r.r_bug) l))));
  let fuzz_exh = ref 0 and fuzz_ad = ref 0 in
  let cases = Fuzz.Runner.cases ~seed:42 ~count:25 () in
  List.iteri
    (fun i case ->
      let oe = Fuzz.Check.check ~use_oracle:false case in
      let oa = Fuzz.Check.check ~early_exit:true ~use_oracle:false case in
      let disp (o : Fuzz.Check.outcome) =
        match o.fleet with
        | Some f -> f.Gist.Server.f_dispatched
        | None -> 0
      in
      fuzz_exh := !fuzz_exh + disp oe;
      fuzz_ad := !fuzz_ad + disp oa;
      if oe.Fuzz.Check.top <> oa.Fuzz.Check.top then
        failwith
          (Printf.sprintf
             "adaptive gate: fuzz case %d (%s): top diverged \
              (exhaustive %s, adaptive %s)"
             i case.Fuzz.Gen.c_name
             (Option.value ~default:"-" oe.Fuzz.Check.top)
             (Option.value ~default:"-" oa.Fuzz.Check.top)))
    cases;
  let total_exh = t.total_exh + !fuzz_exh in
  let total_ad = t.total_ad + !fuzz_ad in
  if total_ad >= total_exh then
    failwith
      (Printf.sprintf
         "adaptive gate: total dispatched did not decrease (%d -> %d)"
         total_exh total_ad);
  Printf.printf
    "PR7 adaptive gate: top-1 identical on %d bugs + %d fuzz cases; \
     dispatched %d -> %d (Bugbase %d -> %d, fuzz %d -> %d)\n%!"
    (List.length t.rows) (List.length cases) total_exh total_ad t.total_exh
    t.total_ad !fuzz_exh !fuzz_ad

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", Experiments.Table1.print);
    ("fig9", Experiments.Fig9.print);
    ("fig10", Experiments.Fig10.print);
    ("fig11", Experiments.Fig11.print);
    ("fig12", Experiments.Fig12.print);
    ("fig13", Experiments.Fig13.print);
    ("summary", Experiments.Summary.print);
    ("extensions", Experiments.Extensions.print);
    ("micro", run_micro);
    ("fuzz", run_fuzz);
    ("perf", fun () -> run_perf ());
    ("faults", fun () -> run_faults ());
    ("ingest", fun () -> run_ingest ());
    ("adaptive", fun () -> run_adaptive ());
    ("adaptive_gate", run_adaptive_gate);
    ("serve", fun () -> run_serve ());
    ("recover", fun () -> run_recover ());
    ("recover_soak", run_recover_soak);
    ("storm", fun () -> run_storm ());
    ("storm_soak", run_storm_soak);
    ("smoke",
     fun () ->
       run_perf ~smoke:true ();
       run_faults ~smoke:true ();
       run_ingest ~smoke:true ();
       run_adaptive ~smoke:true ();
       run_serve ~smoke:true ();
       run_recover ~smoke:true ();
       run_storm ~sessions:120 ~json:false ());
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected = if args = [] then List.map fst experiments else args in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        Printf.printf "=== %s ===\n%!" name;
        f ()
      | None ->
        Printf.eprintf "unknown experiment %s (known: %s)\n" name
          (String.concat ", " (List.map fst experiments));
        exit 1)
    selected
