(* Crash-only recovery differential suite (lib/serve + lib/core
   snapshots + the journal).

   The crash-only contract: kill the service after ANY round, recover
   from the journal bytes, and every diagnosis the recovered service
   goes on to produce is bit-identical (host-time fields aside) to the
   uninterrupted run's — which test_serve already pins to the one-shot
   [Gist.Server.diagnose].  The suite holds that contract by killing
   at EVERY round boundary over the whole Bugbase and the 50-bug
   seed-42 fuzz campaign, in the zero-fault and 10%-aggregate-fault
   regimes, at jobs 1 and jobs 4, under the same adversarial scheduler
   shape test_serve uses (plus a tight checkpoint cadence so recovery
   replays real rounds, not just checkpoint restores).

   Also here: the journal codec and its damage model (torn tails
   truncate, checksum failures degrade to [Damaged] and recovery falls
   back to an older checkpoint), session snapshot/restore roundtrips
   and typed refusals, blast-radius containment (poisoned sessions
   quarantine, deadlines evict — the service survives, the ledger
   balances), the [Busy] retry hint, and a seeded chaos campaign
   (kills + torn tails + corrupted checkpoints) over the Bugbase. *)

module S = Gist.Server
module Svc = Serve.Service
module J = Serve.Journal

let compare_diagnoses name (a : S.diagnosis) (b : S.diagnosis) =
  Alcotest.(check string)
    (name ^ ": sketch")
    (Fsketch.Render.render a.sketch)
    (Fsketch.Render.render b.sketch);
  Alcotest.(check int) (name ^ ": iterations") a.iterations b.iterations;
  Alcotest.(check int) (name ^ ": recurrences") a.recurrences b.recurrences;
  Alcotest.(check int) (name ^ ": total runs") a.total_runs b.total_runs;
  Alcotest.(check int) (name ^ ": final sigma") a.final_sigma b.final_sigma;
  Alcotest.(check (list int)) (name ^ ": tracked") a.tracked b.tracked;
  Alcotest.(check bool)
    (name ^ ": avg overhead bit-identical")
    true
    (Int64.bits_of_float a.avg_overhead_pct
    = Int64.bits_of_float b.avg_overhead_pct);
  Alcotest.(check bool) (name ^ ": per-iteration trace") true (a.trace = b.trace);
  Alcotest.(check bool) (name ^ ": fleet ledger") true (a.fleet = b.fleet)

(* The adversarial shape of test_serve, with a checkpoint every 3
   rounds so a kill usually lands rounds past the newest checkpoint
   and recovery must replay through the real scheduler. *)
let tight =
  { Svc.default with
    Svc.max_inflight = 16; max_queue = 64; quantum = 7; round_budget = 23;
    checkpoint_every_rounds = 3 }

let one_shot (sp : Svc.spec) =
  S.diagnose ~config:sp.sp_config ~ingest:sp.sp_ingest
    ?oracle:sp.sp_oracle ~bug_name:sp.sp_name
    ~failure_type:sp.sp_failure_type ~program:sp.sp_program
    ~workload_of:sp.sp_workload_of ~failure:sp.sp_failure ()

let resolver specs =
  let by_name = Hashtbl.create (List.length specs) in
  List.iter
    (fun (sp : Svc.spec) -> Hashtbl.replace by_name sp.Svc.sp_name sp)
    specs;
  fun name -> Hashtbl.find_opt by_name name

(* ------------------------------------------------------------------ *)
(* Spec builders (as in test_serve). *)

let bugbase_spec ~faults (b : Bugbase.Common.t) =
  let _, failure = Option.get (Bugbase.Common.find_target_failure b) in
  let config =
    let base = { Gist.Config.default with preempt_prob = b.preempt_prob } in
    if faults then
      {
        base with
        Gist.Config.fault_rates = Faults.Fault.spread 0.10;
        fault_seed = 42;
      }
    else base
  in
  {
    Svc.sp_name = b.name;
    sp_failure_type = b.failure_type;
    sp_config = config;
    sp_ingest = S.Streaming;
    sp_oracle = Some (Experiments.Oracle.for_bug b);
    sp_program = b.program;
    sp_workload_of = b.workload_of;
    sp_failure = failure;
    sp_case = None;
  }

let fuzz_count = 50

let fuzz_cases =
  lazy
    (let patterns = Array.of_list Fuzz.Gen.all_patterns in
     List.init fuzz_count (fun i ->
         Fuzz.Gen.generate patterns.(i mod Array.length patterns) (42 + i)))

let fuzz_specs ~faults =
  List.filter_map
    (fun (case : Fuzz.Gen.case) ->
      let case =
        if faults then
          { case with Fuzz.Gen.c_faults = Some (Faults.Fault.spread 0.10, 42) }
        else case
      in
      match Fuzz.Check.probe case with
      | { Fuzz.Check.p_target = Some failure; _ } as p
        when Fuzz.Check.viable p ->
        Some
          {
            Svc.sp_name = case.Fuzz.Gen.c_name;
            sp_failure_type =
              Exec.Failure.kind_to_string failure.Exec.Failure.kind;
            sp_config = Fuzz.Check.config_of case;
            sp_ingest = S.Streaming;
            sp_oracle = None;
            sp_program = case.Fuzz.Gen.c_program;
            sp_workload_of = Fuzz.Gen.workload_of case;
            sp_failure = failure;
    sp_case = None;
          }
      | _ -> None)
    (Lazy.force fuzz_cases)

let small_spec name =
  let b = List.hd Bugbase.Registry.all in
  let sp = bugbase_spec ~faults:false b in
  { sp with Svc.sp_name = name }

(* ------------------------------------------------------------------ *)
(* Kill-at-every-round differential.

   [run_with_kills] drives all [specs] through one service under
   [sconfig], and after every round — every possible crash point —
   takes the journal bytes as the crash image, recovers a fresh
   service from them and continues on the recovered object.
   Completions are harvested every round (first completion per name
   wins: recovery replay is at-least-once).  Whatever the kill
   schedule did, every diagnosis must equal the one-shot reference. *)

let run_with_kills ~jobs ~sconfig specs =
  let resolve = resolver specs in
  Parallel.Pool.with_pool ~jobs (fun pool ->
      let svc = ref (Svc.create ~sconfig ~pool ()) in
      List.iter
        (fun sp ->
          match Svc.submit !svc sp with
          | Ok _ -> ()
          | Error r ->
            Alcotest.failf "submit %s: %s" sp.Svc.sp_name
              (Svc.sreject_to_string r))
        specs;
      let done_ = Hashtbl.create (List.length specs) in
      let harvest () =
        List.iter
          (fun (c : Svc.completion) ->
            if not (Hashtbl.mem done_ c.Svc.c_name) then
              Hashtbl.replace done_ c.Svc.c_name c)
          (Svc.take_completions !svc)
      in
      let kills = ref 0 in
      while Svc.step !svc do
        harvest ();
        incr kills;
        match Svc.recover ~pool ~resolve (Svc.journal_bytes !svc) with
        | Ok s -> svc := s
        | Error e ->
          Alcotest.failf "recover after round %d: %s" !kills
            (Svc.rerror_to_string e)
      done;
      harvest ();
      let st = Svc.stats !svc in
      (* The final incarnation's ledger balances after the drain. *)
      Alcotest.(check int) "ledger balances" st.Svc.st_submitted
        (st.Svc.st_completed + st.Svc.st_rejected);
      Alcotest.(check int) "nothing in flight" 0 (Svc.inflight !svc);
      Alcotest.(check int) "nothing queued" 0 (Svc.queued !svc);
      Alcotest.(check int) "no replay divergences" 0 st.Svc.st_divergences;
      Alcotest.(check bool) "killed at every round" true (!kills >= 1);
      Hashtbl.fold (fun name c acc -> (name, c) :: acc) done_ [])

let kill_differential ~jobs ~faults specs () =
  Alcotest.(check bool)
    (Printf.sprintf "enough sessions (%d)" (List.length specs))
    true
    (List.length specs >= 10);
  let reference = List.map (fun sp -> (sp.Svc.sp_name, one_shot sp)) specs in
  let served = run_with_kills ~jobs ~sconfig:tight specs in
  Alcotest.(check int) "every session completed across the kills"
    (List.length specs) (List.length served);
  List.iter
    (fun (name, (c : Svc.completion)) ->
      match c.Svc.c_result with
      | Ok d ->
        compare_diagnoses
          (Printf.sprintf "%s (jobs %d, faults %b)" name jobs faults)
          (List.assoc name reference) d
      | Error f ->
        Alcotest.failf "session %s failed: %s" name
          (Svc.session_failure_to_string f))
    served

(* ------------------------------------------------------------------ *)
(* Corpus replay through a recovery: every diagnosable shrunk
   reproducer, diagnosed across one mid-stream kill under the
   adversarial shape, still bit-identical to one-shot. *)

let corpus_cases =
  lazy
    (let dir =
       if Sys.file_exists "corpus" then "corpus"
       else if Sys.file_exists "test/corpus" then "test/corpus"
       else Filename.concat (Filename.dirname Sys.executable_name) "corpus"
     in
     match Fuzz.Corpus.load_dir dir with
     | Ok cases -> cases
     | Error e -> Alcotest.failf "corpus load: %s" e)

let corpus_spec (case : Fuzz.Gen.case) =
  match Fuzz.Check.divergence case with
  | Some _ -> None
  | None ->
    (match (Fuzz.Check.probe case).Fuzz.Check.p_target with
     | None -> None
     | Some failure ->
       Some
         {
           Svc.sp_name = case.Fuzz.Gen.c_name;
           sp_failure_type =
             Exec.Failure.kind_to_string failure.Exec.Failure.kind;
           sp_config = Fuzz.Check.config_of case;
           sp_ingest = S.Streaming;
           sp_oracle = None;
           sp_program = case.Fuzz.Gen.c_program;
           sp_workload_of = Fuzz.Gen.workload_of case;
           sp_failure = failure;
    sp_case = None;
         })

let corpus_through_recovery () =
  let specs = List.filter_map corpus_spec (Lazy.force corpus_cases) in
  Alcotest.(check bool)
    (Printf.sprintf "enough diagnosable reproducers (%d)" (List.length specs))
    true
    (List.length specs >= 15);
  let resolve = resolver specs in
  let reference = List.map (fun sp -> (sp.Svc.sp_name, one_shot sp)) specs in
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      let svc = Svc.create ~sconfig:tight ~pool () in
      List.iter (fun sp -> ignore (Svc.submit svc sp)) specs;
      let harvested = ref [] in
      (* One kill, landed mid-stream: five rounds past submission. *)
      for _ = 1 to 5 do
        ignore (Svc.step svc);
        harvested := Svc.take_completions svc @ !harvested
      done;
      let svc2 =
        match Svc.recover ~pool ~resolve (Svc.journal_bytes svc) with
        | Ok s -> s
        | Error e -> Alcotest.failf "recover: %s" (Svc.rerror_to_string e)
      in
      Svc.drain svc2;
      let done_ = Hashtbl.create (List.length specs) in
      List.iter
        (fun (c : Svc.completion) ->
          if not (Hashtbl.mem done_ c.Svc.c_name) then
            Hashtbl.replace done_ c.Svc.c_name c)
        (!harvested @ Svc.take_completions svc2);
      Alcotest.(check int) "every reproducer completed" (List.length specs)
        (Hashtbl.length done_);
      Hashtbl.iter
        (fun name (c : Svc.completion) ->
          match c.Svc.c_result with
          | Ok d -> compare_diagnoses name (List.assoc name reference) d
          | Error f ->
            Alcotest.failf "session %s failed: %s" name
              (Svc.session_failure_to_string f))
        done_)

(* ------------------------------------------------------------------ *)
(* Chaos campaign over the Bugbase: seeded kills, torn tails and
   corrupted checkpoints via the harness — every bug still completes,
   bit-identically, with zero failed recoveries. *)

let bugbase_chaos () =
  let specs = List.map (bugbase_spec ~faults:false) Bugbase.Registry.all in
  let resolve = resolver specs in
  let reference = List.map (fun sp -> (sp.Svc.sp_name, one_shot sp)) specs in
  let rates =
    { Faults.Chaos.kill = 0.3; ckpt_corrupt = 0.3; torn_write = 0.3;
      poison = 0.0 }
  in
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      let svc = Svc.create ~sconfig:tight ~pool () in
      List.iter (fun sp -> ignore (Svc.submit svc sp)) specs;
      let oc = Serve.Chaos.drive ~pool ~rates ~seed:7 ~resolve ~specs svc in
      Alcotest.(check bool) "the campaign killed the service" true
        (oc.Serve.Chaos.o_kills >= 1);
      (* A refusal is legal only when damage ate every checkpoint (the
         campaign then continues on the live object); it must stay
         bounded by the kills that carried damage. *)
      Alcotest.(check bool)
        (Printf.sprintf "refusals (%d) bounded by damaged kills (%d)"
           oc.Serve.Chaos.o_failed_recoveries
           (oc.Serve.Chaos.o_torn + oc.Serve.Chaos.o_corrupted))
        true
        (oc.Serve.Chaos.o_failed_recoveries
        <= oc.Serve.Chaos.o_torn + oc.Serve.Chaos.o_corrupted);
      Alcotest.(check int) "every bug completed" (List.length specs)
        (List.length oc.Serve.Chaos.o_done);
      List.iter
        (fun (name, (c : Svc.completion)) ->
          match c.Svc.c_result with
          | Ok d -> compare_diagnoses name (List.assoc name reference) d
          | Error f ->
            Alcotest.failf "session %s failed: %s" name
              (Svc.session_failure_to_string f))
        oc.Serve.Chaos.o_done)

(* ------------------------------------------------------------------ *)
(* Journal codec and damage model. *)

let sample_records =
  [
    J.Submitted { id = 1; name = "pbzip2"; rejected = false };
    J.Submitted { id = 2; name = "curl"; rejected = true };
    J.Round { round = 1; digest = 0x1234ABCD };
    J.Completed { id = 1; digest = 0x77FF0011 };
    J.Checkpoint { round = 1; state = "state bytes \x00\xff here" };
    J.Round { round = 2; digest = 42 };
  ]

let journal_tests =
  [
    Alcotest.test_case "codec roundtrip" `Quick (fun () ->
        let j = J.create () in
        List.iter (J.append j) sample_records;
        let entries = J.load (J.contents j) in
        Alcotest.(check int) "all records back" (List.length sample_records)
          (List.length entries);
        List.iter2
          (fun r e ->
            match e with
            | J.Rec r' ->
              Alcotest.(check bool) "record equal" true (r = r')
            | J.Damaged { reason; _ } ->
              Alcotest.failf "record damaged: %s" reason)
          sample_records entries);
    Alcotest.test_case "any prefix is loadable; a torn tail truncates"
      `Quick (fun () ->
        let j = J.create () in
        List.iter (J.append j) sample_records;
        let bytes = J.contents j in
        (* Every tear length: load never raises, never fabricates. *)
        for n = 0 to String.length bytes do
          let entries = J.load (J.tear ~n bytes) in
          Alcotest.(check bool)
            (Printf.sprintf "tear %d: a prefix of the records" n)
            true
            (List.length entries <= List.length sample_records
            && List.for_all
                 (function J.Rec _ -> true | J.Damaged _ -> false)
                 entries)
        done;
        (* A one-byte tear must drop exactly the last record. *)
        Alcotest.(check int) "one-byte tear drops the tail record"
          (List.length sample_records - 1)
          (List.length (J.load (J.tear ~n:1 bytes))));
    Alcotest.test_case
      "a corrupted checkpoint degrades to Damaged; later records load"
      `Quick (fun () ->
        let j = J.create () in
        List.iter (J.append j) sample_records;
        let bytes =
          match J.corrupt_last_checkpoint ~salt:7 (J.contents j) with
          | Some b -> b
          | None -> Alcotest.fail "no checkpoint found to corrupt"
        in
        let entries = J.load bytes in
        Alcotest.(check int) "framing intact: every record accounted for"
          (List.length sample_records)
          (List.length entries);
        (match List.nth entries 4 with
         | J.Damaged { kind; _ } ->
           Alcotest.(check int) "the checkpoint is the damaged one" 4 kind
         | J.Rec _ -> Alcotest.fail "corrupted checkpoint loaded as intact");
        match List.nth entries 5 with
        | J.Rec (J.Round { round = 2; digest = 42 }) -> ()
        | _ -> Alcotest.fail "the record after the damage did not load");
    Alcotest.test_case "file roundtrip" `Quick (fun () ->
        let j = J.create () in
        List.iter (J.append j) sample_records;
        let path = Filename.temp_file "journal" ".bin" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            J.save_file path (J.contents j);
            match J.load_file path with
            | Some bytes ->
              Alcotest.(check string) "bytes back" (J.contents j) bytes
            | None -> Alcotest.fail "load_file found nothing"));
  ]

(* ------------------------------------------------------------------ *)
(* Checkpoint corruption during recovery: the newest checkpoint is
   damaged, recovery falls back to an older one and replays further —
   every session still completes correctly. *)

let corrupted_checkpoint_fallback () =
  let specs = List.map small_spec [ "a"; "b"; "c" ] in
  let resolve = resolver specs in
  let reference = List.map (fun sp -> (sp.Svc.sp_name, one_shot sp)) specs in
  Parallel.Pool.with_pool ~jobs:2 (fun pool ->
      let sconfig = { tight with Svc.checkpoint_every_rounds = 2 } in
      let svc = Svc.create ~sconfig ~pool () in
      List.iter (fun sp -> ignore (Svc.submit svc sp)) specs;
      let harvested = ref [] in
      for _ = 1 to 5 do
        ignore (Svc.step svc);
        harvested := Svc.take_completions svc @ !harvested
      done;
      let bytes =
        match J.corrupt_last_checkpoint ~salt:3 (Svc.journal_bytes svc) with
        | Some b -> b
        | None -> Alcotest.fail "no checkpoint to corrupt after 5 rounds"
      in
      let svc2 =
        match Svc.recover ~pool ~resolve bytes with
        | Ok s -> s
        | Error e ->
          Alcotest.failf "recover should fall back to an older checkpoint: %s"
            (Svc.rerror_to_string e)
      in
      Svc.drain svc2;
      let done_ = Hashtbl.create 3 in
      List.iter
        (fun (c : Svc.completion) ->
          if not (Hashtbl.mem done_ c.Svc.c_name) then
            Hashtbl.replace done_ c.Svc.c_name c)
        (!harvested @ Svc.take_completions svc2);
      Alcotest.(check int) "all three sessions completed" 3
        (Hashtbl.length done_);
      Hashtbl.iter
        (fun name (c : Svc.completion) ->
          match c.Svc.c_result with
          | Ok d -> compare_diagnoses name (List.assoc name reference) d
          | Error f ->
            Alcotest.failf "session %s failed: %s" name
              (Svc.session_failure_to_string f))
        done_)

(* ------------------------------------------------------------------ *)
(* Blast-radius containment. *)

let containment_tests =
  [
    Alcotest.test_case
      "a poisoned session quarantines; the service survives" `Quick
      (fun () ->
        let rates = { Faults.Chaos.zero with Faults.Chaos.poison = 1.0 } in
        let poisoned =
          Serve.Chaos.poison_spec ~rates ~seed:9 (small_spec "poisoned")
        in
        let healthy = small_spec "healthy" in
        let svc = Svc.create ~sconfig:Svc.default () in
        ignore (Svc.submit svc poisoned);
        ignore (Svc.submit svc healthy);
        Svc.drain svc;
        let completions = Svc.take_completions svc in
        Alcotest.(check int) "both sessions completed" 2
          (List.length completions);
        List.iter
          (fun (c : Svc.completion) ->
            match (c.Svc.c_name, c.Svc.c_result) with
            | "poisoned", Error f ->
              Alcotest.(check string) "quarantined" "quarantined"
                (Svc.failure_reason_label f.Svc.sf_reason);
              Alcotest.(check int) "struck out"
                Svc.default.Svc.max_session_strikes f.Svc.sf_strikes
            | "poisoned", Ok _ ->
              Alcotest.fail "poisoned session produced a diagnosis"
            | "healthy", Ok _ -> ()
            | "healthy", Error f ->
              Alcotest.failf "healthy session failed: %s"
                (Svc.session_failure_to_string f)
            | name, _ -> Alcotest.failf "unexpected session %s" name)
          completions;
        let st = Svc.stats svc in
        Alcotest.(check int) "ledger balances across quarantine"
          st.Svc.st_submitted
          (st.Svc.st_completed + st.Svc.st_rejected);
        Alcotest.(check int) "the failure is booked" 1 st.Svc.st_failed);
    Alcotest.test_case "deadline eviction books a typed timeout" `Quick
      (fun () ->
        (* One slot per round against a bug needing hundreds: the
           1-round deadline must evict. *)
        let sconfig =
          { Svc.default with
            Svc.quantum = 1; round_budget = 1; session_deadline_rounds = 1 }
        in
        let svc = Svc.create ~sconfig () in
        ignore (Svc.submit svc (small_spec "doomed"));
        Svc.drain svc;
        (match Svc.take_completions svc with
         | [ { Svc.c_result = Error f; _ } ] ->
           Alcotest.(check string) "timed out" "timed-out"
             (Svc.failure_reason_label f.Svc.sf_reason)
         | [ { Svc.c_result = Ok _; _ } ] ->
           Alcotest.fail "a 1-round deadline produced a diagnosis"
         | l -> Alcotest.failf "%d completions, expected 1" (List.length l));
        let st = Svc.stats svc in
        Alcotest.(check int) "ledger balances across eviction"
          st.Svc.st_submitted
          (st.Svc.st_completed + st.Svc.st_rejected));
    Alcotest.test_case "Busy carries the deterministic retry hint" `Quick
      (fun () ->
        let sconfig =
          { Svc.default with
            Svc.max_inflight = 1; max_queue = 4; quantum = 4;
            round_budget = 4 }
        in
        let svc = Svc.create ~sconfig () in
        for i = 1 to 4 do
          match Svc.submit svc (small_spec (string_of_int i)) with
          | Ok _ -> ()
          | Error _ -> Alcotest.failf "submit %d refused below the cap" i
        done;
        (match Svc.submit svc (small_spec "overflow") with
         | Error (Svc.Busy { queued = 4; retry_after_rounds; _ }) ->
           (* ceil(queued * quantum / round_budget) = ceil(16/4) = 4 *)
           Alcotest.(check int) "hint is the backlog depth in rounds" 4
             retry_after_rounds
         | Error (Svc.Busy { queued; _ }) ->
           Alcotest.failf "queued %d, expected 4" queued
         | Error (Svc.Shed _) -> Alcotest.fail "shed without triage"
         | Ok _ -> Alcotest.fail "submit accepted past the cap");
        Svc.drain svc;
        ignore (Svc.take_completions svc));
  ]

(* ------------------------------------------------------------------ *)
(* Session snapshot/restore. *)

let session_of (sp : Svc.spec) =
  S.Session.create ~config:sp.Svc.sp_config ~ingest:sp.Svc.sp_ingest
    ?oracle:sp.Svc.sp_oracle ~bug_name:sp.Svc.sp_name
    ~failure_type:sp.Svc.sp_failure_type ~program:sp.Svc.sp_program
    ~workload_of:sp.Svc.sp_workload_of ~failure:sp.Svc.sp_failure ()

let finish s =
  let rec loop () =
    match S.Session.need s with
    | S.Session.Finished -> S.Session.result s
    | S.Session.Slots n ->
      let thunks = S.Session.grant s (min 5 n) in
      S.Session.deliver s (Array.map (fun th -> th ()) thunks);
      loop ()
  in
  loop ()

(* Drive [cycles] grant/deliver exchanges, stopping early if the
   session finishes first; the session is quiescent on return. *)
let advance s cycles =
  let rec loop k =
    if k > 0 then
      match S.Session.need s with
      | S.Session.Finished -> ()
      | S.Session.Slots n ->
        let thunks = S.Session.grant s (min 5 n) in
        S.Session.deliver s (Array.map (fun th -> th ()) thunks);
        loop (k - 1)
  in
  loop cycles

let restore_of (sp : Svc.spec) bytes =
  S.Session.restore ~config:sp.Svc.sp_config ~ingest:sp.Svc.sp_ingest
    ?oracle:sp.Svc.sp_oracle ~bug_name:sp.Svc.sp_name
    ~failure_type:sp.Svc.sp_failure_type ~program:sp.Svc.sp_program
    ~workload_of:sp.Svc.sp_workload_of ~failure:sp.Svc.sp_failure bytes

let snapshot_tests =
  [
    Alcotest.test_case
      "a restored session is a bit-identical continuation" `Quick (fun () ->
        let sp = bugbase_spec ~faults:true (List.hd Bugbase.Registry.all) in
        let original = session_of sp in
        advance original 3;
        let bytes = S.Session.snapshot original in
        let restored =
          match restore_of sp bytes with
          | Ok s -> s
          | Error e ->
            Alcotest.failf "restore: %s" (S.Session.snapshot_error_to_string e)
        in
        compare_diagnoses "mid-flight snapshot" (finish original)
          (finish restored));
    Alcotest.test_case "typed refusals" `Quick (fun () ->
        let sp = bugbase_spec ~faults:false (List.hd Bugbase.Registry.all) in
        let s = session_of sp in
        advance s 2;
        let bytes = S.Session.snapshot s in
        (match restore_of sp (String.sub bytes 0 6) with
         | Error S.Session.Snapshot_truncated -> ()
         | Error e ->
           Alcotest.failf "truncated: %s"
             (S.Session.snapshot_error_to_string e)
         | Ok _ -> Alcotest.fail "truncated bytes restored");
        (let b = Bytes.of_string bytes in
         Bytes.set b 0 '\x00';
         match restore_of sp (Bytes.to_string b) with
         | Error S.Session.Snapshot_bad_magic -> ()
         | Error e ->
           Alcotest.failf "bad magic: %s"
             (S.Session.snapshot_error_to_string e)
         | Ok _ -> Alcotest.fail "wrong magic restored");
        (let b = Bytes.of_string bytes in
         let mid = Bytes.length b / 2 in
         Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x40));
         match restore_of sp (Bytes.to_string b) with
         | Error S.Session.Snapshot_bad_digest -> ()
         | Error e ->
           Alcotest.failf "bad digest: %s"
             (S.Session.snapshot_error_to_string e)
         | Ok _ -> Alcotest.fail "bit-rotted bytes restored");
        match
          restore_of { sp with Svc.sp_name = "somebody else" } bytes
        with
        | Error (S.Session.Snapshot_mismatch _) -> ()
        | Error e ->
          Alcotest.failf "mismatch: %s"
            (S.Session.snapshot_error_to_string e)
        | Ok _ -> Alcotest.fail "bytes restored against the wrong spec");
    Alcotest.test_case "snapshot is refused mid-grant and when done" `Quick
      (fun () ->
        let sp = bugbase_spec ~faults:false (List.hd Bugbase.Registry.all) in
        let s = session_of sp in
        (match S.Session.need s with
         | S.Session.Slots n ->
           let thunks = S.Session.grant s (min 2 n) in
           (match S.Session.snapshot s with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail "snapshot mid-grant accepted");
           S.Session.deliver s (Array.map (fun th -> th ()) thunks)
         | S.Session.Finished -> Alcotest.fail "finished before any grant");
        ignore (finish s);
        match S.Session.snapshot s with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "snapshot after Finished accepted");
  ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "recover"
    [
      ( "bugbase-kills",
        [
          Alcotest.test_case "kill at every round, jobs 1" `Slow
            (fun () ->
              kill_differential ~jobs:1 ~faults:false
                (List.map (bugbase_spec ~faults:false) Bugbase.Registry.all)
                ());
          Alcotest.test_case "kill at every round, jobs 4" `Slow
            (fun () ->
              kill_differential ~jobs:4 ~faults:false
                (List.map (bugbase_spec ~faults:false) Bugbase.Registry.all)
                ());
          Alcotest.test_case "kill at every round, 10% faults, jobs 4" `Slow
            (fun () ->
              kill_differential ~jobs:4 ~faults:true
                (List.map (bugbase_spec ~faults:true) Bugbase.Registry.all)
                ());
        ] );
      ( "fuzz-kills",
        [
          Alcotest.test_case "50 generated bugs, kill at every round" `Slow
            (fun () ->
              kill_differential ~jobs:4 ~faults:false (fuzz_specs ~faults:false)
                ());
          Alcotest.test_case
            "50 generated bugs, 10% faults, kill at every round, jobs 1"
            `Slow
            (fun () ->
              kill_differential ~jobs:1 ~faults:true (fuzz_specs ~faults:true)
                ());
        ] );
      ( "corpus",
        [
          Alcotest.test_case "corpus replay through a recovery" `Slow
            corpus_through_recovery;
        ] );
      ( "chaos",
        [ Alcotest.test_case "seeded chaos over the Bugbase" `Slow
            bugbase_chaos ] );
      ("journal", journal_tests);
      ( "fallback",
        [
          Alcotest.test_case "corrupted checkpoint falls back and replays"
            `Quick corrupted_checkpoint_fallback;
        ] );
      ("containment", containment_tests);
      ("snapshot", snapshot_tests);
    ]
