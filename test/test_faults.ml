(* Fault-injection and fleet-protocol tests.  Two properties anchor the
   robustness story: the seeded fault model is a pure function of
   (seed, client, attempt) and honest about its rates, and every
   tampered report is rejected with the right typed reason before it
   can reach aggregation or predictor ranking. *)

module F = Faults.Fault
module T = Faults.Tamper
module P = Gist.Protocol
module I = Exec.Interp

(* ------------------------------------------------------------------ *)
(* The fault model *)

let draws rates ~seed n =
  List.init n (fun c -> F.draw rates ~seed ~client:c ~attempt:0)

let model =
  [
    Alcotest.test_case "zero rates never inject" `Quick (fun () ->
        List.iter
          (fun seed ->
            List.iter
              (fun inj ->
                Alcotest.(check bool) "none" true (F.is_none inj))
              (draws F.zero ~seed 50))
          [ 0; 1; 42; 123456 ]);
    Alcotest.test_case "draw is a pure function of (seed, client, attempt)"
      `Quick (fun () ->
        let rates = F.spread 0.3 in
        for c = 0 to 40 do
          for a = 0 to 3 do
            let x = F.draw rates ~seed:9 ~client:c ~attempt:a in
            let y = F.draw rates ~seed:9 ~client:c ~attempt:a in
            if x <> y then Alcotest.fail "draw not deterministic"
          done
        done);
    Alcotest.test_case "clients and attempts are independent coordinates"
      `Quick (fun () ->
        let rates = F.spread 0.5 in
        let by_client = draws rates ~seed:3 300 in
        let distinct =
          List.exists (fun inj -> inj <> List.hd by_client) by_client
        in
        Alcotest.(check bool) "clients differ" true distinct;
        let a0 = F.draw rates ~seed:3 ~client:7 ~attempt:0 in
        let some_attempt_differs =
          List.exists
            (fun a -> F.draw rates ~seed:3 ~client:7 ~attempt:a <> a0)
            [ 1; 2; 3; 4; 5; 6; 7; 8 ]
        in
        Alcotest.(check bool) "attempts differ" true some_attempt_differs);
    Alcotest.test_case "certain rate always injects exactly that kind"
      `Quick (fun () ->
        List.iter
          (fun kind ->
            let rates = F.with_rate F.zero kind 1.0 in
            List.iter
              (fun inj ->
                Alcotest.(check (list string))
                  (F.kind_name kind) [ F.kind_name kind ]
                  (List.map F.kind_name (F.kinds_of inj)))
              (draws rates ~seed:5 40))
          F.all_kinds);
    Alcotest.test_case "observed frequency tracks the configured rate"
      `Quick (fun () ->
        let rates = F.with_rate F.zero F.Drop 0.3 in
        let n = 4000 in
        let hits =
          List.length (List.filter (fun i -> i.F.j_drop) (draws rates ~seed:11 n))
        in
        let freq = float_of_int hits /. float_of_int n in
        if abs_float (freq -. 0.3) > 0.05 then
          Alcotest.failf "drop frequency %.3f too far from 0.3" freq);
    Alcotest.test_case "spread inverts aggregate" `Quick (fun () ->
        List.iter
          (fun r ->
            let got = F.aggregate (F.spread r) in
            if abs_float (got -. r) > 1e-9 then
              Alcotest.failf "aggregate (spread %.2f) = %.6f" r got)
          [ 0.0; 0.05; 0.10; 0.25; 0.5 ];
        Alcotest.(check bool) "spread 0 is zero" true (F.is_zero (F.spread 0.0)));
    Alcotest.test_case "kind names round-trip" `Quick (fun () ->
        List.iter
          (fun k ->
            match F.kind_of_name (F.kind_name k) with
            | Some k' when k' = k -> ()
            | _ -> Alcotest.failf "round trip failed for %s" (F.kind_name k))
          F.all_kinds;
        Alcotest.(check bool) "unknown name" true
          (F.kind_of_name "meteor-strike" = None));
    Alcotest.test_case "rate accessors touch only their kind" `Quick (fun () ->
        List.iter
          (fun k ->
            let r = F.with_rate F.zero k 0.25 in
            Alcotest.(check (float 1e-9)) "set" 0.25 (F.rate_of r k);
            List.iter
              (fun k' ->
                if k' <> k then
                  Alcotest.(check (float 1e-9))
                    (F.kind_name k') 0.0 (F.rate_of r k'))
              F.all_kinds)
          F.all_kinds);
  ]

(* ------------------------------------------------------------------ *)
(* Damage models *)

let sample_packets =
  Hw.Pt.[ PGE 1; TNT [ true; false; true ]; TIP 9; PGE 4; TNT [ false ]; PGD 7 ]

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

let tamper =
  [
    Alcotest.test_case "truncate_packets yields a strict prefix" `Quick
      (fun () ->
        for salt = 0 to 30 do
          let t = T.truncate_packets ~salt sample_packets in
          Alcotest.(check bool) "strictly shorter" true
            (List.length t < List.length sample_packets);
          Alcotest.(check bool) "prefix" true (is_prefix t sample_packets)
        done);
    Alcotest.test_case "corrupt_packets changes the stream" `Quick (fun () ->
        let changed = ref 0 in
        for salt = 0 to 30 do
          if T.corrupt_packets ~salt ~n_instrs:12 sample_packets
             <> sample_packets
          then incr changed
        done;
        Alcotest.(check bool) "mostly damaging" true (!changed >= 25));
    Alcotest.test_case "corrupt_traps points a trap out of range" `Quick
      (fun () ->
        let trap =
          {
            Hw.Watchpoint.w_seq = 0;
            w_tid = 1;
            w_iid = 3;
            w_addr = 100;
            w_rw = I.Write;
            w_value = Exec.Value.VInt 7;
          }
        in
        let n_instrs = 10 in
        for salt = 0 to 10 do
          let traps = T.corrupt_traps ~salt ~n_instrs [ trap; trap ] in
          Alcotest.(check bool) "some trap out of range" true
            (List.exists
               (fun (t : Hw.Watchpoint.trap) ->
                 t.w_iid < 0 || t.w_iid >= n_instrs)
               traps)
        done);
    Alcotest.test_case "damage is deterministic in the salt" `Quick (fun () ->
        for salt = 0 to 10 do
          Alcotest.(check bool) "truncate" true
            (T.truncate_packets ~salt sample_packets
            = T.truncate_packets ~salt sample_packets);
          Alcotest.(check bool) "corrupt" true
            (T.corrupt_packets ~salt ~n_instrs:12 sample_packets
            = T.corrupt_packets ~salt ~n_instrs:12 sample_packets)
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Protocol: seal + validate *)

(* One real client report to tamper with. *)
let fixture =
  lazy
    (let program = Tsupport.Programs.counter ~locked:true in
     let all = Ir.Program.all_instrs program in
     (* iids are 1-based: the validation bound is max iid + 1 *)
     let n_instrs =
       1 + List.fold_left (fun m (i : Ir.Types.instr) -> max m i.iid) 0 all
     in
     let tracked =
       List.filteri (fun i _ -> i < 6) all
       |> List.map (fun (ins : Ir.Types.instr) -> ins.iid)
     in
     let plan = Instrument.Place.compute program tracked in
     let plan_id = Instrument.Plan.id plan in
     let report =
       Gist.Client.run_one ~plan ~wp_allowed:plan.Instrument.Plan.wp_targets
         program
         (I.workload ~args:[ Exec.Value.VInt 3 ] 1)
     in
     (report, n_instrs, plan_id))

let validate ?n_instrs ?plan_id env =
  let _, n, p = Lazy.force fixture in
  P.validate
    ~n_instrs:(Option.value ~default:n n_instrs)
    ~plan_id:(Option.value ~default:p plan_id)
    env

let seal report =
  let _, _, plan_id = Lazy.force fixture in
  P.seal ~client:0 ~plan_id report

let expect_reject name pred = function
  | Ok _ -> Alcotest.failf "%s: report was accepted" name
  | Error r ->
    if not (pred r) then
      Alcotest.failf "%s: wrong reason %s" name (P.reject_to_string r)

let protocol =
  [
    Alcotest.test_case "a sealed report validates" `Quick (fun () ->
        let report, _, _ = Lazy.force fixture in
        match validate (seal report) with
        | Ok r -> Alcotest.(check bool) "same report" true (r == report)
        | Error e -> Alcotest.failf "rejected: %s" (P.reject_to_string e));
    Alcotest.test_case "a single checksum bit flip is rejected" `Quick
      (fun () ->
        let report, _, _ = Lazy.force fixture in
        let env = seal report in
        expect_reject "bad-checksum"
          (function P.Bad_checksum -> true | _ -> false)
          (validate { env with P.e_checksum = env.P.e_checksum lxor 1 }));
    Alcotest.test_case "a foreign protocol version is rejected" `Quick
      (fun () ->
        let report, _, _ = Lazy.force fixture in
        let env = seal report in
        expect_reject "bad-version"
          (function P.Bad_version v -> v = P.version + 1 | _ -> false)
          (validate { env with P.e_version = P.version + 1 }));
    Alcotest.test_case "a stale plan digest is rejected" `Quick (fun () ->
        let report, _, plan_id = Lazy.force fixture in
        expect_reject "stale-plan"
          (function
            | P.Stale_plan { expected; got } ->
              expected = plan_id + 1 && got = plan_id
            | _ -> false)
          (validate ~plan_id:(plan_id + 1) (seal report)));
    Alcotest.test_case "client-side decode damage is rejected" `Quick
      (fun () ->
        let report, _, _ = Lazy.force fixture in
        let damaged =
          { report with Gist.Client.r_pt_errors = [ (0, Hw.Pt.Truncated) ] }
        in
        expect_reject "damaged-trace"
          (function P.Damaged_trace _ -> true | _ -> false)
          (validate (seal damaged)));
    Alcotest.test_case "out-of-range statement ids are rejected" `Quick
      (fun () ->
        let report, n_instrs, _ = Lazy.force fixture in
        let bad_exec =
          { report with Gist.Client.r_executed = [ (0, [ n_instrs + 3 ]) ] }
        in
        expect_reject "bad-payload (executed)"
          (function P.Bad_payload _ -> true | _ -> false)
          (validate (seal bad_exec));
        let bad_trap =
          {
            report with
            Gist.Client.r_traps =
              [
                {
                  Hw.Watchpoint.w_seq = 0;
                  w_tid = 0;
                  w_iid = -2;
                  w_addr = 0;
                  w_rw = I.Read;
                  w_value = Exec.Value.VInt 0;
                };
              ];
          }
        in
        expect_reject "bad-payload (trap)"
          (function P.Bad_payload _ -> true | _ -> false)
          (validate (seal bad_trap)));
    Alcotest.test_case "the checksum covers the tail of the report" `Quick
      (fun () ->
        (* [Hashtbl.hash] truncates its traversal; the explicit walk
           must notice a change in the very last fields. *)
        let report, _, _ = Lazy.force fixture in
        let c0 = P.checksum report in
        Alcotest.(check bool) "r_steps" true
          (c0 <> P.checksum { report with Gist.Client.r_steps = report.r_steps + 1 });
        Alcotest.(check bool) "r_pt_errors" true
          (c0
          <> P.checksum
               { report with Gist.Client.r_pt_errors = [ (9, Hw.Pt.Truncated) ] }))
      ;
    Alcotest.test_case "reject labels are stable counter keys" `Quick
      (fun () ->
        let labels =
          List.map P.reject_label
            [
              P.Bad_version 2;
              P.Bad_checksum;
              P.Wrong_session { expected = 0; got = 7 };
              P.Stale_plan { expected = 1; got = 2 };
              P.Damaged_trace "x";
              P.Bad_payload "y";
            ]
        in
        Alcotest.(check (list string)) "labels"
          [ "bad-version"; "bad-checksum"; "wrong-session"; "stale-plan";
            "damaged-trace"; "bad-payload" ]
          labels);
  ]

(* ------------------------------------------------------------------ *)
(* The binary wire envelope: Encode.encode / check / ingest *)

let wire_of ?(client = 0) ?plan_id report =
  let _, _, fixture_plan = Lazy.force fixture in
  let plan_id = Option.value ~default:fixture_plan plan_id in
  Gist.Protocol.Encode.encode
    (Gist.Protocol.Encode.arena ())
    ~client ~plan_id report

let ingest ?n_instrs ?plan_id bytes =
  let _, n, p = Lazy.force fixture in
  P.Encode.ingest
    ~n_instrs:(Option.value ~default:n n_instrs)
    ~plan_id:(Option.value ~default:p plan_id)
    bytes

let expect_wire_reject name pred bytes =
  expect_reject name pred (ingest bytes);
  (* [check] must agree with [ingest] layer for layer. *)
  let _, n, p = Lazy.force fixture in
  expect_reject (name ^ " (check)") pred (P.Encode.check ~n_instrs:n ~plan_id:p bytes)

let wire =
  [
    Alcotest.test_case "encode / ingest round-trips the whole report"
      `Quick (fun () ->
        let report, _, _ = Lazy.force fixture in
        match ingest (wire_of report) with
        | Ok r ->
          Alcotest.(check bool) "structurally equal" true (r = report)
        | Error e -> Alcotest.failf "rejected: %s" (P.reject_to_string e));
    Alcotest.test_case "check accepts what ingest accepts" `Quick (fun () ->
        let report, n, p = Lazy.force fixture in
        match P.Encode.check ~n_instrs:n ~plan_id:p (wire_of report) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "rejected: %s" (P.reject_to_string e));
    Alcotest.test_case "a foreign version byte is rejected first" `Quick
      (fun () ->
        let report, _, _ = Lazy.force fixture in
        let b = Bytes.of_string (wire_of report) in
        (* The envelope leads with the version varint; 4 is a valid
           one-byte varint that is not [P.version]. *)
        Bytes.set b 0 '\004';
        expect_wire_reject "bad-version"
          (function P.Bad_version 4 -> true | _ -> false)
          (Bytes.to_string b));
    Alcotest.test_case "a payload bit flip is a checksum mismatch" `Quick
      (fun () ->
        let report, _, _ = Lazy.force fixture in
        let s = wire_of report in
        let b = Bytes.of_string s in
        let last = Bytes.length b - 1 in
        Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0x40));
        expect_wire_reject "bad-checksum"
          (function P.Bad_checksum -> true | _ -> false)
          (Bytes.to_string b));
    Alcotest.test_case "a stale plan id is rejected" `Quick (fun () ->
        let report, _, plan_id = Lazy.force fixture in
        expect_wire_reject "stale-plan"
          (function
            | P.Stale_plan { expected; got } ->
              expected = plan_id && got = plan_id + 1
            | _ -> false)
          (wire_of ~plan_id:(plan_id + 1) report));
    Alcotest.test_case "a dropped ring outranks payload damage" `Quick
      (fun () ->
        let report, n_instrs, _ = Lazy.force fixture in
        (* Both a transport drop and an out-of-range statement: the
           drop must win, mirroring [validate]'s priority. *)
        let damaged =
          {
            report with
            Gist.Client.r_pt_errors = [ (1, Hw.Pt.Empty_stream) ];
            Gist.Client.r_executed = [ (0, [ n_instrs + 3 ]) ];
          }
        in
        expect_wire_reject "dropped-trace"
          (function P.Dropped_trace 1 -> true | _ -> false)
          (wire_of damaged));
    Alcotest.test_case "decode damage outranks payload damage" `Quick
      (fun () ->
        let report, n_instrs, _ = Lazy.force fixture in
        let damaged =
          {
            report with
            Gist.Client.r_pt_errors = [ (0, Hw.Pt.Truncated) ];
            Gist.Client.r_executed = [ (0, [ n_instrs + 3 ]) ];
          }
        in
        expect_wire_reject "damaged-trace"
          (function P.Damaged_trace _ -> true | _ -> false)
          (wire_of damaged));
    Alcotest.test_case "out-of-range statement ids are rejected" `Quick
      (fun () ->
        let report, n_instrs, _ = Lazy.force fixture in
        let bad =
          { report with Gist.Client.r_executed = [ (0, [ n_instrs + 3 ]) ] }
        in
        expect_wire_reject "bad-payload"
          (function P.Bad_payload _ -> true | _ -> false)
          (wire_of bad));
    Alcotest.test_case "dropped-trace has a stable counter label" `Quick
      (fun () ->
        Alcotest.(check string) "label" "dropped-trace"
          (P.reject_label (P.Dropped_trace 3)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"every envelope truncation and bit flip is rejected"
         ~count:200
         QCheck.(pair (int_bound 10_000) bool)
         (fun (salt, flip) ->
           let report, _, _ = Lazy.force fixture in
           let bytes = wire_of report in
           let bad =
             if flip then T.flip_wire_byte ~salt bytes
             else T.truncate_wire ~salt bytes
           in
           bad <> bytes && Result.is_error (ingest bad)));
  ]

(* ------------------------------------------------------------------ *)
(* End to end: diagnosis under an aggressive fault environment *)

let faulty_diagnosis ?(jobs = 0) () =
  let bug = Bugbase.Curl.bug in
  let _, failure = Option.get (Bugbase.Common.find_target_failure bug) in
  let config =
    {
      Gist.Config.default with
      preempt_prob = bug.preempt_prob;
      fault_rates = F.spread 0.25;
      fault_seed = 7;
    }
  in
  let run pool =
    Gist.Server.diagnose ~config ?pool ~bug_name:bug.name
      ~failure_type:bug.failure_type ~program:bug.program
      ~workload_of:bug.workload_of ~failure ()
  in
  if jobs = 0 then run None
  else
    let pool = Parallel.Pool.create ~jobs in
    Fun.protect
      ~finally:(fun () -> Parallel.Pool.shutdown pool)
      (fun () -> run (Some pool))

let sum_counts l = List.fold_left (fun a (_, n) -> a + n) 0 l

let end_to_end =
  [
    Alcotest.test_case "the fleet ledger balances" `Quick (fun () ->
        let d = faulty_diagnosis () in
        let f = d.Gist.Server.fleet in
        Alcotest.(check bool) "faults were injected" true (f.f_lost + f.f_rejected > 0);
        Alcotest.(check int) "dispatched = delivered + lost" f.f_dispatched
          (f.f_delivered + f.f_lost);
        Alcotest.(check int) "delivered = valid + rejected" f.f_delivered
          (f.f_valid + f.f_rejected);
        Alcotest.(check int) "reasons sum to rejections" f.f_rejected
          (sum_counts f.f_by_reason);
        Alcotest.(check bool) "kinds cover losses and rejections" true
          (sum_counts f.f_by_kind >= f.f_lost + f.f_rejected);
        (* the per-iteration trace tells the same story *)
        let tr = d.Gist.Server.trace in
        Alcotest.(check int) "trace lost" f.f_lost
          (List.fold_left (fun a i -> a + i.Gist.Server.it_lost) 0 tr);
        Alcotest.(check int) "trace rejected" f.f_rejected
          (List.fold_left (fun a i -> a + i.Gist.Server.it_rejected) 0 tr);
        Alcotest.(check bool) "simulated time accrued" true
          (d.Gist.Server.online_time_s > 0.0));
    Alcotest.test_case "faulty diagnosis is pool-size independent" `Slow
      (fun () ->
        let a = faulty_diagnosis () in
        let b = faulty_diagnosis ~jobs:3 () in
        Alcotest.(check string) "sketch"
          (Fsketch.Render.render a.Gist.Server.sketch)
          (Fsketch.Render.render b.Gist.Server.sketch);
        Alcotest.(check bool) "fleet stats" true
          (a.Gist.Server.fleet = b.Gist.Server.fleet);
        Alcotest.(check int) "total runs" a.Gist.Server.total_runs
          b.Gist.Server.total_runs);
  ]

let () =
  Alcotest.run "faults"
    [
      ("model", model);
      ("tamper", tamper);
      ("protocol", protocol);
      ("wire", wire);
      ("end-to-end", end_to_end);
    ]
