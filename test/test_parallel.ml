(* The parallel execution layer: the domain pool's ordering and
   nesting guarantees, the bit-identical parallel [Server.diagnose],
   and the memoised analysis cache. *)

module Pool = Parallel.Pool

(* ------------------------------------------------------------------ *)
(* Pool semantics. *)

let squares n = List.init n (fun i -> i * i)

let pool_map =
  let case jobs =
    Alcotest.test_case
      (Printf.sprintf "map with %d domains equals sequential map" jobs)
      `Quick (fun () ->
        Pool.with_pool ~jobs (fun p ->
            Alcotest.(check (list int))
              "ordered results" (squares 40)
              (Pool.map p (fun i -> i * i) (List.init 40 Fun.id))))
  in
  [
    case 0;
    case 1;
    case 2;
    case 4;
    Alcotest.test_case "map_array keeps submission order under load" `Quick
      (fun () ->
        Pool.with_pool ~jobs:3 (fun p ->
            (* Unequal task costs: completion order differs from
               submission order, results must not. *)
            let xs = Array.init 24 (fun i -> i) in
            let out =
              Pool.map_array p
                (fun i ->
                  let spin = if i mod 3 = 0 then 20_000 else 10 in
                  let acc = ref 0 in
                  for k = 1 to spin do acc := (!acc + (k * i)) mod 65536 done;
                  ignore !acc;
                  i)
                xs
            in
            Alcotest.(check (list int))
              "identity preserved" (Array.to_list xs) (Array.to_list out)));
    Alcotest.test_case "first exception in submission order is re-raised"
      `Quick (fun () ->
        Pool.with_pool ~jobs:2 (fun p ->
            match
              Pool.map p
                (fun i -> if i >= 5 then failwith (string_of_int i) else i)
                (List.init 10 Fun.id)
            with
            | _ -> Alcotest.fail "expected an exception"
            | exception Failure msg ->
              Alcotest.(check string) "earliest failing index" "5" msg));
    Alcotest.test_case "nested maps on one pool do not deadlock" `Quick
      (fun () ->
        Pool.with_pool ~jobs:2 (fun p ->
            let out =
              Pool.map p
                (fun i ->
                  List.fold_left ( + ) 0
                    (Pool.map p (fun j -> (10 * i) + j) [ 1; 2; 3 ]))
                [ 0; 1; 2; 3 ]
            in
            Alcotest.(check (list int))
              "nested results" [ 6; 36; 66; 96 ] out));
  ]

let map_until =
  let run_stream jobs ~stop_at ~stream_len =
    Pool.with_pool ~jobs (fun p ->
        let consumed = ref [] in
        let n =
          Pool.map_until p
            ~next:(fun i ->
              if i >= stream_len then None else Some (fun () -> i * 2))
            ~consume:(fun i r ->
              Alcotest.(check int) "consume index" i (r / 2);
              consumed := r :: !consumed;
              r < stop_at)
            ()
        in
        (n, List.rev !consumed))
  in
  [
    Alcotest.test_case "consumes in order and stops at the predicate"
      `Quick (fun () ->
        (* Stop once a result >= 10 is consumed: results 0,2,..,10. *)
        List.iter
          (fun jobs ->
            let n, consumed = run_stream jobs ~stop_at:9 ~stream_len:100 in
            Alcotest.(check int) (Printf.sprintf "count at %d jobs" jobs) 6 n;
            Alcotest.(check (list int))
              (Printf.sprintf "prefix at %d jobs" jobs)
              [ 0; 2; 4; 6; 8; 10 ] consumed)
          [ 0; 1; 2; 4 ]);
    Alcotest.test_case "exhausts the stream when never stopped" `Quick
      (fun () ->
        let n, consumed = run_stream 2 ~stop_at:max_int ~stream_len:17 in
        Alcotest.(check int) "all consumed" 17 n;
        Alcotest.(check int) "last" 32 (List.nth consumed 16));
    Alcotest.test_case "empty stream consumes nothing" `Quick (fun () ->
        let n, consumed = run_stream 2 ~stop_at:max_int ~stream_len:0 in
        Alcotest.(check int) "zero" 0 n;
        Alcotest.(check (list int)) "none" [] consumed);
  ]

(* ------------------------------------------------------------------ *)
(* Parallel diagnosis is bit-identical to sequential diagnosis. *)

let diagnose ?pool (bug : Bugbase.Common.t) =
  let _, failure = Option.get (Bugbase.Common.find_target_failure bug) in
  let config =
    { Gist.Config.default with Gist.Config.preempt_prob = bug.preempt_prob }
  in
  Gist.Server.diagnose ~config ?pool
    ~oracle:(Experiments.Oracle.for_bug bug)
    ~bug_name:bug.name ~failure_type:bug.failure_type ~program:bug.program
    ~workload_of:bug.workload_of ~failure ()

let check_identical name (a : Gist.Server.diagnosis) (b : Gist.Server.diagnosis)
    =
  Alcotest.(check (list int))
    (name ^ ": sketch statements")
    (Fsketch.Sketch.iids a.sketch)
    (Fsketch.Sketch.iids b.sketch);
  Alcotest.(check int) (name ^ ": recurrences") a.recurrences b.recurrences;
  Alcotest.(check int) (name ^ ": total runs") a.total_runs b.total_runs;
  Alcotest.(check int) (name ^ ": iterations") a.iterations b.iterations;
  Alcotest.(check int) (name ^ ": final sigma") a.final_sigma b.final_sigma;
  Alcotest.(check (list int)) (name ^ ": tracked") a.tracked b.tracked;
  List.iter2
    (fun (x : Gist.Server.iteration_info) (y : Gist.Server.iteration_info) ->
      Alcotest.(check int) (name ^ ": trace sigma") x.it_sigma y.it_sigma;
      Alcotest.(check int) (name ^ ": trace fails") x.it_fails y.it_fails;
      Alcotest.(check int) (name ^ ": trace succs") x.it_succs y.it_succs;
      Alcotest.(check int) (name ^ ": trace clients") x.it_clients y.it_clients)
    a.trace b.trace;
  Alcotest.(check (float 1e-9))
    (name ^ ": overhead")
    a.avg_overhead_pct b.avg_overhead_pct

let parallel_diagnose =
  let case (bug : Bugbase.Common.t) jobs =
    Alcotest.test_case
      (Printf.sprintf "%s with %d domains equals sequential" bug.name jobs)
      `Quick (fun () ->
        let seq = diagnose bug in
        Pool.with_pool ~jobs (fun pool ->
            check_identical bug.name seq (diagnose ~pool bug)))
  in
  [
    case Bugbase.Pbzip2.bug 2;
    case Bugbase.Curl.bug 2;
    case Bugbase.Transmission.bug 3;
    case Bugbase.Sqlite.bug 2;
  ]

(* ------------------------------------------------------------------ *)
(* The analysis cache. *)

let cache =
  [
    Alcotest.test_case "second lookup is a hit on the same graph" `Quick
      (fun () ->
        Analysis.Cache.clear ();
        let p = Bugbase.Pbzip2.bug.program in
        let g1 = Analysis.Cache.icfg p in
        let h0 = Analysis.Cache.hits () in
        let g2 = Analysis.Cache.icfg p in
        Alcotest.(check bool) "same graph instance" true (g1 == g2);
        Alcotest.(check int) "one more hit" (h0 + 1) (Analysis.Cache.hits ());
        Alcotest.(check int) "single miss" 1 (Analysis.Cache.misses ()));
    Alcotest.test_case "cached graphs equal a fresh build" `Quick (fun () ->
        let p = Bugbase.Curl.bug.program in
        let cached = Analysis.Cache.icfg p in
        let fresh = Analysis.Icfg.build p in
        List.iter
          (fun (f : Ir.Types.func) ->
            let c = Analysis.Icfg.cfg_of cached f.fname in
            let d = Analysis.Icfg.cfg_of fresh f.fname in
            Alcotest.(check int)
              (f.fname ^ ": block count")
              (Analysis.Cfg.n_blocks d) (Analysis.Cfg.n_blocks c);
            for b = 0 to Analysis.Cfg.n_blocks c - 1 do
              Alcotest.(check (list int))
                (Printf.sprintf "%s: succs of %d" f.fname b)
                (Analysis.Cfg.succs d b) (Analysis.Cfg.succs c b);
              Alcotest.(check (list int))
                (Printf.sprintf "%s: preds of %d" f.fname b)
                (Analysis.Cfg.preds d b) (Analysis.Cfg.preds c b)
            done)
          p.funcs;
        Alcotest.(check int)
          "reachable nodes"
          (Hashtbl.length (Analysis.Icfg.reachable_nodes fresh))
          (Hashtbl.length (Analysis.Icfg.reachable_nodes cached)));
    Alcotest.test_case "slicer and placer share one build per program"
      `Quick (fun () ->
        Analysis.Cache.clear ();
        let bug = Bugbase.Pbzip2.bug in
        let _, failure = Option.get (Bugbase.Common.find_target_failure bug) in
        let slice = Slicing.Slicer.compute bug.program failure in
        let tracked = Slicing.Slicer.take slice 4 in
        let _ = Instrument.Place.compute bug.program tracked in
        let _ = Instrument.Place.compute bug.program tracked in
        Alcotest.(check int) "one build" 1 (Analysis.Cache.misses ());
        Alcotest.(check bool) "hits accumulated" true
          (Analysis.Cache.hits () >= 2));
    Alcotest.test_case "concurrent lookups from pool workers are safe"
      `Quick (fun () ->
        Analysis.Cache.clear ();
        let programs =
          [
            Bugbase.Pbzip2.bug.program;
            Bugbase.Curl.bug.program;
            Bugbase.Sqlite.bug.program;
          ]
        in
        Pool.with_pool ~jobs:3 (fun p ->
            let counts =
              Pool.map p
                (fun prog ->
                  List.init 8 (fun _ ->
                      Hashtbl.length
                        (Analysis.Icfg.reachable_nodes
                           (Analysis.Cache.icfg prog)))
                  |> List.sort_uniq compare |> List.length)
                (programs @ programs)
            in
            List.iter
              (Alcotest.(check int) "stable reachable-node count" 1)
              counts);
        Alcotest.(check int) "three programs, three builds" 3
          (Analysis.Cache.misses ()));
  ]

let () =
  Alcotest.run "parallel"
    [
      ("pool-map", pool_map);
      ("map-until", map_until);
      ("parallel-diagnose", parallel_diagnose);
      ("analysis-cache", cache);
    ]
