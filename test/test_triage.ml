(* Storm-proof triage suite (lib/sketch fingerprints + lib/serve
   triage).

   What it pins down:

     - fingerprint invariance: the triage fingerprint of a failure
       ignores everything that varies across recurrences of one bug —
       reporting client id, free-text message, assert/type payloads —
       and is stable across recomputation and precomputed slices
       (qcheck properties over the Bugbase + fuzz population);
     - the collision audit: across the whole population of distinct
       bugs, fingerprints are pairwise distinct, and the canonical
       predictor pattern of a diagnosis is name-invariant (equal
       fingerprints can only yield equal patterns);
     - coalescing semantics: a duplicate of an in-flight diagnosis
       coalesces (typed [Coalesced], counter bumps, no session); a
       duplicate of a recent diagnosis coalesces; past the recency
       window it re-opens on the recurrence lane; at the queue bound
       recurrences shed typed ([Shed] refusals, eviction notices) and
       fresh bugs never do; the ledger balances with the two new
       columns;
     - the cluster table: LRU-bounded with open clusters pinned,
       failed diagnoses dropped for a fresh attempt, codec roundtrip;
     - the storm differentials: a duplicate-heavy storm through a
       triaging service yields diagnoses bit-identical to one-shot
       [Gist.Server.diagnose] for every distinct fingerprint, with
       cluster table and lane state identical at jobs 1 and jobs 4 —
       and identical again when the service is killed and recovered
       at EVERY round boundary mid-storm;
     - the corpus reproducers: the two shrunk cases added for this
       suite coalesce mid-flight and after completion respectively. *)

module S = Gist.Server
module Svc = Serve.Service
module T = Serve.Triage
module F = Fsketch.Fingerprint

let compare_diagnoses name (a : S.diagnosis) (b : S.diagnosis) =
  Alcotest.(check string)
    (name ^ ": sketch")
    (Fsketch.Render.render a.sketch)
    (Fsketch.Render.render b.sketch);
  Alcotest.(check int) (name ^ ": iterations") a.iterations b.iterations;
  Alcotest.(check int) (name ^ ": total runs") a.total_runs b.total_runs;
  Alcotest.(check int) (name ^ ": final sigma") a.final_sigma b.final_sigma;
  Alcotest.(check (list int)) (name ^ ": tracked") a.tracked b.tracked;
  Alcotest.(check bool) (name ^ ": per-iteration trace") true (a.trace = b.trace);
  Alcotest.(check bool) (name ^ ": fleet ledger") true (a.fleet = b.fleet)

(* ------------------------------------------------------------------ *)
(* The fingerprint population: every Bugbase bug whose target failure
   manifests, plus 18 generated bugs (two per root-cause pattern).
   Probes are paid once, lazily. *)

let population =
  lazy
    (List.filter_map
       (fun (b : Bugbase.Common.t) ->
         Option.map
           (fun (_, f) -> (b.name, b.program, f))
           (Bugbase.Common.find_target_failure b))
       Bugbase.Registry.all
    @ List.filter_map
        (fun (case : Fuzz.Gen.case) ->
          match (Fuzz.Check.probe case).Fuzz.Check.p_target with
          | Some f -> Some (case.Fuzz.Gen.c_name, case.Fuzz.Gen.c_program, f)
          | None -> None)
        (Fuzz.Runner.cases ~seed:1000 ~count:18 ()))

let nth_pop i =
  let pop = Lazy.force population in
  List.nth pop (i mod List.length pop)

(* What recurrence is allowed to vary: the reporting client, the
   free-text message, and the payload carried inside the kind. *)
let vary ~tid ~message (r : Exec.Failure.report) =
  let kind =
    match r.Exec.Failure.kind with
    | Exec.Failure.Assert_fail _ -> Exec.Failure.Assert_fail message
    | Exec.Failure.Type_error _ -> Exec.Failure.Type_error message
    | k -> k
  in
  { r with Exec.Failure.kind; tid; message }

let qcheck_case name count law =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count
       QCheck.(triple small_nat small_nat printable_string)
       law)

let fingerprint_props =
  [
    qcheck_case "invariant under client id and message" 60
      (fun (i, tid, message) ->
        let _, program, failure = nth_pop i in
        F.equal (F.compute program failure)
          (F.compute program (vary ~tid ~message failure)));
    qcheck_case "stable across recomputation and precomputed slices" 40
      (fun (i, salt, _) ->
        let _, program, failure = nth_pop i in
        let slice = Slicing.Slicer.compute program failure in
        F.equal
          (F.compute ~salt program failure)
          (F.of_slice ~salt program failure slice)
        && F.to_int (F.compute ~salt program failure)
           = F.to_int (F.compute ~salt program failure));
    qcheck_case "salt separates differently configured diagnoses" 40
      (fun (i, salt, _) ->
        let _, program, failure = nth_pop i in
        not
          (F.equal
             (F.compute ~salt program failure)
             (F.compute ~salt:(salt + 1) program failure)));
    qcheck_case "non-negative and hex form is stable" 40
      (fun (i, _, _) ->
        let _, program, failure = nth_pop i in
        let fp = F.compute program failure in
        F.to_int fp >= 0 && F.to_hex fp = F.to_hex (F.compute program failure));
  ]

(* The audit: distinct bugs draw pairwise distinct fingerprints over
   the whole population (so coalescing never folds two different bugs
   together), and the canonical predictor pattern of a diagnosis is a
   pure function of the bug — not of the session name it was
   diagnosed under. *)
let collision_audit () =
  let pop = Lazy.force population in
  Alcotest.(check bool)
    (Printf.sprintf "population is real (%d bugs)" (List.length pop))
    true
    (List.length pop >= 20);
  (* Ground-truth bug identity: the failure pattern plus the
     normalized slice by source shape — what the fingerprint is
     DEFINED over.  The generator does occasionally mint the same
     core bug twice under different random padding (same source
     lines, renumbered iids); fingerprinting those equal is correct
     coalescing, not a collision. *)
  let identity program (failure : Exec.Failure.report) =
    let slice = Slicing.Slicer.compute program failure in
    let describe iid =
      let l = Ir.Program.loc_of program iid in
      Printf.sprintf "%s:%d:%s" l.Ir.Types.file l.Ir.Types.line
        (Ir.Program.text_of program iid)
    in
    let entries =
      List.map
        (fun (e : Slicing.Slicer.entry) ->
          Printf.sprintf "%d@%s" e.Slicing.Slicer.e_dist
            (describe e.Slicing.Slicer.e_iid))
        slice.Slicing.Slicer.entries
    in
    String.concat "|"
      (Exec.Failure.kind_tag failure.Exec.Failure.kind
      :: describe failure.Exec.Failure.pc
      :: (failure.Exec.Failure.stack @ entries))
  in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (name, program, failure) ->
      let fp = F.to_int (F.compute program failure) in
      let id = identity program failure in
      (match Hashtbl.find_opt seen fp with
       | Some (other, other_id) when other_id <> id ->
         Alcotest.failf "fingerprint collision: %s vs %s (%012x)" name other fp
       | _ -> ());
      Hashtbl.add seen fp (name, id))
    pop

let pattern_name_invariance () =
  let b = List.hd Bugbase.Registry.all in
  let _, failure = Option.get (Bugbase.Common.find_target_failure b) in
  let diagnose name =
    S.diagnose ~bug_name:name ~failure_type:b.failure_type
      ~program:b.program ~workload_of:b.workload_of ~failure ()
  in
  let pat (d : S.diagnosis) =
    F.pattern_of_ranked b.program d.S.sketch.Fsketch.Sketch.predictors
  in
  let p1 = pat (diagnose b.name) in
  let p2 = pat (diagnose (b.name ^ "@recurrence-7")) in
  Alcotest.(check bool) "pattern is non-empty" true (p1 <> "");
  Alcotest.(check string) "pattern ignores the session name" p1 p2

(* ------------------------------------------------------------------ *)
(* Spec builders (as in test_serve / test_recover). *)

let bugbase_spec (b : Bugbase.Common.t) =
  let _, failure = Option.get (Bugbase.Common.find_target_failure b) in
  {
    Svc.sp_name = b.name;
    sp_failure_type = b.failure_type;
    sp_config = { Gist.Config.default with preempt_prob = b.preempt_prob };
    sp_ingest = S.Streaming;
    sp_oracle = Some (Experiments.Oracle.for_bug b);
    sp_program = b.program;
    sp_workload_of = b.workload_of;
    sp_failure = failure;
    sp_case = None;
  }

(* The same underlying bug under different session names: the raw
   material of a duplicate storm. *)
let dup_spec base name = { base with Svc.sp_name = name }

let spec_a = lazy (bugbase_spec (List.hd Bugbase.Registry.all))
let spec_b = lazy (bugbase_spec (List.nth Bugbase.Registry.all 1))

let triage_cfg =
  {
    Svc.default with
    Svc.triage = true;
    max_inflight = 4;
    max_queue = 8;
    quantum = 8;
    round_budget = 32;
    recency_rounds = 0;
  }

let expect_ticket what = function
  | Ok (Svc.Ticket id) -> id
  | Ok (Svc.Coalesced _) -> Alcotest.failf "%s: coalesced, wanted a ticket" what
  | Error r -> Alcotest.failf "%s: %s" what (Svc.sreject_to_string r)

let expect_coalesced what = function
  | Ok (Svc.Coalesced { canonical; count }) -> (canonical, count)
  | Ok (Svc.Ticket id) -> Alcotest.failf "%s: ticket %d, wanted coalesced" what id
  | Error r -> Alcotest.failf "%s: %s" what (Svc.sreject_to_string r)

let coalesce_mid_flight () =
  let a = Lazy.force spec_a in
  let svc = Svc.create ~sconfig:triage_cfg () in
  let id = expect_ticket "first" (Svc.submit svc a) in
  Alcotest.(check int) "first ticket" 1 id;
  let canonical, count =
    expect_coalesced "duplicate of an in-flight diagnosis"
      (Svc.submit svc (dup_spec a "a@1"))
  in
  Alcotest.(check int) "canonical is the first ticket" 1 canonical;
  Alcotest.(check int) "recurrence count" 2 count;
  (match Svc.clusters svc with
   | [ v ] ->
     Alcotest.(check int) "cluster count" 2 v.T.v_count;
     Alcotest.(check int) "open (in flight)" (-1) v.T.v_done_round
   | l -> Alcotest.failf "expected one cluster, got %d" (List.length l));
  Svc.drain svc;
  let st = Svc.stats svc in
  Alcotest.(check int) "one session diagnosed" 1 st.Svc.st_completed;
  Alcotest.(check int) "one coalesced" 1 st.Svc.st_coalesced;
  Alcotest.(check int) "ledger balances" st.Svc.st_submitted
    (st.Svc.st_completed + st.Svc.st_rejected + st.Svc.st_coalesced
   + st.Svc.st_shed)

let coalesce_after_completion () =
  let a = Lazy.force spec_a in
  let svc = Svc.create ~sconfig:triage_cfg () in
  ignore (expect_ticket "first" (Svc.submit svc a));
  Svc.drain svc;
  (* recency_rounds = 0: a diagnosed cluster coalesces for as long as
     it stays tabled. *)
  let canonical, count =
    expect_coalesced "duplicate after completion"
      (Svc.submit svc (dup_spec a "a@later"))
  in
  Alcotest.(check int) "canonical survives completion" 1 canonical;
  Alcotest.(check int) "count" 2 count;
  (match Svc.clusters svc with
   | [ v ] ->
     Alcotest.(check bool) "diagnosed (done round recorded)" true
       (v.T.v_done_round >= 0)
   | l -> Alcotest.failf "expected one cluster, got %d" (List.length l));
  let st = Svc.stats svc in
  Alcotest.(check int) "still one diagnosis" 1 st.Svc.st_completed;
  Alcotest.(check int) "coalesced" 1 st.Svc.st_coalesced

(* Advance the service's round counter by diagnosing an unrelated
   bug: rounds only tick while there is work. *)
let burn_rounds svc spec =
  ignore (expect_ticket "filler" (Svc.submit svc spec));
  Svc.drain svc

let recurrence_lane () =
  let a = Lazy.force spec_a and b = Lazy.force spec_b in
  let sconfig = { triage_cfg with Svc.recency_rounds = 1 } in
  let svc = Svc.create ~sconfig () in
  ignore (expect_ticket "first" (Svc.submit svc a));
  Svc.drain svc;
  burn_rounds svc b;
  (* The cluster's recency window has long expired: the duplicate
     re-opens it as a recurrence-lane session. *)
  let id = expect_ticket "recurrence" (Svc.submit svc (dup_spec a "a@42")) in
  ignore (Svc.step svc : bool);
  (match
     List.find_opt (fun (v : Svc.session_view) -> v.Svc.v_id = id)
       (Svc.status svc)
   with
   | Some v ->
     Alcotest.(check string) "admitted on the recurrence lane" "recur"
       (Svc.lane_label v.Svc.v_lane)
   | None -> Alcotest.fail "recurrence session not in the ring");
  Svc.drain svc;
  let st = Svc.stats svc in
  Alcotest.(check int) "recurrence admissions" 1 st.Svc.st_recur_admitted;
  Alcotest.(check int) "fresh admissions" 2 st.Svc.st_fresh_admitted;
  Alcotest.(check int) "three diagnoses" 3 st.Svc.st_completed;
  let lv = Svc.lanes svc in
  Alcotest.(check int) "lane view: fresh admitted" 2 lv.Svc.lv_fresh_admitted;
  Alcotest.(check int) "lane view: recur admitted" 1 lv.Svc.lv_recur_admitted

let shed_at_the_bound () =
  let a = Lazy.force spec_a and b = Lazy.force spec_b in
  let sconfig =
    { triage_cfg with Svc.max_inflight = 1; max_queue = 1; recency_rounds = 1 }
  in
  let svc = Svc.create ~sconfig () in
  ignore (expect_ticket "first" (Svc.submit svc a));
  Svc.drain svc;
  burn_rounds svc b;
  (* Fill the one-slot waiting room with a fresh bug, then offer a
     recurrence: recurrences are the shed class at the bound. *)
  let c = bugbase_spec (List.nth Bugbase.Registry.all 2) in
  ignore (expect_ticket "fresh fills the queue" (Svc.submit svc c));
  (match Svc.submit svc (dup_spec a "a@storm") with
   | Error (Svc.Shed { retry_after_rounds; _ }) ->
     Alcotest.(check bool) "retry hint positive" true (retry_after_rounds >= 1)
   | Error (Svc.Busy _) -> Alcotest.fail "recurrence drew Busy, wanted Shed"
   | Ok _ -> Alcotest.fail "recurrence accepted past the bound");
  Svc.drain svc;
  let st = Svc.stats svc in
  Alcotest.(check int) "one shed" 1 st.Svc.st_shed;
  Alcotest.(check int) "ledger balances with shed" st.Svc.st_submitted
    (st.Svc.st_completed + st.Svc.st_rejected + st.Svc.st_coalesced
   + st.Svc.st_shed)

let fresh_evicts_queued_recurrence () =
  let a = Lazy.force spec_a and b = Lazy.force spec_b in
  let sconfig =
    { triage_cfg with Svc.max_inflight = 1; max_queue = 1; recency_rounds = 1 }
  in
  let svc = Svc.create ~sconfig () in
  ignore (expect_ticket "first" (Svc.submit svc a));
  Svc.drain svc;
  burn_rounds svc b;
  (* A queued recurrence holds the only slot; a fresh bug must not
     draw Busy — it evicts the recurrence, which is shed with a typed
     notice. *)
  let rid =
    expect_ticket "recurrence queues" (Svc.submit svc (dup_spec a "a@1"))
  in
  let c = bugbase_spec (List.nth Bugbase.Registry.all 2) in
  ignore (expect_ticket "fresh evicts the recurrence" (Svc.submit svc c));
  (match Svc.take_shed svc with
   | [ n ] ->
     Alcotest.(check int) "notice names the evicted ticket" rid n.Svc.sh_id;
     Alcotest.(check string) "notice names the session" "a@1" n.Svc.sh_name;
     Alcotest.(check bool) "notice retry hint positive" true
       (n.Svc.sh_retry_after_rounds >= 1)
   | l -> Alcotest.failf "expected one shed notice, got %d" (List.length l));
  Svc.drain svc;
  let st = Svc.stats svc in
  Alcotest.(check int) "shed booked" 1 st.Svc.st_shed;
  Alcotest.(check int) "ledger balances" st.Svc.st_submitted
    (st.Svc.st_completed + st.Svc.st_rejected + st.Svc.st_coalesced
   + st.Svc.st_shed)

(* ------------------------------------------------------------------ *)
(* The cluster table in isolation. *)

let lru_pins_open_clusters () =
  let t = T.create ~max_clusters:2 ~recency_rounds:0 in
  T.open_fresh t ~fp:11 ~name:"a" ~id:1;
  T.completed t ~fp:11 ~id:1 ~round:1 ~digest:101 ~ok:true;
  T.open_fresh t ~fp:22 ~name:"b" ~id:2;
  T.completed t ~fp:22 ~id:2 ~round:2 ~digest:102 ~ok:true;
  Alcotest.(check int) "at the bound" 2 (T.size t);
  (* A third cluster evicts the least recently touched Done one. *)
  T.open_fresh t ~fp:33 ~name:"c" ~id:3;
  Alcotest.(check int) "still at the bound" 2 (T.size t);
  Alcotest.(check int) "one eviction" 1 (T.evicted t);
  (match T.classify t ~round:3 11 with
   | T.New -> ()
   | _ -> Alcotest.fail "evicted fingerprint should classify New");
  (* Open clusters are pinned: with the table full of Open work, the
     bound stretches rather than dropping an in-flight cluster. *)
  T.open_fresh t ~fp:44 ~name:"d" ~id:4;
  Alcotest.(check bool) "open clusters never evicted" true (T.size t >= 2);
  (match T.classify t ~round:3 33 with
   | T.Duplicate _ -> ()
   | _ -> Alcotest.fail "open cluster must coalesce")

let failed_diagnosis_drops_cluster () =
  let t = T.create ~max_clusters:8 ~recency_rounds:0 in
  T.open_fresh t ~fp:7 ~name:"x" ~id:1;
  T.completed t ~fp:7 ~id:1 ~round:2 ~digest:0 ~ok:false;
  Alcotest.(check int) "dropped" 0 (T.size t);
  match T.classify t ~round:3 7 with
  | T.New -> ()
  | _ -> Alcotest.fail "a failed diagnosis deserves a fresh attempt"

let revert_reopen_restores_done () =
  let t = T.create ~max_clusters:8 ~recency_rounds:0 in
  T.open_fresh t ~fp:5 ~name:"y" ~id:1;
  T.completed t ~fp:5 ~id:1 ~round:4 ~digest:9 ~ok:true;
  T.reopen t ~fp:5 ~name:"y@1" ~id:2;
  T.revert_reopen t ~fp:5 ~canonical:1 ~done_round:4;
  match T.classify t ~round:4 5 with
  | T.Duplicate { canonical = 1; _ } -> ()
  | T.Duplicate _ -> Alcotest.fail "revert must restore the original canonical"
  | _ -> Alcotest.fail "reverted cluster must be Done again"

let codec_roundtrip () =
  let t = T.create ~max_clusters:4 ~recency_rounds:2 in
  T.open_fresh t ~fp:11 ~name:"a" ~id:1;
  T.completed t ~fp:11 ~id:1 ~round:1 ~digest:77 ~ok:true;
  T.open_fresh t ~fp:22 ~name:"b" ~id:2;
  T.coalesce t ~fp:22;
  let buf = Buffer.create 64 in
  T.encode buf t;
  let t' = T.decode (Hw.Wirebuf.reader (Buffer.contents buf)) in
  Alcotest.(check bool) "roundtrip equal" true (T.equal t t');
  Alcotest.(check bool) "views equal" true (T.views t = T.views t');
  T.coalesce t ~fp:22;
  Alcotest.(check bool) "equal detects divergence" false (T.equal t t')

(* ------------------------------------------------------------------ *)
(* Storm differentials.  A duplicate-heavy stream, bounded configs so
   diagnoses span a handful of rounds, submissions in two phases so
   the second phase lands on Done clusters and exercises the
   recurrence lane mid-storm. *)

let storm_tweak (c : Gist.Config.t) =
  {
    c with
    Gist.Config.max_iterations = 2;
    max_clients_per_iter = 40;
    fail_quota = 2;
    succ_quota = 4;
  }

let storm_specs =
  lazy (Serve.Stream.storm ~tweak:storm_tweak ~seed:11 ~sessions:36
          ~dup_ratio:0.7 ())

let storm_sconfig =
  {
    Svc.default with
    Svc.max_inflight = 8;
    max_queue = 64;
    quantum = 7;
    round_budget = 23;
    checkpoint_every_rounds = 3;
    triage = true;
    recency_rounds = 1;
    fresh_weight = 2;
    recur_weight = 1;
  }

let resolver specs =
  let by_name = Hashtbl.create (List.length specs) in
  List.iter
    (fun (sp : Svc.spec) -> Hashtbl.replace by_name sp.Svc.sp_name sp)
    specs;
  fun name -> Hashtbl.find_opt by_name name

let one_shot (sp : Svc.spec) =
  S.diagnose ~config:sp.sp_config ~ingest:sp.sp_ingest ?oracle:sp.sp_oracle
    ~bug_name:sp.sp_name ~failure_type:sp.sp_failure_type
    ~program:sp.sp_program ~workload_of:sp.sp_workload_of
    ~failure:sp.sp_failure ()

(* Drive [specs] through one triaging service; [kill] recovers a
   fresh incarnation from the journal after EVERY round.  Returns the
   first-sighting completions, the cluster table view, the lane view
   and the stats — everything the differentials compare. *)
let run_storm ~jobs ~kill specs =
  let resolve = resolver specs in
  Parallel.Pool.with_pool ~jobs (fun pool ->
      let svc = ref (Svc.create ~sconfig:storm_sconfig ~pool ()) in
      let done_ = Hashtbl.create 64 in
      let harvest () =
        List.iter
          (fun (c : Svc.completion) ->
            if not (Hashtbl.mem done_ c.Svc.c_name) then
              Hashtbl.replace done_ c.Svc.c_name c)
          (Svc.take_completions !svc);
        ignore (Svc.take_shed !svc : Svc.shed_notice list)
      in
      let tick () =
        let more = Svc.step !svc in
        harvest ();
        if kill then
          (match Svc.recover ~pool ~resolve (Svc.journal_bytes !svc) with
           | Ok s -> svc := s
           | Error e -> Alcotest.failf "recover: %s" (Svc.rerror_to_string e));
        more
      in
      let submit l =
        List.iter
          (fun sp ->
            match Svc.submit !svc sp with
            | Ok _ | Error (Svc.Shed _) -> ()
            | Error (Svc.Busy _ as r) ->
              Alcotest.failf "storm submit %s: %s" sp.Svc.sp_name
                (Svc.sreject_to_string r))
          l
      in
      let n = List.length specs in
      let first = List.filteri (fun i _ -> i < n / 2) specs in
      let second = List.filteri (fun i _ -> i >= n / 2) specs in
      submit first;
      for _ = 1 to 12 do
        ignore (tick () : bool)
      done;
      submit second;
      while tick () do () done;
      harvest ();
      let st = Svc.stats !svc in
      Alcotest.(check int) "storm ledger balances" st.Svc.st_submitted
        (st.Svc.st_completed + st.Svc.st_rejected + st.Svc.st_coalesced
       + st.Svc.st_shed);
      Alcotest.(check int) "nothing in flight" 0 (Svc.inflight !svc);
      Alcotest.(check int) "nothing queued" 0 (Svc.queued !svc);
      Alcotest.(check int) "no replay divergences" 0 st.Svc.st_divergences;
      ( Hashtbl.fold (fun name c acc -> (name, c) :: acc) done_ [],
        Svc.clusters !svc,
        Svc.lanes !svc,
        st ))

let check_against_one_shot label specs served =
  let resolve = resolver specs in
  let reference = Hashtbl.create 32 in
  List.iter
    (fun (name, (c : Svc.completion)) ->
      match c.Svc.c_result with
      | Ok d ->
        let sp =
          match resolve name with
          | Some sp -> sp
          | None -> Alcotest.failf "%s: unknown session %s" label name
        in
        let oracle =
          match Hashtbl.find_opt reference name with
          | Some d -> d
          | None ->
            let d = one_shot sp in
            Hashtbl.add reference name d;
            d
        in
        compare_diagnoses (Printf.sprintf "%s: %s" label name) oracle d
      | Error f ->
        Alcotest.failf "%s: session %s failed: %s" label name
          (Svc.session_failure_to_string f))
    served

let storm_differential ~jobs () =
  let specs = Lazy.force storm_specs in
  Alcotest.(check bool)
    (Printf.sprintf "storm stream is real (%d sessions)" (List.length specs))
    true
    (List.length specs >= 30);
  let served, clusters, lanes, st = run_storm ~jobs ~kill:false specs in
  Alcotest.(check bool) "duplicates coalesced" true (st.Svc.st_coalesced > 0);
  Alcotest.(check bool) "recurrence lane exercised" true
    (st.Svc.st_recur_admitted > 0);
  Alcotest.(check bool) "cluster table populated" true (clusters <> []);
  check_against_one_shot
    (Printf.sprintf "storm jobs %d" jobs)
    specs served;
  (served, clusters, lanes, st)

let storm_jobs_equivalence () =
  let _, cl1, lv1, st1 = storm_differential ~jobs:1 () in
  let _, cl4, lv4, st4 = storm_differential ~jobs:4 () in
  Alcotest.(check bool) "cluster tables identical at jobs 1 and 4" true
    (cl1 = cl4);
  Alcotest.(check bool) "lane state identical at jobs 1 and 4" true
    (lv1 = lv4);
  Alcotest.(check bool) "stats ledger identical at jobs 1 and 4" true
    (st1 = st4)

let render_clusters views =
  String.concat "\n"
    (List.map
       (fun (v : T.view) ->
         Printf.sprintf "%016x %s canon=%d count=%d done=%d" v.T.v_fp
           v.T.v_name v.T.v_canonical v.T.v_count v.T.v_done_round)
       views)

let render_lanes (lv : Svc.lane_view) =
  Printf.sprintf "fresh{q=%d c=%d adm=%d} recur{q=%d c=%d adm=%d}"
    lv.Svc.lv_fresh_queued lv.Svc.lv_fresh_credit lv.Svc.lv_fresh_admitted
    lv.Svc.lv_recur_queued lv.Svc.lv_recur_credit lv.Svc.lv_recur_admitted

let storm_kill_differential () =
  let specs = Lazy.force storm_specs in
  let served_live, cl_live, lv_live, st_live =
    run_storm ~jobs:1 ~kill:false specs
  in
  let served_kill, cl_kill, lv_kill, st_kill =
    run_storm ~jobs:1 ~kill:true specs
  in
  Alcotest.(check int) "same sessions diagnosed across the kills"
    (List.length served_live) (List.length served_kill);
  check_against_one_shot "storm with kills" specs served_kill;
  Alcotest.(check string) "cluster table bit-identical across recovery"
    (render_clusters cl_live) (render_clusters cl_kill);
  Alcotest.(check bool) "cluster views structurally equal" true
    (cl_live = cl_kill);
  Alcotest.(check string) "lane state bit-identical across recovery"
    (render_lanes lv_live) (render_lanes lv_kill);
  Alcotest.(check int) "same coalesced count" st_live.Svc.st_coalesced
    st_kill.Svc.st_coalesced;
  Alcotest.(check int) "same shed count" st_live.Svc.st_shed
    st_kill.Svc.st_shed;
  Alcotest.(check int) "same recurrence admissions"
    st_live.Svc.st_recur_admitted st_kill.Svc.st_recur_admitted

(* ------------------------------------------------------------------ *)
(* The corpus reproducers added for this suite: 20-* coalesces against
   its own in-flight diagnosis, 21-* against its completed one. *)

let corpus_case prefix =
  let dir =
    if Sys.file_exists "corpus" then "corpus"
    else if Sys.file_exists "test/corpus" then "test/corpus"
    else Filename.concat (Filename.dirname Sys.executable_name) "corpus"
  in
  match Fuzz.Corpus.load_dir dir with
  | Error e -> Alcotest.failf "corpus load: %s" e
  | Ok cases ->
    (match
       List.find_opt
         (fun (c : Fuzz.Gen.case) ->
           String.length c.Fuzz.Gen.c_name >= String.length prefix
           && String.sub c.Fuzz.Gen.c_name 0 (String.length prefix) = prefix)
         cases
     with
     | Some c -> c
     | None -> Alcotest.failf "no corpus case with prefix %s" prefix)

let corpus_spec (case : Fuzz.Gen.case) =
  match Serve.Stream.fuzz_spec ~early_exit:false ~name:case.Fuzz.Gen.c_name case with
  | Some sp -> sp
  | None -> Alcotest.failf "corpus case %s not diagnosable" case.Fuzz.Gen.c_name

let corpus_coalesces_mid_flight () =
  let sp = corpus_spec (corpus_case "20-") in
  let svc = Svc.create ~sconfig:triage_cfg () in
  let id = expect_ticket "reproducer" (Svc.submit svc sp) in
  let canonical, count =
    expect_coalesced "duplicate while the reproducer is in flight"
      (Svc.submit svc (dup_spec sp (sp.Svc.sp_name ^ "@dup")))
  in
  Alcotest.(check int) "canonical" id canonical;
  Alcotest.(check int) "count" 2 count;
  Svc.drain svc;
  let st = Svc.stats svc in
  Alcotest.(check int) "one diagnosis" 1 st.Svc.st_completed;
  Alcotest.(check int) "one coalesced" 1 st.Svc.st_coalesced

let corpus_coalesces_after_completion () =
  let sp = corpus_spec (corpus_case "21-") in
  let svc = Svc.create ~sconfig:triage_cfg () in
  ignore (expect_ticket "reproducer" (Svc.submit svc sp));
  Svc.drain svc;
  let canonical, _ =
    expect_coalesced "duplicate after the reproducer completed"
      (Svc.submit svc (dup_spec sp (sp.Svc.sp_name ^ "@dup")))
  in
  Alcotest.(check int) "canonical survives completion" 1 canonical;
  let st = Svc.stats svc in
  Alcotest.(check int) "one diagnosis" 1 st.Svc.st_completed;
  Alcotest.(check int) "one coalesced" 1 st.Svc.st_coalesced

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "triage"
    [
      ("fingerprint", fingerprint_props);
      ( "audit",
        [
          Alcotest.test_case "no collisions across Bugbase + fuzz" `Slow
            collision_audit;
          Alcotest.test_case "predictor pattern ignores the session name"
            `Quick pattern_name_invariance;
        ] );
      ( "coalescing",
        [
          Alcotest.test_case "duplicate of an in-flight diagnosis" `Quick
            coalesce_mid_flight;
          Alcotest.test_case "duplicate after completion" `Quick
            coalesce_after_completion;
          Alcotest.test_case "recurrence lane past the recency window" `Quick
            recurrence_lane;
        ] );
      ( "shedding",
        [
          Alcotest.test_case "recurrence shed at the queue bound" `Quick
            shed_at_the_bound;
          Alcotest.test_case "fresh evicts a queued recurrence, typed" `Quick
            fresh_evicts_queued_recurrence;
        ] );
      ( "table",
        [
          Alcotest.test_case "LRU evicts Done only, Open pinned" `Quick
            lru_pins_open_clusters;
          Alcotest.test_case "failed diagnosis drops the cluster" `Quick
            failed_diagnosis_drops_cluster;
          Alcotest.test_case "revert_reopen restores Done" `Quick
            revert_reopen_restores_done;
          Alcotest.test_case "codec roundtrip" `Quick codec_roundtrip;
        ] );
      ( "storm",
        [
          Alcotest.test_case "jobs 1 = jobs 4: clusters, lanes, ledger" `Slow
            storm_jobs_equivalence;
          Alcotest.test_case "kill at every round: state bit-identical" `Slow
            storm_kill_differential;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "reproducer coalesces mid-flight" `Quick
            corpus_coalesces_mid_flight;
          Alcotest.test_case "reproducer coalesces after completion" `Quick
            corpus_coalesces_after_completion;
        ] );
    ]
