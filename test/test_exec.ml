(* Interpreter tests: evaluation, control flow, calls, memory-failure
   detection, threading, scheduling determinism, and the cost counters. *)

open Tsupport.Programs
module I = Exec.Interp
module V = Exec.Value

let arithmetic =
  let module B = Ir.Builder in
  let i = B.file "a.c" in
  let r = B.r and im = B.im in
  let prog expr =
    Ir.Program.make ~main:"main"
      [
        B.func "main" ~params:[ "a" ]
          [
            B.block "entry"
              [
                i 1 "" (Ir.Types.Assign ("x", expr));
                i 2 "" (Ir.Types.Builtin (None, "print", [ r "x" ]));
                i 3 "" (Ir.Types.Ret None);
              ];
          ];
      ]
  in
  let eval expr arg =
    let res = run ~args:[ V.VInt arg ] (prog expr) in
    match (res.I.outcome, res.I.output) with
    | I.Success, [ s ] -> s
    | I.Failed rep, _ -> Exec.Failure.kind_tag rep.kind
    | _ -> "?"
  in
  [
    Alcotest.test_case "add/sub/mul/div/mod" `Quick (fun () ->
        Alcotest.(check string) "add" "10" (eval (B.( +% ) (r "a") (im 3)) 7);
        Alcotest.(check string) "sub" "4" (eval (B.( -% ) (r "a") (im 3)) 7);
        Alcotest.(check string) "mul" "21" (eval (B.( *% ) (r "a") (im 3)) 7);
        Alcotest.(check string) "div" "2" (eval (B.( /% ) (r "a") (im 3)) 7);
        Alcotest.(check string) "mod" "1"
          (eval (Ir.Types.Bin (Ir.Types.Mod, r "a", im 3)) 7));
    Alcotest.test_case "division by zero fails with the right kind" `Quick
      (fun () ->
        Alcotest.(check string) "kind" "div-by-zero"
          (eval (B.( /% ) (r "a") (im 0)) 7));
    Alcotest.test_case "comparisons produce 0/1" `Quick (fun () ->
        Alcotest.(check string) "lt" "1" (eval (B.( <% ) (r "a") (im 10)) 7);
        Alcotest.(check string) "ge" "0" (eval (B.( >=% ) (r "a") (im 10)) 7);
        Alcotest.(check string) "eq" "1" (eval (B.( =% ) (r "a") (im 7)) 7));
    Alcotest.test_case "boolean operators use truthiness" `Quick (fun () ->
        Alcotest.(check string) "and" "1" (eval (B.( &&% ) (r "a") (im 5)) 7);
        Alcotest.(check string) "and0" "0" (eval (B.( &&% ) (r "a") (im 0)) 7);
        Alcotest.(check string) "or" "1" (eval (B.( ||% ) (im 0) (r "a")) 7);
        Alcotest.(check string) "not" "0" (eval (Ir.Types.Not (r "a")) 7));
    Alcotest.test_case "null equals integer zero (C semantics)" `Quick
      (fun () ->
        Alcotest.(check string) "eq" "1" (eval (B.( =% ) Ir.Types.Null (im 0)) 1));
  ]

let control_flow =
  [
    Alcotest.test_case "diamond takes both arms without failing" `Quick
      (fun () ->
        let res = run ~args:[ V.VInt 5 ] diamond in
        Alcotest.(check bool) "success" true (res.I.outcome = I.Success);
        let res2 = run ~args:[ V.VInt (-5) ] diamond in
        Alcotest.(check bool) "success" true (res2.I.outcome = I.Success));
    Alcotest.test_case "loop executes its trip count" `Quick (fun () ->
        let res = run ~args:[ V.VInt 10 ] loop_sum in
        Alcotest.(check bool) "success" true (res.I.outcome = I.Success);
        Alcotest.(check bool) "branches" true (res.I.counters.branches >= 10));
    Alcotest.test_case "call chain returns through frames" `Quick (fun () ->
        let res = run ~args:[ V.VInt 4 ] call_chain in
        Alcotest.(check bool) "success" true (res.I.outcome = I.Success));
    Alcotest.test_case "recursion (factorial) terminates" `Quick (fun () ->
        let res = run ~args:[ V.VInt 6 ] factorial in
        Alcotest.(check bool) "success" true (res.I.outcome = I.Success));
    Alcotest.test_case "hang detector fires on infinite loops" `Quick
      (fun () ->
        let res = run ~max_steps:5_000 infinite in
        Alcotest.(check string) "hang" "hang" (failure_kind_tag res));
  ]

let memory =
  [
    Alcotest.test_case "null dereference is a segfault at the load" `Quick
      (fun () ->
        let res = run null_deref in
        Alcotest.(check string) "kind" "segfault" (failure_kind_tag res);
        match res.I.outcome with
        | I.Failed rep ->
          let loc = Ir.Program.loc_of null_deref rep.pc in
          Alcotest.(check int) "line" 2 loc.line
        | _ -> Alcotest.fail "expected failure");
    Alcotest.test_case "use after free detected" `Quick (fun () ->
        Alcotest.(check string) "kind" "use-after-free"
          (failure_kind_tag (run uaf)));
    Alcotest.test_case "double free detected" `Quick (fun () ->
        Alcotest.(check string) "kind" "double-free"
          (failure_kind_tag (run double_free)));
    Alcotest.test_case "memory module unit behaviour" `Quick (fun () ->
        let m = Exec.Memory.create () in
        let base = Exec.Memory.alloc m 3 in
        Alcotest.(check bool) "store ok" true
          (Exec.Memory.store m (base + 2) (V.VInt 9) = Ok ());
        Alcotest.(check bool) "load back" true
          (Exec.Memory.load m (base + 2) = Ok (V.VInt 9));
        Alcotest.(check bool) "red zone unmapped" true
          (Exec.Memory.load m (base + 3) = Error Exec.Memory.Fail_segv);
        Alcotest.(check bool) "free ok" true (Exec.Memory.free m base = Ok ());
        Alcotest.(check bool) "uaf" true
          (Exec.Memory.load m base = Error Exec.Memory.Fail_uaf);
        Alcotest.(check bool) "double free" true
          (Exec.Memory.free m base = Error Exec.Memory.Fail_dfree));
    Alcotest.test_case "failure report carries the stack trace" `Quick
      (fun () ->
        match (run ~args:[ V.VStr "{}{" ] Bugbase.Curl.program).I.outcome with
        | I.Failed rep ->
          Alcotest.(check (list string)) "stack"
            [ "next_url"; "operate"; "main" ] rep.stack
        | I.Success -> Alcotest.fail "expected the curl crash");
  ]

(* Last shared read of the run (used to recover main's final counter read). *)
let last_read (res : I.result) =
  List.fold_left
    (fun acc (a : I.access) -> if a.a_rw = I.Read then Some a.a_value else acc)
    None res.I.accesses

let threading =
  [
    Alcotest.test_case "locked counter never loses updates" `Quick (fun () ->
        let p = counter ~locked:true in
        for seed = 0 to 30 do
          let res =
            Exec.Interp.run ~record_gt:true p
              (I.workload ~args:[ V.VInt 6 ] seed)
          in
          match res.I.outcome with
          | I.Failed rep ->
            Alcotest.failf "seed %d failed: %s" seed
              (Exec.Failure.report_to_string rep)
          | I.Success ->
            Alcotest.(check bool) "12" true (last_read res = Some (V.VInt 12))
        done);
    Alcotest.test_case "unlocked counter loses updates for some seed" `Quick
      (fun () ->
        let p = counter ~locked:false in
        let lost = ref false in
        for seed = 0 to 60 do
          let res =
            Exec.Interp.run ~record_gt:true p
              (I.workload ~args:[ V.VInt 6 ] seed)
          in
          if last_read res <> Some (V.VInt 12) then lost := true
        done;
        Alcotest.(check bool) "a lost update was observed" true !lost);
    Alcotest.test_case "deadlock detected when locks cross" `Quick (fun () ->
        let hit = ref false in
        for seed = 0 to 40 do
          if failure_kind_tag (run ~seed deadlock) = "deadlock" then hit := true
        done;
        Alcotest.(check bool) "deadlock seen" true !hit);
    Alcotest.test_case "spawn assigns fresh thread ids" `Quick (fun () ->
        let p = counter ~locked:true in
        let res = run ~record_gt:true ~args:[ V.VInt 1 ] p in
        let tids = List.map fst res.I.executed |> List.sort_uniq compare in
        Alcotest.(check (list int)) "three threads" [ 0; 1; 2 ] tids);
    Alcotest.test_case "shared access log is globally ordered" `Quick
      (fun () ->
        let res = run ~record_gt:true ~args:[ V.VInt 3 ] (counter ~locked:false) in
        let seqs = List.map (fun (a : I.access) -> a.a_seq) res.I.accesses in
        Alcotest.(check (list int)) "monotone" (List.sort compare seqs) seqs);
  ]

let determinism =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"same seed, same execution" ~count:40
         QCheck.(pair (int_bound 1000) (int_range 1 6))
         (fun (seed, n) ->
           let p = counter ~locked:false in
           let go () =
             Exec.Interp.run ~record_gt:true p
               (I.workload ~args:[ V.VInt n ] seed)
           in
           let a = go () and b = go () in
           a.I.steps = b.I.steps
           && a.I.executed = b.I.executed
           && a.I.outcome = b.I.outcome));
    Alcotest.test_case "different seeds diversify schedules" `Quick (fun () ->
        let p = counter ~locked:false in
        let runs =
          List.init 20 (fun seed ->
              (Exec.Interp.run ~record_gt:true p
                 (I.workload ~args:[ V.VInt 4 ] seed))
                .I.executed)
        in
        Alcotest.(check bool) "several distinct schedules" true
          (List.sort_uniq compare runs |> List.length > 1));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"rng: int bound respected" ~count:500
         QCheck.(pair int (int_range 1 1000))
         (fun (seed, bound) ->
           let rng = Exec.Rng.create seed in
           let v = Exec.Rng.int rng bound in
           v >= 0 && v < bound));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"rng: float in [0,1)" ~count:500 QCheck.int
         (fun seed ->
           let rng = Exec.Rng.create seed in
           let f = Exec.Rng.float rng in
           f >= 0.0 && f < 1.0));
  ]

let builtins =
  let module B = Ir.Builder in
  let i = B.file "b.c" in
  let prog name args =
    Ir.Program.make ~main:"main"
      [
        B.func "main" ~params:[ "a" ]
          [
            B.block "entry"
              [
                i 1 "" (Ir.Types.Builtin (Some "x", name, args));
                i 2 "" (Ir.Types.Builtin (None, "print", [ B.r "x" ]));
                i 3 "" (Ir.Types.Ret None);
              ];
          ];
      ]
  in
  let eval name args arg =
    let res = run ~args:[ arg ] (prog name args) in
    match (res.I.outcome, res.I.output) with
    | I.Success, [ s ] -> s
    | I.Failed rep, _ -> Exec.Failure.kind_tag rep.kind
    | _ -> "?"
  in
  [
    Alcotest.test_case "strlen" `Quick (fun () ->
        Alcotest.(check string) "len" "5"
          (eval "strlen" [ B.r "a" ] (V.VStr "hello")));
    Alcotest.test_case "strlen(NULL) segfaults" `Quick (fun () ->
        Alcotest.(check string) "segv" "segfault"
          (eval "strlen" [ B.r "a" ] V.VNull));
    Alcotest.test_case "str_char in and out of range" `Quick (fun () ->
        Alcotest.(check string) "h" (string_of_int (Char.code 'h'))
          (eval "str_char" [ B.r "a"; B.im 0 ] (V.VStr "hi"));
        Alcotest.(check string) "oob" "-1"
          (eval "str_char" [ B.r "a"; B.im 99 ] (V.VStr "hi")));
    Alcotest.test_case "atoi" `Quick (fun () ->
        Alcotest.(check string) "42" "42" (eval "atoi" [ B.r "a" ] (V.VStr " 42"));
        Alcotest.(check string) "junk" "0" (eval "atoi" [ B.r "a" ] (V.VStr "x")));
    Alcotest.test_case "min/max/abs" `Quick (fun () ->
        Alcotest.(check string) "min" "3"
          (eval "min" [ B.r "a"; B.im 5 ] (V.VInt 3));
        Alcotest.(check string) "max" "5"
          (eval "max" [ B.r "a"; B.im 5 ] (V.VInt 3));
        Alcotest.(check string) "abs" "3" (eval "abs" [ B.r "a" ] (V.VInt (-3))));
  ]

let cost_model =
  [
    Alcotest.test_case "base work counted per instruction" `Quick (fun () ->
        let res = run ~args:[ V.VInt 10 ] loop_sum in
        Alcotest.(check int) "instrs = steps" res.I.steps res.I.counters.instrs);
    Alcotest.test_case "overhead percentages are zero without tracing" `Quick
      (fun () ->
        let res = run ~args:[ V.VInt 10 ] loop_sum in
        Alcotest.(check (float 0.001)) "gist" 0.0
          (Exec.Cost.gist_overhead_percent res.I.counters);
        Alcotest.(check (float 0.001)) "rr" 0.0
          (Exec.Cost.rr_overhead_percent res.I.counters));
    Alcotest.test_case "shared accesses counted" `Quick (fun () ->
        let res = run ~args:[ V.VInt 2 ] (counter ~locked:false) in
        Alcotest.(check bool) "some accesses" true
          (res.I.counters.mem_accesses > 4));
  ]

let forced_schedule =
  [
    Alcotest.test_case "pick callback reproduces a recorded schedule" `Quick
      (fun () ->
        let p = counter ~locked:true in
        let sched = ref [] in
        let hooks = I.no_hooks () in
        hooks.sched <- (fun ~choice -> sched := choice :: !sched);
        let a =
          Exec.Interp.run ~hooks ~record_gt:true p
            (I.workload ~args:[ V.VInt 3 ] 7)
        in
        let forced = Array.of_list (List.rev !sched) in
        let cursor = ref 0 in
        let pick ~eligible:_ =
          if !cursor >= Array.length forced then None
          else begin
            let t = forced.(!cursor) in
            incr cursor;
            Some t
          end
        in
        let b =
          Exec.Interp.run ~pick ~record_gt:true p
            (I.workload ~args:[ V.VInt 3 ] 999)
        in
        Alcotest.(check bool) "same execution" true (a.I.executed = b.I.executed));
  ]

let () =
  Alcotest.run "exec"
    [
      ("arithmetic", arithmetic);
      ("control-flow", control_flow);
      ("memory", memory);
      ("threading", threading);
      ("determinism", determinism);
      ("builtins", builtins);
      ("cost-model", cost_model);
      ("forced-schedule", forced_schedule);
    ]
