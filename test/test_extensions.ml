(* Tests for the §6 future-work extensions: PTWRITE data packets,
   range/inequality value predicates, and value redaction. *)

module I = Exec.Interp
module P = Predict.Predictor

(* -------------------- PTWRITE -------------------- *)

let ptw_client (bug : Bugbase.Common.t) data_source c =
  let _, failure = Option.get (Bugbase.Common.find_target_failure bug) in
  let slice = Slicing.Slicer.compute bug.program failure in
  let plan =
    Instrument.Place.compute bug.program (Slicing.Slicer.take slice 8)
  in
  Gist.Client.run_one ~data_source ~plan
    ~wp_allowed:plan.Instrument.Plan.wp_targets
    ~preempt_prob:bug.preempt_prob bug.program (bug.workload_of c)

let ptwrite =
  [
    Alcotest.test_case "PTW packets decode out of the control stream" `Quick
      (fun () ->
        let counters = Exec.Cost.create () in
        let pt = Hw.Pt.create counters in
        Hw.Pt.enable pt ~tid:0 ~pc:1;
        Hw.Pt.on_branch pt ~tid:0 ~taken:true;
        Hw.Pt.on_data pt ~tid:0 ~iid:5 ~addr:40 ~rw:I.Write
          ~value:(Exec.Value.VInt 7);
        Hw.Pt.on_branch pt ~tid:0 ~taken:false;
        Hw.Pt.disable pt ~tid:0 ~pc:9;
        (* The data packet must not desynchronise TNT consumption. *)
        let packets = Hw.Pt.packets_of pt 0 in
        let has_ptw =
          List.exists (function Hw.Pt.PTW _ -> true | _ -> false) packets
        in
        Alcotest.(check bool) "ptw present" true has_ptw);
    Alcotest.test_case "data packets only while tracing is on" `Quick
      (fun () ->
        let counters = Exec.Cost.create () in
        let pt = Hw.Pt.create counters in
        Hw.Pt.on_data pt ~tid:0 ~iid:5 ~addr:40 ~rw:I.Read
          ~value:(Exec.Value.VInt 7);
        Alcotest.(check int) "nothing emitted" 0
          (List.length (Hw.Pt.packets_of pt 0)));
    Alcotest.test_case "TSC gives data packets a global cross-thread order"
      `Quick (fun () ->
        let counters = Exec.Cost.create () in
        let pt = Hw.Pt.create counters in
        Hw.Pt.enable pt ~tid:1 ~pc:1;
        Hw.Pt.enable pt ~tid:2 ~pc:1;
        Hw.Pt.on_data pt ~tid:1 ~iid:5 ~addr:40 ~rw:I.Write
          ~value:(Exec.Value.VInt 1);
        Hw.Pt.on_data pt ~tid:2 ~iid:6 ~addr:40 ~rw:I.Read
          ~value:(Exec.Value.VInt 1);
        Hw.Pt.on_data pt ~tid:1 ~iid:7 ~addr:40 ~rw:I.Read
          ~value:(Exec.Value.VInt 1);
        let tscs tid =
          List.filter_map
            (function Hw.Pt.PTW w -> Some w.Hw.Pt.p_tsc | _ -> None)
            (Hw.Pt.packets_of pt tid)
        in
        Alcotest.(check (list int)) "tid1" [ 1; 3 ] (tscs 1);
        Alcotest.(check (list int)) "tid2" [ 2 ] (tscs 2));
    Alcotest.test_case "ptwrite client reports data as ordered traps" `Quick
      (fun () ->
        let bug = Bugbase.Transmission.bug in
        (* find a client whose run traps *)
        let rec go c =
          if c > 40 then Alcotest.fail "no data captured"
          else
            let report = ptw_client bug Gist.Config.Ptwrite c in
            if report.r_traps = [] then go (c + 1)
            else begin
              let seqs =
                List.map (fun (w : Hw.Watchpoint.trap) -> w.w_seq)
                  report.r_traps
              in
              Alcotest.(check (list int)) "ordered" (List.sort compare seqs)
                seqs;
              (* no debug registers were used *)
              Alcotest.(check int) "no arming" 0
                report.r_counters.Exec.Cost.wp_arms;
              Alcotest.(check int) "no traps" 0
                report.r_counters.Exec.Cost.wp_traps
            end
        in
        go 0);
    Alcotest.test_case "full pipeline works end-to-end with PTWRITE" `Quick
      (fun () ->
        let bug = Bugbase.Curl.bug in
        let config =
          {
            Gist.Config.default with
            Gist.Config.data_source = Gist.Config.Ptwrite;
            preempt_prob = bug.preempt_prob;
          }
        in
        match Experiments.Harness.diagnose_bug ~config bug with
        | None -> Alcotest.fail "no diagnosis"
        | Some r ->
          Alcotest.(check bool) "root cause covered" true
            (List.for_all
               (fun iid -> List.mem iid (Fsketch.Sketch.iids r.diagnosis.sketch))
               (Bugbase.Common.root_cause_iids bug)));
  ]

(* -------------------- range predicates -------------------- *)

let trap iid value =
  Hw.Watchpoint.
    {
      w_seq = 1;
      w_tid = 0;
      w_iid = iid;
      w_addr = 9;
      w_rw = I.Read;
      w_value = value;
    }

let ranges =
  [
    Alcotest.test_case "predicates per value class" `Quick (fun () ->
        Alcotest.(check (list string)) "neg" [ "< 0" ]
          (P.range_predicates (Exec.Value.VInt (-3)));
        Alcotest.(check (list string)) "zero" [ "== 0" ]
          (P.range_predicates (Exec.Value.VInt 0));
        Alcotest.(check (list string)) "pos" [ "> 0" ]
          (P.range_predicates (Exec.Value.VInt 5));
        Alcotest.(check (list string)) "null" [ "== NULL" ]
          (P.range_predicates Exec.Value.VNull);
        Alcotest.(check (list string)) "ptr" [ "!= NULL" ]
          (P.range_predicates (Exec.Value.VPtr 33));
        Alcotest.(check (list string)) "string" []
          (P.range_predicates (Exec.Value.VStr "x")));
    Alcotest.test_case "of_run includes ranges only when asked" `Quick
      (fun () ->
        let traps = [ trap 4 (Exec.Value.VInt (-4)) ] in
        let without =
          P.of_run ~tracked:[] ~branch_outcomes:[] ~traps ()
        in
        let with_r =
          P.of_run ~ranges:true ~tracked:[] ~branch_outcomes:[] ~traps ()
        in
        Alcotest.(check bool) "absent" false
          (List.mem (P.Value_range (4, "< 0")) without);
        Alcotest.(check bool) "present" true
          (List.mem (P.Value_range (4, "< 0")) with_r));
    Alcotest.test_case
      "ranges unify fragmented exact values (higher recall and F)" `Quick
      (fun () ->
        (* Two failing runs leak different negative counters; exact
           values fragment, the "< 0" predicate does not. *)
        let obs v failing =
          Predict.Stats.
            {
              predictors =
                P.of_run ~ranges:true ~tracked:[] ~branch_outcomes:[]
                  ~traps:[ trap 4 v ] ();
              failing;
            }
        in
        let observations =
          [
            obs (Exec.Value.VInt (-4)) true;
            obs (Exec.Value.VInt (-8)) true;
            obs (Exec.Value.VInt 0) false;
          ]
        in
        let ranked = Predict.Stats.rank observations in
        let f_of p =
          List.find_map
            (fun (r : Predict.Stats.ranked) ->
              if P.equal r.predictor p then Some r.f_measure else None)
            ranked
        in
        let exact = Option.get (f_of (P.Data_value (4, "-4"))) in
        let range = Option.get (f_of (P.Value_range (4, "< 0"))) in
        Alcotest.(check bool) "range beats exact" true (range > exact);
        Alcotest.(check (float 0.001)) "range is perfect" 1.0 range);
  ]

(* -------------------- redaction -------------------- *)

let redaction =
  [
    Alcotest.test_case "strings are hashed, other values untouched" `Quick
      (fun () ->
        (match Gist.Client.redact_value (Exec.Value.VStr "secret-url") with
         | Exec.Value.VStr s ->
           Alcotest.(check bool) "hashed" true
             (String.length s > 4 && String.sub s 0 4 = "str#")
         | _ -> Alcotest.fail "string expected");
        Alcotest.(check bool) "int unchanged" true
          (Gist.Client.redact_value (Exec.Value.VInt 7) = Exec.Value.VInt 7);
        Alcotest.(check bool) "null unchanged" true
          (Gist.Client.redact_value Exec.Value.VNull = Exec.Value.VNull));
    Alcotest.test_case "redaction is stable (same input, same token)" `Quick
      (fun () ->
        Alcotest.(check bool) "stable" true
          (Gist.Client.redact_value (Exec.Value.VStr "abc")
           = Gist.Client.redact_value (Exec.Value.VStr "abc")));
    Alcotest.test_case "redacted curl diagnosis still finds the root cause"
      `Quick (fun () ->
        let bug = Bugbase.Curl.bug in
        let config =
          {
            Gist.Config.default with
            Gist.Config.redact_values = true;
            preempt_prob = bug.preempt_prob;
          }
        in
        match Experiments.Harness.diagnose_bug ~config bug with
        | None -> Alcotest.fail "no diagnosis"
        | Some r ->
          Alcotest.(check bool) "accuracy high" true
            (r.accuracy.overall >= 85.0);
          (* no raw production string ever appears in the predictors *)
          List.iter
            (fun (p : Predict.Stats.ranked) ->
              match p.predictor with
              | P.Data_value (_, v) ->
                if Astring.String.is_infix ~affix:"http://" v then
                  Alcotest.failf "leaked value %s" v
              | _ -> ())
            r.diagnosis.sketch.predictors);
  ]

let () =
  Alcotest.run "extensions"
    [ ("ptwrite", ptwrite); ("ranges", ranges); ("redaction", redaction) ]
