(* Replay the checked-in seed corpus: every shrunk reproducer must
   still diagnose end-to-end to its recorded root cause.  The corpus
   directory is a dune dep, so the files sit next to the test binary. *)

module G = Fuzz.Gen
module C = Fuzz.Check

let cases =
  lazy
    (match Fuzz.Corpus.load_dir "corpus" with
     | Ok cases -> cases
     | Error e -> Alcotest.failf "corpus load: %s" e)

let corpus =
  [
    Alcotest.test_case "corpus holds at least 10 cases" `Quick (fun () ->
        Alcotest.(check bool) "size" true
          (List.length (Lazy.force cases) >= 10));
    Alcotest.test_case "corpus covers every concurrency pattern" `Quick
      (fun () ->
        let seen =
          List.map (fun c -> c.G.c_pattern) (Lazy.force cases)
        in
        List.iter
          (fun p ->
            if not (List.mem p seen) then
              Alcotest.failf "pattern %s missing" (G.pattern_name p))
          G.all_patterns);
    Alcotest.test_case "every reproducer is at most 25 instructions"
      `Quick (fun () ->
        List.iter
          (fun c ->
            let n = c.G.c_program.Ir.Types.n_instrs in
            if n > 25 then Alcotest.failf "%s: %d instrs" c.G.c_name n)
          (Lazy.force cases));
    Alcotest.test_case "loaded cases are shrunk artifacts" `Quick
      (fun () ->
        List.iter
          (fun c ->
            Alcotest.(check bool) (c.G.c_name ^ " no scenario") true
              (c.G.c_scenario = None);
            Alcotest.(check int) (c.G.c_name ^ " seed") (-1) c.G.c_seed)
          (Lazy.force cases));
    Alcotest.test_case "saved text reloads to the same case" `Quick
      (fun () ->
        List.iter
          (fun c ->
            match
              Fuzz.Corpus.of_string ~name:c.G.c_name
                (Fuzz.Corpus.to_string c)
            with
            | Error e -> Alcotest.failf "%s: %s" c.G.c_name e
            | Ok c' ->
              Alcotest.(check bool) (c.G.c_name ^ " truth") true
                (c.G.c_truth = c'.G.c_truth);
              Alcotest.(check bool) (c.G.c_name ^ " faults") true
                (c.G.c_faults = c'.G.c_faults);
              Alcotest.(check string) (c.G.c_name ^ " program")
                (Ir.Text.emit c.G.c_program)
                (Ir.Text.emit c'.G.c_program))
          (Lazy.force cases));
    Alcotest.test_case "fault reproducers carry their fault environment"
      `Quick (fun () ->
        (* the fault-induced reproducers only reproduce under the same
           rates and injection seed, so the headers must survive the
           round trip with non-trivial rates *)
        let faulty =
          List.filter (fun c -> c.G.c_faults <> None) (Lazy.force cases)
        in
        Alcotest.(check bool) "at least two" true (List.length faulty >= 2);
        List.iter
          (fun c ->
            match c.G.c_faults with
            | None -> assert false
            | Some (rates, fseed) ->
              Alcotest.(check bool) (c.G.c_name ^ " rates non-zero") true
                (not (Faults.Fault.is_zero rates));
              Alcotest.(check bool) (c.G.c_name ^ " aggregate sane") true
                (let a = Faults.Fault.aggregate rates in
                 a > 0.0 && a <= 1.0);
              Alcotest.(check bool) (c.G.c_name ^ " seed recorded") true
                (fseed >= 0))
          faulty);
  ]

let replay =
  [
    Alcotest.test_case "every corpus case diagnoses correctly" `Slow
      (fun () ->
        List.iter
          (fun c ->
            let o = C.check c in
            match o.C.verdict with
            | C.Correct -> ()
            | v ->
              Alcotest.failf "%s: %s" c.G.c_name (C.verdict_to_string v))
          (Lazy.force cases));
  ]

let () = Alcotest.run "corpus" [ ("corpus", corpus); ("replay", replay) ]
