(* End-to-end tests of the Gist server/client pipeline: failure
   matching, cooperative watchpoint rotation, adaptive slice tracking,
   refinement and the final sketch. *)

module I = Exec.Interp

let wp_groups =
  [
    Alcotest.test_case "groups of at most the watchpoint capacity" `Quick
      (fun () ->
        let gs = Gist.Server.wp_groups ~wp_capacity:4 [ 1; 2; 3; 4; 5; 6 ] in
        Alcotest.(check int) "two groups" 2 (List.length gs);
        List.iter
          (fun g -> Alcotest.(check bool) "<=4" true (List.length g <= 4))
          gs;
        Alcotest.(check (list int)) "union preserved" [ 1; 2; 3; 4; 5; 6 ]
          (List.concat gs |> List.sort compare));
    Alcotest.test_case "no targets yields one empty group" `Quick (fun () ->
        Alcotest.(check (list (list int))) "empty" [ [] ]
          (Gist.Server.wp_groups ~wp_capacity:4 []));
    Alcotest.test_case "non-positive capacity is a programming error" `Quick
      (fun () ->
        List.iter
          (fun cap ->
            match Gist.Server.wp_groups ~wp_capacity:cap [ 1; 2; 3 ] with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.failf "wp_capacity %d accepted" cap)
          [ 0; -1; -4 ]);
  ]

let first_failure =
  [
    Alcotest.test_case "first_failure finds a production failure" `Quick
      (fun () ->
        let bug = Bugbase.Pbzip2.bug in
        match
          Gist.Server.first_failure ~preempt_prob:bug.preempt_prob bug.program
            bug.workload_of
        with
        | Some rep ->
          Alcotest.(check bool) "a crash kind" true
            (List.mem
               (Exec.Failure.kind_tag rep.kind)
               [ "segfault"; "use-after-free"; "double-free"; "assert" ])
        | None -> Alcotest.fail "no failure found");
    Alcotest.test_case "a bug-free program yields no production failure"
      `Quick (fun () ->
        (* backs the CLI's distinct no-failing-run exit code: the scan
           itself must come back empty, not crash or mis-match *)
        let program = Tsupport.Programs.loop_sum in
        let workload_of c =
          I.workload ~args:[ Exec.Value.VInt ((c mod 7) + 1) ] c
        in
        match
          Gist.Server.first_failure ~max_runs:50 program workload_of
        with
        | None -> ()
        | Some rep ->
          Alcotest.failf "unexpected failure: %s"
            (Exec.Failure.report_to_string rep));
    Alcotest.test_case "signatures separate distinct failure modes" `Quick
      (fun () ->
        let bug = Bugbase.Pbzip2.bug in
        let sigs = Hashtbl.create 4 in
        for c = 0 to 120 do
          match
            (I.run ~preempt_prob:bug.preempt_prob bug.program (bug.workload_of c))
              .I.outcome
          with
          | I.Failed rep ->
            Hashtbl.replace sigs (Exec.Failure.signature rep) ()
          | I.Success -> ()
        done;
        Alcotest.(check bool) "several signatures" true (Hashtbl.length sigs >= 2));
  ]

let client =
  [
    Alcotest.test_case "client reports signature and decode for failures"
      `Quick (fun () ->
        let bug = Bugbase.Curl.bug in
        let c0, _ = Option.get (Bugbase.Common.find_target_failure bug) in
        let failure =
          match Bugbase.Common.find_target_failure bug with
          | Some (_, f) -> f
          | None -> assert false
        in
        let slice = Slicing.Slicer.compute bug.program failure in
        let plan =
          Instrument.Place.compute bug.program (Slicing.Slicer.take slice 4)
        in
        let report =
          Gist.Client.run_one ~plan
            ~wp_allowed:plan.Instrument.Plan.wp_targets
            ~preempt_prob:bug.preempt_prob bug.program (bug.workload_of c0)
        in
        Alcotest.(check bool) "failing" true (Gist.Client.failing report);
        Alcotest.(check bool) "failure pc decoded" true
          (List.mem failure.pc (Gist.Client.executed_set report));
        Alcotest.(check bool) "base cycles positive" true
          (report.r_base_cycles > 0.0));
    Alcotest.test_case "monitored successful run has no signature" `Quick
      (fun () ->
        let bug = Bugbase.Curl.bug in
        let plan = Instrument.Place.compute bug.program [] in
        let report =
          Gist.Client.run_one ~plan ~wp_allowed:[]
            ~preempt_prob:bug.preempt_prob bug.program (bug.workload_of 0)
        in
        Alcotest.(check bool) "success" false (Gist.Client.failing report);
        Alcotest.(check (float 0.0001)) "zero overhead when untracked" 0.0
          report.r_overhead_pct);
  ]

let diagnose_bug (bug : Bugbase.Common.t) =
  let _, failure = Option.get (Bugbase.Common.find_target_failure bug) in
  let config =
    { Gist.Config.default with Gist.Config.preempt_prob = bug.preempt_prob }
  in
  Gist.Server.diagnose ~config
    ~oracle:(Experiments.Oracle.for_bug bug)
    ~bug_name:bug.name ~failure_type:bug.failure_type ~program:bug.program
    ~workload_of:bug.workload_of ~failure ()

let end_to_end_case (bug : Bugbase.Common.t) ~max_recurrences ~min_accuracy =
  Alcotest.test_case (Printf.sprintf "diagnose %s" bug.name) `Quick (fun () ->
      let d = diagnose_bug bug in
      Alcotest.(check bool)
        (Printf.sprintf "recurrences %d <= %d" d.recurrences max_recurrences)
        true
        (d.recurrences <= max_recurrences);
      (* the sketch covers the root cause *)
      let got = Fsketch.Sketch.iids d.sketch in
      List.iter
        (fun iid ->
          if not (List.mem iid got) then
            Alcotest.failf "root-cause iid %d missing from sketch" iid)
        (Bugbase.Common.root_cause_iids bug);
      (* a convincing predictor exists *)
      Alcotest.(check bool) "convincing predictor" true
        (Experiments.Oracle.convincing_predictor d.sketch);
      (* accuracy against the hand-built ideal *)
      let acc =
        Fsketch.Accuracy.of_sketch d.sketch ~ideal:(Bugbase.Common.ideal bug)
      in
      Alcotest.(check bool)
        (Printf.sprintf "accuracy %.1f >= %.1f" acc.overall min_accuracy)
        true
        (acc.overall >= min_accuracy);
      (* monitoring stayed cheap *)
      Alcotest.(check bool) "overhead below 15%" true
        (d.avg_overhead_pct < 15.0))

let end_to_end =
  [
    end_to_end_case Bugbase.Pbzip2.bug ~max_recurrences:6 ~min_accuracy:75.0;
    end_to_end_case Bugbase.Curl.bug ~max_recurrences:6 ~min_accuracy:85.0;
    end_to_end_case Bugbase.Transmission.bug ~max_recurrences:6
      ~min_accuracy:85.0;
    end_to_end_case Bugbase.Sqlite.bug ~max_recurrences:6 ~min_accuracy:80.0;
  ]

let ablation =
  [
    Alcotest.test_case "disabling data flow loses the value predictors"
      `Quick (fun () ->
        let bug = Bugbase.Transmission.bug in
        let _, failure = Option.get (Bugbase.Common.find_target_failure bug) in
        let config =
          {
            Gist.Config.default with
            Gist.Config.preempt_prob = bug.preempt_prob;
            enable_df = false;
            max_iterations = 3;
          }
        in
        let d =
          Gist.Server.diagnose ~config ~bug_name:bug.name
            ~failure_type:bug.failure_type ~program:bug.program
            ~workload_of:bug.workload_of ~failure ()
        in
        let has_value_predictor =
          List.exists
            (fun (r : Predict.Stats.ranked) ->
              match r.predictor with
              | Predict.Predictor.Data_value _ | Value_range _ | Race _
              | Atomicity _ ->
                true
              | Branch_taken _ -> false)
            d.sketch.predictors
        in
        Alcotest.(check bool) "no data predictors without watchpoints" false
          has_value_predictor);
    Alcotest.test_case "iteration trace is recorded with doubling sigma"
      `Quick (fun () ->
        let d = diagnose_bug Bugbase.Curl.bug in
        let sigmas =
          List.map (fun (t : Gist.Server.iteration_info) -> t.it_sigma) d.trace
        in
        let rec doubling = function
          | a :: (b :: _ as tl) -> b = 2 * a && doubling tl
          | _ -> true
        in
        Alcotest.(check bool) "doubles" true (doubling sigmas);
        Alcotest.(check int) "starts at 2" 2 (List.hd sigmas));
  ]

(* Config validation (PR 7): diagnose rejects nonsense knobs with a
   typed error instead of looping forever or dividing by zero. *)

let validation =
  let open Gist.Config in
  let expects_error name bad expected =
    Alcotest.test_case name `Quick (fun () ->
        match validate bad with
        | Ok _ -> Alcotest.fail "expected a validation error"
        | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "error is %s" expected)
            true
            (String.length (error_to_string e) > 0
            && e
               = (match expected with
                  | "sigma0" -> Bad_sigma0 bad.sigma0
                  | "max_clients" ->
                    Bad_max_clients_per_iter bad.max_clients_per_iter
                  | "quorum" -> Bad_quorum_frac bad.quorum_frac
                  | "delta" -> Bad_separation_delta bad.separation_delta
                  | "checkpoint" -> Bad_checkpoint_every bad.checkpoint_every
                  | _ -> assert false)))
  in
  [
    Alcotest.test_case "the default and adaptive configs validate" `Quick
      (fun () ->
        Alcotest.(check bool) "default ok" true (validate default = Ok default);
        Alcotest.(check bool) "adaptive ok" true
          (validate adaptive = Ok adaptive));
    expects_error "sigma0 must be positive" { default with sigma0 = 0 }
      "sigma0";
    expects_error "clients per iteration must be positive"
      { default with max_clients_per_iter = -3 }
      "max_clients";
    expects_error "quorum fraction above 1 is rejected"
      { default with quorum_frac = 1.5 } "quorum";
    expects_error "quorum fraction of 0 is rejected"
      { default with quorum_frac = 0.0 } "quorum";
    expects_error "separation delta must lie in (0,1)"
      { default with separation_delta = 1.0 } "delta";
    expects_error "checkpoint interval must be positive"
      { default with checkpoint_every = 0 } "checkpoint";
    Alcotest.test_case "check raises Invalid on a bad config" `Quick
      (fun () ->
        Alcotest.check_raises "raises"
          (Invalid (Bad_sigma0 (-1)))
          (fun () -> ignore (check { default with sigma0 = -1 })));
    Alcotest.test_case "diagnose surfaces the validation error" `Quick
      (fun () ->
        let bug = Bugbase.Curl.bug in
        match Bugbase.Common.find_target_failure bug with
        | None -> Alcotest.fail "curl failure must manifest"
        | Some (_, failure) ->
          Alcotest.check_raises "raises"
            (Invalid (Bad_quorum_frac 2.0))
            (fun () ->
              ignore
                (Gist.Server.diagnose
                   ~config:{ default with quorum_frac = 2.0 }
                   ~bug_name:bug.name ~failure_type:bug.failure_type
                   ~program:bug.program ~workload_of:bug.workload_of
                   ~failure ())));
  ]

(* The service-level scheduler knobs (lib/serve) carry the same typed
   validation contract as the diagnosis config above: every reject is
   a [cerror] naming the knob and the offending value, and [create] is
   [validate] with the error raised. *)
let sconfig_validation =
  let module Svc = Serve.Service in
  let expects name bad (err : Svc.cerror) =
    Alcotest.test_case name `Quick (fun () ->
        match Svc.validate bad with
        | Ok _ -> Alcotest.failf "%s: bad sconfig accepted" name
        | Error e ->
          Alcotest.(check string)
            (name ^ ": typed reject")
            (Svc.cerror_to_string err)
            (Svc.cerror_to_string e))
  in
  [
    Alcotest.test_case "the default sconfig validates" `Quick (fun () ->
        Alcotest.(check bool) "default ok" true
          (Svc.validate Svc.default = Ok Svc.default));
    Alcotest.test_case "checkpointing and deadlines may be disabled"
      `Quick (fun () ->
        let off =
          { Svc.default with
            Svc.checkpoint_every_rounds = 0;
            session_deadline_rounds = 0 }
        in
        Alcotest.(check bool) "zero disables" true
          (Svc.validate off = Ok off));
    expects "negative checkpoint cadence is rejected"
      { Svc.default with Svc.checkpoint_every_rounds = -1 }
      (Svc.Bad_checkpoint_every (-1));
    expects "negative session deadline is rejected"
      { Svc.default with Svc.session_deadline_rounds = -7 }
      (Svc.Bad_deadline (-7));
    expects "zero strikes is rejected"
      { Svc.default with Svc.max_session_strikes = 0 }
      (Svc.Bad_strikes 0);
    expects "negative strikes is rejected"
      { Svc.default with Svc.max_session_strikes = -2 }
      (Svc.Bad_strikes (-2));
    Alcotest.test_case "create raises Invalid_argument on a bad sconfig"
      `Quick (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument
             (Svc.cerror_to_string (Svc.Bad_strikes 0)))
          (fun () ->
            ignore
              (Svc.create
                 ~sconfig:{ Svc.default with Svc.max_session_strikes = 0 }
                 ())));
  ]

let () =
  Alcotest.run "gist"
    [
      ("wp-groups", wp_groups);
      ("first-failure", first_failure);
      ("client", client);
      ("end-to-end", end_to_end);
      ("ablation", ablation);
      ("validation", validation);
      ("sconfig-validation", sconfig_validation);
    ]
