(* IR construction, validation, indexing and helper tests. *)

open Ir.Types
module B = Ir.Builder

let i = B.file "t.c"
let r = B.r
let im = B.im

let mk_main blocks = B.func "main" ~params:[ "a" ] blocks

let check_invalid name thunk =
  Alcotest.test_case name `Quick (fun () ->
      match thunk () with
      | exception Invalid_program _ -> ()
      | _ -> Alcotest.fail "expected Invalid_program")

let simple_block = B.block "entry" [ i 1 "ret" (Ret (Some (r "a"))) ]

let construction =
  [
    Alcotest.test_case "iids are unique and sequential" `Quick (fun () ->
        let p = Tsupport.Programs.call_chain in
        let iids =
          Ir.Program.all_instrs p |> List.map (fun (x : instr) -> x.iid)
        in
        Alcotest.(check (list int)) "sequential" (List.init p.n_instrs (fun k -> k + 1))
          iids);
    Alcotest.test_case "by_iid index is complete" `Quick (fun () ->
        let p = Tsupport.Programs.diamond in
        Ir.Program.iter_instrs p (fun x ->
            let x', _ = Hashtbl.find p.by_iid x.iid in
            Alcotest.(check int) "same instr" x.iid x'.iid));
    Alcotest.test_case "position_of points at the instruction" `Quick (fun () ->
        let p = Tsupport.Programs.loop_sum in
        Ir.Program.iter_instrs p (fun x ->
            let pos = Ir.Program.position_of p x.iid in
            let f = Ir.Program.find_func p pos.p_func in
            let y = f.blocks.(pos.p_block).instrs.(pos.p_index) in
            Alcotest.(check int) "roundtrip" x.iid y.iid));
    Alcotest.test_case "source_loc_count counts distinct lines" `Quick
      (fun () ->
        let p = Tsupport.Programs.straight in
        let iids =
          Ir.Program.all_instrs p |> List.map (fun (x : instr) -> x.iid)
        in
        Alcotest.(check int) "3 lines" 3 (Ir.Program.source_loc_count p iids));
    Alcotest.test_case "find_func raises for unknown" `Quick (fun () ->
        match Ir.Program.find_func Tsupport.Programs.straight "nope" with
        | exception Invalid_program _ -> ()
        | _ -> Alcotest.fail "expected Invalid_program");
  ]

let validation =
  [
    check_invalid "empty block rejected" (fun () ->
        Ir.Program.make ~main:"main" [ mk_main [ B.block "entry" [] ] ]);
    check_invalid "missing terminator rejected" (fun () ->
        Ir.Program.make ~main:"main"
          [ mk_main [ B.block "entry" [ i 1 "" (Assign ("x", Mov (im 1))) ] ] ]);
    check_invalid "terminator mid-block rejected" (fun () ->
        Ir.Program.make ~main:"main"
          [
            mk_main
              [
                B.block "entry"
                  [ i 1 "" (Ret None); i 2 "" (Assign ("x", Mov (im 1))) ];
              ];
          ]);
    check_invalid "duplicate label rejected" (fun () ->
        Ir.Program.make ~main:"main"
          [
            mk_main
              [
                B.block "entry" [ i 1 "" (Jmp "entry") ];
                B.block "entry" [ i 2 "" (Ret None) ];
              ];
          ]);
    check_invalid "unknown jump label rejected" (fun () ->
        Ir.Program.make ~main:"main"
          [ mk_main [ B.block "entry" [ i 1 "" (Jmp "nowhere") ] ] ]);
    check_invalid "unknown callee rejected" (fun () ->
        Ir.Program.make ~main:"main"
          [
            mk_main
              [ B.block "entry" [ i 1 "" (Call (None, "ghost", [])); i 2 "" (Ret None) ] ];
          ]);
    check_invalid "unknown builtin rejected" (fun () ->
        Ir.Program.make ~main:"main"
          [
            mk_main
              [
                B.block "entry"
                  [ i 1 "" (Builtin (None, "frobnicate", [])); i 2 "" (Ret None) ];
              ];
          ]);
    check_invalid "unknown spawn routine rejected" (fun () ->
        Ir.Program.make ~main:"main"
          [
            mk_main
              [
                B.block "entry"
                  [ i 1 "" (Spawn ("t", "ghost", [])); i 2 "" (Ret None) ];
              ];
          ]);
    check_invalid "unknown global rejected" (fun () ->
        Ir.Program.make ~main:"main"
          [
            mk_main
              [
                B.block "entry"
                  [ i 1 "" (Load_global ("x", "ghost")); i 2 "" (Ret None) ];
              ];
          ]);
    check_invalid "missing main rejected" (fun () ->
        Ir.Program.make ~main:"main" [ B.func "not_main" [ simple_block ] ]);
    Alcotest.test_case "valid program accepted" `Quick (fun () ->
        let p = Ir.Program.make ~main:"main" [ mk_main [ simple_block ] ] in
        Alcotest.(check int) "one instr" 1 p.n_instrs);
  ]

let uses_def =
  let instr_of k = { iid = 0; kind = k; loc = no_loc; text = "" } in
  [
    Alcotest.test_case "uses of store" `Quick (fun () ->
        let u = Ir.Program.uses (instr_of (Store (r "p", 1, r "v"))) in
        Alcotest.(check int) "two operands" 2 (List.length u));
    Alcotest.test_case "def of load" `Quick (fun () ->
        Alcotest.(check (option string))
          "dst" (Some "x")
          (Ir.Program.def (instr_of (Load ("x", r "p", 0)))));
    Alcotest.test_case "def of store is none" `Quick (fun () ->
        Alcotest.(check (option string))
          "none" None
          (Ir.Program.def (instr_of (Store (r "p", 0, im 1)))));
    Alcotest.test_case "call def is its destination" `Quick (fun () ->
        Alcotest.(check (option string))
          "dst" (Some "v")
          (Ir.Program.def (instr_of (Call (Some "v", "f", [ r "a" ])))));
    Alcotest.test_case "memory access classification" `Quick (fun () ->
        Alcotest.(check bool) "load" true
          (Ir.Program.is_memory_access (instr_of (Load ("x", r "p", 0))));
        Alcotest.(check bool) "global store" true
          (Ir.Program.is_memory_access (instr_of (Store_global ("g", im 1))));
        Alcotest.(check bool) "assign" false
          (Ir.Program.is_memory_access (instr_of (Assign ("x", Mov (im 1))))));
    Alcotest.test_case "branch uses its condition" `Quick (fun () ->
        let u = Ir.Program.uses (instr_of (Branch (r "c", "a", "b"))) in
        Alcotest.(check int) "one" 1 (List.length u));
  ]

let printing =
  [
    Alcotest.test_case "program pretty-print mentions functions" `Quick
      (fun () ->
        let s = Ir.Pp.program_to_string Tsupport.Programs.call_chain in
        List.iter
          (fun f ->
            if not (Astring.String.is_infix ~affix:f s) then
              Alcotest.failf "missing %s in pp output" f)
          [ "func main"; "func f"; "func g" ]);
    Alcotest.test_case "instr pretty-print shows location" `Quick (fun () ->
        let p = Tsupport.Programs.straight in
        let x = Ir.Program.instr_at p 1 in
        let s = Ir.Pp.instr_to_string x in
        if not (Astring.String.is_infix ~affix:"test.c:1" s) then
          Alcotest.failf "no location in %S" s);
  ]

let () =
  Alcotest.run "ir"
    [
      ("construction", construction);
      ("validation", validation);
      ("uses-def", uses_def);
      ("printing", printing);
    ]
