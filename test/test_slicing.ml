(* Static backward slicer tests: data flow, interprocedural flow through
   calls and thread creation, deliberate alias-free misses, control
   dependencies, and AsT ordering. *)

open Ir.Types
module B = Ir.Builder

let i = B.file "s.c"
let r = B.r
let im = B.im

(* Helper: slice the program from the instruction at [line] (first on
   that line). *)
let slice_from program line =
  let failing =
    Ir.Program.all_instrs program
    |> List.find (fun (x : instr) -> x.loc.line = line)
  in
  let report =
    Exec.Failure.
      { kind = Segfault; pc = failing.iid; tid = 0; stack = [ "main" ];
        message = "" }
  in
  Slicing.Slicer.compute program report

let lines_of_slice program s =
  Slicing.Slicer.iids s
  |> List.map (fun iid -> (Ir.Program.loc_of program iid).line)
  |> List.sort_uniq compare

(* x = a+1 ; y = x*2 ; unrelated = 7 ; fail(y) *)
let dataflow_prog =
  Ir.Program.make ~main:"main"
    [
      B.func "main" ~params:[ "a" ]
        [
          B.block "entry"
            [
              i 1 "x = a + 1" (Assign ("x", B.( +% ) (r "a") (im 1)));
              i 2 "y = x * 2" (Assign ("y", B.( *% ) (r "x") (im 2)));
              i 3 "unrelated = 7" (Assign ("u", Mov (im 7)));
              i 4 "deref y" (Load ("v", r "y", 0));
              i 5 "" (Ret None);
            ];
        ];
    ]

let basic =
  [
    Alcotest.test_case "def-use chain joins, unrelated stays out" `Quick
      (fun () ->
        let s = slice_from dataflow_prog 4 in
        Alcotest.(check (list int)) "lines" [ 1; 2; 4 ]
          (lines_of_slice dataflow_prog s));
    Alcotest.test_case "failing statement is first in AsT order" `Quick
      (fun () ->
        let s = slice_from dataflow_prog 4 in
        match Slicing.Slicer.take s 1 with
        | [ iid ] ->
          Alcotest.(check int) "line 4" 4
            (Ir.Program.loc_of dataflow_prog iid).line
        | _ -> Alcotest.fail "take 1");
    Alcotest.test_case "take is a prefix and monotone" `Quick (fun () ->
        let s = slice_from dataflow_prog 4 in
        let t2 = Slicing.Slicer.take s 2 and t3 = Slicing.Slicer.take s 3 in
        Alcotest.(check (list int)) "prefix" t2
          (List.filteri (fun k _ -> k < 2) t3));
    Alcotest.test_case "slice sizes are consistent" `Quick (fun () ->
        let s = slice_from dataflow_prog 4 in
        Alcotest.(check int) "instr count" 3 (Slicing.Slicer.instr_count s);
        Alcotest.(check int) "src lines" 3 (Slicing.Slicer.source_loc_count s));
    Alcotest.test_case "slicing is deterministic" `Quick (fun () ->
        let a = slice_from dataflow_prog 4 and b = slice_from dataflow_prog 4 in
        Alcotest.(check (list int)) "same" (Slicing.Slicer.iids a)
          (Slicing.Slicer.iids b));
  ]

(* Memory matching: same-function same-base-same-offset stores join;
   a store through a different pointer name is (deliberately) missed. *)
let memory_prog =
  Ir.Program.make ~main:"main"
    [
      B.func "main" ~params:[]
        [
          B.block "entry"
            [
              i 1 "p = malloc" (Malloc ("p", 2));
              i 2 "alias = p" (Assign ("q", Mov (r "p")));
              i 3 "p[0] = 5" (Store (r "p", 0, im 5));
              i 4 "q[1] = 6" (Store (r "q", 1, im 6));
              i 5 "v = p[0]" (Load ("v", r "p", 0));
              i 6 "w = p[1]" (Load ("w", r "p", 1));
              i 7 "deref v" (Load ("z", r "v", 0));
              i 8 "" (Ret None);
            ];
        ];
    ]

let memory =
  [
    Alcotest.test_case "matching store joins the slice" `Quick (fun () ->
        let s = slice_from memory_prog 7 in
        let lines = lines_of_slice memory_prog s in
        Alcotest.(check bool) "store p[0] in" true (List.mem 3 lines));
    Alcotest.test_case "alias-free: store via another name is missed" `Quick
      (fun () ->
        (* failure depends on p[1], which was written through q *)
        let failing =
          Ir.Program.all_instrs memory_prog
          |> List.find (fun (x : instr) -> x.loc.line = 6)
        in
        let report =
          Exec.Failure.
            { kind = Segfault; pc = failing.iid; tid = 0; stack = []; message = "" }
        in
        let s = Slicing.Slicer.compute memory_prog report in
        let lines = lines_of_slice memory_prog s in
        Alcotest.(check bool) "store q[1] missed (paper behaviour)" false
          (List.mem 4 lines));
  ]

let interprocedural =
  [
    Alcotest.test_case "return-value flow descends into callees" `Quick
      (fun () ->
        let p = Tsupport.Programs.call_chain in
        (* fail at f's return computation (line 21): needs v <- g *)
        let s = slice_from p 21 in
        let lines = lines_of_slice p s in
        Alcotest.(check bool) "g's body in slice" true (List.mem 10 lines));
    Alcotest.test_case "argument flow ascends to call sites" `Quick (fun () ->
        let p = Tsupport.Programs.call_chain in
        let s = slice_from p 10 in
        let lines = lines_of_slice p s in
        Alcotest.(check bool) "f's callsite of g in slice" true
          (List.mem 20 lines);
        Alcotest.(check bool) "main's callsite of f in slice" true
          (List.mem 30 lines));
    Alcotest.test_case "thread-start arguments flow through spawn (TICFG)"
      `Quick (fun () ->
        let p = Bugbase.Pbzip2.program in
        match Bugbase.Common.find_target_failure Bugbase.Pbzip2.bug with
        | None -> Alcotest.fail "no pbzip2 failure"
        | Some (_, rep) ->
          let s = Slicing.Slicer.compute p rep in
          let lines = lines_of_slice p s in
          Alcotest.(check bool) "spawn site (line 21) in slice" true
            (List.mem 21 lines);
          Alcotest.(check bool) "queue_init call (line 20) in slice" true
            (List.mem 20 lines));
    Alcotest.test_case "globals match across functions" `Quick (fun () ->
        let p = Bugbase.Transmission.program in
        match Bugbase.Common.find_target_failure Bugbase.Transmission.bug with
        | None -> Alcotest.fail "no transmission failure"
        | Some (_, rep) ->
          let s = Slicing.Slicer.compute p rep in
          let lines = lines_of_slice p s in
          (* peer_loop's stores to the global band_used, lines 22/25 *)
          Alcotest.(check bool) "alloc store" true (List.mem 22 lines);
          Alcotest.(check bool) "release store" true (List.mem 25 lines));
  ]

let control_deps =
  [
    Alcotest.test_case "controlling branch joins the slice" `Quick (fun () ->
        let p = Tsupport.Programs.diamond in
        (* fail at the positive arm (line 3): control-dep on the branch *)
        let s = slice_from p 3 in
        let lines = lines_of_slice p s in
        Alcotest.(check bool) "branch line in slice" true (List.mem 2 lines);
        Alcotest.(check bool) "condition def in slice" true (List.mem 1 lines));
    Alcotest.test_case "curl: glob error path reachable via control deps"
      `Quick (fun () ->
        let p = Bugbase.Curl.program in
        match Bugbase.Common.find_target_failure Bugbase.Curl.bug with
        | None -> Alcotest.fail "no curl failure"
        | Some (_, rep) ->
          let s = Slicing.Slicer.compute p rep in
          let lines = lines_of_slice p s in
          Alcotest.(check bool) "next_url load line" true (List.mem 30 lines));
  ]

let () =
  Alcotest.run "slicing"
    [
      ("basic", basic);
      ("memory", memory);
      ("interprocedural", interprocedural);
      ("control-deps", control_deps);
    ]
