(* Experiment-harness tests: the oracle, shared helpers, and the
   cheap shape checks of the Fig. 13 comparison (the full experiment
   sweeps run under bench/main.exe). *)

let oracle =
  [
    Alcotest.test_case "convincing predictor requires precision" `Quick
      (fun () ->
        let ranked =
          Predict.Stats.rank
            [
              { predictors = [ Predict.Predictor.Data_value (1, "0") ];
                failing = true };
              { predictors = [ Predict.Predictor.Data_value (1, "0") ];
                failing = false };
              { predictors = []; failing = false };
            ]
        in
        let sketch =
          Fsketch.Sketch.build ~bug_name:"t" ~failure_type:"t"
            ~program:Tsupport.Programs.diamond
            ~failure:
              Exec.Failure.
                { kind = Segfault; pc = 1; tid = 0; stack = []; message = "" }
            ~per_thread:[ (0, [ 1 ]) ] ~traps:[] ~ranked
        in
        (* precision 0.5 < 0.85: not convincing *)
        Alcotest.(check bool) "not convincing" false
          (Experiments.Oracle.convincing_predictor sketch));
    Alcotest.test_case "coverage check needs every ideal statement" `Quick
      (fun () ->
        let sketch =
          Fsketch.Sketch.build ~bug_name:"t" ~failure_type:"t"
            ~program:Tsupport.Programs.diamond
            ~failure:
              Exec.Failure.
                { kind = Segfault; pc = 1; tid = 0; stack = []; message = "" }
            ~per_thread:[ (0, [ 1; 2 ]) ] ~traps:[] ~ranked:[]
        in
        Alcotest.(check bool) "covers {1,2}" true
          (Experiments.Oracle.covers_ideal { i_iids = [ 1; 2 ] } sketch);
        Alcotest.(check bool) "misses {3}" false
          (Experiments.Oracle.covers_ideal { i_iids = [ 3 ] } sketch));
  ]

let helpers =
  [
    Alcotest.test_case "mean" `Quick (fun () ->
        Alcotest.(check (float 0.001)) "mean" 2.0
          (Experiments.Harness.mean [ 1.0; 2.0; 3.0 ]);
        Alcotest.(check (float 0.001)) "empty" 0.0 (Experiments.Harness.mean []));
    Alcotest.test_case "mm:ss formatting" `Quick (fun () ->
        Alcotest.(check string) "95s" "1m:35s" (Experiments.Harness.fmt_mmss 95.4);
        Alcotest.(check string) "0s" "0m:00s" (Experiments.Harness.fmt_mmss 0.2));
  ]

let fig13_shape =
  [
    Alcotest.test_case "record/replay costs more than Intel PT (shape)" `Quick
      (fun () ->
        (* One representative program is enough for the test suite; the
           full 11-program sweep runs in bench/main.exe. *)
        let bug = Bugbase.Memcached.bug in
        let row = Experiments.Fig13.row_for bug in
        Alcotest.(check bool) "rr > pt" true (row.rr_pct > row.pt_pct);
        Alcotest.(check bool) "rr is orders of magnitude" true
          (row.rr_pct > 10.0 *. row.pt_pct));
  ]

let harness_smoke =
  [
    Alcotest.test_case "diagnose_bug produces a full result (curl)" `Quick
      (fun () ->
        match Experiments.Harness.diagnose_bug Bugbase.Curl.bug with
        | None -> Alcotest.fail "no result"
        | Some r ->
          Alcotest.(check bool) "accuracy sane" true
            (r.accuracy.overall > 50.0 && r.accuracy.overall <= 100.0);
          let src, instr = Experiments.Harness.sketch_size r in
          Alcotest.(check bool) "sizes positive" true (src > 0 && instr >= src));
  ]

let () =
  Alcotest.run "experiments"
    [
      ("oracle", oracle);
      ("helpers", helpers);
      ("fig13-shape", fig13_shape);
      ("harness", harness_smoke);
    ]
