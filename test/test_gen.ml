(* Property tests over randomly generated programs [Fuzz.Gen]:
   interpreter safety, PT round-trip fidelity, instrumentation
   coverage, and slicer invariants hold for arbitrary well-formed
   code, not just the hand-written corpus. *)

module I = Exec.Interp

let seed_arb = QCheck.(int_bound 100_000)

let run_random seed run_seed =
  let program = Fuzz.Gen.random seed in
  ( program,
    Exec.Interp.run ~record_gt:true ~max_steps:100_000 program
      (I.workload ~args:[ Exec.Value.VInt (seed mod 7) ] run_seed) )

let interp_props =
  [
    QCheck.Test.make ~name:"generated programs always run to success"
      ~count:300 seed_arb (fun seed ->
        let _, res = run_random seed 1 in
        res.I.outcome = I.Success);
    QCheck.Test.make ~name:"generated programs are deterministic" ~count:100
      QCheck.(pair seed_arb (int_bound 1000))
      (fun (seed, run_seed) ->
        let _, a = run_random seed run_seed in
        let _, b = run_random seed run_seed in
        a.I.executed = b.I.executed && a.I.steps = b.I.steps);
    QCheck.Test.make ~name:"step count equals instruction counter" ~count:100
      seed_arb (fun seed ->
        let _, res = run_random seed 1 in
        res.I.steps = res.I.counters.Exec.Cost.instrs);
  ]

let pt_props =
  [
    QCheck.Test.make
      ~name:"PT round trip: decode equals execution on random programs"
      ~count:200 seed_arb
      (fun seed ->
        let program = Fuzz.Gen.random seed in
        let counters = Exec.Cost.create () in
        let pt = Hw.Pt.create counters in
        let hooks = Instrument.Runtime.full_tracing_hooks ~pt in
        let res =
          Exec.Interp.run ~hooks ~counters ~record_gt:true ~max_steps:100_000
            program (I.workload ~args:[ Exec.Value.VInt 3 ] 1)
        in
        Hw.Pt.finish pt;
        let d = Hw.Pt.decode program (Hw.Pt.packets_of pt 0) in
        res.I.outcome = I.Success
        && d.Hw.Pt.d_iids = List.map snd res.I.executed);
  ]

(* The coverage invariant: every tracked statement that executes is
   decodable from the toggled PT stream — over random programs *and*
   random tracked subsets. *)
let coverage_props =
  [
    QCheck.Test.make
      ~name:"instrumentation coverage on random programs and tracked sets"
      ~count:150
      QCheck.(pair seed_arb (int_range 1 6))
      (fun (seed, stride) ->
        let program = Fuzz.Gen.random seed in
        let all =
          Ir.Program.all_instrs program
          |> List.map (fun (x : Ir.Types.instr) -> x.iid)
        in
        let tracked =
          List.filteri (fun k _ -> k mod stride = seed mod stride) all
        in
        let plan = Instrument.Place.compute program tracked in
        let counters = Exec.Cost.create () in
        let pt = Hw.Pt.create counters in
        let wp = Hw.Watchpoint.create counters in
        let hooks =
          Instrument.Runtime.hooks ~data_via_pt:false ~plan ~pt ~wp
            ~wp_allowed:[]
        in
        let res =
          Exec.Interp.run ~hooks ~counters ~record_gt:true ~max_steps:100_000
            program (I.workload ~args:[ Exec.Value.VInt 3 ] 1)
        in
        Hw.Pt.finish pt;
        let decoded =
          Hw.Pt.decode_all pt program
          |> List.concat_map (fun (_, (d : Hw.Pt.decoded)) -> d.d_iids)
          |> List.sort_uniq compare
        in
        let executed = List.map snd res.I.executed |> List.sort_uniq compare in
        List.for_all
          (fun iid -> (not (List.mem iid executed)) || List.mem iid decoded)
          tracked);
  ]

let slicing_props =
  [
    QCheck.Test.make ~name:"slice contains the failing statement first"
      ~count:150 seed_arb (fun seed ->
        let program = Fuzz.Gen.random seed in
        let _, res = run_random seed 1 in
        (* slice from the last executed instruction *)
        match List.rev res.I.executed with
        | [] -> true
        | (_, pc) :: _ ->
          let report =
            Exec.Failure.
              { kind = Segfault; pc; tid = 0; stack = [ "main" ]; message = "" }
          in
          let s = Slicing.Slicer.compute program report in
          (match Slicing.Slicer.iids s with
           | first :: _ -> first = pc
           | [] -> false));
    QCheck.Test.make ~name:"take is a prefix of the slice order" ~count:150
      QCheck.(pair seed_arb (int_range 1 12))
      (fun (seed, n) ->
        let program = Fuzz.Gen.random seed in
        let _, res = run_random seed 1 in
        match List.rev res.I.executed with
        | [] -> true
        | (_, pc) :: _ ->
          let report =
            Exec.Failure.
              { kind = Segfault; pc; tid = 0; stack = [ "main" ]; message = "" }
          in
          let s = Slicing.Slicer.compute program report in
          let all = Slicing.Slicer.iids s in
          let prefix = Slicing.Slicer.take s n in
          List.length prefix = min n (List.length all)
          && prefix = List.filteri (fun k _ -> k < List.length prefix) all);
  ]

let mt_props =
  [
    QCheck.Test.make ~name:"threaded random programs always succeed"
      ~count:150
      QCheck.(pair (int_bound 100_000) (int_bound 500))
      (fun (seed, run_seed) ->
        let program = Fuzz.Gen.random_threaded seed in
        let res =
          Exec.Interp.run ~max_steps:100_000 program
            (I.workload ~args:[ Exec.Value.VInt (seed mod 5) ] run_seed)
        in
        res.I.outcome = I.Success);
    QCheck.Test.make
      ~name:"PT round trip holds per thread under racy interleavings"
      ~count:120
      QCheck.(pair (int_bound 100_000) (int_bound 500))
      (fun (seed, run_seed) ->
        let program = Fuzz.Gen.random_threaded seed in
        let counters = Exec.Cost.create () in
        let pt = Hw.Pt.create counters in
        let hooks = Instrument.Runtime.full_tracing_hooks ~pt in
        let res =
          Exec.Interp.run ~hooks ~counters ~record_gt:true ~max_steps:100_000
            program (I.workload ~args:[ Exec.Value.VInt 3 ] run_seed)
        in
        Hw.Pt.finish pt;
        let decoded = Hw.Pt.decode_all pt program in
        res.I.outcome = I.Success
        && List.for_all
             (fun (tid, expected) ->
               match List.assoc_opt tid decoded with
               | None -> expected = []
               | Some (d : Hw.Pt.decoded) -> d.d_iids = expected)
             (Tsupport.Programs.per_thread_executed res));
    QCheck.Test.make
      ~name:"record/replay reproduces racy random programs" ~count:80
      QCheck.(pair (int_bound 100_000) (int_bound 500))
      (fun (seed, run_seed) ->
        let program = Fuzz.Gen.random_threaded seed in
        let rec_ =
          Baseline.Rr.record ~max_steps:100_000 program
            (I.workload ~args:[ Exec.Value.VInt 3 ] run_seed)
        in
        snd (Baseline.Rr.replay ~max_steps:100_000 program rec_));
    QCheck.Test.make
      ~name:"coverage invariant under racy interleavings" ~count:80
      QCheck.(pair (int_bound 100_000) (int_range 1 5))
      (fun (seed, stride) ->
        let program = Fuzz.Gen.random_threaded seed in
        let all =
          Ir.Program.all_instrs program
          |> List.map (fun (x : Ir.Types.instr) -> x.iid)
        in
        let tracked =
          List.filteri (fun k _ -> k mod stride = seed mod stride) all
        in
        let plan = Instrument.Place.compute program tracked in
        let counters = Exec.Cost.create () in
        let pt = Hw.Pt.create counters in
        let wp = Hw.Watchpoint.create counters in
        let hooks =
          Instrument.Runtime.hooks ~data_via_pt:false ~plan ~pt ~wp
            ~wp_allowed:[]
        in
        let res =
          Exec.Interp.run ~hooks ~counters ~record_gt:true ~max_steps:100_000
            program (I.workload ~args:[ Exec.Value.VInt 3 ] 1)
        in
        Hw.Pt.finish pt;
        let decoded =
          Hw.Pt.decode_all pt program
          |> List.concat_map (fun (_, (d : Hw.Pt.decoded)) -> d.d_iids)
          |> List.sort_uniq compare
        in
        let executed = List.map snd res.I.executed |> List.sort_uniq compare in
        List.for_all
          (fun iid -> (not (List.mem iid executed)) || List.mem iid decoded)
          tracked);
  ]

let rr_props =
  [
    QCheck.Test.make ~name:"record/replay reproduces random programs"
      ~count:100 seed_arb (fun seed ->
        let program = Fuzz.Gen.random seed in
        let rec_ =
          Baseline.Rr.record ~max_steps:100_000 program
            (I.workload ~args:[ Exec.Value.VInt 3 ] 5)
        in
        let _, same = Baseline.Rr.replay ~max_steps:100_000 program rec_ in
        same);
  ]

let () =
  Alcotest.run "gen-properties"
    [
      ("interp", List.map QCheck_alcotest.to_alcotest interp_props);
      ("pt", List.map QCheck_alcotest.to_alcotest pt_props);
      ("coverage", List.map QCheck_alcotest.to_alcotest coverage_props);
      ("slicing", List.map QCheck_alcotest.to_alcotest slicing_props);
      ("record-replay", List.map QCheck_alcotest.to_alcotest rr_props);
      ("multithreaded", List.map QCheck_alcotest.to_alcotest mt_props);
    ]
