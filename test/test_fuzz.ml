(* The self-checking fuzzer end-to-end: bug injection with a labelled
   root cause, the ground-truth oracle, campaign determinism across job
   counts, and the verdict-preserving shrinker. *)

module G = Fuzz.Gen
module C = Fuzz.Check
module R = Fuzz.Runner
module S = Fuzz.Shrink
module Corp = Fuzz.Corpus

let verdict =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (C.verdict_to_string v))
    C.verdict_equal

(* Known-diagnosable (pattern, seed) pairs: the seeds behind the
   checked-in corpus, one per taxonomy entry. *)
let viable_seeds =
  [
    (G.RWR, 91052412); (G.WWR, 187278384); (G.RWW, 801216856);
    (G.WRW, 207472549); (G.WW, 856513169); (G.WR, 293615293);
    (G.RW, 783676841); (G.Branch_bug, 591480616); (G.Value_bug, 489017093);
  ]

let doctor_accept acc case =
  { case with G.c_truth = { case.G.c_truth with G.t_accept = acc } }

let generation =
  [
    Alcotest.test_case "same (pattern, seed) compiles identically" `Quick
      (fun () ->
        List.iter
          (fun (pat, seed) ->
            let a = G.generate pat seed and b = G.generate pat seed in
            Alcotest.(check string)
              (G.pattern_name pat)
              (Ir.Text.emit a.G.c_program)
              (Ir.Text.emit b.G.c_program))
          viable_seeds);
    Alcotest.test_case "pattern names round-trip" `Quick (fun () ->
        List.iter
          (fun p ->
            match G.pattern_of_name (G.pattern_name p) with
            | Some p' when p' = p -> ()
            | _ -> Alcotest.failf "pattern %s" (G.pattern_name p))
          G.all_patterns);
    Alcotest.test_case "truth names real source lines of the program" `Quick
      (fun () ->
        List.iter
          (fun (pat, seed) ->
            let case = G.generate pat seed in
            let lines =
              List.map
                (fun (i : Ir.Types.instr) -> i.Ir.Types.loc.Ir.Types.line)
                (Ir.Program.all_instrs case.G.c_program)
            in
            List.iter
              (fun l ->
                if not (List.mem l lines) then
                  Alcotest.failf "%s: kernel line %d not in program"
                    (G.pattern_name pat) l)
              (case.G.c_truth.G.t_fail_line
               :: case.G.c_truth.G.t_kernel_lines))
          viable_seeds);
    Alcotest.test_case "workloads are deterministic per client" `Quick
      (fun () ->
        let case = G.generate G.RWR 91052412 in
        let w = G.workload_of case 5 and w' = G.workload_of case 5 in
        Alcotest.(check bool) "equal" true (w = w'));
  ]

let oracle =
  [
    Alcotest.test_case "every pattern diagnoses to its labelled cause"
      `Slow (fun () ->
        List.iter
          (fun (pat, seed) ->
            let o = C.check (G.generate pat seed) in
            Alcotest.check verdict (G.pattern_name pat) C.Correct
              o.C.verdict)
          viable_seeds);
    Alcotest.test_case "empty accept set turns Correct into Wrong" `Quick
      (fun () ->
        let case = doctor_accept [] (G.generate G.Branch_bug 591480616) in
        match (C.check case).C.verdict with
        | C.Wrong_root_cause _ -> ()
        | v -> Alcotest.failf "got %s" (C.verdict_to_string v));
    Alcotest.test_case "unreachable failure line yields No_failure" `Quick
      (fun () ->
        let case = G.generate G.RWR 91052412 in
        let case =
          { case with
            G.c_truth = { case.G.c_truth with G.t_fail_line = 9999 } }
        in
        Alcotest.check verdict "no-failure" C.No_failure
          (C.check case).C.verdict);
    Alcotest.test_case "probe counts both outcomes on a viable case"
      `Quick (fun () ->
        let p = C.probe (G.generate G.WW 856513169) in
        Alcotest.(check bool) "viable" true (C.viable p);
        Alcotest.(check bool) "target found" true (p.C.p_target <> None));
    Alcotest.test_case "no engine divergence on any corpus seed" `Quick
      (fun () ->
        List.iter
          (fun (pat, seed) ->
            match C.divergence (G.generate pat seed) with
            | None -> ()
            | Some d ->
              Alcotest.failf "%s: %s" (G.pattern_name pat) d)
          viable_seeds);
  ]

let campaign =
  [
    Alcotest.test_case "campaign is deterministic across job counts"
      `Slow (fun () ->
        let a = R.run ~jobs:0 ~seed:42 ~count:27 () in
        let b = R.run ~jobs:3 ~seed:42 ~count:27 () in
        Alcotest.(check string) "json" (R.to_json a) (R.to_json b));
    Alcotest.test_case "campaign accuracy is perfect on seed 42" `Slow
      (fun () ->
        let r = R.run ~jobs:0 ~seed:42 ~count:27 () in
        Alcotest.(check (float 0.001)) "overall" 1.0 (R.overall_accuracy r);
        Alcotest.(check (float 0.001)) "min pattern" 1.0
          (R.min_pattern_accuracy r);
        Alcotest.(check int) "cases" 27 (List.length r.R.r_cases);
        Alcotest.(check int) "patterns covered" 9
          (List.length r.R.r_stats));
  ]

let shrinker =
  [
    Alcotest.test_case "shrunk reproducers are small and verdict-stable"
      `Slow (fun () ->
        (* Doctor the truth so the (correct) diagnosis is judged wrong,
           then shrink while that exact wrong-root-cause verdict
           reproduces. *)
        List.iter
          (fun (pat, seed) ->
            let case = doctor_accept [] (G.generate pat seed) in
            let o = C.check case in
            let s = S.run case o.C.verdict in
            let name = G.pattern_name pat in
            Alcotest.(check bool) (name ^ " shrank") true
              (s.S.size_after <= s.S.size_before);
            Alcotest.(check bool) (name ^ " <= 25 instrs") true
              (s.S.size_after <= 25);
            Alcotest.check verdict (name ^ " verdict preserved")
              o.C.verdict (C.check s.S.shrunk).C.verdict)
          [ (G.RWR, 91052412); (G.WW, 856513169);
            (G.Branch_bug, 591480616) ]);
    Alcotest.test_case "scenario-less cases are returned unchanged" `Quick
      (fun () ->
        let case = G.generate G.Value_bug 489017093 in
        let bare = { case with G.c_scenario = None } in
        let s = S.run bare C.Correct in
        Alcotest.(check int) "rounds" 0 s.S.rounds;
        Alcotest.(check int) "size" (S.instr_count bare) s.S.size_after);
    Alcotest.test_case "every shrink candidate strictly shrinks" `Quick
      (fun () ->
        List.iter
          (fun (pat, seed) ->
            let sc = G.scenario pat seed in
            List.iter
              (fun sc' ->
                if G.scenario_size sc' >= G.scenario_size sc then
                  Alcotest.failf "%s-%d: candidate did not shrink"
                    (G.pattern_name pat) seed)
              (G.shrink_candidates sc))
          viable_seeds);
  ]

let corpus_format =
  [
    Alcotest.test_case "accept strings round-trip" `Quick (fun () ->
        List.iter
          (fun acc ->
            match Corp.accept_of_string (Corp.accept_to_string acc) with
            | Ok acc' when acc' = acc -> ()
            | Ok _ -> Alcotest.failf "mangled %s" (Corp.accept_to_string acc)
            | Error e -> Alcotest.fail e)
          [
            G.A_race ("WR", 12, 101); G.A_atom ("RWR", 101, 102, 103);
            G.A_value (112, "6"); G.A_value (101, "null");
            G.A_branch (101, true); G.A_branch (103, false);
          ]);
    Alcotest.test_case "malformed accept strings are rejected" `Quick
      (fun () ->
        List.iter
          (fun s ->
            match Corp.accept_of_string s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" s)
          [ ""; "frob@12"; "race:WR@12"; "branch@x=taken"; "atom:RWR@1,2" ]);
    Alcotest.test_case "a case round-trips through the corpus format"
      `Quick (fun () ->
        let case = G.generate G.WR 293615293 in
        match Corp.of_string ~name:"rt" (Corp.to_string case) with
        | Error e -> Alcotest.fail e
        | Ok c ->
          Alcotest.(check string) "kind"
            case.G.c_truth.G.t_kind_tag c.G.c_truth.G.t_kind_tag;
          Alcotest.(check int) "fail line"
            case.G.c_truth.G.t_fail_line c.G.c_truth.G.t_fail_line;
          Alcotest.(check (list int)) "kernel lines"
            case.G.c_truth.G.t_kernel_lines c.G.c_truth.G.t_kernel_lines;
          Alcotest.(check bool) "accept set" true
            (case.G.c_truth.G.t_accept = c.G.c_truth.G.t_accept);
          Alcotest.(check (list int)) "args"
            case.G.c_args_cycle c.G.c_args_cycle;
          Alcotest.(check (float 0.0001))
            "preempt" case.G.c_preempt c.G.c_preempt;
          Alcotest.(check int) "instrs"
            case.G.c_program.Ir.Types.n_instrs
            c.G.c_program.Ir.Types.n_instrs);
  ]

let () =
  Alcotest.run "fuzz"
    [
      ("generation", generation);
      ("oracle", oracle);
      ("campaign", campaign);
      ("shrinker", shrinker);
      ("corpus-format", corpus_format);
    ]
