(* A deterministic random-program generator for property tests.

   [random seed] builds a well-formed, always-terminating, single-thread
   IR program from a seeded recipe: straight-line arithmetic over
   previously defined registers, loads/stores into a pre-allocated
   8-cell array, if/else, and bounded counted loops.  By construction
   the programs cannot raise type errors, never touch unmapped memory
   and cannot hang — so any interpreter failure, PT decode mismatch or
   instrumentation coverage gap found on them is a genuine bug. *)

open Ir.Types
module B = Ir.Builder

type sstmt =
  | S_assign of string * expr
  | S_store of int * operand        (* arr[k] <- v *)
  | S_load of string * int          (* fresh reg <- arr[k] *)
  | S_if of string * sstmt list * sstmt list
  | S_loop of string * int * sstmt list (* counter reg, bound, body *)

(* ------------------------------------------------------------------ *)
(* Random AST construction. *)

type genstate = {
  rng : Exec.Rng.t;
  mutable fresh : int;
  mutable line : int;
}

let fresh_reg g prefix =
  g.fresh <- g.fresh + 1;
  Printf.sprintf "%s%d" prefix g.fresh

let next_line g =
  g.line <- g.line + 1;
  g.line

let pick g l = List.nth l (Exec.Rng.int g.rng (List.length l))

let random_operand g env =
  if env <> [] && Exec.Rng.bool g.rng then Reg (pick g env)
  else Imm (Exec.Rng.int g.rng 20 - 10)

let random_expr g env =
  match Exec.Rng.int g.rng 8 with
  | 0 -> Mov (random_operand g env)
  | 1 -> Not (random_operand g env)
  | 2 ->
    (* keep division well-defined: non-zero immediate divisor *)
    Bin (Div, random_operand g env, Imm (1 + Exec.Rng.int g.rng 9))
  | 3 -> Bin (Mod, random_operand g env, Imm (1 + Exec.Rng.int g.rng 9))
  | n ->
    let op = pick g [ Add; Sub; Mul; Lt; Le; Gt; Ge; Eq; Ne; And; Or ] in
    ignore n;
    Bin (op, random_operand g env, random_operand g env)

(* Generate a statement list; [env] is threaded so every register read
   is previously defined. *)
let rec random_stmts g env depth budget =
  if budget <= 0 then ([], env)
  else
    let stmt, env =
      match Exec.Rng.int g.rng (if depth > 0 then 6 else 4) with
      | 0 | 1 ->
        let r = fresh_reg g "r" in
        (S_assign (r, random_expr g env), r :: env)
      | 2 -> (S_store (Exec.Rng.int g.rng 8, random_operand g env), env)
      | 3 ->
        let r = fresh_reg g "l" in
        (S_load (r, Exec.Rng.int g.rng 8), r :: env)
      | 4 ->
        let c = fresh_reg g "c" in
        let then_s, _ = random_stmts g (c :: env) (depth - 1) (budget / 2) in
        let else_s, _ = random_stmts g (c :: env) (depth - 1) (budget / 2) in
        (S_if (c, then_s, else_s), c :: env)
      | _ ->
        let k = fresh_reg g "k" in
        let body, _ =
          random_stmts g (k :: env) (depth - 1) (budget / 2)
        in
        (S_loop (k, 1 + Exec.Rng.int g.rng 5, body), env)
    in
    let rest, env = random_stmts g env depth (budget - 1) in
    (stmt :: rest, env)

(* ------------------------------------------------------------------ *)
(* Lowering to basic blocks. *)

let compile g ?(alloc = true) stmts =
  let blocks = ref [] in
  let label_counter = ref 0 in
  let fresh_label prefix =
    incr label_counter;
    Printf.sprintf "%s%d" prefix !label_counter
  in
  let i kind = B.instr ~file:"gen.c" ~line:(next_line g) ~text:"" kind in
  let add_block label instrs = blocks := (label, instrs) :: !blocks in
  (* [go stmts acc lbl exit]: emit [stmts] into block [lbl] (whose
     earlier instructions are [acc], reversed), ending with a jump to
     [exit]. *)
  let rec go stmts acc lbl exit =
    match stmts with
    | [] -> add_block lbl (List.rev (i (Jmp exit) :: acc))
    | S_assign (r, e) :: tl -> go tl (i (Assign (r, e)) :: acc) lbl exit
    | S_store (off, v) :: tl ->
      go tl (i (Store (Reg "arr", off, v)) :: acc) lbl exit
    | S_load (r, off) :: tl ->
      go tl (i (Load (r, Reg "arr", off)) :: acc) lbl exit
    | S_if (c, then_s, else_s) :: tl ->
      let lt = fresh_label "t" and lf = fresh_label "f" in
      let lj = fresh_label "j" in
      let cond = i (Assign (c, random_expr g [])) in
      add_block lbl (List.rev (i (Branch (Reg c, lt, lf)) :: cond :: acc));
      go then_s [] lt lj;
      go else_s [] lf lj;
      go tl [] lj exit
    | S_loop (k, bound, body) :: tl ->
      let lh = fresh_label "h" and lb = fresh_label "b" in
      let li = fresh_label "i" and lx = fresh_label "x" in
      let kc = k ^ "c" in
      add_block lbl (List.rev (i (Jmp lh) :: i (Assign (k, Mov (Imm 0))) :: acc));
      add_block lh
        [
          i (Assign (kc, B.( <% ) (Reg k) (Imm bound)));
          i (Branch (Reg kc, lb, lx));
        ];
      go body [] lb li;
      add_block li
        [ i (Assign (k, B.( +% ) (Reg k) (Imm 1))); i (Jmp lh) ];
      go tl [] lx exit
  in
  let entry_acc =
    if alloc then [ i (Store (Reg "arr", 0, Imm 1)); i (Malloc ("arr", 8)) ]
    else []
  in
  go stmts entry_acc "entry" "the_end";
  add_block "the_end" [ i (Ret (Some (Imm 0))) ];
  List.rev !blocks

let random ?(budget = 14) ?(depth = 3) seed =
  let g = { rng = Exec.Rng.create seed; fresh = 0; line = 0 } in
  let stmts, _ = random_stmts g [] depth budget in
  let blocks =
    List.map (fun (label, instrs) -> B.block label instrs) (compile g stmts)
  in
  Ir.Program.make ~main:"main" [ B.func "main" ~params:[ "a" ] blocks ]

(* A multithreaded variant: two workers run independently generated
   random bodies over a shared 8-cell array.  Data races abound by
   construction, but no instruction can fault (valid offsets, bounded
   loops, non-zero divisors), so outcomes are always Success -- which
   makes the variant ideal for exercising per-thread PT streams,
   record/replay of racy schedules, and instrumentation coverage under
   real interleavings. *)
let random_threaded ?(budget = 9) ?(depth = 2) seed =
  let g = { rng = Exec.Rng.create seed; fresh = 0; line = 0 } in
  let worker name =
    let stmts, _ = random_stmts g [ "a" ] depth budget in
    let blocks =
      List.map (fun (label, instrs) -> B.block label instrs)
        (compile g ~alloc:false stmts)
    in
    B.func name ~params:[ "arr"; "a" ] blocks
  in
  let w1 = worker "worker1" and w2 = worker "worker2" in
  let i kind = B.instr ~file:"gen.c" ~line:(next_line g) ~text:"" kind in
  let main =
    B.func "main" ~params:[ "a" ]
      [
        B.block "entry"
          [
            i (Malloc ("arr", 8));
            i (Store (Reg "arr", 0, Imm 1));
            i (Spawn ("t1", "worker1", [ Reg "arr"; Reg "a" ]));
            i (Spawn ("t2", "worker2", [ Reg "arr"; Reg "a" ]));
            i (Join (Reg "t1"));
            i (Join (Reg "t2"));
            i (Load ("v", Reg "arr", 0));
            i (Ret (Some (Reg "v")));
          ];
      ]
  in
  Ir.Program.make ~main:"main" [ w1; w2; main ]
