(* Small IR programs shared by the test suites. *)

open Ir.Types
module B = Ir.Builder

let file = "test.c"
let i = B.file file
let r = B.r
let im = B.im

(* return (a + 3) * 2 *)
let straight =
  Ir.Program.make ~main:"main"
    [
      B.func "main" ~params:[ "a" ]
        [
          B.block "entry"
            [
              i 1 "x = a + 3" (Assign ("x", B.( +% ) (r "a") (im 3)));
              i 2 "y = x * 2" (Assign ("y", B.( *% ) (r "x") (im 2)));
              i 3 "return y" (Ret (Some (r "y")));
            ];
        ];
    ]

(* if (a > 0) return 1 else return -1 *)
let diamond =
  Ir.Program.make ~main:"main"
    [
      B.func "main" ~params:[ "a" ]
        [
          B.block "entry"
            [
              i 1 "c = a > 0" (Assign ("c", B.( >% ) (r "a") (im 0)));
              i 2 "if (c)" (Branch (r "c", "pos", "neg"));
            ];
          B.block "pos"
            [
              i 3 "r = 1" (Assign ("res", Mov (im 1)));
              i 3 "" (Jmp "out");
            ];
          B.block "neg"
            [
              i 4 "r = -1" (Assign ("res", Mov (im (-1))));
              i 4 "" (Jmp "out");
            ];
          B.block "out" [ i 5 "return r" (Ret (Some (r "res"))) ];
        ];
    ]

(* sum 0..n-1 *)
let loop_sum =
  Ir.Program.make ~main:"main"
    [
      B.func "main" ~params:[ "n" ]
        [
          B.block "entry"
            [
              i 1 "s = 0" (Assign ("s", Mov (im 0)));
              i 1 "k = 0" (Assign ("k", Mov (im 0)));
              i 1 "" (Jmp "loop");
            ];
          B.block "loop"
            [
              i 2 "k < n" (Assign ("c", B.( <% ) (r "k") (r "n")));
              i 2 "" (Branch (r "c", "body", "out"));
            ];
          B.block "body"
            [
              i 3 "s += k" (Assign ("s", B.( +% ) (r "s") (r "k")));
              i 3 "k++" (Assign ("k", B.( +% ) (r "k") (im 1)));
              i 3 "" (Jmp "loop");
            ];
          B.block "out" [ i 4 "return s" (Ret (Some (r "s"))) ];
        ];
    ]

(* main -> f -> g, values flowing through returns *)
let call_chain =
  Ir.Program.make ~main:"main"
    [
      B.func "g" ~params:[ "x" ]
        [
          B.block "entry"
            [
              i 10 "return x * x" (Assign ("y", B.( *% ) (r "x") (r "x")));
              i 10 "" (Ret (Some (r "y")));
            ];
        ];
      B.func "f" ~params:[ "x" ]
        [
          B.block "entry"
            [
              i 20 "v = g(x + 1)" (Assign ("x1", B.( +% ) (r "x") (im 1)));
              i 20 "v = g(x + 1)" (Call (Some "v", "g", [ r "x1" ]));
              i 21 "return v + 2" (Assign ("v2", B.( +% ) (r "v") (im 2)));
              i 21 "" (Ret (Some (r "v2")));
            ];
        ];
      B.func "main" ~params:[ "a" ]
        [
          B.block "entry"
            [
              i 30 "return f(a)" (Call (Some "res", "f", [ r "a" ]));
              i 30 "" (Ret (Some (r "res")));
            ];
        ];
    ]

(* recursive factorial *)
let factorial =
  Ir.Program.make ~main:"main"
    [
      B.func "fact" ~params:[ "n" ]
        [
          B.block "entry"
            [
              i 1 "n <= 1" (Assign ("c", B.( <=% ) (r "n") (im 1)));
              i 1 "" (Branch (r "c", "base", "rec"));
            ];
          B.block "base" [ i 2 "return 1" (Ret (Some (im 1))) ];
          B.block "rec"
            [
              i 3 "fact(n-1)" (Assign ("n1", B.( -% ) (r "n") (im 1)));
              i 3 "fact(n-1)" (Call (Some "sub", "fact", [ r "n1" ]));
              i 4 "n * sub" (Assign ("res", B.( *% ) (r "n") (r "sub")));
              i 4 "" (Ret (Some (r "res")));
            ];
        ];
      B.func "main" ~params:[ "a" ]
        [
          B.block "entry"
            [
              i 10 "fact(a)" (Call (Some "res", "fact", [ r "a" ]));
              i 10 "" (Ret (Some (r "res")));
            ];
        ];
    ]

(* Two threads incrementing a shared global [iters] times each.
   [locked] decides whether the read-modify-write holds the lock. *)
let counter ~locked =
  let incr_body =
    if locked then
      [
        i 40 "lock" (Load_global ("m", "mutex"));
        i 40 "lock" (Lock (r "m"));
        i 41 "read" (Load_global ("v", "count"));
        i 42 "write" (Assign ("v1", B.( +% ) (r "v") (im 1)));
        i 42 "write" (Store_global ("count", r "v1"));
        i 43 "unlock" (Unlock (r "m"));
        i 44 "k++" (Assign ("k", B.( +% ) (r "k") (im 1)));
        i 44 "" (Jmp "loop");
      ]
    else
      [
        i 41 "read" (Load_global ("v", "count"));
        i 42 "write" (Assign ("v1", B.( +% ) (r "v") (im 1)));
        i 42 "write" (Store_global ("count", r "v1"));
        i 44 "k++" (Assign ("k", B.( +% ) (r "k") (im 1)));
        i 44 "" (Jmp "loop");
      ]
  in
  Ir.Program.make
    ~globals:[ B.global "count"; B.global "mutex" ]
    ~main:"main"
    [
      B.func "worker" ~params:[ "iters" ]
        [
          B.block "entry"
            [ i 39 "k = 0" (Assign ("k", Mov (im 0))); i 39 "" (Jmp "loop") ];
          B.block "loop"
            [
              i 40 "k < iters" (Assign ("c", B.( <% ) (r "k") (r "iters")));
              i 40 "" (Branch (r "c", "body", "out"));
            ];
          B.block "body" incr_body;
          B.block "out" [ i 45 "return" (Ret (Some (im 0))) ];
        ];
      B.func "main" ~params:[ "iters" ]
        [
          B.block "entry"
            [
              i 50 "mutex init" (Malloc ("m", 1));
              i 50 "mutex init" (Store_global ("mutex", r "m"));
              i 51 "spawn" (Spawn ("t1", "worker", [ r "iters" ]));
              i 52 "spawn" (Spawn ("t2", "worker", [ r "iters" ]));
              i 53 "join" (Join (r "t1"));
              i 53 "join" (Join (r "t2"));
              i 54 "final" (Load_global ("final", "count"));
              i 54 "" (Ret (Some (r "final")));
            ];
        ];
    ]

(* Immediate null dereference. *)
let null_deref =
  Ir.Program.make ~main:"main"
    [
      B.func "main" ~params:[]
        [
          B.block "entry"
            [
              i 1 "p = NULL" (Assign ("p", Mov Null));
              i 2 "*p" (Load ("v", r "p", 0));
              i 3 "" (Ret (Some (im 0)));
            ];
        ];
    ]

(* Use after free. *)
let uaf =
  Ir.Program.make ~main:"main"
    [
      B.func "main" ~params:[]
        [
          B.block "entry"
            [
              i 1 "p = malloc" (Malloc ("p", 2));
              i 2 "free(p)" (Free (r "p"));
              i 3 "*p" (Load ("v", r "p", 0));
              i 4 "" (Ret (Some (im 0)));
            ];
        ];
    ]

(* Double free. *)
let double_free =
  Ir.Program.make ~main:"main"
    [
      B.func "main" ~params:[]
        [
          B.block "entry"
            [
              i 1 "p = malloc" (Malloc ("p", 1));
              i 2 "free(p)" (Free (r "p"));
              i 3 "free(p)" (Free (r "p"));
              i 4 "" (Ret (Some (im 0)));
            ];
        ];
    ]

(* Classic lock-order deadlock. *)
let deadlock =
  let grab a b lines =
    [
      i lines "la" (Load_global ("x", a));
      i lines "la" (Lock (r "x"));
      i lines "yield" (Builtin (None, "yield", []));
      i (lines + 1) "lb" (Load_global ("y", b));
      i (lines + 1) "lb" (Lock (r "y"));
      i (lines + 2) "ret" (Ret (Some (im 0)));
    ]
  in
  Ir.Program.make
    ~globals:[ B.global "m1"; B.global "m2" ]
    ~main:"main"
    [
      B.func "w1" ~params:[] [ B.block "entry" (grab "m1" "m2" 10) ];
      B.func "w2" ~params:[] [ B.block "entry" (grab "m2" "m1" 20) ];
      B.func "main" ~params:[]
        [
          B.block "entry"
            [
              i 1 "init" (Malloc ("a", 1));
              i 1 "init" (Store_global ("m1", r "a"));
              i 2 "init" (Malloc ("b", 1));
              i 2 "init" (Store_global ("m2", r "b"));
              i 3 "spawn" (Spawn ("t1", "w1", []));
              i 4 "spawn" (Spawn ("t2", "w2", []));
              i 5 "join" (Join (r "t1"));
              i 5 "join" (Join (r "t2"));
              i 6 "" (Ret (Some (im 0)));
            ];
        ];
    ]

(* Infinite loop (hang detector test). *)
let infinite =
  Ir.Program.make ~main:"main"
    [
      B.func "main" ~params:[]
        [
          B.block "entry" [ i 1 "" (Jmp "entry2") ];
          B.block "entry2"
            [
              i 2 "x = 1" (Assign ("x", Mov (im 1)));
              i 2 "" (Jmp "entry2");
            ];
        ];
    ]

let run ?hooks ?counters ?max_steps ?record_gt ?preempt_prob ?(args = [])
    ?(seed = 42) program =
  Exec.Interp.run ?hooks ?counters ?max_steps ?record_gt ?preempt_prob program
    (Exec.Interp.workload ~args seed)

let expect_value = function
  | { Exec.Interp.outcome = Exec.Interp.Success; _ } as res -> res.output
  | { Exec.Interp.outcome = Exec.Interp.Failed rep; _ } ->
    Alcotest.failf "unexpected failure: %s" (Exec.Failure.report_to_string rep)

let failure_kind_tag (res : Exec.Interp.result) =
  match res.outcome with
  | Exec.Interp.Failed rep -> Exec.Failure.kind_tag rep.kind
  | Exec.Interp.Success -> "success"

(* Per-thread executed sequence from the interpreter's ground truth,
   with consecutive duplicates collapsed (blocked instructions are
   retried and so appear repeatedly). *)
let per_thread_executed (res : Exec.Interp.result) =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (tid, iid) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl tid) in
      match cur with
      | last :: _ when last = iid -> ()
      | _ -> Hashtbl.replace tbl tid (iid :: cur))
    res.executed;
  Hashtbl.fold (fun tid l acc -> (tid, List.rev l) :: acc) tbl []
  |> List.sort compare
