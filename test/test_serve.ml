(* One-shot-vs-multiplexed differential suite for the diagnosis
   service (lib/serve).

   The service's determinism contract: every per-bug diagnosis it
   completes is bit-identical — all fields but the two host-time
   measurements — to the same spec diagnosed one-shot through
   [Gist.Server.diagnose], whatever the scheduler interleaves between
   its grant rounds, whatever the pool size.  The suite holds that
   contract over the whole Bugbase and 50 generated fuzz bugs, in
   both the zero-fault and the 10%-aggregate-fault regimes, at jobs 1
   and jobs 4, with a deliberately adversarial scheduler shape (small
   quantum, tight round budget) so passes span many rounds and
   speculative surplus is exercised.

   Also here: admission control, fairness and backpressure-ledger
   unit tests, and the protocol v2->v3 migration tests (old-layout
   envelopes draw a typed [Bad_version]; mis-routed v3 envelopes draw
   a typed [Wrong_session]). *)

module S = Gist.Server
module P = Gist.Protocol

let compare_diagnoses name (a : S.diagnosis) (b : S.diagnosis) =
  Alcotest.(check string)
    (name ^ ": sketch")
    (Fsketch.Render.render a.sketch)
    (Fsketch.Render.render b.sketch);
  Alcotest.(check int) (name ^ ": iterations") a.iterations b.iterations;
  Alcotest.(check int) (name ^ ": recurrences") a.recurrences b.recurrences;
  Alcotest.(check int) (name ^ ": total runs") a.total_runs b.total_runs;
  Alcotest.(check int) (name ^ ": final sigma") a.final_sigma b.final_sigma;
  Alcotest.(check (list int)) (name ^ ": tracked") a.tracked b.tracked;
  Alcotest.(check bool)
    (name ^ ": avg overhead bit-identical")
    true
    (Int64.bits_of_float a.avg_overhead_pct
    = Int64.bits_of_float b.avg_overhead_pct);
  Alcotest.(check bool) (name ^ ": per-iteration trace") true (a.trace = b.trace);
  Alcotest.(check bool) (name ^ ": fleet ledger") true (a.fleet = b.fleet)

(* An adversarial scheduler shape: tiny quantum and a round budget
   that cannot serve every session, so every pass spans rounds, grants
   are partial, and the ring rotation carries starved sessions to the
   front. *)
let tight =
  { Serve.Service.default with
    Serve.Service.max_inflight = 16; max_queue = 64; quantum = 7;
    round_budget = 23 }

let one_shot (sp : Serve.Service.spec) =
  S.diagnose ~config:sp.sp_config ~ingest:sp.sp_ingest
    ?oracle:sp.sp_oracle ~bug_name:sp.sp_name
    ~failure_type:sp.sp_failure_type ~program:sp.sp_program
    ~workload_of:sp.sp_workload_of ~failure:sp.sp_failure ()

(* Run all [specs] through one service at [jobs]; diagnoses keyed by
   session name. *)
let multiplexed ~jobs specs =
  Parallel.Pool.with_pool ~jobs (fun pool ->
      let svc = Serve.Service.create ~sconfig:tight ~pool () in
      List.iter
        (fun sp ->
          match Serve.Service.submit svc sp with
          | Ok _ -> ()
          | Error r ->
            Alcotest.failf "submit %s: %s" sp.Serve.Service.sp_name
              (Serve.Service.sreject_to_string r))
        specs;
      Serve.Service.drain svc;
      List.map
        (fun (c : Serve.Service.completion) ->
          match c.Serve.Service.c_result with
          | Ok d -> (c.Serve.Service.c_name, d)
          | Error f ->
            Alcotest.failf "session %s failed: %s" c.Serve.Service.c_name
              (Serve.Service.session_failure_to_string f))
        (Serve.Service.completions svc))

(* ------------------------------------------------------------------ *)
(* Bugbase: all 11 bugs as concurrent sessions of one service. *)

let bugbase_spec ~faults (b : Bugbase.Common.t) =
  let _, failure = Option.get (Bugbase.Common.find_target_failure b) in
  let config =
    let base = { Gist.Config.default with preempt_prob = b.preempt_prob } in
    if faults then
      {
        base with
        Gist.Config.fault_rates = Faults.Fault.spread 0.10;
        fault_seed = 42;
      }
    else base
  in
  {
    Serve.Service.sp_name = b.name;
    sp_failure_type = b.failure_type;
    sp_config = config;
    sp_ingest = S.Streaming;
    sp_oracle = Some (Experiments.Oracle.for_bug b);
    sp_program = b.program;
    sp_workload_of = b.workload_of;
    sp_failure = failure;
    sp_case = None;
  }

let bugbase_differential ~faults () =
  let specs = List.map (bugbase_spec ~faults) Bugbase.Registry.all in
  Alcotest.(check bool)
    "at least 10 concurrent sessions" true
    (List.length specs >= 10);
  let reference =
    List.map (fun sp -> (sp.Serve.Service.sp_name, one_shot sp)) specs
  in
  List.iter
    (fun jobs ->
      let served = multiplexed ~jobs specs in
      Alcotest.(check int)
        (Printf.sprintf "jobs %d: all sessions completed" jobs)
        (List.length specs) (List.length served);
      List.iter
        (fun (name, d) ->
          compare_diagnoses
            (Printf.sprintf "%s (jobs %d)" name jobs)
            (List.assoc name reference)
            d)
        served)
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Fuzz: 50 generated bugs (campaign seed 42), every viable one
   one-shot and as one of 10+ interleaved sessions. *)

let fuzz_count = 50

let fuzz_cases =
  lazy
    (let patterns = Array.of_list Fuzz.Gen.all_patterns in
     List.init fuzz_count (fun i ->
         Fuzz.Gen.generate patterns.(i mod Array.length patterns) (42 + i)))

let fuzz_specs ~faults =
  List.filter_map
    (fun (case : Fuzz.Gen.case) ->
      let case =
        if faults then
          { case with Fuzz.Gen.c_faults = Some (Faults.Fault.spread 0.10, 42) }
        else case
      in
      match Fuzz.Check.probe case with
      | { Fuzz.Check.p_target = Some failure; _ } as p
        when Fuzz.Check.viable p ->
        Some
          {
            Serve.Service.sp_name = case.Fuzz.Gen.c_name;
            sp_failure_type =
              Exec.Failure.kind_to_string failure.Exec.Failure.kind;
            sp_config = Fuzz.Check.config_of case;
            sp_ingest = S.Streaming;
            sp_oracle = None;
            sp_program = case.Fuzz.Gen.c_program;
            sp_workload_of = Fuzz.Gen.workload_of case;
            sp_failure = failure;
    sp_case = None;
          }
      | _ -> None)
    (Lazy.force fuzz_cases)

let fuzz_differential ~faults () =
  let specs = fuzz_specs ~faults in
  (* The sweep must not silently degenerate into a no-op. *)
  Alcotest.(check bool)
    (Printf.sprintf "enough viable cases (%d of %d)" (List.length specs)
       fuzz_count)
    true
    (List.length specs >= fuzz_count / 2);
  let reference =
    List.map (fun sp -> (sp.Serve.Service.sp_name, one_shot sp)) specs
  in
  List.iter
    (fun jobs ->
      let served = multiplexed ~jobs specs in
      Alcotest.(check int)
        (Printf.sprintf "jobs %d: all sessions completed" jobs)
        (List.length specs) (List.length served);
      List.iter
        (fun (name, d) ->
          compare_diagnoses
            (Printf.sprintf "%s (jobs %d)" name jobs)
            (List.assoc name reference)
            d)
        served)
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Admission control, fairness, backpressure ledger. *)

let small_spec name =
  let b = List.hd Bugbase.Registry.all in
  let sp = bugbase_spec ~faults:false b in
  { sp with Serve.Service.sp_name = name }

let admission =
  [
    Alcotest.test_case "typed reject once the waiting room is full" `Quick
      (fun () ->
        let sconfig =
          { Serve.Service.default with
            Serve.Service.max_inflight = 1; max_queue = 2; quantum = 4;
            round_budget = 4 }
        in
        let svc = Serve.Service.create ~sconfig () in
        (match Serve.Service.submit svc (small_spec "a") with
         | Ok (Serve.Service.Ticket 1) -> ()
         | Ok (Serve.Service.Ticket id) ->
           Alcotest.failf "first ticket %d, expected 1" id
         | Ok (Serve.Service.Coalesced _) ->
           Alcotest.fail "coalesced without triage"
         | Error _ -> Alcotest.fail "first submit rejected");
        (match Serve.Service.submit svc (small_spec "b") with
         | Ok _ -> ()
         | Error _ -> Alcotest.fail "second submit rejected");
        (match Serve.Service.submit svc (small_spec "c") with
         | Error (Serve.Service.Busy { inflight = 0; queued = 2; retry_after_rounds }) ->
           Alcotest.(check bool) "retry hint positive" true
             (retry_after_rounds >= 1)
         | Error (Serve.Service.Busy { inflight; queued; _ }) ->
           Alcotest.failf "busy payload inflight=%d queued=%d" inflight queued
         | Error (Serve.Service.Shed _) ->
           Alcotest.fail "shed without triage"
         | Ok _ -> Alcotest.fail "third submit accepted past the cap");
        (* A round admits one session, freeing a queue slot. *)
        ignore (Serve.Service.step svc);
        (match Serve.Service.submit svc (small_spec "d") with
         | Ok _ -> ()
         | Error _ -> Alcotest.fail "submit after step rejected");
        Serve.Service.drain svc;
        let st = Serve.Service.stats svc in
        Alcotest.(check int) "submitted" 4 st.st_submitted;
        Alcotest.(check int) "rejected" 1 st.st_rejected;
        Alcotest.(check int) "admitted" 3 st.st_admitted;
        Alcotest.(check int) "completed" 3 st.st_completed;
        Alcotest.(check int) "peak inflight" 1 st.st_peak_inflight);
    Alcotest.test_case "reject labels" `Quick (fun () ->
        let r =
          Serve.Service.Busy
            { inflight = 3; queued = 7; retry_after_rounds = 1 }
        in
        Alcotest.(check string) "label" "busy" (Serve.Service.sreject_label r);
        Alcotest.(check bool) "string mentions both numbers" true
          (let s = Serve.Service.sreject_to_string r in
           Astring.String.is_infix ~affix:"3" s
           && Astring.String.is_infix ~affix:"7" s));
    Alcotest.test_case
      "ledger balances: submitted = completed + rejected after drain" `Quick
      (fun () ->
        let sconfig =
          { Serve.Service.default with
            Serve.Service.max_inflight = 3; max_queue = 2; quantum = 5;
            round_budget = 10 }
        in
        let svc = Serve.Service.create ~sconfig () in
        let rejected = ref 0 in
        for i = 1 to 9 do
          match Serve.Service.submit svc (small_spec (string_of_int i)) with
          | Ok _ -> ()
          | Error (Serve.Service.Busy _ | Serve.Service.Shed _) ->
            incr rejected;
            ignore (Serve.Service.step svc)
        done;
        Serve.Service.drain svc;
        let st = Serve.Service.stats svc in
        Alcotest.(check int) "submitted" 9 st.st_submitted;
        Alcotest.(check int) "rejected booked" !rejected st.st_rejected;
        Alcotest.(check int) "balance"
          st.st_submitted
          (st.st_completed + st.st_rejected);
        Alcotest.(check int) "no sessions in flight" 0
          (Serve.Service.inflight svc);
        Alcotest.(check int) "no sessions queued" 0 (Serve.Service.queued svc);
        Alcotest.(check int) "completions harvested once" st.st_completed
          (List.length (Serve.Service.take_completions svc));
        Alcotest.(check int) "nothing retained after harvest" 0
          (List.length (Serve.Service.completions svc)));
    Alcotest.test_case
      "fairness: no session starved beyond max_inflight rounds" `Quick
      (fun () ->
        (* round_budget = quantum: only one session served per round —
           the worst case the rotation has to keep fair. *)
        let sconfig =
          { Serve.Service.default with
            Serve.Service.max_inflight = 6; max_queue = 8; quantum = 8;
            round_budget = 8 }
        in
        let svc = Serve.Service.create ~sconfig () in
        List.iter
          (fun (b : Bugbase.Common.t) ->
            match
              Serve.Service.submit svc (bugbase_spec ~faults:false b)
            with
            | Ok _ -> ()
            | Error _ -> Alcotest.fail "submit rejected below the cap")
          (List.filteri (fun i _ -> i < 6) Bugbase.Registry.all);
        Serve.Service.drain svc;
        let st = Serve.Service.stats svc in
        Alcotest.(check int) "all completed" 6 st.st_completed;
        Alcotest.(check bool)
          (Printf.sprintf "max wait %d <= %d rounds" st.st_max_wait_rounds
             sconfig.Serve.Service.max_inflight)
          true
          (st.st_max_wait_rounds <= sconfig.Serve.Service.max_inflight));
    Alcotest.test_case "malformed scheduler shapes are refused" `Quick
      (fun () ->
        let bad sconfig =
          match Serve.Service.create ~sconfig () with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "malformed sconfig accepted"
        in
        bad { Serve.Service.default with Serve.Service.max_inflight = 0 };
        bad { Serve.Service.default with Serve.Service.quantum = 0 };
        bad
          {
            Serve.Service.default with
            Serve.Service.quantum = 8;
            round_budget = 4;
          });
  ]

(* ------------------------------------------------------------------ *)
(* Protocol v3 migration: the old v2 wire layout (no session word) is
   refused with a typed [Bad_version]; a v3 envelope routed to the
   wrong session is refused with a typed [Wrong_session] before the
   freshness check. *)

(* One real client report to route: (report, n_instrs, plan_id). *)
let fixture =
  lazy
    (let program = Tsupport.Programs.counter ~locked:true in
     let all = Ir.Program.all_instrs program in
     let n_instrs =
       1 + List.fold_left (fun m (i : Ir.Types.instr) -> max m i.iid) 0 all
     in
     let tracked =
       List.filteri (fun i _ -> i < 6) all
       |> List.map (fun (ins : Ir.Types.instr) -> ins.iid)
     in
     let plan = Instrument.Place.compute program tracked in
     let report =
       Gist.Client.run_one ~plan ~wp_allowed:plan.Instrument.Plan.wp_targets
         program
         (Exec.Interp.workload ~args:[ Exec.Value.VInt 3 ] 1)
     in
     (report, n_instrs, Instrument.Plan.id plan))

let migration =
  [
    Alcotest.test_case "v2 wire layout draws Bad_version 2" `Quick (fun () ->
        let report, n_instrs, plan_id = Lazy.force fixture in
        let v3 =
          P.Encode.encode (P.Encode.arena ()) ~client:5 ~plan_id report
        in
        (* The v2 layout is the v3 layout minus the fixed 4-byte
           session word (bytes 2..5 here: version and client are
           single-byte varints for these values), with the version
           byte downgraded. *)
        let v2 =
          let b = Bytes.of_string v3 in
          Bytes.set b 0 '\002';
          let out = Bytes.create (Bytes.length b - 4) in
          Bytes.blit b 0 out 0 2;
          Bytes.blit b 6 out 2 (Bytes.length b - 6);
          Bytes.to_string out
        in
        (match P.Encode.check ~n_instrs ~plan_id v2 with
         | Error (P.Bad_version 2) -> ()
         | Error r -> Alcotest.failf "check: %s" (P.reject_to_string r)
         | Ok () -> Alcotest.fail "v2 envelope accepted");
        match P.Encode.ingest ~n_instrs ~plan_id v2 with
        | Error (P.Bad_version 2) -> ()
        | Error r -> Alcotest.failf "ingest: %s" (P.reject_to_string r)
        | Ok _ -> Alcotest.fail "v2 envelope decoded");
    Alcotest.test_case
      "mis-routed v3 envelope draws Wrong_session before Stale_plan" `Quick
      (fun () ->
        let report, n_instrs, plan_id = Lazy.force fixture in
        let bytes =
          P.Encode.encode (P.Encode.arena ()) ~session:5 ~client:3 ~plan_id
            report
        in
        (* Wrong session AND stale plan: the session check wins. *)
        (match
           P.Encode.check ~session:9 ~n_instrs ~plan_id:(plan_id + 1) bytes
         with
         | Error (P.Wrong_session { expected = 9; got = 5 }) -> ()
         | Error r -> Alcotest.failf "check: %s" (P.reject_to_string r)
         | Ok () -> Alcotest.fail "mis-routed envelope accepted");
        (* Right session: the freshness layer takes over again. *)
        (match
           P.Encode.check ~session:5 ~n_instrs ~plan_id:(plan_id + 1) bytes
         with
         | Error (P.Stale_plan { got; _ }) ->
           Alcotest.(check int) "stale got" plan_id got
         | Error r -> Alcotest.failf "check: %s" (P.reject_to_string r)
         | Ok () -> Alcotest.fail "stale envelope accepted");
        (* Right session, right plan: accepted. *)
        match P.Encode.ingest ~session:5 ~n_instrs ~plan_id bytes with
        | Ok _ -> ()
        | Error r -> Alcotest.failf "ingest: %s" (P.reject_to_string r));
    Alcotest.test_case "record validate mirrors the wire checks" `Quick
      (fun () ->
        let report, n_instrs, plan_id = Lazy.force fixture in
        let env = P.seal ~session:4 ~client:0 ~plan_id report in
        (match P.validate ~session:6 ~n_instrs ~plan_id env with
         | Error (P.Wrong_session { expected = 6; got = 4 }) -> ()
         | Error r -> Alcotest.failf "validate: %s" (P.reject_to_string r)
         | Ok _ -> Alcotest.fail "mis-routed envelope accepted");
        match P.validate ~session:4 ~n_instrs ~plan_id env with
        | Ok _ -> ()
        | Error r -> Alcotest.failf "validate: %s" (P.reject_to_string r));
  ]

(* ------------------------------------------------------------------ *)
(* The session id must never influence the diagnosis: the same spec
   run as session 0 (the one-shot id) and as a large id produce
   bit-identical results, fault regime included (fault draws are
   keyed by slot, tamper positions by envelope length — and the
   session word is fixed-width). *)

let session_id_independence =
  [
    Alcotest.test_case "diagnosis is invariant in the session id" `Quick
      (fun () ->
        let sp =
          bugbase_spec ~faults:true (List.hd Bugbase.Registry.all)
        in
        let run id =
          let s =
            S.Session.create ~config:sp.Serve.Service.sp_config
              ~ingest:sp.Serve.Service.sp_ingest
              ?oracle:sp.Serve.Service.sp_oracle ~id
              ~bug_name:sp.Serve.Service.sp_name
              ~failure_type:sp.Serve.Service.sp_failure_type
              ~program:sp.Serve.Service.sp_program
              ~workload_of:sp.Serve.Service.sp_workload_of
              ~failure:sp.Serve.Service.sp_failure ()
          in
          let rec loop () =
            match S.Session.need s with
            | S.Session.Finished -> S.Session.result s
            | S.Session.Slots n ->
              let thunks = S.Session.grant s (min 5 n) in
              S.Session.deliver s (Array.map (fun th -> th ()) thunks);
              loop ()
          in
          loop ()
        in
        compare_diagnoses "session id 0 vs 40961" (run 0) (run 40961));
  ]

(* ------------------------------------------------------------------ *)
(* Seed-corpus replay under interleaving: every diagnosable shrunk
   reproducer is diagnosed one-shot and as one of a full ring of
   concurrent sessions under an adversarial scheduler shape, and the
   two diagnoses must be bit-identical.  Cases 15..17 were added for
   this suite (17 carries its fault regime). *)

let corpus_cases =
  lazy
    ((* The corpus is a dune dep copied next to the test binary;
        resolve it there so the suite also runs under [dune exec]. *)
     let dir =
       if Sys.file_exists "corpus" then "corpus"
       else if Sys.file_exists "test/corpus" then "test/corpus"
       else Filename.concat (Filename.dirname Sys.executable_name) "corpus"
     in
     match Fuzz.Corpus.load_dir dir with
     | Ok cases -> cases
     | Error e -> Alcotest.failf "corpus load: %s" e)

let corpus_spec (case : Fuzz.Gen.case) =
  match Fuzz.Check.divergence case with
  | Some _ -> None
  | None ->
    (match (Fuzz.Check.probe case).Fuzz.Check.p_target with
     | None -> None
     | Some failure ->
       Some
         {
           Serve.Service.sp_name = case.Fuzz.Gen.c_name;
           sp_failure_type =
             Exec.Failure.kind_to_string failure.Exec.Failure.kind;
           sp_config = Fuzz.Check.config_of case;
           sp_ingest = S.Streaming;
           sp_oracle = None;
           sp_program = case.Fuzz.Gen.c_program;
           sp_workload_of = Fuzz.Gen.workload_of case;
           sp_failure = failure;
    sp_case = None;
         })

let corpus =
  [
    Alcotest.test_case "corpus carries the interleaving-era additions"
      `Quick (fun () ->
        let cases = Lazy.force corpus_cases in
        Alcotest.(check bool) "at least 18 cases" true
          (List.length cases >= 18);
        Alcotest.(check bool) "a fault-regime reproducer among 15.." true
          (List.exists
             (fun (c : Fuzz.Gen.case) ->
               String.length c.Fuzz.Gen.c_name >= 2
               && (match int_of_string_opt (String.sub c.c_name 0 2) with
                   | Some i -> i >= 15
                   | None -> false)
               && c.Fuzz.Gen.c_faults <> None)
             cases));
    Alcotest.test_case "interleaved replay is bit-identical to one-shot"
      `Slow (fun () ->
        let specs =
          List.filter_map corpus_spec (Lazy.force corpus_cases)
        in
        Alcotest.(check bool)
          (Printf.sprintf "enough diagnosable reproducers (%d)"
             (List.length specs))
          true
          (List.length specs >= 15);
        let reference =
          List.map (fun sp -> (sp.Serve.Service.sp_name, one_shot sp)) specs
        in
        let served = multiplexed ~jobs:4 specs in
        Alcotest.(check int) "all sessions completed" (List.length specs)
          (List.length served);
        List.iter
          (fun (name, d) ->
            compare_diagnoses name (List.assoc name reference) d)
          served);
  ]

let () =
  Alcotest.run "serve"
    [
      ( "bugbase",
        [
          Alcotest.test_case "11 bugs, one-shot vs multiplexed" `Slow
            (bugbase_differential ~faults:false);
        ] );
      ( "bugbase-faults",
        [
          Alcotest.test_case "11 bugs at 10% aggregate faults" `Slow
            (bugbase_differential ~faults:true);
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "50 generated bugs" `Slow
            (fuzz_differential ~faults:false);
        ] );
      ( "fuzz-faults",
        [
          Alcotest.test_case "50 generated bugs at 10% aggregate faults" `Slow
            (fuzz_differential ~faults:true);
        ] );
      ("corpus", corpus);
      ("admission", admission);
      ("migration", migration);
      ("session-id", session_id_independence);
    ]
