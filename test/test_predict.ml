(* Failure-predictor extraction (Fig. 5 patterns) and F-measure
   statistics (paper §3.3). *)

module P = Predict.Predictor
module S = Predict.Stats
module W = Hw.Watchpoint

let trap seq tid iid addr rw value =
  W.
    {
      w_seq = seq;
      w_tid = tid;
      w_iid = iid;
      w_addr = addr;
      w_rw = rw;
      w_value = Exec.Value.VInt value;
    }

let rd = Exec.Interp.Read
let wr = Exec.Interp.Write

let patterns =
  [
    Alcotest.test_case "RWR atomicity violation detected (Fig 6b)" `Quick
      (fun () ->
        (* T1 reads x, T2 writes x, T1 reads x *)
        let traps =
          [ trap 1 1 10 5 rd 0; trap 2 2 20 5 wr 1; trap 3 1 11 5 rd 1 ]
        in
        let found = P.of_traps traps in
        Alcotest.(check bool) "RWR present" true
          (List.mem (P.Atomicity ("RWR", 10, 20, 11)) found));
    Alcotest.test_case "WR data race detected (Fig 6d)" `Quick (fun () ->
        let traps = [ trap 1 2 20 5 wr 1; trap 2 1 11 5 rd 1 ] in
        Alcotest.(check bool) "WR present" true
          (List.mem (P.Race ("WR", 20, 11)) (P.of_traps traps)));
    Alcotest.test_case "read-read is not a race" `Quick (fun () ->
        let traps = [ trap 1 1 10 5 rd 0; trap 2 2 20 5 rd 0 ] in
        Alcotest.(check (list string)) "nothing" []
          (List.map P.to_string (P.of_traps traps)));
    Alcotest.test_case "same-thread accesses yield no pattern" `Quick
      (fun () ->
        let traps = [ trap 1 1 10 5 rd 0; trap 2 1 11 5 wr 1 ] in
        Alcotest.(check int) "none" 0 (List.length (P.of_traps traps)));
    Alcotest.test_case "different addresses do not interleave" `Quick
      (fun () ->
        let traps = [ trap 1 1 10 5 wr 0; trap 2 2 20 6 rd 0 ] in
        Alcotest.(check int) "none" 0 (List.length (P.of_traps traps)));
    Alcotest.test_case "only Fig 5 triples are atomicity patterns" `Quick
      (fun () ->
        (* W R R: not in {RWR, WWR, RWW, WRW} *)
        let traps =
          [ trap 1 1 10 5 wr 0; trap 2 2 20 5 rd 0; trap 3 1 11 5 rd 0 ]
        in
        let atomicities =
          List.filter (function P.Atomicity _ -> true | _ -> false)
            (P.of_traps traps)
        in
        Alcotest.(check int) "no WRR" 0 (List.length atomicities));
    Alcotest.test_case "all four Fig 5 patterns are recognised" `Quick
      (fun () ->
        let mk p1 p2 p3 =
          [ trap 1 1 10 5 p1 0; trap 2 2 20 5 p2 0; trap 3 1 11 5 p3 0 ]
        in
        List.iter
          (fun (a, b, c, name) ->
            let found =
              List.filter (function P.Atomicity (n, _, _, _) -> n = name
                                  | _ -> false)
                (P.of_traps (mk a b c))
            in
            Alcotest.(check int) name 1 (List.length found))
          [ (rd, wr, rd, "RWR"); (wr, wr, rd, "WWR"); (rd, wr, wr, "RWW");
            (wr, rd, wr, "WRW") ]);
    Alcotest.test_case "branch predictors filtered to tracked statements"
      `Quick (fun () ->
        let found =
          P.of_branches ~tracked:[ 1; 2 ] [ (1, true); (3, false); (2, true) ]
        in
        Alcotest.(check int) "two kept" 2 (List.length found));
    Alcotest.test_case "data-value predictors carry the observed value"
      `Quick (fun () ->
        let found = P.of_values [ trap 1 1 10 5 rd 42 ] in
        Alcotest.(check bool) "value 42" true
          (List.mem (P.Data_value (10, "42")) found));
    Alcotest.test_case "of_run dedups predictors" `Quick (fun () ->
        let traps = [ trap 1 1 10 5 rd 1; trap 2 1 10 5 rd 1 ] in
        let found = P.of_run ~tracked:[] ~branch_outcomes:[] ~traps () in
        Alcotest.(check int) "one value predictor" 1 (List.length found));
  ]

let fmeasure =
  [
    Alcotest.test_case "known F_0.5 value" `Quick (fun () ->
        (* P=1, R=0.5, beta=0.5: F = 1.25 * 0.5 / (0.25 + 0.5) = 0.8333 *)
        Alcotest.(check (float 0.001)) "F" 0.8333
          (S.f_measure ~precision:1.0 ~recall:0.5 ()));
    Alcotest.test_case "beta=0.5 favours precision over recall" `Quick
      (fun () ->
        let high_p = S.f_measure ~precision:0.9 ~recall:0.5 () in
        let high_r = S.f_measure ~precision:0.5 ~recall:0.9 () in
        Alcotest.(check bool) "precision wins" true (high_p > high_r));
    Alcotest.test_case "beta=1 is the harmonic mean" `Quick (fun () ->
        Alcotest.(check (float 0.001)) "F1" 0.6
          (S.f_measure ~beta:1.0 ~precision:0.75 ~recall:0.5 ()));
    Alcotest.test_case "zero precision and recall give zero" `Quick (fun () ->
        Alcotest.(check (float 0.0001)) "F0" 0.0
          (S.f_measure ~precision:0.0 ~recall:0.0 ()));
  ]

let p1 = P.Data_value (1, "null")
let p2 = P.Branch_taken (2, true)
let p3 = P.Race ("WR", 3, 4)

let obs preds failing = S.{ predictors = preds; failing }

let ranking =
  [
    Alcotest.test_case "perfect predictor ranks first" `Quick (fun () ->
        let observations =
          [
            obs [ p1; p2 ] true;
            obs [ p1 ] true;
            obs [ p2 ] false;
            obs [] false;
          ]
        in
        match S.rank observations with
        | best :: _ ->
          Alcotest.(check bool) "p1 first" true (P.equal best.S.predictor p1);
          Alcotest.(check (float 0.001)) "precision 1" 1.0 best.S.precision;
          Alcotest.(check (float 0.001)) "recall 1" 1.0 best.S.recall
        | [] -> Alcotest.fail "empty ranking");
    Alcotest.test_case "counts are per run, not per occurrence" `Quick
      (fun () ->
        let observations = [ obs [ p3 ] true; obs [ p3 ] false ] in
        match S.rank observations with
        | [ r ] ->
          Alcotest.(check int) "failing" 1 r.S.n_failing_with;
          Alcotest.(check int) "success" 1 r.S.n_success_with;
          Alcotest.(check (float 0.001)) "precision" 0.5 r.S.precision
        | _ -> Alcotest.fail "one predictor expected");
    Alcotest.test_case "best_per_kind keeps one of each category" `Quick
      (fun () ->
        let observations =
          [ obs [ p1; P.Data_value (9, "0"); p2; p3 ] true; obs [] false ]
        in
        let best = S.best_per_kind (S.rank observations) in
        let kinds =
          List.map (fun r -> P.kind_name r.S.predictor) best
          |> List.sort compare
        in
        Alcotest.(check (list string)) "kinds" [ "branch"; "race"; "value" ]
          kinds);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"precision/recall/F stay in [0,1]" ~count:200
         QCheck.(
           list_of_size (Gen.int_range 1 20)
             (pair (list_of_size (Gen.int_range 0 4) (int_bound 5)) bool))
         (fun raw ->
           let observations =
             List.map
               (fun (ids, failing) ->
                 obs (List.map (fun k -> P.Branch_taken (k, true)) ids) failing)
               raw
           in
           S.rank observations
           |> List.for_all (fun r ->
               r.S.precision >= 0.0 && r.S.precision <= 1.0
               && r.S.recall >= 0.0 && r.S.recall <= 1.0
               && r.S.f_measure >= 0.0 && r.S.f_measure <= 1.0)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"ranking is sorted by F-measure" ~count:200
         QCheck.(
           list_of_size (Gen.int_range 1 20)
             (pair (list_of_size (Gen.int_range 0 4) (int_bound 5)) bool))
         (fun raw ->
           let observations =
             List.map
               (fun (ids, failing) ->
                 obs (List.map (fun k -> P.Branch_taken (k, true)) ids) failing)
               raw
           in
           let ranked = S.rank observations in
           let rec sorted = function
             | a :: (b :: _ as tl) -> a.S.f_measure >= b.S.f_measure && sorted tl
             | _ -> true
           in
           sorted ranked));
  ]

(* Streaming sufficient statistics: Acc folded in any order and merged
   from any partition must rank bit-identically to the retained list. *)

let obs_gen =
  QCheck.(
    list_of_size (Gen.int_range 0 30)
      (pair (list_of_size (Gen.int_range 0 5) (int_bound 6)) bool))

let obs_of_raw raw =
  List.map
    (fun (ids, failing) ->
      obs
        (List.map
           (fun k ->
             if k mod 2 = 0 then P.Branch_taken (k, true)
             else P.Data_value (k, "v"))
           ids)
        failing)
    raw

let streaming =
  [
    Alcotest.test_case "Acc over no observations ranks empty" `Quick
      (fun () ->
        let acc = S.Acc.create () in
        Alcotest.(check int) "observations" 0 (S.Acc.observations acc);
        Alcotest.(check int) "ranked" 0 (List.length (S.Acc.rank acc)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"Acc.rank is bit-identical to rank over the same runs"
         ~count:300 obs_gen
         (fun raw ->
           let observations = obs_of_raw raw in
           let acc = S.Acc.create () in
           List.iter (S.Acc.add acc) observations;
           S.Acc.observations acc = List.length observations
           && S.Acc.rank acc = S.rank observations));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"merging per-worker Accs at any split is order-independent"
         ~count:300
         QCheck.(pair obs_gen (int_bound 30))
         (fun (raw, cut) ->
           let observations = obs_of_raw raw in
           let n = List.length observations in
           let k = if n = 0 then 0 else cut mod (n + 1) in
           let left = List.filteri (fun i _ -> i < k) observations in
           let right = List.filteri (fun i _ -> i >= k) observations in
           let acc_of l =
             let a = S.Acc.create () in
             List.iter (S.Acc.add a) l;
             a
           in
           let fwd = acc_of left in
           S.Acc.merge ~into:fwd (acc_of right);
           let bwd = acc_of right in
           S.Acc.merge ~into:bwd (acc_of left);
           S.Acc.rank fwd = S.rank observations
           && S.Acc.rank bwd = S.rank observations));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"merge leaves the source accumulator intact"
         ~count:100 obs_gen
         (fun raw ->
           let observations = obs_of_raw raw in
           let src = S.Acc.create () in
           List.iter (S.Acc.add src) observations;
           let before = S.Acc.rank src in
           let into = S.Acc.create () in
           S.Acc.merge ~into src;
           S.Acc.rank src = before));
  ]

(* Confidence bounds and the sequential stopping rule (PR 7). *)

let bounds =
  [
    Alcotest.test_case "z at delta 0.05 is the familiar 1.96" `Quick
      (fun () ->
        Alcotest.(check (float 0.001)) "z" 1.95996 (S.z_of_delta 0.05));
    Alcotest.test_case "wilson interval is vacuous with no trials" `Quick
      (fun () ->
        Alcotest.(check (pair (float 0.0) (float 0.0))) "(0,1)" (0.0, 1.0)
          (S.wilson_interval ~successes:0 ~trials:0 ()));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"wilson interval contains the observed rate, inside [0,1]"
         ~count:500
         QCheck.(pair (int_bound 50) (int_range 1 50))
         (fun (s, n) ->
           let s = min s n in
           let lo, hi = S.wilson_interval ~successes:s ~trials:n () in
           let p = float_of_int s /. float_of_int n in
           (* 1e-12 slack: at the boundary rates 0 and 1 the interval
              endpoint equals the rate only up to rounding. *)
           0.0 <= lo && lo <= p +. 1e-12 && p <= hi +. 1e-12 && hi <= 1.0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "more confirming reports never widen the interval (wilson and F)"
         ~count:500
         QCheck.(quad (int_bound 20) (int_bound 20) (int_range 1 20)
                   (int_range 2 6))
         (fun (f, s, extra_failing, k) ->
           (* Scale every count by k >= 2: the observed rates are
              unchanged, the evidence k-fold -- both bounds must
              tighten (or stay), never widen.  This is the property
              the early-exit checkpoints rely on: a separation
              verdict cannot be an artifact of having seen *more*
              data. *)
           let total = f + extra_failing in
           let w_lo, w_hi = S.wilson_interval ~successes:f ~trials:(f + s) () in
           let w_lo', w_hi' =
             S.wilson_interval ~successes:(k * f) ~trials:(k * (f + s)) ()
           in
           let f_lo, f_hi =
             S.f_interval ~n_failing_with:f ~n_success_with:s
               ~total_failing:total ()
           in
           let f_lo', f_hi' =
             S.f_interval ~n_failing_with:(k * f) ~n_success_with:(k * s)
               ~total_failing:(k * total) ()
           in
           (f + s = 0 || (w_lo' >= w_lo -. 1e-12 && w_hi' <= w_hi +. 1e-12))
           && f_lo' >= f_lo -. 1e-12
           && f_hi' <= f_hi +. 1e-12));
  ]

let sep_acc observations =
  let a = S.Acc.create () in
  List.iter (S.Acc.add a) observations;
  a

let repeat n x = List.init n (fun _ -> x)

let separation =
  [
    Alcotest.test_case "a dominant predictor separates" `Quick (fun () ->
        let acc =
          sep_acc (repeat 6 (obs [ p1 ] true) @ repeat 6 (obs [ p2 ] false))
        in
        Alcotest.(check bool) "separated" true
          (S.Acc.separated acc = Some p1));
    Alcotest.test_case "co-occurring tie-class does not block" `Quick
      (fun () ->
        (* p1 and p2 held in exactly the same runs: the same evidence
           class, ordered by the deterministic tie-break. *)
        let acc =
          sep_acc (repeat 6 (obs [ p1; p2 ] true) @ repeat 6 (obs [] false))
        in
        Alcotest.(check bool) "separated" true (S.Acc.separated acc <> None));
    Alcotest.test_case "coincidental tie (different runs) blocks" `Quick
      (fun () ->
        (* Equal counts over different runs: more evidence can still
           part them, so no early verdict. *)
        let acc =
          sep_acc (repeat 3 (obs [ p1 ] true) @ repeat 3 (obs [ p2 ] true))
        in
        Alcotest.(check bool) "not separated" true
          (S.Acc.separated acc = None));
    Alcotest.test_case "a leader with no failing evidence never separates"
      `Quick (fun () ->
        let acc =
          sep_acc (repeat 8 (obs [ p1 ] false) @ repeat 2 (obs [] true))
        in
        Alcotest.(check bool) "not separated" true
          (S.Acc.separated acc = None));
    Alcotest.test_case "below the failing-run floor nothing separates"
      `Quick (fun () ->
        let acc = sep_acc [ obs [ p1 ] true ] in
        Alcotest.(check bool) "not separated" true
          (S.Acc.separated acc = None));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"separation verdict survives any chunk split of the stream"
         ~count:300
         QCheck.(pair obs_gen (int_bound 30))
         (fun (raw, cut) ->
           (* The checkpoint decision must be a pure function of the
              accumulated counts: folding the stream whole, or in two
              chunks merged in either order, yields the same verdict. *)
           let observations = obs_of_raw raw in
           let n = List.length observations in
           let k = if n = 0 then 0 else cut mod (n + 1) in
           let left = List.filteri (fun i _ -> i < k) observations in
           let right = List.filteri (fun i _ -> i >= k) observations in
           let whole = sep_acc observations in
           let fwd = sep_acc left in
           S.Acc.merge ~into:fwd (sep_acc right);
           let bwd = sep_acc right in
           S.Acc.merge ~into:bwd (sep_acc left);
           let v = S.Acc.separated whole in
           S.Acc.separated fwd = v && S.Acc.separated bwd = v));
  ]

let () =
  Alcotest.run "predict"
    [
      ("patterns", patterns);
      ("f-measure", fmeasure);
      ("ranking", ranking);
      ("streaming", streaming);
      ("bounds", bounds);
      ("separation", separation);
    ]
