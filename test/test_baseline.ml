(* Record/replay baseline tests: replay must reproduce the recorded
   outcome exactly (that is what makes it a record/replay system), and
   the cost relationships of Fig. 13 must hold. *)

module I = Exec.Interp

let replay_case name program workload =
  Alcotest.test_case name `Quick (fun () ->
      let rec_ = Baseline.Rr.record program workload in
      let outcome, same = Baseline.Rr.replay program rec_ in
      Alcotest.(check bool) "replay reproduces the outcome" true same;
      (match (outcome, rec_.rec_outcome) with
       | I.Failed a, I.Failed b ->
         Alcotest.(check int) "same pc" b.pc a.pc
       | I.Success, I.Success -> ()
       | _ -> Alcotest.fail "outcome class mismatch"))

let w ?(args = []) seed = I.workload ~args seed

let replay =
  [
    replay_case "successful multithreaded run replays"
      (Tsupport.Programs.counter ~locked:true)
      (w ~args:[ Exec.Value.VInt 4 ] 3);
    replay_case "racy run replays (unlocked counter)"
      (Tsupport.Programs.counter ~locked:false)
      (w ~args:[ Exec.Value.VInt 4 ] 17);
    replay_case "crashing run replays to the same failure"
      Tsupport.Programs.uaf (w 1);
    Alcotest.test_case "pbzip2 failing run replays to the same signature"
      `Quick (fun () ->
        let bug = Bugbase.Pbzip2.bug in
        match Bugbase.Common.find_target_failure bug with
        | None -> Alcotest.fail "no failing run found"
        | Some (c, _) ->
          let rec_ =
            Baseline.Rr.record ~preempt_prob:bug.preempt_prob bug.program
              (bug.workload_of c)
          in
          (* Replay must land on the identical failure even though the
             run is racy. *)
          let _, same = Baseline.Rr.replay bug.program rec_ in
          Alcotest.(check bool) "same" true same);
    Alcotest.test_case "recording captures one event per scheduling step"
      `Quick (fun () ->
        let rec_ =
          Baseline.Rr.record (Tsupport.Programs.counter ~locked:true)
            (w ~args:[ Exec.Value.VInt 2 ] 5)
        in
        Alcotest.(check int) "schedule length = steps" rec_.rec_steps
          (Array.length rec_.rec_schedule));
    Alcotest.test_case "recording captures shared-read values" `Quick
      (fun () ->
        let rec_ =
          Baseline.Rr.record (Tsupport.Programs.counter ~locked:true)
            (w ~args:[ Exec.Value.VInt 2 ] 5)
        in
        Alcotest.(check bool) "reads recorded" true
          (List.length rec_.rec_read_values > 0));
  ]

let overheads =
  [
    Alcotest.test_case "rr costs more than full hardware PT" `Quick (fun () ->
        let bug = Bugbase.Transmission.bug in
        let wl = bug.workload_of 0 in
        let rec_ =
          Baseline.Rr.record ~preempt_prob:bug.preempt_prob bug.program wl
        in
        let _, pt_pct =
          Baseline.Softpt.full_pt ~preempt_prob:bug.preempt_prob bug.program wl
        in
        Alcotest.(check bool) "rr > pt" true
          (Baseline.Rr.overhead_percent rec_ > pt_pct));
    Alcotest.test_case "software tracing costs more than hardware PT" `Quick
      (fun () ->
        let bug = Bugbase.Curl.bug in
        let wl = bug.workload_of 0 in
        let _, sw_pct =
          Baseline.Softpt.full_trace ~preempt_prob:bug.preempt_prob bug.program
            wl
        in
        let _, pt_pct =
          Baseline.Softpt.full_pt ~preempt_prob:bug.preempt_prob bug.program wl
        in
        Alcotest.(check bool) "sw > pt" true (sw_pct > pt_pct);
        Alcotest.(check bool) "sw is multiples of base" true (sw_pct > 300.0));
  ]

let () =
  Alcotest.run "baseline" [ ("replay", replay); ("overheads", overheads) ]
