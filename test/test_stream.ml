(* Streaming-vs-retained ingestion differential suite.

   The streaming server folds each accepted report into per-predictor
   sufficient statistics the moment validation accepts it and then
   drops the report; the retained mode keeps every accepted report and
   replays the original batch refinement loop (the reference oracle,
   kept the way [Exec.Refinterp] is).  The two must produce
   bit-identical diagnoses — sketch, iteration trace, fleet ledger,
   simulated online time, every float — over the whole Bugbase and
   over generated fuzz bugs, with and without the injected-fault
   regime.  The only excluded fields are the two time measurements
   ([offline_time_s], and [online_time_s], which folds real server
   CPU time into the simulated delay): they measure the host, not the
   pipeline. *)

module S = Gist.Server

let compare_diagnoses name (a : S.diagnosis) (b : S.diagnosis) =
  Alcotest.(check string)
    (name ^ ": sketch")
    (Fsketch.Render.render a.sketch)
    (Fsketch.Render.render b.sketch);
  Alcotest.(check int) (name ^ ": iterations") a.iterations b.iterations;
  Alcotest.(check int) (name ^ ": recurrences") a.recurrences b.recurrences;
  Alcotest.(check int) (name ^ ": total runs") a.total_runs b.total_runs;
  Alcotest.(check int) (name ^ ": final sigma") a.final_sigma b.final_sigma;
  Alcotest.(check (list int)) (name ^ ": tracked") a.tracked b.tracked;
  Alcotest.(check bool)
    (name ^ ": avg overhead bit-identical")
    true
    (Int64.bits_of_float a.avg_overhead_pct
    = Int64.bits_of_float b.avg_overhead_pct);
  Alcotest.(check bool) (name ^ ": per-iteration trace") true (a.trace = b.trace);
  Alcotest.(check bool) (name ^ ": fleet ledger") true (a.fleet = b.fleet)

(* ------------------------------------------------------------------ *)
(* The whole Bugbase, reliable fleet and the PR4 fault regime. *)

let diagnose_bug ~ingest ~faults (b : Bugbase.Common.t) =
  let _, failure = Option.get (Bugbase.Common.find_target_failure b) in
  let config =
    let base = { Gist.Config.default with preempt_prob = b.preempt_prob } in
    if faults then
      {
        base with
        Gist.Config.fault_rates = Faults.Fault.spread 0.10;
        fault_seed = 42;
      }
    else base
  in
  S.diagnose ~config ~ingest
    ~oracle:(Experiments.Oracle.for_bug b)
    ~bug_name:b.name ~failure_type:b.failure_type ~program:b.program
    ~workload_of:b.workload_of ~failure ()

let bugbase_case ~faults (b : Bugbase.Common.t) =
  Alcotest.test_case b.name `Quick (fun () ->
      compare_diagnoses b.name
        (diagnose_bug ~ingest:S.Streaming ~faults b)
        (diagnose_bug ~ingest:S.Retained ~faults b))

(* ------------------------------------------------------------------ *)
(* Generated bugs: 50 fuzz cases (campaign seed 42), every viable one
   diagnosed under both modes, reliable and faulty fleets. *)

let fuzz_count = 50

let fuzz_cases =
  lazy
    (let patterns = Array.of_list Fuzz.Gen.all_patterns in
     List.init fuzz_count (fun i ->
         Fuzz.Gen.generate patterns.(i mod Array.length patterns) (42 + i)))

let fuzz_differential ~faults () =
  let diagnosed = ref 0 in
  List.iter
    (fun (case : Fuzz.Gen.case) ->
      let case =
        if faults then
          { case with Fuzz.Gen.c_faults = Some (Faults.Fault.spread 0.10, 42) }
        else case
      in
      match Fuzz.Check.probe case with
      | { Fuzz.Check.p_target = Some failure; _ } as p
        when Fuzz.Check.viable p ->
        let run ingest =
          S.diagnose
            ~config:(Fuzz.Check.config_of case)
            ~ingest ~bug_name:case.Fuzz.Gen.c_name
            ~failure_type:(Exec.Failure.kind_to_string failure.Exec.Failure.kind)
            ~program:case.Fuzz.Gen.c_program
            ~workload_of:(Fuzz.Gen.workload_of case)
            ~failure ()
        in
        incr diagnosed;
        compare_diagnoses case.Fuzz.Gen.c_name (run S.Streaming)
          (run S.Retained)
      | _ -> ())
    (Lazy.force fuzz_cases);
  (* The sweep must not silently degenerate into a no-op: most
     generated cases are viable by construction. *)
  Alcotest.(check bool)
    (Printf.sprintf "enough viable cases (%d of %d)" !diagnosed fuzz_count)
    true
    (!diagnosed >= fuzz_count / 2)

let () =
  let bugs = Bugbase.Registry.all in
  Alcotest.run "stream"
    [
      ("bugbase", List.map (bugbase_case ~faults:false) bugs);
      ("bugbase-faults", List.map (bugbase_case ~faults:true) bugs);
      ( "fuzz",
        [ Alcotest.test_case "50 generated bugs" `Slow
            (fuzz_differential ~faults:false) ] );
      ( "fuzz-faults",
        [ Alcotest.test_case "50 generated bugs at 10% aggregate faults"
            `Slow
            (fuzz_differential ~faults:true) ] );
    ]
