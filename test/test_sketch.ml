(* Failure-sketch construction, cross-thread ordering via watchpoint
   anchors, rendering, and the accuracy metrics (Kendall tau). *)

module Sk = Fsketch.Sketch
module Acc = Fsketch.Accuracy
module W = Hw.Watchpoint

let program = Tsupport.Programs.diamond

let dummy_failure pc =
  Exec.Failure.
    { kind = Segfault; pc; tid = 1; stack = [ "main" ]; message = "" }

let trap seq tid iid =
  W.
    {
      w_seq = seq;
      w_tid = tid;
      w_iid = iid;
      w_addr = 5;
      w_rw = Exec.Interp.Read;
      w_value = Exec.Value.VInt 0;
    }

let build ?(traps = []) ?(ranked = []) per_thread =
  Sk.build ~bug_name:"test" ~failure_type:"test bug" ~program
    ~failure:(dummy_failure 5) ~per_thread ~traps ~ranked

let construction =
  [
    Alcotest.test_case "single thread keeps program order" `Quick (fun () ->
        let s = build [ (1, [ 1; 2; 3; 5 ]) ] in
        Alcotest.(check (list int)) "order" [ 1; 2; 3; 5 ]
          (Sk.statement_order s));
    Alcotest.test_case "watchpoint anchors order across threads" `Quick
      (fun () ->
        (* thread 2's statement trapped before thread 1's *)
        let traps = [ trap 1 2 4; trap 2 1 3 ] in
        let s = build ~traps [ (1, [ 3 ]); (2, [ 4 ]) ] in
        Alcotest.(check (list int)) "t2 first" [ 4; 3 ] (Sk.statement_order s));
    Alcotest.test_case "last occurrence wins for repeated statements" `Quick
      (fun () ->
        (* statement 3 runs twice in t1; its second occurrence is after
           t2's statement 4 *)
        let traps = [ trap 1 1 3; trap 2 2 4; trap 3 1 3 ] in
        let s = build ~traps [ (1, [ 3; 3 ]); (2, [ 4 ]) ] in
        Alcotest.(check (list int)) "4 before final 3" [ 4; 3 ]
          (Sk.statement_order s));
    Alcotest.test_case "iids deduplicate across threads" `Quick (fun () ->
        let s = build [ (1, [ 1; 2 ]); (2, [ 2; 3 ]) ] in
        Alcotest.(check (list int)) "set" [ 1; 2; 3 ] (Sk.iids s));
    Alcotest.test_case "steps are numbered from one" `Quick (fun () ->
        let s = build [ (1, [ 1; 2; 3 ]) ] in
        Alcotest.(check (list int)) "steps" [ 1; 2; 3 ]
          (List.map (fun (st : Sk.step) -> st.step_no) s.steps));
  ]

let rendering =
  [
    Alcotest.test_case "render shows header, failure and threads" `Quick
      (fun () ->
        let s = build [ (1, [ 1; 2 ]); (2, [ 3 ]) ] in
        let out = Fsketch.Render.render s in
        List.iter
          (fun needle ->
            if not (Astring.String.is_infix ~affix:needle out) then
              Alcotest.failf "missing %S in render" needle)
          [ "Failure Sketch for test"; "Type: test bug"; "Thread T1";
            "Thread T2"; "Failure: segfault" ]);
    Alcotest.test_case "top predictors section appears when present" `Quick
      (fun () ->
        let ranked =
          Predict.Stats.rank
            [
              { predictors = [ Predict.Predictor.Data_value (2, "0") ];
                failing = true };
              { predictors = []; failing = false };
            ]
        in
        let s = build ~ranked [ (1, [ 1; 2 ]) ] in
        let out = Fsketch.Render.render s in
        Alcotest.(check bool) "predictor section" true
          (Astring.String.is_infix ~affix:"Top failure predictors" out));
    Alcotest.test_case "value note rendered next to the statement" `Quick
      (fun () ->
        let ranked =
          Predict.Stats.rank
            [
              { predictors = [ Predict.Predictor.Data_value (2, "null") ];
                failing = true };
            ]
        in
        let s = build ~ranked [ (1, [ 1; 2 ]) ] in
        Alcotest.(check bool) "note" true
          (Astring.String.is_infix ~affix:"{null}" (Fsketch.Render.render s)));
  ]

(* Degenerate and oversized inputs: the renderer and exporter must
   stay total whatever the pipeline hands them. *)
let adversarial =
  let balanced json =
    let depth = ref 0 and ok = ref true and in_str = ref false in
    String.iteri
      (fun k c ->
        if !in_str then begin
          if c = '"' && json.[k - 1] <> '\\' then in_str := false
        end
        else
          match c with
          | '"' -> in_str := true
          | '{' | '[' -> incr depth
          | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
          | _ -> ())
      json;
    !ok && !depth = 0
  in
  [
    Alcotest.test_case "empty slice still renders and exports" `Quick
      (fun () ->
        let s = build [] in
        let out = Fsketch.Render.render s in
        Alcotest.(check bool) "header" true
          (Astring.String.is_infix ~affix:"Failure Sketch for test" out);
        Alcotest.(check bool) "failure line" true
          (Astring.String.is_infix ~affix:"Failure: segfault" out);
        Alcotest.(check (list int)) "no steps" [] (Sk.statement_order s);
        let json = Fsketch.Export.to_json s in
        Alcotest.(check bool) "balanced json" true (balanced json);
        Alcotest.(check bool) "empty steps array" true
          (Astring.String.is_infix ~affix:{|"steps":[]|} json));
    Alcotest.test_case "thread with an empty slice renders" `Quick
      (fun () ->
        let s = build [ (1, []); (2, [ 3 ]) ] in
        let out = Fsketch.Render.render s in
        Alcotest.(check bool) "t1 column" true
          (Astring.String.is_infix ~affix:"Thread T1" out);
        Alcotest.(check (list int)) "only t2's step" [ 3 ]
          (Sk.statement_order s);
        Alcotest.(check bool) "balanced" true
          (balanced (Fsketch.Export.to_json s)));
    Alcotest.test_case "single thread needs no traps to order" `Quick
      (fun () ->
        let s = build [ (1, [ 1; 2; 3; 4; 5 ]) ] in
        Alcotest.(check (list int)) "program order" [ 1; 2; 3; 4; 5 ]
          (Sk.statement_order s);
        Alcotest.(check bool) "balanced" true
          (balanced (Fsketch.Export.to_json s)));
    Alcotest.test_case "more trap sites than debug registers" `Quick
      (fun () ->
        (* Six watchpoint candidates across three threads — more than
           the four DR slots; the builder must keep the full trap
           order, the hardware cap is the monitor's problem. *)
        let traps =
          [
            trap 1 3 5; trap 2 1 1; trap 3 2 3; trap 4 1 2; trap 5 3 6;
            trap 6 2 4;
          ]
        in
        let s =
          build ~traps [ (1, [ 1; 2 ]); (2, [ 3; 4 ]); (3, [ 5; 6 ]) ]
        in
        Alcotest.(check (list int)) "trap-sequenced order"
          [ 5; 1; 3; 2; 6; 4 ] (Sk.statement_order s);
        let out = Fsketch.Render.render s in
        List.iter
          (fun needle ->
            if not (Astring.String.is_infix ~affix:needle out) then
              Alcotest.failf "missing %S" needle)
          [ "Thread T1"; "Thread T2"; "Thread T3" ];
        Alcotest.(check bool) "balanced" true
          (balanced (Fsketch.Export.to_json s)));
    Alcotest.test_case "trap for a statement outside the slice" `Quick
      (fun () ->
        (* watchpoints can fire on statements AsT later dropped *)
        let traps = [ trap 1 2 6; trap 2 1 3 ] in
        let s = build ~traps [ (1, [ 3 ]); (2, [ 4 ]) ] in
        Alcotest.(check bool) "renders" true
          (String.length (Fsketch.Render.render s) > 0);
        Alcotest.(check bool) "balanced" true
          (balanced (Fsketch.Export.to_json s)));
    Alcotest.test_case "predictor on a statement outside the steps" `Quick
      (fun () ->
        let ranked =
          Predict.Stats.rank
            [
              { predictors = [ Predict.Predictor.Data_value (6, "9") ];
                failing = true };
            ]
        in
        let s = build ~ranked [ (1, [ 1; 2 ]) ] in
        let out = Fsketch.Render.render s in
        Alcotest.(check bool) "predictor listed" true
          (Astring.String.is_infix ~affix:"Top failure predictors" out);
        Alcotest.(check bool) "balanced" true
          (balanced (Fsketch.Export.to_json s)));
  ]

let kendall =
  [
    Alcotest.test_case "identical orders: tau = 0" `Quick (fun () ->
        let t, p = Acc.kendall_tau [ 1; 2; 3 ] [ 1; 2; 3 ] in
        Alcotest.(check int) "tau" 0 t;
        Alcotest.(check int) "pairs" 3 p);
    Alcotest.test_case "reversed orders: all pairs discordant" `Quick
      (fun () ->
        let t, p = Acc.kendall_tau [ 1; 2; 3; 4 ] [ 4; 3; 2; 1 ] in
        Alcotest.(check int) "tau" 6 t;
        Alcotest.(check int) "pairs" 6 p);
    Alcotest.test_case "single swap: one discordant pair" `Quick (fun () ->
        let t, _ = Acc.kendall_tau [ 1; 2; 3 ] [ 1; 3; 2 ] in
        Alcotest.(check int) "tau" 1 t);
    Alcotest.test_case "restricted to common elements" `Quick (fun () ->
        let t, p = Acc.kendall_tau [ 1; 2; 9 ] [ 2; 1; 7 ] in
        Alcotest.(check int) "one pair" 1 p;
        Alcotest.(check int) "discordant" 1 t);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"tau(l,l) = 0" ~count:200
         QCheck.(list_of_size (Gen.int_range 0 20) small_nat)
         (fun l ->
           let l = List.sort_uniq compare l in
           fst (Acc.kendall_tau l l) = 0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"tau(l, rev l) = n(n-1)/2" ~count:200
         QCheck.(list_of_size (Gen.int_range 0 20) small_nat)
         (fun l ->
           let l = List.sort_uniq compare l in
           let n = List.length l in
           fst (Acc.kendall_tau l (List.rev l)) = n * (n - 1) / 2));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"tau is symmetric" ~count:200
         QCheck.(
           pair
             (list_of_size (Gen.int_range 0 15) small_nat)
             (list_of_size (Gen.int_range 0 15) small_nat))
         (fun (a, b) ->
           let a = List.sort_uniq compare a and b = List.sort_uniq compare b in
           fst (Acc.kendall_tau a b) = fst (Acc.kendall_tau b a)));
  ]

let accuracy =
  [
    Alcotest.test_case "perfect sketch scores 100/100" `Quick (fun () ->
        let r =
          Acc.compute ~gist_order:[ 1; 2; 3 ] ~ideal:{ i_iids = [ 1; 2; 3 ] }
        in
        Alcotest.(check (float 0.01)) "AR" 100.0 r.relevance;
        Alcotest.(check (float 0.01)) "AO" 100.0 r.ordering;
        Alcotest.(check (float 0.01)) "A" 100.0 r.overall);
    Alcotest.test_case "excess statements lower relevance only" `Quick
      (fun () ->
        let r =
          Acc.compute ~gist_order:[ 9; 1; 2; 3 ] ~ideal:{ i_iids = [ 1; 2; 3 ] }
        in
        Alcotest.(check (float 0.01)) "AR" 75.0 r.relevance;
        Alcotest.(check (float 0.01)) "AO" 100.0 r.ordering);
    Alcotest.test_case "wrong order lowers ordering only" `Quick (fun () ->
        let r =
          Acc.compute ~gist_order:[ 3; 2; 1 ] ~ideal:{ i_iids = [ 1; 2; 3 ] }
        in
        Alcotest.(check (float 0.01)) "AR" 100.0 r.relevance;
        Alcotest.(check (float 0.01)) "AO" 0.0 r.ordering);
    Alcotest.test_case "empty intersection still yields full ordering" `Quick
      (fun () ->
        (* no common pairs: ordering conventionally 100 (paper: at least
           the failing instruction is always shared) *)
        let r = Acc.compute ~gist_order:[ 1 ] ~ideal:{ i_iids = [ 1 ] } in
        Alcotest.(check (float 0.01)) "AO" 100.0 r.ordering);
    Alcotest.test_case "counts reported" `Quick (fun () ->
        let r =
          Acc.compute ~gist_order:[ 1; 2; 5 ] ~ideal:{ i_iids = [ 2; 3 ] }
        in
        Alcotest.(check int) "gist" 3 r.n_gist;
        Alcotest.(check int) "ideal" 2 r.n_ideal;
        Alcotest.(check int) "common" 1 r.n_common);
  ]

let export =
  [
    Alcotest.test_case "JSON escaping" `Quick (fun () ->
        Alcotest.(check string) "quotes" {|a\"b|}
          (Fsketch.Export.escape {|a"b|});
        Alcotest.(check string) "backslash" {|a\\b|}
          (Fsketch.Export.escape {|a\b|});
        Alcotest.(check string) "newline" {|a\nb|}
          (Fsketch.Export.escape "a\nb"));
    Alcotest.test_case "JSON export carries steps and predictors" `Quick
      (fun () ->
        let ranked =
          Predict.Stats.rank
            [
              { predictors = [ Predict.Predictor.Data_value (2, "0") ];
                failing = true };
            ]
        in
        let s = build ~ranked [ (1, [ 1; 2 ]) ] in
        let json = Fsketch.Export.to_json s in
        List.iter
          (fun needle ->
            if not (Astring.String.is_infix ~affix:needle json) then
              Alcotest.failf "missing %S" needle)
          [ {|"bug":"test"|}; {|"steps":[|}; {|"predictors":[|};
            {|"kind":"value"|}; {|"line":|} ]);
    Alcotest.test_case "JSON is balanced" `Quick (fun () ->
        let s = build [ (1, [ 1; 2; 3 ]) ] in
        let json = Fsketch.Export.to_json s in
        let depth = ref 0 and ok = ref true and in_str = ref false in
        String.iteri
          (fun k c ->
            if !in_str then begin
              if c = '"' && json.[k - 1] <> '\\' then in_str := false
            end
            else
              match c with
              | '"' -> in_str := true
              | '{' | '[' -> incr depth
              | '}' | ']' ->
                decr depth;
                if !depth < 0 then ok := false
              | _ -> ())
          json;
        Alcotest.(check bool) "balanced" true (!ok && !depth = 0));
  ]

let () =
  Alcotest.run "sketch"
    [
      ("construction", construction);
      ("rendering", rendering);
      ("adversarial", adversarial);
      ("kendall-tau", kendall);
      ("accuracy", accuracy);
      ("export", export);
    ]
