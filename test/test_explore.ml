(* Systematic schedule exploration and alias-analysis tests: bounded
   reachability proofs for the Bugbase races, bounded verification of
   correctly synchronised code, and the slice-size cost of alias-based
   matching (the paper's §3.1 argument). *)

open Tsupport.Programs
module I = Exec.Interp
module E = Exec.Explore

let explore_tests =
  [
    Alcotest.test_case "straight-line code has a single schedule" `Quick
      (fun () ->
        let x =
          E.explore ~max_preemptions:2 straight
            (I.workload ~args:[ Exec.Value.VInt 3 ] 0)
        in
        Alcotest.(check int) "one" 1 x.schedules_run;
        Alcotest.(check bool) "no failures" true (x.witnesses = []));
    Alcotest.test_case
      "unlocked counter: a lost update is reachable within 1 preemption"
      `Quick (fun () ->
        let p = counter ~locked:false in
        let x =
          E.explore ~max_preemptions:1 ~max_schedules:2_000 p
            (I.workload ~args:[ Exec.Value.VInt 2 ] 0)
        in
        (* no crash kind exists here; instead check schedule diversity *)
        Alcotest.(check bool) "explored several schedules" true
          (x.schedules_run > 5));
    Alcotest.test_case
      "apache-3 double free is reachable within 2 preemptions" `Quick
      (fun () ->
        let bug = Bugbase.Apache3.bug in
        match
          E.find ~max_preemptions:2 ~max_schedules:4_000
            ~pred:(Bugbase.Common.is_target_failure bug) bug.program
            (bug.workload_of 0)
        with
        | None -> Alcotest.fail "double free not reachable within bound"
        | Some (rep, witness) ->
          Alcotest.(check string) "kind" "double-free"
            (Exec.Failure.kind_tag rep.kind);
          (* the witness replays deterministically to the same failure *)
          let res = E.replay bug.program (bug.workload_of 0) witness in
          (match res.I.outcome with
           | I.Failed rep2 ->
             Alcotest.(check bool) "same signature" true
               (Exec.Failure.same_failure rep rep2)
           | I.Success -> Alcotest.fail "witness did not replay"));
    Alcotest.test_case
      "sqlite close-during-query is reachable within 1 preemption" `Quick
      (fun () ->
        let bug = Bugbase.Sqlite.bug in
        match
          E.find ~max_preemptions:1 ~max_schedules:4_000
            ~pred:(Bugbase.Common.is_target_failure bug) bug.program
            (bug.workload_of 0)
        with
        | None -> Alcotest.fail "assert not reachable within bound"
        | Some (rep, _) ->
          Alcotest.(check int) "line" 35
            (Ir.Program.loc_of bug.program rep.pc).line);
    Alcotest.test_case
      "locked counter: no failing schedule within 2 preemptions" `Quick
      (fun () ->
        let p = counter ~locked:true in
        let x =
          E.explore ~max_preemptions:2 ~max_schedules:1_500 p
            (I.workload ~args:[ Exec.Value.VInt 1 ] 0)
        in
        Alcotest.(check bool) "no failure witness" true (x.witnesses = []));
    Alcotest.test_case "exploration is deterministic" `Quick (fun () ->
        let bug = Bugbase.Memcached.bug in
        let go () =
          E.find ~max_preemptions:1 ~max_schedules:2_000
            ~pred:(Bugbase.Common.is_target_failure bug) bug.program
            (bug.workload_of 0)
        in
        match (go (), go ()) with
        | Some (_, w1), Some (_, w2) ->
          Alcotest.(check bool) "same witness" true (w1 = w2)
        | None, None -> ()
        | _ -> Alcotest.fail "nondeterministic exploration");
    Alcotest.test_case "outcome counts sum to schedules run" `Quick (fun () ->
        let bug = Bugbase.Memcached.bug in
        let x =
          E.explore ~max_preemptions:1 ~max_schedules:300 bug.program
            (bug.workload_of 0)
        in
        let total = List.fold_left (fun a (_, n) -> a + n) 0 x.outcomes in
        Alcotest.(check int) "sum" x.schedules_run total);
  ]

(* ------------------------------------------------------------------ *)

module A = Slicing.Alias

let alias_prog =
  let module B = Ir.Builder in
  let i = B.file "alias.c" in
  let r = B.r and im = B.im in
  Ir.Program.make ~main:"main"
    [
      B.func "main" ~params:[]
        [
          B.block "entry"
            [
              i 1 "p = malloc" (Malloc ("p", 2));
              i 2 "q = p" (Assign ("q", Mov (r "p")));
              i 3 "s = malloc" (Malloc ("s", 2));
              i 4 "q[1] = 7" (Store (r "q", 1, im 7));
              i 5 "s[1] = 8" (Store (r "s", 1, im 8));
              i 6 "v = p[1]" (Load ("v", r "p", 1));
              i 7 "deref v" (Load ("w", r "v", 0));
              i 8 "" (Ret None);
            ];
        ];
    ]

let alias_tests =
  [
    Alcotest.test_case "copy aliases, distinct mallocs do not" `Quick
      (fun () ->
        let a = A.analyze alias_prog in
        Alcotest.(check bool) "p ~ q" true
          (A.may_alias a ~func1:"main" ~base1:"p" ~off1:1 ~func2:"main"
             ~base2:"q" ~off2:1);
        Alcotest.(check bool) "p !~ s" false
          (A.may_alias a ~func1:"main" ~base1:"p" ~off1:1 ~func2:"main"
             ~base2:"s" ~off2:1);
        Alcotest.(check bool) "offsets must match" false
          (A.may_alias a ~func1:"main" ~base1:"p" ~off1:0 ~func2:"main"
             ~base2:"q" ~off2:1));
    Alcotest.test_case "points-to flows through calls and spawns" `Quick
      (fun () ->
        let p = Bugbase.Pbzip2.program in
        let a = A.analyze p in
        (* cons's f parameter points to queue_init's malloc *)
        Alcotest.(check bool) "cons.f bound" true
          (A.pts_size a ~func:"cons" ~reg:"f" > 0);
        Alcotest.(check bool) "cross-function alias" true
          (A.may_alias a ~func1:"cons" ~base1:"f" ~off1:1 ~func2:"main"
             ~base2:"f" ~off2:1));
    Alcotest.test_case "alias-based slicing finds the cross-pointer store"
      `Quick (fun () ->
        let failing =
          Ir.Program.all_instrs alias_prog
          |> List.find (fun (x : Ir.Types.instr) -> x.loc.line = 7)
        in
        let report =
          Exec.Failure.
            { kind = Segfault; pc = failing.iid; tid = 0; stack = [];
              message = "" }
        in
        let lines s =
          Slicing.Slicer.iids s
          |> List.map (fun iid -> (Ir.Program.loc_of alias_prog iid).line)
          |> List.sort_uniq compare
        in
        let without = Slicing.Slicer.compute alias_prog report in
        let with_a =
          Slicing.Slicer.compute ~alias:(A.analyze alias_prog) alias_prog
            report
        in
        (* syntactic matching misses the store through q; alias matching
           finds it but not the store through the unrelated s *)
        Alcotest.(check bool) "missed syntactically" false
          (List.mem 4 (lines without));
        Alcotest.(check bool) "found via alias" true (List.mem 4 (lines with_a));
        Alcotest.(check bool) "unrelated store stays out" false
          (List.mem 5 (lines with_a)));
    Alcotest.test_case "alias slices only grow (paper's size argument)"
      `Quick (fun () ->
        List.iter
          (fun (bug : Bugbase.Common.t) ->
            match Bugbase.Common.find_target_failure bug with
            | None -> ()
            | Some (_, failure) ->
              let plain = Slicing.Slicer.compute bug.program failure in
              let aliased =
                Slicing.Slicer.compute ~alias:(A.analyze bug.program)
                  bug.program failure
              in
              if
                Slicing.Slicer.instr_count aliased
                < Slicing.Slicer.instr_count plain
              then Alcotest.failf "%s: alias slice shrank" bug.name)
          [ Bugbase.Pbzip2.bug; Bugbase.Curl.bug; Bugbase.Memcached.bug ]);
  ]

let () =
  Alcotest.run "explore-alias"
    [ ("explore", explore_tests); ("alias", alias_tests) ]
