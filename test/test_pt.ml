(* Intel PT simulator tests: the central property is the encode/decode
   round trip -- what the decoder reconstructs from the packet stream
   must equal what each thread actually executed while tracing was on. *)

open Tsupport.Programs
module I = Exec.Interp

(* Run [program] under full tracing and compare each thread's decoded
   sequence with the interpreter's ground truth. *)
let round_trip ?(args = []) ?(seed = 1) program =
  let counters = Exec.Cost.create () in
  let pt = Hw.Pt.create counters in
  let hooks = Instrument.Runtime.full_tracing_hooks ~pt in
  let res =
    Exec.Interp.run ~hooks ~counters ~record_gt:true program
      (I.workload ~args seed)
  in
  Hw.Pt.finish pt;
  (res, Hw.Pt.decode_all pt program)

let check_round_trip ?(args = []) ?(seed = 1) name program =
  Alcotest.test_case name `Quick (fun () ->
      let res, decoded = round_trip ~args ~seed program in
      (match res.I.outcome with
       | I.Failed rep ->
         Alcotest.failf "program failed: %s" (Exec.Failure.report_to_string rep)
       | I.Success -> ());
      let truth = per_thread_executed res in
      List.iter
        (fun (tid, expected) ->
          match List.assoc_opt tid decoded with
          | None -> Alcotest.failf "no stream for thread %d" tid
          | Some (d : Hw.Pt.decoded) ->
            Alcotest.(check (list int))
              (Printf.sprintf "thread %d" tid)
              expected d.d_iids)
        truth)

let round_trips =
  [
    check_round_trip "straight-line code" ~args:[ Exec.Value.VInt 5 ] straight;
    check_round_trip "diamond, taken arm" ~args:[ Exec.Value.VInt 5 ] diamond;
    check_round_trip "diamond, fallthrough arm" ~args:[ Exec.Value.VInt (-5) ]
      diamond;
    check_round_trip "loop" ~args:[ Exec.Value.VInt 13 ] loop_sum;
    check_round_trip "calls and returns" ~args:[ Exec.Value.VInt 4 ] call_chain;
    check_round_trip "recursion" ~args:[ Exec.Value.VInt 7 ] factorial;
    check_round_trip "multithreaded (locked counter)"
      ~args:[ Exec.Value.VInt 4 ] (counter ~locked:true);
  ]

let qcheck_round_trip =
  QCheck.Test.make ~name:"round trip over random seeds and workloads"
    ~count:60
    QCheck.(pair (int_bound 5000) (int_range 1 5))
    (fun (seed, n) ->
      let program = counter ~locked:true in
      let res, decoded = round_trip ~args:[ Exec.Value.VInt n ] ~seed program in
      res.I.outcome = I.Success
      && List.for_all
           (fun (tid, expected) ->
             match List.assoc_opt tid decoded with
             | None -> expected = []
             | Some (d : Hw.Pt.decoded) -> d.d_iids = expected)
           (per_thread_executed res))

let branch_outcomes =
  Alcotest.test_case "decoded branch outcomes match ground truth" `Quick
    (fun () ->
      let outcomes = ref [] in
      let counters = Exec.Cost.create () in
      let pt = Hw.Pt.create counters in
      let hooks = Instrument.Runtime.full_tracing_hooks ~pt in
      let base_branch = hooks.branch in
      hooks.branch <-
        (fun ~tid ~instr ~taken ->
          outcomes := (instr.Ir.Types.iid, taken) :: !outcomes;
          base_branch ~tid ~instr ~taken);
      let _ =
        Exec.Interp.run ~hooks ~counters loop_sum
          (I.workload ~args:[ Exec.Value.VInt 6 ] 3)
      in
      Hw.Pt.finish pt;
      let d = Hw.Pt.decode loop_sum (Hw.Pt.packets_of pt 0) in
      Alcotest.(check (list (pair int bool)))
        "outcomes" (List.rev !outcomes) d.d_branches)

let packets =
  [
    Alcotest.test_case "trace volume is accounted in bytes" `Quick (fun () ->
        let res, _ = round_trip ~args:[ Exec.Value.VInt 10 ] loop_sum in
        ignore res;
        ());
    Alcotest.test_case "TNT bits are grouped into at most 8-bit packets"
      `Quick (fun () ->
        let counters = Exec.Cost.create () in
        let pt = Hw.Pt.create counters in
        let hooks = Instrument.Runtime.full_tracing_hooks ~pt in
        let _ =
          Exec.Interp.run ~hooks ~counters loop_sum
            (I.workload ~args:[ Exec.Value.VInt 30 ] 3)
        in
        Hw.Pt.finish pt;
        List.iter
          (function
            | Hw.Pt.TNT bits ->
              if List.length bits > 8 then Alcotest.fail "oversized TNT"
            | _ -> ())
          (Hw.Pt.packets_of pt 0));
    Alcotest.test_case "disable/enable produce PGD/PGE pairs" `Quick (fun () ->
        let counters = Exec.Cost.create () in
        let pt = Hw.Pt.create counters in
        Hw.Pt.enable pt ~tid:0 ~pc:1;
        Hw.Pt.on_branch pt ~tid:0 ~taken:true;
        Hw.Pt.disable pt ~tid:0 ~pc:3;
        Hw.Pt.enable pt ~tid:0 ~pc:5;
        Hw.Pt.disable pt ~tid:0 ~pc:7;
        match Hw.Pt.packets_of pt 0 with
        | [ PGE 1; TNT [ true ]; PGD 3; PGE 5; PGD 7 ] -> ()
        | ps -> Alcotest.failf "unexpected packets (%d)" (List.length ps));
    Alcotest.test_case "enable is idempotent" `Quick (fun () ->
        let counters = Exec.Cost.create () in
        let pt = Hw.Pt.create counters in
        Hw.Pt.enable pt ~tid:0 ~pc:1;
        Hw.Pt.enable pt ~tid:0 ~pc:2;
        Hw.Pt.disable pt ~tid:0 ~pc:3;
        Alcotest.(check int) "packets" 2
          (List.length (Hw.Pt.packets_of pt 0)));
    Alcotest.test_case "per-thread streams are independent" `Quick (fun () ->
        let res, decoded =
          round_trip ~args:[ Exec.Value.VInt 3 ] (counter ~locked:true)
        in
        ignore res;
        Alcotest.(check bool) "three streams" true (List.length decoded >= 3));
    Alcotest.test_case "crash truncation: decode stops at the last pc" `Quick
      (fun () ->
        let counters = Exec.Cost.create () in
        let pt = Hw.Pt.create counters in
        let hooks = Instrument.Runtime.full_tracing_hooks ~pt in
        let res =
          Exec.Interp.run ~hooks ~counters uaf (I.workload 1)
        in
        Hw.Pt.finish pt;
        let d = Hw.Pt.decode uaf (Hw.Pt.packets_of pt 0) in
        (match res.I.outcome with
         | I.Failed rep ->
           (* everything up to (excluding) the crash pc is decodable *)
           Alcotest.(check bool) "prefix decoded" true
             (List.length d.d_iids >= 2);
           Alcotest.(check bool) "crash pc not beyond" true
             (List.for_all (fun i -> i <= rep.pc) d.d_iids)
         | I.Success -> Alcotest.fail "expected crash"));
  ]

let () =
  Alcotest.run "pt"
    [
      ("round-trip", round_trips);
      ("round-trip-qcheck", [ QCheck_alcotest.to_alcotest qcheck_round_trip ]);
      ("branch-outcomes", [ branch_outcomes ]);
      ("packets", packets);
    ]
