(* Intel PT simulator tests: the central property is the encode/decode
   round trip -- what the decoder reconstructs from the packet stream
   must equal what each thread actually executed while tracing was on. *)

open Tsupport.Programs
module I = Exec.Interp

(* Run [program] under full tracing and compare each thread's decoded
   sequence with the interpreter's ground truth. *)
let round_trip ?(args = []) ?(seed = 1) program =
  let counters = Exec.Cost.create () in
  let pt = Hw.Pt.create counters in
  let hooks = Instrument.Runtime.full_tracing_hooks ~pt in
  let res =
    Exec.Interp.run ~hooks ~counters ~record_gt:true program
      (I.workload ~args seed)
  in
  Hw.Pt.finish pt;
  (res, Hw.Pt.decode_all pt program)

let check_round_trip ?(args = []) ?(seed = 1) name program =
  Alcotest.test_case name `Quick (fun () ->
      let res, decoded = round_trip ~args ~seed program in
      (match res.I.outcome with
       | I.Failed rep ->
         Alcotest.failf "program failed: %s" (Exec.Failure.report_to_string rep)
       | I.Success -> ());
      let truth = per_thread_executed res in
      List.iter
        (fun (tid, expected) ->
          match List.assoc_opt tid decoded with
          | None -> Alcotest.failf "no stream for thread %d" tid
          | Some (d : Hw.Pt.decoded) ->
            Alcotest.(check (list int))
              (Printf.sprintf "thread %d" tid)
              expected d.d_iids)
        truth)

let round_trips =
  [
    check_round_trip "straight-line code" ~args:[ Exec.Value.VInt 5 ] straight;
    check_round_trip "diamond, taken arm" ~args:[ Exec.Value.VInt 5 ] diamond;
    check_round_trip "diamond, fallthrough arm" ~args:[ Exec.Value.VInt (-5) ]
      diamond;
    check_round_trip "loop" ~args:[ Exec.Value.VInt 13 ] loop_sum;
    check_round_trip "calls and returns" ~args:[ Exec.Value.VInt 4 ] call_chain;
    check_round_trip "recursion" ~args:[ Exec.Value.VInt 7 ] factorial;
    check_round_trip "multithreaded (locked counter)"
      ~args:[ Exec.Value.VInt 4 ] (counter ~locked:true);
  ]

let qcheck_round_trip =
  QCheck.Test.make ~name:"round trip over random seeds and workloads"
    ~count:60
    QCheck.(pair (int_bound 5000) (int_range 1 5))
    (fun (seed, n) ->
      let program = counter ~locked:true in
      let res, decoded = round_trip ~args:[ Exec.Value.VInt n ] ~seed program in
      res.I.outcome = I.Success
      && List.for_all
           (fun (tid, expected) ->
             match List.assoc_opt tid decoded with
             | None -> expected = []
             | Some (d : Hw.Pt.decoded) -> d.d_iids = expected)
           (per_thread_executed res))

let branch_outcomes =
  Alcotest.test_case "decoded branch outcomes match ground truth" `Quick
    (fun () ->
      let outcomes = ref [] in
      let counters = Exec.Cost.create () in
      let pt = Hw.Pt.create counters in
      let hooks = Instrument.Runtime.full_tracing_hooks ~pt in
      let base_branch = hooks.branch in
      hooks.branch <-
        (fun ~tid ~instr ~taken ->
          outcomes := (instr.Ir.Types.iid, taken) :: !outcomes;
          base_branch ~tid ~instr ~taken);
      let _ =
        Exec.Interp.run ~hooks ~counters loop_sum
          (I.workload ~args:[ Exec.Value.VInt 6 ] 3)
      in
      Hw.Pt.finish pt;
      let d = Hw.Pt.decode loop_sum (Hw.Pt.packets_of pt 0) in
      Alcotest.(check (list (pair int bool)))
        "outcomes" (List.rev !outcomes) d.d_branches)

let packets =
  [
    Alcotest.test_case "trace volume is accounted in bytes" `Quick (fun () ->
        let res, _ = round_trip ~args:[ Exec.Value.VInt 10 ] loop_sum in
        ignore res;
        ());
    Alcotest.test_case "TNT bits are grouped into at most 8-bit packets"
      `Quick (fun () ->
        let counters = Exec.Cost.create () in
        let pt = Hw.Pt.create counters in
        let hooks = Instrument.Runtime.full_tracing_hooks ~pt in
        let _ =
          Exec.Interp.run ~hooks ~counters loop_sum
            (I.workload ~args:[ Exec.Value.VInt 30 ] 3)
        in
        Hw.Pt.finish pt;
        List.iter
          (function
            | Hw.Pt.TNT bits ->
              if List.length bits > 8 then Alcotest.fail "oversized TNT"
            | _ -> ())
          (Hw.Pt.packets_of pt 0));
    Alcotest.test_case "disable/enable produce PGD/PGE pairs" `Quick (fun () ->
        let counters = Exec.Cost.create () in
        let pt = Hw.Pt.create counters in
        Hw.Pt.enable pt ~tid:0 ~pc:1;
        Hw.Pt.on_branch pt ~tid:0 ~taken:true;
        Hw.Pt.disable pt ~tid:0 ~pc:3;
        Hw.Pt.enable pt ~tid:0 ~pc:5;
        Hw.Pt.disable pt ~tid:0 ~pc:7;
        match Hw.Pt.packets_of pt 0 with
        | [ PGE 1; TNT [ true ]; PGD 3; PGE 5; PGD 7 ] -> ()
        | ps -> Alcotest.failf "unexpected packets (%d)" (List.length ps));
    Alcotest.test_case "enable is idempotent" `Quick (fun () ->
        let counters = Exec.Cost.create () in
        let pt = Hw.Pt.create counters in
        Hw.Pt.enable pt ~tid:0 ~pc:1;
        Hw.Pt.enable pt ~tid:0 ~pc:2;
        Hw.Pt.disable pt ~tid:0 ~pc:3;
        Alcotest.(check int) "packets" 2
          (List.length (Hw.Pt.packets_of pt 0)));
    Alcotest.test_case "per-thread streams are independent" `Quick (fun () ->
        let res, decoded =
          round_trip ~args:[ Exec.Value.VInt 3 ] (counter ~locked:true)
        in
        ignore res;
        Alcotest.(check bool) "three streams" true (List.length decoded >= 3));
    Alcotest.test_case "crash truncation: decode stops at the last pc" `Quick
      (fun () ->
        let counters = Exec.Cost.create () in
        let pt = Hw.Pt.create counters in
        let hooks = Instrument.Runtime.full_tracing_hooks ~pt in
        let res =
          Exec.Interp.run ~hooks ~counters uaf (I.workload 1)
        in
        Hw.Pt.finish pt;
        let d = Hw.Pt.decode uaf (Hw.Pt.packets_of pt 0) in
        (match res.I.outcome with
         | I.Failed rep ->
           (* everything up to (excluding) the crash pc is decodable *)
           Alcotest.(check bool) "prefix decoded" true
             (List.length d.d_iids >= 2);
           Alcotest.(check bool) "crash pc not beyond" true
             (List.for_all (fun i -> i <= rep.pc) d.d_iids)
         | I.Success -> Alcotest.fail "expected crash"));
  ]

(* Damaged streams: whatever a fault does to the ring, the checked
   decoder must return a typed error or a clean prefix — never an
   out-of-bounds access and never an exception. *)

let healthy_packets ?(args = [ Exec.Value.VInt 4 ]) ?(seed = 1) program =
  let counters = Exec.Cost.create () in
  let pt = Hw.Pt.create counters in
  let hooks = Instrument.Runtime.full_tracing_hooks ~pt in
  let _ = Exec.Interp.run ~hooks ~counters program (I.workload ~args seed) in
  Hw.Pt.finish pt;
  Hw.Pt.packets_of pt 0

(* iids are 1-based: the exclusive bound is max iid + 1. *)
let iid_bound program =
  1
  + List.fold_left
      (fun m (i : Ir.Types.instr) -> max m i.iid)
      0
      (Ir.Program.all_instrs program)

let in_bounds program (d : Hw.Pt.decoded) =
  let n = iid_bound program in
  List.for_all (fun i -> i >= 0 && i < n) d.d_iids
  && List.for_all (fun (i, _) -> i >= 0 && i < n) d.d_branches

let damaged =
  [
    Alcotest.test_case "truncated stream: typed error or clean prefix" `Quick
      (fun () ->
        let program = loop_sum in
        let pkts = healthy_packets program in
        let full = Hw.Pt.decode program pkts in
        for salt = 0 to 40 do
          let cut = Faults.Tamper.truncate_packets ~salt pkts in
          let d, err = Hw.Pt.decode_checked program cut in
          Alcotest.(check bool) "bounds" true (in_bounds program d);
          Alcotest.(check bool) "prefix of the full decode" true
            (List.length d.d_iids <= List.length full.d_iids
            && List.for_all2
                 (fun a b -> a = b)
                 d.d_iids
                 (List.filteri
                    (fun i _ -> i < List.length d.d_iids)
                    full.d_iids));
          (* a cut that does not land on a packet boundary of meaning
             is flagged; a clean-prefix cut may decode silently *)
          match err with
          | Some e -> ignore (Hw.Pt.error_to_string e)
          | None -> ()
        done);
    Alcotest.test_case "mid-stream truncation is flagged as Truncated" `Quick
      (fun () ->
        let program = loop_sum in
        let pkts = healthy_packets program in
        (* drop just the terminator: decodes but cannot be complete *)
        let n = List.length pkts in
        let cut = List.filteri (fun i _ -> i < n - 1) pkts in
        match Hw.Pt.decode_checked program cut with
        | _, Some Hw.Pt.Truncated -> ()
        | _, Some e ->
          Alcotest.failf "expected Truncated, got %s" (Hw.Pt.error_to_string e)
        | _, None -> Alcotest.fail "truncation went unnoticed");
    Alcotest.test_case "corrupted stream: never out of bounds, never raises"
      `Quick (fun () ->
        let program = loop_sum in
        let pkts = healthy_packets program in
        let n_instrs = iid_bound program in
        for salt = 0 to 60 do
          let bad = Faults.Tamper.corrupt_packets ~salt ~n_instrs pkts in
          let d, _err = Hw.Pt.decode_checked program bad in
          Alcotest.(check bool) "bounds" true (in_bounds program d)
        done);
    Alcotest.test_case "an out-of-range transfer target is typed" `Quick
      (fun () ->
        let program = straight in
        let n = iid_bound program in
        match
          Hw.Pt.decode_checked program Hw.Pt.[ PGE (n + 5); PGD (-2) ]
        with
        | _, Some (Hw.Pt.Bad_target pc) ->
          Alcotest.(check int) "the bogus pc" (n + 5) pc
        | _, Some e ->
          Alcotest.failf "expected Bad_target, got %s"
            (Hw.Pt.error_to_string e)
        | _, None -> Alcotest.fail "bad target went unnoticed");
    Alcotest.test_case
      "empty stream is Empty_stream, distinct from truncation" `Quick
      (fun () ->
        (* An empty stream is its own condition — drops must not be
           booked as corruption by fleet-health counters. *)
        let d, err = Hw.Pt.decode_checked straight [] in
        Alcotest.(check (list int)) "no iids" [] d.d_iids;
        Alcotest.(check bool)
          "Empty_stream, not Truncated" true
          (err = Some Hw.Pt.Empty_stream);
        (* [decode] treats it as benign: an empty trace, not a fault. *)
        let d = Hw.Pt.decode straight [] in
        Alcotest.(check (list int)) "decode: no iids" [] d.d_iids;
        (* The byte codec makes the same distinction: zero bytes are a
           dropped ring, while a well-formed empty ring is clean. *)
        (match Hw.Pt.Wire.decode "" with
         | [], Some Hw.Pt.Empty_stream -> ()
         | _ -> Alcotest.fail "empty bytes should be Empty_stream");
        match Hw.Pt.Wire.decode (Hw.Pt.Wire.encode []) with
        | [], None -> ()
        | _ -> Alcotest.fail "a well-formed empty ring is not a fault");
  ]

let qcheck_damaged =
  QCheck.Test.make
    ~name:"decode_checked is total over truncations and corruptions"
    ~count:120
    QCheck.(pair (int_bound 10_000) bool)
    (fun (salt, truncate) ->
      let program = counter ~locked:true in
      let pkts = healthy_packets ~args:[ Exec.Value.VInt 3 ] program in
      let n_instrs = iid_bound program in
      let bad =
        if truncate then Faults.Tamper.truncate_packets ~salt pkts
        else Faults.Tamper.corrupt_packets ~salt ~n_instrs pkts
      in
      let d, _err = Hw.Pt.decode_checked program bad in
      in_bounds program d)

(* The binary wire codec: encoding a packed stream and decoding the
   bytes must reproduce the packet list exactly, and damaged bytes
   must never crash the decoder or escape undetected when truncated. *)

let qcheck_wire_round_trip =
  QCheck.Test.make ~name:"wire bytes round-trip the packet stream"
    ~count:120
    QCheck.(pair (int_bound 5000) (int_range 1 5))
    (fun (seed, n) ->
      let program = counter ~locked:true in
      let pkts = healthy_packets ~args:[ Exec.Value.VInt n ] ~seed program in
      match Hw.Pt.Wire.decode (Hw.Pt.Wire.encode pkts) with
      | pkts', None -> pkts' = pkts
      | _, Some _ -> false)

let qcheck_wire_truncation =
  QCheck.Test.make
    ~name:"any wire truncation is detected (never a silent prefix)"
    ~count:120
    QCheck.(int_bound 10_000)
    (fun salt ->
      let program = counter ~locked:true in
      let pkts = healthy_packets ~args:[ Exec.Value.VInt 3 ] program in
      let bytes = Hw.Pt.Wire.encode pkts in
      let cut = Faults.Tamper.truncate_wire ~salt bytes in
      String.length cut < String.length bytes
      && snd (Hw.Pt.Wire.decode cut) <> None)

let qcheck_wire_damage_total =
  QCheck.Test.make
    ~name:"wire decode and decode_checked are total over byte damage"
    ~count:120
    QCheck.(pair (int_bound 10_000) bool)
    (fun (salt, flip) ->
      let program = counter ~locked:true in
      let pkts = healthy_packets ~args:[ Exec.Value.VInt 3 ] program in
      let n_instrs = iid_bound program in
      let bytes = Hw.Pt.Wire.encode pkts in
      let bad =
        if flip then Faults.Tamper.flip_wire_byte ~salt bytes
        else Faults.Tamper.corrupt_wire_packets ~salt ~n_instrs bytes
      in
      let pkts', _err = Hw.Pt.Wire.decode bad in
      let d, _err = Hw.Pt.decode_checked program pkts' in
      in_bounds program d)

let () =
  Alcotest.run "pt"
    [
      ("round-trip", round_trips);
      ("round-trip-qcheck", [ QCheck_alcotest.to_alcotest qcheck_round_trip ]);
      ("branch-outcomes", [ branch_outcomes ]);
      ("packets", packets);
      ("damaged", damaged);
      ("damaged-qcheck", [ QCheck_alcotest.to_alcotest qcheck_damaged ]);
      ( "wire-qcheck",
        [
          QCheck_alcotest.to_alcotest qcheck_wire_round_trip;
          QCheck_alcotest.to_alcotest qcheck_wire_truncation;
          QCheck_alcotest.to_alcotest qcheck_wire_damage_total;
        ] );
    ]
