(* Differential testing of the two execution engines.

   [Exec.Interp] runs the lowered form ([Ir.Lowered], PR 2);
   [Exec.Refinterp] preserves the original engine that interprets
   [Ir.Types.program] directly.  The lowering pass is only a valid
   optimisation if the two are bit-identical on every observable:
   outcome (including the full failure report), printed output, step
   count, the ground-truth access and execution logs, every cost
   counter, and the PT packet streams produced under full tracing.
   This suite asserts exactly that over the whole Bugbase -- whose
   entries exercise every failure kind, locks, spawns and preemption --
   plus generated random programs, across several scheduling seeds. *)

module I = Exec.Interp

let seeds = [ 0; 1; 2; 7; 42 ]

let check_counters name (a : Exec.Cost.t) (b : Exec.Cost.t) =
  let ck field x y = Alcotest.(check int) (name ^ ": " ^ field) x y in
  ck "instrs" a.instrs b.instrs;
  ck "branches" a.branches b.branches;
  ck "mem_accesses" a.mem_accesses b.mem_accesses;
  ck "sched_switches" a.sched_switches b.sched_switches;
  ck "pt_packets" a.pt_packets b.pt_packets;
  ck "pt_bytes" a.pt_bytes b.pt_bytes;
  ck "pt_toggles" a.pt_toggles b.pt_toggles;
  ck "wp_traps" a.wp_traps b.wp_traps;
  ck "wp_arms" a.wp_arms b.wp_arms;
  ck "rr_events" a.rr_events b.rr_events;
  ck "sw_trace_events" a.sw_trace_events b.sw_trace_events

let outcome_str = function
  | I.Success -> "success"
  | I.Failed r -> Exec.Failure.report_to_string r

(* Run [program] on both engines with identical parameters and assert
   every observable equal.  When [trace] is set, both runs record full
   PT streams and those must match packet for packet too. *)
let check_engines ?(trace = false) name ?preempt_prob program workload =
  let run engine =
    let counters = Exec.Cost.create () in
    let pt = if trace then Some (Hw.Pt.create counters) else None in
    let hooks =
      match pt with
      | Some pt -> Instrument.Runtime.full_tracing_hooks ~pt
      | None -> I.no_hooks ()
    in
    let res =
      engine ~hooks ~counters ?preempt_prob ~record_gt:true program workload
    in
    Option.iter Hw.Pt.finish pt;
    let packets =
      match pt with
      | None -> []
      | Some pt ->
        List.map (fun tid -> (tid, Hw.Pt.packets_of pt tid)) (Hw.Pt.all_tids pt)
    in
    (res, counters, packets)
  in
  let r_ref, c_ref, p_ref =
    run (fun ~hooks ~counters ?preempt_prob ~record_gt p w ->
        Exec.Refinterp.run ~hooks ~counters ?preempt_prob ~record_gt p w)
  in
  let r_low, c_low, p_low =
    run (fun ~hooks ~counters ?preempt_prob ~record_gt p w ->
        I.run ~hooks ~counters ?preempt_prob ~record_gt p w)
  in
  Alcotest.(check string)
    (name ^ ": outcome")
    (outcome_str r_ref.I.outcome)
    (outcome_str r_low.I.outcome);
  Alcotest.(check bool)
    (name ^ ": outcome (full report)")
    true
    (r_ref.I.outcome = r_low.I.outcome);
  Alcotest.(check (list string)) (name ^ ": output") r_ref.I.output r_low.I.output;
  Alcotest.(check int) (name ^ ": steps") r_ref.I.steps r_low.I.steps;
  Alcotest.(check bool)
    (name ^ ": access log")
    true
    (r_ref.I.accesses = r_low.I.accesses);
  Alcotest.(check bool)
    (name ^ ": executed log")
    true
    (r_ref.I.executed = r_low.I.executed);
  check_counters name c_ref c_low;
  if trace then
    Alcotest.(check bool)
      (name ^ ": PT packet streams")
      true (p_ref = p_low)

(* ------------------------------------------------------------------ *)
(* Every Bugbase entry, several seeds, bare and under full tracing. *)

let bugbase_cases =
  List.map
    (fun (bug : Bugbase.Common.t) ->
      Alcotest.test_case
        (Printf.sprintf "%s across %d seeds" bug.name (List.length seeds))
        `Quick
        (fun () ->
          List.iter
            (fun seed ->
              let name = Printf.sprintf "%s/seed %d" bug.name seed in
              let w = bug.workload_of seed in
              check_engines name ~preempt_prob:bug.preempt_prob bug.program w;
              check_engines ~trace:true (name ^ "/traced")
                ~preempt_prob:bug.preempt_prob bug.program w)
            seeds))
    Bugbase.Registry.all

(* ------------------------------------------------------------------ *)
(* Generated random programs: single-threaded and racy two-worker. *)

let gen_cases =
  [
    Alcotest.test_case "random single-thread programs" `Quick (fun () ->
        List.iter
          (fun pseed ->
            let program = Fuzz.Gen.random pseed in
            List.iter
              (fun seed ->
                check_engines
                  (Printf.sprintf "gen %d/seed %d" pseed seed)
                  program
                  (I.workload ~args:[ Exec.Value.VInt (pseed + seed) ] seed))
              seeds)
          [ 3; 17; 99; 256 ]);
    Alcotest.test_case "random multithreaded programs, traced" `Quick
      (fun () ->
        List.iter
          (fun pseed ->
            let program = Fuzz.Gen.random_threaded pseed in
            List.iter
              (fun seed ->
                check_engines ~trace:true
                  (Printf.sprintf "gen-mt %d/seed %d" pseed seed)
                  program
                  (I.workload ~args:[ Exec.Value.VInt 3 ] seed))
              seeds)
          [ 5; 21; 77 ]);
  ]

(* ------------------------------------------------------------------ *)
(* Unknown labels are a load-time [Lower_error], not a runtime crash. *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* [Ir.Program.make] rejects unknown labels itself, so a program
   containing one can only be hand-assembled behind its back -- which
   is exactly the hole the old engine's runtime [Type_error "unknown
   label ..."] in [goto] covered.  The lowering pass must close it at
   load time instead. *)
(* Hand-rolled program records that bypass [Program.make]'s validation:
   the lowering pass must reject these on its own, at lowering time,
   wherever the bad name hides. *)
let bad_funcs ?(main = "main") funcs =
  let open Ir.Types in
  let counter = ref 0 in
  let funcs =
    List.map
      (fun (fname, params, blocks) ->
        let blocks =
          Array.of_list
            (List.map
               (fun (label, kinds) ->
                 let instrs =
                   Array.of_list
                     (List.map
                        (fun kind ->
                          incr counter;
                          {
                            iid = !counter;
                            kind;
                            loc = { file = "bad.c"; line = !counter };
                            text = "";
                          })
                        kinds)
                 in
                 { label; instrs })
               blocks)
        in
        { fname; params; blocks })
      funcs
  in
  let by_iid = Hashtbl.create 16 in
  List.iter
    (fun f ->
      Array.iteri
        (fun bi b ->
          Array.iteri
            (fun k ins ->
              Hashtbl.replace by_iid ins.iid
                (ins, { p_func = f.fname; p_block = bi; p_index = k }))
            b.instrs)
        f.blocks)
    funcs;
  let func_tbl = Hashtbl.create 4 in
  List.iter (fun f -> Hashtbl.replace func_tbl f.fname f) funcs;
  { globals = []; funcs; main; by_iid; func_tbl; n_instrs = !counter }

let bad_program kinds = bad_funcs [ ("main", [], [ ("entry", kinds) ]) ]

let expect_lower_error ~sub bad =
  match Ir.Lowered.lower bad with
  | exception Ir.Lowered.Lower_error msg ->
    if not (contains ~sub msg) then
      Alcotest.failf "message %S does not mention %S" msg sub
  | _ -> Alcotest.fail "expected Lower_error"

let lower_errors =
  [
    Alcotest.test_case "jump to unknown label fails at lowering time"
      `Quick (fun () ->
        let bad = bad_program [ Ir.Types.Jmp "nowhere" ] in
        match Ir.Lowered.lower bad with
        | exception Ir.Lowered.Lower_error msg ->
          Alcotest.(check bool)
            "message names the label" true
            (contains ~sub:"nowhere" msg && contains ~sub:"label" msg)
        | _ -> Alcotest.fail "expected Lower_error");
    Alcotest.test_case "running such a program raises before execution"
      `Quick (fun () ->
        let bad =
          bad_program
            Ir.Types.
              [
                Assign ("x", Mov (Imm 1));
                Branch (Reg "x", "gone", "entry");
              ]
        in
        match I.run bad (I.workload 0) with
        | exception Ir.Lowered.Lower_error _ -> ()
        | _ -> Alcotest.fail "expected Lower_error from run");
    Alcotest.test_case "branch with an unknown then-label" `Quick (fun () ->
        expect_lower_error ~sub:"nowhere"
          (bad_program
             Ir.Types.
               [
                 Assign ("x", Mov (Imm 1));
                 Branch (Reg "x", "nowhere", "entry");
               ]));
    Alcotest.test_case "branch with an unknown else-label" `Quick (fun () ->
        expect_lower_error ~sub:"nowhere"
          (bad_program
             Ir.Types.
               [
                 Assign ("x", Mov (Imm 1));
                 Branch (Reg "x", "entry", "nowhere");
               ]));
    Alcotest.test_case "bad label behind a jump chain" `Quick (fun () ->
        (* entry -> mid -> (bad): the bad jump sits in a block only
           reachable through another jump. *)
        expect_lower_error ~sub:"nowhere"
          (bad_funcs
             Ir.Types.
               [
                 ( "main", [],
                   [
                     ("entry", [ Jmp "mid" ]);
                     ("mid", [ Jmp "nowhere" ]);
                   ] );
               ]));
    Alcotest.test_case "bad label behind a branch arm" `Quick (fun () ->
        expect_lower_error ~sub:"nowhere"
          (bad_funcs
             Ir.Types.
               [
                 ( "main", [],
                   [
                     ( "entry",
                       [
                         Assign ("c", Mov (Imm 0));
                         Branch (Reg "c", "t", "f");
                       ] );
                     ("t", [ Jmp "nowhere" ]);
                     ("f", [ Ret None ]);
                   ] );
               ]));
    Alcotest.test_case "bad label in an unreachable block" `Quick (fun () ->
        (* no control flow reaches [dead], but lowering is eager *)
        expect_lower_error ~sub:"nowhere"
          (bad_funcs
             Ir.Types.
               [
                 ( "main", [],
                   [
                     ("entry", [ Ret None ]);
                     ("dead", [ Jmp "nowhere" ]);
                   ] );
               ]));
    Alcotest.test_case "bad label in a spawned thread routine" `Quick
      (fun () ->
        (* the routine is entered only indirectly, through Spawn *)
        expect_lower_error ~sub:"wnowhere"
          (bad_funcs
             Ir.Types.
               [
                 ( "main", [],
                   [
                     ( "entry",
                       [
                         Spawn ("t", "worker", []);
                         Join (Reg "t");
                         Ret None;
                       ] );
                   ] );
                 ( "worker", [],
                   [
                     ("entry", [ Jmp "wnowhere" ]);
                     ("w2", [ Ret None ]);
                   ] );
               ]));
    Alcotest.test_case "spawn of an undefined routine" `Quick (fun () ->
        expect_lower_error ~sub:"ghost"
          (bad_program
             Ir.Types.[ Spawn ("t", "ghost", []); Ret None ]));
    Alcotest.test_case "call to an undefined function" `Quick (fun () ->
        expect_lower_error ~sub:"ghost"
          (bad_program
             Ir.Types.[ Call (Some "x", "ghost", []); Ret None ]));
    Alcotest.test_case "unknown global" `Quick (fun () ->
        expect_lower_error ~sub:"gmissing"
          (bad_program
             Ir.Types.[ Load_global ("x", "gmissing"); Ret None ]));
    Alcotest.test_case "unknown builtin" `Quick (fun () ->
        expect_lower_error ~sub:"frobnicate"
          (bad_program
             Ir.Types.[ Builtin (None, "frobnicate", []); Ret None ]));
    Alcotest.test_case "undefined main function" `Quick (fun () ->
        expect_lower_error ~sub:"nomain"
          (bad_funcs ~main:"nomain"
             Ir.Types.[ ("main", [], [ ("entry", [ Ret None ]) ]) ]));
  ]

let () =
  Alcotest.run "differential"
    [
      ("bugbase", bugbase_cases);
      ("generated", gen_cases);
      ("lower-errors", lower_errors);
    ]
