(* Graph, dominator/postdominator, control-dependence and ICFG/TICFG
   tests, including QCheck properties over random graphs. *)

module G = Analysis.Graph
module D = Analysis.Dom

(* diamond: 0 -> 1,2 -> 3 *)
let diamond_g = G.make 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

(* loop: 0 -> 1; 1 -> 2,3; 2 -> 1 *)
let loop_g = G.make 4 [ (0, 1); (1, 2); (1, 3); (2, 1) ]

let graph_tests =
  [
    Alcotest.test_case "make dedups edges" `Quick (fun () ->
        let g = G.make 2 [ (0, 1); (0, 1); (0, 1) ] in
        Alcotest.(check (list int)) "succs" [ 1 ] g.G.succs.(0);
        Alcotest.(check (list int)) "preds" [ 0 ] g.G.preds.(1));
    Alcotest.test_case "reverse swaps succs and preds" `Quick (fun () ->
        let g = G.reverse diamond_g in
        Alcotest.(check (list int)) "preds of 0" [ 1; 2 ] g.G.preds.(0));
    Alcotest.test_case "rpo starts at entry, ends at exit" `Quick (fun () ->
        match G.reverse_postorder diamond_g 0 with
        | 0 :: rest -> Alcotest.(check int) "last" 3 (List.nth rest 2)
        | _ -> Alcotest.fail "rpo must start at entry");
    Alcotest.test_case "reachable ignores disconnected nodes" `Quick (fun () ->
        let g = G.make 3 [ (0, 1) ] in
        let v = G.reachable g 0 in
        Alcotest.(check bool) "2 unreachable" false v.(2));
  ]

let dom_tests =
  [
    Alcotest.test_case "entry dominates everything (diamond)" `Quick (fun () ->
        let d = D.compute diamond_g 0 in
        List.iter
          (fun v -> Alcotest.(check bool) "dom" true (D.dominates d 0 v))
          [ 0; 1; 2; 3 ]);
    Alcotest.test_case "branch arms do not dominate the merge" `Quick (fun () ->
        let d = D.compute diamond_g 0 in
        Alcotest.(check bool) "1 !dom 3" false (D.dominates d 1 3);
        Alcotest.(check bool) "2 !dom 3" false (D.dominates d 2 3));
    Alcotest.test_case "idom of merge is the branch" `Quick (fun () ->
        let d = D.compute diamond_g 0 in
        Alcotest.(check (option int)) "idom 3" (Some 0) (D.idom d 3));
    Alcotest.test_case "strict dominance is irreflexive" `Quick (fun () ->
        let d = D.compute diamond_g 0 in
        Alcotest.(check bool) "0 !sdom 0" false (D.strictly_dominates d 0 0));
    Alcotest.test_case "loop header dominates body" `Quick (fun () ->
        let d = D.compute loop_g 0 in
        Alcotest.(check bool) "1 dom 2" true (D.dominates d 1 2);
        Alcotest.(check bool) "2 !dom 1" false (D.dominates d 2 1));
    Alcotest.test_case "postdominators: merge postdominates the arms" `Quick
      (fun () ->
        let p = D.compute_post diamond_g in
        Alcotest.(check bool) "3 pdom 1" true (D.postdominates p 3 1);
        Alcotest.(check bool) "3 pdom 0" true (D.postdominates p 3 0);
        Alcotest.(check bool) "1 !pdom 0" false (D.postdominates p 1 0));
    Alcotest.test_case "ipdom of the branch is the merge" `Quick (fun () ->
        let p = D.compute_post diamond_g in
        Alcotest.(check (option int)) "ipdom 0" (Some 3) (D.ipdom p 0));
    Alcotest.test_case "ipdom of exit is the virtual exit (None)" `Quick
      (fun () ->
        let p = D.compute_post diamond_g in
        Alcotest.(check (option int)) "ipdom 3" None (D.ipdom p 3));
    Alcotest.test_case "postdominators total on an infinite loop" `Quick
      (fun () ->
        let g = G.make 2 [ (0, 1); (1, 0) ] in
        let p = D.compute_post g in
        (* No natural exit: every node is connected to the virtual exit. *)
        Alcotest.(check bool) "reachable" true (D.reachable p.D.dom 0));
  ]

(* Random DAG-ish graphs for property testing: node k gets an edge from
   some earlier node, plus extra random edges (possibly back edges). *)
let random_graph_gen =
  QCheck.Gen.(
    sized_size (int_range 2 24) (fun n ->
        let* extra = list_size (int_range 0 (2 * n)) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
        let* spine =
          flatten_l (List.init (n - 1) (fun k -> map (fun p -> (p mod (k + 1), k + 1)) (int_bound k)))
        in
        return (n, spine @ extra)))

let arbitrary_graph =
  QCheck.make ~print:(fun (n, e) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) e)))
    random_graph_gen

let qcheck_dom =
  [
    QCheck.Test.make ~name:"entry dominates every reachable node" ~count:200
      arbitrary_graph (fun (n, edges) ->
        let g = G.make n edges in
        let d = D.compute g 0 in
        let reach = G.reachable g 0 in
        Array.to_list (Array.mapi (fun v r -> (v, r)) reach)
        |> List.for_all (fun (v, r) -> (not r) || D.dominates d 0 v));
    QCheck.Test.make ~name:"idom is a strict dominator" ~count:200
      arbitrary_graph (fun (n, edges) ->
        let g = G.make n edges in
        let d = D.compute g 0 in
        List.init n Fun.id
        |> List.for_all (fun v ->
            match D.idom d v with
            | None -> true
            | Some p -> D.strictly_dominates d p v));
    QCheck.Test.make ~name:"dominance is antisymmetric" ~count:200
      arbitrary_graph (fun (n, edges) ->
        let g = G.make n edges in
        let d = D.compute g 0 in
        List.init n Fun.id
        |> List.for_all (fun v ->
            List.init n Fun.id
            |> List.for_all (fun w ->
                v = w
                || not (D.dominates d v w && D.dominates d w v))));
    QCheck.Test.make ~name:"postdominator analysis never raises" ~count:200
      arbitrary_graph (fun (n, edges) ->
        let g = G.make n edges in
        let _ = D.compute_post g in
        true);
  ]

let cfg_tests =
  let prog = Tsupport.Programs.diamond in
  let f = Ir.Program.find_func prog "main" in
  let cfg = Analysis.Cfg.of_func f in
  [
    Alcotest.test_case "block structure of the diamond" `Quick (fun () ->
        Alcotest.(check int) "4 blocks" 4 (Analysis.Cfg.n_blocks cfg);
        Alcotest.(check (list int)) "entry succs" [ 1; 2 ] (Analysis.Cfg.succs cfg 0);
        Alcotest.(check (list int)) "merge preds" [ 1; 2 ] (Analysis.Cfg.preds cfg 3));
    Alcotest.test_case "exit blocks end in ret" `Quick (fun () ->
        Alcotest.(check (list int)) "exits" [ 3 ] (Analysis.Cfg.exit_blocks cfg));
    Alcotest.test_case "instruction-level strict dominance" `Quick (fun () ->
        (* within entry block: instr 0 sdom instr 1 *)
        Alcotest.(check bool) "in-block" true
          (Analysis.Cfg.instr_strictly_dominates cfg (0, 0) (0, 1));
        Alcotest.(check bool) "across arms" false
          (Analysis.Cfg.instr_strictly_dominates cfg (1, 0) (2, 0)));
    Alcotest.test_case "control deps: arms depend on the branch" `Quick
      (fun () ->
        let deps = Analysis.Cfg.control_deps cfg in
        Alcotest.(check (list int)) "pos dep" [ 0 ] deps.(1);
        Alcotest.(check (list int)) "neg dep" [ 0 ] deps.(2);
        Alcotest.(check (list int)) "merge has no dep" [] deps.(3));
    Alcotest.test_case "control deps in a loop: body depends on header" `Quick
      (fun () ->
        let lf = Ir.Program.find_func Tsupport.Programs.loop_sum "main" in
        let lcfg = Analysis.Cfg.of_func lf in
        let deps = Analysis.Cfg.control_deps lcfg in
        (* blocks: 0 entry, 1 loop, 2 body, 3 out *)
        Alcotest.(check (list int)) "body dep on loop" [ 1 ] deps.(2));
    Alcotest.test_case "find_iid locates instructions" `Quick (fun () ->
        Ir.Program.iter_instrs prog (fun x ->
            let pos = Ir.Program.position_of prog x.iid in
            if pos.p_func = "main" then
              match Analysis.Cfg.find_iid cfg x.iid with
              | Some (b, k) ->
                Alcotest.(check int) "block" pos.p_block b;
                Alcotest.(check int) "index" pos.p_index k
              | None -> Alcotest.fail "not found"));
  ]

let icfg_tests =
  let prog = Tsupport.Programs.call_chain in
  let icfg = Analysis.Icfg.build prog in
  [
    Alcotest.test_case "call sites recorded" `Quick (fun () ->
        Alcotest.(check int) "one call of g" 1
          (List.length (Analysis.Icfg.call_sites_of icfg "g"));
        Alcotest.(check int) "one call of f" 1
          (List.length (Analysis.Icfg.call_sites_of icfg "f")));
    Alcotest.test_case "returns_of finds ret instructions" `Quick (fun () ->
        Alcotest.(check int) "g has one ret" 1
          (List.length (Analysis.Icfg.returns_of icfg "g")));
    Alcotest.test_case "whole program reachable from main" `Quick (fun () ->
        let v = Analysis.Icfg.reachable_nodes icfg in
        Alcotest.(check bool) "g entry reachable" true (Hashtbl.mem v ("g", 0)));
    Alcotest.test_case "TICFG: spawn edges make thread routines reachable"
      `Quick (fun () ->
        let p = Tsupport.Programs.counter ~locked:true in
        let ti = Analysis.Icfg.build p in
        Alcotest.(check int) "spawn sites" 2
          (List.length (Analysis.Icfg.spawn_sites_of ti "worker"));
        let v = Analysis.Icfg.reachable_nodes ti in
        Alcotest.(check bool) "worker reachable" true
          (Hashtbl.mem v ("worker", 0)));
    Alcotest.test_case "binding sites include spawns" `Quick (fun () ->
        let p = Tsupport.Programs.counter ~locked:false in
        let ti = Analysis.Icfg.build p in
        Alcotest.(check int) "worker bound twice" 2
          (List.length (Analysis.Icfg.binding_sites_of ti "worker")));
  ]

let () =
  Alcotest.run "analysis"
    [
      ("graph", graph_tests);
      ("dominators", dom_tests);
      ("dominators-qcheck", List.map QCheck_alcotest.to_alcotest qcheck_dom);
      ("cfg", cfg_tests);
      ("icfg", icfg_tests);
    ]
