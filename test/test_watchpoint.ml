(* Hardware watchpoint unit tests: the 4-slot budget, trap logging and
   total ordering. *)

module W = Hw.Watchpoint

let mk () = W.create (Exec.Cost.create ())

let tests =
  [
    Alcotest.test_case "default capacity is four debug registers" `Quick
      (fun () ->
        let w = mk () in
        Alcotest.(check int) "free" 4 (W.free_slots w));
    Alcotest.test_case "arming beyond capacity fails" `Quick (fun () ->
        let w = mk () in
        List.iter (fun a -> Alcotest.(check bool) "armed" true (W.arm w a))
          [ 10; 20; 30; 40 ];
        Alcotest.(check bool) "fifth rejected" false (W.arm w 50));
    Alcotest.test_case "double arming the same address is rejected" `Quick
      (fun () ->
        let w = mk () in
        Alcotest.(check bool) "first" true (W.arm w 10);
        Alcotest.(check bool) "second" false (W.arm w 10);
        Alcotest.(check int) "one slot used" 3 (W.free_slots w));
    Alcotest.test_case "disarm frees the slot" `Quick (fun () ->
        let w = mk () in
        ignore (W.arm w 10);
        W.disarm w 10;
        Alcotest.(check bool) "unwatched" false (W.watched w 10);
        Alcotest.(check int) "free again" 4 (W.free_slots w));
    Alcotest.test_case "only watched addresses trap" `Quick (fun () ->
        let w = mk () in
        ignore (W.arm w 10);
        W.on_access w ~tid:0 ~iid:1 ~addr:10 ~rw:Exec.Interp.Read
          ~value:(Exec.Value.VInt 7);
        W.on_access w ~tid:0 ~iid:2 ~addr:11 ~rw:Exec.Interp.Write
          ~value:(Exec.Value.VInt 8);
        Alcotest.(check int) "one trap" 1 (List.length (W.traps w)));
    Alcotest.test_case "traps record tid, pc, kind and value in order" `Quick
      (fun () ->
        let w = mk () in
        ignore (W.arm w 10);
        W.on_access w ~tid:1 ~iid:5 ~addr:10 ~rw:Exec.Interp.Write
          ~value:(Exec.Value.VInt 1);
        W.on_access w ~tid:2 ~iid:6 ~addr:10 ~rw:Exec.Interp.Read
          ~value:(Exec.Value.VInt 1);
        match W.traps w with
        | [ a; b ] ->
          Alcotest.(check int) "seq order" 1 a.W.w_seq;
          Alcotest.(check int) "tid" 1 a.W.w_tid;
          Alcotest.(check int) "pc" 5 a.W.w_iid;
          Alcotest.(check bool) "write" true (a.W.w_rw = Exec.Interp.Write);
          Alcotest.(check int) "second seq" 2 b.W.w_seq
        | _ -> Alcotest.fail "expected two traps");
    Alcotest.test_case "arm and trap counters feed the cost model" `Quick
      (fun () ->
        let c = Exec.Cost.create () in
        let w = W.create c in
        ignore (W.arm w 10);
        W.on_access w ~tid:0 ~iid:1 ~addr:10 ~rw:Exec.Interp.Read
          ~value:(Exec.Value.VInt 0);
        Alcotest.(check int) "arms" 1 c.Exec.Cost.wp_arms;
        Alcotest.(check int) "traps" 1 c.Exec.Cost.wp_traps;
        Alcotest.(check bool) "extra cycles > 0" true
          (Exec.Cost.wp_extra_cycles c > 0.0));
    Alcotest.test_case "custom capacity respected" `Quick (fun () ->
        let w = W.create ~capacity:2 (Exec.Cost.create ()) in
        ignore (W.arm w 1);
        ignore (W.arm w 2);
        Alcotest.(check bool) "third rejected" false (W.arm w 3));
  ]

let () = Alcotest.run "watchpoint" [ ("watchpoint", tests) ]
