(* Textual IR format tests: emit/parse round trips over the whole
   Bugbase and over random programs, plus parse-error reporting. *)

let roundtrip_equal (p : Ir.Types.program) =
  let q = Ir.Text.parse (Ir.Text.emit p) in
  (* iids are canonical in both (assigned by Program.make in textual
     order), so structural equality of the serialisations suffices. *)
  Ir.Text.emit q = Ir.Text.emit p
  && q.n_instrs = p.n_instrs
  && List.map (fun (f : Ir.Types.func) -> f.fname) q.funcs
     = List.map (fun (f : Ir.Types.func) -> f.fname) p.funcs

let roundtrips =
  List.map
    (fun (bug : Bugbase.Common.t) ->
      Alcotest.test_case ("round trip: " ^ bug.name) `Quick (fun () ->
          Alcotest.(check bool) "equal" true (roundtrip_equal bug.program)))
    Bugbase.Registry.all
  @ [
      Alcotest.test_case "round trip: quickstart-style program" `Quick
        (fun () ->
          Alcotest.(check bool) "equal" true
            (roundtrip_equal (Tsupport.Programs.counter ~locked:true)));
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~name:"round trip on random programs" ~count:200
           QCheck.(int_bound 100_000)
           (fun seed -> roundtrip_equal (Fuzz.Gen.random seed)));
    ]

let behaviour =
  [
    Alcotest.test_case "parsed program runs identically" `Quick (fun () ->
        let p = Bugbase.Curl.program in
        let q = Ir.Text.parse (Ir.Text.emit p) in
        let run prog =
          Exec.Interp.run ~record_gt:true prog
            (Exec.Interp.workload ~args:[ Exec.Value.VStr "{}{" ] 3)
        in
        let a = run p and b = run q in
        Alcotest.(check bool) "same executed" true (a.executed = b.executed);
        Alcotest.(check bool) "same outcome class" true
          ((a.outcome = Exec.Interp.Success) = (b.outcome = Exec.Interp.Success)));
    Alcotest.test_case "annotations survive the round trip" `Quick (fun () ->
        let p = Bugbase.Pbzip2.program in
        let q = Ir.Text.parse (Ir.Text.emit p) in
        let texts prog =
          Ir.Program.all_instrs prog
          |> List.map (fun (i : Ir.Types.instr) -> (i.loc, i.text))
        in
        Alcotest.(check bool) "same annotations" true (texts p = texts q));
  ]

let errors =
  let check_error name src expect_line =
    Alcotest.test_case name `Quick (fun () ->
        match Ir.Text.parse_result src with
        | Ok _ -> Alcotest.fail "expected a parse error"
        | Error msg ->
          if not (Astring.String.is_prefix ~affix:(Printf.sprintf "line %d" expect_line) msg)
          then Alcotest.failf "wrong location: %s" msg)
  in
  [
    check_error "instruction outside a block"
      "func main() {\n  ret\n}\nmain main" 2;
    check_error "unknown instruction"
      "func main() {\nentry:\n  warp 9\n}\nmain main" 3;
    check_error "unterminated string"
      "func main() {\nentry:\n  assert 1 \"oops\n}\nmain main" 3;
    check_error "bad br syntax"
      "func main() {\nentry:\n  br %c ? a\n}\nmain main" 3;
    Alcotest.test_case "missing main directive" `Quick (fun () ->
        match Ir.Text.parse_result "func main() {\nentry:\n  ret\n}" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
    Alcotest.test_case "validation errors surface as Error" `Quick (fun () ->
        (* jump to an unknown label parses but fails validation *)
        match
          Ir.Text.parse_result "func main() {\nentry:\n  jmp nowhere\n}\nmain main"
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected error");
  ]

let files =
  [
    Alcotest.test_case "save and load a .gir file" `Quick (fun () ->
        let path = Filename.temp_file "gist" ".gir" in
        Ir.Text.save path Bugbase.Memcached.program;
        (match Ir.Text.load path with
         | Ok q ->
           Alcotest.(check bool) "equal" true
             (Ir.Text.emit q = Ir.Text.emit Bugbase.Memcached.program)
         | Error e -> Alcotest.failf "load failed: %s" e);
        Sys.remove path);
  ]

let () =
  Alcotest.run "text"
    [
      ("round-trips", roundtrips);
      ("behaviour", behaviour);
      ("errors", errors);
      ("files", files);
    ]
