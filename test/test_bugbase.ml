(* Bugbase sanity: all 11 Table 1 bugs are well-formed, trigger their
   target failure under some production workload, and also run
   successfully under others (Gist needs both populations). *)

module I = Exec.Interp

let bugs = Bugbase.Registry.all

let registry =
  [
    Alcotest.test_case "eleven bugs, like Table 1" `Quick (fun () ->
        Alcotest.(check int) "count" 11 (List.length bugs));
    Alcotest.test_case "names are unique" `Quick (fun () ->
        let names = Bugbase.Registry.names in
        Alcotest.(check int) "unique" (List.length names)
          (List.length (List.sort_uniq compare names)));
    Alcotest.test_case "find is case-insensitive" `Quick (fun () ->
        match Bugbase.Registry.find "pbzip2" with
        | Some b -> Alcotest.(check string) "name" "Pbzip2" b.name
        | None -> Alcotest.fail "not found");
    Alcotest.test_case "expected mix of bug classes" `Quick (fun () ->
        let seq, conc =
          List.partition
            (fun (b : Bugbase.Common.t) -> b.bug_class = Bugbase.Common.Sequential)
            bugs
        in
        Alcotest.(check int) "3 sequential" 3 (List.length seq);
        Alcotest.(check int) "8 concurrency" 8 (List.length conc));
  ]

let per_bug_case (bug : Bugbase.Common.t) =
  Alcotest.test_case bug.name `Quick (fun () ->
      (* Both populations exist among production workloads. *)
      let fails = ref 0 and succs = ref 0 and target = ref 0 in
      for c = 0 to 149 do
        let res =
          I.run ~preempt_prob:bug.preempt_prob bug.program (bug.workload_of c)
        in
        match res.I.outcome with
        | I.Success -> incr succs
        | I.Failed rep ->
          incr fails;
          if Bugbase.Common.is_target_failure bug rep then incr target
      done;
      Alcotest.(check bool) "some successes" true (!succs > 0);
      Alcotest.(check bool) "some failures" true (!fails > 0);
      Alcotest.(check bool) "successes dominate (in-production bug)" true
        (!succs > !fails);
      (* The target failure manifests at the declared kind and line. *)
      (match Bugbase.Common.find_target_failure ~max_runs:2000 bug with
       | None -> Alcotest.fail "target failure unreachable"
       | Some (_, rep) ->
         Alcotest.(check string) "kind" bug.target_kind_tag
           (Exec.Failure.kind_tag rep.kind);
         Alcotest.(check int) "line" bug.target_line
           (Ir.Program.loc_of bug.program rep.pc).line);
      (* Ideal sketch is well-formed and contains the root cause. *)
      let ideal = Bugbase.Common.ideal bug in
      Alcotest.(check bool) "ideal non-empty" true (ideal.i_iids <> []);
      let root = Bugbase.Common.root_cause_iids bug in
      Alcotest.(check bool) "root non-empty" true (root <> []);
      List.iter
        (fun iid ->
          if not (List.mem iid ideal.i_iids) then
            Alcotest.failf "root iid %d not in ideal" iid)
        root)

let per_bug = List.map per_bug_case bugs

let determinism =
  [
    Alcotest.test_case "workloads are deterministic per client index" `Quick
      (fun () ->
        List.iter
          (fun (bug : Bugbase.Common.t) ->
            let a = bug.workload_of 7 and b = bug.workload_of 7 in
            Alcotest.(check int) "seed" a.I.seed b.I.seed)
          bugs);
    Alcotest.test_case "client seeds are spread" `Quick (fun () ->
        let seeds = List.init 100 Bugbase.Common.seed_of_client in
        Alcotest.(check int) "distinct" 100
          (List.length (List.sort_uniq compare seeds)));
  ]

let () =
  Alcotest.run "bugbase"
    [
      ("registry", registry);
      ("per-bug", per_bug);
      ("determinism", determinism);
    ]
