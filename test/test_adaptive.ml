(* Adaptive early-exit AsT differential suite (PR 7).

   The sequential stopping rule ([Gist.Config.early_exit]) may only
   change *how much* evidence a diagnosis gathers, never what it
   concludes: over the whole Bugbase (production fleet regime) and
   over generated fuzz bugs, with and without the PR 4 fault regime,
   the top-ranked predictor must be identical to the exhaustive
   reference, while the adaptive mode dispatches no more clients —
   and strictly fewer in aggregate.  Both modes run unattended (no
   developer oracle): the stopping rule is the stand-in for §3.2.1's
   developer, so the honest comparison gives neither mode the
   oracle's stop signal.

   Also covered here: checkpoint decisions are bit-identical at any
   pool size (report-count boundaries, never wall-clock), and the
   adaptive mode stays bit-identical between streaming and retained
   ingestion (the stopping rule reads the streaming sufficient
   statistics in both modes). *)

module A = Experiments.Adaptive
module S = Gist.Server

let fleet ~faults =
  if faults then
    {
      A.fleet_base with
      Gist.Config.fault_rates = Faults.Fault.spread 0.10;
      fault_seed = 42;
    }
  else A.fleet_base

(* ------------------------------------------------------------------ *)
(* Bugbase: adaptive vs exhaustive, top-1 identity + dispatch savings. *)

let bugbase_differential ~faults () =
  let base = fleet ~faults in
  let rows =
    List.filter_map
      (fun r -> Option.map fst r)
      (Experiments.Harness.map_bugs
         (fun b -> A.compare_bug ~base b)
         Bugbase.Registry.all)
  in
  Alcotest.(check int)
    "every bug compared"
    (List.length Bugbase.Registry.all)
    (List.length rows);
  List.iter
    (fun (r : A.row) ->
      Alcotest.(check bool) (r.r_bug ^ ": top identical") true r.r_top_identical;
      Alcotest.(check bool)
        (r.r_bug ^ ": no extra clients")
        true
        (r.r_ad_dispatched <= r.r_exh_dispatched))
    rows;
  let total f = List.fold_left (fun s r -> s + f r) 0 rows in
  Alcotest.(check bool)
    "strictly fewer clients in aggregate" true
    (total (fun r -> r.A.r_ad_dispatched)
    < total (fun r -> r.A.r_exh_dispatched));
  (* The rule must actually fire: several bugs converge outright under
     the fleet regime (7 of 11 at the time of writing; 3 is the
     non-brittle floor). *)
  Alcotest.(check bool)
    "at least 3 bugs converge" true
    (List.length (List.filter (fun r -> r.A.r_converged) rows) >= 3)

(* ------------------------------------------------------------------ *)
(* Fuzz bugs: 50 generated cases (seeds 42..91), every viable one
   diagnosed in both modes. *)

let fuzz_count = 50

let fuzz_cases =
  lazy
    (let patterns = Array.of_list Fuzz.Gen.all_patterns in
     List.init fuzz_count (fun i ->
         Fuzz.Gen.generate patterns.(i mod Array.length patterns) (42 + i)))

let fuzz_differential ~faults () =
  let diagnosed = ref 0 and saved = ref 0 in
  let total_exh = ref 0 and total_ad = ref 0 in
  List.iter
    (fun (case : Fuzz.Gen.case) ->
      let case =
        if faults then
          { case with Fuzz.Gen.c_faults = Some (Faults.Fault.spread 0.10, 42) }
        else case
      in
      match Fuzz.Check.probe case with
      | p when Fuzz.Check.viable p ->
        let oe = Fuzz.Check.check ~use_oracle:false case in
        let oa = Fuzz.Check.check ~early_exit:true ~use_oracle:false case in
        incr diagnosed;
        Alcotest.(check (option string))
          (case.Fuzz.Gen.c_name ^ ": top identical")
          oe.Fuzz.Check.top oa.Fuzz.Check.top;
        let d (o : Fuzz.Check.outcome) =
          match o.Fuzz.Check.fleet with
          | Some f -> f.S.f_dispatched
          | None -> 0
        in
        Alcotest.(check bool)
          (case.Fuzz.Gen.c_name ^ ": no extra clients")
          true
          (d oa <= d oe);
        total_exh := !total_exh + d oe;
        total_ad := !total_ad + d oa;
        if d oa < d oe then incr saved
      | _ -> ())
    (Lazy.force fuzz_cases);
  Alcotest.(check bool)
    (Printf.sprintf "enough viable cases (%d of %d)" !diagnosed fuzz_count)
    true
    (!diagnosed >= fuzz_count / 2);
  Alcotest.(check bool)
    (Printf.sprintf "aggregate strictly fewer clients (%d -> %d)" !total_exh
       !total_ad)
    true (!total_ad < !total_exh);
  Alcotest.(check bool) "the rule fired on some case" true (!saved > 0)

(* ------------------------------------------------------------------ *)
(* Checkpoint determinism: the adaptive diagnosis is bit-identical at
   any pool size, and between streaming and retained ingestion. *)

let compare_diagnoses name (a : S.diagnosis) (b : S.diagnosis) =
  Alcotest.(check string)
    (name ^ ": sketch")
    (Fsketch.Render.render a.sketch)
    (Fsketch.Render.render b.sketch);
  Alcotest.(check int) (name ^ ": iterations") a.iterations b.iterations;
  Alcotest.(check int) (name ^ ": recurrences") a.recurrences b.recurrences;
  Alcotest.(check int) (name ^ ": total runs") a.total_runs b.total_runs;
  Alcotest.(check int) (name ^ ": final sigma") a.final_sigma b.final_sigma;
  Alcotest.(check bool) (name ^ ": trace") true (a.trace = b.trace);
  Alcotest.(check bool) (name ^ ": fleet ledger") true (a.fleet = b.fleet)

let adaptive_diagnosis ?pool ?ingest (b : Bugbase.Common.t) =
  let _, failure = Option.get (Bugbase.Common.find_target_failure b) in
  let config =
    {
      A.fleet_base with
      Gist.Config.early_exit = true;
      preempt_prob = b.preempt_prob;
    }
  in
  S.diagnose ~config ?pool ?ingest ~bug_name:b.name
    ~failure_type:b.failure_type ~program:b.program ~workload_of:b.workload_of
    ~failure ()

let determinism_case (b : Bugbase.Common.t) =
  Alcotest.test_case b.name `Quick (fun () ->
      let seq = adaptive_diagnosis b in
      Parallel.Pool.with_pool ~jobs:3 (fun pool ->
          compare_diagnoses (b.name ^ " jobs 1 vs 3") seq
            (adaptive_diagnosis ~pool b)))

let ingest_case (b : Bugbase.Common.t) =
  Alcotest.test_case b.name `Quick (fun () ->
      compare_diagnoses
        (b.name ^ " streaming vs retained")
        (adaptive_diagnosis ~ingest:S.Streaming b)
        (adaptive_diagnosis ~ingest:S.Retained b))

let small_bugs =
  List.filter
    (fun (b : Bugbase.Common.t) ->
      List.mem b.name [ "Curl"; "Pbzip2"; "SQLite" ])
    Bugbase.Registry.all

let () =
  Alcotest.run "adaptive"
    [
      ( "bugbase",
        [ Alcotest.test_case "11 bugs, fleet regime" `Slow
            (bugbase_differential ~faults:false) ] );
      ( "bugbase-faults",
        [ Alcotest.test_case "11 bugs at 10% aggregate faults" `Slow
            (bugbase_differential ~faults:true) ] );
      ( "fuzz",
        [ Alcotest.test_case "50 generated bugs" `Slow
            (fuzz_differential ~faults:false) ] );
      ( "fuzz-faults",
        [ Alcotest.test_case "50 generated bugs at 10% aggregate faults"
            `Slow
            (fuzz_differential ~faults:true) ] );
      ("determinism", List.map determinism_case small_bugs);
      ("ingest-modes", List.map ingest_case small_bugs);
    ]
