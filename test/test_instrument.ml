(* Instrumentation placement tests (paper Fig. 4 rules) and the key
   coverage invariant: every tracked statement that executes appears in
   the decoded Intel PT trace. *)

open Tsupport.Programs
module I = Exec.Interp
module Plan = Instrument.Plan

let plan_for program tracked = Instrument.Place.compute program tracked

let has_action plan iid a = List.mem a (Plan.actions_at plan iid)

let placement =
  [
    Alcotest.test_case "tracked statement gets a start at its block head"
      `Quick (fun () ->
        (* diamond: track the statement in the positive arm (iid 3) *)
        let plan = plan_for diamond [ 3 ] in
        Alcotest.(check bool) "start at arm head" true
          (has_action plan 3 Plan.Pt_start));
    Alcotest.test_case "start also placed at predecessor terminators" `Quick
      (fun () ->
        let plan = plan_for diamond [ 3 ] in
        (* the entry block's branch (iid 2) is the predecessor terminator *)
        Alcotest.(check bool) "start at branch" true
          (has_action plan 2 Plan.Pt_start));
    Alcotest.test_case "stop placed after the tracked statement" `Quick
      (fun () ->
        let plan = plan_for diamond [ 3 ] in
        let stops =
          Hashtbl.fold
            (fun iid2 acts acc ->
              if List.mem Plan.Pt_stop acts then iid2 :: acc else acc)
            plan.Plan.actions []
        in
        Alcotest.(check bool) "some stop exists" true (stops <> []));
    Alcotest.test_case "consecutive tracked statements do not stop in between"
      `Quick (fun () ->
        (* straight: track instrs 1 and 2 (same block, 1 sdom 2) *)
        let plan = plan_for straight [ 1; 2 ] in
        Alcotest.(check bool) "no stop at 2" false
          (has_action plan 2 Plan.Pt_stop));
    Alcotest.test_case "watchpoints only on memory accesses" `Quick (fun () ->
        let p = Bugbase.Pbzip2.program in
        let all =
          Ir.Program.all_instrs p |> List.map (fun (x : Ir.Types.instr) -> x.iid)
        in
        let plan = plan_for p all in
        List.iter
          (fun iid ->
            Alcotest.(check bool) "is access" true
              (Ir.Program.is_memory_access (Ir.Program.instr_at p iid)))
          plan.Plan.wp_targets);
    Alcotest.test_case "enable_cf=false produces no PT actions" `Quick
      (fun () ->
        let plan =
          Instrument.Place.compute ~enable_cf:false diamond [ 3 ]
        in
        Hashtbl.iter
          (fun _ acts ->
            if List.mem Plan.Pt_start acts || List.mem Plan.Pt_stop acts then
              Alcotest.fail "unexpected PT action")
          plan.Plan.actions);
    Alcotest.test_case "enable_df=false produces no watchpoint targets" `Quick
      (fun () ->
        let plan =
          Instrument.Place.compute ~enable_df:false Bugbase.Pbzip2.program
            [ 1; 2; 3 ]
        in
        Alcotest.(check (list int)) "no wp" [] plan.Plan.wp_targets);
    Alcotest.test_case "peephole: no toggle churn on tight loop back edges"
      `Quick (fun () ->
        (* loop_sum: track the body statement; the loop head must not
           carry a stop that a start immediately undoes every iteration *)
        let body_iid = 6 in
        let plan = plan_for loop_sum [ body_iid ] in
        let stop_and_near_start =
          Hashtbl.fold
            (fun _iid acts acc ->
              acc
              || (List.mem Plan.Pt_stop acts && List.mem Plan.Pt_start acts))
            plan.Plan.actions false
        in
        Alcotest.(check bool) "no stop+start on one point" false
          stop_and_near_start);
  ]

(* The coverage invariant that once broke: run monitored clients over
   many configurations and check every *executed* tracked statement is
   decoded.  (A tracked statement may legitimately not execute at all.) *)
let coverage_case name program args =
  Alcotest.test_case name `Quick (fun () ->
      let all =
        Ir.Program.all_instrs program
        |> List.map (fun (x : Ir.Types.instr) -> x.iid)
      in
      List.iter
        (fun sigma ->
          let tracked = List.filteri (fun k _ -> k mod sigma = 0) all in
          let plan = plan_for program tracked in
          for seed = 0 to 4 do
            let counters = Exec.Cost.create () in
            let pt = Hw.Pt.create counters in
            let wp = Hw.Watchpoint.create counters in
            let hooks = Instrument.Runtime.hooks ~data_via_pt:false ~plan ~pt ~wp ~wp_allowed:[] in
            let res =
              Exec.Interp.run ~hooks ~counters ~record_gt:true program
                (I.workload ~args seed)
            in
            Hw.Pt.finish pt;
            let decoded =
              Hw.Pt.decode_all pt program
              |> List.concat_map (fun (_, (d : Hw.Pt.decoded)) -> d.d_iids)
              |> List.sort_uniq compare
            in
            let executed =
              List.map snd res.I.executed |> List.sort_uniq compare
            in
            let crash_pc =
              match res.I.outcome with
              | I.Failed rep -> Some rep.pc
              | I.Success -> None
            in
            List.iter
              (fun iid ->
                if
                  List.mem iid executed
                  && (not (List.mem iid decoded))
                  && Some iid <> crash_pc
                then
                  Alcotest.failf
                    "tracked+executed iid %d missing from decode (sigma=%d seed=%d)"
                    iid sigma seed)
              tracked
          done)
        [ 1; 2; 3; 5 ])

let coverage =
  [
    coverage_case "coverage: loop program" loop_sum [ Exec.Value.VInt 7 ];
    coverage_case "coverage: calls" call_chain [ Exec.Value.VInt 3 ];
    coverage_case "coverage: threads" (counter ~locked:true)
      [ Exec.Value.VInt 3 ];
    coverage_case "coverage: curl bug program" Bugbase.Curl.program
      [ Exec.Value.VStr "http://example.com/{a,b}.txt" ];
  ]

let () =
  Alcotest.run "instrument"
    [ ("placement", placement); ("coverage", coverage) ]
