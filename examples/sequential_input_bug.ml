(* Reproduce the paper's Fig. 7: Curl bug #965, a *sequential* bug
   caused by a specific program input.  URLs with unbalanced curly
   braces ("{}{") drive the glob parser down its error path, leaving
   urls->current NULL; next_url() then calls strlen(NULL).

     dune exec examples/sequential_input_bug.exe

   For sequential programs Gist's failure predictors are branches taken
   and data values computed (§3.3): here the winning predictors are the
   NULL value of urls->current and the unbalanced-braces branch. *)

let () =
  let bug = Bugbase.Curl.bug in
  Printf.printf "== %s bug #%s (%s %s) ==\n%s\n\n" bug.name bug.bug_id
    bug.software bug.version bug.description;
  (* Show the workload mix: mostly well-formed URLs, occasionally the
     failing input -- the bug recurs whenever that input recurs. *)
  print_endline "production workloads:";
  Array.iteri
    (fun k input ->
      Printf.printf "  client %d: %s\n" k
        (if String.length input > 48 then String.sub input 0 48 ^ "..."
         else input))
    Bugbase.Curl.inputs;
  print_newline ();
  let _, failure =
    match Bugbase.Common.find_target_failure bug with
    | Some x -> x
    | None -> failwith "the failure did not manifest"
  in
  Printf.printf "failure report: %s\n\n" (Exec.Failure.report_to_string failure);
  let config =
    { Gist.Config.default with Gist.Config.preempt_prob = bug.preempt_prob }
  in
  let d =
    Gist.Server.diagnose ~config
      ~oracle:(Experiments.Oracle.for_bug bug)
      ~bug_name:(bug.name ^ " bug #965") ~failure_type:bug.failure_type
      ~program:bug.program ~workload_of:bug.workload_of ~failure ()
  in
  Fsketch.Render.print d.sketch;
  print_newline ();
  (* All ranked predictors, to show how the statistics separate the
     failing input from the benign ones. *)
  print_endline "full predictor ranking (F-measure, beta = 0.5):";
  List.iteri
    (fun k r ->
      if k < 8 then Fmt.pr "  %2d. %a@." (k + 1) Predict.Stats.pp_ranked r)
    d.sketch.predictors;
  Printf.printf
    "\nThe developers' fix rejected unbalanced braces in the input --\n\
     exactly what the branch + value predictors point to (paper §5.1).\n"
