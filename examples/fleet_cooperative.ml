(* The cooperative side of Gist (paper §3, Fig. 2): many production
   endpoints run the same software; the server ships each an
   instrumentation plan, rotates scarce hardware watchpoints across
   clients, separates failure signatures, and aggregates statistics.
   Finally, contrast Gist's always-on cost with the record/replay
   alternative on the same fleet (the Fig. 13 comparison).

     dune exec examples/fleet_cooperative.exe *)

let () =
  let bug = Bugbase.Memcached.bug in
  Printf.printf "== cooperative fleet on %s bug #%s ==\n\n" bug.name bug.bug_id;
  let _, failure =
    match Bugbase.Common.find_target_failure bug with
    | Some x -> x
    | None -> failwith "no failure"
  in
  let slice = Slicing.Slicer.compute bug.program failure in
  let tracked = Slicing.Slicer.take slice 8 in
  let plan = Instrument.Place.compute bug.program tracked in
  Printf.printf
    "instrumentation plan: %d tracked statements, %d watchpoint targets, %d \
     patch points\n"
    (List.length tracked)
    (List.length plan.Instrument.Plan.wp_targets)
    (Instrument.Plan.n_actions plan);
  (* Watchpoint rotation: each client arms at most 4 debug registers;
     different clients cover different targets (§3.2.3). *)
  let groups =
    Gist.Server.wp_groups ~wp_capacity:4 plan.Instrument.Plan.wp_targets
  in
  Printf.printf "watchpoint rotation groups: %d\n\n" (List.length groups);
  (* Run a small fleet and bucket the outcomes by failure signature
     (kind + pc + stack), the paper's failure identity. *)
  let n_clients = 60 in
  let sigs : (Exec.Failure.signature, int) Hashtbl.t = Hashtbl.create 4 in
  let succ = ref 0 in
  let base = ref 0.0 and extra = ref 0.0 in
  for c = 0 to n_clients - 1 do
    let report =
      Gist.Client.run_one ~preempt_prob:bug.preempt_prob ~plan
        ~wp_allowed:(List.nth groups (c mod List.length groups))
        bug.program (bug.workload_of c)
    in
    base := !base +. report.r_base_cycles;
    extra := !extra +. report.r_extra_cycles;
    match report.r_signature with
    | None -> incr succ
    | Some s ->
      Hashtbl.replace sigs s (1 + Option.value ~default:0 (Hashtbl.find_opt sigs s))
  done;
  Printf.printf "fleet of %d clients: %d successful runs\n" n_clients !succ;
  Hashtbl.iter
    (fun (s : Exec.Failure.signature) n ->
      Printf.printf "  signature %s@pc%d [%s]: %d runs\n" s.s_kind s.s_pc
        (String.concat "<-" s.s_stack) n)
    sigs;
  Printf.printf "fleet-wide Gist overhead: %.2f%%\n\n"
    (100.0 *. !extra /. !base);
  (* The record/replay alternative on the same fleet. *)
  let rr_base = ref 0.0 and rr_extra = ref 0.0 in
  for c = 0 to n_clients - 1 do
    let rec_ =
      Baseline.Rr.record ~preempt_prob:bug.preempt_prob bug.program
        (bug.workload_of c)
    in
    rr_base := !rr_base +. Exec.Cost.base_cycles rec_.rec_counters;
    rr_extra := !rr_extra +. Exec.Cost.rr_extra_cycles rec_.rec_counters
  done;
  Printf.printf
    "the record/replay alternative on the same fleet: %.0f%% overhead\n"
    (100.0 *. !rr_extra /. !rr_base);
  Printf.printf
    "(always-on Gist vs rr is the paper's core practicality argument)\n"
