(* Quickstart: write a small multithreaded program in the IR, let it
   fail in "production", and ask Gist for the failure sketch.

     dune exec examples/quickstart.exe

   The program is a two-thread lost-update bug: both threads do
   balance = balance + amount without holding a lock, and a final
   invariant assertion fails when an update is lost. *)

open Ir.Types
module B = Ir.Builder

let file = "bank.c"
let i = B.file file
let r = B.r
let im = B.im

(* Each teller deposits [n] times: read balance, add, write back. *)
let teller =
  B.func "teller" ~params:[ "n" ]
    [
      B.block "entry"
        [ i 20 "for (k = 0; k < n; k++) {" (Assign ("k", Mov (im 0)));
          i 20 "" (Jmp "loop") ];
      B.block "loop"
        [
          i 20 "for (k = 0; k < n; k++) {"
            (Assign ("more", B.( <% ) (r "k") (r "n")));
          i 20 "" (Branch (r "more", "body", "out"));
        ];
      B.block "body"
        [
          i 21 "int b = balance;" (Load_global ("b", "balance"));
          i 22 "balance = b + 10;" (Assign ("b1", B.( +% ) (r "b") (im 10)));
          i 22 "balance = b + 10;" (Store_global ("balance", r "b1"));
          i 23 "print_receipt(k);" (Assign ("w", Mov (im 0)));
          i 23 "" (Jmp "receipt");
        ];
      B.block "receipt"
        [
          i 23 "print_receipt(k);" (Assign ("wc", B.( <% ) (r "w") (im 60)));
          i 23 "" (Branch (r "wc", "receipt_body", "next"));
        ];
      B.block "receipt_body"
        [
          i 23 "print_receipt(k);" (Assign ("w", B.( +% ) (r "w") (im 1)));
          i 23 "" (Jmp "receipt");
        ];
      B.block "next"
        [
          i 24 "}" (Assign ("k", B.( +% ) (r "k") (im 1)));
          i 24 "" (Jmp "loop");
        ];
      B.block "out" [ i 25 "return;" (Ret (Some (im 0))) ];
    ]

let main =
  B.func "main" ~params:[ "n" ]
    [
      B.block "entry"
        [
          i 10 "t1 = spawn(teller, n);" (Spawn ("t1", "teller", [ r "n" ]));
          i 11 "t2 = spawn(teller, n);" (Spawn ("t2", "teller", [ r "n" ]));
          i 12 "join(t1); join(t2);" (Join (r "t1"));
          i 12 "join(t1); join(t2);" (Join (r "t2"));
          i 13 "int total = balance;" (Load_global ("total", "balance"));
          i 14 "expected = 2 * n * 10;" (Assign ("e1", B.( *% ) (r "n") (im 20)));
          i 15 "assert(total == expected);"
            (Assign ("ok", B.( =% ) (r "total") (r "e1")));
          i 15 "assert(total == expected);" (Assert (r "ok", "lost deposit"));
          i 16 "return 0;" (Ret (Some (im 0)));
        ];
    ]

let program =
  Ir.Program.make ~globals:[ B.global "balance" ] ~main:"main" [ teller; main ]

(* Production workloads: each client deposits a few times with its own
   schedule seed. *)
let workload_of c =
  Exec.Interp.workload ~args:[ Exec.Value.VInt (3 + (c mod 3)) ] (c * 7919)

let () =
  print_endline "== Gist quickstart: diagnosing a lost-update bug ==\n";
  (* 1. A failure occurs in production and is reported (stack trace +
        failing statement), paper Fig. 2 step 1. *)
  match Gist.Server.first_failure program workload_of with
  | None -> print_endline "no failure manifested; try more clients"
  | Some failure ->
    Printf.printf "production failure: %s\n\n"
      (Exec.Failure.report_to_string failure);
    (* 2. Diagnose: static slice + adaptive slice tracking over a
          cooperative fleet. *)
    let d =
      Gist.Server.diagnose ~bug_name:"bank lost-update"
        ~failure_type:"Concurrency bug, assertion failure" ~program
        ~workload_of ~failure
        ~oracle:(fun sketch ->
          (* the developer stops once a high-precision *cross-thread*
             predictor (a race or atomicity pattern) is in the sketch *)
          List.exists
            (fun (r : Predict.Stats.ranked) ->
              (match r.predictor with
               | Predict.Predictor.Race _ | Atomicity _ -> true
               | _ -> false)
              && r.precision >= 0.9 && r.n_failing_with >= 2)
            sketch.predictors)
        ()
    in
    Printf.printf
      "diagnosis: %d AsT iterations, %d failure recurrences, %d monitored \
       runs, %.2f%% fleet overhead\n\n"
      d.iterations d.recurrences d.total_runs d.avg_overhead_pct;
    (* 3. The failure sketch (paper Fig. 1 format). *)
    Fsketch.Render.print d.sketch
