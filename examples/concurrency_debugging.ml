(* Reproduce the paper's flagship example (Fig. 1): the pbzip2 bug where
   main frees and NULLs the queue mutex while the consumer thread is
   exiting, and the consumer's final mutex_unlock(f->mut) segfaults.

     dune exec examples/concurrency_debugging.exe

   The walk-through mirrors the paper's pipeline stage by stage:
   failure report -> static slice -> adaptive slice tracking ->
   refinement -> statistical root-cause identification -> sketch. *)

let () =
  let bug = Bugbase.Pbzip2.bug in
  Printf.printf "== %s bug %s (%s %s) ==\n%s\n\n" bug.name bug.bug_id
    bug.software bug.version bug.description;
  (* Stage 1: the production failure report. *)
  let _, failure =
    match Bugbase.Common.find_target_failure bug with
    | Some x -> x
    | None -> failwith "the failure did not manifest"
  in
  Printf.printf "[1] failure report : %s\n"
    (Exec.Failure.report_to_string failure);
  (* Stage 2: interprocedural static backward slice (Algorithm 1). *)
  let slice = Slicing.Slicer.compute bug.program failure in
  Printf.printf "[2] static slice   : %d IR instructions / %d source lines\n"
    (Slicing.Slicer.instr_count slice)
    (Slicing.Slicer.source_loc_count slice);
  Fmt.pr "%a@." Slicing.Slicer.pp slice;
  (* Stage 3-5: AsT + refinement + statistics, driven by the server. *)
  let config =
    { Gist.Config.default with Gist.Config.preempt_prob = bug.preempt_prob }
  in
  let d =
    Gist.Server.diagnose ~config
      ~oracle:(Experiments.Oracle.for_bug bug)
      ~bug_name:(bug.name ^ " bug #1") ~failure_type:bug.failure_type
      ~program:bug.program ~workload_of:bug.workload_of ~failure ()
  in
  List.iter
    (fun (it : Gist.Server.iteration_info) ->
      Printf.printf
        "[3] AsT iteration  : sigma=%-3d tracked=%-3d failing runs=%d \
         successful runs=%d overhead=%.2f%%\n"
        it.it_sigma it.it_tracked it.it_fails it.it_succs it.it_avg_overhead)
    d.trace;
  Printf.printf
    "[4] latency        : %d failure recurrences across %d monitored runs\n"
    d.recurrences d.total_runs;
  (* Stage 6: the sketch, compared to the hand-built ideal (§5.2). *)
  let acc =
    Fsketch.Accuracy.of_sketch d.sketch ~ideal:(Bugbase.Common.ideal bug)
  in
  Printf.printf
    "[5] accuracy       : relevance %.1f%%, ordering %.1f%%, overall %.1f%%\n\n"
    acc.relevance acc.ordering acc.overall;
  Fsketch.Render.print d.sketch
