(* Bring-your-own program: load a .gir file (the textual IR format of
   [Ir.Text]), let it fail in production, diagnose it with Gist, and
   export the sketch as JSON for tooling.

     dune exec examples/byo_program.exe [path.gir]

   Without an argument, a small racy logger is written to a temp file
   first, so the example is self-contained. *)

let default_source =
  {|# A tiny racy logger: two writers race on the shared cursor.
global cursor = 0

func writer(n) {
entry:
  %k = mov 0 @ logger.c:10 "for (k = 0; k < n; k++) {"
  jmp loop @ logger.c:10
loop:
  %more = lt %k, %n @ logger.c:10 "for (k = 0; k < n; k++) {"
  br %more ? body : out @ logger.c:10
body:
  %w = mov 0 @ logger.c:11 "format(entry);"
  jmp fmt @ logger.c:11
fmt:
  %busy = lt %w, 60 @ logger.c:11 "format(entry);"
  br %busy ? fmt_body : emit @ logger.c:11
fmt_body:
  %w = add %w, 1 @ logger.c:11 "format(entry);"
  jmp fmt @ logger.c:11
emit:
  %c = load @cursor @ logger.c:12 "int c = cursor;"
  %c1 = add %c, 1 @ logger.c:13 "cursor = c + 1;"
  store @cursor <- %c1 @ logger.c:13 "cursor = c + 1;"
  %k = add %k, 1 @ logger.c:14 "}"
  jmp loop @ logger.c:14
out:
  ret 0 @ logger.c:15 "return;"
}

func main(n) {
entry:
  %t1 = spawn writer(%n) @ logger.c:20 "spawn(writer, n);"
  %t2 = spawn writer(%n) @ logger.c:21 "spawn(writer, n);"
  join %t1 @ logger.c:22 "join all;"
  join %t2 @ logger.c:22 "join all;"
  %total = load @cursor @ logger.c:23 "int total = cursor;"
  %e = mul %n, 2 @ logger.c:24 "expected = 2 * n;"
  %ok = eq %total, %e @ logger.c:25 "assert(total == expected);"
  assert %ok "log cursor lost updates" @ logger.c:25 "assert(total == expected);"
  ret 0 @ logger.c:26 "return 0;"
}

main main
|}

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else begin
      let path = Filename.temp_file "byo" ".gir" in
      let oc = open_out path in
      output_string oc default_source;
      close_out oc;
      Printf.printf "wrote the demo program to %s\n\n" path;
      path
    end
  in
  match Ir.Text.load path with
  | Error e ->
    prerr_endline ("cannot load program: " ^ e);
    exit 1
  | Ok program ->
    let workload_of c =
      Exec.Interp.workload ~args:[ Exec.Value.VInt (2 + (c mod 3)) ] (c * 6151)
    in
    (match Gist.Server.first_failure program workload_of with
     | None -> print_endline "no failure manifested in 2000 production runs"
     | Some failure ->
       Printf.printf "production failure: %s\n\n"
         (Exec.Failure.report_to_string failure);
       let d =
         Gist.Server.diagnose ~bug_name:(Filename.basename path)
           ~failure_type:"Concurrency bug, assertion failure" ~program
           ~workload_of ~failure
           ~oracle:(fun sketch ->
             List.exists
               (fun (r : Predict.Stats.ranked) ->
                 (match r.predictor with
                  | Predict.Predictor.Race _ | Atomicity _ -> true
                  | _ -> false)
                 && r.precision >= 0.9)
               sketch.predictors)
           ()
       in
       Fsketch.Render.print d.sketch;
       print_newline ();
       print_endline "JSON export (for IDE/tooling integration):";
       print_endline (Fsketch.Export.to_json d.sketch))
