(** Software-only tracing baselines.

    [full_trace] models control-flow tracing without Intel PT: every
    executed instruction pays a software instrumentation event, with
    branches and returns paying extra (the paper's PIN-based software
    PT simulator ran 3x-5,000x slower, §6).

    [full_pt] is the hardware comparison point: Intel PT enabled for
    the whole run (the Fig. 13 setup). *)

val full_trace :
  ?max_steps:int -> ?preempt_prob:float -> Ir.Types.program ->
  Exec.Interp.workload -> Exec.Interp.result * float

val full_pt :
  ?max_steps:int -> ?preempt_prob:float -> Ir.Types.program ->
  Exec.Interp.workload -> Exec.Interp.result * float
