(** A Mozilla-rr-style record/replay baseline (paper §5.3, Fig. 13).

    Recording captures every source of nondeterminism — the scheduling
    decision of every step and the value of every shared read — and
    each captured event pays the recording cost in the model.  Replay
    re-executes under the recorded schedule and must reproduce the
    identical outcome; {!replay} validates that, which is what makes
    this a faithful record/replay system rather than a cost counter. *)

type recording = {
  rec_workload : Exec.Interp.workload;
  rec_schedule : int array;       (** chosen tid per step *)
  rec_read_values : string list;  (** shared-read values, in order *)
  rec_outcome : Exec.Interp.outcome;
  rec_counters : Exec.Cost.t;
  rec_steps : int;
}

val record :
  ?max_steps:int -> ?preempt_prob:float -> Ir.Types.program ->
  Exec.Interp.workload -> recording

(** Replay under the recorded schedule; returns the replay outcome and
    whether it matches the recording (it must, by determinism). *)
val replay :
  ?max_steps:int -> Ir.Types.program -> recording ->
  Exec.Interp.outcome * bool

val overhead_percent : recording -> float
