(* A Mozilla-rr-style record/replay baseline (paper §5.3, Fig. 13).

   Recording captures every source of nondeterminism: the scheduling
   decision of every step and the value of every shared-memory read
   (in a real rr these are syscall results, signal timings and shared
   reads).  Each captured event pays the recording cost in the model.

   Replay re-executes under the recorded schedule and must reproduce
   the identical outcome -- validated by [replay], which is what makes
   this a faithful record/replay system rather than a cost counter. *)

type recording = {
  rec_workload : Exec.Interp.workload;
  rec_schedule : int array;          (* chosen tid per step *)
  rec_read_values : string list;     (* recorded shared-read values, in order *)
  rec_outcome : Exec.Interp.outcome;
  rec_counters : Exec.Cost.t;
  rec_steps : int;
}

let record ?(max_steps = 400_000) ?(preempt_prob = 0.35) program workload =
  let counters = Exec.Cost.create () in
  let hooks = Exec.Interp.no_hooks () in
  let schedule = ref [] in
  let reads = ref [] in
  hooks.sched <-
    (fun ~choice ->
      schedule := choice :: !schedule;
      counters.rr_events <- counters.rr_events + 1);
  hooks.mem_access <-
    (fun ~tid:_ ~instr:_ ~addr:_ ~rw ~value ->
      match rw with
      | Exec.Interp.Read ->
        reads := Exec.Value.to_string value :: !reads;
        counters.rr_events <- counters.rr_events + 1
      | Exec.Interp.Write -> ());
  let result =
    Exec.Interp.run ~hooks ~counters ~max_steps ~preempt_prob program workload
  in
  {
    rec_workload = workload;
    rec_schedule = Array.of_list (List.rev !schedule);
    rec_read_values = List.rev !reads;
    rec_outcome = result.outcome;
    rec_counters = counters;
    rec_steps = result.steps;
  }

(* Replay under the recorded schedule; returns the replay outcome and
   whether it matches the recording (it must, by determinism). *)
let replay ?(max_steps = 400_000) program (r : recording) =
  let cursor = ref 0 in
  let pick ~eligible:_ =
    if !cursor >= Array.length r.rec_schedule then None
    else begin
      let t = r.rec_schedule.(!cursor) in
      incr cursor;
      Some t
    end
  in
  let result =
    Exec.Interp.run ~pick ~max_steps program r.rec_workload
  in
  let same =
    match (result.outcome, r.rec_outcome) with
    | Exec.Interp.Success, Exec.Interp.Success -> true
    | Exec.Interp.Failed a, Exec.Interp.Failed b ->
      Exec.Failure.signature a = Exec.Failure.signature b
    | _ -> false
  in
  (result.outcome, same)

let overhead_percent (r : recording) =
  Exec.Cost.rr_overhead_percent r.rec_counters
