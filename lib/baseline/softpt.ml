(* Software control-flow tracing: what failure sketching costs without
   Intel PT (paper §6: the authors' PIN-based software simulator ran
   3x to 5,000x slower).  Every executed instruction pays a software
   instrumentation event; branches and returns pay extra (the
   trampoline + trace-buffer write). *)

let full_trace ?(max_steps = 400_000) ?(preempt_prob = 0.35) program workload =
  let counters = Exec.Cost.create () in
  let hooks = Exec.Interp.no_hooks () in
  hooks.step <-
    (fun ~tid:_ ~instr:_ ->
      counters.sw_trace_events <- counters.sw_trace_events + 1);
  hooks.branch <-
    (fun ~tid:_ ~instr:_ ~taken:_ ->
      counters.sw_trace_events <- counters.sw_trace_events + 4);
  hooks.ret <-
    (fun ~tid:_ ~instr:_ ~resume:_ ->
      counters.sw_trace_events <- counters.sw_trace_events + 4);
  let result =
    Exec.Interp.run ~hooks ~counters ~max_steps ~preempt_prob program workload
  in
  (result, Exec.Cost.sw_trace_overhead_percent counters)

(* Full hardware PT tracing of the same run, for the Fig. 13 and §6
   comparisons. *)
let full_pt ?(max_steps = 400_000) ?(preempt_prob = 0.35) program workload =
  let counters = Exec.Cost.create () in
  let pt = Hw.Pt.create counters in
  let hooks = Instrument.Runtime.full_tracing_hooks ~pt in
  let result =
    Exec.Interp.run ~hooks ~counters ~max_steps ~preempt_prob program workload
  in
  Hw.Pt.finish pt;
  (result, Exec.Cost.pt_overhead_percent counters)
