(** Evaluations of the paper's §6 future-work proposals: PTWRITE data
    packets instead of watchpoints, range/inequality value predicates,
    and value redaction for user privacy. *)

type ptwrite_row = {
  pw_name : string;
  wp_accuracy : float;
  pw_accuracy : float;
  wp_overhead : float;
  pw_overhead : float;
  wp_recurrences : int;
  pw_recurrences : int;
}

val ptwrite_row : Bugbase.Common.t -> ptwrite_row option
val ptwrite_rows : unit -> ptwrite_row list

type range_row = {
  rg_name : string;
  exact_best_f : float;
  range_best_f : float;
}

val range_row : Bugbase.Common.t -> range_row option
val range_rows : unit -> range_row list

type alias_row = {
  al_name : string;
  plain_instrs : int;
  alias_instrs : int;
  growth_pct : float;
}

val alias_row : Bugbase.Common.t -> alias_row option
val alias_rows : unit -> alias_row list

val print_ptwrite : unit -> unit
val print_alias : unit -> unit
val print_ranges : unit -> unit
val print_redaction : unit -> unit
val print : unit -> unit
