(** The "developer decides AsT may stop" callback (paper §3.2.1).

    The developer is modelled as satisfied when the computed sketch
    covers every statement of the bug's root-cause core {e and} carries
    at least one convincing failure predictor (high precision, observed
    in a failing run). *)

val convincing_predictor : Fsketch.Sketch.t -> bool
val covers_ideal : Fsketch.Accuracy.ideal -> Fsketch.Sketch.t -> bool
val sufficient : ideal:Fsketch.Accuracy.ideal -> Fsketch.Sketch.t -> bool

(** The oracle for a bug, ready to pass to {!Gist.Server.diagnose}. *)
val for_bug : Bugbase.Common.t -> Fsketch.Sketch.t -> bool
