(* Table 1: per bug, software size, static slice size (source LOC and
   IR instructions), ideal and Gist-computed sketch sizes, and the
   failure-sketch computation latency (# failure recurrences, wall
   time, offline analysis time). *)

type row = {
  name : string;
  version : string;
  loc : int;
  bug_id : string;
  slice_src : int;
  slice_instr : int;
  ideal_src : int;
  ideal_instr : int;
  gist_src : int;
  gist_instr : int;
  recurrences : int;
  total_runs : int;
  wall_time_s : float;
  offline_time_s : float;
}

let row_of_result (r : Harness.bug_result) =
  let gist_src, gist_instr = Harness.sketch_size r in
  let ideal_src, ideal_instr = Harness.ideal_size r in
  {
    name = r.bug.name;
    version = r.bug.version;
    loc = r.bug.claimed_loc;
    bug_id = r.bug.bug_id;
    slice_src = Slicing.Slicer.source_loc_count r.diagnosis.slice;
    slice_instr = Slicing.Slicer.instr_count r.diagnosis.slice;
    ideal_src;
    ideal_instr;
    gist_src;
    gist_instr;
    recurrences = r.diagnosis.recurrences;
    total_runs = r.diagnosis.total_runs;
    wall_time_s = r.wall_time_s;
    offline_time_s = r.diagnosis.offline_time_s;
  }

let rows () = List.map row_of_result (Harness.results ())

let print () =
  print_endline "Table 1: Bugs used to evaluate Gist.";
  print_endline
    "(slice and sketch sizes in source LOC (IR instructions); latency as\n\
     # failure recurrences <wall time> (offline analysis time))";
  Printf.printf "%-13s %-8s %9s %-8s %15s %13s %13s %5s %7s %22s\n"
    "Bug" "Version" "Size[LOC]" "BugID" "Static slice" "Ideal sketch"
    "Gist sketch" "#rec" "#runs" "Latency";
  List.iter
    (fun r ->
      Printf.printf
        "%-13s %-8s %9d %-8s %8d (%4d) %6d (%4d) %6d (%4d) %5d %7d %4d <%s> (%s)\n"
        r.name r.version r.loc r.bug_id r.slice_src r.slice_instr r.ideal_src
        r.ideal_instr r.gist_src r.gist_instr r.recurrences r.total_runs
        r.recurrences
        (Harness.fmt_mmss r.wall_time_s)
        (Harness.fmt_mmss r.offline_time_s))
    (rows ());
  print_newline ()
