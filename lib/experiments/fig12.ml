(* Fig. 12: tradeoff between the initial tracked slice size sigma_0 and
   the resulting accuracy and root-cause-diagnosis latency (paper: as
   long as sigma_0 undershoots the best sketch, AsT still reaches the
   highest accuracy at a latency that shrinks as sigma_0 grows;
   overshooting lowers accuracy because extraneous statements join the
   sketch). *)

let sigmas = [ 2; 4; 8; 16; 23; 32 ]

type point = {
  sigma0 : int;
  avg_accuracy : float;
  avg_latency : float; (* failure recurrences *)
  avg_overhead : float;
}

let point_for sigma0 =
  let results =
    List.filter_map Fun.id
      (Harness.map_bugs
         (fun (bug : Bugbase.Common.t) ->
           let config = { Gist.Config.default with Gist.Config.sigma0 } in
           Harness.diagnose_bug ~config bug)
         Bugbase.Registry.all)
  in
  {
    sigma0;
    avg_accuracy =
      Harness.mean
        (List.map (fun (r : Harness.bug_result) -> r.accuracy.overall) results);
    avg_latency =
      Harness.mean
        (List.map
           (fun (r : Harness.bug_result) ->
             float_of_int r.diagnosis.recurrences)
           results);
    avg_overhead =
      Harness.mean
        (List.map
           (fun (r : Harness.bug_result) -> r.diagnosis.avg_overhead_pct)
           results);
  }

let points_memo : point list Lazy.t = lazy (List.map point_for sigmas)
let points () = Lazy.force points_memo

let print () =
  print_endline
    "Fig. 12: Tradeoff between initial slice size sigma_0 and the\n\
     resulting accuracy and latency (# failure recurrences).";
  Printf.printf "%-8s %12s %12s %12s\n" "sigma0" "accuracy(%)" "latency(#rec)"
    "overhead(%)";
  List.iter
    (fun p ->
      Printf.printf "%-8d %12.1f %12.2f %12.2f\n" p.sigma0 p.avg_accuracy
        p.avg_latency p.avg_overhead)
    (points ());
  print_newline ()
