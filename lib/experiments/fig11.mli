(** Fig. 11: Gist's average (fleet-aggregate) runtime overhead as a
    function of the tracked slice size. *)

val sizes : int list
val clients_per_point : int

type point = { size : int; overhead_pct : float }

val overhead_at : int -> float
val points : unit -> point list
val print : unit -> unit
