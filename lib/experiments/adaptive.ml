(* PR 7 experiment: adaptive early-exit AsT vs the exhaustive
   reference.  Every Bugbase bug is diagnosed twice -- once with
   [Gist.Config.default] (the exhaustive oracle) and once with
   [Gist.Config.adaptive] (sequential stopping rule on) -- and the two
   runs are compared on clients dispatched, online fleet time and the
   identity of the top-ranked predictor.

   The budget the stopping rule saves is then reallocated to the
   *ambiguous* bugs (the ones whose adaptive run never converged): each
   gets an equal share of the saved dispatches as extra
   [max_clients_per_iter] headroom and is re-diagnosed, modelling a
   fleet whose total monitoring budget is fixed but steered toward the
   bugs that still need evidence. *)

type row = {
  r_bug : string;
  r_exh_dispatched : int;
  r_exh_online_s : float;
  r_exh_iterations : int;
  r_ad_dispatched : int;
  r_ad_online_s : float;
  r_ad_iterations : int;
  r_ad_early_iters : int;   (* iterations cut short at a checkpoint *)
  r_converged : bool;       (* adaptive run stopped by the rule *)
  r_top_identical : bool;   (* same top-ranked predictor in both modes *)
  r_top : string option;    (* the (shared) top predictor, printed *)
}

type realloc = {
  ra_bug : string;
  ra_extra : int;           (* extra per-iteration client headroom *)
  ra_dispatched : int;      (* dispatches in the boosted re-run *)
  ra_converged : bool;      (* did the boosted run converge? *)
}

type t = {
  rows : row list;
  total_exh : int;          (* exhaustive dispatches, all bugs *)
  total_ad : int;           (* adaptive dispatches, all bugs *)
  ratio : float;            (* total_exh / total_ad *)
  mean_ratio : float;       (* Bugbase mean of per-bug exh/ad ratios *)
  saved : int;              (* total_exh - total_ad *)
  reallocated : realloc list;
}

(* The fleet regime the comparison runs under.  Config.default's toy
   quotas (3 failing / 8 successful runs per iteration) gather so
   little evidence per iteration that the 95% intervals rarely
   separate before the iteration cap; a production fleet dispatches
   thousands of clients per refinement round.  Raising the quotas (and
   the per-iteration cap to match) gives the stopping rule the
   evidence stream it is designed for, and the wider watchpoint budget
   lets rotation groups cover discriminating values earlier, which is
   what keeps the two modes' top predictors identical at the moment
   the rule fires. *)
let fleet_base =
  {
    Gist.Config.default with
    fail_quota = 12;
    succ_quota = 64;
    max_clients_per_iter = 3000;
    wp_capacity = 8;
  }

let top_of (d : Gist.Server.diagnosis) =
  match d.sketch.Fsketch.Sketch.predictors with
  | [] -> None
  | r :: _ -> Some r.Predict.Stats.predictor

let early_iters (d : Gist.Server.diagnosis) =
  List.length
    (List.filter
       (fun (it : Gist.Server.iteration_info) -> it.it_early_exit <> None)
       d.trace)

(* Diagnose one bug in both modes on top of [base] (so fault-regime
   sweeps can reuse the comparison).  Neither mode gets the developer
   oracle: the stopping rule is precisely the stand-in for §3.2.1's
   developer, so the honest comparison is unattended production in
   both modes. *)
let compare_bug ?pool ~base (bug : Bugbase.Common.t) =
  let exh =
    Harness.diagnose_bug ~config:Gist.Config.{ base with early_exit = false }
      ?pool ~with_oracle:false bug
  in
  let ad =
    Harness.diagnose_bug ~config:Gist.Config.{ base with early_exit = true }
      ?pool ~with_oracle:false bug
  in
  match (exh, ad) with
  | Some e, Some a ->
    let te = top_of e.diagnosis and ta = top_of a.diagnosis in
    let identical =
      match (te, ta) with
      | None, None -> true
      | Some p, Some q -> Predict.Predictor.compare p q = 0
      | _ -> false
    in
    Some
      ( {
          r_bug = bug.name;
          r_exh_dispatched = e.diagnosis.fleet.f_dispatched;
          r_exh_online_s = e.diagnosis.online_time_s;
          r_exh_iterations = e.diagnosis.iterations;
          r_ad_dispatched = a.diagnosis.fleet.f_dispatched;
          r_ad_online_s = a.diagnosis.online_time_s;
          r_ad_iterations = a.diagnosis.iterations;
          r_ad_early_iters = early_iters a.diagnosis;
          r_converged = Gist.Server.converged a.diagnosis;
          r_top_identical = identical;
          r_top = Option.map Predict.Predictor.to_string ta;
        },
        (e, a) )
  | _ -> None

let run ?(base = fleet_base) ?(bugs = Bugbase.Registry.all) ?pool () =
  let compared =
    List.filter_map Fun.id
      (Harness.map_bugs (fun b -> compare_bug ?pool ~base b) bugs)
  in
  let rows = List.map fst compared in
  let total_exh = List.fold_left (fun s r -> s + r.r_exh_dispatched) 0 rows in
  let total_ad = List.fold_left (fun s r -> s + r.r_ad_dispatched) 0 rows in
  let saved = total_exh - total_ad in
  (* Reallocation: split the saved dispatches evenly across the
     ambiguous bugs as extra per-iteration headroom (spread over the
     iteration cap so one iteration cannot eat the whole grant). *)
  let ambiguous =
    List.filter (fun r -> not r.r_converged) rows
    |> List.map (fun r -> r.r_bug)
  in
  let reallocated =
    match ambiguous with
    | [] -> []
    | _ when saved <= 0 -> []
    | _ ->
      let per_bug = saved / List.length ambiguous in
      let extra = per_bug / base.Gist.Config.max_iterations in
      if extra <= 0 then []
      else
        List.filter_map Fun.id
          (Harness.map_bugs
             (fun name ->
               match
                 List.find_opt
                   (fun (b : Bugbase.Common.t) -> b.name = name)
                   bugs
               with
               | None -> None
               | Some bug ->
                 let config =
                   Gist.Config.
                     {
                       base with
                       early_exit = true;
                       max_clients_per_iter =
                         base.max_clients_per_iter + extra;
                     }
                 in
                 Option.map
                   (fun (res : Harness.bug_result) ->
                     {
                       ra_bug = name;
                       ra_extra = extra;
                       ra_dispatched = res.diagnosis.fleet.f_dispatched;
                       ra_converged = Gist.Server.converged res.diagnosis;
                     })
                   (Harness.diagnose_bug ~config ?pool ~with_oracle:false bug))
             ambiguous)
  in
  {
    rows;
    total_exh;
    total_ad;
    ratio =
      (if total_ad = 0 then 0.0
       else float_of_int total_exh /. float_of_int total_ad);
    (* The headline savings metric: the mean over bugs of each bug's
       own exhaustive/adaptive ratio.  The ratio of totals understates
       the rule's effect because a couple of rare-failure bugs
       dominate the totals while staying ambiguous in both modes. *)
    mean_ratio =
      Harness.mean
        (List.map
           (fun r ->
             if r.r_ad_dispatched = 0 then 1.0
             else
               float_of_int r.r_exh_dispatched
               /. float_of_int r.r_ad_dispatched)
           rows);
    saved;
    reallocated;
  }

let print () =
  let t = run () in
  Printf.printf
    "Adaptive early-exit AsT vs exhaustive (clients dispatched)\n\n";
  Printf.printf "%-14s %10s %10s %6s %6s %5s %5s  %s\n" "bug" "exhaustive"
    "adaptive" "it(ex)" "it(ad)" "early" "top=" "top predictor";
  List.iter
    (fun r ->
      Printf.printf "%-14s %10d %10d %6d %6d %5d %5s  %s\n" r.r_bug
        r.r_exh_dispatched r.r_ad_dispatched r.r_exh_iterations
        r.r_ad_iterations r.r_ad_early_iters
        (if r.r_top_identical then "yes" else "NO")
        (Option.value ~default:"-" r.r_top))
    t.rows;
  Printf.printf "\ntotal: exhaustive %d, adaptive %d  (%.2fx fewer, %d saved)\n"
    t.total_exh t.total_ad t.ratio t.saved;
  Printf.printf "mean per-bug ratio: %.2fx fewer online reports\n" t.mean_ratio;
  (match List.filter (fun r -> not r.r_top_identical) t.rows with
   | [] -> Printf.printf "top predictor identical on every bug\n"
   | l ->
     Printf.printf "top predictor DIVERGED on %d bug(s): %s\n" (List.length l)
       (String.concat ", " (List.map (fun r -> r.r_bug) l)));
  match t.reallocated with
  | [] -> Printf.printf "no ambiguous bugs: nothing to reallocate\n"
  | l ->
    Printf.printf
      "\nreallocated %d saved dispatches to %d ambiguous bug(s):\n" t.saved
      (List.length l);
    List.iter
      (fun ra ->
        Printf.printf "  %-14s +%d/iter -> %d dispatched, %s\n" ra.ra_bug
          ra.ra_extra ra.ra_dispatched
          (if ra.ra_converged then "converged" else "still ambiguous"))
      l
