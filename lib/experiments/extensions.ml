(* Evaluations of the paper's §6 future-work proposals, implemented in
   this reproduction:

   1. PTWRITE data packets instead of hardware watchpoints ("if Intel
      PT also captured data addresses and values along with the
      control-flow, we could eliminate the need for hardware
      watchpoints and the complexity of a cooperative approach").
   2. Range/inequality predicates over data values ("we plan to track
      range and inequality predicates in Gist to provide richer
      information on data values").
   3. Value redaction for user privacy ("we plan to investigate ways to
      quantify and anonymize the amount of information Gist ships from
      production runs at user endpoints").

   Plus the quantification of a design *decision* of §3.1: how much an
   Andersen-style alias analysis would inflate the static slices Gist
   must monitor (the reason the paper's slicer is alias-free). *)

type ptwrite_row = {
  pw_name : string;
  wp_accuracy : float;
  pw_accuracy : float;
  wp_overhead : float;
  pw_overhead : float;
  wp_recurrences : int;
  pw_recurrences : int;
}

let ptwrite_row (bug : Bugbase.Common.t) =
  let with_source data_source =
    let config = { Gist.Config.default with Gist.Config.data_source } in
    Harness.diagnose_bug ~config bug
  in
  match (with_source Gist.Config.Watchpoints, with_source Gist.Config.Ptwrite) with
  | Some wp, Some pw ->
    Some
      {
        pw_name = bug.name;
        wp_accuracy = wp.accuracy.overall;
        pw_accuracy = pw.accuracy.overall;
        wp_overhead = wp.diagnosis.avg_overhead_pct;
        pw_overhead = pw.diagnosis.avg_overhead_pct;
        wp_recurrences = wp.diagnosis.recurrences;
        pw_recurrences = pw.diagnosis.recurrences;
      }
  | _ -> None

let ptwrite_rows_memo : ptwrite_row list Lazy.t =
  lazy
    (List.filter_map Fun.id
       (Harness.map_bugs ptwrite_row Bugbase.Registry.all))

let ptwrite_rows () = Lazy.force ptwrite_rows_memo

let print_ptwrite () =
  print_endline
    "Extension 1 (paper sec. 6): PTWRITE data packets vs hardware\n\
     watchpoints (accuracy %, fleet overhead %, failure recurrences).\n\
     PTWRITE removes the 4-register budget and the cooperative\n\
     rotation and is cheaper per event -- but captures data only while\n\
     tracing is ON, where an armed watchpoint keeps trapping: a real\n\
     coverage trade-off the paper's proposal glosses over.";
  Printf.printf "%-13s %9s %9s %9s %9s %6s %6s\n" "Bug" "acc(wp)" "acc(ptw)"
    "ovh(wp)" "ovh(ptw)" "recwp" "recptw";
  List.iter
    (fun r ->
      Printf.printf "%-13s %9.1f %9.1f %9.2f %9.2f %6d %6d\n" r.pw_name
        r.wp_accuracy r.pw_accuracy r.wp_overhead r.pw_overhead
        r.wp_recurrences r.pw_recurrences)
    (ptwrite_rows ());
  let avg f = Harness.mean (List.map f (ptwrite_rows ())) in
  Printf.printf "%-13s %9.1f %9.1f %9.2f %9.2f\n\n" "AVERAGE"
    (avg (fun r -> r.wp_accuracy))
    (avg (fun r -> r.pw_accuracy))
    (avg (fun r -> r.wp_overhead))
    (avg (fun r -> r.pw_overhead))

(* ------------------------------------------------------------------ *)

type range_row = {
  rg_name : string;
  exact_best_f : float; (* best F among Data_value predictors *)
  range_best_f : float; (* best F among Value_range predictors *)
}

(* Best value-predictor F-measure with and without range predicates:
   exact values fragment the statistics when every failing run leaks a
   different number (e.g. Transmission's leftover counter is -4 in one
   run and -8 in another), while a "< 0" predicate unifies them. *)
let range_row (bug : Bugbase.Common.t) =
  (* Gather several failing runs so value diversity (different leaked
     counters per failing run) is visible to the statistics. *)
  let config =
    {
      Gist.Config.default with
      Gist.Config.range_predicates = true;
      fail_quota = 4;
      preempt_prob = bug.preempt_prob;
    }
  in
  match Harness.diagnose_bug ~config bug with
  | None -> None
  | Some r ->
    let best pred_kind =
      List.fold_left
        (fun acc (p : Predict.Stats.ranked) ->
          if Predict.Predictor.kind_name p.predictor = pred_kind then
            max acc p.f_measure
          else acc)
        0.0 r.diagnosis.sketch.predictors
    in
    Some
      { rg_name = bug.name; exact_best_f = best "value";
        range_best_f = best "range" }

let range_rows_memo : range_row list Lazy.t =
  lazy
    (List.filter_map Fun.id
       (Harness.map_bugs range_row Bugbase.Registry.all))

let range_rows () = Lazy.force range_rows_memo

let print_ranges () =
  print_endline
    "Extension 2 (paper sec. 6): range/inequality value predicates.\n\
     Best F-measure of exact-value vs range predictors per bug\n\
     (ranges win when failing runs leak different concrete values).";
  Printf.printf "%-13s %12s %12s\n" "Bug" "F(exact)" "F(range)";
  List.iter
    (fun r ->
      Printf.printf "%-13s %12.3f %12.3f%s\n" r.rg_name r.exact_best_f
        r.range_best_f
        (if r.range_best_f > r.exact_best_f +. 0.001 then "  <- range wins"
         else ""))
    (range_rows ());
  print_newline ()

(* ------------------------------------------------------------------ *)

let print_redaction () =
  print_endline
    "Extension 3 (paper sec. 6): value redaction for user privacy.\n\
     Diagnosing the input-dependent Curl bug with string values hashed\n\
     before leaving the clients:";
  let bug = Bugbase.Curl.bug in
  (match Bugbase.Common.find_target_failure bug with
   | None -> print_endline "  (failure did not manifest)"
   | Some (_, failure) ->
     let config =
       {
         Gist.Config.default with
         Gist.Config.redact_values = true;
         preempt_prob = bug.preempt_prob;
       }
     in
     let d =
       Gist.Server.diagnose ~config ~oracle:(Oracle.for_bug bug)
         ~bug_name:bug.name ~failure_type:bug.failure_type
         ~program:bug.program ~workload_of:bug.workload_of ~failure ()
     in
     let acc =
       Fsketch.Accuracy.of_sketch d.sketch ~ideal:(Bugbase.Common.ideal bug)
     in
     Printf.printf
       "  accuracy %.1f%% with redaction (the NULL-value root-cause\n\
       \  predictor is unaffected; raw user URLs never leave the client).\n"
       acc.overall;
     let leaked =
       List.exists
         (fun (r : Predict.Stats.ranked) ->
           match r.predictor with
           | Predict.Predictor.Data_value (_, v) ->
             String.length v > 0 && v.[0] = '"'
             && not (Astring.String.is_prefix ~affix:"\"str#" v)
           | _ -> false)
         d.sketch.predictors
     in
     Printf.printf "  raw string values in shipped predictors: %b\n\n" leaked)

(* ------------------------------------------------------------------ *)

type alias_row = {
  al_name : string;
  plain_instrs : int;
  alias_instrs : int;
  growth_pct : float;
}

let alias_row (bug : Bugbase.Common.t) =
  match Bugbase.Common.find_target_failure bug with
  | None -> None
  | Some (_, failure) ->
    let plain = Slicing.Slicer.compute bug.program failure in
    let aliased =
      Slicing.Slicer.compute ~alias:(Slicing.Alias.analyze bug.program)
        bug.program failure
    in
    let p = Slicing.Slicer.instr_count plain in
    let a = Slicing.Slicer.instr_count aliased in
    Some
      {
        al_name = bug.name;
        plain_instrs = p;
        alias_instrs = a;
        growth_pct = (if p = 0 then 0.0 else 100.0 *. float_of_int (a - p) /. float_of_int p);
      }

let alias_rows_memo : alias_row list Lazy.t =
  lazy
    (List.filter_map Fun.id
       (Harness.map_bugs alias_row Bugbase.Registry.all))

let alias_rows () = Lazy.force alias_rows_memo

let print_alias () =
  print_endline
    "Design-decision ablation (paper sec. 3.1): slice size with the\n\
     alias analysis Gist deliberately omits ('it would increase the\n\
     static slice size that Gist would have to monitor at runtime').";
  Printf.printf "%-13s %14s %14s %10s\n" "Bug" "slice(plain)" "slice(alias)"
    "growth";
  List.iter
    (fun r ->
      Printf.printf "%-13s %14d %14d %9.0f%%\n" r.al_name r.plain_instrs
        r.alias_instrs r.growth_pct)
    (alias_rows ());
  let avg = Harness.mean (List.map (fun r -> r.growth_pct) (alias_rows ())) in
  Printf.printf "%-13s %39.0f%%\n\n" "AVERAGE" avg

let print () =
  print_ptwrite ();
  print_ranges ();
  print_redaction ();
  print_alias ()
