(* Fig. 10: contribution of Gist's three techniques to overall sketch
   accuracy, measured by staging them: static slicing alone, slicing +
   control-flow tracking (Intel PT, no watchpoints), and the full
   system (+ data-flow tracking). *)

type row = {
  name : string;
  static_only : float;
  with_cf : float;
  full : float;
}

(* Static slicing alone: no runtime information, so the "sketch" is the
   slice portion AsT would track, in forward program order, with no
   cross-thread ordering and no discovered statements. *)
let static_accuracy (r : Harness.bug_result) =
  let slice_iids =
    Slicing.Slicer.iids r.diagnosis.slice |> List.sort compare
  in
  let acc =
    Fsketch.Accuracy.compute ~gist_order:slice_iids
      ~ideal:(Bugbase.Common.ideal r.bug)
  in
  acc.overall

let cf_only_accuracy (r : Harness.bug_result) =
  let config =
    {
      Gist.Config.default with
      Gist.Config.enable_df = false;
      preempt_prob = r.bug.preempt_prob;
      max_iterations = 5;
    }
  in
  match Harness.diagnose_bug ~config r.bug with
  | None -> 0.0
  | Some r' -> r'.accuracy.overall

let rows_memo : row list Lazy.t =
  lazy
    (Harness.map_bugs
       (fun (r : Harness.bug_result) ->
         {
           name = r.bug.name;
           static_only = static_accuracy r;
           with_cf = cf_only_accuracy r;
           full = r.accuracy.overall;
         })
       (Harness.results ()))

let rows () = Lazy.force rows_memo

let print () =
  print_endline
    "Fig. 10: Contribution of static slicing, +control-flow tracking,\n\
     +data-flow tracking to overall accuracy (%).";
  Printf.printf "%-13s %12s %12s %12s\n" "Bug" "slicing" "+ctrl-flow" "+data-flow";
  List.iter
    (fun r ->
      Printf.printf "%-13s %12.1f %12.1f %12.1f\n" r.name r.static_only
        r.with_cf r.full)
    (rows ());
  let avg f = Harness.mean (List.map f (rows ())) in
  Printf.printf "%-13s %12.1f %12.1f %12.1f\n\n" "AVERAGE"
    (avg (fun r -> r.static_only))
    (avg (fun r -> r.with_cf))
    (avg (fun r -> r.full))
