(** Fig. 12: tradeoff between the initial tracked slice size sigma_0
    and the resulting accuracy and root-cause-diagnosis latency. *)

val sigmas : int list

type point = {
  sigma0 : int;
  avg_accuracy : float;
  avg_latency : float;  (** failure recurrences *)
  avg_overhead : float;
}

val points : unit -> point list
val print : unit -> unit
