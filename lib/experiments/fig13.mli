(** Fig. 13: full-tracing overhead of record/replay vs hardware Intel
    PT, per program (paper: 984% vs 11% on average). *)

val clients_per_program : int

type row = {
  name : string;
  rr_pct : float;
  pt_pct : float;
  ratio : float;  (** rr / pt *)
}

val row_for : Bugbase.Common.t -> row
val rows : unit -> row list
val print : unit -> unit
