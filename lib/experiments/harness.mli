(** Shared experiment harness: run the full Gist pipeline on every
    Table 1 bug once and memoise the results so Table 1, Fig. 9 and the
    summary report the same fleet. *)

type bug_result = {
  bug : Bugbase.Common.t;
  failure : Exec.Failure.report;
  diagnosis : Gist.Server.diagnosis;
  accuracy : Fsketch.Accuracy.result;
  wall_time_s : float;
}

(** Diagnose one bug end-to-end with its root-cause oracle; [None] when
    the target failure never manifests.  [pool] parallelises the
    monitored client runs (see {!Gist.Server.diagnose}); the result is
    identical to the sequential run.  [with_oracle:false] (default
    true) drops the developer oracle — unattended production, as the
    adaptive early-exit comparison requires. *)
val diagnose_bug :
  ?config:Gist.Config.t ->
  ?pool:Parallel.Pool.t ->
  ?with_oracle:bool ->
  Bugbase.Common.t ->
  bug_result option

(** Fan [f] over independent per-bug work on the shared pool
    ({!Parallel.Jobs.global}), preserving list order. *)
val map_bugs : ('a -> 'b) -> 'a list -> 'b list

(** All 11 bugs, memoised across experiments.  Diagnosed in parallel
    across the shared pool (one bug per task); the per-bug results are
    identical to a sequential sweep. *)
val results : unit -> bug_result list

val mean : float list -> float

(** Gist sketch size as (source lines, IR instructions). *)
val sketch_size : bug_result -> int * int

val ideal_size : bug_result -> int * int

(** "1m:35s"-style formatting for the Table 1 latency column. *)
val fmt_mmss : float -> string
