(** Table 1: per bug, software size, static slice size, ideal and
    Gist-computed sketch sizes, and the diagnosis latency. *)

type row = {
  name : string;
  version : string;
  loc : int;
  bug_id : string;
  slice_src : int;
  slice_instr : int;
  ideal_src : int;
  ideal_instr : int;
  gist_src : int;
  gist_instr : int;
  recurrences : int;
  total_runs : int;
  wall_time_s : float;
  offline_time_s : float;
}

val row_of_result : Harness.bug_result -> row
val rows : unit -> row list
val print : unit -> unit
