(** Fig. 10: contribution of static slicing, +control-flow tracking and
    +data-flow tracking to overall sketch accuracy, measured by staging
    the techniques. *)

type row = {
  name : string;
  static_only : float;
  with_cf : float;
  full : float;
}

val rows : unit -> row list
val print : unit -> unit
