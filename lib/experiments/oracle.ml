(* The "developer decides AsT may stop" callback (paper §3.2.1: "until
   a developer decides that the failure sketch contains the root cause
   and instructs Gist to stop").  We model the developer as satisfied
   when (a) every statement of the hand-built ideal sketch is in the
   computed sketch and (b) the sketch carries at least one convincing
   failure predictor: high precision and observed in a failing run. *)

let convincing_predictor (s : Fsketch.Sketch.t) =
  List.exists
    (fun (r : Predict.Stats.ranked) ->
      r.n_failing_with >= 1 && r.precision >= 0.85 && r.f_measure >= 0.5)
    s.predictors

let covers_ideal (ideal : Fsketch.Accuracy.ideal) (s : Fsketch.Sketch.t) =
  let got = Fsketch.Sketch.iids s in
  List.for_all (fun i -> List.mem i got) ideal.i_iids

let sufficient ~ideal s = covers_ideal ideal s && convincing_predictor s

(* The oracle for a bug, ready to pass to [Gist.Server.diagnose]: the
   developer stops AsT once the *root-cause core* is visible with a
   convincing predictor (not once every dependency is captured). *)
let for_bug (bug : Bugbase.Common.t) =
  let root = Fsketch.Accuracy.{ i_iids = Bugbase.Common.root_cause_iids bug } in
  fun s -> sufficient ~ideal:root s
