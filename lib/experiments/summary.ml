(* §5.3 headline numbers: Gist's average overhead (paper: 3.74% at
   sigma_0 = 2), the control-flow vs data-flow overhead split (paper:
   CF 2.01-3.43%, DF 0.87-1.04%), the rr-vs-Gist ratio (paper: 166x),
   and the cost of software-only control-flow tracing (paper: 3x-5000x,
   from their PIN-based Intel PT simulator). *)

type t = {
  gist_avg_overhead_pct : float;
  cf_overhead_range : float * float; (* min/max per-bug PT component *)
  df_overhead_range : float * float; (* min/max per-bug watchpoint component *)
  rr_avg_pct : float;
  pt_full_avg_pct : float;
  rr_over_gist : float;
  sw_trace_range : float * float; (* software CF tracing, min/max per bug *)
  avg_accuracy : float;
  avg_recurrences : float;
  fleet_dispatched : int; (* protocol deliveries across every diagnosis *)
  fleet_anomalies : int;  (* lost + rejected + quarantined *)
}

let cf_df_split () =
  (* Per bug, aggregate the PT and watchpoint components separately
     over a fleet at the diagnosis' final tracked set. *)
  Harness.map_bugs
    (fun (r : Harness.bug_result) ->
      let bug = r.bug in
      let plan = Instrument.Place.compute bug.program r.diagnosis.tracked in
      let groups =
        Array.of_list
          (Gist.Server.wp_groups ~wp_capacity:4 plan.Instrument.Plan.wp_targets)
      in
      let n_groups = Array.length groups in
      let base = ref 0.0 and cf = ref 0.0 and df = ref 0.0 in
      for c = 0 to 15 do
        let report =
          Gist.Client.run_one ~preempt_prob:bug.preempt_prob ~plan
            ~wp_allowed:groups.(c mod n_groups)
            bug.program (bug.workload_of c)
        in
        base := !base +. Exec.Cost.base_cycles report.r_counters;
        cf := !cf +. Exec.Cost.pt_extra_cycles report.r_counters;
        df := !df +. Exec.Cost.wp_extra_cycles report.r_counters
      done;
      if !base > 0.0 then (100.0 *. !cf /. !base, 100.0 *. !df /. !base)
      else (0.0, 0.0))
    (Harness.results ())

let sw_trace_overheads () =
  Harness.map_bugs
    (fun (bug : Bugbase.Common.t) ->
      let total = ref 0.0 and base = ref 0.0 in
      for c = 0 to 7 do
        let counters = Exec.Cost.create () in
        let hooks = Exec.Interp.no_hooks () in
        hooks.step <-
          (fun ~tid:_ ~instr:_ ->
            counters.sw_trace_events <- counters.sw_trace_events + 1);
        hooks.branch <-
          (fun ~tid:_ ~instr:_ ~taken:_ ->
            counters.sw_trace_events <- counters.sw_trace_events + 4);
        let _ =
          Exec.Interp.run ~hooks ~counters ~preempt_prob:bug.preempt_prob
            bug.program (bug.workload_of c)
        in
        total := !total +. Exec.Cost.sw_trace_extra_cycles counters;
        base := !base +. Exec.Cost.base_cycles counters
      done;
      if !base > 0.0 then 100.0 *. !total /. !base else 0.0)
    Bugbase.Registry.all

let compute_memo : t Lazy.t =
  lazy
    (let results = Harness.results () in
     let gist_avg =
       Harness.mean
         (List.map
            (fun (r : Harness.bug_result) -> r.diagnosis.avg_overhead_pct)
            results)
     in
     let split = cf_df_split () in
     let cfs = List.map fst split and dfs = List.map snd split in
     let fmin l = List.fold_left min infinity l in
     let fmax l = List.fold_left max 0.0 l in
     let fig13 = Fig13.rows () in
     let rr_avg = Harness.mean (List.map (fun r -> r.Fig13.rr_pct) fig13) in
     let pt_avg = Harness.mean (List.map (fun r -> r.Fig13.pt_pct) fig13) in
     let sw = sw_trace_overheads () in
     {
       gist_avg_overhead_pct = gist_avg;
       cf_overhead_range = (fmin cfs, fmax cfs);
       df_overhead_range = (fmin dfs, fmax dfs);
       rr_avg_pct = rr_avg;
       pt_full_avg_pct = pt_avg;
       rr_over_gist = (if gist_avg > 0.0 then rr_avg /. gist_avg else 0.0);
       sw_trace_range = (fmin sw, fmax sw);
       avg_accuracy =
         Harness.mean
           (List.map (fun (r : Harness.bug_result) -> r.accuracy.overall)
              results);
       avg_recurrences =
         Harness.mean
           (List.map
              (fun (r : Harness.bug_result) ->
                float_of_int r.diagnosis.recurrences)
              results);
       fleet_dispatched =
         List.fold_left
           (fun a (r : Harness.bug_result) ->
             a + r.diagnosis.fleet.Gist.Server.f_dispatched)
           0 results;
       fleet_anomalies =
         List.fold_left
           (fun a (r : Harness.bug_result) ->
             let f = r.diagnosis.fleet in
             a + f.Gist.Server.f_lost + f.Gist.Server.f_rejected
             + f.Gist.Server.f_quarantined)
           0 results;
     })

let compute () = Lazy.force compute_memo

let print () =
  let s = compute () in
  print_endline "Summary (paper section 5.3 headline numbers):";
  Printf.printf
    "  Gist average overhead          : %6.2f%%   (paper: 3.74%%)\n"
    s.gist_avg_overhead_pct;
  let cmin, cmax = s.cf_overhead_range in
  Printf.printf
    "  control-flow tracking overhead : %.2f%% .. %.2f%%  (paper: 2.01-3.43%%)\n"
    cmin cmax;
  let dmin, dmax = s.df_overhead_range in
  Printf.printf
    "  data-flow tracking overhead    : %.2f%% .. %.2f%%  (paper: 0.87-1.04%%)\n"
    dmin dmax;
  Printf.printf
    "  record/replay avg overhead     : %6.1f%%   (paper: 984%%)\n" s.rr_avg_pct;
  Printf.printf
    "  full Intel PT avg overhead     : %6.2f%%   (paper: 11%%)\n"
    s.pt_full_avg_pct;
  Printf.printf
    "  rr / Gist overhead ratio       : %6.0fx   (paper: 166x)\n"
    s.rr_over_gist;
  let smin, smax = s.sw_trace_range in
  Printf.printf
    "  software CF tracing overhead   : %.0f%% .. %.0f%%  (paper: 3x-5000x)\n"
    smin smax;
  Printf.printf "  average sketch accuracy        : %6.1f%%   (paper: 96%%)\n"
    s.avg_accuracy;
  Printf.printf
    "  average failure recurrences    : %6.2f    (paper: 2-5 per bug)\n"
    s.avg_recurrences;
  Printf.printf
    "  fleet protocol                 : %d dispatches, %d anomalies \
     (lost/rejected/quarantined)\n\n"
    s.fleet_dispatched s.fleet_anomalies
