(* Fig. 13: full-tracing overhead of a Mozilla-rr-style record/replay
   system vs hardware Intel PT, per program (paper: rr averages 984%
   vs 11% for full PT; on compute-heavy Cppcheck the two are on par,
   while on I/O-light shared-memory-heavy programs rr is orders of
   magnitude more expensive). *)

let clients_per_program = 16

type row = {
  name : string;
  rr_pct : float;
  pt_pct : float;
  ratio : float; (* rr / pt; infinity when pt is ~0 *)
}

let row_for (bug : Bugbase.Common.t) =
  let rr_base = ref 0.0 and rr_extra = ref 0.0 in
  let pt_base = ref 0.0 and pt_extra = ref 0.0 in
  for c = 0 to clients_per_program - 1 do
    let w = bug.workload_of c in
    let rec_ = Baseline.Rr.record ~preempt_prob:bug.preempt_prob bug.program w in
    rr_base := !rr_base +. Exec.Cost.base_cycles rec_.rec_counters;
    rr_extra := !rr_extra +. Exec.Cost.rr_extra_cycles rec_.rec_counters
  done;
  for c = 0 to clients_per_program - 1 do
    let w = bug.workload_of c in
    let counters = Exec.Cost.create () in
    let pt = Hw.Pt.create counters in
    let hooks = Instrument.Runtime.full_tracing_hooks ~pt in
    let _ =
      Exec.Interp.run ~hooks ~counters ~preempt_prob:bug.preempt_prob
        bug.program w
    in
    Hw.Pt.finish pt;
    pt_base := !pt_base +. Exec.Cost.base_cycles counters;
    pt_extra := !pt_extra +. Exec.Cost.pt_extra_cycles counters
  done;
  let rr_pct = if !rr_base > 0.0 then 100.0 *. !rr_extra /. !rr_base else 0.0 in
  let pt_pct = if !pt_base > 0.0 then 100.0 *. !pt_extra /. !pt_base else 0.0 in
  {
    name = bug.name;
    rr_pct;
    pt_pct;
    ratio = (if pt_pct > 0.01 then rr_pct /. pt_pct else infinity);
  }

let rows_memo : row list Lazy.t =
  lazy (Harness.map_bugs row_for Bugbase.Registry.all)

let rows () = Lazy.force rows_memo

let print () =
  print_endline
    "Fig. 13: Full-tracing overheads, record/replay (rr) vs Intel PT (%).";
  Printf.printf "%-13s %12s %12s %10s\n" "Program" "rr" "Intel PT" "rr/PT";
  List.iter
    (fun r ->
      Printf.printf "%-13s %12.1f %12.2f %10s\n" r.name r.rr_pct r.pt_pct
        (if r.ratio = infinity then "inf"
         else Printf.sprintf "%.0fx" r.ratio))
    (rows ());
  let avg f = Harness.mean (List.map f (rows ())) in
  Printf.printf "%-13s %12.1f %12.2f   (paper: 984%% vs 11%%)\n\n" "AVERAGE"
    (avg (fun r -> r.rr_pct))
    (avg (fun r -> r.pt_pct))
