(* Shared experiment harness: run the full Gist pipeline on every
   Table 1 bug once and memoise the results so Table 1, Fig. 9 and the
   summary all report the same fleet. *)

type bug_result = {
  bug : Bugbase.Common.t;
  failure : Exec.Failure.report;
  diagnosis : Gist.Server.diagnosis;
  accuracy : Fsketch.Accuracy.result;
  wall_time_s : float;
}

let diagnose_bug ?(config = Gist.Config.default) ?pool
    ?(with_oracle = true) (bug : Bugbase.Common.t) =
  match Bugbase.Common.find_target_failure bug with
  | None -> None
  | Some (_, failure) ->
    let t0 = Unix.gettimeofday () in
    let config = { config with Gist.Config.preempt_prob = bug.preempt_prob } in
    (* [with_oracle:false] models unattended production: no developer
       stop signal, AsT runs until sigma covers the slice (or, with
       [early_exit], until the stopping rule converges). *)
    let oracle = if with_oracle then Some (Oracle.for_bug bug) else None in
    let diagnosis =
      Gist.Server.diagnose ~config ?pool ?oracle
        ~bug_name:bug.name ~failure_type:bug.failure_type ~program:bug.program
        ~workload_of:bug.workload_of ~failure ()
    in
    let accuracy =
      Fsketch.Accuracy.of_sketch diagnosis.sketch ~ideal:(Bugbase.Common.ideal bug)
    in
    Some
      {
        bug;
        failure;
        diagnosis;
        accuracy;
        wall_time_s = Unix.gettimeofday () -. t0;
      }

(* One diagnosis per bug is independent of the others, so the fleet
   fans out across the shared pool (each bug's own client loop then
   runs sequentially inside its worker: the outer loop already
   saturates the domains, and results stay identical either way). *)
let map_bugs : 'a 'b. ('a -> 'b) -> 'a list -> 'b list =
 fun f l -> Parallel.Pool.map (Parallel.Jobs.global ()) f l

let all_results : bug_result list Lazy.t =
  lazy
    (List.filter_map Fun.id
       (map_bugs (fun b -> diagnose_bug b) Bugbase.Registry.all))

let results () = Lazy.force all_results

let mean l =
  match l with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

(* Gist sketch size in source lines / IR instructions. *)
let sketch_size (r : bug_result) =
  let iids = Fsketch.Sketch.iids r.diagnosis.sketch in
  (Ir.Program.source_loc_count r.bug.program iids, List.length iids)

let ideal_size (r : bug_result) =
  let ideal = Bugbase.Common.ideal r.bug in
  ( Ir.Program.source_loc_count r.bug.program ideal.i_iids,
    List.length ideal.i_iids )

let fmt_mmss s =
  let total = int_of_float s in
  Printf.sprintf "%dm:%02ds" (total / 60) (total mod 60)
