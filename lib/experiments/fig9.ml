(* Fig. 9: accuracy of Gist, broken into relevance accuracy A_R and
   ordering accuracy A_O (paper: averages 92% / 100%, overall 96%). *)

type row = {
  name : string;
  relevance : float;
  ordering : float;
  overall : float;
}

let rows () =
  List.map
    (fun (r : Harness.bug_result) ->
      {
        name = r.bug.name;
        relevance = r.accuracy.relevance;
        ordering = r.accuracy.ordering;
        overall = r.accuracy.overall;
      })
    (Harness.results ())

let averages () =
  let rs = rows () in
  ( Harness.mean (List.map (fun r -> r.relevance) rs),
    Harness.mean (List.map (fun r -> r.ordering) rs),
    Harness.mean (List.map (fun r -> r.overall) rs) )

let print () =
  print_endline "Fig. 9: Accuracy of Gist (relevance / ordering / overall, %).";
  Printf.printf "%-13s %10s %10s %10s\n" "Bug" "A_R" "A_O" "A";
  List.iter
    (fun r ->
      Printf.printf "%-13s %10.1f %10.1f %10.1f\n" r.name r.relevance
        r.ordering r.overall)
    (rows ());
  let ar, ao, a = averages () in
  Printf.printf "%-13s %10.1f %10.1f %10.1f   (paper: 92 / 100 / 96)\n\n"
    "AVERAGE" ar ao a
