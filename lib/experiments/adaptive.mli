(** PR 7 experiment: adaptive early-exit AsT ([Gist.Config.adaptive])
    vs the exhaustive reference ([Gist.Config.default]) over the
    Bugbase, plus reallocation of the saved client budget to the bugs
    the stopping rule left ambiguous. *)

type row = {
  r_bug : string;
  r_exh_dispatched : int;
  r_exh_online_s : float;
  r_exh_iterations : int;
  r_ad_dispatched : int;
  r_ad_online_s : float;
  r_ad_iterations : int;
  r_ad_early_iters : int;
      (** adaptive iterations cut short at a checkpoint or converged *)
  r_converged : bool;  (** adaptive run stopped by the rule *)
  r_top_identical : bool;
      (** same top-ranked predictor in both modes (the PR 7 identity
          requirement) *)
  r_top : string option;  (** the adaptive top predictor, printed *)
}

type realloc = {
  ra_bug : string;
  ra_extra : int;       (** extra per-iteration client headroom granted *)
  ra_dispatched : int;  (** dispatches in the boosted re-run *)
  ra_converged : bool;  (** did the boosted run converge? *)
}

type t = {
  rows : row list;
  total_exh : int;
  total_ad : int;
  ratio : float;  (** total_exh / total_ad *)
  mean_ratio : float;
      (** Bugbase mean of per-bug exhaustive/adaptive ratios: the ≥3x
          target.  Bugs whose adaptive run dispatched nothing count as
          ratio 1. *)
  saved : int;
  reallocated : realloc list;
}

(** The production-fleet configuration the comparison runs under:
    [Gist.Config.default] with [fail_quota = 12], [succ_quota = 64],
    [max_clients_per_iter = 3000] and [wp_capacity = 8].  The toy
    default quotas gather too little evidence per iteration for 95%
    intervals to separate; this regime models the paper's setting of
    thousands of cooperating clients per refinement round. *)
val fleet_base : Gist.Config.t

(** Diagnose [bug] in both modes on top of [base] (so fault-regime
    sweeps reuse the comparison); [None] when the target failure never
    manifests.  Returns the comparison row plus both full results. *)
val compare_bug :
  ?pool:Parallel.Pool.t ->
  base:Gist.Config.t ->
  Bugbase.Common.t ->
  (row * (Harness.bug_result * Harness.bug_result)) option

(** Run the comparison over [bugs] (default: the full Bugbase) on top
    of [base] (default {!fleet_base}), then re-diagnose the ambiguous
    bugs with the saved budget split evenly among them. *)
val run :
  ?base:Gist.Config.t ->
  ?bugs:Bugbase.Common.t list ->
  ?pool:Parallel.Pool.t ->
  unit ->
  t

(** The [gist_cli experiments adaptive] report. *)
val print : unit -> unit
