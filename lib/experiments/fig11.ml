(* Fig. 11: Gist's average runtime performance overhead across all
   monitored runs as a function of the tracked slice size (paper: a
   monotonically increasing curve staying in single-digit percent up to
   slice size ~40, with a flat region where additional statements add
   only control-flow events). *)

let sizes = [ 2; 4; 8; 12; 16; 22; 28; 34; 40 ]
let clients_per_point = 24

type point = { size : int; overhead_pct : float }

(* Aggregate (fleet-wide) overhead of tracking the [size] statements
   closest to the failure, across all bugs. *)
let overhead_at size =
  let base = ref 0.0 and extra = ref 0.0 in
  List.iter
    (fun (bug : Bugbase.Common.t) ->
      match Bugbase.Common.find_target_failure bug with
      | None -> ()
      | Some (_, failure) ->
        let slice = Slicing.Slicer.compute bug.program failure in
        let tracked = Slicing.Slicer.take slice size in
        let plan = Instrument.Place.compute bug.program tracked in
        let groups =
          Gist.Server.wp_groups ~wp_capacity:4 plan.Instrument.Plan.wp_targets
        in
        let n_groups = List.length groups in
        for c = 0 to clients_per_point - 1 do
          let report =
            Gist.Client.run_one ~preempt_prob:bug.preempt_prob ~plan
              ~wp_allowed:(List.nth groups (c mod n_groups))
              bug.program (bug.workload_of c)
          in
          base := !base +. report.r_base_cycles;
          extra := !extra +. report.r_extra_cycles
        done)
    Bugbase.Registry.all;
  if !base > 0.0 then 100.0 *. !extra /. !base else 0.0

let points_memo : point list Lazy.t =
  lazy
    (List.map (fun size -> { size; overhead_pct = overhead_at size }) sizes)

let points () = Lazy.force points_memo

let print () =
  print_endline
    "Fig. 11: Average runtime overhead as a function of tracked slice size.";
  Printf.printf "%-12s %12s\n" "slice size" "overhead(%)";
  List.iter
    (fun p -> Printf.printf "%-12d %12.2f\n" p.size p.overhead_pct)
    (points ());
  print_newline ()
