(* Fig. 11: Gist's average runtime performance overhead across all
   monitored runs as a function of the tracked slice size (paper: a
   monotonically increasing curve staying in single-digit percent up to
   slice size ~40, with a flat region where additional statements add
   only control-flow events). *)

let sizes = [ 2; 4; 8; 12; 16; 22; 28; 34; 40 ]
let clients_per_point = 24

type point = { size : int; overhead_pct : float }

(* Aggregate (fleet-wide) overhead of tracking the [size] statements
   closest to the failure, across all bugs. *)
(* Per-bug cycle totals are independent, so bugs fan out across the
   pool; the (base, extra) pairs are then summed in registry order. *)
let overhead_at size =
  let per_bug =
    Harness.map_bugs
      (fun (bug : Bugbase.Common.t) ->
        match Bugbase.Common.find_target_failure bug with
        | None -> (0.0, 0.0)
        | Some (_, failure) ->
          let slice = Slicing.Slicer.compute bug.program failure in
          let tracked = Slicing.Slicer.take slice size in
          let plan = Instrument.Place.compute bug.program tracked in
          let groups =
            Array.of_list
              (Gist.Server.wp_groups ~wp_capacity:4
                 plan.Instrument.Plan.wp_targets)
          in
          let n_groups = Array.length groups in
          let base = ref 0.0 and extra = ref 0.0 in
          for c = 0 to clients_per_point - 1 do
            let report =
              Gist.Client.run_one ~preempt_prob:bug.preempt_prob ~plan
                ~wp_allowed:groups.(c mod n_groups)
                bug.program (bug.workload_of c)
            in
            base := !base +. report.r_base_cycles;
            extra := !extra +. report.r_extra_cycles
          done;
          (!base, !extra))
      Bugbase.Registry.all
  in
  let base = List.fold_left (fun acc (b, _) -> acc +. b) 0.0 per_bug in
  let extra = List.fold_left (fun acc (_, e) -> acc +. e) 0.0 per_bug in
  if base > 0.0 then 100.0 *. extra /. base else 0.0

let points_memo : point list Lazy.t =
  lazy
    (List.map (fun size -> { size; overhead_pct = overhead_at size }) sizes)

let points () = Lazy.force points_memo

let print () =
  print_endline
    "Fig. 11: Average runtime overhead as a function of tracked slice size.";
  Printf.printf "%-12s %12s\n" "slice size" "overhead(%)";
  List.iter
    (fun p -> Printf.printf "%-12d %12.2f\n" p.size p.overhead_pct)
    (points ());
  print_newline ()
