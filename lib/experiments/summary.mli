(** The §5.3 headline numbers: Gist's average overhead, the CF/DF
    split, the rr-vs-Gist ratio, software-tracing cost, and the
    accuracy/latency averages — each printed against the paper's
    value. *)

type t = {
  gist_avg_overhead_pct : float;
  cf_overhead_range : float * float;
  df_overhead_range : float * float;
  rr_avg_pct : float;
  pt_full_avg_pct : float;
  rr_over_gist : float;
  sw_trace_range : float * float;
  avg_accuracy : float;
  avg_recurrences : float;
  fleet_dispatched : int;
      (** protocol deliveries across every diagnosis (all validated) *)
  fleet_anomalies : int;  (** lost + rejected + quarantined *)
}

val compute : unit -> t
val print : unit -> unit
