(** Fig. 9: accuracy of Gist, broken into relevance and ordering
    (paper averages: 92% / 100%, overall 96%). *)

type row = {
  name : string;
  relevance : float;
  ordering : float;
  overall : float;
}

val rows : unit -> row list

(** (average relevance, average ordering, average overall). *)
val averages : unit -> float * float * float

val print : unit -> unit
