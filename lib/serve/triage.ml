(* Duplicate coalescing ahead of admission: an LRU-bounded cluster
   table keyed by failure fingerprint.  See triage.mli.

   Determinism: the table is driven only by service decisions (submit
   order, round numbers, completion digests), every mutation is a
   pure function of those, and the codec serializes entries in
   last-touch order — so the table recovers bit-identically and two
   services fed the same submissions hold equal tables at any pool
   size. *)

module W = Hw.Wirebuf

type state = Open | Done of { round : int }

type cluster = {
  c_fp : int;
  mutable c_canonical : int;  (* ticket id of the diagnosing session *)
  mutable c_name : string;    (* that session's name *)
  mutable c_count : int;      (* submissions folded in, canonical included *)
  mutable c_state : state;
  mutable c_digest : int;     (* completion digest once Done *)
  mutable c_touch : int;      (* LRU clock at last hit *)
}

type t = {
  max_clusters : int;
  recency_rounds : int;
  tbl : (int, cluster) Hashtbl.t;
  mutable tick : int;
  mutable evicted : int;
}

let create ~max_clusters ~recency_rounds =
  {
    max_clusters;
    recency_rounds;
    tbl = Hashtbl.create 64;
    tick = 0;
    evicted = 0;
  }

let size t = Hashtbl.length t.tbl
let evicted t = t.evicted

let touch t c =
  t.tick <- t.tick + 1;
  c.c_touch <- t.tick

type verdict =
  | New  (** no live cluster: open one, fresh lane *)
  | Recurrence of { canonical : int; done_round : int }
      (** known but diagnosed too long ago: re-diagnose, recurrence lane *)
  | Duplicate of { canonical : int; count : int }
      (** in flight or recently diagnosed: coalesce, no session *)

(* Pure classification — the caller commits with [open_fresh],
   [reopen] or [coalesce] only once admission capacity is settled. *)
let classify t ~round fp =
  match Hashtbl.find_opt t.tbl fp with
  | None -> New
  | Some c -> (
    match c.c_state with
    | Open -> Duplicate { canonical = c.c_canonical; count = c.c_count }
    | Done { round = r } ->
      if t.recency_rounds > 0 && round - r > t.recency_rounds then
        Recurrence { canonical = c.c_canonical; done_round = r }
      else Duplicate { canonical = c.c_canonical; count = c.c_count })

(* LRU eviction considers only [Done] clusters: an [Open] one is
   pinned by its queued or in-flight session.  Tie-break on the touch
   clock, which is strictly monotonic, so the victim is unique. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ c best ->
        match c.c_state with
        | Open -> best
        | Done _ -> (
          match best with
          | Some b when b.c_touch <= c.c_touch -> best
          | _ -> Some c))
      t.tbl None
  in
  match victim with
  | None -> ()
  | Some c ->
    Hashtbl.remove t.tbl c.c_fp;
    t.evicted <- t.evicted + 1

let open_fresh t ~fp ~name ~id =
  if Hashtbl.length t.tbl >= t.max_clusters then evict_lru t;
  let c =
    {
      c_fp = fp;
      c_canonical = id;
      c_name = name;
      c_count = 1;
      c_state = Open;
      c_digest = 0;
      c_touch = 0;
    }
  in
  touch t c;
  Hashtbl.replace t.tbl fp c

let reopen t ~fp ~name ~id =
  match Hashtbl.find_opt t.tbl fp with
  | None -> open_fresh t ~fp ~name ~id
  | Some c ->
    c.c_canonical <- id;
    c.c_name <- name;
    c.c_count <- c.c_count + 1;
    c.c_state <- Open;
    touch t c

(* Undo a [reopen] whose ticket was shed from the queue before
   admission: the cluster goes back to its diagnosed state, keeping
   the recurrence count (the submission really happened). *)
let revert_reopen t ~fp ~canonical ~done_round =
  match Hashtbl.find_opt t.tbl fp with
  | None -> ()
  | Some c ->
    c.c_canonical <- canonical;
    c.c_state <- Done { round = done_round };
    touch t c

let coalesce t ~fp =
  match Hashtbl.find_opt t.tbl fp with
  | None -> ()
  | Some c ->
    c.c_count <- c.c_count + 1;
    touch t c

(* A session completing [Ok] freezes its cluster as recently
   diagnosed; a typed failure drops the cluster instead — duplicates
   of a failed diagnosis deserve a fresh attempt, not coalescing onto
   an [Error]. *)
let completed t ~fp ~id ~round ~digest ~ok =
  match Hashtbl.find_opt t.tbl fp with
  | None -> ()
  | Some c ->
    if c.c_canonical = id then
      if ok then begin
        c.c_state <- Done { round };
        c.c_digest <- digest;
        touch t c
      end
      else Hashtbl.remove t.tbl fp

type view = {
  v_fp : int;
  v_name : string;
  v_canonical : int;
  v_count : int;
  v_done_round : int;  (** -1 while the diagnosis is in flight *)
}

(* Most recently touched first: the order a status screen wants and
   the order the codec uses, so two equal tables render and encode
   identically. *)
let by_recency t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.tbl []
  |> List.sort (fun a b -> Int.compare b.c_touch a.c_touch)

let views t =
  List.map
    (fun c ->
      {
        v_fp = c.c_fp;
        v_name = c.c_name;
        v_canonical = c.c_canonical;
        v_count = c.c_count;
        v_done_round = (match c.c_state with Open -> -1 | Done { round } -> round);
      })
    (by_recency t)

(* ------------------------------------------------------------------ *)
(* Codec (embedded in the service checkpoint) *)

let encode b t =
  W.put_uint b t.max_clusters;
  W.put_uint b t.recency_rounds;
  W.put_uint b t.tick;
  W.put_uint b t.evicted;
  let cs = by_recency t in
  W.put_uint b (List.length cs);
  List.iter
    (fun c ->
      W.put_uint b c.c_fp;
      W.put_uint b c.c_canonical;
      W.put_string b c.c_name;
      W.put_uint b c.c_count;
      (match c.c_state with
       | Open -> W.put_uint b 0
       | Done { round } ->
         W.put_uint b 1;
         W.put_uint b round);
      W.put_uint b c.c_digest;
      W.put_uint b c.c_touch)
    cs

let decode r =
  let max_clusters = W.get_uint r in
  let recency_rounds = W.get_uint r in
  let tick = W.get_uint r in
  let evicted = W.get_uint r in
  let t = { (create ~max_clusters ~recency_rounds) with tick; evicted } in
  let n = W.get_uint r in
  for _ = 1 to n do
    let c_fp = W.get_uint r in
    let c_canonical = W.get_uint r in
    let c_name = W.get_string r in
    let c_count = W.get_uint r in
    let c_state =
      match W.get_uint r with
      | 0 -> Open
      | 1 -> Done { round = W.get_uint r }
      | _ -> raise W.Short
    in
    let c_digest = W.get_uint r in
    let c_touch = W.get_uint r in
    Hashtbl.replace t.tbl c_fp
      { c_fp; c_canonical; c_name; c_count; c_state; c_digest; c_touch }
  done;
  t

let equal a b =
  let enc t =
    let b = Buffer.create 256 in
    encode b t;
    Buffer.contents b
  in
  enc a = enc b
