(** Synthetic report-stream replay: session {!Service.spec}s drawn
    from the Bugbase entries (recycled under distinct session names)
    and fuzz-generated labelled bugs.  Pure functions of their seed:
    per-bug failure probes are memoised, so a stream of hundreds of
    sessions pays each distinct bug's offline probe once. *)

(** 10% aggregate rate spread uniformly over the fault taxonomy — the
    stream's standard degraded regime. *)
val default_fault_rates : Faults.Fault.rates

(** One Bugbase session spec, unattended (no oracle), streaming
    ingest, adaptive early exit on by default.  [tweak] post-processes
    the config (e.g. to bound iterations for a soak).  [None] when the
    bug's target failure never manifests. *)
val bugbase_spec :
  ?early_exit:bool ->
  ?faults:Faults.Fault.rates * int ->
  ?tweak:(Gist.Config.t -> Gist.Config.t) ->
  name:string ->
  Bugbase.Common.t ->
  Service.spec option

(** One fuzz-case session spec under the campaign's bounded fleet
    configuration; [None] when the case is not diagnosable (engine
    divergence, or no target failure in the probe window). *)
val fuzz_spec :
  ?early_exit:bool ->
  ?faults:Faults.Fault.rates * int ->
  ?tweak:(Gist.Config.t -> Gist.Config.t) ->
  name:string ->
  Fuzz.Gen.case ->
  Service.spec option

(** [mixed ~seed ~sessions ()]: [sessions] specs drawn in a seeded
    deterministic shuffle from all diagnosable Bugbase bugs plus
    [fuzz_count] (default 8) fuzz cases; session [k] recycles its base
    bug under the name ["<bug>#<k>"]. *)
val mixed :
  ?early_exit:bool ->
  ?faults:Faults.Fault.rates * int ->
  ?tweak:(Gist.Config.t -> Gist.Config.t) ->
  ?fuzz_count:int ->
  seed:int ->
  sessions:int ->
  unit ->
  Service.spec list

(** [storm ~seed ~sessions ~dup_ratio ()]: a duplicate-heavy stream —
    a seeded [hot] (default 4) subset of the base population storms
    (each storm session re-reports a hot bug under a fresh ["@k"]
    name), the remaining base bugs arrive once each as fresh traffic.
    About [dup_ratio] of the sessions are storm duplicates; the mix
    is a pure function of the seed, so storms replay bit-identically
    in tests, bench and recovery differentials.  [fuzz_count]
    defaults to 24 to give the fresh side a real population. *)
val storm :
  ?early_exit:bool ->
  ?faults:Faults.Fault.rates * int ->
  ?tweak:(Gist.Config.t -> Gist.Config.t) ->
  ?fuzz_count:int ->
  ?hot:int ->
  seed:int ->
  sessions:int ->
  dup_ratio:float ->
  unit ->
  Service.spec list
