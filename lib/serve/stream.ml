(* Synthetic report-stream replay: session specs for the service,
   drawn from the two bug populations the repo ships — the Bugbase
   (Table 1) entries, recycled under distinct session names, and
   fuzz-generated labelled bugs.

   A stream is a pure function of its seed: the per-bug failure
   reports are found once per distinct bug (memoised), and the
   seeded mix only permutes which bug each session replays, so a
   stream replays bit-identically whatever the pool size. *)

let default_fault_rates = Faults.Fault.spread 0.10

(* Per-bug target failures, found once (each probe is thousands of
   unmonitored runs — recycling sessions must not repay it). *)
let bugbase_failures : (string, Exec.Failure.report option) Hashtbl.t =
  Hashtbl.create 16

let failure_of (bug : Bugbase.Common.t) =
  match Hashtbl.find_opt bugbase_failures bug.name with
  | Some f -> f
  | None ->
    let f =
      Option.map snd (Bugbase.Common.find_target_failure bug)
    in
    Hashtbl.add bugbase_failures bug.name f;
    f

let bugbase_spec ?(early_exit = true) ?faults ?(tweak = Fun.id) ~name
    (bug : Bugbase.Common.t) =
  match failure_of bug with
  | None -> None
  | Some failure ->
    let config =
      {
        Gist.Config.default with
        Gist.Config.preempt_prob = bug.preempt_prob;
        early_exit;
      }
    in
    let config =
      match faults with
      | None -> config
      | Some (rates, fault_seed) ->
        { config with Gist.Config.fault_rates = rates; fault_seed }
    in
    Some
      {
        Service.sp_name = name;
        sp_failure_type = bug.failure_type;
        sp_config = tweak config;
        sp_ingest = Gist.Server.Streaming;
        sp_oracle = None; (* unattended production: no developer in the loop *)
        sp_program = bug.program;
        sp_workload_of = bug.workload_of;
        sp_failure = failure;
        sp_case = None;
      }

(* A fuzz case's spec: the campaign's bounded fleet configuration,
   the case's own fault environment when stamped, no oracle.  [None]
   when the case is not diagnosable (engine divergence, or the target
   failure never manifests in the probe window). *)
let fuzz_spec ?(early_exit = true) ?faults ?(tweak = Fun.id) ~name
    (case : Fuzz.Gen.case) =
  let case =
    match faults with
    | None -> case
    | Some _ -> { case with Fuzz.Gen.c_faults = faults }
  in
  match Fuzz.Check.divergence case with
  | Some _ -> None
  | None ->
    (match (Fuzz.Check.probe case).Fuzz.Check.p_target with
     | None -> None
     | Some failure ->
       let config =
         { (Fuzz.Check.config_of case) with Gist.Config.early_exit }
       in
       Some
         {
           Service.sp_name = name;
           sp_failure_type = Exec.Failure.kind_to_string failure.Exec.Failure.kind;
           sp_config = tweak config;
           sp_ingest = Gist.Server.Streaming;
           sp_oracle = None;
           sp_program = case.Fuzz.Gen.c_program;
           sp_workload_of = Fuzz.Gen.workload_of case;
           sp_failure = failure;
           sp_case = Some case;
         })

(* The shared base population: all diagnosable Bugbase bugs plus
   [fuzz_count] fuzz cases. *)
let base_population ~early_exit ?faults ~tweak ~seed ~fuzz_count () =
  List.filter_map
    (fun (bug : Bugbase.Common.t) ->
      bugbase_spec ~early_exit ?faults ~tweak ~name:bug.name bug)
    Bugbase.Registry.all
  @ List.filter_map
      (fun (case : Fuzz.Gen.case) ->
        fuzz_spec ~early_exit ?faults ~tweak ~name:case.Fuzz.Gen.c_name case)
      (Fuzz.Runner.cases ~seed ~count:fuzz_count ())

(* [mixed ~seed ~sessions ()] — [sessions] session specs drawn from a
   base population of all diagnosable Bugbase bugs plus [fuzz_count]
   fuzz cases, in a seeded deterministic shuffle; session [k] recycles
   base bug [i] under the name "<bug>#<k>". *)
let mixed ?(early_exit = true) ?faults ?(tweak = Fun.id) ?(fuzz_count = 8)
    ~seed ~sessions () =
  let base = base_population ~early_exit ?faults ~tweak ~seed ~fuzz_count () in
  if base = [] then []
  else begin
    let arr = Array.of_list base in
    let rng = Exec.Rng.create seed in
    List.init sessions (fun k ->
        let sp = arr.(Exec.Rng.int rng (Array.length arr)) in
        { sp with Service.sp_name = Printf.sprintf "%s#%d" sp.Service.sp_name k })
  end

(* [storm ~seed ~sessions ~dup_ratio ()] — a duplicate-heavy stream:
   a seeded [hot] subset of the base population storms (each of its
   sessions re-reports one hot bug under a fresh name), while the
   remaining, never-repeated base bugs trickle in as the fresh
   traffic.  Roughly [dup_ratio] of the sessions are storm
   duplicates; the exact mix is a pure function of the seed.  When
   the fresh population runs dry the stream falls back to hot
   duplicates, so a long storm degrades to pure recurrence rather
   than inventing new bugs. *)
let storm ?(early_exit = true) ?faults ?(tweak = Fun.id) ?(fuzz_count = 24)
    ?(hot = 4) ~seed ~sessions ~dup_ratio () =
  let base = base_population ~early_exit ?faults ~tweak ~seed ~fuzz_count () in
  if base = [] then []
  else begin
    let arr = Array.of_list base in
    let n = Array.length arr in
    let rng = Exec.Rng.create seed in
    (* Seeded hot-set pick: [hot] distinct indices. *)
    let hot_n = max 1 (min hot n) in
    let hot_idx = Array.make hot_n 0 in
    let taken = Hashtbl.create hot_n in
    for i = 0 to hot_n - 1 do
      let rec draw () =
        let j = Exec.Rng.int rng n in
        if Hashtbl.mem taken j then draw () else j
      in
      let j = draw () in
      Hashtbl.replace taken j ();
      hot_idx.(i) <- j
    done;
    let fresh = ref (List.filteri (fun j _ -> not (Hashtbl.mem taken j)) (Array.to_list arr)) in
    List.init sessions (fun k ->
        let dup = Exec.Rng.float rng < dup_ratio in
        match (dup, !fresh) with
        | false, sp :: rest ->
          fresh := rest;
          (* Fresh traffic keeps its own name: one session per distinct
             bug, like a first report from the field. *)
          sp
        | true, _ | false, [] ->
          let sp = arr.(hot_idx.(Exec.Rng.int rng hot_n)) in
          {
            sp with
            Service.sp_name = Printf.sprintf "%s@%d" sp.Service.sp_name k;
          })
  end
