(* The service write-ahead journal.  See journal.mli for the recovery
   contract; the load loop's two failure classes (truncate vs Damaged)
   are the whole design. *)

module W = Hw.Wirebuf

type record =
  | Submitted of { id : int; name : string; rejected : bool }
  | Round of { round : int; digest : int }
  | Completed of { id : int; digest : int }
  | Checkpoint of { round : int; state : string }
  | Triaged of { id : int; name : string; fp : int; disp : int }

(* Triaged payloads carry their own version byte: the disposition
   vocabulary can grow without a journal-wide version bump. *)
let triaged_version = 1

type entry = Rec of record | Damaged of { kind : int; reason : string }

type t = {
  buf : Buffer.t;
  (* Byte offsets of appended checkpoints, newest first, for
     {!compact}.  Only offsets still inside [buf] are kept. *)
  mutable ckpts : int list;
}

let magic = '\xA7'
let version = 1

let kind_of = function
  | Submitted _ -> 1
  | Round _ -> 2
  | Completed _ -> 3
  | Checkpoint _ -> 4
  | Triaged _ -> 5

let put_payload b = function
  | Submitted { id; name; rejected } ->
    W.put_uint b id;
    W.put_string b name;
    W.put_bool b rejected
  | Round { round; digest } ->
    W.put_uint b round;
    W.put_uint b digest
  | Completed { id; digest } ->
    W.put_uint b id;
    W.put_uint b digest
  | Checkpoint { round; state } ->
    W.put_uint b round;
    W.put_string b state
  | Triaged { id; name; fp; disp } ->
    W.put_uint b triaged_version;
    W.put_uint b id;
    W.put_string b name;
    W.put_uint b fp;
    W.put_uint b disp

let get_payload kind r =
  match kind with
  | 1 ->
    let id = W.get_uint r in
    let name = W.get_string r in
    let rejected = W.get_bool r in
    Submitted { id; name; rejected }
  | 2 ->
    let round = W.get_uint r in
    let digest = W.get_uint r in
    Round { round; digest }
  | 3 ->
    let id = W.get_uint r in
    let digest = W.get_uint r in
    Completed { id; digest }
  | 4 ->
    let round = W.get_uint r in
    let state = W.get_string r in
    Checkpoint { round; state }
  | 5 ->
    if W.get_uint r <> triaged_version then raise W.Short;
    let id = W.get_uint r in
    let name = W.get_string r in
    let fp = W.get_uint r in
    let disp = W.get_uint r in
    Triaged { id; name; fp; disp }
  | _ -> raise W.Short

let record_digest ~kind payload =
  Gist.Protocol.Encode.digest ~client:kind ~session:0 ~plan_id:version payload

let create () = { buf = Buffer.create 4096; ckpts = [] }

let append t record =
  (match record with
   | Checkpoint _ -> t.ckpts <- Buffer.length t.buf :: t.ckpts
   | Submitted _ | Round _ | Completed _ | Triaged _ -> ());
  let p = Buffer.create 64 in
  put_payload p record;
  let payload = Buffer.contents p in
  let kind = kind_of record in
  Buffer.add_char t.buf magic;
  W.put_uint t.buf kind;
  W.put_uint t.buf (String.length payload);
  Buffer.add_string t.buf payload;
  Buffer.add_int64_le t.buf (Int64.of_int (record_digest ~kind payload))

let compact t =
  match t.ckpts with
  | newest :: prev :: _ when prev > 0 ->
    (* Keep the last two checkpoints (the newest for recovery, one
       older as the corrupted-checkpoint fallback) and every record
       after the older one; anything earlier can never be read again.
       Completions dropped here were harvested before [prev] landed —
       a checkpoint refuses to write over an unharvested completion —
       so at-least-once delivery is unaffected. *)
    let bytes = Buffer.contents t.buf in
    Buffer.clear t.buf;
    Buffer.add_substring t.buf bytes prev (String.length bytes - prev);
    t.ckpts <- [ newest - prev; 0 ]
  | _ -> ()

let contents t = Buffer.contents t.buf
let length t = Buffer.length t.buf

(* One frame at the cursor.  [`Torn] means structural breakage — the
   caller must stop; [`Entry] advances past the frame whatever the
   payload's fate. *)
let load_frame r =
  if W.eof r then `End
  else begin
    try
      if W.byte r <> Char.code magic then `Torn
      else begin
        let kind = W.get_uint r in
        let len = W.get_uint r in
        if len < 0 || r.W.pos + len + 8 > r.W.limit then `Torn
        else begin
          let payload = String.sub r.W.src r.W.pos len in
          r.W.pos <- r.W.pos + len;
          let d = Int64.to_int (String.get_int64_le r.W.src r.W.pos) in
          r.W.pos <- r.W.pos + 8;
          if record_digest ~kind payload <> d then
            `Entry (Damaged { kind; reason = "checksum mismatch" })
          else
            match
              let pr = W.reader payload in
              let rec_ = get_payload kind pr in
              if W.eof pr then Ok rec_ else Error "trailing bytes"
            with
            | Ok rec_ -> `Entry (Rec rec_)
            | Error reason -> `Entry (Damaged { kind; reason })
            | exception W.Short ->
              `Entry (Damaged { kind; reason = "short payload" })
        end
      end
    with W.Short -> `Torn
  end

let load bytes =
  let r = W.reader bytes in
  let rec go acc =
    match load_frame r with
    | `End | `Torn -> List.rev acc
    | `Entry e -> go (e :: acc)
  in
  go []

let save_file path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let load_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s

let tear ~n bytes =
  let keep = max 0 (String.length bytes - max 0 n) in
  String.sub bytes 0 keep

let corrupt_last_checkpoint ~salt bytes =
  (* Walk the frames re-deriving payload offsets, remember the newest
     intact checkpoint's payload span, then flip one byte inside it. *)
  let r = W.reader bytes in
  let last = ref None in
  let rec walk () =
    if not (W.eof r) then
      match
        (try
           if W.byte r <> Char.code magic then None
           else
             let kind = W.get_uint r in
             let len = W.get_uint r in
             if len < 0 || r.W.pos + len + 8 > r.W.limit then None
             else begin
               let off = r.W.pos in
               r.W.pos <- r.W.pos + len + 8;
               Some (kind, off, len)
             end
         with W.Short -> None)
      with
      | None -> ()
      | Some (kind, off, len) ->
        if kind = 4 && len > 0 then last := Some (off, len);
        walk ()
  in
  walk ();
  match !last with
  | None -> None
  | Some (off, len) ->
    let b = Bytes.of_string bytes in
    let i = off + (abs salt mod len) in
    let x = 1 + (abs salt mod 255) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor x));
    Some (Bytes.to_string b)
