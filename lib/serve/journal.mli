(** The service's write-ahead journal: every scheduler decision that
    cannot be re-derived — accepted and rejected submissions, the
    per-round audit digest, completions handed to the caller — plus
    periodic full-state checkpoints, as self-framed, checksummed
    records.

    Recovery contract: a crash can tear the tail of the byte stream
    (a partially flushed record) and can damage any record in place
    (bit rot, a corrupted checkpoint).  {!load} is built for both —
    structural breakage truncates (everything before the tear is
    kept), while a checksum failure inside intact framing yields a
    {!entry.Damaged} marker and keeps going, so a corrupted checkpoint
    falls back to an older one instead of amputating the journal at
    that point.

    Records are checksummed with the wire protocol's own envelope
    digest ({!Gist.Protocol.Encode.digest}) — one binary dialect in
    the tree. *)

type record =
  | Submitted of { id : int; name : string; rejected : bool }
      (** an admission decision; rejected submissions are journaled
          too, so replay reproduces ticket ids exactly *)
  | Round of { round : int; digest : int }
      (** one scheduler round completed; [digest] folds the served
          sessions' audit state — recovery compares it to detect
          divergence *)
  | Completed of { id : int; digest : int }
      (** ticket [id]'s diagnosis left the service; [digest] is the
          diagnosis signature the recovery audit checks *)
  | Checkpoint of { round : int; state : string }
      (** full service snapshot after [round]; [state] is
          {!Service}'s own codec output *)
  | Triaged of { id : int; name : string; fp : int; disp : int }
      (** a triage-gated admission decision (replaces [Submitted]
          when the service runs with triage on): the submission's
          fingerprint and its disposition — fresh-lane ticket,
          recurrence-lane ticket, coalesced, shed, or busy-rejected
          ({!Service} owns the encoding).  The payload carries its own
          version byte so the disposition vocabulary can grow without
          a journal-wide bump; replay re-derives the decision through
          the real [submit] and audits it against this record *)

(** What {!load} recovered a frame into. *)
type entry =
  | Rec of record
  | Damaged of { kind : int; reason : string }
      (** framing intact, content refused (checksum or decode) *)

(** An append-only in-memory journal; the service owns one and the
    caller decides when (and whether) its bytes reach a file. *)
type t

val create : unit -> t

val append : t -> record -> unit

(** Drop every record older than the second-newest checkpoint.  The
    newest checkpoint is what recovery wants; the one before it is the
    fallback when the newest arrives corrupted; nothing earlier can
    ever be read again, and on a long-running service the dead prefix
    is unbounded memory.  Safe on completions because a checkpoint is
    only written once prior completions were harvested.  No-op with
    fewer than two checkpoints. *)
val compact : t -> unit

(** Every byte appended so far.  Between compactions, a prefix of a
    later [contents] call's result — the crash model is "any prefix
    of the bytes as they stood at the kill". *)
val contents : t -> string

(** Number of bytes appended so far (cheap; no copy). *)
val length : t -> int

(** Decode a byte stream.  Never raises: a torn tail truncates, a
    damaged record inside intact framing becomes {!entry.Damaged}. *)
val load : string -> entry list

(** {2 Files} *)

val save_file : string -> string -> unit
val load_file : string -> string option

(** {2 Chaos helpers — deterministic damage for the fault harness} *)

(** Tear [n] bytes off the tail (a crash mid-write). *)
val tear : n:int -> string -> string

(** Flip one byte inside the newest checkpoint record's payload —
    framing stays intact, so {!load} reports it [Damaged] and recovery
    must fall back to the previous checkpoint.  [None] when the stream
    holds no checkpoint. *)
val corrupt_last_checkpoint : salt:int -> string -> string option
