(* The fuzz accuracy gate, through the multiplexed path: the same
   campaign [Fuzz.Runner.run] checks one-shot — same cases, same
   fault stamping, same oracle, same verdict scoring — but every
   diagnosable case is diagnosed as one session of a shared
   {!Service}, tens in flight at a time.

   Because a multiplexed diagnosis is bit-identical to its one-shot
   counterpart, the report (minus shrinking, which this gate skips)
   matches [Fuzz.Runner.run ~shrink:false] verdict for verdict — so
   the worst-pattern accuracy bar holds through the service exactly
   when it holds one-shot. *)

module G = Fuzz.Gen
module C = Fuzz.Check
module R = Fuzz.Runner
module FC = Faults.Chaos

(* What the pre-service probe decided about one case. *)
type prep =
  | Verdict of C.verdict (* decided without diagnosing *)
  | Diagnose of Exec.Failure.report

let prep_case (case : G.case) =
  match C.divergence case with
  | Some d -> Verdict (C.Divergence d)
  | None ->
    (match (C.probe case).C.p_target with
     | None -> Verdict C.No_failure
     | Some failure -> Diagnose failure)

let spec_of ~early_exit (case : G.case) failure =
  {
    Service.sp_name = case.G.c_name;
    sp_failure_type = Exec.Failure.kind_to_string failure.Exec.Failure.kind;
    sp_config = { (C.config_of case) with Gist.Config.early_exit };
    sp_ingest = Gist.Server.Streaming;
    sp_oracle =
      Some
        (fun (sk : Fsketch.Sketch.t) ->
          match sk.predictors with
          | top :: _ -> C.accepted case top.Predict.Stats.predictor
          | [] -> false);
    sp_program = case.G.c_program;
    sp_workload_of = G.workload_of case;
    sp_failure = failure;
    sp_case = Some case;
  }

let report_of_diagnosis (case : G.case) (d : Gist.Server.diagnosis) =
  let top =
    match d.Gist.Server.sketch.predictors with
    | t :: _ -> Some (C.describe case.G.c_program t.Predict.Stats.predictor)
    | [] -> None
  in
  {
    R.cr_name = case.G.c_name;
    cr_pattern = case.G.c_pattern;
    cr_seed = case.G.c_seed;
    cr_verdict = C.verdict_of_sketch case d.Gist.Server.sketch;
    cr_top = top;
    cr_iterations = d.Gist.Server.iterations;
    cr_total_runs = d.Gist.Server.total_runs;
    cr_shrink = None;
    cr_fleet = Some d.Gist.Server.fleet;
  }

let report_of_verdict (case : G.case) v =
  {
    R.cr_name = case.G.c_name;
    cr_pattern = case.G.c_pattern;
    cr_seed = case.G.c_seed;
    cr_verdict = v;
    cr_top = None;
    cr_iterations = 0;
    cr_total_runs = 0;
    cr_shrink = None;
    cr_fleet = None;
  }

(* [Runner.stats_of], which is not exported: per-pattern accuracy in
   [Gen.all_patterns] order, empty patterns skipped. *)
let stats_of cases =
  List.filter_map
    (fun p ->
      let of_p = List.filter (fun cr -> cr.R.cr_pattern = p) cases in
      if of_p = [] then None
      else
        Some
          {
            R.ps_pattern = p;
            ps_total = List.length of_p;
            ps_correct =
              List.length
                (List.filter (fun cr -> cr.R.cr_verdict = C.Correct) of_p);
          })
    G.all_patterns

let run ?(jobs = 0) ?(retries = 5) ?faults ?(early_exit = false)
    ?(sconfig = Service.default) ~seed ~count () =
  let cases =
    List.map
      (fun case ->
        match faults with
        | None -> case
        | Some _ -> { case with G.c_faults = faults })
      (R.cases ~retries ~seed ~count ())
  in
  Parallel.Pool.with_pool ~jobs (fun pool ->
      (* Pre-service probes fan out across the pool; order preserved. *)
      let preps =
        Parallel.Pool.map_array pool prep_case (Array.of_list cases)
      in
      let svc = Service.create ~sconfig ~pool () in
      (* Submit every diagnosable case, riding the backpressure: a
         [Busy] reject runs a scheduler round and retries, so the
         in-flight window stays saturated without unbounded queueing. *)
      let tickets = Hashtbl.create (List.length cases) in
      List.iteri
        (fun i case ->
          match preps.(i) with
          | Verdict _ -> ()
          | Diagnose failure ->
            let spec = spec_of ~early_exit case failure in
            let rec push () =
              match Service.submit svc spec with
              | Ok (Service.Ticket id) -> Hashtbl.replace tickets id i
              | Ok (Service.Coalesced _) ->
                (* Unreachable: the gate runs without triage. *)
                ()
              | Error (Service.Busy _ | Service.Shed _) ->
                ignore (Service.step svc);
                push ()
            in
            push ())
        cases;
      Service.drain svc;
      let by_case = Hashtbl.create (List.length cases) in
      let by_fail = Hashtbl.create 4 in
      List.iter
        (fun (c : Service.completion) ->
          match (Hashtbl.find_opt tickets c.Service.c_id, c.Service.c_result) with
          | Some i, Ok d -> Hashtbl.replace by_case i d
          | Some i, Error f ->
            (* Contained session failure: booked as a crash verdict,
               never as a missing case. *)
            Hashtbl.replace by_fail i (Service.session_failure_to_string f)
          | None, _ -> ())
        (Service.completions svc);
      let reports =
        List.mapi
          (fun i case ->
            match preps.(i) with
            | Verdict v -> report_of_verdict case v
            | Diagnose _ ->
              (match Hashtbl.find_opt by_case i with
               | Some d -> report_of_diagnosis case d
               | None ->
                 (match Hashtbl.find_opt by_fail i with
                  | Some detail -> report_of_verdict case (C.Crash detail)
                  | None ->
                    (* Unreachable after [drain]: every submission was
                       admitted (the push loop retries Busy) and every
                       admitted session completes — diagnosed or as a
                       typed failure. *)
                    report_of_verdict case (C.Crash "session never completed"))))
          cases
      in
      ( {
          R.r_seed = seed;
          r_count = count;
          r_cases = reports;
          r_stats = stats_of reports;
          r_faults = faults;
        },
        Service.stats svc ))

type chaos_summary = {
  cs_kills : int;
  cs_torn : int;
  cs_corrupted : int;
  cs_resubmitted : int;
  cs_failed_recoveries : int;
  cs_poisoned : int;
  cs_contained : int;
  cs_divergences : int;
}

let run_chaos ?(jobs = 0) ?(retries = 5) ?faults ?(early_exit = false)
    ?(sconfig = Service.default) ~rates ~seed ~count () =
  let cases =
    List.map
      (fun case ->
        match faults with
        | None -> case
        | Some _ -> { case with G.c_faults = faults })
      (R.cases ~retries ~seed ~count ())
  in
  Parallel.Pool.with_pool ~jobs (fun pool ->
      let preps =
        Parallel.Pool.map_array pool prep_case (Array.of_list cases)
      in
      (* Every diagnosable case's spec, poison applied up front — the
         resolver must hand recovery the poisoned spec, or a replayed
         session would not strike like the original did. *)
      let specs = Hashtbl.create (List.length cases) in
      List.iteri
        (fun i case ->
          match preps.(i) with
          | Verdict _ -> ()
          | Diagnose failure ->
            let sp =
              Chaos.poison_spec ~rates ~seed
                (spec_of ~early_exit case failure)
            in
            Hashtbl.replace specs case.G.c_name (i, sp))
        cases;
      let resolve name =
        Option.map snd (Hashtbl.find_opt specs name)
      in
      let spec_list =
        List.filter_map
          (fun case ->
            Option.map snd (Hashtbl.find_opt specs case.G.c_name))
          cases
      in
      let svc = Service.create ~sconfig ~pool () in
      List.iter
        (fun sp ->
          let rec push () =
            match Service.submit svc sp with
            | Ok _ -> ()
            | Error (Service.Busy _ | Service.Shed _) ->
              ignore (Service.step svc : bool);
              push ()
          in
          push ())
        spec_list;
      let oc =
        Chaos.drive ~pool ~rates ~seed ~resolve ~specs:spec_list svc
      in
      let by_name = Hashtbl.create (List.length oc.Chaos.o_done) in
      List.iter
        (fun (name, c) -> Hashtbl.replace by_name name c)
        oc.Chaos.o_done;
      let poisoned = ref 0 in
      let contained = ref 0 in
      let reports =
        List.concat
          (List.mapi
             (fun i case ->
               match preps.(i) with
               | Verdict v -> [ report_of_verdict case v ]
               | Diagnose _ ->
                 let name = case.G.c_name in
                 let completion = Hashtbl.find_opt by_name name in
                 if FC.poisoned rates ~seed ~name then begin
                   incr poisoned;
                   (match completion with
                    | Some { Service.c_result = Error _; _ } ->
                      incr contained
                    | Some _ | None -> ());
                   (* Destroyed by design: containment is the check,
                      not accuracy — keep it out of the statistics. *)
                   []
                 end
                 else
                   [
                     (match completion with
                      | Some { Service.c_result = Ok d; _ } ->
                        report_of_diagnosis case d
                      | Some { Service.c_result = Error f; _ } ->
                        report_of_verdict case
                          (C.Crash (Service.session_failure_to_string f))
                      | None ->
                        report_of_verdict case
                          (C.Crash "session never completed"));
                   ])
             cases)
      in
      ( {
          R.r_seed = seed;
          r_count = count;
          r_cases = reports;
          r_stats = stats_of reports;
          r_faults = faults;
        },
        oc.Chaos.o_stats,
        {
          cs_kills = oc.Chaos.o_kills;
          cs_torn = oc.Chaos.o_torn;
          cs_corrupted = oc.Chaos.o_corrupted;
          cs_resubmitted = oc.Chaos.o_resubmitted;
          cs_failed_recoveries = oc.Chaos.o_failed_recoveries;
          cs_poisoned = !poisoned;
          cs_contained = !contained;
          cs_divergences = oc.Chaos.o_stats.Service.st_divergences;
        } ))
