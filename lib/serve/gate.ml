(* The fuzz accuracy gate, through the multiplexed path: the same
   campaign [Fuzz.Runner.run] checks one-shot — same cases, same
   fault stamping, same oracle, same verdict scoring — but every
   diagnosable case is diagnosed as one session of a shared
   {!Service}, tens in flight at a time.

   Because a multiplexed diagnosis is bit-identical to its one-shot
   counterpart, the report (minus shrinking, which this gate skips)
   matches [Fuzz.Runner.run ~shrink:false] verdict for verdict — so
   the worst-pattern accuracy bar holds through the service exactly
   when it holds one-shot. *)

module G = Fuzz.Gen
module C = Fuzz.Check
module R = Fuzz.Runner

(* What the pre-service probe decided about one case. *)
type prep =
  | Verdict of C.verdict (* decided without diagnosing *)
  | Diagnose of Exec.Failure.report

let prep_case (case : G.case) =
  match C.divergence case with
  | Some d -> Verdict (C.Divergence d)
  | None ->
    (match (C.probe case).C.p_target with
     | None -> Verdict C.No_failure
     | Some failure -> Diagnose failure)

let spec_of ~early_exit (case : G.case) failure =
  {
    Service.sp_name = case.G.c_name;
    sp_failure_type = Exec.Failure.kind_to_string failure.Exec.Failure.kind;
    sp_config = { (C.config_of case) with Gist.Config.early_exit };
    sp_ingest = Gist.Server.Streaming;
    sp_oracle =
      Some
        (fun (sk : Fsketch.Sketch.t) ->
          match sk.predictors with
          | top :: _ -> C.accepted case top.Predict.Stats.predictor
          | [] -> false);
    sp_program = case.G.c_program;
    sp_workload_of = G.workload_of case;
    sp_failure = failure;
  }

let report_of_diagnosis (case : G.case) (d : Gist.Server.diagnosis) =
  let top =
    match d.Gist.Server.sketch.predictors with
    | t :: _ -> Some (C.describe case.G.c_program t.Predict.Stats.predictor)
    | [] -> None
  in
  {
    R.cr_name = case.G.c_name;
    cr_pattern = case.G.c_pattern;
    cr_seed = case.G.c_seed;
    cr_verdict = C.verdict_of_sketch case d.Gist.Server.sketch;
    cr_top = top;
    cr_iterations = d.Gist.Server.iterations;
    cr_total_runs = d.Gist.Server.total_runs;
    cr_shrink = None;
    cr_fleet = Some d.Gist.Server.fleet;
  }

let report_of_verdict (case : G.case) v =
  {
    R.cr_name = case.G.c_name;
    cr_pattern = case.G.c_pattern;
    cr_seed = case.G.c_seed;
    cr_verdict = v;
    cr_top = None;
    cr_iterations = 0;
    cr_total_runs = 0;
    cr_shrink = None;
    cr_fleet = None;
  }

(* [Runner.stats_of], which is not exported: per-pattern accuracy in
   [Gen.all_patterns] order, empty patterns skipped. *)
let stats_of cases =
  List.filter_map
    (fun p ->
      let of_p = List.filter (fun cr -> cr.R.cr_pattern = p) cases in
      if of_p = [] then None
      else
        Some
          {
            R.ps_pattern = p;
            ps_total = List.length of_p;
            ps_correct =
              List.length
                (List.filter (fun cr -> cr.R.cr_verdict = C.Correct) of_p);
          })
    G.all_patterns

let run ?(jobs = 0) ?(retries = 5) ?faults ?(early_exit = false)
    ?(sconfig = Service.default) ~seed ~count () =
  let cases =
    List.map
      (fun case ->
        match faults with
        | None -> case
        | Some _ -> { case with G.c_faults = faults })
      (R.cases ~retries ~seed ~count ())
  in
  Parallel.Pool.with_pool ~jobs (fun pool ->
      (* Pre-service probes fan out across the pool; order preserved. *)
      let preps =
        Parallel.Pool.map_array pool prep_case (Array.of_list cases)
      in
      let svc = Service.create ~sconfig ~pool () in
      (* Submit every diagnosable case, riding the backpressure: a
         [Busy] reject runs a scheduler round and retries, so the
         in-flight window stays saturated without unbounded queueing. *)
      let tickets = Hashtbl.create (List.length cases) in
      List.iteri
        (fun i case ->
          match preps.(i) with
          | Verdict _ -> ()
          | Diagnose failure ->
            let spec = spec_of ~early_exit case failure in
            let rec push () =
              match Service.submit svc spec with
              | Ok id -> Hashtbl.replace tickets id i
              | Error (Service.Busy _) ->
                ignore (Service.step svc);
                push ()
            in
            push ())
        cases;
      Service.drain svc;
      let by_case = Hashtbl.create (List.length cases) in
      List.iter
        (fun (c : Service.completion) ->
          match Hashtbl.find_opt tickets c.Service.c_id with
          | Some i -> Hashtbl.replace by_case i c.Service.c_diagnosis
          | None -> ())
        (Service.completions svc);
      let reports =
        List.mapi
          (fun i case ->
            match preps.(i) with
            | Verdict v -> report_of_verdict case v
            | Diagnose _ ->
              (match Hashtbl.find_opt by_case i with
               | Some d -> report_of_diagnosis case d
               | None ->
                 (* Unreachable after [drain]: every submission was
                    admitted (the push loop retries Busy) and every
                    admitted session completes. *)
                 report_of_verdict case (C.Crash "session never completed")))
          cases
      in
      ( {
          R.r_seed = seed;
          r_count = count;
          r_cases = reports;
          r_stats = stats_of reports;
          r_faults = faults;
        },
        Service.stats svc ))
