(** The service chaos harness: drive a {!Service} to completion while
    killing it between rounds, damaging the journal it must recover
    from, and poisoning sessions — all decisions seeded and pure
    ({!Faults.Chaos}), so a chaos campaign replays from its seed.

    The harness is the executable statement of the crash-only claims:
    whatever the kill schedule, every submitted bug still completes —
    diagnosed bit-identically, or contained as a typed failure — and
    the service object that emerges is live and balanced. *)

(** What one campaign did and produced. *)
type outcome = {
  o_done : (string * Service.completion) list;
      (** by bug name, first completion wins (recovery replays are
          at-least-once; duplicates are dropped by ticket identity) *)
  o_kills : int;
  o_torn : int;        (** kills that also tore the journal tail *)
  o_corrupted : int;   (** kills that also corrupted a checkpoint *)
  o_resubmitted : int; (** submissions lost to a torn tail, re-sent *)
  o_failed_recoveries : int;
      (** recover refusals (campaign continued on the live object) *)
  o_stats : Service.stats;  (** the final incarnation's ledger *)
}

(** Wrap a spec so every granted slot raises iff {!Faults.Chaos.poisoned}
    says the session is poisoned.  Identity on unpoisoned specs. *)
val poison_spec :
  rates:Faults.Chaos.rates -> seed:int -> Service.spec -> Service.spec

(** [drive ~rates ~seed ~resolve ~specs svc] steps [svc] to
    completion.  After every round, {!Faults.Chaos.draw} may kill the
    incarnation: the journal bytes are taken (optionally torn /
    checkpoint-corrupted per the draw), a fresh service is
    {!Service.recover}ed from them, and the campaign continues on it.
    Completions are harvested every round and deduplicated by name;
    submissions lost to a torn tail are detected (a name with no
    completion once the service idles) and resubmitted.  [specs] is
    the full submitted population; [resolve] must cover it. *)
val drive :
  ?pool:Parallel.Pool.t ->
  rates:Faults.Chaos.rates ->
  seed:int ->
  resolve:(string -> Service.spec option) ->
  specs:Service.spec list ->
  Service.t ->
  outcome
