(** Diagnosis as a service: a deterministic event scheduler
    multiplexing many concurrent {!Gist.Server.Session} diagnoses over
    one shared {!Parallel.Pool}, with admission control, fair
    round-robin budget sharing, and typed backpressure.

    Determinism contract: for a fixed submission sequence, every
    per-bug diagnosis the service completes is bit-identical (all
    fields except host time) to the same spec diagnosed one-shot
    through {!Gist.Server.diagnose}, at any pool size and under any
    interleaving with other sessions.  Completion order, round counts
    and the whole stats ledger are likewise independent of [--jobs]. *)

(** Everything needed to open one bug's diagnosis session. *)
type spec = {
  sp_name : string;
  sp_failure_type : string;
  sp_config : Gist.Config.t;
  sp_ingest : Gist.Server.ingest_mode;
  sp_oracle : (Fsketch.Sketch.t -> bool) option;
  sp_program : Ir.Types.program;
  sp_workload_of : int -> Exec.Interp.workload;
  sp_failure : Exec.Failure.report;
}

(** Scheduler shape.  [max_inflight]: concurrent admitted sessions.
    [max_queue]: submissions waiting for admission before {!submit}
    refuses ([0] = no waiting room: refuse once in-flight is full).
    [quantum]: fleet slots granted per session per round.
    [round_budget]: total slots run per round (>= [quantum]); when
    active sessions want more than the budget, the ring rotates so no
    session waits more than [max_inflight] rounds for service. *)
type sconfig = {
  max_inflight : int;
  max_queue : int;
  quantum : int;
  round_budget : int;
}

val default : sconfig

(** Typed backpressure: the service is saturated; retry after a
    {!step}. *)
type sreject = Busy of { inflight : int; queued : int }

val sreject_label : sreject -> string
val sreject_to_string : sreject -> string

type completion = {
  c_id : int;               (** the ticket {!submit} returned *)
  c_name : string;
  c_diagnosis : Gist.Server.diagnosis;
  c_admitted_round : int;
  c_completed_round : int;
  c_slots : int;            (** fleet slots this session consumed *)
  c_wall_s : float;         (** host seconds, admission to completion *)
}

(** Service ledger.  Always balances: [st_submitted] =
    [st_completed] + [st_rejected] + queued + in-flight (the last two
    are zero after {!drain}).  [st_max_wait_rounds] is the fairness
    witness: the worst gap, in scheduler rounds, any session waited
    between two services. *)
type stats = {
  st_submitted : int;
  st_admitted : int;
  st_rejected : int;
  st_completed : int;
  st_rounds : int;
  st_slots : int;
  st_peak_inflight : int;
  st_max_wait_rounds : int;
}

type t

(** @raise Invalid_argument on a malformed [sconfig]. *)
val create : ?sconfig:sconfig -> ?pool:Parallel.Pool.t -> unit -> t

val inflight : t -> int
val queued : t -> int

(** Ticket a session for admission, or refuse with typed
    backpressure.  Ticket ids are unique and become the session's
    wire-protocol session key. *)
val submit : t -> spec -> (int, sreject) result

(** One scheduler round (admit, grant, run, deliver, finalize,
    rotate); [false] when there is nothing left to do. *)
val step : t -> bool

(** Run rounds until every queued and admitted session completes. *)
val drain : t -> unit

(** Completed sessions, in completion order (deterministic). *)
val completions : t -> completion list

(** {!completions}, harvesting: the internal list is cleared, so a
    long-running service retains nothing per completed session. *)
val take_completions : t -> completion list

val stats : t -> stats
