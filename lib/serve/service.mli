(** Diagnosis as a service: a deterministic event scheduler
    multiplexing many concurrent {!Gist.Server.Session} diagnoses over
    one shared {!Parallel.Pool}, with admission control, fair
    round-robin budget sharing, typed backpressure — and a crash-only
    lifecycle: every scheduler decision is journaled ({!Journal}),
    the full service state is checkpointed periodically, and
    {!recover} rebuilds a killed service from journal bytes such that
    the diagnoses it goes on to produce are bit-identical to the ones
    the uninterrupted service would have produced.

    Determinism contract: for a fixed submission sequence, every
    per-bug diagnosis the service completes is bit-identical (all
    fields except host time) to the same spec diagnosed one-shot
    through {!Gist.Server.diagnose}, at any pool size and under any
    interleaving with other sessions.  Completion order, round counts
    and the whole stats ledger are likewise independent of [--jobs].
    Recovery preserves all of it: kill the process after any round,
    {!recover} from the journal, and the remaining completions are
    the uninterrupted run's, byte for byte.

    Blast-radius contract: a session whose granted thunks raise, or
    whose own state machine raises, never takes the service down — the
    failure is contained to that session's typed [Error] completion
    (strikes then quarantine for poisoned thunks, immediate [Crashed]
    for a broken state machine, [Timed_out] for deadline eviction). *)

(** Everything needed to open one bug's diagnosis session.
    [sp_case], when the bug came from the fuzzer, carries the
    generated case so per-cluster artifacts can shrink a standalone
    reproducer; it never influences scheduling or diagnosis. *)
type spec = {
  sp_name : string;
  sp_failure_type : string;
  sp_config : Gist.Config.t;
  sp_ingest : Gist.Server.ingest_mode;
  sp_oracle : (Fsketch.Sketch.t -> bool) option;
  sp_program : Ir.Types.program;
  sp_workload_of : int -> Exec.Interp.workload;
  sp_failure : Exec.Failure.report;
  sp_case : Fuzz.Gen.case option;
}

(** Scheduler shape.  [max_inflight]: concurrent admitted sessions.
    [max_queue]: submissions waiting for admission before {!submit}
    refuses ([0] = no waiting room: refuse once in-flight is full).
    [quantum]: fleet slots granted per session per round.
    [round_budget]: total slots run per round (>= [quantum]); when
    active sessions want more than the budget, the ring rotates so no
    session waits more than [max_inflight] rounds for service.
    [checkpoint_every_rounds]: journal a full-state checkpoint every
    that many rounds ([0] = only the initial and {!shutdown}
    checkpoints); recovery replays at most that many rounds.
    [session_deadline_rounds]: evict a session still undiagnosed that
    many rounds after admission ([0] = no deadline).
    [max_session_strikes]: rounds with raising thunks a session
    survives (each substitutes deterministic crash outcomes) before it
    is quarantined.

    Triage (the duplicate-storm front-end; default off so a plain
    service is byte-compatible with earlier journals and tests):
    [triage] turns fingerprint-keyed coalescing, the two admission
    lanes and recurrence shedding on.  [max_clusters] bounds the LRU
    cluster table.  [fresh_weight]/[recur_weight] set the
    deficit-round-robin admission ratio between never-seen
    fingerprints and re-diagnoses of known ones.  [recency_rounds]:
    a diagnosed cluster keeps coalescing duplicates for this many
    rounds, after which a duplicate re-opens it as a recurrence-lane
    session ([0] = coalesce for as long as the cluster stays
    tabled). *)
type sconfig = {
  max_inflight : int;
  max_queue : int;
  quantum : int;
  round_budget : int;
  checkpoint_every_rounds : int;
  session_deadline_rounds : int;
  max_session_strikes : int;
  triage : bool;
  max_clusters : int;
  fresh_weight : int;
  recur_weight : int;
  recency_rounds : int;
}

val default : sconfig

(** Why an [sconfig] was refused. *)
type cerror =
  | Bad_inflight of int
  | Bad_queue of int
  | Bad_quantum of int
  | Bad_budget of { budget : int; quantum : int }
  | Bad_checkpoint_every of int
  | Bad_deadline of int
  | Bad_strikes of int
  | Bad_clusters of int
  | Bad_lane_weight of { fresh : int; recur : int }
  | Bad_recency of int

val cerror_to_string : cerror -> string

(** Typed validation; {!create} is [validate] with the [Error] raised
    as [Invalid_argument]. *)
val validate : sconfig -> (sconfig, cerror) result

(** Typed refusals.  [Busy]: the service is saturated (or draining);
    retry after [retry_after_rounds] calls to {!step} — the backlog's
    depth over the round budget, the deterministic earliest point
    admission can plausibly succeed.  [Shed] (triage only): the queue
    bound was hit and the submission is a recurrence of an
    already-diagnosed fingerprint — the shed class under load; fresh
    bugs are never shed. *)
type sreject =
  | Busy of { inflight : int; queued : int; retry_after_rounds : int }
  | Shed of { queued : int; retry_after_rounds : int }

val sreject_label : sreject -> string
val sreject_to_string : sreject -> string

(** What {!submit} accepted: a ticketed session, or — with triage on —
    a duplicate coalesced onto cluster [canonical] (the ticket id of
    the session diagnosing, or that diagnosed, this fingerprint);
    [count] is the cluster's recurrence count including this
    arrival.  A coalesced submission opens no session and books no
    queue capacity. *)
type admission =
  | Ticket of int
  | Coalesced of { canonical : int; count : int }

(** The two admission lanes: never-seen fingerprints (and every
    session of a triage-less service) versus re-diagnoses of known
    ones. *)
type lane = Fresh_lane | Recur_lane

val lane_label : lane -> string

(** Why a session was failed rather than diagnosed. *)
type failure_reason =
  | Crashed      (** the session state machine itself raised *)
  | Quarantined  (** [max_session_strikes] rounds of raising thunks *)
  | Timed_out    (** evicted at [session_deadline_rounds] *)

type session_failure = {
  sf_reason : failure_reason;
  sf_detail : string;  (** the exception text, or the deadline *)
  sf_strikes : int;
}

val failure_reason_label : failure_reason -> string
val session_failure_to_string : session_failure -> string

type completion = {
  c_id : int;               (** the ticket {!submit} returned *)
  c_name : string;
  c_result : (Gist.Server.diagnosis, session_failure) result;
  c_admitted_round : int;
  c_completed_round : int;
  c_slots : int;            (** fleet slots this session consumed *)
  c_wall_s : float;         (** host seconds, admission to completion *)
}

(** Service ledger.  Always balances: [st_submitted] =
    [st_completed] + [st_rejected] + [st_coalesced] + [st_shed] +
    queued + in-flight (the last two are zero after {!drain}) — and
    keeps balancing across {!recover}, eviction and quarantine, since
    every failed session still books a completion ([st_failed] counts
    the [Error] subset of [st_completed]).  [st_max_wait_rounds] is
    the fairness witness: the worst gap, in scheduler rounds, any
    session waited between two services; [st_fresh_wait_rounds] /
    [st_recur_wait_rounds] split the same witness by lane, folding in
    admission-queue waits — the fresh-lane bound is the
    no-starvation-under-storm gate.  [st_divergences] counts recovery
    audit mismatches (journaled digest vs recomputed) — zero unless
    the journal was damaged. *)
type stats = {
  st_submitted : int;
  st_admitted : int;
  st_rejected : int;
  st_completed : int;
  st_failed : int;
  st_rounds : int;
  st_slots : int;
  st_peak_inflight : int;
  st_max_wait_rounds : int;
  st_checkpoints : int;
  st_divergences : int;
  st_coalesced : int;
  st_shed : int;
  st_fresh_admitted : int;
  st_recur_admitted : int;
  st_fresh_wait_rounds : int;
  st_recur_wait_rounds : int;
  st_clusters : int;          (** live cluster-table size *)
  st_evicted_clusters : int;  (** Done clusters dropped by the LRU bound *)
}

type t

(** [journal] (default true) turns the write-ahead journal on; pass
    [false] only to measure its cost (a journal-less service cannot
    be recovered).  Writes the initial checkpoint.
    @raise Invalid_argument on a malformed [sconfig]. *)
val create :
  ?sconfig:sconfig -> ?journal:bool -> ?pool:Parallel.Pool.t -> unit -> t

val inflight : t -> int
val queued : t -> int

(** Ticket a session for admission, coalesce a duplicate onto its
    cluster (triage only), or refuse with typed backpressure/shedding.
    Ticket ids are unique and become the session's wire-protocol
    session key.  Always refuses while draining.  With triage on, the
    fingerprint is computed here (one slice of an already-memoised
    program) and the decision is journaled as a [Triaged] record. *)
val submit : t -> spec -> (admission, sreject) result

(** One scheduler round (evict expired, admit, grant, run, deliver —
    with containment — finalize, journal, maybe checkpoint, rotate);
    [false] when there is nothing left to do. *)
val step : t -> bool

(** Run rounds until every queued and admitted session completes. *)
val drain : t -> unit

(** Completed sessions, in completion order (deterministic). *)
val completions : t -> completion list

(** {!completions}, harvesting: the internal list is cleared, so a
    long-running service retains nothing per completed session.
    Harvesting also re-arms checkpointing — a checkpoint is only
    written when no unharvested completion could be lost with it. *)
val take_completions : t -> completion list

(** A queued recurrence ticket dropped to make room for a fresh bug —
    load shedding is typed and harvested, never silent.  (A {!submit}
    refused outright gets its [Shed] synchronously; notices exist for
    tickets shed {e after} acceptance.) *)
type shed_notice = {
  sh_id : int;
  sh_name : string;
  sh_fp : int;
  sh_round : int;
  sh_retry_after_rounds : int;
}

(** Harvest shed notices (oldest first), clearing them; like
    {!take_completions}, harvesting re-arms the blocked cadence
    checkpoint. *)
val take_shed : t -> shed_notice list

val stats : t -> stats

(** {2 Introspection} *)

(** One live session, for a status report. *)
type session_view = {
  v_id : int;
  v_name : string;
  v_lane : lane;
  v_admitted_round : int;
  v_rounds_waiting : int;  (** rounds since last granted slots *)
  v_slots : int;
  v_strikes : int;
  v_progress : Gist.Server.Session.progress;
}

(** Every admitted session, in ring order.  Cheap; never perturbs the
    scheduler. *)
val status : t -> session_view list

(** Lane occupancy: queue depths, live DRR credits, per-lane
    admissions. *)
type lane_view = {
  lv_fresh_queued : int;
  lv_recur_queued : int;
  lv_fresh_credit : int;
  lv_recur_credit : int;
  lv_fresh_admitted : int;
  lv_recur_admitted : int;
}

val lanes : t -> lane_view

(** The cluster table, most recently touched first; empty when triage
    is off.  Cheap; never perturbs the scheduler. *)
val clusters : t -> Triage.view list

val triage_enabled : t -> bool

(** {2 Crash-only lifecycle} *)

(** The journal's bytes so far (the empty string when the journal is
    off).  Persist them wherever you like ({!Journal.save_file});
    any prefix of any call's result is a valid recovery input — that
    is the crash model. *)
val journal_bytes : t -> string

(** Journal a full-state checkpoint now.  [false] — and no record
    written — when completions are waiting to be harvested (a
    checkpoint must never strand a completion: un-harvested results
    are regenerated by replay, harvested ones must not be) or when the
    journal is off. *)
val checkpoint : t -> bool

(** Stop admitting: every later {!submit} is refused.  Already-queued
    and in-flight sessions still run to completion, so the ledger
    balances at shutdown. *)
val request_drain : t -> unit

(** Graceful shutdown: {!request_drain}, run every remaining session
    down, harvest all completions, journal a final checkpoint, return
    the harvest. *)
val shutdown : t -> completion list

(** Why {!recover} refused. *)
type rerror =
  | No_checkpoint
      (** no intact checkpoint record in the bytes — nothing to
          restart from *)
  | Unresolved_spec of string
      (** the journal names a bug [resolve] cannot supply *)
  | Bad_session of { name : string; detail : string }
      (** a checkpointed session snapshot failed {!Gist.Server.Session.restore} *)

val rerror_to_string : rerror -> string

(** [recover ~resolve bytes] rebuilds a killed service from journal
    bytes: restore the newest intact checkpoint (a corrupted one falls
    back to an older one — the initial checkpoint is written by
    {!create}, so an untorn journal always has one), then replay every
    later journaled decision — re-submitting through [resolve],
    re-running rounds — auditing the replayed digests against the
    journaled ones ([st_divergences]).  Scheduler shape comes from the
    checkpoint, not the caller, so replay matches the original.

    [resolve] maps a bug name back to its spec (specs hold closures
    and cannot live in the journal); it must supply every name the
    journal mentions.

    The recovered service owns a fresh journal (seeded with a new
    initial checkpoint), so a second kill recovers the same way. *)
val recover :
  ?pool:Parallel.Pool.t ->
  resolve:(string -> spec option) ->
  string ->
  (t, rerror) result
