(** The fuzz accuracy gate through the multiplexed path: the exact
    campaign {!Fuzz.Runner.run} checks one-shot — same cases, fault
    stamping, oracle and verdict scoring — with every diagnosable case
    diagnosed as one session of a shared {!Service} (shrinking
    skipped).  Because multiplexed diagnoses are bit-identical to
    their one-shot counterparts, the report matches
    [Fuzz.Runner.run ~shrink:false] verdict for verdict. *)

(** [run ~seed ~count ()] returns the campaign report plus the
    service's scheduling ledger.  [sconfig] (default
    {!Service.default}) shapes the multiplexing; submissions refused
    with [Busy] are retried after a scheduler round, so the in-flight
    window stays saturated without unbounded queueing. *)
val run :
  ?jobs:int ->
  ?retries:int ->
  ?faults:Faults.Fault.rates * int ->
  ?early_exit:bool ->
  ?sconfig:Service.sconfig ->
  seed:int ->
  count:int ->
  unit ->
  Fuzz.Runner.report * Service.stats

(** What the chaos campaign did on top of the fuzz verdicts. *)
type chaos_summary = {
  cs_kills : int;
  cs_torn : int;
  cs_corrupted : int;
  cs_resubmitted : int;
  cs_failed_recoveries : int;
  cs_poisoned : int;    (** sessions {!Faults.Chaos.poisoned} *)
  cs_contained : int;   (** poisoned sessions that completed as typed
                            failures — must equal [cs_poisoned] *)
  cs_divergences : int; (** recovery audit mismatches, final ledger *)
}

(** {!run} under service faults: the same campaign driven by
    {!Chaos.drive} — seeded kills between rounds, torn journal tails
    and corrupted checkpoints ahead of recovery, poisoned sessions.

    Poisoned cases are excluded from the report's accuracy statistics
    (their diagnosis is destroyed by design; what the gate checks is
    containment, via [cs_contained]); every other case must come back
    with the same verdict as the unkilled service — recovery is
    byte-identical — so the worst-pattern accuracy bar carries over
    unchanged. *)
val run_chaos :
  ?jobs:int ->
  ?retries:int ->
  ?faults:Faults.Fault.rates * int ->
  ?early_exit:bool ->
  ?sconfig:Service.sconfig ->
  rates:Faults.Chaos.rates ->
  seed:int ->
  count:int ->
  unit ->
  Fuzz.Runner.report * Service.stats * chaos_summary
