(** The fuzz accuracy gate through the multiplexed path: the exact
    campaign {!Fuzz.Runner.run} checks one-shot — same cases, fault
    stamping, oracle and verdict scoring — with every diagnosable case
    diagnosed as one session of a shared {!Service} (shrinking
    skipped).  Because multiplexed diagnoses are bit-identical to
    their one-shot counterparts, the report matches
    [Fuzz.Runner.run ~shrink:false] verdict for verdict. *)

(** [run ~seed ~count ()] returns the campaign report plus the
    service's scheduling ledger.  [sconfig] (default
    {!Service.default}) shapes the multiplexing; submissions refused
    with [Busy] are retried after a scheduler round, so the in-flight
    window stays saturated without unbounded queueing. *)
val run :
  ?jobs:int ->
  ?retries:int ->
  ?faults:Faults.Fault.rates * int ->
  ?early_exit:bool ->
  ?sconfig:Service.sconfig ->
  seed:int ->
  count:int ->
  unit ->
  Fuzz.Runner.report * Service.stats
