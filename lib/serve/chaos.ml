(* Kill-and-recover campaigns over a live Service.  See chaos.mli. *)

module FC = Faults.Chaos

type outcome = {
  o_done : (string * Service.completion) list;
  o_kills : int;
  o_torn : int;
  o_corrupted : int;
  o_resubmitted : int;
  o_failed_recoveries : int;
  o_stats : Service.stats;
}

let poison_spec ~rates ~seed (sp : Service.spec) =
  if not (FC.poisoned rates ~seed ~name:sp.Service.sp_name) then sp
  else
    {
      sp with
      Service.sp_workload_of =
        (fun _client -> failwith ("chaos poison: " ^ sp.Service.sp_name));
    }

let drive ?(pool = Parallel.Pool.sequential) ~rates ~seed ~resolve ~specs svc =
  let done_ = Hashtbl.create 64 in
  let order = ref [] in
  let harvest svc =
    List.iter
      (fun (c : Service.completion) ->
        if not (Hashtbl.mem done_ c.Service.c_name) then begin
          Hashtbl.replace done_ c.Service.c_name c;
          order := c.Service.c_name :: !order
        end)
      (Service.take_completions svc)
  in
  let kills = ref 0 in
  let torn = ref 0 in
  let corrupted = ref 0 in
  let resubmitted = ref 0 in
  let failed_recoveries = ref 0 in
  (* The campaign clock the draws are keyed by.  NOT the service's
     round counter: a torn tail rewinds the recovered service to an
     earlier round, and a draw keyed by round number would then
     deterministically repeat the same kill and the same tear at the
     same round, forever.  The clock only moves forward, so every
     re-lived round faces a fresh draw and the campaign always makes
     progress. *)
  let tick = ref 0 in
  let rec loop svc =
    if Service.step svc then begin
      harvest svc;
      incr tick;
      let plan = FC.draw rates ~seed ~round:!tick in
      if not plan.FC.p_kill then loop svc
      else begin
        incr kills;
        (* The kill: this incarnation is dead; all that survives is
           whatever prefix of the journal made it to "disk" — here,
           possibly torn and possibly bit-rotted. *)
        let bytes = Service.journal_bytes svc in
        let bytes =
          match plan.FC.p_torn with
          | Some n ->
            incr torn;
            Journal.tear ~n bytes
          | None -> bytes
        in
        let bytes =
          match plan.FC.p_ckpt_corrupt with
          | Some salt -> (
            match Journal.corrupt_last_checkpoint ~salt bytes with
            | Some damaged ->
              incr corrupted;
              damaged
            | None -> bytes)
          | None -> bytes
        in
        match Service.recover ~pool ~resolve bytes with
        | Ok svc' ->
          harvest svc';
          loop svc'
        | Error _ ->
          (* Refused recovery (e.g. the tear ate every checkpoint in a
             journal that was nearly empty).  The campaign carries on
             with the still-live object — the kill just didn't take —
             and books the refusal. *)
          incr failed_recoveries;
          loop svc
      end
    end
    else begin
      harvest svc;
      (* A torn tail can silently lose journaled submissions: the
         recovered incarnation never knew them.  Detect by absence and
         resubmit — the same at-least-once stance the completion dedup
         takes. *)
      let missing =
        List.filter
          (fun (sp : Service.spec) ->
            not (Hashtbl.mem done_ sp.Service.sp_name))
          specs
      in
      if missing = [] then svc
      else begin
        List.iter
          (fun sp ->
            incr resubmitted;
            let rec push () =
              match Service.submit svc sp with
              | Ok _ -> ()
              | Error (Service.Busy _ | Service.Shed _) ->
                ignore (Service.step svc : bool);
                harvest svc;
                push ()
            in
            push ())
          missing;
        loop svc
      end
    end
  in
  let svc = loop svc in
  harvest svc;
  {
    o_done =
      List.rev_map (fun name -> (name, Hashtbl.find done_ name)) !order;
    o_kills = !kills;
    o_torn = !torn;
    o_corrupted = !corrupted;
    o_resubmitted = !resubmitted;
    o_failed_recoveries = !failed_recoveries;
    o_stats = Service.stats svc;
  }
