(** Dedup/cluster front-end ahead of service admission.

    An LRU-bounded table of failure clusters keyed by
    {!Fsketch.Fingerprint} value.  The service consults it on every
    submission: a fingerprint already in flight or recently diagnosed
    is {e coalesced} (the recurrence counter bumps, no new session); a
    fingerprint diagnosed too long ago re-opens as a recurrence-lane
    session; an unknown fingerprint opens a fresh cluster.  Only
    [Done] clusters are LRU-evicted — an [Open] one is pinned by its
    session — so the table stays within [max_clusters] plus whatever
    is actually in flight.

    Everything here is a deterministic function of the submission
    sequence and round numbers, which is what lets the table live in
    service checkpoints and recover bit-identically. *)

type t

(** [create ~max_clusters ~recency_rounds].  [recency_rounds = 0]
    means a diagnosed cluster keeps coalescing duplicates for as long
    as it stays in the table. *)
val create : max_clusters:int -> recency_rounds:int -> t

val size : t -> int

(** Done-clusters dropped by the LRU bound so far. *)
val evicted : t -> int

(** What the table says about a fingerprint — pure; commit with
    {!open_fresh}, {!reopen} or {!coalesce} once admission capacity
    is settled. *)
type verdict =
  | New
  | Recurrence of { canonical : int; done_round : int }
  | Duplicate of { canonical : int; count : int }

val classify : t -> round:int -> int -> verdict

val open_fresh : t -> fp:int -> name:string -> id:int -> unit
val reopen : t -> fp:int -> name:string -> id:int -> unit

(** Undo a {!reopen} whose ticket was load-shed before admission: the
    cluster returns to [Done] at its original round; the recurrence
    count keeps the arrival. *)
val revert_reopen : t -> fp:int -> canonical:int -> done_round:int -> unit

val coalesce : t -> fp:int -> unit

(** Book the canonical session's completion.  [ok = true] freezes the
    cluster as recently diagnosed (recording the completion digest);
    [ok = false] drops it, so duplicates of a failed diagnosis get a
    fresh attempt. *)
val completed : t -> fp:int -> id:int -> round:int -> digest:int -> ok:bool -> unit

(** One cluster, for status screens and tests. *)
type view = {
  v_fp : int;
  v_name : string;
  v_canonical : int;
  v_count : int;
  v_done_round : int;  (** -1 while the diagnosis is in flight *)
}

(** Most recently touched first; deterministic. *)
val views : t -> view list

(** {2 Codec} — embedded in the service checkpoint; encodes entries
    in last-touch order, so equal tables encode byte-identically. *)

val encode : Buffer.t -> t -> unit

(** @raise Hw.Wirebuf.Short on undecodable bytes. *)
val decode : Hw.Wirebuf.reader -> t

(** Byte-equality of the two tables' encodings. *)
val equal : t -> t -> bool
