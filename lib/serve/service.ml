(* Diagnosis as a service: a deterministic scheduler multiplexing many
   {!Gist.Server.Session} state machines over one shared pool.

   One scheduler round: admit queued submissions up to the in-flight
   cap, walk the active ring granting each session up to [quantum]
   fleet slots (never more than [round_budget] across the round), run
   every granted thunk in ONE parallel batch over the shared pool,
   deliver each session its outcome segment in ring order, finalize
   whatever finished, then move the sessions just served to the back
   of the ring so budget exhaustion cannot starve the tail.

   Determinism: admission order is submission order; grant order is
   ring order; the single [Pool.map_array] per round returns outcomes
   in submission order whatever the job count.  Because a session's
   own outcome fold is in its own slot order regardless of what the
   scheduler interleaves between grants, every diagnosis the service
   produces is bit-identical (all fields but host time) to the same
   spec run through the one-shot [Gist.Server.diagnose]. *)

module Server = Gist.Server
module Session = Gist.Server.Session

type spec = {
  sp_name : string;
  sp_failure_type : string;
  sp_config : Gist.Config.t;
  sp_ingest : Server.ingest_mode;
  sp_oracle : (Fsketch.Sketch.t -> bool) option;
  sp_program : Ir.Types.program;
  sp_workload_of : int -> Exec.Interp.workload;
  sp_failure : Exec.Failure.report;
}

type sconfig = {
  max_inflight : int;
  max_queue : int;
  quantum : int;
  round_budget : int;
}

let default = { max_inflight = 16; max_queue = 64; quantum = 8; round_budget = 64 }

let check_sconfig c =
  if c.max_inflight <= 0 then invalid_arg "Service: max_inflight must be > 0";
  if c.max_queue < 0 then invalid_arg "Service: max_queue must be >= 0";
  if c.quantum <= 0 then invalid_arg "Service: quantum must be > 0";
  if c.round_budget < c.quantum then
    invalid_arg "Service: round_budget must be >= quantum";
  c

type sreject = Busy of { inflight : int; queued : int }

let sreject_label (Busy _) = "busy"

let sreject_to_string (Busy { inflight; queued }) =
  Printf.sprintf
    "service saturated: %d sessions in flight, %d queued for admission"
    inflight queued

type completion = {
  c_id : int;
  c_name : string;
  c_diagnosis : Server.diagnosis;
  c_admitted_round : int;
  c_completed_round : int;
  c_slots : int;
  c_wall_s : float;
}

type stats = {
  st_submitted : int;
  st_admitted : int;
  st_rejected : int;
  st_completed : int;
  st_rounds : int;
  st_slots : int;
  st_peak_inflight : int;
  st_max_wait_rounds : int;
}

(* One admitted session and its scheduling ledger. *)
type active = {
  a_id : int;
  a_name : string;
  a_session : Session.t;
  a_admitted_round : int;
  a_t0 : float;
  mutable a_last_served : int;
  mutable a_slots : int;
}

type t = {
  cfg : sconfig;
  pool : Parallel.Pool.t;
  queue : (int * spec) Queue.t;
  mutable active : active list; (* ring order; admission appends *)
  mutable completions : completion list; (* newest first *)
  mutable submitted : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable rounds : int;
  mutable slots : int;
  mutable peak_inflight : int;
  mutable max_wait : int;
}

let create ?(sconfig = default) ?(pool = Parallel.Pool.sequential) () =
  {
    cfg = check_sconfig sconfig;
    pool;
    queue = Queue.create ();
    active = [];
    completions = [];
    submitted = 0;
    admitted = 0;
    rejected = 0;
    completed = 0;
    rounds = 0;
    slots = 0;
    peak_inflight = 0;
    max_wait = 0;
  }

let inflight t = List.length t.active
let queued t = Queue.length t.queue

(* Admission control: a submission is either ticketed into the queue
   or refused with a typed [Busy] — backpressure the caller can act
   on (retry after [step]) instead of unbounded buffering.  Every
   submission, accepted or not, is booked, so the ledger always
   balances: submitted = completed + rejected + queued + in-flight. *)
let submit t spec =
  t.submitted <- t.submitted + 1;
  if Queue.length t.queue >= t.cfg.max_queue && t.cfg.max_queue > 0 then begin
    t.rejected <- t.rejected + 1;
    Error (Busy { inflight = inflight t; queued = queued t })
  end
  else if t.cfg.max_queue = 0 && inflight t >= t.cfg.max_inflight then begin
    (* No queue at all: admission happens next [step]; refuse once the
       in-flight cap alone is saturated. *)
    t.rejected <- t.rejected + 1;
    Error (Busy { inflight = inflight t; queued = queued t })
  end
  else begin
    let id = t.submitted in
    Queue.add (id, spec) t.queue;
    Ok id
  end

let finalize t round a =
  match Session.need a.a_session with
  | Session.Slots _ -> true
  | Session.Finished ->
    t.completions <-
      {
        c_id = a.a_id;
        c_name = a.a_name;
        c_diagnosis = Session.result a.a_session;
        c_admitted_round = a.a_admitted_round;
        c_completed_round = round;
        c_slots = a.a_slots;
        c_wall_s = Unix.gettimeofday () -. a.a_t0;
      }
      :: t.completions;
    t.completed <- t.completed + 1;
    false

let step t =
  if t.active = [] && Queue.is_empty t.queue then false
  else begin
    t.rounds <- t.rounds + 1;
    let round = t.rounds in
    (* 1. Admission, in submission order.  The session's offline phase
       (slice, instrumentation cache) runs here, once, at admission. *)
    while inflight t < t.cfg.max_inflight && not (Queue.is_empty t.queue) do
      let id, sp = Queue.take t.queue in
      let session =
        Session.create ~config:sp.sp_config ~ingest:sp.sp_ingest
          ?oracle:sp.sp_oracle ~id ~bug_name:sp.sp_name
          ~failure_type:sp.sp_failure_type ~program:sp.sp_program
          ~workload_of:sp.sp_workload_of ~failure:sp.sp_failure ()
      in
      t.admitted <- t.admitted + 1;
      t.active <-
        t.active
        @ [
            {
              a_id = id;
              a_name = sp.sp_name;
              a_session = session;
              a_admitted_round = round;
              a_t0 = Unix.gettimeofday ();
              a_last_served = round - 1;
              a_slots = 0;
            };
          ]
    done;
    t.peak_inflight <- max t.peak_inflight (inflight t);
    (* 2. Grant: walk the ring, [quantum] slots per session, stopping
       when the round budget is spent. *)
    let budget = ref t.cfg.round_budget in
    let grants =
      List.filter_map
        (fun a ->
          if !budget <= 0 then None
          else
            match Session.need a.a_session with
            | Session.Finished -> None
            | Session.Slots n ->
              let k = min (min t.cfg.quantum n) !budget in
              if k <= 0 then None
              else begin
                let thunks = Session.grant a.a_session k in
                budget := !budget - Array.length thunks;
                t.max_wait <- max t.max_wait (round - a.a_last_served - 1);
                a.a_last_served <- round;
                Some (a, thunks)
              end)
        t.active
    in
    (* 3. One parallel batch per round over the shared pool: outcomes
       come back in submission order at any job count. *)
    let all = Array.concat (List.map snd grants) in
    let outs = Parallel.Pool.map_array t.pool (fun th -> th ()) all in
    (* 4. Deliver each session its segment, in ring (= grant) order. *)
    let off = ref 0 in
    List.iter
      (fun (a, thunks) ->
        let n = Array.length thunks in
        Session.deliver a.a_session (Array.sub outs !off n);
        off := !off + n;
        a.a_slots <- a.a_slots + n;
        t.slots <- t.slots + n)
      grants;
    (* 5. Finalize finished sessions, freeing in-flight capacity. *)
    t.active <- List.filter (finalize t round) t.active;
    (* 6. Re-ring: sessions served this round go to the back, the rest
       keep their order at the front.  (Blindly rotating the head is
       not enough: when the served head finishes and is removed, the
       next — unserved — session would be the one rotated to the back,
       and under completion churn the same session can be bumped
       unserved round after round.)  At least one session is served
       every round (budget >= quantum), so an unserved session loses
       at least one predecessor per round and reaches the head within
       [max_inflight] rounds. *)
    let unserved, served =
      List.partition (fun a -> a.a_last_served < round) t.active
    in
    t.active <- unserved @ served;
    true
  end

let rec drain t = if step t then drain t

let completions t = List.rev t.completions

(* Harvest and forget: a long-running service must not retain every
   diagnosis it ever produced. *)
let take_completions t =
  let cs = List.rev t.completions in
  t.completions <- [];
  cs

let stats t =
  {
    st_submitted = t.submitted;
    st_admitted = t.admitted;
    st_rejected = t.rejected;
    st_completed = t.completed;
    st_rounds = t.rounds;
    st_slots = t.slots;
    st_peak_inflight = t.peak_inflight;
    st_max_wait_rounds = t.max_wait;
  }
