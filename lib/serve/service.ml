(* Diagnosis as a service: a deterministic scheduler multiplexing many
   {!Gist.Server.Session} state machines over one shared pool.

   One scheduler round: evict sessions past their deadline, admit
   queued submissions up to the in-flight cap, walk the active ring
   granting each session up to [quantum] fleet slots (never more than
   [round_budget] across the round), run every granted thunk in ONE
   parallel batch over the shared pool — each thunk wrapped so a raise
   becomes a value, not a service crash — deliver each session its
   outcome segment in ring order (substituting deterministic crash
   outcomes for raising slots, striking the session, quarantining it
   at the strike limit), finalize whatever finished, journal the
   round's audit digest, maybe checkpoint, then move the sessions just
   served to the back of the ring so budget exhaustion cannot starve
   the tail.

   Determinism: admission order is submission order; grant order is
   ring order; the single [Pool.map_array] per round returns outcomes
   in submission order whatever the job count.  Because a session's
   own outcome fold is in its own slot order regardless of what the
   scheduler interleaves between grants, every diagnosis the service
   produces is bit-identical (all fields but host time) to the same
   spec run through the one-shot [Gist.Server.diagnose].

   Crash-only lifecycle: the journal records exactly the decisions
   that cannot be re-derived — admissions (accepted and rejected, so
   ticket ids replay exactly), per-round audit digests, completion
   digests — plus periodic full-state checkpoints.  [recover] =
   restore the newest intact checkpoint, then re-run the journaled
   tail through the very same [submit]/[step] code, auditing replayed
   digests against journaled ones.  Everything a round does is a pure
   function of service state, so replay converges on the
   uninterrupted run byte for byte. *)

module Server = Gist.Server
module Session = Gist.Server.Session
module W = Hw.Wirebuf

type spec = {
  sp_name : string;
  sp_failure_type : string;
  sp_config : Gist.Config.t;
  sp_ingest : Server.ingest_mode;
  sp_oracle : (Fsketch.Sketch.t -> bool) option;
  sp_program : Ir.Types.program;
  sp_workload_of : int -> Exec.Interp.workload;
  sp_failure : Exec.Failure.report;
  sp_case : Fuzz.Gen.case option;
}

type sconfig = {
  max_inflight : int;
  max_queue : int;
  quantum : int;
  round_budget : int;
  checkpoint_every_rounds : int;
  session_deadline_rounds : int;
  max_session_strikes : int;
  triage : bool;
  max_clusters : int;
  fresh_weight : int;
  recur_weight : int;
  recency_rounds : int;
}

let default =
  {
    max_inflight = 16;
    max_queue = 64;
    quantum = 8;
    round_budget = 64;
    checkpoint_every_rounds = 8;
    session_deadline_rounds = 0;
    max_session_strikes = 3;
    triage = false;
    max_clusters = 256;
    fresh_weight = 4;
    recur_weight = 1;
    recency_rounds = 0;
  }

type cerror =
  | Bad_inflight of int
  | Bad_queue of int
  | Bad_quantum of int
  | Bad_budget of { budget : int; quantum : int }
  | Bad_checkpoint_every of int
  | Bad_deadline of int
  | Bad_strikes of int
  | Bad_clusters of int
  | Bad_lane_weight of { fresh : int; recur : int }
  | Bad_recency of int

let cerror_to_string = function
  | Bad_inflight n ->
    Printf.sprintf "Service: max_inflight must be > 0 (got %d)" n
  | Bad_queue n -> Printf.sprintf "Service: max_queue must be >= 0 (got %d)" n
  | Bad_quantum n -> Printf.sprintf "Service: quantum must be > 0 (got %d)" n
  | Bad_budget { budget; quantum } ->
    Printf.sprintf "Service: round_budget (%d) must be >= quantum (%d)" budget
      quantum
  | Bad_checkpoint_every n ->
    Printf.sprintf
      "Service: checkpoint_every_rounds must be >= 0 (got %d; 0 disables the \
       cadence)"
      n
  | Bad_deadline n ->
    Printf.sprintf
      "Service: session_deadline_rounds must be >= 0 (got %d; 0 disables \
       eviction)"
      n
  | Bad_strikes n ->
    Printf.sprintf "Service: max_session_strikes must be > 0 (got %d)" n
  | Bad_clusters n ->
    Printf.sprintf "Service: max_clusters must be > 0 (got %d)" n
  | Bad_lane_weight { fresh; recur } ->
    Printf.sprintf
      "Service: lane weights must be > 0 (got fresh %d, recurrence %d)" fresh
      recur
  | Bad_recency n ->
    Printf.sprintf
      "Service: recency_rounds must be >= 0 (got %d; 0 coalesces for as long \
       as the cluster stays tabled)"
      n

let validate c =
  if c.max_inflight <= 0 then Error (Bad_inflight c.max_inflight)
  else if c.max_queue < 0 then Error (Bad_queue c.max_queue)
  else if c.quantum <= 0 then Error (Bad_quantum c.quantum)
  else if c.round_budget < c.quantum then
    Error (Bad_budget { budget = c.round_budget; quantum = c.quantum })
  else if c.checkpoint_every_rounds < 0 then
    Error (Bad_checkpoint_every c.checkpoint_every_rounds)
  else if c.session_deadline_rounds < 0 then
    Error (Bad_deadline c.session_deadline_rounds)
  else if c.max_session_strikes <= 0 then
    Error (Bad_strikes c.max_session_strikes)
  else if c.max_clusters <= 0 then Error (Bad_clusters c.max_clusters)
  else if c.fresh_weight <= 0 || c.recur_weight <= 0 then
    Error (Bad_lane_weight { fresh = c.fresh_weight; recur = c.recur_weight })
  else if c.recency_rounds < 0 then Error (Bad_recency c.recency_rounds)
  else Ok c

type sreject =
  | Busy of { inflight : int; queued : int; retry_after_rounds : int }
  | Shed of { queued : int; retry_after_rounds : int }

let sreject_label = function Busy _ -> "busy" | Shed _ -> "shed"

let sreject_to_string = function
  | Busy { inflight; queued; retry_after_rounds } ->
    Printf.sprintf
      "service saturated: %d sessions in flight, %d queued for admission; \
       retry after %d rounds"
      inflight queued retry_after_rounds
  | Shed { queued; retry_after_rounds } ->
    Printf.sprintf
      "recurrence shed under load: %d queued for admission; retry after %d \
       rounds"
      queued retry_after_rounds

(* What {!submit} accepted. *)
type admission =
  | Ticket of int
  | Coalesced of { canonical : int; count : int }

(* The two admission lanes: unseen fingerprints (and every session of
   a triage-less service) versus re-diagnoses of already-seen ones. *)
type lane = Fresh_lane | Recur_lane

let lane_label = function Fresh_lane -> "fresh" | Recur_lane -> "recur"

(* Journal disposition codes for [Journal.Triaged]. *)
let disp_fresh = 0
and disp_recur = 1
and disp_coalesced = 2
and disp_shed = 3
and disp_busy = 4

type failure_reason = Crashed | Quarantined | Timed_out

let failure_reason_label = function
  | Crashed -> "crashed"
  | Quarantined -> "quarantined"
  | Timed_out -> "timed-out"

type session_failure = {
  sf_reason : failure_reason;
  sf_detail : string;
  sf_strikes : int;
}

let session_failure_to_string f =
  Printf.sprintf "%s (%d strikes): %s"
    (failure_reason_label f.sf_reason)
    f.sf_strikes f.sf_detail

type completion = {
  c_id : int;
  c_name : string;
  c_result : (Server.diagnosis, session_failure) result;
  c_admitted_round : int;
  c_completed_round : int;
  c_slots : int;
  c_wall_s : float;
}

type stats = {
  st_submitted : int;
  st_admitted : int;
  st_rejected : int;
  st_completed : int;
  st_failed : int;
  st_rounds : int;
  st_slots : int;
  st_peak_inflight : int;
  st_max_wait_rounds : int;
  st_checkpoints : int;
  st_divergences : int;
  st_coalesced : int;
  st_shed : int;
  st_fresh_admitted : int;
  st_recur_admitted : int;
  st_fresh_wait_rounds : int;
  st_recur_wait_rounds : int;
  st_clusters : int;
  st_evicted_clusters : int;
}

(* One submission waiting for admission. *)
type pending = {
  p_id : int;
  p_spec : spec;
  p_fp : int; (* 0 when triage is off *)
  p_round : int; (* round counter at submission, for lane wait stats *)
  (* when this ticket re-opened a [Done] cluster: the canonical and
     round to restore if the ticket is shed before admission *)
  p_revert : (int * int) option;
}

(* One admitted session and its scheduling ledger. *)
type active = {
  a_id : int;
  a_name : string;
  a_lane : lane;
  a_fp : int;
  a_session : Session.t;
  a_admitted_round : int;
  a_t0 : float;
  mutable a_last_served : int;
  mutable a_slots : int;
  mutable a_strikes : int;
}

(* A queued recurrence ticket shed to make room for a fresh bug —
   typed, harvested like completions, never silent. *)
type shed_notice = {
  sh_id : int;
  sh_name : string;
  sh_fp : int;
  sh_round : int;
  sh_retry_after_rounds : int;
}

type t = {
  cfg : sconfig;
  pool : Parallel.Pool.t;
  journal : Journal.t option;
  queue : pending Queue.t; (* fresh lane; the only lane w/o triage *)
  rqueue : pending Queue.t; (* recurrence lane (triage only) *)
  triage : Triage.t option;
  mutable active : active list; (* ring order; admission appends *)
  mutable completions : completion list; (* newest first *)
  mutable sheds : shed_notice list; (* newest first *)
  mutable draining : bool;
  (* ticket id -> journaled completion digest, populated by recovery
     replay and consumed (audited) as the replay re-completes them *)
  expected : (int, int) Hashtbl.t;
  mutable submitted : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable failed : int;
  mutable coalesced : int;
  mutable shed : int;
  mutable fresh_admitted : int;
  mutable recur_admitted : int;
  mutable fresh_wait : int;
  mutable recur_wait : int;
  (* deficit-round-robin lane credits; refilled by weight when both
     lanes contend, zeroed when contention ends *)
  mutable fresh_credit : int;
  mutable recur_credit : int;
  mutable rounds : int;
  mutable slots : int;
  mutable peak_inflight : int;
  mutable max_wait : int;
  mutable checkpoints : int;
  mutable divergences : int;
  mutable last_round_digest : int;
  (* a cadence checkpoint was skipped because completions were waiting
     to be harvested; written at the next harvest instead *)
  mutable ckpt_due : bool;
}

let inflight t = List.length t.active
let queued t = Queue.length t.queue + Queue.length t.rqueue

let jrnl t r =
  match t.journal with None -> () | Some j -> Journal.append j r

(* ------------------------------------------------------------------ *)
(* Audit digests.  Host-time fields are excluded on principle: they
   are the one part of a diagnosis recovery does not reproduce. *)

let mix = Faults.Fault.mix

let diagnosis_digest (d : Server.diagnosis) =
  let ds = mix 0x6A09 (Hashtbl.hash (Fsketch.Render.render d.sketch)) in
  let ds = mix ds d.iterations in
  let ds = mix ds d.recurrences in
  let ds = mix ds d.total_runs in
  let ds = mix ds d.final_sigma in
  let ds = List.fold_left mix ds d.tracked in
  let ds =
    List.fold_left (fun acc it -> mix acc (Hashtbl.hash it)) ds d.trace
  in
  mix ds (Hashtbl.hash d.fleet)

let result_digest = function
  | Ok d -> diagnosis_digest d
  | Error f ->
    let tag =
      match f.sf_reason with
      | Crashed -> 101
      | Quarantined -> 102
      | Timed_out -> 103
    in
    mix tag (mix f.sf_strikes (Hashtbl.hash f.sf_detail))

(* ------------------------------------------------------------------ *)
(* Triage fingerprinting.  The salt folds the diagnosis-affecting
   parts of the spec beyond (program, failure): two submissions of the
   same bug under different configs are different artifacts and must
   not coalesce.  [Hashtbl.hash_param] with a deep limit keeps the
   whole config significant; it is a structural hash, so it is stable
   across processes for equal values. *)

let spec_salt sp =
  let ingest_tag =
    match sp.sp_ingest with Server.Streaming -> 1 | Server.Retained -> 2
  in
  mix ingest_tag (Hashtbl.hash_param 128 256 sp.sp_config)

let fingerprint_of_spec sp =
  Fsketch.Fingerprint.to_int
    (Fsketch.Fingerprint.compute ~salt:(spec_salt sp) sp.sp_program
       sp.sp_failure)

(* ------------------------------------------------------------------ *)
(* Checkpoint codec: the whole service, sessions as
   [Session.snapshot] bytes, queued and active specs by name (specs
   hold closures; recovery re-resolves them).  Version 2 added the
   triage front-end: lane queues, DRR credits, lane counters and the
   cluster table. *)

let state_version = 2

let put_pending b p =
  W.put_uint b p.p_id;
  W.put_string b p.p_spec.sp_name;
  W.put_uint b p.p_fp;
  W.put_uint b p.p_round;
  match p.p_revert with
  | None -> W.put_bool b false
  | Some (canonical, round) ->
    W.put_bool b true;
    W.put_uint b canonical;
    W.put_uint b round

let encode_state t =
  let b = Buffer.create 4096 in
  W.put_uint b state_version;
  W.put_uint b t.cfg.max_inflight;
  W.put_uint b t.cfg.max_queue;
  W.put_uint b t.cfg.quantum;
  W.put_uint b t.cfg.round_budget;
  W.put_uint b t.cfg.checkpoint_every_rounds;
  W.put_uint b t.cfg.session_deadline_rounds;
  W.put_uint b t.cfg.max_session_strikes;
  W.put_bool b t.cfg.triage;
  W.put_uint b t.cfg.max_clusters;
  W.put_uint b t.cfg.fresh_weight;
  W.put_uint b t.cfg.recur_weight;
  W.put_uint b t.cfg.recency_rounds;
  W.put_uint b t.submitted;
  W.put_uint b t.admitted;
  W.put_uint b t.rejected;
  W.put_uint b t.completed;
  W.put_uint b t.failed;
  W.put_uint b t.coalesced;
  W.put_uint b t.shed;
  W.put_uint b t.fresh_admitted;
  W.put_uint b t.recur_admitted;
  W.put_uint b t.fresh_wait;
  W.put_uint b t.recur_wait;
  W.put_uint b t.fresh_credit;
  W.put_uint b t.recur_credit;
  W.put_uint b t.rounds;
  W.put_uint b t.slots;
  W.put_uint b t.peak_inflight;
  W.put_uint b t.max_wait;
  W.put_uint b t.divergences;
  W.put_bool b t.draining;
  W.put_uint b (Queue.length t.queue);
  Queue.iter (put_pending b) t.queue;
  W.put_uint b (Queue.length t.rqueue);
  Queue.iter (put_pending b) t.rqueue;
  W.put_uint b (List.length t.active);
  List.iter
    (fun a ->
      W.put_uint b a.a_id;
      W.put_string b a.a_name;
      W.put_uint b (match a.a_lane with Fresh_lane -> 0 | Recur_lane -> 1);
      W.put_uint b a.a_fp;
      W.put_uint b a.a_admitted_round;
      W.put_uint b a.a_last_served;
      W.put_uint b a.a_slots;
      W.put_uint b a.a_strikes;
      W.put_string b (Session.snapshot a.a_session))
    t.active;
  (match t.triage with
   | None -> W.put_bool b false
   | Some tri ->
     W.put_bool b true;
     Triage.encode b tri);
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let do_checkpoint t =
  match t.journal with
  | None -> false
  | Some j ->
    if t.completions <> [] || t.sheds <> [] then false
    else begin
      t.checkpoints <- t.checkpoints + 1;
      Journal.append j
        (Journal.Checkpoint { round = t.rounds; state = encode_state t });
      (* The journal lives in memory for the service's whole life:
         without compaction the dead prefix grows without bound (the
         PR8 soak's flat-heap gate is what catches this). *)
      Journal.compact j;
      true
    end

let create ?(sconfig = default) ?(journal = true) ?(pool = Parallel.Pool.sequential)
    () =
  let cfg =
    match validate sconfig with
    | Ok c -> c
    | Error e -> invalid_arg (cerror_to_string e)
  in
  let t =
    {
      cfg;
      pool;
      journal = (if journal then Some (Journal.create ()) else None);
      queue = Queue.create ();
      rqueue = Queue.create ();
      triage =
        (if cfg.triage then
           Some
             (Triage.create ~max_clusters:cfg.max_clusters
                ~recency_rounds:cfg.recency_rounds)
         else None);
      active = [];
      completions = [];
      sheds = [];
      draining = false;
      expected = Hashtbl.create 16;
      submitted = 0;
      admitted = 0;
      rejected = 0;
      completed = 0;
      failed = 0;
      coalesced = 0;
      shed = 0;
      fresh_admitted = 0;
      recur_admitted = 0;
      fresh_wait = 0;
      recur_wait = 0;
      fresh_credit = 0;
      recur_credit = 0;
      rounds = 0;
      slots = 0;
      peak_inflight = 0;
      max_wait = 0;
      checkpoints = 0;
      divergences = 0;
      last_round_digest = 0;
      ckpt_due = false;
    }
  in
  (* The initial checkpoint: an untorn journal always has something to
     restart from. *)
  ignore (do_checkpoint t);
  t

(* Deterministic backpressure hint: rounds to chew through the backlog
   at the configured budget rate — the earliest step count at which a
   retry can plausibly be admitted. *)
let retry_hint cfg ~queued =
  max 1 (((queued * cfg.quantum) + cfg.round_budget - 1) / cfg.round_budget)

(* Drop the most recently queued recurrence ticket (FIFO fairness:
   the oldest waiter keeps its place), booking it shed — with a typed
   notice, never silently — and restoring its cluster.  [None] when
   the recurrence lane is empty. *)
let shed_newest_recurrence t =
  if Queue.is_empty t.rqueue then None
  else begin
    let keep = Queue.length t.rqueue - 1 in
    let rec pop i =
      let p = Queue.take t.rqueue in
      if i < keep then begin
        Queue.add p t.rqueue;
        pop (i + 1)
      end
      else p
    in
    let victim = pop 0 in
    t.shed <- t.shed + 1;
    (match (t.triage, victim.p_revert) with
     | Some tri, Some (canonical, done_round) ->
       Triage.revert_reopen tri ~fp:victim.p_fp ~canonical ~done_round
     | _ -> ());
    t.sheds <-
      {
        sh_id = victim.p_id;
        sh_name = victim.p_spec.sp_name;
        sh_fp = victim.p_fp;
        sh_round = t.rounds;
        sh_retry_after_rounds = retry_hint t.cfg ~queued:(queued t);
      }
      :: t.sheds;
    Some victim
  end

(* Admission control: a submission is ticketed into its lane,
   coalesced onto an existing cluster, or refused with typed
   backpressure ([Busy]) or load shedding ([Shed]) — never buffered
   unboundedly, never dropped silently.  Every submission, whatever
   its fate, is booked and journaled, so the ledger always balances —
   and replays exactly: submitted = completed + rejected + coalesced
   + shed + queued + in-flight.

   [submit_triaged] additionally returns the journal disposition code
   so the recovery replay can audit re-derived decisions; the public
   [submit] discards it. *)
let submit_triaged t spec =
  t.submitted <- t.submitted + 1;
  let id = t.submitted in
  let name = spec.sp_name in
  match t.triage with
  | None ->
    (* Triage off: the original single-queue admission, journaled as
       [Submitted]. *)
    let refuse () =
      t.rejected <- t.rejected + 1;
      jrnl t (Journal.Submitted { id; name; rejected = true });
      ( Error
          (Busy
             {
               inflight = inflight t;
               queued = queued t;
               retry_after_rounds = retry_hint t.cfg ~queued:(queued t);
             }),
        disp_busy,
        0 )
    in
    if t.draining then refuse ()
    else if Queue.length t.queue >= t.cfg.max_queue && t.cfg.max_queue > 0 then
      refuse ()
    else if t.cfg.max_queue = 0 && inflight t >= t.cfg.max_inflight then
      (* No queue at all: admission happens next [step]; refuse once
         the in-flight cap alone is saturated. *)
      refuse ()
    else begin
      Queue.add
        { p_id = id; p_spec = spec; p_fp = 0; p_round = t.rounds; p_revert = None }
        t.queue;
      jrnl t (Journal.Submitted { id; name; rejected = false });
      (Ok (Ticket id), disp_fresh, 0)
    end
  | Some tri ->
    let fp = fingerprint_of_spec spec in
    let record disp = jrnl t (Journal.Triaged { id; name; fp; disp }) in
    let busy () =
      t.rejected <- t.rejected + 1;
      record disp_busy;
      ( Error
          (Busy
             {
               inflight = inflight t;
               queued = queued t;
               retry_after_rounds = retry_hint t.cfg ~queued:(queued t);
             }),
        disp_busy )
    in
    let shed () =
      t.shed <- t.shed + 1;
      record disp_shed;
      ( Error
          (Shed
             {
               queued = queued t;
               retry_after_rounds = retry_hint t.cfg ~queued:(queued t);
             }),
        disp_shed )
    in
    (* Is there room for one more pending ticket?  [`Evict] when only
       shedding a queued recurrence can make room. *)
    let room =
      if t.cfg.max_queue = 0 then
        if inflight t >= t.cfg.max_inflight then `No else `Yes
      else if queued t >= t.cfg.max_queue then
        if Queue.is_empty t.rqueue then `No else `Evict
      else `Yes
    in
    let res, disp =
      if t.draining then busy ()
      else
        match Triage.classify tri ~round:t.rounds fp with
        | Triage.Duplicate { canonical; count } ->
          (* In flight or recently diagnosed: fold into the cluster.
             Costs no capacity, so it succeeds even at the queue bound
             — a storm of duplicates cannot saturate the service. *)
          Triage.coalesce tri ~fp;
          t.coalesced <- t.coalesced + 1;
          record disp_coalesced;
          (Ok (Coalesced { canonical; count = count + 1 }), disp_coalesced)
        | Triage.New -> (
          (* A fresh bug sheds a queued recurrence before it accepts
             [Busy]: a recurrence storm must not starve first
             diagnoses. *)
          match room with
          | `No -> busy ()
          | `Evict | `Yes ->
            (if room = `Evict then
               match shed_newest_recurrence t with
               | Some _ -> ()
               | None -> assert false);
            Triage.open_fresh tri ~fp ~name ~id;
            Queue.add
              { p_id = id; p_spec = spec; p_fp = fp; p_round = t.rounds;
                p_revert = None }
              t.queue;
            record disp_fresh;
            (Ok (Ticket id), disp_fresh))
        | Triage.Recurrence { canonical; done_round } -> (
          match room with
          | `No | `Evict ->
            (* Recurrences are the shed class: at the bound they are
               refused with [Shed], never queued over fresh work. *)
            shed ()
          | `Yes ->
            Triage.reopen tri ~fp ~name ~id;
            Queue.add
              { p_id = id; p_spec = spec; p_fp = fp; p_round = t.rounds;
                p_revert = Some (canonical, done_round) }
              t.rqueue;
            record disp_recur;
            (Ok (Ticket id), disp_recur))
    in
    (res, disp, fp)

let submit t spec =
  let res, _disp, _fp = submit_triaged t spec in
  res

(* Book one session's exit — diagnosis or typed failure — into the
   completion list, the ledger and the journal, auditing against any
   digest the recovery replay expects for this ticket. *)
let complete t round a result =
  let digest = result_digest result in
  (match Hashtbl.find_opt t.expected a.a_id with
   | Some d ->
     Hashtbl.remove t.expected a.a_id;
     if d <> digest then t.divergences <- t.divergences + 1
   | None -> ());
  (match t.triage with
   | Some tri when a.a_fp <> 0 ->
     (* Freeze the cluster (so near-future duplicates keep coalescing)
        or drop it on a typed failure (duplicates of a failed
        diagnosis deserve a fresh attempt). *)
     Triage.completed tri ~fp:a.a_fp ~id:a.a_id ~round ~digest
       ~ok:(Result.is_ok result)
   | _ -> ());
  jrnl t (Journal.Completed { id = a.a_id; digest });
  t.completions <-
    {
      c_id = a.a_id;
      c_name = a.a_name;
      c_result = result;
      c_admitted_round = a.a_admitted_round;
      c_completed_round = round;
      c_slots = a.a_slots;
      c_wall_s = Unix.gettimeofday () -. a.a_t0;
    }
    :: t.completions;
  t.completed <- t.completed + 1;
  match result with
  | Error _ -> t.failed <- t.failed + 1
  | Ok _ -> ()

let fail t round a reason detail =
  complete t round a
    (Error { sf_reason = reason; sf_detail = detail; sf_strikes = a.a_strikes })

let finalize t round a =
  match Session.need a.a_session with
  | Session.Slots _ -> true
  | Session.Finished -> (
    match Session.result a.a_session with
    | d ->
      complete t round a (Ok d);
      false
    | exception e ->
      fail t round a Crashed (Printexc.to_string e);
      false)
  | exception e ->
    fail t round a Crashed (Printexc.to_string e);
    false

(* Deficit-round-robin lane pick, deterministic: while both lanes
   contend, each refill grants [fresh_weight] admissions to the fresh
   lane then [recur_weight] to the recurrence lane; when contention
   ends the credits reset, so a storm arriving later cannot draw on
   hoarded credit.  With triage off the recurrence lane is always
   empty and this degenerates to the original single FIFO. *)
let pick_lane t =
  let f = not (Queue.is_empty t.queue) in
  let r = not (Queue.is_empty t.rqueue) in
  match (f, r) with
  | false, false -> None
  | true, false | false, true ->
    t.fresh_credit <- 0;
    t.recur_credit <- 0;
    Some (if f then Fresh_lane else Recur_lane)
  | true, true ->
    if t.fresh_credit <= 0 && t.recur_credit <= 0 then begin
      t.fresh_credit <- t.cfg.fresh_weight;
      t.recur_credit <- t.cfg.recur_weight
    end;
    if t.fresh_credit > 0 then begin
      t.fresh_credit <- t.fresh_credit - 1;
      Some Fresh_lane
    end
    else begin
      t.recur_credit <- t.recur_credit - 1;
      Some Recur_lane
    end

let step t =
  if t.active = [] && Queue.is_empty t.queue && Queue.is_empty t.rqueue then
    false
  else begin
    t.rounds <- t.rounds + 1;
    let round = t.rounds in
    (* 0. Deadline eviction: a session that cannot converge must not
       hold an in-flight slot forever. *)
    if t.cfg.session_deadline_rounds > 0 then begin
      let expired, alive =
        List.partition
          (fun a -> round - a.a_admitted_round >= t.cfg.session_deadline_rounds)
          t.active
      in
      List.iter
        (fun a ->
          fail t round a Timed_out
            (Printf.sprintf "no diagnosis %d rounds after admission"
               t.cfg.session_deadline_rounds))
        expired;
      t.active <- alive
    end;
    (* 1. Admission — submission order within a lane, deficit
       round-robin across the two lanes, so a recurrence storm cannot
       starve a fresh bug of admission.  The session's offline phase
       (slice, instrumentation cache) runs here, once, at admission. *)
    let rec admit () =
      if inflight t < t.cfg.max_inflight then
        match pick_lane t with
        | None -> ()
        | Some lane ->
          let p =
            Queue.take
              (match lane with Fresh_lane -> t.queue | Recur_lane -> t.rqueue)
          in
          let sp = p.p_spec in
          let session =
            Session.create ~config:sp.sp_config ~ingest:sp.sp_ingest
              ?oracle:sp.sp_oracle ~id:p.p_id ~bug_name:sp.sp_name
              ~failure_type:sp.sp_failure_type ~program:sp.sp_program
              ~workload_of:sp.sp_workload_of ~failure:sp.sp_failure ()
          in
          t.admitted <- t.admitted + 1;
          let qwait = max 0 (round - 1 - p.p_round) in
          (match lane with
           | Fresh_lane ->
             t.fresh_admitted <- t.fresh_admitted + 1;
             t.fresh_wait <- max t.fresh_wait qwait
           | Recur_lane ->
             t.recur_admitted <- t.recur_admitted + 1;
             t.recur_wait <- max t.recur_wait qwait);
          t.active <-
            t.active
            @ [
                {
                  a_id = p.p_id;
                  a_name = sp.sp_name;
                  a_lane = lane;
                  a_fp = p.p_fp;
                  a_session = session;
                  a_admitted_round = round;
                  a_t0 = Unix.gettimeofday ();
                  a_last_served = round - 1;
                  a_slots = 0;
                  a_strikes = 0;
                };
              ];
          admit ()
    in
    admit ();
    t.peak_inflight <- max t.peak_inflight (inflight t);
    (* 2. Grant: walk the ring, [quantum] slots per session, stopping
       when the round budget is spent.  Each thunk is wrapped so a
       raise comes back as a value — containment happens at delivery,
       deterministically, not wherever the pool happened to run it. *)
    let budget = ref t.cfg.round_budget in
    let grants =
      List.filter_map
        (fun a ->
          if !budget <= 0 then None
          else
            match Session.need a.a_session with
            | Session.Finished -> None
            | Session.Slots n ->
              let k = min (min t.cfg.quantum n) !budget in
              if k <= 0 then None
              else begin
                let thunks = Session.grant a.a_session k in
                budget := !budget - Array.length thunks;
                let w = round - a.a_last_served - 1 in
                t.max_wait <- max t.max_wait w;
                (match a.a_lane with
                 | Fresh_lane -> t.fresh_wait <- max t.fresh_wait w
                 | Recur_lane -> t.recur_wait <- max t.recur_wait w);
                a.a_last_served <- round;
                Some (a, thunks)
              end
            | exception e -> Some (a, [| (fun () -> raise e) |]))
        t.active
    in
    let wrapped =
      Array.concat
        (List.map
           (fun (_, thunks) ->
             Array.map
               (fun th () ->
                 match th () with
                 | o -> Ok o
                 | exception e -> Error (Printexc.to_string e))
               thunks)
           grants)
    in
    (* 3. One parallel batch per round over the shared pool: outcomes
       come back in submission order at any job count. *)
    let outs = Parallel.Pool.map_array t.pool (fun th -> th ()) wrapped in
    (* 4. Deliver each session its segment, in ring (= grant) order.
       A raising slot strikes the session and degrades into a
       deterministic crash outcome; at the strike limit the session is
       quarantined — a typed failure, never a service crash. *)
    let dead = Hashtbl.create 4 in
    let off = ref 0 in
    List.iter
      (fun (a, thunks) ->
        let n = Array.length thunks in
        let seg = Array.sub outs !off n in
        off := !off + n;
        a.a_slots <- a.a_slots + n;
        t.slots <- t.slots + n;
        let first_err =
          Array.fold_left
            (fun acc o ->
              match (acc, o) with
              | None, Error e -> Some e
              | acc, _ -> acc)
            None seg
        in
        let deliver outcomes =
          try Session.deliver a.a_session outcomes
          with e ->
            fail t round a Crashed (Printexc.to_string e);
            Hashtbl.replace dead a.a_id ()
        in
        match first_err with
        | None ->
          deliver
            (Array.map
               (function Ok o -> o | Error _ -> assert false)
               seg)
        | Some err ->
          a.a_strikes <- a.a_strikes + 1;
          if a.a_strikes >= t.cfg.max_session_strikes then begin
            fail t round a Quarantined err;
            Hashtbl.replace dead a.a_id ()
          end
          else
            deliver
              (Array.map
                 (function
                   | Ok o -> o
                   | Error _ -> Session.crashed_outcome a.a_session)
                 seg))
      grants;
    (* 5. Finalize finished sessions, freeing in-flight capacity. *)
    t.active <-
      List.filter
        (fun a -> (not (Hashtbl.mem dead a.a_id)) && finalize t round a)
        t.active;
    (* 6. Journal the round: the digest folds what was served and every
       surviving session's accepted-report audit — the recovery replay
       recomputes exactly this and compares. *)
    let digest =
      let d =
        List.fold_left
          (fun acc (a, thunks) -> mix (mix acc a.a_id) (Array.length thunks))
          round grants
      in
      List.fold_left (fun acc a -> mix acc (Session.audit a.a_session)) d t.active
    in
    t.last_round_digest <- digest;
    jrnl t (Journal.Round { round; digest });
    (* 7. Re-ring: sessions served this round go to the back, the rest
       keep their order at the front.  (Blindly rotating the head is
       not enough: when the served head finishes and is removed, the
       next — unserved — session would be the one rotated to the back,
       and under completion churn the same session can be bumped
       unserved round after round.)  At least one session is served
       every round (budget >= quantum), so an unserved session loses
       at least one predecessor per round and reaches the head within
       [max_inflight] rounds. *)
    let unserved, served =
      List.partition (fun a -> a.a_last_served < round) t.active
    in
    t.active <- unserved @ served;
    (* 8. Checkpoint on cadence — only when no completion is waiting to
       be harvested, so nothing the caller has not seen can be
       checkpointed away.  This must come AFTER the re-ring: the
       checkpoint is the round-boundary state, and a restored service
       that resumed with the pre-rotation ring would schedule the next
       round differently from the live one — a silent, self-consistent
       one-round skew the recovery audit can never see. *)
    if
      t.cfg.checkpoint_every_rounds > 0
      && round mod t.cfg.checkpoint_every_rounds = 0
    then if not (do_checkpoint t) then t.ckpt_due <- true;
    true
  end

let rec drain t = if step t then drain t

let completions t = List.rev t.completions

(* Harvest and forget: a long-running service must not retain every
   diagnosis it ever produced. *)
let take_completions t =
  let cs = List.rev t.completions in
  t.completions <- [];
  (* The cadence checkpoint that was blocked on these completions
     (still deferred while shed notices wait for their own harvest). *)
  if t.ckpt_due && t.sheds = [] then begin
    t.ckpt_due <- false;
    ignore (do_checkpoint t)
  end;
  cs

let stats t =
  {
    st_submitted = t.submitted;
    st_admitted = t.admitted;
    st_rejected = t.rejected;
    st_completed = t.completed;
    st_failed = t.failed;
    st_rounds = t.rounds;
    st_slots = t.slots;
    st_peak_inflight = t.peak_inflight;
    st_max_wait_rounds = t.max_wait;
    st_checkpoints = t.checkpoints;
    st_divergences = t.divergences;
    st_coalesced = t.coalesced;
    st_shed = t.shed;
    st_fresh_admitted = t.fresh_admitted;
    st_recur_admitted = t.recur_admitted;
    st_fresh_wait_rounds = t.fresh_wait;
    st_recur_wait_rounds = t.recur_wait;
    st_clusters = (match t.triage with None -> 0 | Some tri -> Triage.size tri);
    st_evicted_clusters =
      (match t.triage with None -> 0 | Some tri -> Triage.evicted tri);
  }

(* Shed notices mirror completions: harvest-and-forget, and the
   cadence checkpoint blocked on an unharvested notice is written at
   the harvest. *)
let take_shed t =
  let ss = List.rev t.sheds in
  t.sheds <- [];
  if t.ckpt_due && t.completions = [] then begin
    t.ckpt_due <- false;
    ignore (do_checkpoint t)
  end;
  ss

(* ------------------------------------------------------------------ *)
(* Introspection *)

type session_view = {
  v_id : int;
  v_name : string;
  v_lane : lane;
  v_admitted_round : int;
  v_rounds_waiting : int;
  v_slots : int;
  v_strikes : int;
  v_progress : Session.progress;
}

let status t =
  List.map
    (fun a ->
      {
        v_id = a.a_id;
        v_name = a.a_name;
        v_lane = a.a_lane;
        v_admitted_round = a.a_admitted_round;
        v_rounds_waiting = max 0 (t.rounds - a.a_last_served);
        v_slots = a.a_slots;
        v_strikes = a.a_strikes;
        v_progress = Session.progress a.a_session;
      })
    t.active

(* Lane occupancy for status screens: queue depths, live credits, and
   how many sessions each lane has admitted so far. *)
type lane_view = {
  lv_fresh_queued : int;
  lv_recur_queued : int;
  lv_fresh_credit : int;
  lv_recur_credit : int;
  lv_fresh_admitted : int;
  lv_recur_admitted : int;
}

let lanes t =
  {
    lv_fresh_queued = Queue.length t.queue;
    lv_recur_queued = Queue.length t.rqueue;
    lv_fresh_credit = t.fresh_credit;
    lv_recur_credit = t.recur_credit;
    lv_fresh_admitted = t.fresh_admitted;
    lv_recur_admitted = t.recur_admitted;
  }

(* The cluster table, most recently touched first; empty when triage
   is off. *)
let clusters t =
  match t.triage with None -> [] | Some tri -> Triage.views tri

(* The spec a completed cluster's canonical session ran under, for
   artifact emission (reproducer shrinking needs the fuzz case).
   Specs hold closures, so the service cannot retain them per
   cluster; callers keep their own name->spec map instead — this
   helper just names the lane the contract lives on. *)
let triage_enabled t = t.triage <> None

(* ------------------------------------------------------------------ *)
(* Crash-only lifecycle *)

let journal_bytes t =
  match t.journal with None -> "" | Some j -> Journal.contents j

let checkpoint t = do_checkpoint t

let request_drain t = t.draining <- true

let shutdown t =
  request_drain t;
  drain t;
  let cs = take_completions t in
  ignore (do_checkpoint t);
  cs

type rerror =
  | No_checkpoint
  | Unresolved_spec of string
  | Bad_session of { name : string; detail : string }

let rerror_to_string = function
  | No_checkpoint -> "recover: no intact checkpoint in the journal"
  | Unresolved_spec name ->
    Printf.sprintf "recover: no spec resolves bug %S" name
  | Bad_session { name; detail } ->
    Printf.sprintf "recover: session %S refused its snapshot: %s" name detail

exception Recover_failed of rerror

(* Rebuild a service value from one checkpoint's state bytes.  Raises
   [W.Short] on a state this build cannot decode (the caller falls
   back to an older checkpoint) and [Recover_failed] on resolver or
   snapshot refusals (hard errors: no older checkpoint can fix a
   missing spec). *)
let decode_state ~pool ~resolve state =
  let r = W.reader state in
  if W.get_uint r <> state_version then raise W.Short;
  let max_inflight = W.get_uint r in
  let max_queue = W.get_uint r in
  let quantum = W.get_uint r in
  let round_budget = W.get_uint r in
  let checkpoint_every_rounds = W.get_uint r in
  let session_deadline_rounds = W.get_uint r in
  let max_session_strikes = W.get_uint r in
  let triage = W.get_bool r in
  let max_clusters = W.get_uint r in
  let fresh_weight = W.get_uint r in
  let recur_weight = W.get_uint r in
  let recency_rounds = W.get_uint r in
  let cfg =
    {
      max_inflight;
      max_queue;
      quantum;
      round_budget;
      checkpoint_every_rounds;
      session_deadline_rounds;
      max_session_strikes;
      triage;
      max_clusters;
      fresh_weight;
      recur_weight;
      recency_rounds;
    }
  in
  let submitted = W.get_uint r in
  let admitted = W.get_uint r in
  let rejected = W.get_uint r in
  let completed = W.get_uint r in
  let failed = W.get_uint r in
  let coalesced = W.get_uint r in
  let shed = W.get_uint r in
  let fresh_admitted = W.get_uint r in
  let recur_admitted = W.get_uint r in
  let fresh_wait = W.get_uint r in
  let recur_wait = W.get_uint r in
  let fresh_credit = W.get_uint r in
  let recur_credit = W.get_uint r in
  let rounds = W.get_uint r in
  let slots = W.get_uint r in
  let peak_inflight = W.get_uint r in
  let max_wait = W.get_uint r in
  let divergences = W.get_uint r in
  let draining = W.get_bool r in
  let resolve_exn name =
    match resolve name with
    | Some sp -> sp
    | None -> raise (Recover_failed (Unresolved_spec name))
  in
  let get_pending r =
    let p_id = W.get_uint r in
    let name = W.get_string r in
    let p_fp = W.get_uint r in
    let p_round = W.get_uint r in
    let p_revert =
      if W.get_bool r then begin
        let canonical = W.get_uint r in
        let round = W.get_uint r in
        Some (canonical, round)
      end
      else None
    in
    { p_id; p_spec = resolve_exn name; p_fp; p_round; p_revert }
  in
  let queue = Queue.create () in
  let nq = W.get_uint r in
  for _ = 1 to nq do
    Queue.add (get_pending r) queue
  done;
  let rqueue = Queue.create () in
  let nrq = W.get_uint r in
  for _ = 1 to nrq do
    Queue.add (get_pending r) rqueue
  done;
  let na = W.get_uint r in
  let active = ref [] in
  for _ = 1 to na do
    let a_id = W.get_uint r in
    let a_name = W.get_string r in
    let a_lane =
      match W.get_uint r with
      | 0 -> Fresh_lane
      | 1 -> Recur_lane
      | _ -> raise W.Short
    in
    let a_fp = W.get_uint r in
    let a_admitted_round = W.get_uint r in
    let a_last_served = W.get_uint r in
    let a_slots = W.get_uint r in
    let a_strikes = W.get_uint r in
    let snap = W.get_string r in
    let sp = resolve_exn a_name in
    let session =
      match
        Session.restore ~config:sp.sp_config ~ingest:sp.sp_ingest
          ?oracle:sp.sp_oracle ~bug_name:sp.sp_name
          ~failure_type:sp.sp_failure_type ~program:sp.sp_program
          ~workload_of:sp.sp_workload_of ~failure:sp.sp_failure snap
      with
      | Ok s -> s
      | Error e ->
        raise
          (Recover_failed
             (Bad_session
                {
                  name = a_name;
                  detail = Session.snapshot_error_to_string e;
                }))
    in
    active :=
      {
        a_id;
        a_name;
        a_lane;
        a_fp;
        a_session = session;
        a_admitted_round;
        a_t0 = Unix.gettimeofday ();
        a_last_served;
        a_slots;
        a_strikes;
      }
      :: !active
  done;
  let tri = if W.get_bool r then Some (Triage.decode r) else None in
  if not (W.eof r) then raise W.Short;
  let t =
    {
      cfg;
      pool;
      journal = Some (Journal.create ());
      queue;
      rqueue;
      triage = tri;
      active = List.rev !active;
      completions = [];
      sheds = [];
      draining;
      expected = Hashtbl.create 16;
      submitted;
      admitted;
      rejected;
      completed;
      failed;
      coalesced;
      shed;
      fresh_admitted;
      recur_admitted;
      fresh_wait;
      recur_wait;
      fresh_credit;
      recur_credit;
      rounds;
      slots;
      peak_inflight;
      max_wait;
      checkpoints = 0;
      divergences;
      last_round_digest = 0;
      ckpt_due = false;
    }
  in
  (* Seed the fresh journal so a second crash recovers the same way. *)
  ignore (do_checkpoint t);
  t

let recover ?(pool = Parallel.Pool.sequential) ~resolve bytes =
  let entries = Journal.load bytes in
  (* Newest intact checkpoint wins; a damaged one is skipped by
     construction (it loads as [Damaged], not [Checkpoint]), falling
     back to an older one — ultimately the initial checkpoint
     [create] wrote. *)
  let candidates =
    (* (index, state) of every intact checkpoint, newest first. *)
    List.rev
      (List.mapi (fun i e -> (i, e)) entries
      |> List.filter_map (function
           | i, Journal.Rec (Journal.Checkpoint { state; _ }) -> Some (i, state)
           | _ -> None))
  in
  let rec restart = function
    | [] -> Error No_checkpoint
    | (idx, state) :: older -> (
      match decode_state ~pool ~resolve state with
      | t -> Ok (idx, t)
      | exception W.Short -> restart older
      | exception Recover_failed e -> Error e)
  in
  match restart candidates with
  | Error e -> Error e
  | Ok (idx, t) ->
    (* Replay the journaled tail through the real submit/step code.
       [Completed] records precede their round's [Round] record, so
       expectations are always in the table before the replayed round
       re-completes the ticket. *)
    let tail = List.filteri (fun i _ -> i > idx) entries in
    let replay entry =
        match entry with
        | Journal.Rec (Journal.Submitted { id; name; rejected }) ->
          if rejected then begin
            (* The spec is not needed to replay a refusal — only the
               counters (and the journal record) matter. *)
            t.submitted <- t.submitted + 1;
            t.rejected <- t.rejected + 1;
            jrnl t (Journal.Submitted { id = t.submitted; name; rejected = true });
            if t.submitted <> id then t.divergences <- t.divergences + 1
          end
          else begin
            let sp =
              match resolve name with
              | Some sp -> sp
              | None -> raise (Recover_failed (Unresolved_spec name))
            in
            (* Draining refuses submissions; the original journal can
               only hold an accepted record from before the drain, so
               lift the flag for the replayed call. *)
            let was_draining = t.draining in
            t.draining <- false;
            (match submit t sp with
             | Ok (Ticket id') ->
               if id' <> id then t.divergences <- t.divergences + 1
             | Ok (Coalesced _) | Error _ ->
               t.divergences <- t.divergences + 1);
            t.draining <- was_draining
          end
        | Journal.Rec (Journal.Triaged { id; name; fp; disp }) ->
          (* Triage decisions are pure functions of service state, so
             replay re-derives them through the real [submit] and
             audits the re-derived disposition (and fingerprint, and
             ticket id) against the journaled one. *)
          let sp =
            match resolve name with
            | Some sp -> sp
            | None -> raise (Recover_failed (Unresolved_spec name))
          in
          let accepted =
            disp = disp_fresh || disp = disp_recur || disp = disp_coalesced
          in
          let was_draining = t.draining in
          if accepted then t.draining <- false;
          let res, disp', fp' = submit_triaged t sp in
          t.draining <- was_draining;
          let id_ok =
            match res with
            | Ok (Ticket id') -> id' = id
            | Ok (Coalesced _) | Error _ -> t.submitted = id
          in
          if disp' <> disp || fp' <> fp || not id_ok then
            t.divergences <- t.divergences + 1
        | Journal.Rec (Journal.Completed { id; digest }) ->
          Hashtbl.replace t.expected id digest
        | Journal.Rec (Journal.Round { round; digest }) ->
          ignore (step t : bool);
          if t.rounds <> round || t.last_round_digest <> digest then
            t.divergences <- t.divergences + 1
        | Journal.Rec (Journal.Checkpoint _) ->
          (* The replay writes its own checkpoints on its own cadence. *)
          ()
        | Journal.Damaged _ ->
          (* Framing survived, content did not: whatever decision the
             record held is lost to the replay.  Book the divergence
             rather than guess. *)
          t.divergences <- t.divergences + 1
    in
    (match List.iter replay tail with
     | () -> Ok t
     | exception Recover_failed e -> Error e)
