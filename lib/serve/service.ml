(* Diagnosis as a service: a deterministic scheduler multiplexing many
   {!Gist.Server.Session} state machines over one shared pool.

   One scheduler round: evict sessions past their deadline, admit
   queued submissions up to the in-flight cap, walk the active ring
   granting each session up to [quantum] fleet slots (never more than
   [round_budget] across the round), run every granted thunk in ONE
   parallel batch over the shared pool — each thunk wrapped so a raise
   becomes a value, not a service crash — deliver each session its
   outcome segment in ring order (substituting deterministic crash
   outcomes for raising slots, striking the session, quarantining it
   at the strike limit), finalize whatever finished, journal the
   round's audit digest, maybe checkpoint, then move the sessions just
   served to the back of the ring so budget exhaustion cannot starve
   the tail.

   Determinism: admission order is submission order; grant order is
   ring order; the single [Pool.map_array] per round returns outcomes
   in submission order whatever the job count.  Because a session's
   own outcome fold is in its own slot order regardless of what the
   scheduler interleaves between grants, every diagnosis the service
   produces is bit-identical (all fields but host time) to the same
   spec run through the one-shot [Gist.Server.diagnose].

   Crash-only lifecycle: the journal records exactly the decisions
   that cannot be re-derived — admissions (accepted and rejected, so
   ticket ids replay exactly), per-round audit digests, completion
   digests — plus periodic full-state checkpoints.  [recover] =
   restore the newest intact checkpoint, then re-run the journaled
   tail through the very same [submit]/[step] code, auditing replayed
   digests against journaled ones.  Everything a round does is a pure
   function of service state, so replay converges on the
   uninterrupted run byte for byte. *)

module Server = Gist.Server
module Session = Gist.Server.Session
module W = Hw.Wirebuf

type spec = {
  sp_name : string;
  sp_failure_type : string;
  sp_config : Gist.Config.t;
  sp_ingest : Server.ingest_mode;
  sp_oracle : (Fsketch.Sketch.t -> bool) option;
  sp_program : Ir.Types.program;
  sp_workload_of : int -> Exec.Interp.workload;
  sp_failure : Exec.Failure.report;
}

type sconfig = {
  max_inflight : int;
  max_queue : int;
  quantum : int;
  round_budget : int;
  checkpoint_every_rounds : int;
  session_deadline_rounds : int;
  max_session_strikes : int;
}

let default =
  {
    max_inflight = 16;
    max_queue = 64;
    quantum = 8;
    round_budget = 64;
    checkpoint_every_rounds = 8;
    session_deadline_rounds = 0;
    max_session_strikes = 3;
  }

type cerror =
  | Bad_inflight of int
  | Bad_queue of int
  | Bad_quantum of int
  | Bad_budget of { budget : int; quantum : int }
  | Bad_checkpoint_every of int
  | Bad_deadline of int
  | Bad_strikes of int

let cerror_to_string = function
  | Bad_inflight n ->
    Printf.sprintf "Service: max_inflight must be > 0 (got %d)" n
  | Bad_queue n -> Printf.sprintf "Service: max_queue must be >= 0 (got %d)" n
  | Bad_quantum n -> Printf.sprintf "Service: quantum must be > 0 (got %d)" n
  | Bad_budget { budget; quantum } ->
    Printf.sprintf "Service: round_budget (%d) must be >= quantum (%d)" budget
      quantum
  | Bad_checkpoint_every n ->
    Printf.sprintf
      "Service: checkpoint_every_rounds must be >= 0 (got %d; 0 disables the \
       cadence)"
      n
  | Bad_deadline n ->
    Printf.sprintf
      "Service: session_deadline_rounds must be >= 0 (got %d; 0 disables \
       eviction)"
      n
  | Bad_strikes n ->
    Printf.sprintf "Service: max_session_strikes must be > 0 (got %d)" n

let validate c =
  if c.max_inflight <= 0 then Error (Bad_inflight c.max_inflight)
  else if c.max_queue < 0 then Error (Bad_queue c.max_queue)
  else if c.quantum <= 0 then Error (Bad_quantum c.quantum)
  else if c.round_budget < c.quantum then
    Error (Bad_budget { budget = c.round_budget; quantum = c.quantum })
  else if c.checkpoint_every_rounds < 0 then
    Error (Bad_checkpoint_every c.checkpoint_every_rounds)
  else if c.session_deadline_rounds < 0 then
    Error (Bad_deadline c.session_deadline_rounds)
  else if c.max_session_strikes <= 0 then
    Error (Bad_strikes c.max_session_strikes)
  else Ok c

type sreject =
  | Busy of { inflight : int; queued : int; retry_after_rounds : int }

let sreject_label (Busy _) = "busy"

let sreject_to_string (Busy { inflight; queued; retry_after_rounds }) =
  Printf.sprintf
    "service saturated: %d sessions in flight, %d queued for admission; \
     retry after %d rounds"
    inflight queued retry_after_rounds

type failure_reason = Crashed | Quarantined | Timed_out

let failure_reason_label = function
  | Crashed -> "crashed"
  | Quarantined -> "quarantined"
  | Timed_out -> "timed-out"

type session_failure = {
  sf_reason : failure_reason;
  sf_detail : string;
  sf_strikes : int;
}

let session_failure_to_string f =
  Printf.sprintf "%s (%d strikes): %s"
    (failure_reason_label f.sf_reason)
    f.sf_strikes f.sf_detail

type completion = {
  c_id : int;
  c_name : string;
  c_result : (Server.diagnosis, session_failure) result;
  c_admitted_round : int;
  c_completed_round : int;
  c_slots : int;
  c_wall_s : float;
}

type stats = {
  st_submitted : int;
  st_admitted : int;
  st_rejected : int;
  st_completed : int;
  st_failed : int;
  st_rounds : int;
  st_slots : int;
  st_peak_inflight : int;
  st_max_wait_rounds : int;
  st_checkpoints : int;
  st_divergences : int;
}

(* One admitted session and its scheduling ledger. *)
type active = {
  a_id : int;
  a_name : string;
  a_session : Session.t;
  a_admitted_round : int;
  a_t0 : float;
  mutable a_last_served : int;
  mutable a_slots : int;
  mutable a_strikes : int;
}

type t = {
  cfg : sconfig;
  pool : Parallel.Pool.t;
  journal : Journal.t option;
  queue : (int * spec) Queue.t;
  mutable active : active list; (* ring order; admission appends *)
  mutable completions : completion list; (* newest first *)
  mutable draining : bool;
  (* ticket id -> journaled completion digest, populated by recovery
     replay and consumed (audited) as the replay re-completes them *)
  expected : (int, int) Hashtbl.t;
  mutable submitted : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable failed : int;
  mutable rounds : int;
  mutable slots : int;
  mutable peak_inflight : int;
  mutable max_wait : int;
  mutable checkpoints : int;
  mutable divergences : int;
  mutable last_round_digest : int;
  (* a cadence checkpoint was skipped because completions were waiting
     to be harvested; written at the next harvest instead *)
  mutable ckpt_due : bool;
}

let inflight t = List.length t.active
let queued t = Queue.length t.queue

let jrnl t r =
  match t.journal with None -> () | Some j -> Journal.append j r

(* ------------------------------------------------------------------ *)
(* Audit digests.  Host-time fields are excluded on principle: they
   are the one part of a diagnosis recovery does not reproduce. *)

let mix = Faults.Fault.mix

let diagnosis_digest (d : Server.diagnosis) =
  let ds = mix 0x6A09 (Hashtbl.hash (Fsketch.Render.render d.sketch)) in
  let ds = mix ds d.iterations in
  let ds = mix ds d.recurrences in
  let ds = mix ds d.total_runs in
  let ds = mix ds d.final_sigma in
  let ds = List.fold_left mix ds d.tracked in
  let ds =
    List.fold_left (fun acc it -> mix acc (Hashtbl.hash it)) ds d.trace
  in
  mix ds (Hashtbl.hash d.fleet)

let result_digest = function
  | Ok d -> diagnosis_digest d
  | Error f ->
    let tag =
      match f.sf_reason with
      | Crashed -> 101
      | Quarantined -> 102
      | Timed_out -> 103
    in
    mix tag (mix f.sf_strikes (Hashtbl.hash f.sf_detail))

(* ------------------------------------------------------------------ *)
(* Checkpoint codec: the whole service, sessions as
   [Session.snapshot] bytes, queued and active specs by name (specs
   hold closures; recovery re-resolves them). *)

let state_version = 1

let encode_state t =
  let b = Buffer.create 4096 in
  W.put_uint b state_version;
  W.put_uint b t.cfg.max_inflight;
  W.put_uint b t.cfg.max_queue;
  W.put_uint b t.cfg.quantum;
  W.put_uint b t.cfg.round_budget;
  W.put_uint b t.cfg.checkpoint_every_rounds;
  W.put_uint b t.cfg.session_deadline_rounds;
  W.put_uint b t.cfg.max_session_strikes;
  W.put_uint b t.submitted;
  W.put_uint b t.admitted;
  W.put_uint b t.rejected;
  W.put_uint b t.completed;
  W.put_uint b t.failed;
  W.put_uint b t.rounds;
  W.put_uint b t.slots;
  W.put_uint b t.peak_inflight;
  W.put_uint b t.max_wait;
  W.put_uint b t.divergences;
  W.put_bool b t.draining;
  W.put_uint b (Queue.length t.queue);
  Queue.iter
    (fun (id, sp) ->
      W.put_uint b id;
      W.put_string b sp.sp_name)
    t.queue;
  W.put_uint b (List.length t.active);
  List.iter
    (fun a ->
      W.put_uint b a.a_id;
      W.put_string b a.a_name;
      W.put_uint b a.a_admitted_round;
      W.put_uint b a.a_last_served;
      W.put_uint b a.a_slots;
      W.put_uint b a.a_strikes;
      W.put_string b (Session.snapshot a.a_session))
    t.active;
  Buffer.contents b

(* ------------------------------------------------------------------ *)

let do_checkpoint t =
  match t.journal with
  | None -> false
  | Some j ->
    if t.completions <> [] then false
    else begin
      t.checkpoints <- t.checkpoints + 1;
      Journal.append j
        (Journal.Checkpoint { round = t.rounds; state = encode_state t });
      (* The journal lives in memory for the service's whole life:
         without compaction the dead prefix grows without bound (the
         PR8 soak's flat-heap gate is what catches this). *)
      Journal.compact j;
      true
    end

let create ?(sconfig = default) ?(journal = true) ?(pool = Parallel.Pool.sequential)
    () =
  let cfg =
    match validate sconfig with
    | Ok c -> c
    | Error e -> invalid_arg (cerror_to_string e)
  in
  let t =
    {
      cfg;
      pool;
      journal = (if journal then Some (Journal.create ()) else None);
      queue = Queue.create ();
      active = [];
      completions = [];
      draining = false;
      expected = Hashtbl.create 16;
      submitted = 0;
      admitted = 0;
      rejected = 0;
      completed = 0;
      failed = 0;
      rounds = 0;
      slots = 0;
      peak_inflight = 0;
      max_wait = 0;
      checkpoints = 0;
      divergences = 0;
      last_round_digest = 0;
      ckpt_due = false;
    }
  in
  (* The initial checkpoint: an untorn journal always has something to
     restart from. *)
  ignore (do_checkpoint t);
  t

(* Deterministic backpressure hint: rounds to chew through the backlog
   at the configured budget rate — the earliest step count at which a
   retry can plausibly be admitted. *)
let retry_hint cfg ~queued =
  max 1 (((queued * cfg.quantum) + cfg.round_budget - 1) / cfg.round_budget)

(* Admission control: a submission is either ticketed into the queue
   or refused with a typed [Busy] — backpressure the caller can act
   on (retry after [step]) instead of unbounded buffering.  Every
   submission, accepted or not, is booked and journaled, so the
   ledger always balances — and replays exactly:
   submitted = completed + rejected + queued + in-flight. *)
let submit t spec =
  t.submitted <- t.submitted + 1;
  let refuse () =
    t.rejected <- t.rejected + 1;
    jrnl t
      (Journal.Submitted
         { id = t.submitted; name = spec.sp_name; rejected = true });
    Error
      (Busy
         {
           inflight = inflight t;
           queued = queued t;
           retry_after_rounds = retry_hint t.cfg ~queued:(queued t);
         })
  in
  if t.draining then refuse ()
  else if Queue.length t.queue >= t.cfg.max_queue && t.cfg.max_queue > 0 then
    refuse ()
  else if t.cfg.max_queue = 0 && inflight t >= t.cfg.max_inflight then
    (* No queue at all: admission happens next [step]; refuse once the
       in-flight cap alone is saturated. *)
    refuse ()
  else begin
    let id = t.submitted in
    Queue.add (id, spec) t.queue;
    jrnl t (Journal.Submitted { id; name = spec.sp_name; rejected = false });
    Ok id
  end

(* Book one session's exit — diagnosis or typed failure — into the
   completion list, the ledger and the journal, auditing against any
   digest the recovery replay expects for this ticket. *)
let complete t round a result =
  let digest = result_digest result in
  (match Hashtbl.find_opt t.expected a.a_id with
   | Some d ->
     Hashtbl.remove t.expected a.a_id;
     if d <> digest then t.divergences <- t.divergences + 1
   | None -> ());
  jrnl t (Journal.Completed { id = a.a_id; digest });
  t.completions <-
    {
      c_id = a.a_id;
      c_name = a.a_name;
      c_result = result;
      c_admitted_round = a.a_admitted_round;
      c_completed_round = round;
      c_slots = a.a_slots;
      c_wall_s = Unix.gettimeofday () -. a.a_t0;
    }
    :: t.completions;
  t.completed <- t.completed + 1;
  match result with
  | Error _ -> t.failed <- t.failed + 1
  | Ok _ -> ()

let fail t round a reason detail =
  complete t round a
    (Error { sf_reason = reason; sf_detail = detail; sf_strikes = a.a_strikes })

let finalize t round a =
  match Session.need a.a_session with
  | Session.Slots _ -> true
  | Session.Finished -> (
    match Session.result a.a_session with
    | d ->
      complete t round a (Ok d);
      false
    | exception e ->
      fail t round a Crashed (Printexc.to_string e);
      false)
  | exception e ->
    fail t round a Crashed (Printexc.to_string e);
    false

let step t =
  if t.active = [] && Queue.is_empty t.queue then false
  else begin
    t.rounds <- t.rounds + 1;
    let round = t.rounds in
    (* 0. Deadline eviction: a session that cannot converge must not
       hold an in-flight slot forever. *)
    if t.cfg.session_deadline_rounds > 0 then begin
      let expired, alive =
        List.partition
          (fun a -> round - a.a_admitted_round >= t.cfg.session_deadline_rounds)
          t.active
      in
      List.iter
        (fun a ->
          fail t round a Timed_out
            (Printf.sprintf "no diagnosis %d rounds after admission"
               t.cfg.session_deadline_rounds))
        expired;
      t.active <- alive
    end;
    (* 1. Admission, in submission order.  The session's offline phase
       (slice, instrumentation cache) runs here, once, at admission. *)
    while inflight t < t.cfg.max_inflight && not (Queue.is_empty t.queue) do
      let id, sp = Queue.take t.queue in
      let session =
        Session.create ~config:sp.sp_config ~ingest:sp.sp_ingest
          ?oracle:sp.sp_oracle ~id ~bug_name:sp.sp_name
          ~failure_type:sp.sp_failure_type ~program:sp.sp_program
          ~workload_of:sp.sp_workload_of ~failure:sp.sp_failure ()
      in
      t.admitted <- t.admitted + 1;
      t.active <-
        t.active
        @ [
            {
              a_id = id;
              a_name = sp.sp_name;
              a_session = session;
              a_admitted_round = round;
              a_t0 = Unix.gettimeofday ();
              a_last_served = round - 1;
              a_slots = 0;
              a_strikes = 0;
            };
          ]
    done;
    t.peak_inflight <- max t.peak_inflight (inflight t);
    (* 2. Grant: walk the ring, [quantum] slots per session, stopping
       when the round budget is spent.  Each thunk is wrapped so a
       raise comes back as a value — containment happens at delivery,
       deterministically, not wherever the pool happened to run it. *)
    let budget = ref t.cfg.round_budget in
    let grants =
      List.filter_map
        (fun a ->
          if !budget <= 0 then None
          else
            match Session.need a.a_session with
            | Session.Finished -> None
            | Session.Slots n ->
              let k = min (min t.cfg.quantum n) !budget in
              if k <= 0 then None
              else begin
                let thunks = Session.grant a.a_session k in
                budget := !budget - Array.length thunks;
                t.max_wait <- max t.max_wait (round - a.a_last_served - 1);
                a.a_last_served <- round;
                Some (a, thunks)
              end
            | exception e -> Some (a, [| (fun () -> raise e) |]))
        t.active
    in
    let wrapped =
      Array.concat
        (List.map
           (fun (_, thunks) ->
             Array.map
               (fun th () ->
                 match th () with
                 | o -> Ok o
                 | exception e -> Error (Printexc.to_string e))
               thunks)
           grants)
    in
    (* 3. One parallel batch per round over the shared pool: outcomes
       come back in submission order at any job count. *)
    let outs = Parallel.Pool.map_array t.pool (fun th -> th ()) wrapped in
    (* 4. Deliver each session its segment, in ring (= grant) order.
       A raising slot strikes the session and degrades into a
       deterministic crash outcome; at the strike limit the session is
       quarantined — a typed failure, never a service crash. *)
    let dead = Hashtbl.create 4 in
    let off = ref 0 in
    List.iter
      (fun (a, thunks) ->
        let n = Array.length thunks in
        let seg = Array.sub outs !off n in
        off := !off + n;
        a.a_slots <- a.a_slots + n;
        t.slots <- t.slots + n;
        let first_err =
          Array.fold_left
            (fun acc o ->
              match (acc, o) with
              | None, Error e -> Some e
              | acc, _ -> acc)
            None seg
        in
        let deliver outcomes =
          try Session.deliver a.a_session outcomes
          with e ->
            fail t round a Crashed (Printexc.to_string e);
            Hashtbl.replace dead a.a_id ()
        in
        match first_err with
        | None ->
          deliver
            (Array.map
               (function Ok o -> o | Error _ -> assert false)
               seg)
        | Some err ->
          a.a_strikes <- a.a_strikes + 1;
          if a.a_strikes >= t.cfg.max_session_strikes then begin
            fail t round a Quarantined err;
            Hashtbl.replace dead a.a_id ()
          end
          else
            deliver
              (Array.map
                 (function
                   | Ok o -> o
                   | Error _ -> Session.crashed_outcome a.a_session)
                 seg))
      grants;
    (* 5. Finalize finished sessions, freeing in-flight capacity. *)
    t.active <-
      List.filter
        (fun a -> (not (Hashtbl.mem dead a.a_id)) && finalize t round a)
        t.active;
    (* 6. Journal the round: the digest folds what was served and every
       surviving session's accepted-report audit — the recovery replay
       recomputes exactly this and compares. *)
    let digest =
      let d =
        List.fold_left
          (fun acc (a, thunks) -> mix (mix acc a.a_id) (Array.length thunks))
          round grants
      in
      List.fold_left (fun acc a -> mix acc (Session.audit a.a_session)) d t.active
    in
    t.last_round_digest <- digest;
    jrnl t (Journal.Round { round; digest });
    (* 7. Checkpoint on cadence — only when no completion is waiting to
       be harvested, so nothing the caller has not seen can be
       checkpointed away. *)
    if
      t.cfg.checkpoint_every_rounds > 0
      && round mod t.cfg.checkpoint_every_rounds = 0
    then if not (do_checkpoint t) then t.ckpt_due <- true;
    (* 8. Re-ring: sessions served this round go to the back, the rest
       keep their order at the front.  (Blindly rotating the head is
       not enough: when the served head finishes and is removed, the
       next — unserved — session would be the one rotated to the back,
       and under completion churn the same session can be bumped
       unserved round after round.)  At least one session is served
       every round (budget >= quantum), so an unserved session loses
       at least one predecessor per round and reaches the head within
       [max_inflight] rounds. *)
    let unserved, served =
      List.partition (fun a -> a.a_last_served < round) t.active
    in
    t.active <- unserved @ served;
    true
  end

let rec drain t = if step t then drain t

let completions t = List.rev t.completions

(* Harvest and forget: a long-running service must not retain every
   diagnosis it ever produced. *)
let take_completions t =
  let cs = List.rev t.completions in
  t.completions <- [];
  (* The cadence checkpoint that was blocked on these completions. *)
  if t.ckpt_due then begin
    t.ckpt_due <- false;
    ignore (do_checkpoint t)
  end;
  cs

let stats t =
  {
    st_submitted = t.submitted;
    st_admitted = t.admitted;
    st_rejected = t.rejected;
    st_completed = t.completed;
    st_failed = t.failed;
    st_rounds = t.rounds;
    st_slots = t.slots;
    st_peak_inflight = t.peak_inflight;
    st_max_wait_rounds = t.max_wait;
    st_checkpoints = t.checkpoints;
    st_divergences = t.divergences;
  }

(* ------------------------------------------------------------------ *)
(* Introspection *)

type session_view = {
  v_id : int;
  v_name : string;
  v_admitted_round : int;
  v_rounds_waiting : int;
  v_slots : int;
  v_strikes : int;
  v_progress : Session.progress;
}

let status t =
  List.map
    (fun a ->
      {
        v_id = a.a_id;
        v_name = a.a_name;
        v_admitted_round = a.a_admitted_round;
        v_rounds_waiting = max 0 (t.rounds - a.a_last_served);
        v_slots = a.a_slots;
        v_strikes = a.a_strikes;
        v_progress = Session.progress a.a_session;
      })
    t.active

(* ------------------------------------------------------------------ *)
(* Crash-only lifecycle *)

let journal_bytes t =
  match t.journal with None -> "" | Some j -> Journal.contents j

let checkpoint t = do_checkpoint t

let request_drain t = t.draining <- true

let shutdown t =
  request_drain t;
  drain t;
  let cs = take_completions t in
  ignore (do_checkpoint t);
  cs

type rerror =
  | No_checkpoint
  | Unresolved_spec of string
  | Bad_session of { name : string; detail : string }

let rerror_to_string = function
  | No_checkpoint -> "recover: no intact checkpoint in the journal"
  | Unresolved_spec name ->
    Printf.sprintf "recover: no spec resolves bug %S" name
  | Bad_session { name; detail } ->
    Printf.sprintf "recover: session %S refused its snapshot: %s" name detail

exception Recover_failed of rerror

(* Rebuild a service value from one checkpoint's state bytes.  Raises
   [W.Short] on a state this build cannot decode (the caller falls
   back to an older checkpoint) and [Recover_failed] on resolver or
   snapshot refusals (hard errors: no older checkpoint can fix a
   missing spec). *)
let decode_state ~pool ~resolve state =
  let r = W.reader state in
  if W.get_uint r <> state_version then raise W.Short;
  let max_inflight = W.get_uint r in
  let max_queue = W.get_uint r in
  let quantum = W.get_uint r in
  let round_budget = W.get_uint r in
  let checkpoint_every_rounds = W.get_uint r in
  let session_deadline_rounds = W.get_uint r in
  let max_session_strikes = W.get_uint r in
  let cfg =
    {
      max_inflight;
      max_queue;
      quantum;
      round_budget;
      checkpoint_every_rounds;
      session_deadline_rounds;
      max_session_strikes;
    }
  in
  let submitted = W.get_uint r in
  let admitted = W.get_uint r in
  let rejected = W.get_uint r in
  let completed = W.get_uint r in
  let failed = W.get_uint r in
  let rounds = W.get_uint r in
  let slots = W.get_uint r in
  let peak_inflight = W.get_uint r in
  let max_wait = W.get_uint r in
  let divergences = W.get_uint r in
  let draining = W.get_bool r in
  let resolve_exn name =
    match resolve name with
    | Some sp -> sp
    | None -> raise (Recover_failed (Unresolved_spec name))
  in
  let queue = Queue.create () in
  let nq = W.get_uint r in
  for _ = 1 to nq do
    let id = W.get_uint r in
    let name = W.get_string r in
    Queue.add (id, resolve_exn name) queue
  done;
  let na = W.get_uint r in
  let active = ref [] in
  for _ = 1 to na do
    let a_id = W.get_uint r in
    let a_name = W.get_string r in
    let a_admitted_round = W.get_uint r in
    let a_last_served = W.get_uint r in
    let a_slots = W.get_uint r in
    let a_strikes = W.get_uint r in
    let snap = W.get_string r in
    let sp = resolve_exn a_name in
    let session =
      match
        Session.restore ~config:sp.sp_config ~ingest:sp.sp_ingest
          ?oracle:sp.sp_oracle ~bug_name:sp.sp_name
          ~failure_type:sp.sp_failure_type ~program:sp.sp_program
          ~workload_of:sp.sp_workload_of ~failure:sp.sp_failure snap
      with
      | Ok s -> s
      | Error e ->
        raise
          (Recover_failed
             (Bad_session
                {
                  name = a_name;
                  detail = Session.snapshot_error_to_string e;
                }))
    in
    active :=
      {
        a_id;
        a_name;
        a_session = session;
        a_admitted_round;
        a_t0 = Unix.gettimeofday ();
        a_last_served;
        a_slots;
        a_strikes;
      }
      :: !active
  done;
  if not (W.eof r) then raise W.Short;
  let t =
    {
      cfg;
      pool;
      journal = Some (Journal.create ());
      queue;
      active = List.rev !active;
      completions = [];
      draining;
      expected = Hashtbl.create 16;
      submitted;
      admitted;
      rejected;
      completed;
      failed;
      rounds;
      slots;
      peak_inflight;
      max_wait;
      checkpoints = 0;
      divergences;
      last_round_digest = 0;
      ckpt_due = false;
    }
  in
  (* Seed the fresh journal so a second crash recovers the same way. *)
  ignore (do_checkpoint t);
  t

let recover ?(pool = Parallel.Pool.sequential) ~resolve bytes =
  let entries = Journal.load bytes in
  (* Newest intact checkpoint wins; a damaged one is skipped by
     construction (it loads as [Damaged], not [Checkpoint]), falling
     back to an older one — ultimately the initial checkpoint
     [create] wrote. *)
  let candidates =
    (* (index, state) of every intact checkpoint, newest first. *)
    List.rev
      (List.mapi (fun i e -> (i, e)) entries
      |> List.filter_map (function
           | i, Journal.Rec (Journal.Checkpoint { state; _ }) -> Some (i, state)
           | _ -> None))
  in
  let rec restart = function
    | [] -> Error No_checkpoint
    | (idx, state) :: older -> (
      match decode_state ~pool ~resolve state with
      | t -> Ok (idx, t)
      | exception W.Short -> restart older
      | exception Recover_failed e -> Error e)
  in
  match restart candidates with
  | Error e -> Error e
  | Ok (idx, t) ->
    (* Replay the journaled tail through the real submit/step code.
       [Completed] records precede their round's [Round] record, so
       expectations are always in the table before the replayed round
       re-completes the ticket. *)
    let tail = List.filteri (fun i _ -> i > idx) entries in
    let replay entry =
        match entry with
        | Journal.Rec (Journal.Submitted { id; name; rejected }) ->
          if rejected then begin
            (* The spec is not needed to replay a refusal — only the
               counters (and the journal record) matter. *)
            t.submitted <- t.submitted + 1;
            t.rejected <- t.rejected + 1;
            jrnl t (Journal.Submitted { id = t.submitted; name; rejected = true });
            if t.submitted <> id then t.divergences <- t.divergences + 1
          end
          else begin
            let sp =
              match resolve name with
              | Some sp -> sp
              | None -> raise (Recover_failed (Unresolved_spec name))
            in
            (* Draining refuses submissions; the original journal can
               only hold an accepted record from before the drain, so
               lift the flag for the replayed call. *)
            let was_draining = t.draining in
            t.draining <- false;
            (match submit t sp with
             | Ok id' -> if id' <> id then t.divergences <- t.divergences + 1
             | Error _ -> t.divergences <- t.divergences + 1);
            t.draining <- was_draining
          end
        | Journal.Rec (Journal.Completed { id; digest }) ->
          Hashtbl.replace t.expected id digest
        | Journal.Rec (Journal.Round { round; digest }) ->
          ignore (step t : bool);
          if t.rounds <> round || t.last_round_digest <> digest then
            t.divergences <- t.divergences + 1
        | Journal.Rec (Journal.Checkpoint _) ->
          (* The replay writes its own checkpoints on its own cadence. *)
          ()
        | Journal.Damaged _ ->
          (* Framing survived, content did not: whatever decision the
             record held is lost to the replay.  Book the divergence
             rather than guess. *)
          t.divergences <- t.divergences + 1
    in
    (match List.iter replay tail with
     | () -> Ok t
     | exception Recover_failed e -> Error e)
