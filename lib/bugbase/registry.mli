(** All Table 1 bugs, in the paper's row order. *)

val all : Common.t list

(** Case-insensitive lookup by Table 1 row name. *)
val find : string -> Common.t option

val names : string list
