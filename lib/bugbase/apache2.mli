(** Apache bug #25520 ("Apache-2", httpd 2.0.48): unsynchronised access-log writes lose entries; the flush-time consistency assert fires. *)

(** The IR re-creation of the buggy program. *)
val program : Ir.Types.program

(** The Bugbase descriptor (workloads, ideal sketch, target failure). *)
val bug : Common.t
