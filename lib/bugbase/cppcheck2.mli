(** Cppcheck bug #2782 (v1.48): constant folding evaluates "<num>/<num>" with host division; analysing a literal division by zero crashes the checker itself. *)

(** The IR re-creation of the buggy program. *)
val program : Ir.Types.program

(** The production input mix; one entry is the failing input. *)
val inputs : string array

(** The Bugbase descriptor (workloads, ideal sketch, target failure). *)
val bug : Common.t
