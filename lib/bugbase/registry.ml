(* All Table 1 bugs, in the paper's row order. *)

let all : Common.t list =
  [
    Apache1.bug;
    Apache2.bug;
    Apache3.bug;
    Apache4.bug;
    Cppcheck1.bug;
    Cppcheck2.bug;
    Curl.bug;
    Transmission.bug;
    Sqlite.bug;
    Memcached.bug;
    Pbzip2.bug;
  ]

let find name =
  List.find_opt
    (fun (b : Common.t) ->
      String.lowercase_ascii b.name = String.lowercase_ascii name)
    all

let names = List.map (fun (b : Common.t) -> b.name) all
