(* Cppcheck bug #3238 (v1.52): the template simplification pass assumes
   every '<' token has a successor ("tok->next()") and dereferences it;
   source files ending in a dangling '<' crash the checker.

   Token node layout: [0] char code, [1] next, [2] kind.
   Kinds: 0 other, 1 name, 2 angle '<', 3 number. *)

open Ir.Types
module B = Ir.Builder

let file = "cppcheck1.cpp"
let i = B.file file
let r = B.r
let im = B.im

(* Build the token list from the source string. *)
let tokenize =
  B.func "tokenize" ~params:[ "src" ]
    [
      B.block "entry"
        [
          i 10 "Token* head = new Token(END);" (Malloc ("head", 3));
          i 11 "head->kind = K_END;" (Store (r "head", 2, im 0));
          i 11 "head->next = NULL;" (Store (r "head", 1, Null));
          i 12 "Token* tail = head;" (Assign ("tail", Mov (r "head")));
          i 13 "int len = strlen(src);" (Builtin (Some "len", "strlen", [ r "src" ]));
          i 14 "for (int k = 0; k < len; k++) {" (Assign ("k", Mov (im 0)));
          i 14 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 14 "for (int k = 0; k < len; k++) {"
            (Assign ("more", B.( <% ) (r "k") (r "len")));
          i 14 "" (Branch (r "more", "body", "done"));
        ];
      B.block "body"
        [
          i 15 "char c = src[k];" (Builtin (Some "c", "str_char", [ r "src"; r "k" ]));
          i 16 "int kind = classify(c);" (Assign ("isang", B.( =% ) (r "c") (im 60)));
          i 16 "int kind = classify(c);" (Branch (r "isang", "angle", "notangle"));
        ];
      B.block "angle"
        [
          i 17 "kind = K_ANGLE;" (Assign ("kind", Mov (im 2)));
          i 17 "" (Jmp "append");
        ];
      B.block "notangle"
        [
          i 18 "kind = isalpha(c) ? K_NAME : K_OTHER;"
            (Assign ("isal", B.( >=% ) (r "c") (im 97)));
          i 18 "kind = isalpha(c) ? K_NAME : K_OTHER;"
            (Branch (r "isal", "name", "other"));
        ];
      B.block "name"
        [
          i 18 "" (Assign ("kind", Mov (im 1)));
          i 18 "" (Jmp "append");
        ];
      B.block "other"
        [
          i 19 "" (Assign ("kind", Mov (im 0)));
          i 19 "" (Jmp "append");
        ];
      B.block "append"
        [
          i 20 "Token* tok = new Token(c, kind);" (Malloc ("tok", 3));
          i 20 "Token* tok = new Token(c, kind);" (Store (r "tok", 0, r "c"));
          i 21 "tok->kind = kind;" (Store (r "tok", 2, r "kind"));
          i 21 "tok->next = NULL;" (Store (r "tok", 1, Null));
          i 22 "tail->next = tok;" (Store (r "tail", 1, r "tok"));
          i 23 "tail = tok;" (Assign ("tail", Mov (r "tok")));
          i 24 "}" (Assign ("k", B.( +% ) (r "k") (im 1)));
          i 24 "" (Jmp "loop");
        ];
      B.block "done" [ i 25 "return head;" (Ret (Some (r "head"))) ];
    ]

let simplify_templates =
  B.func "simplify_templates" ~params:[ "head" ]
    [
      B.block "entry"
        [
          i 30 "for (Token* tok = head; tok; tok = tok->next) {"
            (Assign ("tok", Mov (r "head")));
          i 30 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 30 "for (Token* tok = head; tok; tok = tok->next) {"
            (Assign ("go", B.( <>% ) (r "tok") Null));
          i 30 "" (Branch (r "go", "body", "done"));
        ];
      B.block "body"
        [
          i 31 "if (tok->kind == K_ANGLE) {" (Load ("kd", r "tok", 2));
          i 31 "if (tok->kind == K_ANGLE) {"
            (Assign ("isang", B.( =% ) (r "kd") (im 2)));
          i 31 "if (tok->kind == K_ANGLE) {" (Branch (r "isang", "tmpl", "next"));
        ];
      B.block "tmpl"
        [
          i 32 "Token* tok2 = tok->next;" (Load ("tok2", r "tok", 1));
          i 33 "int k2 = tok2->kind;      /* crash on dangling '<' */"
            (Load ("k2", r "tok2", 2));
          i 34 "if (k2 == K_NAME) instantiate(tok, tok2);"
            (Assign ("isn", B.( =% ) (r "k2") (im 1)));
          i 34 "if (k2 == K_NAME) instantiate(tok, tok2);"
            (Branch (r "isn", "inst", "next"));
        ];
      B.block "inst"
        [
          i 35 "tok->kind = K_TEMPLATE;" (Store (r "tok", 2, im 4));
          i 35 "" (Jmp "next");
        ];
      B.block "next"
        [
          i 36 "}" (Load ("tok", r "tok", 1));
          i 36 "" (Jmp "loop");
        ];
      B.block "done" [ i 37 "return;" (Ret (Some (im 0))) ];
    ]

(* Distractor pass: count name tokens (never crashes). *)
let check_unused =
  B.func "check_unused" ~params:[ "head" ]
    [
      B.block "entry"
        [
          i 40 "int names = 0;" (Assign ("names", Mov (im 0)));
          i 40 "Token* tok = head;" (Assign ("tok", Mov (r "head")));
          i 40 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 41 "for (; tok; tok = tok->next)"
            (Assign ("go", B.( <>% ) (r "tok") Null));
          i 41 "" (Branch (r "go", "body", "done"));
        ];
      B.block "body"
        [
          i 42 "if (tok->kind == K_NAME) names++;" (Load ("kd", r "tok", 2));
          i 42 "if (tok->kind == K_NAME) names++;"
            (Assign ("isn", B.( =% ) (r "kd") (im 1)));
          i 42 "if (tok->kind == K_NAME) names++;"
            (Branch (r "isn", "count", "skip"));
        ];
      B.block "count"
        [
          i 42 "" (Assign ("names", B.( +% ) (r "names") (im 1)));
          i 42 "" (Jmp "skip");
        ];
      B.block "skip"
        [
          i 43 "" (Load ("tok", r "tok", 1));
          i 43 "" (Jmp "loop");
        ];
      B.block "done" [ i 44 "return names;" (Ret (Some (r "names"))) ];
    ]

let main =
  B.func "main" ~params:[ "src" ]
    [
      B.block "entry"
        [
          i 50 "Token* head = tokenize(src);" (Call (Some "head", "tokenize", [ r "src" ]));
          i 51 "simplify_templates(head);"
            (Call (None, "simplify_templates", [ r "head" ]));
          i 52 "int names = check_unused(head);"
            (Call (Some "names", "check_unused", [ r "head" ]));
          i 53 "return 0;" (Ret (Some (im 0)));
        ];
    ]

let program =
  Ir.Program.make ~main:"main"
    [ tokenize; simplify_templates; check_unused; main ]

(* Realistic multi-statement source files (the checker's unit of work). *)
let sample body = String.concat " " (List.init 8 (fun _ -> body))

let inputs =
  [|
    sample "int main() { return 0; }";
    sample "class A { void f(); };";
    sample "template<typename T> T id(T x) { return x; }";
    sample "std::vector<int> v;";
    sample "void g() { int x = 1; }";
    sample "a = b + c;" ^ " template<";  (* failing: dangling '<' at EOF *)
    sample "a = b + c;";
    sample "for (;;) {}";
    sample "if (p) q();";
    sample "x<y && y<z;";
  |]

let bug : Common.t =
  {
    name = "Cppcheck-1";
    software = "Cppcheck";
    version = "1.52";
    bug_id = "3238";
    description =
      "The template simplification pass dereferences tok->next after a \
       '<' token without a NULL check; sources ending in a dangling '<' \
       crash the checker.";
    failure_type = "Sequential bug, segmentation fault";
    bug_class = Common.Sequential;
    program;
    source_file = file;
    workload_of =
      (fun c ->
        Exec.Interp.workload
          ~args:[ Exec.Value.VStr inputs.(c mod Array.length inputs) ]
          (Common.seed_of_client c));
    ideal_lines = [ 50; 10; 25; 51; 36; 30; 31; 32; 33 ];
    root_lines = [ 31; 32; 33 ];
    target_kind_tag = "segfault";
    target_line = 33;
    claimed_loc = 86_215;
    preempt_prob = 0.2;
  }
