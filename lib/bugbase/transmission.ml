(* Transmission bug #1818 (v1.42): the tr_bandwidth accounting is
   updated from several threads without synchronisation.  Allocation
   and release both do read-modify-write on the shared byte counter;
   a lost update leaves the counter non-zero after all transfers have
   been returned, and the invariant assertion in the shutdown path
   fires.

   Global: band_used (bytes currently allocated to peers). *)

open Ir.Types
module B = Ir.Builder

let file = "transmission.c"
let i = B.file file
let r = B.r
let im = B.im

let transfer_piece =
  B.func "transfer_piece" ~params:[ "sz" ]
    [
      B.block "entry"
        [
          i 90 "" (Assign ("acc", Mov (r "sz")));
          i 90 "" (Assign ("k", Mov (im 0)));
          i 90 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 91 "memcpy(dst, src, sz);" (Assign ("more", B.( <% ) (r "k") (im 140)));
          i 91 "" (Branch (r "more", "body", "done"));
        ];
      B.block "body"
        [
          i 92 "" (Assign ("acc", B.( +% ) (r "acc") (im 7)));
          i 92 "" (Assign ("k", B.( +% ) (r "k") (im 1)));
          i 92 "" (Jmp "loop");
        ];
      B.block "done" [ i 93 "return acc;" (Ret (Some (r "acc"))) ];
    ]

let peer_loop =
  B.func "peer_loop" ~params:[ "pieces"; "sz" ]
    [
      B.block "entry"
        [
          i 20 "for (int k = 0; k < pieces; k++) {" (Assign ("k", Mov (im 0)));
          i 20 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 20 "for (int k = 0; k < pieces; k++) {"
            (Assign ("more", B.( <% ) (r "k") (r "pieces")));
          i 20 "" (Branch (r "more", "alloc", "done"));
        ];
      B.block "alloc"
        [
          i 21 "int used = band->used;" (Load_global ("used", "band_used"));
          i 22 "band->used = used + sz;"
            (Assign ("u1", B.( +% ) (r "used") (r "sz")));
          i 22 "band->used = used + sz;" (Store_global ("band_used", r "u1"));
          i 23 "transfer_piece(sz);"
            (Call (Some "w", "transfer_piece", [ r "sz" ]));
          i 24 "int used2 = band->used;" (Load_global ("used2", "band_used"));
          i 25 "band->used = used2 - sz;"
            (Assign ("u2", B.( -% ) (r "used2") (r "sz")));
          i 25 "band->used = used2 - sz;" (Store_global ("band_used", r "u2"));
          i 26 "}" (Assign ("k", B.( +% ) (r "k") (im 1)));
          i 26 "" (Jmp "loop");
        ];
      B.block "done" [ i 27 "return 0;" (Ret (Some (im 0))) ];
    ]

let main =
  B.func "main" ~params:[ "pieces" ]
    [
      B.block "entry"
        [
          i 10 "t1 = spawn(peer_loop, pieces, 4);"
            (Spawn ("t1", "peer_loop", [ r "pieces"; im 4 ]));
          i 11 "t2 = spawn(peer_loop, pieces, 4);"
            (Spawn ("t2", "peer_loop", [ r "pieces"; im 4 ]));
          i 12 "join(t1); join(t2);" (Join (r "t1"));
          i 12 "join(t1); join(t2);" (Join (r "t2"));
          i 13 "int leftover = band->used;" (Load_global ("left", "band_used"));
          i 14 "tr_assert(leftover == 0);"
            (Assign ("okp", B.( =% ) (r "left") (im 0)));
          i 14 "tr_assert(leftover == 0);"
            (Assert (r "okp", "bandwidth accounting leaked"));
          i 15 "return 0;" (Ret (Some (im 0)));
        ];
    ]

let program =
  Ir.Program.make
    ~globals:[ B.global "band_used" ]
    ~main:"main"
    [ transfer_piece; peer_loop; main ]

let bug : Common.t =
  {
    name = "Transmission";
    software = "Transmission";
    version = "1.42";
    bug_id = "1818";
    description =
      "Unsynchronised read-modify-write on the shared bandwidth counter \
       loses updates; the shutdown invariant assert(used == 0) fails.";
    failure_type = "Concurrency bug, assertion failure";
    bug_class = Common.Concurrency;
    program;
    source_file = file;
    workload_of =
      (fun c ->
        Exec.Interp.workload
          ~args:[ Exec.Value.VInt (2 + (c mod 3)) ]
          (Common.seed_of_client c));
    ideal_lines = [ 10; 11; 21; 22; 24; 25; 13; 14 ];
    root_lines = [ 21; 22; 13; 14 ];
    target_kind_tag = "assert";
    target_line = 14;
    claimed_loc = 59_977;
    preempt_prob = 0.18;
  }
