(* Apache bug #25520 ("Apache-2", httpd 2.0.48): concurrent access-log
   writes corrupt the shared log buffer.  Each writer does

       pos = log_pos; buf[pos] = msg; log_pos = pos + 1;

   without holding the buffer lock, so two threads can read the same
   position and one entry overwrites the other; the flush-time
   consistency check then fails.

   Globals: log_pos (index), logbuf (pointer to the entry array). *)

open Ir.Types
module B = Ir.Builder

let file = "apache2.c"
let i = B.file file
let r = B.r
let im = B.im

(* Formatting a log entry: CPU work per request. *)
let format_entry =
  B.func "format_entry" ~params:[ "req" ]
    [
      B.block "entry"
        [
          i 50 "char* p = fmt_begin(req);" (Assign ("h", B.( *% ) (r "req") (im 17)));
          i 51 "" (Assign ("k", Mov (im 0)));
          i 51 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 51 "while (*src) *dst++ = *src++;"
            (Assign ("more", B.( <% ) (r "k") (im 160)));
          i 51 "" (Branch (r "more", "body", "done"));
        ];
      B.block "body"
        [
          i 52 "" (Assign ("h", B.( +% ) (r "h") (r "k")));
          i 52 "" (Assign ("k", B.( +% ) (r "k") (im 1)));
          i 52 "" (Jmp "loop");
        ];
      B.block "done" [ i 53 "return p;" (Ret (Some (r "h"))) ];
    ]

let log_write =
  B.func "log_write" ~params:[ "msg" ]
    [
      B.block "entry"
        [
          i 30 "int pos = log_pos;" (Load_global ("pos", "log_pos"));
          i 31 "entry_t* buf = logbuf;" (Load_global ("buf", "logbuf"));
          i 32 "buf[pos] = msg;"
            (Assign ("slot", B.( +% ) (r "buf") (r "pos")));
          i 32 "buf[pos] = msg;" (Store (r "slot", 0, r "msg"));
          i 33 "log_pos = pos + 1;" (Assign ("p1", B.( +% ) (r "pos") (im 1)));
          i 33 "log_pos = pos + 1;" (Store_global ("log_pos", r "p1"));
          i 34 "return;" (Ret (Some (im 0)));
        ];
    ]

let request_worker =
  B.func "request_worker" ~params:[ "n" ]
    [
      B.block "entry"
        [
          i 20 "for (int k = 0; k < n; k++) {" (Assign ("k", Mov (im 0)));
          i 20 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 20 "for (int k = 0; k < n; k++) {"
            (Assign ("more", B.( <% ) (r "k") (r "n")));
          i 20 "" (Branch (r "more", "body", "done"));
        ];
      B.block "body"
        [
          i 21 "entry_t e = format_entry(k);"
            (Call (Some "e", "format_entry", [ r "k" ]));
          i 22 "log_write(e);" (Call (None, "log_write", [ r "e" ]));
          i 23 "}" (Assign ("k", B.( +% ) (r "k") (im 1)));
          i 23 "" (Jmp "loop");
        ];
      B.block "done" [ i 24 "return 0;" (Ret (Some (im 0))) ];
    ]

let main =
  B.func "main" ~params:[ "n" ]
    [
      B.block "entry"
        [
          i 10 "logbuf = malloc(LOG_CAPACITY);" (Malloc ("buf", 32));
          i 10 "logbuf = malloc(LOG_CAPACITY);" (Store_global ("logbuf", r "buf"));
          i 11 "t1 = spawn(request_worker, n);"
            (Spawn ("t1", "request_worker", [ r "n" ]));
          i 12 "t2 = spawn(request_worker, n);"
            (Spawn ("t2", "request_worker", [ r "n" ]));
          i 13 "join(t1); join(t2);" (Join (r "t1"));
          i 13 "join(t1); join(t2);" (Join (r "t2"));
          i 14 "int written = log_pos;" (Load_global ("written", "log_pos"));
          i 15 "expected = 2 * n;" (Assign ("exp", B.( *% ) (r "n") (im 2)));
          i 16 "ap_assert(written == expected);"
            (Assign ("okp", B.( =% ) (r "written") (r "exp")));
          i 16 "ap_assert(written == expected);"
            (Assert (r "okp", "log entries lost"));
          i 17 "return 0;" (Ret (Some (im 0)));
        ];
    ]

let program =
  Ir.Program.make
    ~globals:[ B.global "log_pos"; B.global "logbuf" ]
    ~main:"main"
    [ format_entry; log_write; request_worker; main ]

let bug : Common.t =
  {
    name = "Apache-2";
    software = "Apache httpd";
    version = "2.0.48";
    bug_id = "25520";
    description =
      "Two request workers race on the shared access-log position: a \
       read-increment-write without the buffer lock loses entries, and \
       the flush-time consistency assert fails.";
    failure_type = "Concurrency bug, assertion failure";
    bug_class = Common.Concurrency;
    program;
    source_file = file;
    workload_of =
      (fun c ->
        Exec.Interp.workload
          ~args:[ Exec.Value.VInt (3 + (c mod 3)) ]
          (Common.seed_of_client c));
    ideal_lines = [ 30; 33; 14; 16 ];
    root_lines = [ 30; 33; 14; 16 ];
    target_kind_tag = "assert";
    target_line = 16;
    claimed_loc = 169_747;
    preempt_prob = 0.15;
  }
