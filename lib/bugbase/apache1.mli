(** Apache bug #45605 ("Apache-1", httpd 2.2.9): a TOCTOU race on the lockless connection-queue fast path; the losing worker dereferences NULL. *)

(** The IR re-creation of the buggy program. *)
val program : Ir.Types.program

(** The Bugbase descriptor (workloads, ideal sketch, target failure). *)
val bug : Common.t
