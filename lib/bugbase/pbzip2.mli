(** Pbzip2 bug #1 (paper Fig. 1): main frees f->mut and sets it to NULL while the consumer thread is exiting its loop; the final release calls mutex_unlock(NULL). *)

(** The IR re-creation of the buggy program. *)
val program : Ir.Types.program

(** The Bugbase descriptor (workloads, ideal sketch, target failure). *)
val bug : Common.t
