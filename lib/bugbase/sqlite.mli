(** SQLite bug #1672 (v3.3.3): sqlite3_close invalidates db->magic while another thread is inside a query; the post-query assert fires (an RWR atomicity violation). *)

(** The IR re-creation of the buggy program. *)
val program : Ir.Types.program

(** The Bugbase descriptor (workloads, ideal sketch, target failure). *)
val bug : Common.t
