(* Curl bug #965 (paper Fig. 7): a sequential, input-dependent bug.
   Passing a URL with unbalanced curly braces ("{}{") makes the URL
   glob parser take its error path, which leaves urls->current NULL;
   next_url() then calls strlen(urls->current) and segfaults.

   The fix chosen by the developers: reject unbalanced braces in the
   input (paper §5.1).

   urls object layout: [0] current (string), [1] remaining count,
   [2] glob pattern (string). *)

open Ir.Types
module B = Ir.Builder

let file = "curl.c"
let i = B.file file
let r = B.r
let im = B.im

(* Count occurrences of character [ch] (given as its code) in [s]. *)
let count_char =
  B.func "count_char" ~params:[ "s"; "ch" ]
    [
      B.block "entry"
        [
          i 50 "int n = 0;" (Assign ("n", Mov (im 0)));
          i 51 "int len = strlen(s);" (Builtin (Some "len", "strlen", [ r "s" ]));
          i 52 "for (int k = 0; k < len; k++)" (Assign ("k", Mov (im 0)));
          i 52 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 52 "for (int k = 0; k < len; k++)"
            (Assign ("more", B.( <% ) (r "k") (r "len")));
          i 52 "" (Branch (r "more", "body", "done"));
        ];
      B.block "body"
        [
          i 53 "if (s[k] == ch) n++;"
            (Builtin (Some "c", "str_char", [ r "s"; r "k" ]));
          i 53 "if (s[k] == ch) n++;" (Assign ("hit", B.( =% ) (r "c") (r "ch")));
          i 53 "if (s[k] == ch) n++;" (Branch (r "hit", "incr", "next"));
        ];
      B.block "incr"
        [
          i 53 "if (s[k] == ch) n++;" (Assign ("n", B.( +% ) (r "n") (im 1)));
          i 53 "" (Jmp "next");
        ];
      B.block "next"
        [
          i 52 "k++;" (Assign ("k", B.( +% ) (r "k") (im 1)));
          i 52 "" (Jmp "loop");
        ];
      B.block "done" [ i 54 "return n;" (Ret (Some (r "n"))) ];
    ]

(* Distractor: scheme validation, part of any real URL handling. *)
let parse_scheme =
  B.func "parse_scheme" ~params:[ "s" ]
    [
      B.block "entry"
        [
          i 60 "char c0 = s[0];" (Builtin (Some "c0", "str_char", [ r "s"; im 0 ]));
          i 61 "bool is_http = c0 == 'h';"
            (Assign ("is_http", B.( =% ) (r "c0") (im 104)));
          i 62 "return is_http ? HTTP : FILE;"
            (Branch (r "is_http", "http", "other"));
        ];
      B.block "http" [ i 62 "" (Ret (Some (im 1))) ];
      B.block "other" [ i 63 "" (Ret (Some (im 0))) ];
    ]

let glob_url =
  B.func "glob_url" ~params:[ "url" ]
    [
      B.block "entry"
        [
          i 10 "urls* g = malloc(sizeof(urls));" (Malloc ("g", 3));
          i 11 "g->pattern = url;" (Store (r "g", 2, r "url"));
          i 12 "int opens = count_char(url, '{');"
            (Call (Some "opens", "count_char", [ r "url"; im 123 ]));
          i 13 "int closes = count_char(url, '}');"
            (Call (Some "closes", "count_char", [ r "url"; im 125 ]));
          i 14 "if (opens != closes) {"
            (Assign ("unbal", B.( <>% ) (r "opens") (r "closes")));
          i 14 "if (opens != closes) {" (Branch (r "unbal", "bad", "ok"));
        ];
      B.block "bad"
        [
          (* The bug: the error path fails to initialise g->current. *)
          i 15 "glob_error(g); /* leaves g->current NULL */"
            (Store (r "g", 0, Null));
          i 16 "g->remaining = 0;" (Store (r "g", 1, im 0));
          i 16 "" (Jmp "out");
        ];
      B.block "ok"
        [
          i 18 "g->current = strdup(url);" (Store (r "g", 0, r "url"));
          i 19 "g->remaining = opens + 1;"
            (Assign ("rem", B.( +% ) (r "opens") (im 1)));
          i 19 "g->remaining = opens + 1;" (Store (r "g", 1, r "rem"));
          i 19 "" (Jmp "out");
        ];
      B.block "out" [ i 20 "return g;" (Ret (Some (r "g"))) ];
    ]

let next_url =
  B.func "next_url" ~params:[ "urls" ]
    [
      B.block "entry"
        [
          i 30 "char* cur = urls->current;" (Load ("cur", r "urls", 0));
          i 31 "len = strlen(urls->current);   /* segfault */"
            (Builtin (Some "len", "strlen", [ r "cur" ]));
          i 32 "urls->remaining--;" (Load ("rm", r "urls", 1));
          i 32 "urls->remaining--;" (Assign ("rm1", B.( -% ) (r "rm") (im 1)));
          i 32 "urls->remaining--;" (Store (r "urls", 1, r "rm1"));
          i 33 "return urls->remaining >= 0 ? cur : NULL;"
            (Assign ("ok", B.( >=% ) (r "rm1") (im 0)));
          i 33 "return urls->remaining >= 0 ? cur : NULL;"
            (Branch (r "ok", "some", "none"));
        ];
      B.block "some" [ i 33 "" (Ret (Some (r "cur"))) ];
      B.block "none" [ i 34 "" (Ret (Some Null)) ];
    ]

let transfer =
  B.func "transfer" ~params:[ "u" ]
    [
      B.block "entry"
        [
          i 70 "int scheme = parse_scheme(u);"
            (Call (Some "scheme", "parse_scheme", [ r "u" ]));
          i 71 "int len = strlen(u);" (Builtin (Some "len", "strlen", [ r "u" ]));
          i 72 "simulate_io(len);" (Assign ("k", Mov (im 0)));
          i 72 "" (Jmp "io");
        ];
      B.block "io"
        [
          i 72 "simulate_io(len);" (Assign ("busy", B.( <% ) (r "k") (im 150)));
          i 72 "" (Branch (r "busy", "io_body", "done"));
        ];
      B.block "io_body"
        [
          i 73 "checksum += buf[k];" (Assign ("x", B.( *% ) (r "k") (im 7)));
          i 73 "checksum += buf[k];" (Assign ("k", B.( +% ) (r "k") (im 1)));
          i 73 "" (Jmp "io");
        ];
      B.block "done" [ i 74 "return 0;" (Ret (Some (im 0))) ];
    ]

let operate =
  B.func "operate" ~params:[ "url" ]
    [
      B.block "entry"
        [
          i 22 "urls* urls = glob_url(url);"
            (Call (Some "urls", "glob_url", [ r "url" ]));
          i 23 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 24 "for (i = 0; (url = next_url(urls)); i++) {"
            (Call (Some "u", "next_url", [ r "urls" ]));
          i 24 "for (i = 0; (url = next_url(urls)); i++) {"
            (Assign ("go", B.( <>% ) (r "u") Null));
          i 24 "" (Branch (r "go", "body", "out"));
        ];
      B.block "body"
        [
          i 25 "transfer(url);" (Call (Some "tr", "transfer", [ r "u" ]));
          i 25 "" (Jmp "loop");
        ];
      B.block "out" [ i 26 "return 0;" (Ret (Some (im 0))) ];
    ]

let main =
  B.func "main" ~params:[ "argv1" ]
    [
      B.block "entry"
        [
          i 40 "return operate(argv[1]);"
            (Call (Some "rc", "operate", [ r "argv1" ]));
          i 40 "return operate(argv[1]);" (Ret (Some (r "rc")));
        ];
    ]

let program =
  Ir.Program.make ~main:"main"
    [ count_char; parse_scheme; glob_url; next_url; transfer; operate; main ]

let inputs =
  [|
    "http://example.com/files.txt";
    "http://example.com/{a,b,c}.txt";
    "http://mirror.net/pkg-3.1.tar.gz";
    "{}{";  (* the failing input of bug #965 *)
    "http://example.com/img{1,2}.png";
    "http://host/a";
    "http://host/{x,y}{1,2}";
    "http://files.org/data.bin";
  |]

let bug : Common.t =
  {
    name = "Curl";
    software = "Curl";
    version = "7.21";
    bug_id = "965";
    description =
      "URL globs with unbalanced braces take the parser's error path, \
       which leaves urls->current NULL; next_url() then calls \
       strlen(NULL).";
    failure_type = "Sequential bug, data-related";
    bug_class = Common.Sequential;
    program;
    source_file = file;
    workload_of =
      (fun c ->
        Exec.Interp.workload
          ~args:[ Exec.Value.VStr inputs.(c mod Array.length inputs) ]
          (Common.seed_of_client c));
    ideal_lines = [ 20; 24; 30; 31 ];
    root_lines = [ 24; 30; 31 ];
    target_kind_tag = "segfault";
    target_line = 31;
    claimed_loc = 81_658;
    preempt_prob = 0.2;
  }
