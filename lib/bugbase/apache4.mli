(** Apache bug #21285 ("Apache-4", httpd 2.0.46): the cleanup thread destroys the request pool between a worker's liveness check and its allocation (use after free). *)

(** The IR re-creation of the buggy program. *)
val program : Ir.Types.program

(** The Bugbase descriptor (workloads, ideal sketch, target failure). *)
val bug : Common.t
