(* The bug descriptor shared by all Bugbase entries (the paper's own
   Bugbase framework reproduces the 11 bugs of Table 1; this module is
   its equivalent).  Each bug re-creates the *mechanism* of the real
   bug -- same bug class, same root-cause-to-failure structure, same
   fix locus -- in the repo's IR. *)

open Ir.Types

type bug_class = Concurrency | Sequential

type t = {
  name : string;         (* Table 1 row name, e.g. "Apache-3" *)
  software : string;     (* e.g. "Apache httpd" *)
  version : string;
  bug_id : string;       (* official bug-database id *)
  description : string;
  failure_type : string; (* sketch header, e.g. "Concurrency bug, double free" *)
  bug_class : bug_class;
  program : program;
  source_file : string;
  (* Production workloads: client [c] runs this workload.  A mix of
     failing and successful runs must be reachable. *)
  workload_of : int -> Exec.Interp.workload;
  (* The ideal failure sketch, as ordered source lines (computed by
     hand, as in the paper's §5.2 methodology): every statement with a
     data or control dependency to the failure, in failing-run order. *)
  ideal_lines : int list;
  (* The root-cause core: the few statements a developer must see to
     fix the bug.  Drives the stop-AsT oracle; a strict subset of
     [ideal_lines]. *)
  root_lines : int list;
  (* The failure this Table 1 row is about: racy programs can fail in
     several ways; Gist diagnoses the one the developer reported. *)
  target_kind_tag : string; (* Exec.Failure.kind_tag of the target *)
  target_line : int;        (* source line where it manifests *)
  claimed_loc : int;     (* software size from Table 1, for reporting *)
  preempt_prob : float;
}

(* All instructions on a given source line, in program order. *)
let iids_at_line (p : program) ~file ~line =
  Ir.Program.all_instrs p
  |> List.filter (fun i -> i.loc.file = file && i.loc.line = line)
  |> List.map (fun i -> i.iid)

(* The ideal sketch as ordered iids: the instructions on the ideal
   source lines *that actually execute* in a canonical failing run
   (a line's trailing IR instructions may be cut short by the failure
   itself, e.g. the rest of a call-bearing line after the callee
   crashed).  Memoised per bug. *)

let ideal_memo : (string, Fsketch.Accuracy.ideal) Hashtbl.t = Hashtbl.create 8

(* Both memo tables are read and written from pool workers when
   experiments fan per-bug diagnoses across domains.  A racing pair of
   workers may compute the same entry twice -- the value is a
   deterministic function of the bug, so last-write-wins is benign --
   but the Hashtbl mutation itself must be exclusive. *)
let memo_lock = Mutex.create ()

let memo_find tbl key =
  Mutex.lock memo_lock;
  let r = Hashtbl.find_opt tbl key in
  Mutex.unlock memo_lock;
  r

let memo_store tbl key v =
  Mutex.lock memo_lock;
  Hashtbl.replace tbl key v;
  Mutex.unlock memo_lock

let is_target_failure_rep (bug : t) (rep : Exec.Failure.report) =
  Exec.Failure.kind_tag rep.kind = bug.target_kind_tag
  && (Ir.Program.loc_of bug.program rep.pc).line = bug.target_line

let executed_memo : (string, int list) Hashtbl.t = Hashtbl.create 8

(* The instruction set of a canonical target-failing run (memoised). *)
let canonical_failing_executed (bug : t) =
  match memo_find executed_memo bug.name with
  | Some e -> e
  | None ->
    let rec find c =
      if c >= 5000 then None
      else
        let r =
          Exec.Interp.run ~record_gt:true ~preempt_prob:bug.preempt_prob
            bug.program (bug.workload_of c)
        in
        match r.outcome with
        | Exec.Interp.Failed rep when is_target_failure_rep bug rep -> Some r
        | _ -> find (c + 1)
    in
    let executed =
      match find 0 with
      | Some r -> List.map snd r.executed |> List.sort_uniq compare
      | None -> []
    in
    memo_store executed_memo bug.name executed;
    executed

(* Ordered iids for a list of source lines, restricted to instructions
   that execute in a canonical failing run. *)
let iids_for_lines (bug : t) lines =
  let executed = canonical_failing_executed bug in
  List.concat_map
    (fun line ->
      iids_at_line bug.program ~file:bug.source_file ~line
      |> List.filter (fun iid -> executed = [] || List.mem iid executed))
    lines

let ideal (bug : t) : Fsketch.Accuracy.ideal =
  match memo_find ideal_memo bug.name with
  | Some i -> i
  | None ->
    let ideal = Fsketch.Accuracy.{ i_iids = iids_for_lines bug bug.ideal_lines } in
    memo_store ideal_memo bug.name ideal;
    ideal

let root_cause_iids (bug : t) = iids_for_lines bug bug.root_lines

(* Deterministic workload seed derivation: spreads client indexes
   across seeds without clustering. *)
let seed_of_client c = (c * 2654435761) land 0x3FFFFFFF

(* Find a failing seed quickly (used by tests and examples). *)
let find_failing_run ?(max_runs = 1000) ?(max_steps = 400_000) (bug : t) =
  let rec go c =
    if c >= max_runs then None
    else
      let r =
        Exec.Interp.run ~max_steps ~preempt_prob:bug.preempt_prob bug.program
          (bug.workload_of c)
      in
      match r.outcome with
      | Exec.Interp.Failed rep -> Some (c, rep)
      | Exec.Interp.Success -> go (c + 1)
  in
  go 0

(* Does a report match the Table 1 failure this bug models? *)
let is_target_failure (bug : t) (rep : Exec.Failure.report) =
  Exec.Failure.kind_tag rep.kind = bug.target_kind_tag
  && (Ir.Program.loc_of bug.program rep.pc).line = bug.target_line

(* The production failure report that triggers the diagnosis: the first
   occurrence of the *target* failure across production clients. *)
let find_target_failure ?(max_runs = 5000) ?(max_steps = 400_000) (bug : t) =
  let rec go c =
    if c >= max_runs then None
    else
      let r =
        Exec.Interp.run ~max_steps ~preempt_prob:bug.preempt_prob bug.program
          (bug.workload_of c)
      in
      match r.outcome with
      | Exec.Interp.Failed rep when is_target_failure bug rep -> Some (c, rep)
      | _ -> go (c + 1)
  in
  go 0
