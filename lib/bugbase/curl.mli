(** Curl bug #965 (paper Fig. 7): URL globs with unbalanced braces leave urls->current NULL on the parser's error path; next_url() calls strlen(NULL). *)

(** The IR re-creation of the buggy program. *)
val program : Ir.Types.program

(** The production input mix; one entry is the failing input. *)
val inputs : string array

(** The Bugbase descriptor (workloads, ideal sketch, target failure). *)
val bug : Common.t
