(* Pbzip2 bug #1 (paper Fig. 1): the main thread frees the queue's
   mutex and NULLs the field while the consumer thread is exiting its
   processing loop; the consumer's final release then re-reads f->mut
   and calls mutex_unlock(NULL) -- a segmentation fault.

   Queue layout: [0] head item, [1] mut, [2] count, [3] done.

   Failure modes reachable (schedule-dependent), as in the real bug:
   - segfault at the final mutex_unlock (line 51): the Table 1 target;
   - use-after-free at the same unlock (free landed, NULL not yet);
   - segfault / use-after-free at the loop-head lock (the consumer
     missed the done flag and iterated once more). *)

open Ir.Types
module B = Ir.Builder

let file = "pbzip2.c"
let i = B.file file
let r = B.r
let im = B.im

(* CPU-bound work: compressing one block.  Keeps the production runs
   realistic so fixed tracing costs (arming, toggling) amortise as they
   do on real workloads. *)
let compress =
  B.func "compress" ~params:[ "block" ]
    [
      B.block "entry"
        [
          i 60 "unsigned h = block * 2654435761u;"
            (Assign ("h", B.( *% ) (r "block") (im 2654435761)));
          i 61 "for (int k = 0; k < ROUNDS; k++) {"
            (Assign ("k", Mov (im 0)));
          i 61 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 61 "for (int k = 0; k < ROUNDS; k++) {"
            (Assign ("more", B.( <% ) (r "k") (im 120)));
          i 61 "" (Branch (r "more", "body", "done"));
        ];
      B.block "body"
        [
          i 62 "h = h * 31 + k;" (Assign ("h1", B.( *% ) (r "h") (im 31)));
          i 62 "h = h * 31 + k;" (Assign ("h", B.( +% ) (r "h1") (r "k")));
          i 63 "h ^= h >> 7;" (Assign ("h", B.( +% ) (r "h") (im 13)));
          i 64 "}" (Assign ("k", B.( +% ) (r "k") (im 1)));
          i 64 "" (Jmp "loop");
        ];
      B.block "done" [ i 65 "return h;" (Ret (Some (r "h"))) ];
    ]

let queue_init =
  B.func "queue_init" ~params:[ "size" ]
    [
      B.block "entry"
        [
          i 10 "queue* f = malloc(sizeof(queue));" (Malloc ("f", 4));
          i 11 "f->mut = mutex_init();" (Malloc ("m", 1));
          i 11 "f->mut = mutex_init();" (Store (r "f", 1, r "m"));
          i 12 "f->count = 0;" (Store (r "f", 2, im 0));
          i 13 "f->done = 0;" (Store (r "f", 3, im 0));
          i 14 "f->head = 0;" (Store (r "f", 0, im 0));
          i 15 "return f;" (Ret (Some (r "f")));
        ];
    ]

let cons =
  B.func "cons" ~params:[ "f" ]
    [
      B.block "loop"
        [
          i 42 "mutex* m = f->mut;" (Load ("m", r "f", 1));
          i 43 "mutex_lock(m);" (Lock (r "m"));
          i 44 "int c = f->count;" (Load ("c", r "f", 2));
          i 45 "if (c > 0) {" (Assign ("cgt", B.( >% ) (r "c") (im 0)));
          i 45 "if (c > 0) {" (Branch (r "cgt", "consume", "check"));
        ];
      B.block "consume"
        [
          i 46 "item = f->head;" (Load ("v", r "f", 0));
          i 47 "compress(item);" (Call (Some "w", "compress", [ r "v" ]));
          i 48 "f->count = c - 1;" (Assign ("cm1", B.( -% ) (r "c") (im 1)));
          i 48 "f->count = c - 1;" (Store (r "f", 2, r "cm1"));
          i 48 "}" (Jmp "check");
        ];
      B.block "check"
        [
          i 49 "done = f->done; left = f->count; mutex_unlock(m);"
            (Load ("d", r "f", 3));
          i 49 "done = f->done; left = f->count; mutex_unlock(m);"
            (Load ("c3", r "f", 2));
          i 49 "done = f->done; left = f->count; mutex_unlock(m);"
            (Unlock (r "m"));
          i 52 "if (done && left == 0) break;"
            (Assign ("z", B.( <=% ) (r "c3") (im 0)));
          i 52 "if (done && left == 0) break;"
            (Assign ("fin", B.( &&% ) (r "d") (r "z")));
          i 52 "if (done && left == 0) break;"
            (Branch (r "fin", "exit", "loop"));
        ];
      B.block "exit"
        [
          i 50 "mutex* m2 = f->mut;" (Load ("m2", r "f", 1));
          i 51 "mutex_unlock(m2);  /* final release */" (Unlock (r "m2"));
          i 53 "return 0;" (Ret (Some (im 0)));
        ];
    ]

let main =
  B.func "main" ~params:[ "n" ]
    [
      B.block "entry"
        [
          i 20 "queue* f = queue_init(size);"
            (Call (Some "f", "queue_init", [ r "n" ]));
          i 21 "create_thread(cons, f);" (Spawn ("t", "cons", [ r "f" ]));
          i 22 "mutex* pm = f->mut;" (Load ("pm", r "f", 1));
          i 23 "int i = 0;" (Assign ("i", Mov (im 0)));
          i 23 "" (Jmp "produce");
        ];
      B.block "produce"
        [
          i 24 "for (; i < n; i++) {" (Assign ("more", B.( <% ) (r "i") (r "n")));
          i 24 "for (; i < n; i++) {" (Branch (r "more", "produce_body", "drain"));
        ];
      B.block "produce_body"
        [
          i 25 "mutex_lock(pm);" (Lock (r "pm"));
          i 26 "f->head = read_block(i);" (Call (Some "blk", "compress", [ r "i" ]));
          i 26 "f->head = read_block(i);" (Store (r "f", 0, r "blk"));
          i 27 "f->count++;" (Load ("pc", r "f", 2));
          i 27 "f->count++;" (Assign ("pc1", B.( +% ) (r "pc") (im 1)));
          i 27 "f->count++;" (Store (r "f", 2, r "pc1"));
          i 28 "mutex_unlock(pm);" (Unlock (r "pm"));
          i 29 "}" (Assign ("i", B.( +% ) (r "i") (im 1)));
          i 29 "" (Jmp "produce");
        ];
      B.block "drain"
        [
          i 31 "while (f->count > 0) sched_yield();" (Load ("c2", r "f", 2));
          i 31 "while (f->count > 0) sched_yield();" (Builtin (None, "yield", []));
          i 31 "while (f->count > 0) sched_yield();"
            (Assign ("busy", B.( >% ) (r "c2") (im 0)));
          i 31 "while (f->count > 0) sched_yield();"
            (Branch (r "busy", "drain", "finish"));
        ];
      B.block "finish"
        [
          i 33 "f->done = 1;" (Store (r "f", 3, im 1));
          i 34 "flush_output();" (Assign ("k2", Mov (im 0)));
          i 34 "" (Jmp "flush");
        ];
      B.block "flush"
        [
          i 34 "flush_output();" (Builtin (None, "yield", []));
          i 34 "flush_output();" (Assign ("k2", B.( +% ) (r "k2") (im 1)));
          i 34 "flush_output();" (Assign ("kcond", B.( <% ) (r "k2") (im 2)));
          i 34 "flush_output();" (Branch (r "kcond", "flush", "teardown"));
        ];
      B.block "teardown"
        [
          i 35 "free(f->mut);" (Load ("mf", r "f", 1));
          i 35 "free(f->mut);" (Free (r "mf"));
          i 36 "f->mut = NULL;" (Store (r "f", 1, Null));
          i 37 "join(t);" (Join (r "t"));
          i 38 "return 0;" (Ret (Some (im 0)));
        ];
    ]

let program =
  Ir.Program.make ~main:"main" [ compress; queue_init; cons; main ]

(* The target failure: segfault at the final unlock, line 51. *)
let bug : Common.t =
  {
    name = "Pbzip2";
    software = "Pbzip2";
    version = "0.9.4";
    bug_id = "pbzip2-1";
    description =
      "main frees f->mut and sets it to NULL while the consumer thread is \
       exiting its loop; the consumer's final release calls \
       mutex_unlock(NULL).";
    failure_type = "Concurrency bug, segmentation fault";
    bug_class = Common.Concurrency;
    program;
    source_file = file;
    workload_of =
      (fun c ->
        Exec.Interp.workload
          ~args:[ Exec.Value.VInt (2 + (c mod 3)) ]
          (Common.seed_of_client c));
    ideal_lines = [ 20; 21; 35; 36; 50; 51 ];
    root_lines = [ 21; 35; 36; 50; 51 ];
    target_kind_tag = "segfault";
    target_line = 51;
    claimed_loc = 1_492;
    preempt_prob = 0.22;
  }
