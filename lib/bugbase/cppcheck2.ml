(* Cppcheck bug #2782 (v1.48): the constant-folding pass evaluates
   "<num> / <num>" token triples with the host division; analysing
   source that contains a literal division by zero crashes the checker
   itself.

   Token node layout: [0] numeric value, [1] next, [2] kind.
   Kinds: 0 other, 3 number, 5 divide. *)

open Ir.Types
module B = Ir.Builder

let file = "cppcheck2.cpp"
let i = B.file file
let r = B.r
let im = B.im

let tokenize =
  B.func "tokenize" ~params:[ "src" ]
    [
      B.block "entry"
        [
          i 10 "Token* head = new Token(END);" (Malloc ("head", 3));
          i 10 "Token* head = new Token(END);" (Store (r "head", 2, im 0));
          i 10 "Token* head = new Token(END);" (Store (r "head", 1, Null));
          i 11 "Token* tail = head;" (Assign ("tail", Mov (r "head")));
          i 12 "int len = strlen(src);" (Builtin (Some "len", "strlen", [ r "src" ]));
          i 13 "for (int k = 0; k < len; k++) {" (Assign ("k", Mov (im 0)));
          i 13 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 13 "for (int k = 0; k < len; k++) {"
            (Assign ("more", B.( <% ) (r "k") (r "len")));
          i 13 "" (Branch (r "more", "body", "done"));
        ];
      B.block "body"
        [
          i 14 "char c = src[k];" (Builtin (Some "c", "str_char", [ r "src"; r "k" ]));
          i 15 "if (isdigit(c)) {" (Assign ("ge0", B.( >=% ) (r "c") (im 48)));
          i 15 "if (isdigit(c)) {" (Assign ("le9", B.( <=% ) (r "c") (im 57)));
          i 15 "if (isdigit(c)) {" (Assign ("isd", B.( &&% ) (r "ge0") (r "le9")));
          i 15 "if (isdigit(c)) {" (Branch (r "isd", "num", "notnum"));
        ];
      B.block "num"
        [
          i 16 "kind = K_NUM; val = c - '0';" (Assign ("kind", Mov (im 3)));
          i 16 "kind = K_NUM; val = c - '0';"
            (Assign ("value", B.( -% ) (r "c") (im 48)));
          i 16 "" (Jmp "append");
        ];
      B.block "notnum"
        [
          i 17 "kind = (c == '/') ? K_DIV : K_OTHER;"
            (Assign ("isdiv", B.( =% ) (r "c") (im 47)));
          i 17 "kind = (c == '/') ? K_DIV : K_OTHER;"
            (Branch (r "isdiv", "divk", "otherk"));
        ];
      B.block "divk"
        [
          i 17 "" (Assign ("kind", Mov (im 5)));
          i 17 "" (Assign ("value", Mov (im 0)));
          i 17 "" (Jmp "append");
        ];
      B.block "otherk"
        [
          i 18 "" (Assign ("kind", Mov (im 0)));
          i 18 "" (Assign ("value", Mov (im 0)));
          i 18 "" (Jmp "append");
        ];
      B.block "append"
        [
          i 19 "Token* tok = new Token(c, kind);" (Malloc ("tok", 3));
          i 19 "Token* tok = new Token(c, kind);" (Store (r "tok", 0, r "value"));
          i 19 "Token* tok = new Token(c, kind);" (Store (r "tok", 2, r "kind"));
          i 19 "Token* tok = new Token(c, kind);" (Store (r "tok", 1, Null));
          i 20 "tail->next = tok; tail = tok;" (Store (r "tail", 1, r "tok"));
          i 20 "tail->next = tok; tail = tok;" (Assign ("tail", Mov (r "tok")));
          i 21 "}" (Assign ("k", B.( +% ) (r "k") (im 1)));
          i 21 "" (Jmp "loop");
        ];
      B.block "done" [ i 22 "return head;" (Ret (Some (r "head"))) ];
    ]

let simplify_calculations =
  B.func "simplify_calculations" ~params:[ "head" ]
    [
      B.block "entry"
        [
          i 30 "for (Token* tok = head; tok; tok = tok->next) {"
            (Assign ("tok", Mov (r "head")));
          i 30 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 30 "for (Token* tok = head; tok; tok = tok->next) {"
            (Assign ("go", B.( <>% ) (r "tok") Null));
          i 30 "" (Branch (r "go", "body", "done"));
        ];
      B.block "body"
        [
          i 31 "if (tok->kind == K_NUM && tok->next && ...) {"
            (Load ("kd", r "tok", 2));
          i 31 "if (tok->kind == K_NUM && tok->next && ...) {"
            (Assign ("isnum", B.( =% ) (r "kd") (im 3)));
          i 31 "if (tok->kind == K_NUM && tok->next && ...) {"
            (Branch (r "isnum", "try_op", "next"));
        ];
      B.block "try_op"
        [
          i 32 "Token* op = tok->next;" (Load ("op", r "tok", 1));
          i 32 "if (!op) break;" (Assign ("hasop", B.( <>% ) (r "op") Null));
          i 32 "if (!op) break;" (Branch (r "hasop", "chk_op", "done"));
        ];
      B.block "chk_op"
        [
          i 33 "if (op->kind == K_DIV) {" (Load ("opk", r "op", 2));
          i 33 "if (op->kind == K_DIV) {"
            (Assign ("isdiv", B.( =% ) (r "opk") (im 5)));
          i 33 "if (op->kind == K_DIV) {" (Branch (r "isdiv", "rhs", "next"));
        ];
      B.block "rhs"
        [
          i 34 "Token* b = op->next;" (Load ("btok", r "op", 1));
          i 34 "if (!b) break;" (Assign ("hasb", B.( <>% ) (r "btok") Null));
          i 34 "if (!b) break;" (Branch (r "hasb", "chk_b", "done"));
        ];
      B.block "chk_b"
        [
          i 35 "if (b->kind == K_NUM) {" (Load ("bk", r "btok", 2));
          i 35 "if (b->kind == K_NUM) {" (Assign ("bnum", B.( =% ) (r "bk") (im 3)));
          i 35 "if (b->kind == K_NUM) {" (Branch (r "bnum", "fold", "next"));
        ];
      B.block "fold"
        [
          i 36 "int va = tok->value;" (Load ("va", r "tok", 0));
          i 37 "int vb = b->value;" (Load ("vb", r "btok", 0));
          i 38 "tok->value = va / vb;   /* crash: division by zero */"
            (Assign ("folded", B.( /% ) (r "va") (r "vb")));
          i 38 "tok->value = va / vb;   /* crash: division by zero */"
            (Store (r "tok", 0, r "folded"));
          i 39 "tok->next = b->next;" (Load ("bn", r "btok", 1));
          i 39 "tok->next = b->next;" (Store (r "tok", 1, r "bn"));
          i 39 "" (Jmp "next");
        ];
      B.block "next"
        [
          i 40 "}" (Load ("tok", r "tok", 1));
          i 40 "" (Jmp "loop");
        ];
      B.block "done" [ i 41 "return;" (Ret (Some (im 0))) ];
    ]

let main =
  B.func "main" ~params:[ "src" ]
    [
      B.block "entry"
        [
          i 50 "Token* head = tokenize(src);"
            (Call (Some "head", "tokenize", [ r "src" ]));
          i 51 "simplify_calculations(head);"
            (Call (None, "simplify_calculations", [ r "head" ]));
          i 52 "return 0;" (Ret (Some (im 0)));
        ];
    ]

let program =
  Ir.Program.make ~main:"main" [ tokenize; simplify_calculations; main ]

(* Realistic multi-statement source files (the checker's unit of work). *)
let sample body = String.concat " " (List.init 8 (fun _ -> body))

let inputs =
  [|
    sample "x = 8/2;";
    sample "int y = a/b;";
    sample "z = 9/3 + 1;";
    sample "p = q + r;" ^ " w = 1/0;";  (* failing: constant division by zero *)
    sample "p = q + r;";
    sample "k = 6/2/3;";
    sample "m = 5 / n;";
    sample "s = 4/4;";
    sample "t = (a);";
  |]

let bug : Common.t =
  {
    name = "Cppcheck-2";
    software = "Cppcheck";
    version = "1.48";
    bug_id = "2782";
    description =
      "Constant folding evaluates '<num>/<num>' with host division; \
       analysing source containing a literal division by zero crashes \
       the checker itself.";
    failure_type = "Sequential bug, arithmetic fault";
    bug_class = Common.Sequential;
    program;
    source_file = file;
    workload_of =
      (fun c ->
        Exec.Interp.workload
          ~args:[ Exec.Value.VStr inputs.(c mod Array.length inputs) ]
          (Common.seed_of_client c));
    ideal_lines = [ 40; 31; 32; 33; 34; 35; 36; 37; 38 ];
    root_lines = [ 33; 35; 37; 38 ];
    target_kind_tag = "div-by-zero";
    target_line = 38;
    claimed_loc = 76_009;
    preempt_prob = 0.2;
  }
