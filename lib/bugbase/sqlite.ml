(* SQLite bug #1672 (v3.3.3): a database handle is closed by one thread
   while another thread is still inside a query.  The query path checks
   db->magic on entry, but the handle can be invalidated between that
   check and the post-query sanity assertion, which then fires.

   db layout: [0] magic (OPEN = 11, CLOSED = 22), [1] inVdbe. *)

open Ir.Types
module B = Ir.Builder

let file = "sqlite.c"
let i = B.file file
let r = B.r
let im = B.im

let magic_open = 11
let magic_closed = 22

let vdbe_exec =
  B.func "vdbe_exec" ~params:[ "prog" ]
    [
      B.block "entry"
        [
          i 90 "" (Assign ("pc", Mov (im 0)));
          i 90 "" (Assign ("acc", Mov (r "prog")));
          i 90 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 91 "while (rc == SQLITE_ROW) step();"
            (Assign ("more", B.( <% ) (r "pc") (im 170)));
          i 91 "" (Branch (r "more", "body", "done"));
        ];
      B.block "body"
        [
          i 92 "" (Assign ("acc", B.( +% ) (r "acc") (r "pc")));
          i 92 "" (Assign ("pc", B.( +% ) (r "pc") (im 1)));
          i 92 "" (Jmp "loop");
        ];
      B.block "done" [ i 93 "return acc;" (Ret (Some (r "acc"))) ];
    ]

let exec_query =
  B.func "exec_query" ~params:[ "db"; "q" ]
    [
      B.block "entry"
        [
          i 30 "if (db->magic != SQLITE_MAGIC_OPEN) return MISUSE;"
            (Load ("m", r "db", 0));
          i 30 "if (db->magic != SQLITE_MAGIC_OPEN) return MISUSE;"
            (Assign ("isopen", B.( =% ) (r "m") (im magic_open)));
          i 30 "if (db->magic != SQLITE_MAGIC_OPEN) return MISUSE;"
            (Branch (r "isopen", "run", "misuse"));
        ];
      B.block "run"
        [
          i 31 "db->inVdbe++;" (Load ("iv", r "db", 1));
          i 31 "db->inVdbe++;" (Assign ("iv1", B.( +% ) (r "iv") (im 1)));
          i 31 "db->inVdbe++;" (Store (r "db", 1, r "iv1"));
          i 32 "rc = sqlite3VdbeExec(q);" (Call (Some "rc", "vdbe_exec", [ r "q" ]));
          i 34 "int m2 = db->magic;" (Load ("m2", r "db", 0));
          i 35 "assert(m2 == SQLITE_MAGIC_OPEN);"
            (Assign ("okp", B.( =% ) (r "m2") (im magic_open)));
          i 35 "assert(m2 == SQLITE_MAGIC_OPEN);"
            (Assert (r "okp", "db closed during query"));
          i 36 "db->inVdbe--;" (Load ("iv2", r "db", 1));
          i 36 "db->inVdbe--;" (Assign ("iv3", B.( -% ) (r "iv2") (im 1)));
          i 36 "db->inVdbe--;" (Store (r "db", 1, r "iv3"));
          i 37 "return rc;" (Ret (Some (r "rc")));
        ];
      B.block "misuse" [ i 38 "return SQLITE_MISUSE;" (Ret (Some (im 21))) ];
    ]

let app_thread =
  B.func "app_thread" ~params:[ "db"; "queries" ]
    [
      B.block "entry"
        [
          i 20 "for (int k = 0; k < queries; k++) {" (Assign ("k", Mov (im 0)));
          i 20 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 20 "for (int k = 0; k < queries; k++) {"
            (Assign ("more", B.( <% ) (r "k") (r "queries")));
          i 20 "" (Branch (r "more", "body", "done"));
        ];
      B.block "body"
        [
          i 21 "exec_query(db, stmts[k]);"
            (Call (Some "rc", "exec_query", [ r "db"; r "k" ]));
          i 22 "}" (Assign ("k", B.( +% ) (r "k") (im 1)));
          i 22 "" (Jmp "loop");
        ];
      B.block "done" [ i 23 "return 0;" (Ret (Some (im 0))) ];
    ]

let closer_thread =
  B.func "closer_thread" ~params:[ "db" ]
    [
      B.block "entry"
        [
          i 50 "wait_for_idle_signal();" (Call (Some "w", "vdbe_exec", [ im 9 ]));
          i 50 "wait_for_idle_signal();" (Call (Some "w2", "vdbe_exec", [ im 9 ]));
          i 50 "wait_for_idle_signal();" (Call (Some "w3", "vdbe_exec", [ im 9 ]));
          i 51 "db->magic = SQLITE_MAGIC_CLOSED;"
            (Store (r "db", 0, im magic_closed));
          i 52 "return 0;" (Ret (Some (im 0)));
        ];
    ]

let main =
  B.func "main" ~params:[ "queries" ]
    [
      B.block "entry"
        [
          i 10 "sqlite3* db = sqlite3_open(path);" (Malloc ("db", 2));
          i 11 "db->magic = SQLITE_MAGIC_OPEN;" (Store (r "db", 0, im magic_open));
          i 12 "db->inVdbe = 0;" (Store (r "db", 1, im 0));
          i 13 "t1 = spawn(app_thread, db, queries);"
            (Spawn ("t1", "app_thread", [ r "db"; r "queries" ]));
          i 14 "t2 = spawn(closer_thread, db);"
            (Spawn ("t2", "closer_thread", [ r "db" ]));
          i 15 "join(t1); join(t2);" (Join (r "t1"));
          i 15 "join(t1); join(t2);" (Join (r "t2"));
          i 16 "return 0;" (Ret (Some (im 0)));
        ];
    ]

let program =
  Ir.Program.make ~main:"main"
    [ vdbe_exec; exec_query; app_thread; closer_thread; main ]

let bug : Common.t =
  {
    name = "SQLite";
    software = "SQLite";
    version = "3.3.3";
    bug_id = "1672";
    description =
      "sqlite3_close invalidates db->magic while another thread is \
       inside a query: the entry check passed, the post-query \
       assert(db->magic == SQLITE_MAGIC_OPEN) fires (an RWR atomicity \
       violation on db->magic).";
    failure_type = "Concurrency bug, assertion failure";
    bug_class = Common.Concurrency;
    program;
    source_file = file;
    workload_of =
      (fun c ->
        Exec.Interp.workload
          ~args:[ Exec.Value.VInt (1 + (c mod 3)) ]
          (Common.seed_of_client c));
    ideal_lines = [ 20; 21; 30; 51; 34; 35 ];
    root_lines = [ 30; 51; 34; 35 ];
    target_kind_tag = "assert";
    target_line = 35;
    claimed_loc = 47_150;
    preempt_prob = 0.3;
  }
