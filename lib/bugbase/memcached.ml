(* Memcached bug #127 (v1.4.4): item reference counts are updated with
   plain read-modify-write from multiple worker threads.  A lost
   increment makes the matching decrements drive the count below zero,
   and the release path's assert(it->refcount >= 0) fires.

   item layout: [0] refcount, [1] value. *)

open Ir.Types
module B = Ir.Builder

let file = "memcached.c"
let i = B.file file
let r = B.r
let im = B.im

let serve_get =
  B.func "serve_get" ~params:[ "v" ]
    [
      B.block "entry"
        [
          i 90 "" (Assign ("acc", Mov (r "v")));
          i 90 "" (Assign ("k", Mov (im 0)));
          i 90 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 91 "write_response(conn, it);"
            (Assign ("more", B.( <% ) (r "k") (im 130)));
          i 91 "" (Branch (r "more", "body", "done"));
        ];
      B.block "body"
        [
          i 92 "" (Assign ("acc", B.( +% ) (r "acc") (im 11)));
          i 92 "" (Assign ("k", B.( +% ) (r "k") (im 1)));
          i 92 "" (Jmp "loop");
        ];
      B.block "done" [ i 93 "return acc;" (Ret (Some (r "acc"))) ];
    ]

let item_get =
  B.func "item_get" ~params:[ "it" ]
    [
      B.block "entry"
        [
          i 40 "it->refcount++;" (Load ("rc", r "it", 0));
          i 40 "it->refcount++;" (Assign ("rc1", B.( +% ) (r "rc") (im 1)));
          i 40 "it->refcount++;" (Store (r "it", 0, r "rc1"));
          i 41 "return it->value;" (Load ("v", r "it", 1));
          i 41 "return it->value;" (Ret (Some (r "v")));
        ];
    ]

let item_release =
  B.func "item_release" ~params:[ "it" ]
    [
      B.block "entry"
        [
          i 44 "it->refcount--;" (Load ("rc", r "it", 0));
          i 44 "it->refcount--;" (Assign ("rc1", B.( -% ) (r "rc") (im 1)));
          i 44 "it->refcount--;" (Store (r "it", 0, r "rc1"));
          i 45 "assert(it->refcount >= 0);" (Load ("rc2", r "it", 0));
          i 45 "assert(it->refcount >= 0);"
            (Assign ("okp", B.( >=% ) (r "rc2") (im 0)));
          i 45 "assert(it->refcount >= 0);"
            (Assert (r "okp", "item refcount went negative"));
          i 46 "return;" (Ret (Some (im 0)));
        ];
    ]

let conn_worker =
  B.func "conn_worker" ~params:[ "it"; "gets" ]
    [
      B.block "entry"
        [
          i 20 "for (int k = 0; k < gets; k++) {" (Assign ("k", Mov (im 0)));
          i 20 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 20 "for (int k = 0; k < gets; k++) {"
            (Assign ("more", B.( <% ) (r "k") (r "gets")));
          i 20 "" (Branch (r "more", "body", "done"));
        ];
      B.block "body"
        [
          i 21 "char* v = item_get(it);" (Call (Some "v", "item_get", [ r "it" ]));
          i 22 "serve_get(v);" (Call (Some "w", "serve_get", [ r "v" ]));
          i 23 "item_release(it);" (Call (None, "item_release", [ r "it" ]));
          i 24 "}" (Assign ("k", B.( +% ) (r "k") (im 1)));
          i 24 "" (Jmp "loop");
        ];
      B.block "done" [ i 25 "return 0;" (Ret (Some (im 0))) ];
    ]

let main =
  B.func "main" ~params:[ "gets" ]
    [
      B.block "entry"
        [
          i 10 "item_t* it = item_alloc(key);" (Malloc ("it", 2));
          i 11 "it->refcount = 0;" (Store (r "it", 0, im 0));
          i 12 "it->value = 42;" (Store (r "it", 1, im 42));
          i 13 "t1 = spawn(conn_worker, it, gets);"
            (Spawn ("t1", "conn_worker", [ r "it"; r "gets" ]));
          i 14 "t2 = spawn(conn_worker, it, gets);"
            (Spawn ("t2", "conn_worker", [ r "it"; r "gets" ]));
          i 15 "join(t1); join(t2);" (Join (r "t1"));
          i 15 "join(t1); join(t2);" (Join (r "t2"));
          i 16 "return 0;" (Ret (Some (im 0)));
        ];
    ]

let program =
  Ir.Program.make ~main:"main"
    [ serve_get; item_get; item_release; conn_worker; main ]

let bug : Common.t =
  {
    name = "Memcached";
    software = "Memcached";
    version = "1.4.4";
    bug_id = "127";
    description =
      "item_get/item_release update it->refcount with plain \
       read-modify-write; a lost increment lets the count go negative \
       and the release-path assertion fires.";
    failure_type = "Concurrency bug, assertion failure";
    bug_class = Common.Concurrency;
    program;
    source_file = file;
    workload_of =
      (fun c ->
        Exec.Interp.workload
          ~args:[ Exec.Value.VInt (2 + (c mod 3)) ]
          (Common.seed_of_client c));
    ideal_lines = [ 20; 40; 44; 45 ];
    root_lines = [ 40; 44; 45 ];
    target_kind_tag = "assert";
    target_line = 45;
    claimed_loc = 8_182;
    preempt_prob = 0.2;
  }
