(* Apache bug #21285 ("Apache-4", httpd 2.0.46): a pool-lifetime race.
   The cleanup thread destroys a sub-pool (frees its backing block and
   NULLs the pointer) while a worker that already passed the liveness
   check is still allocating from it.

   pool layout: [0] alive flag, [1] backing block ptr, [2] generation. *)

open Ir.Types
module B = Ir.Builder

let file = "apache4.c"
let i = B.file file
let r = B.r
let im = B.im

let work =
  B.func "work" ~params:[ "x" ]
    [
      B.block "entry"
        [
          i 90 "" (Assign ("acc", Mov (r "x")));
          i 90 "" (Assign ("k", Mov (im 0)));
          i 90 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 91 "process_request_body();"
            (Assign ("more", B.( <% ) (r "k") (im 200)));
          i 91 "" (Branch (r "more", "body", "done"));
        ];
      B.block "body"
        [
          i 92 "" (Assign ("acc", B.( +% ) (r "acc") (im 3)));
          i 92 "" (Assign ("k", B.( +% ) (r "k") (im 1)));
          i 92 "" (Jmp "loop");
        ];
      B.block "done" [ i 93 "return acc;" (Ret (Some (r "acc"))) ];
    ]

let palloc =
  B.func "palloc" ~params:[ "pool" ]
    [
      B.block "entry"
        [
          i 70 "if (pool->alive) {" (Load ("alive", r "pool", 0));
          i 70 "if (pool->alive) {" (Branch (r "alive", "alloc", "dead"));
        ];
      B.block "alloc"
        [
          i 71 "block_t* b = pool->block;" (Load ("b", r "pool", 1));
          i 72 "int sz = b->size;       /* crash */" (Load ("sz", r "b", 0));
          i 73 "b->size = sz + 16;" (Assign ("sz1", B.( +% ) (r "sz") (im 16)));
          i 73 "b->size = sz + 16;" (Store (r "b", 0, r "sz1"));
          i 74 "return b;" (Ret (Some (r "b")));
        ];
      B.block "dead" [ i 75 "return NULL;" (Ret (Some Null)) ];
    ]

let request_thread =
  B.func "request_thread" ~params:[ "pool"; "reqs" ]
    [
      B.block "entry"
        [
          i 60 "for (int k = 0; k < reqs; k++) {" (Assign ("k", Mov (im 0)));
          i 60 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 60 "for (int k = 0; k < reqs; k++) {"
            (Assign ("more", B.( <% ) (r "k") (r "reqs")));
          i 60 "" (Branch (r "more", "body", "done"));
        ];
      B.block "body"
        [
          i 61 "block_t* b = palloc(pool);" (Call (Some "b", "palloc", [ r "pool" ]));
          i 62 "if (!b) break;" (Assign ("got", B.( <>% ) (r "b") Null));
          i 62 "if (!b) break;" (Branch (r "got", "use", "done"));
        ];
      B.block "use"
        [
          i 63 "serve(b);" (Call (Some "w", "work", [ r "k" ]));
          i 64 "}" (Assign ("k", B.( +% ) (r "k") (im 1)));
          i 64 "" (Jmp "loop");
        ];
      B.block "done" [ i 65 "return 0;" (Ret (Some (im 0))) ];
    ]

let cleaner_thread =
  B.func "cleaner_thread" ~params:[ "pool" ]
    [
      B.block "entry"
        [
          i 50 "wait_for_graceful_restart();" (Call (Some "w", "work", [ im 5 ]));
          i 51 "pool->alive = 0;" (Store (r "pool", 0, im 0));
          i 53 "free(pool->block);" (Load ("bc", r "pool", 1));
          i 53 "free(pool->block);" (Free (r "bc"));
          i 54 "pool->block = NULL;" (Store (r "pool", 1, Null));
          i 55 "return 0;" (Ret (Some (im 0)));
        ];
    ]

let main =
  B.func "main" ~params:[ "reqs" ]
    [
      B.block "entry"
        [
          i 10 "pool_t* pool = make_pool();" (Malloc ("pool", 3));
          i 11 "pool->block = malloc(BLOCK);" (Malloc ("blk", 2));
          i 11 "pool->block = malloc(BLOCK);" (Store (r "pool", 1, r "blk"));
          i 12 "pool->alive = 1;" (Store (r "pool", 0, im 1));
          i 13 "t1 = spawn(request_thread, pool, reqs);"
            (Spawn ("t1", "request_thread", [ r "pool"; r "reqs" ]));
          i 14 "t2 = spawn(cleaner_thread, pool);"
            (Spawn ("t2", "cleaner_thread", [ r "pool" ]));
          i 15 "join(t1); join(t2);" (Join (r "t1"));
          i 15 "join(t1); join(t2);" (Join (r "t2"));
          i 16 "return 0;" (Ret (Some (im 0)));
        ];
    ]

let program =
  Ir.Program.make ~main:"main"
    [ work; palloc; request_thread; cleaner_thread; main ]

let bug : Common.t =
  {
    name = "Apache-4";
    software = "Apache httpd";
    version = "2.0.46";
    bug_id = "21285";
    description =
      "The cleanup thread destroys the request pool between a worker's \
       liveness check and its allocation: the worker reads the freed \
       backing block (use after free at the size read).";
    failure_type = "Concurrency bug, use after free";
    bug_class = Common.Concurrency;
    program;
    source_file = file;
    workload_of =
      (fun c ->
        Exec.Interp.workload
          ~args:[ Exec.Value.VInt (3 + (c mod 4)) ]
          (Common.seed_of_client c));
    ideal_lines = [ 10; 13; 73; 62; 64; 60; 61; 70; 51; 53; 71; 72 ];
    root_lines = [ 70; 51; 53; 72 ];
    target_kind_tag = "use-after-free";
    target_line = 72;
    claimed_loc = 168_574;
    preempt_prob = 0.3;
  }
