(** Memcached bug #127 (v1.4.4): item refcounts are updated with plain read-modify-write; a lost increment drives the count negative and the release-path assert fires. *)

(** The IR re-creation of the buggy program. *)
val program : Ir.Types.program

(** The Bugbase descriptor (workloads, ideal sketch, target failure). *)
val bug : Common.t
