(* Apache bug #45605 ("Apache-1", httpd 2.2.9): a TOCTOU race in the
   lockless fast path of the worker-MPM connection queue.  Two workers
   can both observe count == 1, both compute idx = count - 1 = 0, and
   both pop slot 0; the second reads the NULL the first one stored and
   crashes dereferencing conn.

   queue layout: [0] count, [1..6] slots. *)

open Ir.Types
module B = Ir.Builder

let file = "apache1.c"
let i = B.file file
let r = B.r
let im = B.im

let handle =
  B.func "handle" ~params:[ "conn" ]
    [
      B.block "entry"
        [
          i 40 "int fd = conn->fd;" (Load ("fd", r "conn", 0));
          i 40 "int len = 400 + fd * 173;" (Assign ("fl", B.( *% ) (r "fd") (im 173)));
          i 40 "int len = 400 + fd * 173;" (Assign ("len", B.( +% ) (r "fl") (im 400)));
          i 41 "int acc = 0;" (Assign ("acc", Mov (im 0)));
          i 41 "" (Assign ("k", Mov (im 0)));
          i 41 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 42 "while (read(fd, buf, SZ) > 0)"
            (Assign ("more", B.( <% ) (r "k") (r "len")));
          i 42 "" (Branch (r "more", "body", "done"));
        ];
      B.block "body"
        [
          i 43 "acc = acc * 31 + buf[0];"
            (Assign ("acc", B.( +% ) (r "acc") (r "fd")));
          i 43 "acc = acc * 31 + buf[0];"
            (Assign ("k", B.( +% ) (r "k") (im 1)));
          i 43 "" (Jmp "loop");
        ];
      B.block "done" [ i 44 "return acc;" (Ret (Some (r "acc"))) ];
    ]

let pop =
  B.func "pop" ~params:[ "q" ]
    [
      B.block "entry"
        [
          i 20 "int c = q->count;" (Load ("c", r "q", 0));
          i 21 "if (c > 0) {" (Assign ("cgt", B.( >% ) (r "c") (im 0)));
          i 21 "if (c > 0) {" (Branch (r "cgt", "take", "empty"));
        ];
      B.block "take"
        [
          i 23 "int idx = c - 1;" (Assign ("idx", B.( -% ) (r "c") (im 1)));
          i 24 "conn_t* conn = q->slots[idx];"
            (Assign ("off", B.( +% ) (r "idx") (im 1)));
          i 24 "conn_t* conn = q->slots[idx];"
            (Assign ("slot", B.( +% ) (r "q") (r "off")));
          i 24 "conn_t* conn = q->slots[idx];" (Load ("conn", r "slot", 0));
          i 25 "q->slots[idx] = NULL;" (Store (r "slot", 0, Null));
          i 26 "ap_log(conn->id);     /* segfault */" (Load ("cid", r "conn", 0));
          i 27 "q->count = idx;" (Store (r "q", 0, r "idx"));
          i 28 "return conn;" (Ret (Some (r "conn")));
        ];
      B.block "empty" [ i 29 "return NULL;" (Ret (Some Null)) ];
    ]

(* slot = q + idx + 1 needs left-assoc adds; precompute. *)

let worker =
  B.func "worker" ~params:[ "q" ]
    [
      B.block "loop"
        [
          i 30 "conn_t* conn = pop(q);" (Call (Some "conn", "pop", [ r "q" ]));
          i 31 "if (!conn) break;" (Assign ("go", B.( <>% ) (r "conn") Null));
          i 31 "if (!conn) break;" (Branch (r "go", "serve", "out"));
        ];
      B.block "serve"
        [
          i 32 "handle(conn);" (Call (Some "h", "handle", [ r "conn" ]));
          i 32 "" (Jmp "loop");
        ];
      B.block "out" [ i 33 "return 0;" (Ret (Some (im 0))) ];
    ]

let main =
  B.func "main" ~params:[ "n" ]
    [
      B.block "entry"
        [
          i 10 "queue_t* q = queue_create();" (Malloc ("q", 7));
          i 11 "q->count = 0;" (Store (r "q", 0, im 0));
          i 12 "int j = 0;" (Assign ("j", Mov (im 0)));
          i 12 "" (Jmp "fill");
        ];
      B.block "fill"
        [
          i 13 "for (; j < n; j++) {" (Assign ("more", B.( <% ) (r "j") (r "n")));
          i 13 "for (; j < n; j++) {" (Branch (r "more", "fill_body", "go"));
        ];
      B.block "fill_body"
        [
          i 14 "conn_t* conn = accept();" (Malloc ("conn", 1));
          i 14 "conn_t* conn = accept();" (Store (r "conn", 0, r "j"));
          i 15 "q->slots[j] = conn;" (Assign ("joff", B.( +% ) (r "j") (im 1)));
          i 15 "q->slots[j] = conn;" (Assign ("slot", B.( +% ) (r "q") (r "joff")));
          i 15 "q->slots[j] = conn;" (Store (r "slot", 0, r "conn"));
          i 16 "q->count = j + 1;" (Assign ("j1", B.( +% ) (r "j") (im 1)));
          i 16 "q->count = j + 1;" (Store (r "q", 0, r "j1"));
          i 16 "" (Assign ("j", Mov (r "j1")));
          i 16 "" (Jmp "fill");
        ];
      B.block "go"
        [
          i 17 "t1 = spawn(worker, q);" (Spawn ("t1", "worker", [ r "q" ]));
          i 18 "t2 = spawn(worker, q);" (Spawn ("t2", "worker", [ r "q" ]));
          i 19 "join(t1); join(t2);" (Join (r "t1"));
          i 19 "join(t1); join(t2);" (Join (r "t2"));
          i 19 "return 0;" (Ret (Some (im 0)));
        ];
    ]

let program = Ir.Program.make ~main:"main" [ handle; pop; worker; main ]

let bug : Common.t =
  {
    name = "Apache-1";
    software = "Apache httpd";
    version = "2.2.9";
    bug_id = "45605";
    description =
      "Two workers race on the lockless connection-queue fast path: \
       both observe count == 1, both pop slot 0, and the loser \
       dereferences the NULL the winner left behind.";
    failure_type = "Concurrency bug, segmentation fault";
    bug_class = Common.Concurrency;
    program;
    source_file = file;
    workload_of =
      (fun c ->
        Exec.Interp.workload
          ~args:[ Exec.Value.VInt (2 + (c mod 4)) ]
          (Common.seed_of_client c));
    ideal_lines = [ 20; 21; 23; 24; 25; 26 ];
    root_lines = [ 20; 24; 25; 26 ];
    target_kind_tag = "segfault";
    target_line = 26;
    claimed_loc = 224_533;
    preempt_prob = 0.2;
  }
