(** Cppcheck bug #3238 (v1.52): the template simplification pass dereferences tok->next after a '<' token without a NULL check; a dangling '<' at EOF crashes the checker. *)

(** The IR re-creation of the buggy program. *)
val program : Ir.Types.program

(** The production input mix; one entry is the failing input. *)
val inputs : string array

(** The Bugbase descriptor (workloads, ideal sketch, target failure). *)
val bug : Common.t
