(** Transmission bug #1818 (v1.42): unsynchronised read-modify-write on the shared bandwidth counter loses updates; the shutdown invariant assert fires. *)

(** The IR re-creation of the buggy program. *)
val program : Ir.Types.program

(** The Bugbase descriptor (workloads, ideal sketch, target failure). *)
val bug : Common.t
