(** Apache bug #21287 ("Apache-3", paper Fig. 8): the dec / zero-check / free triplet of decrement_refcount is not atomic; the cache object is freed twice. *)

(** The IR re-creation of the buggy program. *)
val program : Ir.Types.program

(** The Bugbase descriptor (workloads, ideal sketch, target failure). *)
val bug : Common.t
