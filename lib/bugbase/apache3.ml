(* Apache bug #21287 (paper Fig. 8, "Apache-3"): a double free in the
   mod_mem_cache object cache.  decrement_refcount() does

       dec(&obj->refcnt);
       if (!obj->refcnt) free(obj);

   without atomicity: two threads can both observe refcnt == 0 and
   both call free(obj).  Developers fixed it by making the
   decrement-check-free triplet atomic (paper §5.1).

   obj layout: [0] refcnt, [1] complete, [2] data. *)

open Ir.Types
module B = Ir.Builder

let file = "apache3.c"
let i = B.file file
let r = B.r
let im = B.im

(* Serving the cached object: CPU work proportional to the request. *)
let process =
  B.func "process" ~params:[ "obj" ]
    [
      B.block "entry"
        [
          i 90 "char* data = obj->data;" (Load ("data", r "obj", 2));
          i 91 "int acc = 0;" (Assign ("acc", Mov (im 0)));
          i 91 "" (Assign ("k", Mov (im 0)));
          i 91 "" (Jmp "loop");
        ];
      B.block "loop"
        [
          i 92 "for (k = 0; k < len; k++)"
            (Assign ("more", B.( <% ) (r "k") (im 220)));
          i 92 "" (Branch (r "more", "body", "done"));
        ];
      B.block "body"
        [
          i 93 "acc += data[k] * 31;" (Assign ("x", B.( *% ) (r "data") (im 31)));
          i 93 "acc += data[k] * 31;" (Assign ("acc", B.( +% ) (r "acc") (r "k")));
          i 94 "" (Assign ("k", B.( +% ) (r "k") (im 1)));
          i 94 "" (Jmp "loop");
        ];
      B.block "done" [ i 95 "return acc;" (Ret (Some (r "acc"))) ];
    ]

let decrement_refcount =
  B.func "decrement_refcount" ~params:[ "obj" ]
    [
      B.block "entry"
        [
          i 80 "if (!obj->complete) {" (Load ("cm", r "obj", 1));
          i 80 "if (!obj->complete) {" (Assign ("notc", Not (r "cm")));
          i 80 "if (!obj->complete) {" (Branch (r "notc", "body", "out"));
        ];
      B.block "body"
        [
          i 81 "object_t *mobj = (object_t*) obj->data;"
            (Load ("mobj", r "obj", 2));
          i 82 "dec(&obj->refcnt);" (Load ("rc", r "obj", 0));
          i 82 "dec(&obj->refcnt);" (Assign ("rc1", B.( -% ) (r "rc") (im 1)));
          i 82 "dec(&obj->refcnt);" (Store (r "obj", 0, r "rc1"));
          i 82 "dec(&obj->refcnt);" (Assign ("lg", B.( *% ) (r "rc1") (im 2)));
          i 82 "dec(&obj->refcnt);" (Assign ("lg2", B.( +% ) (r "lg") (im 1)));
          i 83 "if (!obj->refcnt) {" (Load ("rc2", r "obj", 0));
          i 83 "if (!obj->refcnt) {" (Assign ("z", B.( =% ) (r "rc2") (im 0)));
          i 83 "if (!obj->refcnt) {" (Branch (r "z", "fr", "out"));
        ];
      B.block "fr"
        [
          i 84 "free(obj);" (Free (r "obj"));
          i 84 "}" (Jmp "out");
        ];
      B.block "out" [ i 85 "return;" (Ret (Some (im 0))) ];
    ]

let worker =
  B.func "worker" ~params:[ "obj" ]
    [
      B.block "entry"
        [
          i 70 "serve_request(obj);" (Call (Some "w", "process", [ r "obj" ]));
          i 71 "decrement_refcount(obj);"
            (Call (None, "decrement_refcount", [ r "obj" ]));
          i 72 "return 0;" (Ret (Some (im 0)));
        ];
    ]

let main =
  B.func "main" ~params:[ "n" ]
    [
      B.block "entry"
        [
          i 60 "cache_object_t* obj = malloc(sizeof(*obj));" (Malloc ("obj", 3));
          i 61 "obj->refcnt = 2;" (Store (r "obj", 0, im 2));
          i 62 "obj->complete = 0;" (Store (r "obj", 1, im 0));
          i 63 "obj->data = payload;" (Store (r "obj", 2, r "n"));
          i 64 "t1 = spawn(worker, obj);" (Spawn ("t1", "worker", [ r "obj" ]));
          i 65 "t2 = spawn(worker, obj);" (Spawn ("t2", "worker", [ r "obj" ]));
          i 66 "join(t1);" (Join (r "t1"));
          i 67 "join(t2);" (Join (r "t2"));
          i 68 "return 0;" (Ret (Some (im 0)));
        ];
    ]

let program =
  Ir.Program.make ~main:"main" [ process; decrement_refcount; worker; main ]

let bug : Common.t =
  {
    name = "Apache-3";
    software = "Apache httpd";
    version = "2.0.48";
    bug_id = "21287";
    description =
      "decrement_refcount's dec / zero-check / free triplet is not \
       atomic; two threads can both observe refcnt == 0 and free the \
       cache object twice.";
    failure_type = "Concurrency bug, double free";
    bug_class = Common.Concurrency;
    program;
    source_file = file;
    workload_of =
      (fun c ->
        Exec.Interp.workload
          ~args:[ Exec.Value.VInt (1 + (c mod 5)) ]
          (Common.seed_of_client c));
    ideal_lines = [ 80; 82; 83; 84 ];
    root_lines = [ 82; 83; 84 ];
    target_kind_tag = "double-free";
    target_line = 84;
    claimed_loc = 169_747;
    preempt_prob = 0.3;
  }
