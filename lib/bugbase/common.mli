(** The bug descriptor shared by all Bugbase entries.

    The paper's own Bugbase framework reproduces the 11 bugs of
    Table 1; each entry here re-creates the {e mechanism} of the real
    bug — same bug class, same root-cause-to-failure structure, same
    fix locus — in the repo's IR. *)

open Ir.Types

type bug_class = Concurrency | Sequential

type t = {
  name : string;          (** Table 1 row name, e.g. "Apache-3" *)
  software : string;
  version : string;
  bug_id : string;        (** official bug-database id *)
  description : string;
  failure_type : string;  (** sketch header, e.g. "Concurrency bug, double free" *)
  bug_class : bug_class;
  program : program;
  source_file : string;
  workload_of : int -> Exec.Interp.workload;
      (** production workload of client [c]; must reach both failing
          and successful runs *)
  ideal_lines : int list;
      (** the hand-built ideal sketch (§5.2): every statement with a
          data or control dependency to the failure, as source lines in
          failing-run order *)
  root_lines : int list;
      (** the root-cause core a developer must see to fix the bug;
          drives the stop-AsT oracle; a subset of [ideal_lines] *)
  target_kind_tag : string; (** {!Exec.Failure.kind_tag} of the target *)
  target_line : int;        (** source line where it manifests *)
  claimed_loc : int;        (** software size from Table 1, for reporting *)
  preempt_prob : float;
}

(** All instructions on a source line, in program order. *)
val iids_at_line : program -> file:string -> line:int -> iid list

(** Ordered iids for a list of source lines, restricted to instructions
    that execute in a canonical target-failing run (memoised per bug). *)
val iids_for_lines : t -> int list -> iid list

(** The ideal sketch as ordered iids (memoised). *)
val ideal : t -> Fsketch.Accuracy.ideal

val root_cause_iids : t -> iid list

(** Deterministic client-index to seed spreading. *)
val seed_of_client : int -> int

(** First failing run of any kind among production workloads. *)
val find_failing_run :
  ?max_runs:int -> ?max_steps:int -> t -> (int * Exec.Failure.report) option

(** Does a report match the Table 1 failure this bug models
    (kind tag + manifestation line)? *)
val is_target_failure : t -> Exec.Failure.report -> bool

(** First occurrence of the {e target} failure among production
    workloads: the report that triggers the diagnosis. *)
val find_target_failure :
  ?max_runs:int -> ?max_steps:int -> t -> (int * Exec.Failure.report) option
