(** Dominators (Cooper-Harvey-Kennedy) and postdominators.

    Gist's instrumentation placement needs strict dominance (to elide
    redundant trace-start points), immediate postdominators (trace-stop
    points) and immediate dominators (watchpoint arming points),
    paper §3.2.2-§3.2.3. *)

(** A dominator tree: [idom.(entry) = entry]; unreachable nodes carry
    [-1]. *)
type t = { entry : int; idom : int array }

val compute : Graph.t -> int -> t

(** Immediate dominator; [None] for the entry or unreachable nodes. *)
val idom : t -> int -> int option

val reachable : t -> int -> bool

(** [dominates t a b]: does [a] dominate [b]?  Reflexive. *)
val dominates : t -> int -> int -> bool

val strictly_dominates : t -> int -> int -> bool

(** Postdominators: computed on the reversed graph with a virtual exit
    node [vexit] joined from every natural exit (or from every node
    when the graph has none, e.g. an infinite loop). *)
type post = { vexit : int; dom : t }

val compute_post : Graph.t -> post
val postdominates : post -> int -> int -> bool
val strictly_postdominates : post -> int -> int -> bool

(** Immediate postdominator; [None] when it is the virtual exit. *)
val ipdom : post -> int -> int option
