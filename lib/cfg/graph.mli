(** Minimal directed graphs over integer nodes, shared by the CFG and
    (post)dominator computations. *)

type t = {
  n : int;
  succs : int list array;  (** deduplicated, sorted *)
  preds : int list array;  (** deduplicated, sorted *)
}

(** [make n edges] builds a graph with nodes [0..n-1]; duplicate edges
    are collapsed. *)
val make : int -> (int * int) list -> t

val reverse : t -> t

(** Reverse postorder from an entry node; unreachable nodes absent. *)
val reverse_postorder : t -> int -> int list

(** [reachable g entry].(v) is true iff [v] is reachable from [entry]. *)
val reachable : t -> int -> bool array
