(** Memoised whole-program analysis: one [Icfg.build] (and therefore
    one CFG + dominator + postdominator construction per function) per
    program, shared by the slicer and the per-AsT-iteration
    instrumentation placer.  Keyed by physical identity -- programs
    are immutable after [Ir.Program.make].  Thread-safe: usable from
    pool workers running concurrent diagnoses. *)

(** The (possibly cached) interprocedural CFG of [program]. *)
val icfg : Ir.Types.program -> Icfg.t

(** [cfg program fname]: a per-function CFG through the same cache. *)
val cfg : Ir.Types.program -> string -> Cfg.t

(** The (possibly cached) lowered execution form of [program] (see
    [Ir.Lowered]): compiled once, then shared by every interpreter run
    and PT decode of the same program.  Same keying and thread-safety
    as {!icfg}. *)
val lowered : Ir.Types.program -> Ir.Lowered.t

(** Cumulative cache hits / misses since start or [clear].
    [hits]/[misses] count the ICFG cache; [lowered_hits]/
    [lowered_misses] count the lowering cache. *)
val hits : unit -> int

val misses : unit -> int
val lowered_hits : unit -> int
val lowered_misses : unit -> int

(** Drop every entry and reset the counters (benchmarking cold paths). *)
val clear : unit -> unit
