(* Memoised whole-program analysis results.

   [Icfg.build] constructs every per-function CFG -- dominators,
   postdominators and all (see [Cfg.of_func]) -- plus the
   interprocedural edges.  The slicer runs it once per diagnosis and
   the instrumentation placer once per AsT iteration, always on the
   same program, so the server recomputed identical graphs eight-plus
   times per bug.  Programs are immutable after [Ir.Program.make]
   (their index tables are built once and only read), so a built ICFG
   is valid for the program's lifetime and can be keyed by physical
   identity -- structural hashing would itself walk the whole program.

   The cache is a mutex-protected move-to-front list: entries are few
   (one per Bugbase program plus whatever tests build) and lookups are
   dominated by the first element in steady state.  The mutex is held
   across a miss's build, serialising concurrent builders of the same
   program instead of duplicating the work; concurrent *hits* on an
   already-built entry only pay the list scan.  All of [Icfg.t] is
   read-only after build, so sharing one value across domains is
   safe. *)

let max_entries = 64

type stats = { mutable hits : int; mutable misses : int }

let stats_ = { hits = 0; misses = 0 }
let entries : (Ir.Types.program * Icfg.t) list ref = ref []
let lstats_ = { hits = 0; misses = 0 }
let lentries : (Ir.Types.program * Ir.Lowered.t) list ref = ref []
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* One move-to-front lookup step, shared by both caches.  Holds [lock]
   for the duration, including a miss's build. *)
let find_or_build entries stats build program =
  locked (fun () ->
      match List.find_opt (fun (p, _) -> p == program) !entries with
      | Some (_, g) ->
        stats.hits <- stats.hits + 1;
        (match !entries with
         | (p0, _) :: _ when p0 == program -> ()
         | _ ->
           entries :=
             (program, g) :: List.filter (fun (p, _) -> p != program) !entries);
        g
      | None ->
        stats.misses <- stats.misses + 1;
        let g = build program in
        let kept =
          if List.length !entries >= max_entries then
            List.filteri (fun i _ -> i < max_entries - 1) !entries
          else !entries
        in
        entries := (program, g) :: kept;
        g)

let icfg program = find_or_build entries stats_ Icfg.build program

(* The lowered execution form (see [Ir.Lowered]): compiled once per
   program, shared by every subsequent interpreter run and PT decode. *)
let lowered program = find_or_build lentries lstats_ Ir.Lowered.lower program

(* The per-function views, through the same cache. *)
let cfg program fname = Icfg.cfg_of (icfg program) fname

let hits () = stats_.hits
let misses () = stats_.misses
let lowered_hits () = lstats_.hits
let lowered_misses () = lstats_.misses

let clear () =
  locked (fun () ->
      entries := [];
      stats_.hits <- 0;
      stats_.misses <- 0;
      lentries := [];
      lstats_.hits <- 0;
      lstats_.misses <- 0)
