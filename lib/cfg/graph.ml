(* A minimal directed-graph representation over integer nodes, shared by
   the CFG, dominator and postdominator computations. *)

type t = {
  n : int;
  succs : int list array;
  preds : int list array;
}

let make n edges =
  let succs = Array.make n [] and preds = Array.make n [] in
  List.iter
    (fun (a, b) ->
      succs.(a) <- b :: succs.(a);
      preds.(b) <- a :: preds.(b))
    edges;
  (* Deterministic order and no duplicate edges. *)
  let dedup l = List.sort_uniq compare l in
  Array.iteri (fun i l -> succs.(i) <- dedup l) succs;
  Array.iteri (fun i l -> preds.(i) <- dedup l) preds;
  { n; succs; preds }

let reverse g =
  { n = g.n; succs = Array.copy g.preds; preds = Array.copy g.succs }

(* Reverse postorder from [entry]; unreachable nodes are absent. *)
let reverse_postorder g entry =
  let visited = Array.make g.n false in
  let order = ref [] in
  let rec dfs v =
    if not visited.(v) then begin
      visited.(v) <- true;
      List.iter dfs g.succs.(v);
      order := v :: !order
    end
  in
  dfs entry;
  !order

let reachable g entry =
  let visited = Array.make g.n false in
  let rec dfs v =
    if not visited.(v) then begin
      visited.(v) <- true;
      List.iter dfs g.succs.(v)
    end
  in
  dfs entry;
  visited
