(* Interprocedural CFG (call/return edges) extended with thread-creation
   and join edges: the paper's TICFG (§3.1, following Wu et al.).  A
   spawn edge is "a callsite with the thread start routine as the
   target"; a join edge returns from the routine's exits to the join
   site.  The slicer uses the site indexes; the explicit graph supports
   whole-program reachability and tests. *)

open Ir.Types

type node = string * int (* function name, block index *)

type edge_kind =
  | Intra
  | Call_edge of iid
  | Return_edge of iid
  | Spawn_edge of iid
  | Join_edge of iid

type t = {
  program : program;
  cfgs : (string, Cfg.t) Hashtbl.t;
  succs : (node, (node * edge_kind) list) Hashtbl.t;
  preds : (node, (node * edge_kind) list) Hashtbl.t;
  call_sites : (string, iid list) Hashtbl.t;  (* callee -> call iids *)
  spawn_sites : (string, iid list) Hashtbl.t; (* routine -> spawn iids *)
}

let cfg_of t fname =
  match Hashtbl.find_opt t.cfgs fname with
  | Some c -> c
  | None -> invalid "no CFG for function %s" fname

let add_edge tbl a b kind =
  let cur = Option.value ~default:[] (Hashtbl.find_opt tbl a) in
  Hashtbl.replace tbl a ((b, kind) :: cur)

let add tbl key v =
  let cur = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (v :: cur)

let build program =
  let cfgs = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace cfgs f.fname (Cfg.of_func f)) program.funcs;
  let succs = Hashtbl.create 64 and preds = Hashtbl.create 64 in
  let call_sites = Hashtbl.create 16 and spawn_sites = Hashtbl.create 16 in
  let edge a b kind =
    add_edge succs a b kind;
    add_edge preds b a kind
  in
  List.iter
    (fun f ->
      let cfg = Hashtbl.find cfgs f.fname in
      for b = 0 to Cfg.n_blocks cfg - 1 do
        let here = (f.fname, b) in
        List.iter (fun s -> edge here (f.fname, s) Intra) (Cfg.succs cfg b);
        Array.iter
          (fun i ->
            match i.kind with
            | Call (_, callee, _) ->
              add call_sites callee i.iid;
              edge here (callee, 0) (Call_edge i.iid);
              let callee_cfg = Hashtbl.find cfgs callee in
              List.iter
                (fun e -> edge (callee, e) here (Return_edge i.iid))
                (Cfg.exit_blocks callee_cfg)
            | Spawn (_, routine, _) ->
              add spawn_sites routine i.iid;
              edge here (routine, 0) (Spawn_edge i.iid)
            | Join _ ->
              (* Conservatively connect every spawned routine's exits to
                 every join site: TICFG overapproximates runtime
                 behaviour (§3.1). *)
              ()
            | _ -> ())
          (Cfg.block cfg b).instrs
      done)
    program.funcs;
  (* Join edges, now that all spawn sites are known. *)
  let t = { program; cfgs; succs; preds; call_sites; spawn_sites } in
  List.iter
    (fun f ->
      let cfg = Hashtbl.find cfgs f.fname in
      for b = 0 to Cfg.n_blocks cfg - 1 do
        Array.iter
          (fun i ->
            match i.kind with
            | Join _ ->
              Hashtbl.iter
                (fun routine _ ->
                  let rcfg = Hashtbl.find cfgs routine in
                  List.iter
                    (fun e ->
                      add_edge succs (routine, e) (f.fname, b) (Join_edge i.iid);
                      add_edge preds (f.fname, b) (routine, e) (Join_edge i.iid))
                    (Cfg.exit_blocks rcfg))
                spawn_sites
            | _ -> ())
          (Cfg.block cfg b).instrs
      done)
    program.funcs;
  t

let successors t n = Option.value ~default:[] (Hashtbl.find_opt t.succs n)
let predecessors t n = Option.value ~default:[] (Hashtbl.find_opt t.preds n)

let call_sites_of t callee =
  Option.value ~default:[] (Hashtbl.find_opt t.call_sites callee)

let spawn_sites_of t routine =
  Option.value ~default:[] (Hashtbl.find_opt t.spawn_sites routine)

(* All sites (calls and spawns) that bind the parameters of [fname]. *)
let binding_sites_of t fname = call_sites_of t fname @ spawn_sites_of t fname

(* Return instructions of a function. *)
let returns_of t fname =
  let f = Ir.Program.find_func t.program fname in
  List.filter (fun i -> match i.kind with Ret _ -> true | _ -> false)
    (Ir.Program.instrs_of_func f)

(* Whole-program reachable nodes from main's entry (over all edges). *)
let reachable_nodes t =
  let visited = Hashtbl.create 64 in
  let rec dfs n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.replace visited n ();
      List.iter (fun (m, _) -> dfs m) (successors t n)
    end
  in
  dfs (t.program.main, 0);
  visited
