(** Interprocedural CFG extended with thread-creation and join edges:
    the paper's TICFG (§3.1).  A spawn edge is "a callsite with the
    thread start routine as the target"; join edges return from the
    routine's exits to every join site (a deliberate
    overapproximation). *)

open Ir.Types

type node = string * int  (** function name, block index *)

type edge_kind =
  | Intra
  | Call_edge of iid
  | Return_edge of iid
  | Spawn_edge of iid
  | Join_edge of iid

type t = {
  program : program;
  cfgs : (string, Cfg.t) Hashtbl.t;
  succs : (node, (node * edge_kind) list) Hashtbl.t;
  preds : (node, (node * edge_kind) list) Hashtbl.t;
  call_sites : (string, iid list) Hashtbl.t;
  spawn_sites : (string, iid list) Hashtbl.t;
}

val build : program -> t

(** @raise Ir.Types.Invalid_program on unknown functions. *)
val cfg_of : t -> string -> Cfg.t

val successors : t -> node -> (node * edge_kind) list
val predecessors : t -> node -> (node * edge_kind) list

(** Call instructions targeting a function. *)
val call_sites_of : t -> string -> iid list

(** Spawn instructions starting a routine. *)
val spawn_sites_of : t -> string -> iid list

(** All sites (calls and spawns) that bind a function's parameters:
    what the slicer's interprocedural argument flow walks. *)
val binding_sites_of : t -> string -> iid list

(** The [Ret] instructions of a function. *)
val returns_of : t -> string -> instr list

(** Nodes reachable from main's entry over all edge kinds. *)
val reachable_nodes : t -> (node, unit) Hashtbl.t
