(** Per-function control-flow graph over basic blocks, with the
    dominance structures Gist's instrumentation placement uses. *)

open Ir.Types

type t = {
  func : func;
  graph : Graph.t;
  label_index : (string, int) Hashtbl.t;
  dom : Dom.t;
  post : Dom.post;
}

val of_func : func -> t

(** @raise Ir.Types.Invalid_program on unknown labels. *)
val block_index : t -> string -> int

val n_blocks : t -> int
val succs : t -> int -> int list
val preds : t -> int -> int list
val block : t -> int -> block
val entry_block : t -> int

(** Blocks with no successors (they end in [Ret]). *)
val exit_blocks : t -> int list

(** Instruction-level helpers; a program point is (block, index). *)

val instr_at : t -> int * int -> instr
val find_iid : t -> iid -> (int * int) option

(** Within a block this is textual order; across blocks, block
    dominance. *)
val instr_strictly_dominates : t -> int * int -> int * int -> bool

val instr_strictly_postdominates : t -> int * int -> int * int -> bool

(** Ferrante-Ottenstein-Warren control dependence: [.(b)] lists the
    blocks whose branch decides whether [b] executes. *)
val control_deps : t -> int list array

(** Like {!control_deps} but resolved to the deciding branch
    instructions. *)
val controlling_branches : t -> instr list array
