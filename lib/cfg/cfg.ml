(* Per-function control-flow graph over basic blocks, with the
   dominance structures Gist's instrumentation placement needs. *)

open Ir.Types

type t = {
  func : func;
  graph : Graph.t;
  label_index : (string, int) Hashtbl.t;
  dom : Dom.t;
  post : Dom.post;
}

let block_index t label =
  match Hashtbl.find_opt t.label_index label with
  | Some i -> i
  | None -> invalid "unknown label %s in %s" label t.func.fname

let of_func f =
  let n = Array.length f.blocks in
  let label_index = Hashtbl.create n in
  Array.iteri (fun i b -> Hashtbl.replace label_index b.label i) f.blocks;
  let idx l =
    match Hashtbl.find_opt label_index l with
    | Some i -> i
    | None -> invalid "unknown label %s in %s" l f.fname
  in
  let edges = ref [] in
  Array.iteri
    (fun bi b ->
      let last = b.instrs.(Array.length b.instrs - 1) in
      match last.kind with
      | Jmp l -> edges := (bi, idx l) :: !edges
      | Branch (_, t, e) -> edges := (bi, idx t) :: (bi, idx e) :: !edges
      | Ret _ -> ()
      | _ -> ())
    f.blocks;
  let graph = Graph.make n !edges in
  let dom = Dom.compute graph 0 in
  let post = Dom.compute_post graph in
  { func = f; graph; label_index; dom; post }

let n_blocks t = t.graph.Graph.n
let succs t b = t.graph.Graph.succs.(b)
let preds t b = t.graph.Graph.preds.(b)
let block t b = t.func.blocks.(b)
let entry_block (_ : t) = 0

let exit_blocks t =
  let l = ref [] in
  for b = n_blocks t - 1 downto 0 do
    if succs t b = [] then l := b :: !l
  done;
  !l

(* Instruction-level helpers.  A program point is (block, index). *)

let instr_at t (b, k) = (block t b).instrs.(k)

let find_iid t iid =
  let found = ref None in
  Array.iteri
    (fun bi bl ->
      Array.iteri (fun k i -> if i.iid = iid then found := Some (bi, k)) bl.instrs)
    t.func.blocks;
  !found

(* Does instruction [a] strictly dominate instruction [b]?  Within a
   block this is textual order; across blocks it is block dominance. *)
let instr_strictly_dominates t (ba, ka) (bb, kb) =
  if ba = bb then ka < kb else Dom.strictly_dominates t.dom ba bb

let instr_strictly_postdominates t (ba, ka) (bb, kb) =
  if ba = bb then ka > kb else Dom.strictly_postdominates t.post ba bb

(* Control dependence: block [b] is control-dependent on block [a] when
   [a] has a successor [x] such that [b] postdominates [x] but [b] does
   not strictly postdominate [a].  Computed by walking the
   postdominator tree from each edge target up to (exclusive) the
   ipdom of the edge source (Ferrante-Ottenstein-Warren). *)
let control_deps t =
  let deps = Array.make (n_blocks t) [] in
  for a = 0 to n_blocks t - 1 do
    if List.length (succs t a) > 1 then begin
      (* Walk each successor up the postdominator tree until (exclusive)
         the ipdom of [a]; every node passed is control-dependent on [a]. *)
      let stop = Dom.ipdom t.post a in
      List.iter
        (fun x ->
          let rec walk v =
            if stop <> Some v then begin
              if v <> a then deps.(v) <- a :: deps.(v);
              match Dom.ipdom t.post v with
              | Some p -> walk p
              | None -> ()
            end
          in
          walk x)
        (succs t a)
    end
  done;
  Array.map (List.sort_uniq compare) deps

(* The branch instructions that decide whether block [b] executes. *)
let controlling_branches t =
  let deps = control_deps t in
  Array.map
    (fun controllers ->
      List.filter_map
        (fun a ->
          let bl = block t a in
          let last = bl.instrs.(Array.length bl.instrs - 1) in
          match last.kind with Branch _ -> Some last | _ -> None)
        controllers)
    deps
