(* Dominators via the Cooper-Harvey-Kennedy iterative algorithm, plus
   postdominators on the reversed graph with a virtual exit node.
   Gist needs strict dominance (to elide redundant PT start points),
   immediate postdominators (to place PT stop points) and immediate
   dominators (to place watchpoint arming points). *)

(* [idom.(v)] is the immediate dominator of [v]; [idom.(entry) = entry];
   unreachable nodes carry [-1]. *)
type t = { entry : int; idom : int array }

let compute (g : Graph.t) entry =
  let rpo = Graph.reverse_postorder g entry in
  let rpo_index = Array.make g.n (-1) in
  List.iteri (fun k v -> rpo_index.(v) <- k) rpo;
  let idom = Array.make g.n (-1) in
  idom.(entry) <- entry;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        if v <> entry then begin
          let processed_preds =
            List.filter (fun p -> idom.(p) <> -1) g.preds.(v)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(v) <> new_idom then begin
              idom.(v) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  { entry; idom }

let idom t v = if v = t.entry then None else
  match t.idom.(v) with -1 -> None | d -> Some d

let reachable t v = t.idom.(v) <> -1

(* Does [a] dominate [b]?  (Reflexive.) *)
let dominates t a b =
  if t.idom.(b) = -1 || t.idom.(a) = -1 then false
  else
    let rec up v = if v = a then true else if v = t.entry then false
      else up t.idom.(v)
    in
    up b

let strictly_dominates t a b = a <> b && dominates t a b

(* Postdominator analysis: reverse the graph and add a virtual exit node
   (index [g.n]) with edges from every natural exit (no successors).
   If there is no natural exit (e.g. an infinite loop), every node is
   connected to the virtual exit so the analysis stays total. *)
type post = { vexit : int; dom : t }

let compute_post (g : Graph.t) =
  let vexit = g.n in
  let exits =
    let l = ref [] in
    for v = 0 to g.n - 1 do
      if g.succs.(v) = [] then l := v :: !l
    done;
    if !l = [] then List.init g.n Fun.id else !l
  in
  let edges = ref [] in
  for v = 0 to g.n - 1 do
    List.iter (fun s -> edges := (v, s) :: !edges) g.succs.(v)
  done;
  List.iter (fun e -> edges := (e, vexit) :: !edges) exits;
  let g' = Graph.make (g.n + 1) !edges in
  let rg = Graph.reverse g' in
  { vexit; dom = compute rg vexit }

let postdominates p a b = dominates p.dom a b
let strictly_postdominates p a b = strictly_dominates p.dom a b

(* Immediate postdominator; [None] when it is the virtual exit. *)
let ipdom p v =
  match idom p.dom v with
  | Some d when d <> p.vexit -> Some d
  | _ -> None
