(** The Gist client: one production endpoint executing one run under
    the instrumentation plan the server shipped, then reporting back
    the decoded control-flow trace, watchpoint log and outcome (paper
    Fig. 2, steps 2 and 4). *)

open Ir.Types

type report = {
  r_seed : int;
  r_outcome : Exec.Interp.outcome;
  r_signature : Exec.Failure.signature option;
  r_executed : (int * iid list) list;
      (** per thread, PT-decoded execution order; for a failing run the
          crash instance of the failing statement is appended (PT
          truncation cannot decode past the last packet) *)
  r_branches : (iid * bool) list;  (** PT-decoded branch outcomes *)
  r_traps : Hw.Watchpoint.trap list;
  r_counters : Exec.Cost.t;
  r_overhead_pct : float;
  r_base_cycles : float;   (** un-instrumented work, cost-model cycles *)
  r_extra_cycles : float;  (** PT + watchpoint cycles added by Gist *)
  r_steps : int;
  r_pt_errors : (int * Hw.Pt.error) list;
      (** per-thread decode faults: non-empty when the PT ring was
          damaged; the decoded prefix is still reported *)
}

val failing : report -> bool

(** Privacy extension (§6): hash a string value into a stable opaque
    token; other values pass through. *)
val redact_value : Exec.Value.t -> Exec.Value.t

(** [run_one ~plan ~wp_allowed program workload] runs one monitored
    client.  [wp_allowed] is this client's share of the cooperative
    watchpoint rotation.  [data_source] (default [Watchpoints]) selects
    the §6 PTWRITE extension instead of debug registers; [redact]
    (default false) hashes string values before they leave the client;
    [tamper] (fault injection) damages a thread's encoded ring bytes
    ([Hw.Pt.Wire]) before decoding, as if the PT ring pages themselves
    were harmed — [""] models a dropped ring. *)
val run_one :
  ?wp_capacity:int ->
  ?preempt_prob:float ->
  ?max_steps:int ->
  ?data_source:Config.data_source ->
  ?redact:bool ->
  ?tamper:(tid:int -> string -> string) ->
  plan:Instrument.Plan.t ->
  wp_allowed:iid list ->
  program ->
  Exec.Interp.workload ->
  report

(** All statements this run is known to have executed (deduplicated). *)
val executed_set : report -> iid list
