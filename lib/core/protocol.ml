(* The fleet wire protocol: a versioned envelope around each client
   report, checked by the server before anything reaches aggregation or
   predictor ranking.  A real Gist deployment ships reports from
   thousands of unreliable endpoints over an unreliable network (paper
   §4 runs "clients" as processes feeding a central server); this layer
   is what lets the AsT loop survive lost, damaged, or out-of-date
   reports instead of silently diagnosing from garbage.

   Validation is layered:
   - transport integrity: protocol version and an explicit full-walk
     checksum over every report field;
   - freshness: the client echoes the digest of the plan it ran under,
     so a report built from a previous iteration's plan is rejected
     (its tracked set and watchpoint rotation no longer match);
   - structure: the client's own PT decoder flagged ring damage;
   - semantics: every statement id the report mentions must exist in
     the program the server is diagnosing. *)

open Ir.Types

let version = 1

type envelope = {
  e_version : int;
  e_client : int;     (* fleet slot that produced the report *)
  e_plan_id : int;    (* digest of the plan the client ran under *)
  e_checksum : int;   (* full-walk digest of [e_report] *)
  e_report : Client.report;
}

type reject =
  | Bad_version of int
  | Bad_checksum
  | Stale_plan of { expected : int; got : int }
  | Damaged_trace of string
  | Bad_payload of string

(* Stable keys for per-reason counters. *)
let reject_label = function
  | Bad_version _ -> "bad-version"
  | Bad_checksum -> "bad-checksum"
  | Stale_plan _ -> "stale-plan"
  | Damaged_trace _ -> "damaged-trace"
  | Bad_payload _ -> "bad-payload"

let reject_to_string = function
  | Bad_version v -> Printf.sprintf "unknown protocol version %d" v
  | Bad_checksum -> "checksum mismatch (report damaged in transit)"
  | Stale_plan { expected; got } ->
    Printf.sprintf "report built under stale plan %#x (current %#x)" got
      expected
  | Damaged_trace m -> Printf.sprintf "damaged PT trace: %s" m
  | Bad_payload m -> Printf.sprintf "malformed payload: %s" m

(* The checksum is an explicit fold over every field of the report.
   [Hashtbl.hash] would be shorter but truncates its traversal after a
   few dozen nodes, so tail tampering (a flipped value in the last
   trap of a long log) would slip through. *)

(* A splitmix-style avalanche on the native 63-bit int: the checksum
   walks every element of multi-thousand-entry traces, so this must
   stay allocation-free (boxed [Int64] arithmetic here costs ~5% of a
   whole client run).  Multiplications wrap, which is fine for
   mixing; the result is masked positive so [lsr] stays benign. *)
let mix h x =
  let z = h + (((x lsl 1) lor 1) * 0x9E3779B97F4A7C1) in
  let z = (z lxor (z lsr 30)) * 0x1F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  (z lxor (z lsr 31)) land 0x3FFFFFFFFFFFFFFF

let mix_float h f =
  mix h Int64.(to_int (logand (bits_of_float f) 0x3FFFFFFFFFFFFFFFL))

(* Bulk traces (executed iids, branch outcomes) dominate the walk; a
   single multiply-xor chain step per element keeps the cost at one
   multiplication instead of {!mix}'s three while still propagating any
   element change through the rest of the fold.  Every list fold counts
   as it goes and finishes with a full {!mix} avalanche over the
   length, so neither truncation nor element swaps cancel out and no
   extra [List.length] traversal is paid. *)
let step h x = ((h lxor x) * 0x9E3779B97F4A7C1) land 0x3FFFFFFFFFFFFFFF

let mix_string h s =
  mix (String.fold_left (fun h c -> step h (Char.code c)) h s)
    (String.length s)

let mix_list f h l =
  let rec go h n = function
    | [] -> mix h n
    | x :: tl -> go (f h x) (n + 1) tl
  in
  go h 0 l

let step_ints h l = mix_list step h l

let mix_value h (v : Exec.Value.t) =
  match v with
  | Exec.Value.VInt i -> mix (mix h 1) i
  | Exec.Value.VPtr a -> mix (mix h 2) a
  | Exec.Value.VStr s -> mix_string (mix h 3) s
  | Exec.Value.VTid t -> mix (mix h 4) t
  | Exec.Value.VNull -> mix h 5
  | Exec.Value.VUnit -> mix h 6

let mix_kind h (k : Exec.Failure.kind) =
  match k with
  | Exec.Failure.Segfault -> mix h 1
  | Exec.Failure.Use_after_free -> mix h 2
  | Exec.Failure.Double_free -> mix h 3
  | Exec.Failure.Assert_fail s -> mix_string (mix h 4) s
  | Exec.Failure.Deadlock -> mix h 5
  | Exec.Failure.Hang -> mix h 6
  | Exec.Failure.Div_by_zero -> mix h 7
  | Exec.Failure.Type_error s -> mix_string (mix h 8) s

let mix_pt_error h (e : Hw.Pt.error) =
  match e with
  | Hw.Pt.Truncated -> mix h 1
  | Hw.Pt.Bad_target pc -> mix (mix h 2) pc
  | Hw.Pt.Malformed_packet m -> mix_string (mix h 3) m

let checksum (r : Client.report) =
  let h = mix 0x6715 r.Client.r_seed in
  let h =
    match r.Client.r_outcome with
    | Exec.Interp.Success -> mix h 1
    | Exec.Interp.Failed rep ->
      let h = mix_kind (mix h 2) rep.Exec.Failure.kind in
      let h = mix (mix h rep.Exec.Failure.pc) rep.Exec.Failure.tid in
      let h = mix_list mix_string h rep.Exec.Failure.stack in
      mix_string h rep.Exec.Failure.message
  in
  let h =
    match r.Client.r_signature with
    | None -> mix h 3
    | Some s ->
      let h = mix_string (mix h 4) s.Exec.Failure.s_kind in
      mix_list mix_string (mix h s.Exec.Failure.s_pc) s.Exec.Failure.s_stack
  in
  let h =
    mix_list
      (fun h (tid, iids) -> step_ints (mix h tid) iids)
      h r.Client.r_executed
  in
  let h =
    mix_list
      (fun h (iid, taken) -> step (step h iid) (if taken then 2 else 3))
      h r.Client.r_branches
  in
  let h =
    mix_list
      (fun h (t : Hw.Watchpoint.trap) ->
        let h = mix (mix h t.Hw.Watchpoint.w_seq) t.Hw.Watchpoint.w_tid in
        let h = mix (mix h t.Hw.Watchpoint.w_iid) t.Hw.Watchpoint.w_addr in
        let h =
          mix h (match t.Hw.Watchpoint.w_rw with Exec.Interp.Read -> 1 | Exec.Interp.Write -> 2)
        in
        mix_value h t.Hw.Watchpoint.w_value)
      h r.Client.r_traps
  in
  (* [r_counters] is covered through its ranking-relevant projections
     below; the raw counter record never reaches the predictors. *)
  let h = mix_float h r.Client.r_overhead_pct in
  let h = mix_float h r.Client.r_base_cycles in
  let h = mix_float h r.Client.r_extra_cycles in
  let h = mix h r.Client.r_steps in
  mix_list (fun h (tid, e) -> mix_pt_error (mix h tid) e) h r.Client.r_pt_errors

let seal ~client ~plan_id report =
  {
    e_version = version;
    e_client = client;
    e_plan_id = plan_id;
    e_checksum = checksum report;
    e_report = report;
  }

(* [validate ~n_instrs ~plan_id env] returns the report only if every
   layer passes; no rejected report may reach predictor ranking. *)
let validate ~n_instrs ~plan_id env =
  if env.e_version <> version then Error (Bad_version env.e_version)
  else if checksum env.e_report <> env.e_checksum then Error Bad_checksum
  else if env.e_plan_id <> plan_id then
    Error (Stale_plan { expected = plan_id; got = env.e_plan_id })
  else
    let r = env.e_report in
    match r.Client.r_pt_errors with
    | (tid, e) :: _ ->
      Error
        (Damaged_trace
           (Printf.sprintf "thread %d: %s" tid (Hw.Pt.error_to_string e)))
    | [] ->
      let rec iids_ok : iid list -> bool = function
        | [] -> true
        | iid :: tl -> iid >= 0 && iid < n_instrs && iids_ok tl
      in
      let rec exec_ok = function
        | [] -> true
        | (_, iids) :: tl -> iids_ok iids && exec_ok tl
      in
      let rec branches_ok : (iid * bool) list -> bool = function
        | [] -> true
        | (iid, _) :: tl -> iid >= 0 && iid < n_instrs && branches_ok tl
      in
      let rec traps_ok : Hw.Watchpoint.trap list -> bool = function
        | [] -> true
        | t :: tl ->
          t.Hw.Watchpoint.w_iid >= 0
          && t.Hw.Watchpoint.w_iid < n_instrs
          && traps_ok tl
      in
      let bad_exec = not (exec_ok r.Client.r_executed)
      and bad_branch = not (branches_ok r.Client.r_branches)
      and bad_trap = not (traps_ok r.Client.r_traps) in
      if bad_exec then
        Error (Bad_payload "executed statement outside the program")
      else if bad_branch then
        Error (Bad_payload "branch outcome on a statement outside the program")
      else if bad_trap then
        Error (Bad_payload "watchpoint trap on a statement outside the program")
      else Ok r
