(* The fleet wire protocol: a versioned envelope around each client
   report, checked by the server before anything reaches aggregation or
   predictor ranking.  A real Gist deployment ships reports from
   thousands of unreliable endpoints over an unreliable network (paper
   §4 runs "clients" as processes feeding a central server); this layer
   is what lets the AsT loop survive lost, damaged, or out-of-date
   reports instead of silently diagnosing from garbage.

   Validation is layered:
   - transport integrity: protocol version and an explicit full-walk
     checksum over every report field;
   - freshness: the client echoes the digest of the plan it ran under,
     so a report built from a previous iteration's plan is rejected
     (its tracked set and watchpoint rotation no longer match);
   - structure: the client's own PT decoder flagged ring damage;
   - semantics: every statement id the report mentions must exist in
     the program the server is diagnosing. *)

open Ir.Types

(* Version 3 is the multi-bug service era: the envelope is keyed by
   the diagnosis session (which bug the report belongs to) as well as
   the fleet slot.  Version 2 keyed reports by client slot alone — a
   latent single-bug assumption: once thousands of distinct failures
   are diagnosed concurrently, slot numbers repeat across sessions and
   a mis-routed report must be a typed reject, not a silent
   cross-contamination of another bug's statistics. *)
let version = 3

type envelope = {
  e_version : int;
  e_client : int;     (* fleet slot that produced the report *)
  e_session : int;    (* diagnosis session (bug) the report belongs to *)
  e_plan_id : int;    (* digest of the plan the client ran under *)
  e_checksum : int;   (* full-walk digest of [e_report] *)
  e_report : Client.report;
}

type reject =
  | Bad_version of int
  | Bad_checksum
  | Wrong_session of { expected : int; got : int }
  | Stale_plan of { expected : int; got : int }
  | Dropped_trace of int  (* a thread's PT ring arrived with no bytes *)
  | Damaged_trace of string
  | Bad_payload of string

(* Stable keys for per-reason counters.  Dropped and damaged traces
   are distinct reasons: fleet-health dashboards must not book ring
   drops (a transport problem) as ring corruption (a client problem). *)
let reject_label = function
  | Bad_version _ -> "bad-version"
  | Bad_checksum -> "bad-checksum"
  | Wrong_session _ -> "wrong-session"
  | Stale_plan _ -> "stale-plan"
  | Dropped_trace _ -> "dropped-trace"
  | Damaged_trace _ -> "damaged-trace"
  | Bad_payload _ -> "bad-payload"

let reject_to_string = function
  | Bad_version v -> Printf.sprintf "unknown protocol version %d" v
  | Bad_checksum -> "checksum mismatch (report damaged in transit)"
  | Wrong_session { expected; got } ->
    Printf.sprintf "report for session %d routed to session %d" got expected
  | Stale_plan { expected; got } ->
    Printf.sprintf "report built under stale plan %#x (current %#x)" got
      expected
  | Dropped_trace tid ->
    Printf.sprintf "dropped PT ring: thread %d shipped no bytes" tid
  | Damaged_trace m -> Printf.sprintf "damaged PT trace: %s" m
  | Bad_payload m -> Printf.sprintf "malformed payload: %s" m

(* The checksum is an explicit fold over every field of the report.
   [Hashtbl.hash] would be shorter but truncates its traversal after a
   few dozen nodes, so tail tampering (a flipped value in the last
   trap of a long log) would slip through. *)

(* A splitmix-style avalanche on the native 63-bit int: the checksum
   walks every element of multi-thousand-entry traces, so this must
   stay allocation-free (boxed [Int64] arithmetic here costs ~5% of a
   whole client run).  Multiplications wrap, which is fine for
   mixing; the result is masked positive so [lsr] stays benign. *)
let mix h x =
  let z = h + (((x lsl 1) lor 1) * 0x9E3779B97F4A7C1) in
  let z = (z lxor (z lsr 30)) * 0x1F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  (z lxor (z lsr 31)) land 0x3FFFFFFFFFFFFFFF

let mix_float h f =
  mix h Int64.(to_int (logand (bits_of_float f) 0x3FFFFFFFFFFFFFFFL))

(* Bulk traces (executed iids, branch outcomes) dominate the walk; a
   single multiply-xor chain step per element keeps the cost at one
   multiplication instead of {!mix}'s three while still propagating any
   element change through the rest of the fold.  Every list fold counts
   as it goes and finishes with a full {!mix} avalanche over the
   length, so neither truncation nor element swaps cancel out and no
   extra [List.length] traversal is paid. *)
let step h x = ((h lxor x) * 0x9E3779B97F4A7C1) land 0x3FFFFFFFFFFFFFFF

let mix_string h s =
  mix (String.fold_left (fun h c -> step h (Char.code c)) h s)
    (String.length s)

let mix_list f h l =
  let rec go h n = function
    | [] -> mix h n
    | x :: tl -> go (f h x) (n + 1) tl
  in
  go h 0 l

let step_ints h l = mix_list step h l

let mix_value h (v : Exec.Value.t) =
  match v with
  | Exec.Value.VInt i -> mix (mix h 1) i
  | Exec.Value.VPtr a -> mix (mix h 2) a
  | Exec.Value.VStr s -> mix_string (mix h 3) s
  | Exec.Value.VTid t -> mix (mix h 4) t
  | Exec.Value.VNull -> mix h 5
  | Exec.Value.VUnit -> mix h 6

let mix_kind h (k : Exec.Failure.kind) =
  match k with
  | Exec.Failure.Segfault -> mix h 1
  | Exec.Failure.Use_after_free -> mix h 2
  | Exec.Failure.Double_free -> mix h 3
  | Exec.Failure.Assert_fail s -> mix_string (mix h 4) s
  | Exec.Failure.Deadlock -> mix h 5
  | Exec.Failure.Hang -> mix h 6
  | Exec.Failure.Div_by_zero -> mix h 7
  | Exec.Failure.Type_error s -> mix_string (mix h 8) s

let mix_pt_error h (e : Hw.Pt.error) =
  match e with
  | Hw.Pt.Truncated -> mix h 1
  | Hw.Pt.Bad_target pc -> mix (mix h 2) pc
  | Hw.Pt.Malformed_packet m -> mix_string (mix h 3) m
  | Hw.Pt.Empty_stream -> mix h 4

let checksum (r : Client.report) =
  let h = mix 0x6715 r.Client.r_seed in
  let h =
    match r.Client.r_outcome with
    | Exec.Interp.Success -> mix h 1
    | Exec.Interp.Failed rep ->
      let h = mix_kind (mix h 2) rep.Exec.Failure.kind in
      let h = mix (mix h rep.Exec.Failure.pc) rep.Exec.Failure.tid in
      let h = mix_list mix_string h rep.Exec.Failure.stack in
      mix_string h rep.Exec.Failure.message
  in
  let h =
    match r.Client.r_signature with
    | None -> mix h 3
    | Some s ->
      let h = mix_string (mix h 4) s.Exec.Failure.s_kind in
      mix_list mix_string (mix h s.Exec.Failure.s_pc) s.Exec.Failure.s_stack
  in
  let h =
    mix_list
      (fun h (tid, iids) -> step_ints (mix h tid) iids)
      h r.Client.r_executed
  in
  let h =
    mix_list
      (fun h (iid, taken) -> step (step h iid) (if taken then 2 else 3))
      h r.Client.r_branches
  in
  let h =
    mix_list
      (fun h (t : Hw.Watchpoint.trap) ->
        let h = mix (mix h t.Hw.Watchpoint.w_seq) t.Hw.Watchpoint.w_tid in
        let h = mix (mix h t.Hw.Watchpoint.w_iid) t.Hw.Watchpoint.w_addr in
        let h =
          mix h (match t.Hw.Watchpoint.w_rw with Exec.Interp.Read -> 1 | Exec.Interp.Write -> 2)
        in
        mix_value h t.Hw.Watchpoint.w_value)
      h r.Client.r_traps
  in
  (* [r_counters] is covered through its ranking-relevant projections
     below; the raw counter record never reaches the predictors. *)
  let h = mix_float h r.Client.r_overhead_pct in
  let h = mix_float h r.Client.r_base_cycles in
  let h = mix_float h r.Client.r_extra_cycles in
  let h = mix h r.Client.r_steps in
  mix_list (fun h (tid, e) -> mix_pt_error (mix h tid) e) h r.Client.r_pt_errors

let seal ?(session = 0) ~client ~plan_id report =
  {
    e_version = version;
    e_client = client;
    e_session = session;
    e_plan_id = plan_id;
    e_checksum = checksum report;
    e_report = report;
  }

(* [validate ~n_instrs ~plan_id env] returns the report only if every
   layer passes; no rejected report may reach predictor ranking.
   Routing (session) is checked after integrity but before freshness:
   a mis-routed report's plan digest belongs to another session's
   iteration history, so comparing it against [plan_id] first would
   book routing faults as staleness. *)
let validate ?(session = 0) ~n_instrs ~plan_id env =
  if env.e_version <> version then Error (Bad_version env.e_version)
  else if checksum env.e_report <> env.e_checksum then Error Bad_checksum
  else if env.e_session <> session then
    Error (Wrong_session { expected = session; got = env.e_session })
  else if env.e_plan_id <> plan_id then
    Error (Stale_plan { expected = plan_id; got = env.e_plan_id })
  else
    let r = env.e_report in
    match r.Client.r_pt_errors with
    | (tid, Hw.Pt.Empty_stream) :: _ -> Error (Dropped_trace tid)
    | (tid, e) :: _ ->
      Error
        (Damaged_trace
           (Printf.sprintf "thread %d: %s" tid (Hw.Pt.error_to_string e)))
    | [] ->
      let rec iids_ok : iid list -> bool = function
        | [] -> true
        | iid :: tl -> iid >= 0 && iid < n_instrs && iids_ok tl
      in
      let rec exec_ok = function
        | [] -> true
        | (_, iids) :: tl -> iids_ok iids && exec_ok tl
      in
      let rec branches_ok : (iid * bool) list -> bool = function
        | [] -> true
        | (iid, _) :: tl -> iid >= 0 && iid < n_instrs && branches_ok tl
      in
      let rec traps_ok : Hw.Watchpoint.trap list -> bool = function
        | [] -> true
        | t :: tl ->
          t.Hw.Watchpoint.w_iid >= 0
          && t.Hw.Watchpoint.w_iid < n_instrs
          && traps_ok tl
      in
      let bad_exec = not (exec_ok r.Client.r_executed)
      and bad_branch = not (branches_ok r.Client.r_branches)
      and bad_trap = not (traps_ok r.Client.r_traps) in
      if bad_exec then
        Error (Bad_payload "executed statement outside the program")
      else if bad_branch then
        Error (Bad_payload "branch outcome on a statement outside the program")
      else if bad_trap then
        Error (Bad_payload "watchpoint trap on a statement outside the program")
      else Ok r

(* ------------------------------------------------------------------ *)
(* Encode: the byte form an envelope takes on the wire.

   Layout: [version] [client] as varints, [session] as a fixed 4-byte
   LE word, [plan_id] as a varint, an 8-byte LE digest, then the
   report payload.  The session field is fixed-width on purpose: a
   varint would make envelope length a function of the session id, and
   deterministic in-transit damage models pick the byte they flip from
   the envelope length — the same report would then draw different
   reject labels in different sessions, breaking the contract that a
   multiplexed diagnosis is bit-identical to its one-shot counterpart
   (whose session id differs).  The digest is the same
   splitmix-avalanche family as {!checksum} but folded over the
   *encoded bytes* (header fields mixed in first): one pass over the
   wire form covers every field the old full-walk checksum covered,
   because every field is in the bytes.

   Payload field order is chosen so a single forward scan classifies
   rejects in exactly {!validate}'s priority: [r_pt_errors] comes
   first (dropped/damaged-trace beats bad-payload), then the sections
   whose statement ids are range-checked in validate order — executed,
   branches, traps.  {!ingest} exploits this: it scans the bytes
   allocation-free, and only a report that passes every layer is
   materialised into a [Client.report].

   Encoders write through a reusable per-worker {!arena}
   ([Parallel.Pool] gives each domain its own), so steady-state
   encoding allocates only the final immutable string. *)
module Encode = struct
  module W = Hw.Wirebuf

  type arena = { pbuf : Buffer.t; ebuf : Buffer.t }

  let arena () = { pbuf = Buffer.create 4096; ebuf = Buffer.create 4096 }

  let put_kind b (k : Exec.Failure.kind) =
    match k with
    | Exec.Failure.Segfault -> W.put_uint b 1
    | Exec.Failure.Use_after_free -> W.put_uint b 2
    | Exec.Failure.Double_free -> W.put_uint b 3
    | Exec.Failure.Assert_fail s ->
      W.put_uint b 4;
      W.put_string b s
    | Exec.Failure.Deadlock -> W.put_uint b 5
    | Exec.Failure.Hang -> W.put_uint b 6
    | Exec.Failure.Div_by_zero -> W.put_uint b 7
    | Exec.Failure.Type_error s ->
      W.put_uint b 8;
      W.put_string b s

  let get_kind r : Exec.Failure.kind =
    match W.get_uint r with
    | 1 -> Exec.Failure.Segfault
    | 2 -> Exec.Failure.Use_after_free
    | 3 -> Exec.Failure.Double_free
    | 4 -> Exec.Failure.Assert_fail (W.get_string r)
    | 5 -> Exec.Failure.Deadlock
    | 6 -> Exec.Failure.Hang
    | 7 -> Exec.Failure.Div_by_zero
    | 8 -> Exec.Failure.Type_error (W.get_string r)
    | _ -> raise W.Short

  let skip_kind r =
    match W.get_uint r with
    | 4 | 8 -> W.skip_string r
    | n when n >= 1 && n <= 7 -> ()
    | _ -> raise W.Short

  let put_list b f l =
    W.put_uint b (List.length l);
    List.iter (f b) l

  let get_list r f = List.init (W.get_uint r) (fun _ -> f r)

  let put_pt_error b (tid, (e : Hw.Pt.error)) =
    W.put_uint b tid;
    match e with
    | Hw.Pt.Empty_stream -> W.put_uint b 1
    | Hw.Pt.Truncated -> W.put_uint b 2
    | Hw.Pt.Bad_target pc ->
      W.put_uint b 3;
      W.put_int b pc
    | Hw.Pt.Malformed_packet m ->
      W.put_uint b 4;
      W.put_string b m

  let get_pt_error r =
    let tid = W.get_uint r in
    let e : Hw.Pt.error =
      match W.get_uint r with
      | 1 -> Hw.Pt.Empty_stream
      | 2 -> Hw.Pt.Truncated
      | 3 -> Hw.Pt.Bad_target (W.get_int r)
      | 4 -> Hw.Pt.Malformed_packet (W.get_string r)
      | _ -> raise W.Short
    in
    (tid, e)

  let put_report b (r : Client.report) =
    W.put_int b r.Client.r_seed;
    (* pt errors lead the payload: see the module comment. *)
    put_list b put_pt_error r.Client.r_pt_errors;
    (match r.Client.r_outcome with
     | Exec.Interp.Success -> W.put_uint b 1
     | Exec.Interp.Failed rep ->
       W.put_uint b 2;
       put_kind b rep.Exec.Failure.kind;
       W.put_int b rep.Exec.Failure.pc;
       W.put_uint b rep.Exec.Failure.tid;
       put_list b W.put_string rep.Exec.Failure.stack;
       W.put_string b rep.Exec.Failure.message);
    (match r.Client.r_signature with
     | None -> W.put_uint b 0
     | Some s ->
       W.put_uint b 1;
       W.put_string b s.Exec.Failure.s_kind;
       W.put_int b s.Exec.Failure.s_pc;
       put_list b W.put_string s.Exec.Failure.s_stack);
    (* Executed statements, per thread: iids are delta-encoded against
       their predecessor — control flow is local, so deltas are mostly
       one byte. *)
    put_list b
      (fun b (tid, iids) ->
        W.put_uint b tid;
        W.put_uint b (List.length iids);
        ignore
          (List.fold_left
             (fun last iid ->
               W.put_int b (iid - last);
               iid)
             0 iids))
      r.Client.r_executed;
    put_list b
      (fun b ((iid : int), taken) ->
        W.put_int b iid;
        W.put_bool b taken)
      r.Client.r_branches;
    put_list b
      (fun b (t : Hw.Watchpoint.trap) ->
        W.put_uint b t.Hw.Watchpoint.w_seq;
        W.put_uint b t.Hw.Watchpoint.w_tid;
        W.put_int b t.Hw.Watchpoint.w_iid;
        W.put_int b t.Hw.Watchpoint.w_addr;
        W.put_bool b (t.Hw.Watchpoint.w_rw = Exec.Interp.Write);
        W.put_value b t.Hw.Watchpoint.w_value)
      r.Client.r_traps;
    (let c = r.Client.r_counters in
     W.put_uint b c.Exec.Cost.instrs;
     W.put_uint b c.Exec.Cost.branches;
     W.put_uint b c.Exec.Cost.mem_accesses;
     W.put_uint b c.Exec.Cost.sched_switches;
     W.put_uint b c.Exec.Cost.pt_packets;
     W.put_uint b c.Exec.Cost.pt_bytes;
     W.put_uint b c.Exec.Cost.pt_toggles;
     W.put_uint b c.Exec.Cost.wp_traps;
     W.put_uint b c.Exec.Cost.wp_arms;
     W.put_uint b c.Exec.Cost.rr_events;
     W.put_uint b c.Exec.Cost.sw_trace_events);
    W.put_float b r.Client.r_overhead_pct;
    W.put_float b r.Client.r_base_cycles;
    W.put_float b r.Client.r_extra_cycles;
    W.put_uint b r.Client.r_steps

  let get_report r : Client.report =
    let r_seed = W.get_int r in
    let r_pt_errors = get_list r get_pt_error in
    let r_outcome =
      match W.get_uint r with
      | 1 -> Exec.Interp.Success
      | 2 ->
        let kind = get_kind r in
        let pc = W.get_int r in
        let tid = W.get_uint r in
        let stack = get_list r W.get_string in
        let message = W.get_string r in
        Exec.Interp.Failed
          { Exec.Failure.kind; pc; tid; stack; message }
      | _ -> raise W.Short
    in
    let r_signature =
      match W.get_uint r with
      | 0 -> None
      | 1 ->
        let s_kind = W.get_string r in
        let s_pc = W.get_int r in
        let s_stack = get_list r W.get_string in
        Some { Exec.Failure.s_kind; s_pc; s_stack }
      | _ -> raise W.Short
    in
    let r_executed =
      get_list r (fun r ->
          let tid = W.get_uint r in
          let n = W.get_uint r in
          let last = ref 0 in
          let iids =
            List.init n (fun _ ->
                last := !last + W.get_int r;
                !last)
          in
          (tid, iids))
    in
    let r_branches =
      get_list r (fun r ->
          let iid = W.get_int r in
          let taken = W.get_bool r in
          (iid, taken))
    in
    let r_traps =
      get_list r (fun r ->
          let w_seq = W.get_uint r in
          let w_tid = W.get_uint r in
          let w_iid = W.get_int r in
          let w_addr = W.get_int r in
          let w_rw =
            if W.get_bool r then Exec.Interp.Write else Exec.Interp.Read
          in
          let w_value = W.get_value r in
          Hw.Watchpoint.{ w_seq; w_tid; w_iid; w_addr; w_rw; w_value })
    in
    let c = Exec.Cost.create () in
    c.Exec.Cost.instrs <- W.get_uint r;
    c.Exec.Cost.branches <- W.get_uint r;
    c.Exec.Cost.mem_accesses <- W.get_uint r;
    c.Exec.Cost.sched_switches <- W.get_uint r;
    c.Exec.Cost.pt_packets <- W.get_uint r;
    c.Exec.Cost.pt_bytes <- W.get_uint r;
    c.Exec.Cost.pt_toggles <- W.get_uint r;
    c.Exec.Cost.wp_traps <- W.get_uint r;
    c.Exec.Cost.wp_arms <- W.get_uint r;
    c.Exec.Cost.rr_events <- W.get_uint r;
    c.Exec.Cost.sw_trace_events <- W.get_uint r;
    let r_overhead_pct = W.get_float r in
    let r_base_cycles = W.get_float r in
    let r_extra_cycles = W.get_float r in
    let r_steps = W.get_uint r in
    {
      Client.r_seed;
      r_outcome;
      r_signature;
      r_executed;
      r_branches;
      r_traps;
      r_counters = c;
      r_overhead_pct;
      r_base_cycles;
      r_extra_cycles;
      r_steps;
      r_pt_errors;
    }

  (* Digest of the payload bytes (from [pos]) with the header fields
     mixed in first; 62 bits, so the fixed 8-byte field holds it
     exactly.  A range fold, not [String.sub] + fold: the verifying
     side must not copy the payload just to hash it.  Folds a 32-bit
     little-endian word per step (byte tail last): a word fits a
     63-bit int with no truncation, so every payload bit reaches the
     hash — a wider word would shed its top bits into [step]'s 62-bit
     mask and leave them unprotected.  The digest is verified on
     every delivery, so its cost is the floor of {!check}. *)
  let digest ?(pos = 0) ~client ~session ~plan_id payload =
    let h = ref (mix (mix (mix (mix 0x77A9 version) client) session) plan_id) in
    let n = String.length payload in
    let i = ref pos in
    while !i + 4 <= n do
      h :=
        step !h (Int32.to_int (String.get_int32_le payload !i) land 0xFFFFFFFF);
      i := !i + 4
    done;
    while !i < n do
      h := step !h (Char.code (String.unsafe_get payload !i));
      incr i
    done;
    mix !h (n - pos)

  (* [encode a ~client ~plan_id report] seals a report into its wire
     bytes.  [a]'s buffers are reused across calls: the only per-call
     allocation that survives is the returned string. *)
  let encode a ?(session = 0) ~client ~plan_id report =
    Buffer.clear a.pbuf;
    put_report a.pbuf report;
    let payload = Buffer.contents a.pbuf in
    Buffer.clear a.ebuf;
    W.put_uint a.ebuf version;
    W.put_uint a.ebuf client;
    Buffer.add_int32_le a.ebuf (Int32.of_int session);
    W.put_uint a.ebuf plan_id;
    Buffer.add_int64_le a.ebuf
      (Int64.of_int (digest ~client ~session ~plan_id payload));
    Buffer.add_string a.ebuf payload;
    Buffer.contents a.ebuf

  let get_digest r =
    if r.W.pos + 8 > r.W.limit then raise W.Short;
    let bits = String.get_int64_le r.W.src r.W.pos in
    r.W.pos <- r.W.pos + 8;
    Int64.to_int bits

  (* The digest field of an already-encoded envelope, re-read from the
     bytes (it was computed once by {!encode}): what a crash-only
     journal folds into its accepted-report audit without paying a
     second payload walk.  Raises [W.Short] on bytes shorter than an
     envelope header. *)
  let wire_digest bytes =
    let r = W.reader bytes in
    ignore (W.get_uint r) (* version *);
    ignore (W.get_uint r) (* client *);
    r.W.pos <- r.W.pos + 4 (* session *);
    if r.W.pos > r.W.limit then raise W.Short;
    ignore (W.get_uint r) (* plan_id *);
    get_digest r

  let get_session r =
    if r.W.pos + 4 > r.W.limit then raise W.Short;
    let v = Int32.to_int (String.get_int32_le r.W.src r.W.pos) land 0xFFFFFFFF in
    r.W.pos <- r.W.pos + 4;
    v

  (* Allocation-free forward scan of the payload: returns the first
     reject the bytes justify, in exactly {!validate}'s priority
     order, without materialising a single list. *)
  let scan_payload ~n_instrs (r : W.reader) =
    ignore (W.get_int r) (* seed *);
    let n_errs = W.get_uint r in
    if n_errs > 0 then begin
      let tid = W.get_uint r in
      match W.get_uint r with
      | 1 -> Error (Dropped_trace tid)
      | tag ->
        let detail : Hw.Pt.error =
          match tag with
          | 2 -> Hw.Pt.Truncated
          | 3 -> Hw.Pt.Bad_target (W.get_int r)
          | 4 -> Hw.Pt.Malformed_packet (W.get_string r)
          | _ -> raise W.Short
        in
        Error
          (Damaged_trace
             (Printf.sprintf "thread %d: %s" tid
                (Hw.Pt.error_to_string detail)))
    end
    else begin
      (match W.get_uint r with
       | 1 -> ()
       | 2 ->
         skip_kind r;
         ignore (W.get_int r);
         ignore (W.get_uint r);
         let n = W.get_uint r in
         for _ = 1 to n do
           W.skip_string r
         done;
         W.skip_string r
       | _ -> raise W.Short);
      (match W.get_uint r with
       | 0 -> ()
       | 1 ->
         W.skip_string r;
         ignore (W.get_int r);
         let n = W.get_uint r in
         for _ = 1 to n do
           W.skip_string r
         done
       | _ -> raise W.Short);
      let ok = ref true in
      let n_threads = W.get_uint r in
      for _ = 1 to n_threads do
        ignore (W.get_uint r);
        let n = W.get_uint r in
        let last = ref 0 in
        for _ = 1 to n do
          last := !last + W.get_int r;
          if !last < 0 || !last >= n_instrs then ok := false
        done
      done;
      if not !ok then Error (Bad_payload "executed statement outside the program")
      else begin
        let n = W.get_uint r in
        for _ = 1 to n do
          let iid = W.get_int r in
          ignore (W.get_bool r);
          if iid < 0 || iid >= n_instrs then ok := false
        done;
        if not !ok then
          Error (Bad_payload "branch outcome on a statement outside the program")
        else begin
          let n = W.get_uint r in
          for _ = 1 to n do
            ignore (W.get_uint r);
            ignore (W.get_uint r);
            let iid = W.get_int r in
            ignore (W.get_int r);
            ignore (W.get_bool r);
            W.skip_value r;
            if iid < 0 || iid >= n_instrs then ok := false
          done;
          if not !ok then
            Error
              (Bad_payload "watchpoint trap on a statement outside the program")
          else begin
            (* Tail sections: 11 counter varints, 3 floats, steps. *)
            for _ = 1 to 11 do
              ignore (W.get_uint r)
            done;
            W.skip_float r;
            W.skip_float r;
            W.skip_float r;
            ignore (W.get_uint r);
            Ok ()
          end
        end
      end
    end

  (* Every validation layer over the wire form, without materialising
     the report: [Ok] carries the payload offset so {!ingest} can
     decode without rescanning the header. *)
  let scan ?(session = 0) ~n_instrs ~plan_id bytes =
    try
      let r = W.reader bytes in
      let v = W.get_uint r in
      if v <> version then Error (Bad_version v)
      else begin
        let client = W.get_uint r in
        let got_session = get_session r in
        let got_plan = W.get_uint r in
        let d = get_digest r in
        let payload_start = r.W.pos in
        if
          digest ~pos:payload_start ~client ~session:got_session
            ~plan_id:got_plan bytes
          <> d
        then Error Bad_checksum
        else if got_session <> session then
          Error (Wrong_session { expected = session; got = got_session })
        else if got_plan <> plan_id then
          Error (Stale_plan { expected = plan_id; got = got_plan })
        else
          match scan_payload ~n_instrs r with
          | Error rej -> Error rej
          | Ok () ->
            if not (W.eof r) then Error (Bad_payload "trailing envelope bytes")
            else Ok payload_start
      end
    with W.Short -> Error (Bad_payload "truncated envelope")

  let check ?(session = 0) ~n_instrs ~plan_id bytes =
    match scan ~session ~n_instrs ~plan_id bytes with
    | Ok (_ : int) -> Ok ()
    | Error _ as e -> e

  (* [ingest ~n_instrs ~plan_id bytes] is {!validate} over the wire
     form: one allocation-free scan classifies the reject (same
     layering, same priority), and only an accepted report is
     materialised. *)
  let ingest ?(session = 0) ~n_instrs ~plan_id bytes =
    match scan ~session ~n_instrs ~plan_id bytes with
    | Error rej -> Error rej
    | Ok payload_start -> (
      try Ok (get_report (W.reader ~pos:payload_start bytes))
      with W.Short -> Error (Bad_payload "truncated envelope"))
end
