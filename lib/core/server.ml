(* The Gist server: static slicing, adaptive slice tracking (AsT),
   slice refinement from client reports, statistical predictor ranking,
   and failure-sketch construction (paper Fig. 2, steps 1, 3, 5).

   AsT (§3.2.1): track sigma statements backward from the failure;
   double sigma each iteration until the developer (the [oracle]
   callback) judges the sketch sufficient. *)

open Ir.Types
module IntSet = Set.Make (Int)

(* Why the adaptive stopping rule cut work short (PR 7).  [Separated]:
   a checkpoint inside the iteration found the top predictor's F_beta
   lower confidence bound above every rival's upper bound, so the rest
   of the iteration's budget was skipped.  [Converged]: the same
   predictor won two consecutive non-degraded iterations with
   separation, so the remaining sigma doublings were skipped and the
   diagnosis stopped. *)
type early_exit = Separated | Converged

let early_exit_label = function
  | Separated -> "separated"
  | Converged -> "converged"

type iteration_info = {
  it_sigma : int;
  it_tracked : int;
  it_fails : int;
  it_succs : int;
  it_clients : int;
  it_avg_overhead : float;
  it_oracle_pass : bool;
  it_dispatched : int;   (* dispatches, including retries *)
  it_lost : int;         (* crashed / dropped / timed-out dispatches *)
  it_rejected : int;     (* reports refused by validation *)
  it_retried : int;      (* re-dispatches after a loss or rejection *)
  it_quarantined : int;  (* slots abandoned after [max_retries] *)
  it_degraded : bool;    (* valid reports stayed below quorum *)
  it_early_exit : early_exit option; (* adaptive stopping-rule verdict *)
}

(* Fleet-protocol health across the whole diagnosis. *)
type fleet_stats = {
  f_dispatched : int;
  f_delivered : int;     (* reports that arrived (valid + rejected) *)
  f_valid : int;
  f_lost : int;
  f_rejected : int;
  f_retried : int;
  f_quarantined : int;
  f_degraded_iters : int;
  f_by_kind : (string * int) list;   (* injected fault kind -> count *)
  f_by_reason : (string * int) list; (* rejection reason -> count *)
}

(* How valid reports feed refinement and ranking.

   [Streaming] is the production path: each accepted report is folded
   into per-predictor sufficient statistics ([Predict.Stats.Acc]) and
   the confirmed/discovered sets the moment it is consumed, then
   dropped -- server state per iteration is O(slice), not O(fleet).

   [Retained] is the reference oracle (kept like [Exec.Refinterp]):
   every accepted report is retained and refinement replays the
   original batch loop.  Both paths share the wire protocol, fault
   regime and slot ordering, so a differential test can demand
   identical diagnoses. *)
type ingest_mode = Streaming | Retained

(* What one valid slot contributes, precomputed on the worker so the
   in-order consume fold stays O(1) per slot.  [sv_report] rides along
   whole: the last matching one becomes the representative failing run
   (everything else about it is dropped at consume). *)
type slot_valid = {
  sv_report : Client.report;
  sv_matches : bool;    (* failed with the target signature *)
  sv_relevant : bool;   (* matching failure or success: feeds refinement *)
  sv_confirmed : IntSet.t;          (* tracked statements it executed *)
  sv_discovered : int list;         (* trapped statements outside tracked *)
  sv_predictors : Predict.Predictor.t list;
}

type diagnosis = {
  sketch : Fsketch.Sketch.t;
  slice : Slicing.Slicer.t;
  iterations : int;
  recurrences : int;     (* matching failing runs consumed by AsT *)
  total_runs : int;      (* monitored production runs *)
  avg_overhead_pct : float; (* fleet-wide: aggregate extra / aggregate base *)
  offline_time_s : float; (* static analysis + instrumentation time *)
  online_time_s : float;  (* simulated fleet wall-clock, incl. retry backoff *)
  final_sigma : int;
  tracked : iid list;     (* statements tracked in the last iteration *)
  trace : iteration_info list; (* per-AsT-iteration progress *)
  fleet : fleet_stats;
}

(* Find the first production failure (unmonitored runs): what a
   coredump/stack-trace report gives the developer to start from. *)
let first_failure ?(max_runs = 2000) ?(preempt_prob = 0.35)
    ?(max_steps = 400_000) program workload_of =
  let rec go k =
    if k >= max_runs then None
    else
      let result =
        Exec.Interp.run ~max_steps ~preempt_prob program (workload_of k)
      in
      match result.outcome with
      | Exec.Interp.Failed rep -> Some rep
      | Exec.Interp.Success -> go (k + 1)
  in
  go 0

(* Split watchpoint targets into rotation groups of at most
   [wp_capacity]; client [c] arms group [c mod n_groups] (§3.2.3's
   cooperative approach when targets exceed the debug registers). *)
let wp_groups ~wp_capacity targets =
  if wp_capacity <= 0 then
    invalid_arg
      (Printf.sprintf "Server.wp_groups: wp_capacity must be positive (got %d)"
         wp_capacity);
  let rec chunks = function
    | [] -> []
    | l ->
      let rec take k = function
        | x :: tl when k > 0 ->
          let a, b = take (k - 1) tl in
          (x :: a, b)
        | rest -> ([], rest)
      in
      let g, rest = take wp_capacity l in
      g :: chunks rest
  in
  match chunks targets with [] -> [ [] ] | gs -> gs

(* One encode arena per domain: workers (and the helping caller) reuse
   their buffers across every slot they run. *)
let enc_arena = Parallel.Pool.worker_local (fun () -> Protocol.Encode.arena ())

let diagnose ?(config = Config.default) ?(pool = Parallel.Pool.sequential)
    ?(ingest = Streaming) ?oracle ~bug_name ~failure_type ~program ~workload_of
    ~(failure : Exec.Failure.report) () =
  let config = Config.check config in
  let t_offline0 = Sys.time () in
  (* Compile the program once up front (memoised in [Analysis.Cache]):
     every client run and PT decode below then hits the cache, and the
     one-time lowering cost is charged to the offline phase where it
     belongs, not to the first monitored client. *)
  ignore (Analysis.Cache.lowered program);
  (* Exclusive upper bound on valid statement ids for payload
     validation (iids are 1-based, so this is max iid + 1, not the
     instruction count). *)
  let n_instrs =
    1
    + List.fold_left
        (fun m (i : Ir.Types.instr) -> max m i.iid)
        0
        (Ir.Program.all_instrs program)
  in
  let slice = Slicing.Slicer.compute program failure in
  let target_sig = Exec.Failure.signature failure in
  let streaming = ingest = Streaming in
  (* The adaptive stopping rule needs the streaming sufficient
     statistics even in retained mode, so its decisions are identical
     in both ingest modes (the retained ranking itself still comes
     from the replayed observations). *)
  let early = config.Config.early_exit in
  let offline_time = ref (Sys.time () -. t_offline0) in
  let t_online0 = Sys.time () in
  let sigma = ref config.Config.sigma0 in
  let discovered = ref IntSet.empty in
  let confirmed = ref IntSet.empty in
  (* Ranking state.  Streaming: sufficient statistics, O(predictors).
     Retained (oracle): the observation list the original loop kept. *)
  let acc = Predict.Stats.Acc.create () in
  let observations = ref [] in
  let repr_failing : Client.report option ref = ref None in
  let base_cycles = ref 0.0 and extra_cycles = ref 0.0 in
  (* Per-iteration overhead samples, in consume order, in a float
     array reused across iterations (capacity only ever grows).  The
     average is summed newest-first — the exact order the old
     newest-first list fold used — so the reported float is
     bit-identical to the retained path. *)
  let ov_buf = ref (Array.make 256 0.0) in
  let ov_len = ref 0 in
  let ov_push x =
    if !ov_len = Array.length !ov_buf then begin
      let bigger = Array.make (2 * !ov_len) 0.0 in
      Array.blit !ov_buf 0 bigger 0 !ov_len;
      ov_buf := bigger
    end;
    !ov_buf.(!ov_len) <- x;
    incr ov_len
  in
  let ov_avg () =
    if !ov_len = 0 then 0.0
    else begin
      let s = ref 0.0 in
      for i = !ov_len - 1 downto 0 do
        s := !s +. !ov_buf.(i)
      done;
      !s /. float_of_int !ov_len
    end
  in
  let recurrences = ref 0 in
  let total_runs = ref 0 in
  let client_counter = ref 0 in
  let iteration = ref 0 in
  let best_sketch = ref None in
  let slice_size = Slicing.Slicer.instr_count slice in
  let stop = ref false in
  let trace = ref [] in
  (* Fleet-protocol accounting (faults, rejections, retries). *)
  let rates = config.Config.fault_rates in
  let f_dispatched = ref 0 and f_valid = ref 0 and f_lost = ref 0 in
  let f_rejected = ref 0 and f_retried = ref 0 in
  let f_quarantined = ref 0 and f_degraded = ref 0 in
  let by_kind : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let by_reason : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let bump tbl k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  let sim_delay = ref 0.0 in
  (* Convergence tracking for the adaptive rule: the predictor that
     held separation at the end of the previous iteration, and for how
     many consecutive non-degraded iterations it has held. *)
  let prev_winner : Predict.Predictor.t option ref = ref None in
  let win_streak = ref 0 in
  (* Previous iteration's (plan, digest, rotation groups): what a
     stale client runs under. *)
  let prev_plan = ref None in
  while not !stop do
    incr iteration;
    (* --- offline: choose the tracked portion, build the patch --- *)
    let t0 = Sys.time () in
    let tracked =
      List.sort_uniq compare
        (Slicing.Slicer.take slice !sigma @ IntSet.elements !discovered)
    in
    let plan =
      Instrument.Place.compute ~enable_cf:config.enable_cf
        ~enable_df:config.enable_df program tracked
    in
    (* Client [c] arms rotation group [c mod n]: precomputed as an
       array -- the per-client [List.nth] lookup was O(groups) on the
       fleet hot path. *)
    let groups =
      Array.of_list
        (wp_groups ~wp_capacity:config.wp_capacity
           plan.Instrument.Plan.wp_targets)
    in
    let plan_id = Instrument.Plan.id plan in
    let prev = !prev_plan in
    offline_time := !offline_time +. (Sys.time () -. t0);
    (* --- online: gather monitored failing and successful runs ---

       Fleet slots are dispatched in batches across [pool]; each slot
       -- its run, any injected faults, retries with exponential
       backoff, and protocol validation -- is a pure function of (slot
       index, plan), so speculative surplus slots are discarded without
       trace.  All accounting happens in [consume], in slot order,
       making quotas, recurrence counts and the representative failing
       run bit-identical to the sequential loop at any pool size, with
       or without fault injection. *)
    let fails = ref 0 and succs = ref 0 and clients = ref 0 in
    ov_len := 0;
    let iter_reports = ref [] in
    let it_dispatched = ref 0 and it_lost = ref 0 and it_rejected = ref 0 in
    let it_retried = ref 0 and it_quarantined = ref 0 and it_valid = ref 0 in
    (* Set when a checkpoint separates the top predictor: the rest of
       the iteration's budget is skipped. *)
    let it_exited = ref false in
    let quota_open () = !fails < config.fail_quota || !succs < config.succ_quota in
    let below_quorum v s =
      s > 0 && float_of_int v < config.Config.quorum_frac *. float_of_int s
    in
    let tracked_set = IntSet.of_list tracked in
    (* One fleet slot: dispatch, injected faults, bounded retry with
       exponential backoff in simulated fleet time, quarantine once
       [max_retries] re-dispatches are spent.  A crashed client, a
       dropped report and a straggler all look the same to the server
       (nothing arrives by the deadline), so each costs a full
       [straggler_timeout_s] wait and the run itself is skipped --
       nothing it produced could have arrived. *)
    let run_slot c =
      let lost = ref 0 and rejects = ref [] and kinds = ref [] in
      let delay = ref 0.0 in
      let valid = ref None in
      let attempt = ref 0 in
      let quarantined = ref false in
      let running = ref true in
      while !running do
        let inj =
          Faults.Fault.draw rates ~seed:config.Config.fault_seed ~client:c
            ~attempt:!attempt
        in
        (if
           inj.Faults.Fault.j_crash || inj.Faults.Fault.j_drop
           || inj.Faults.Fault.j_straggler
         then begin
           incr lost;
           delay := !delay +. config.Config.straggler_timeout_s;
           kinds :=
             (if inj.Faults.Fault.j_crash then Faults.Fault.Crash
              else if inj.Faults.Fault.j_drop then Faults.Fault.Drop
              else Faults.Fault.Straggler)
             :: !kinds
         end
         else begin
           (* A stale client runs under the previous iteration's plan
              and rotation, and seals with that plan's digest; the
              server's freshness check rejects the report.  On the
              first iteration there is no previous plan to be stale
              against. *)
           let stale = inj.Faults.Fault.j_stale_plan && prev <> None in
           let use_plan, use_plan_id, use_groups =
             if stale then Option.get prev else (plan, plan_id, groups)
           in
           if stale then kinds := Faults.Fault.Stale_plan :: !kinds;
           (* Ring damage lands on the encoded bytes ([Hw.Pt.Wire]),
              the form the ring actually takes on a client. *)
           let tamper =
             match
               (inj.Faults.Fault.j_pt_truncate, inj.Faults.Fault.j_pt_corrupt)
             with
             | None, None -> None
             | tr, co ->
               Some
                 (fun ~tid bytes ->
                   let bytes =
                     match tr with
                     | Some salt ->
                       Faults.Tamper.truncate_wire
                         ~salt:(Faults.Fault.mix salt tid) bytes
                     | None -> bytes
                   in
                   match co with
                   | Some salt ->
                     Faults.Tamper.corrupt_wire_packets
                       ~salt:(Faults.Fault.mix salt tid) ~n_instrs bytes
                   | None -> bytes)
           in
           if inj.Faults.Fault.j_pt_truncate <> None then
             kinds := Faults.Fault.Pt_truncate :: !kinds;
           if inj.Faults.Fault.j_pt_corrupt <> None then
             kinds := Faults.Fault.Pt_corrupt :: !kinds;
           let n_g = Array.length use_groups in
           let report =
             Client.run_one ~wp_capacity:config.wp_capacity
               ~preempt_prob:config.preempt_prob ~max_steps:config.max_steps
               ~data_source:config.data_source ~redact:config.redact_values
               ?tamper ~plan:use_plan ~wp_allowed:use_groups.(c mod n_g)
               program (workload_of c)
           in
           (* Watchpoint-log corruption: either in-ring (pre-seal, so
              the digest matches the damaged payload and only the
              semantic range check can catch it) or in transit
              (post-seal: a bit flips in the sealed envelope bytes,
              caught by the digest).  Both validation layers stay
              exercised under any fault mix. *)
           let report, flip_salt =
             match inj.Faults.Fault.j_wp_corrupt with
             | None -> (report, None)
             | Some salt ->
               kinds := Faults.Fault.Wp_corrupt :: !kinds;
               if Faults.Tamper.wp_corrupt_in_transit ~salt then
                 (report, Some salt)
               else
                 ( {
                     report with
                     Client.r_traps =
                       Faults.Tamper.corrupt_traps ~salt ~n_instrs
                         report.Client.r_traps;
                   },
                   None )
           in
           (* The client→server hop is bytes: seal into the wire
              envelope (through this domain's reusable arena), damage
              in transit if drawn, then validate with the single-pass
              streaming scan.  Only an accepted report is ever
              materialised back into a record. *)
           let bytes =
             Protocol.Encode.encode (enc_arena ()) ~client:c
               ~plan_id:use_plan_id report
           in
           let bytes =
             match flip_salt with
             | Some salt -> Faults.Tamper.flip_wire_byte ~salt bytes
             | None -> bytes
           in
           match Protocol.Encode.ingest ~n_instrs ~plan_id bytes with
           | Ok r ->
             let sv_matches = r.Client.r_signature = Some target_sig in
             let sv_relevant = sv_matches || r.Client.r_signature = None in
             (* Refinement inputs, precomputed here so the slot-order
                consume fold is O(1) per slot.  The retained oracle
                recomputes them from the kept reports instead. *)
             let sv_confirmed =
               if streaming && sv_matches then
                 IntSet.inter tracked_set
                   (IntSet.of_list (Client.executed_set r))
               else IntSet.empty
             in
             let sv_discovered =
               if streaming && sv_relevant then
                 List.filter_map
                   (fun (w : Hw.Watchpoint.trap) ->
                     if IntSet.mem w.Hw.Watchpoint.w_iid tracked_set then None
                     else Some w.Hw.Watchpoint.w_iid)
                   r.Client.r_traps
               else []
             in
             let sv_predictors =
               if (streaming || early) && sv_relevant then
                 Predict.Predictor.of_run ~ranges:config.range_predicates
                   ~tracked ~branch_outcomes:r.Client.r_branches
                   ~traps:r.Client.r_traps ()
               else []
             in
             valid :=
               Some
                 {
                   sv_report = r;
                   sv_matches;
                   sv_relevant;
                   sv_confirmed;
                   sv_discovered;
                   sv_predictors;
                 };
             running := false
           | Error rej -> rejects := rej :: !rejects
         end);
        if !running then
          if !attempt >= config.Config.max_retries then begin
            quarantined := true;
            running := false
          end
          else begin
            delay :=
              !delay
              +. (config.Config.retry_backoff_s *. (2.0 ** float_of_int !attempt));
            incr attempt
          end
      done;
      ( !valid,
        !attempt + 1,
        !lost,
        List.rev !rejects,
        List.rev !kinds,
        !delay,
        !quarantined )
    in
    let run_pass () =
      let base = !client_counter in
      let pass_valid = ref 0 and pass_slots = ref 0 in
      let budget = config.max_clients_per_iter - !clients in
      let consumed =
        if budget <= 0 || not (quota_open ()) || !it_exited then 0
        else
          Parallel.Pool.map_until pool
            ~next:(fun i ->
              if i >= budget then None
              else
                let c = base + i in
                Some (fun () -> run_slot c))
            ~consume:(fun _
                          ( valid,
                            attempts,
                            lost,
                            rejects,
                            kinds,
                            delay,
                            quarantined ) ->
              incr clients;
              incr pass_slots;
              it_dispatched := !it_dispatched + attempts;
              it_lost := !it_lost + lost;
              it_rejected := !it_rejected + List.length rejects;
              it_retried := !it_retried + (attempts - 1);
              if quarantined then incr it_quarantined;
              sim_delay := !sim_delay +. delay;
              (* Runs that executed (everything but lost dispatches)
                 are monitored production runs, valid or not. *)
              total_runs := !total_runs + (attempts - lost);
              List.iter (fun k -> bump by_kind (Faults.Fault.kind_name k)) kinds;
              List.iter
                (fun rej -> bump by_reason (Protocol.reject_label rej))
                rejects;
              (match valid with
               | None -> ()
               | Some sv ->
                 let report = sv.sv_report in
                 incr pass_valid;
                 incr it_valid;
                 ov_push report.Client.r_overhead_pct;
                 base_cycles := !base_cycles +. report.r_base_cycles;
                 extra_cycles := !extra_cycles +. report.r_extra_cycles;
                 if sv.sv_matches then begin
                   (* Recurrences (the Table 1 latency metric) count
                      only the failing runs AsT actually needed, not
                      surplus failures that happen while waiting for
                      enough successful runs. *)
                   if !fails < config.fail_quota then incr recurrences;
                   incr fails;
                   repr_failing := Some report
                 end
                 else if report.Client.r_signature = None then incr succs;
                 (* Other failures are different bugs: ignored here. *)
                 if sv.sv_relevant then begin
                   if streaming then begin
                     (* Fold the slot's contribution the moment it is
                        accepted, in slot order; the report itself is
                        dropped (only [repr_failing] retains one). *)
                     confirmed := IntSet.union !confirmed sv.sv_confirmed;
                     List.iter
                       (fun iid -> discovered := IntSet.add iid !discovered)
                       sv.sv_discovered
                   end
                   else
                     iter_reports := (report, sv.sv_matches) :: !iter_reports;
                   if streaming || early then
                     Predict.Stats.Acc.add acc
                       Predict.Stats.
                         {
                           predictors = sv.sv_predictors;
                           failing = sv.sv_matches;
                         }
                 end);
              (* Adaptive checkpoint: at fixed consumed-slot boundaries
                 (report counts, never wall-clock, so the decision is
                 bit-identical at any [--jobs]), and only while the
                 iteration's valid fraction holds quorum (lost reports
                 bias the counts -- never stop early on a sample the
                 faults thinned out), stop gathering the moment the
                 bound separates the leader. *)
              if
                early && (not !it_exited)
                && !clients mod config.Config.checkpoint_every = 0
                && not (below_quorum !it_valid !clients)
                && Predict.Stats.Acc.separated
                     ~delta:config.Config.separation_delta acc
                   <> None
              then it_exited := true;
              (not !it_exited)
              && quota_open ()
              && !clients < config.max_clients_per_iter)
            ()
      in
      client_counter := base + consumed;
      (!pass_valid, !pass_slots)
    in
    (* Quorum with graceful degradation: if fewer than [quorum_frac]
       of a pass's slots delivered a valid report, re-run once with
       fresh clients (lost and rejected slots stay consumed); if the
       fleet still cannot reach quorum the iteration is degraded and
       sigma is carried forward instead of doubled -- never steer AsT
       from a sample the faults have thinned out. *)
    let v1, s1 = run_pass () in
    let degraded =
      if
        below_quorum v1 s1 && quota_open ()
        && !clients < config.max_clients_per_iter
      then begin
        let v2, s2 = run_pass () in
        below_quorum (v1 + v2) (s1 + s2)
      end
      else below_quorum v1 s1
    in
    if degraded then incr f_degraded;
    f_dispatched := !f_dispatched + !it_dispatched;
    f_valid := !f_valid + !it_valid;
    f_lost := !f_lost + !it_lost;
    f_rejected := !f_rejected + !it_rejected;
    f_retried := !f_retried + !it_retried;
    f_quarantined := !f_quarantined + !it_quarantined;
    prev_plan := Some (plan, plan_id, groups);
    (* --- refinement (§3.2): keep tracked statements that executed in
       failing runs; adopt watchpoint-discovered statements the
       alias-free slice missed.

       Streaming mode already folded every accepted report into
       [confirmed]/[discovered]/[acc] at consume time (set unions and
       counter sums commute, so fold-as-they-arrive equals
       fold-at-the-end); this batch replay is the retained oracle's
       path over the reports it kept. --- *)
    if not streaming then
      List.iter
        (fun ((r : Client.report), matches) ->
          if matches then begin
            let executed = IntSet.of_list (Client.executed_set r) in
            confirmed := IntSet.union !confirmed (IntSet.inter tracked_set executed)
          end;
          (* Statements the alias-free slice missed are discovered by any
             monitored run whose watchpoints trap on them -- successful
             runs included (in failing runs the watchpoint may only be
             armed after the racing write already happened). *)
          List.iter
            (fun (w : Hw.Watchpoint.trap) ->
              if not (IntSet.mem w.w_iid tracked_set) then
                discovered := IntSet.add w.w_iid !discovered)
            r.r_traps;
          observations :=
            Predict.Stats.
              {
                predictors =
                  Predict.Predictor.of_run ~ranges:config.range_predicates
                    ~tracked ~branch_outcomes:r.r_branches ~traps:r.r_traps ();
                failing = matches;
              }
            :: !observations)
        !iter_reports;
    (* --- build the sketch from the representative failing run --- *)
    (match !repr_failing with
     | None -> ()
     | Some repr ->
       (* Gist reports program counters as *source lines* (§4), so the
          statement set is closed over source lines: every IR
          instruction on a line one pc hit is part of the sketch. *)
       let core_set =
         IntSet.union !confirmed
           (IntSet.union !discovered (IntSet.singleton failure.pc))
       in
       let lines = Hashtbl.create 16 in
       IntSet.iter
         (fun iid ->
           let l = Ir.Program.loc_of program iid in
           if l.line > 0 then Hashtbl.replace lines (l.file, l.line) ())
         core_set;
       let stmt_set =
         List.fold_left
           (fun acc (i : Ir.Types.instr) ->
             if i.loc.line > 0 && Hashtbl.mem lines (i.loc.file, i.loc.line)
             then IntSet.add i.iid acc
             else acc)
           core_set
           (Ir.Program.all_instrs program)
       in
       let per_thread =
         List.filter_map
           (fun (tid, iids) ->
             let filtered = List.filter (fun iid -> IntSet.mem iid stmt_set) iids in
             if filtered = [] then None else Some (tid, filtered))
           repr.r_executed
       in
       (* [Acc.rank] is bit-identical to [Stats.rank] over the same
          observations (integer counts, total-order sort). *)
       let ranked =
         if streaming then Predict.Stats.Acc.rank acc
         else Predict.Stats.rank !observations
       in
       let sketch =
         Fsketch.Sketch.build ~bug_name ~failure_type ~program
           ~failure ~per_thread ~traps:repr.r_traps ~ranked
       in
       best_sketch := Some sketch;
       (* --- developer decision (§3.2.1): stop AsT or double sigma --- *)
       let satisfied = match oracle with Some f -> f sketch | None -> false in
       if satisfied then stop := true);
    let oracle_stop = !stop in
    (* Convergence across iterations: when the same predictor holds
       separation at the end of two consecutive non-degraded
       iterations, skip the remaining sigma doublings -- the ranking
       has stabilised within the stated confidence.  A degraded
       iteration resets the streak: its counts were thinned by
       faults. *)
    let sep_winner =
      if early && not degraded then
        Predict.Stats.Acc.separated ~delta:config.Config.separation_delta acc
      else None
    in
    (match sep_winner with
     | Some p ->
       (match !prev_winner with
        | Some q when Predict.Predictor.compare p q = 0 -> incr win_streak
        | _ -> win_streak := 1);
       prev_winner := Some p
     | None ->
       win_streak := 0;
       prev_winner := None);
    let converged_now = early && (not !stop) && !win_streak >= 2 in
    if converged_now then stop := true;
    (trace :=
       {
         it_sigma = !sigma;
         it_tracked = List.length tracked;
         it_fails = !fails;
         it_succs = !succs;
         it_clients = !clients;
         it_avg_overhead = ov_avg ();
         it_oracle_pass = oracle_stop;
         it_dispatched = !it_dispatched;
         it_lost = !it_lost;
         it_rejected = !it_rejected;
         it_retried = !it_retried;
         it_quarantined = !it_quarantined;
         it_degraded = degraded;
         it_early_exit =
           (if converged_now then Some Converged
            else if !it_exited then Some Separated
            else None);
       }
       :: !trace);
    if not !stop then begin
      if !iteration >= config.max_iterations then stop := true
      else if degraded then
        (* Degraded mode: hold sigma for another iteration rather than
           doubling on evidence the faults thinned out. *)
        ()
      else if !sigma >= slice_size then stop := true
      else sigma := !sigma * 2
    end
  done;
  let online_time = Sys.time () -. t_online0 -. !offline_time in
  let sketch =
    match !best_sketch with
    | Some s -> s
    | None ->
      (* No monitored failure recurred: the sketch degenerates to the
         failing statement alone. *)
      Fsketch.Sketch.build ~bug_name ~failure_type ~program ~failure
        ~per_thread:[ (failure.tid, [ failure.pc ]) ]
        ~traps:[] ~ranked:[]
  in
  {
    sketch;
    slice;
    iterations = !iteration;
    recurrences = !recurrences;
    total_runs = !total_runs;
    (* When no valid report carried base cycles, every per-run
       overhead was 0/0 = 0 as well, so 0.0 is the old list-average
       fallback without retaining the list. *)
    avg_overhead_pct =
      (if !base_cycles > 0.0 then 100.0 *. !extra_cycles /. !base_cycles
       else 0.0);
    offline_time_s = !offline_time;
    (* Retry backoff and straggler deadlines happen in fleet time, not
       server CPU time: charge them to the online phase. *)
    online_time_s = max online_time 0.0 +. !sim_delay;
    final_sigma = !sigma;
    tracked =
      List.sort_uniq compare
        (Slicing.Slicer.take slice !sigma @ IntSet.elements !discovered);
    trace = List.rev !trace;
    fleet =
      {
        f_dispatched = !f_dispatched;
        f_delivered = !f_dispatched - !f_lost;
        f_valid = !f_valid;
        f_lost = !f_lost;
        f_rejected = !f_rejected;
        f_retried = !f_retried;
        f_quarantined = !f_quarantined;
        f_degraded_iters = !f_degraded;
        f_by_kind =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_kind []
          |> List.sort compare;
        f_by_reason =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_reason []
          |> List.sort compare;
      };
  }

(* Did the adaptive rule stop the whole diagnosis (as opposed to the
   oracle, the iteration cap, or sigma reaching the slice)? *)
let converged d =
  List.exists (fun it -> it.it_early_exit = Some Converged) d.trace
