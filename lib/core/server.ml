(* The Gist server: static slicing, adaptive slice tracking (AsT),
   slice refinement from client reports, statistical predictor ranking,
   and failure-sketch construction (paper Fig. 2, steps 1, 3, 5).

   AsT (§3.2.1): track sigma statements backward from the failure;
   double sigma each iteration until the developer (the [oracle]
   callback) judges the sketch sufficient. *)

open Ir.Types
module IntSet = Set.Make (Int)

(* Why the adaptive stopping rule cut work short (PR 7).  [Separated]:
   a checkpoint inside the iteration found the top predictor's F_beta
   lower confidence bound above every rival's upper bound, so the rest
   of the iteration's budget was skipped.  [Converged]: the same
   predictor won two consecutive non-degraded iterations with
   separation, so the remaining sigma doublings were skipped and the
   diagnosis stopped. *)
type early_exit = Separated | Converged

let early_exit_label = function
  | Separated -> "separated"
  | Converged -> "converged"

type iteration_info = {
  it_sigma : int;
  it_tracked : int;
  it_fails : int;
  it_succs : int;
  it_clients : int;
  it_avg_overhead : float;
  it_oracle_pass : bool;
  it_dispatched : int;   (* dispatches, including retries *)
  it_lost : int;         (* crashed / dropped / timed-out dispatches *)
  it_rejected : int;     (* reports refused by validation *)
  it_retried : int;      (* re-dispatches after a loss or rejection *)
  it_quarantined : int;  (* slots abandoned after [max_retries] *)
  it_degraded : bool;    (* valid reports stayed below quorum *)
  it_early_exit : early_exit option; (* adaptive stopping-rule verdict *)
}

(* Fleet-protocol health across the whole diagnosis. *)
type fleet_stats = {
  f_dispatched : int;
  f_delivered : int;     (* reports that arrived (valid + rejected) *)
  f_valid : int;
  f_lost : int;
  f_rejected : int;
  f_retried : int;
  f_quarantined : int;
  f_degraded_iters : int;
  f_by_kind : (string * int) list;   (* injected fault kind -> count *)
  f_by_reason : (string * int) list; (* rejection reason -> count *)
}

(* How valid reports feed refinement and ranking.

   [Streaming] is the production path: each accepted report is folded
   into per-predictor sufficient statistics ([Predict.Stats.Acc]) and
   the confirmed/discovered sets the moment it is consumed, then
   dropped -- server state per iteration is O(slice), not O(fleet).

   [Retained] is the reference oracle (kept like [Exec.Refinterp]):
   every accepted report is retained and refinement replays the
   original batch loop.  Both paths share the wire protocol, fault
   regime and slot ordering, so a differential test can demand
   identical diagnoses. *)
type ingest_mode = Streaming | Retained

(* What one valid slot contributes, precomputed on the worker so the
   in-order consume fold stays O(1) per slot.  [sv_report] rides along
   whole: the last matching one becomes the representative failing run
   (everything else about it is dropped at consume). *)
type slot_valid = {
  sv_report : Client.report;
  sv_digest : int;      (* the accepted envelope's wire digest *)
  sv_matches : bool;    (* failed with the target signature *)
  sv_relevant : bool;   (* matching failure or success: feeds refinement *)
  sv_confirmed : IntSet.t;          (* tracked statements it executed *)
  sv_discovered : int list;         (* trapped statements outside tracked *)
  sv_predictors : Predict.Predictor.t list;
}

type diagnosis = {
  sketch : Fsketch.Sketch.t;
  slice : Slicing.Slicer.t;
  iterations : int;
  recurrences : int;     (* matching failing runs consumed by AsT *)
  total_runs : int;      (* monitored production runs *)
  avg_overhead_pct : float; (* fleet-wide: aggregate extra / aggregate base *)
  offline_time_s : float; (* static analysis + instrumentation time *)
  online_time_s : float;  (* simulated fleet wall-clock, incl. retry backoff *)
  final_sigma : int;
  tracked : iid list;     (* statements tracked in the last iteration *)
  trace : iteration_info list; (* per-AsT-iteration progress *)
  fleet : fleet_stats;
}

(* Find the first production failure (unmonitored runs): what a
   coredump/stack-trace report gives the developer to start from. *)
let first_failure ?(max_runs = 2000) ?(preempt_prob = 0.35)
    ?(max_steps = 400_000) program workload_of =
  let rec go k =
    if k >= max_runs then None
    else
      let result =
        Exec.Interp.run ~max_steps ~preempt_prob program (workload_of k)
      in
      match result.outcome with
      | Exec.Interp.Failed rep -> Some rep
      | Exec.Interp.Success -> go (k + 1)
  in
  go 0

(* Split watchpoint targets into rotation groups of at most
   [wp_capacity]; client [c] arms group [c mod n_groups] (§3.2.3's
   cooperative approach when targets exceed the debug registers). *)
let wp_groups ~wp_capacity targets =
  if wp_capacity <= 0 then
    invalid_arg
      (Printf.sprintf "Server.wp_groups: wp_capacity must be positive (got %d)"
         wp_capacity);
  let rec chunks = function
    | [] -> []
    | l ->
      let rec take k = function
        | x :: tl when k > 0 ->
          let a, b = take (k - 1) tl in
          (x :: a, b)
        | rest -> ([], rest)
      in
      let g, rest = take wp_capacity l in
      g :: chunks rest
  in
  match chunks targets with [] -> [ [] ] | gs -> gs

(* One encode arena per domain: workers (and the helping caller) reuse
   their buffers across every slot they run. *)
let enc_arena = Parallel.Pool.worker_local (fun () -> Protocol.Encode.arena ())

(* ------------------------------------------------------------------ *)
(* Session: one bug's AsT diagnosis as an event-driven state machine.

   The synchronous [diagnose] loop is inverted so a multi-bug service
   can multiplex many diagnoses over one pool: the session *asks* for
   fleet slots ([need]), hands out pure slot thunks ([grant]), and
   folds the outcomes back in slot order ([deliver]).  Everything
   between slot gathering — plan construction, quorum and degradation,
   refinement, ranking, the sketch, convergence — happens inside
   [need]'s internal advance, so a driver only ever sees "give me N
   slots" or "finished".

   The consume fold is a verbatim transplant of the old
   [Pool.map_until] consume body, with the same slot numbering (a
   pass's slot [i] is client [pass base + i]) and the same stopping
   point: outcomes delivered after the fold stops are discarded
   unconsumed exactly like [map_until]'s speculative surplus, and the
   pass's consumed count includes the outcome whose consume said stop.
   That makes any driver — the one-shot wrapper batching like
   [map_until], or a scheduler interleaving dozens of sessions — fold
   the identical outcome sequence, so every field of the diagnosis but
   host time is bit-identical whatever the multiplexing. *)
module Session = struct
  type need = Slots of int | Finished

  (* What one fleet slot produced: the retry loop's net effect,
     precomputed on the worker so the in-order consume stays O(1). *)
  type outcome = {
    o_valid : slot_valid option;
    o_attempts : int;
    o_lost : int;
    o_rejects : Protocol.reject list;
    o_kinds : Faults.Fault.kind list;
    o_delay : float;
    o_quarantined : bool;
  }

  (* The per-iteration snapshot slot thunks close over.  Immutable:
     thunks outlive [grant] and may run while the session's mutable
     state advances, so nothing here aliases session state. *)
  type ictx = {
    x_tracked : iid list;
    x_tracked_set : IntSet.t;
    x_plan : Instrument.Plan.t;
    x_plan_id : int;
    x_groups : iid list array;
    x_prev : (Instrument.Plan.t * int * iid list array) option;
  }

  (* One gathering pass (pass 1, or the quorum re-run pass 2).
     [g_budget] is the slot budget fixed at pass start; [g_granted]
     slots have been handed out, [g_delivered] outcomes have come
     back, [g_consumed] of those were folded (the rest arrived after
     the fold stopped and were discarded). *)
  type gather = {
    g_ctx : ictx;
    g_base : int;
    g_budget : int;
    g_first : (int * int) option; (* pass 1's (valid, slots) in pass 2 *)
    mutable g_granted : int;
    mutable g_delivered : int;
    mutable g_consumed : int;
    mutable g_stopped : bool;
    mutable g_valid : int;
    mutable g_slots : int;
  }

  type phase = Gathering of gather | Done

  type t = {
    s_id : int;
    config : Config.t;
    bug_name : string;
    failure_type : string;
    program : program;
    workload_of : int -> Exec.Interp.workload;
    failure : Exec.Failure.report;
    oracle : (Fsketch.Sketch.t -> bool) option;
    streaming : bool;
    early : bool;
    n_instrs : int;
    slice : Slicing.Slicer.t;
    slice_size : int;
    target_sig : Exec.Failure.signature;
    t_online0 : float;
    mutable offline_time : float;
    mutable online_time : float;
    (* cross-iteration AsT state *)
    mutable sigma : int;
    mutable discovered : IntSet.t;
    mutable confirmed : IntSet.t;
    acc : Predict.Stats.Acc.t;
    mutable observations : Predict.Stats.observation list;
    mutable repr_failing : Client.report option;
    (* Running fold of accepted-report wire digests, in consume order:
       the audit value a crash-only journal records per round so a
       recovery replay can prove it re-accepted the same reports. *)
    mutable audit : int;
    mutable base_cycles : float;
    mutable extra_cycles : float;
    mutable ov_buf : float array;
    mutable ov_len : int;
    mutable recurrences : int;
    mutable total_runs : int;
    mutable client_counter : int;
    mutable iteration : int;
    mutable best_sketch : Fsketch.Sketch.t option;
    mutable stop : bool;
    mutable trace : iteration_info list;
    mutable f_dispatched : int;
    mutable f_valid : int;
    mutable f_lost : int;
    mutable f_rejected : int;
    mutable f_retried : int;
    mutable f_quarantined : int;
    mutable f_degraded : int;
    by_kind : (string, int) Hashtbl.t;
    by_reason : (string, int) Hashtbl.t;
    mutable sim_delay : float;
    mutable prev_winner : Predict.Predictor.t option;
    mutable win_streak : int;
    mutable prev_plan : (Instrument.Plan.t * int * iid list array) option;
    (* per-iteration state, reset by [begin_iteration] *)
    mutable fails : int;
    mutable succs : int;
    mutable clients : int;
    mutable iter_reports : (Client.report * bool) list;
    mutable it_dispatched : int;
    mutable it_lost : int;
    mutable it_rejected : int;
    mutable it_retried : int;
    mutable it_quarantined : int;
    mutable it_valid : int;
    mutable it_exited : bool;
    mutable phase : phase;
  }

  let id t = t.s_id
  let audit t = t.audit

  let bump tbl k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

  (* Per-iteration overhead samples, in consume order, in a float
     array reused across iterations (capacity only ever grows).  The
     average is summed newest-first — the exact order the old
     newest-first list fold used — so the reported float is
     bit-identical to the retained path. *)
  let ov_push t x =
    if t.ov_len = Array.length t.ov_buf then begin
      let bigger = Array.make (2 * t.ov_len) 0.0 in
      Array.blit t.ov_buf 0 bigger 0 t.ov_len;
      t.ov_buf <- bigger
    end;
    t.ov_buf.(t.ov_len) <- x;
    t.ov_len <- t.ov_len + 1

  let ov_avg t =
    if t.ov_len = 0 then 0.0
    else begin
      let s = ref 0.0 in
      for i = t.ov_len - 1 downto 0 do
        s := !s +. t.ov_buf.(i)
      done;
      !s /. float_of_int t.ov_len
    end

  let quota_open t =
    t.fails < t.config.Config.fail_quota || t.succs < t.config.Config.succ_quota

  let below_quorum t v s =
    s > 0 && float_of_int v < t.config.Config.quorum_frac *. float_of_int s

  (* One fleet slot: dispatch, injected faults, bounded retry with
     exponential backoff in simulated fleet time, quarantine once
     [max_retries] re-dispatches are spent.  A crashed client, a
     dropped report and a straggler all look the same to the server
     (nothing arrives by the deadline), so each costs a full
     [straggler_timeout_s] wait and the run itself is skipped --
     nothing it produced could have arrived.

     Pure in the session's mutable state: everything it reads is fixed
     at [create] or lives in the iteration snapshot [ctx], so a
     scheduler may run granted thunks in any order, on any domain. *)
  let run_slot t ctx c =
    let config = t.config in
    let rates = config.Config.fault_rates in
    let n_instrs = t.n_instrs in
    let lost = ref 0 and rejects = ref [] and kinds = ref [] in
    let delay = ref 0.0 in
    let valid = ref None in
    let attempt = ref 0 in
    let quarantined = ref false in
    let running = ref true in
    while !running do
      let inj =
        Faults.Fault.draw rates ~seed:config.Config.fault_seed ~client:c
          ~attempt:!attempt
      in
      (if
         inj.Faults.Fault.j_crash || inj.Faults.Fault.j_drop
         || inj.Faults.Fault.j_straggler
       then begin
         incr lost;
         delay := !delay +. config.Config.straggler_timeout_s;
         kinds :=
           (if inj.Faults.Fault.j_crash then Faults.Fault.Crash
            else if inj.Faults.Fault.j_drop then Faults.Fault.Drop
            else Faults.Fault.Straggler)
           :: !kinds
       end
       else begin
         (* A stale client runs under the previous iteration's plan
            and rotation, and seals with that plan's digest; the
            server's freshness check rejects the report.  On the
            first iteration there is no previous plan to be stale
            against. *)
         let stale = inj.Faults.Fault.j_stale_plan && ctx.x_prev <> None in
         let use_plan, use_plan_id, use_groups =
           if stale then Option.get ctx.x_prev
           else (ctx.x_plan, ctx.x_plan_id, ctx.x_groups)
         in
         if stale then kinds := Faults.Fault.Stale_plan :: !kinds;
         (* Ring damage lands on the encoded bytes ([Hw.Pt.Wire]),
            the form the ring actually takes on a client. *)
         let tamper =
           match
             (inj.Faults.Fault.j_pt_truncate, inj.Faults.Fault.j_pt_corrupt)
           with
           | None, None -> None
           | tr, co ->
             Some
               (fun ~tid bytes ->
                 let bytes =
                   match tr with
                   | Some salt ->
                     Faults.Tamper.truncate_wire
                       ~salt:(Faults.Fault.mix salt tid) bytes
                   | None -> bytes
                 in
                 match co with
                 | Some salt ->
                   Faults.Tamper.corrupt_wire_packets
                     ~salt:(Faults.Fault.mix salt tid) ~n_instrs bytes
                 | None -> bytes)
         in
         if inj.Faults.Fault.j_pt_truncate <> None then
           kinds := Faults.Fault.Pt_truncate :: !kinds;
         if inj.Faults.Fault.j_pt_corrupt <> None then
           kinds := Faults.Fault.Pt_corrupt :: !kinds;
         let n_g = Array.length use_groups in
         let report =
           Client.run_one ~wp_capacity:config.Config.wp_capacity
             ~preempt_prob:config.Config.preempt_prob
             ~max_steps:config.Config.max_steps
             ~data_source:config.Config.data_source
             ~redact:config.Config.redact_values ?tamper ~plan:use_plan
             ~wp_allowed:use_groups.(c mod n_g) t.program (t.workload_of c)
         in
         (* Watchpoint-log corruption: either in-ring (pre-seal, so
            the digest matches the damaged payload and only the
            semantic range check can catch it) or in transit
            (post-seal: a bit flips in the sealed envelope bytes,
            caught by the digest).  Both validation layers stay
            exercised under any fault mix. *)
         let report, flip_salt =
           match inj.Faults.Fault.j_wp_corrupt with
           | None -> (report, None)
           | Some salt ->
             kinds := Faults.Fault.Wp_corrupt :: !kinds;
             if Faults.Tamper.wp_corrupt_in_transit ~salt then
               (report, Some salt)
             else
               ( {
                   report with
                   Client.r_traps =
                     Faults.Tamper.corrupt_traps ~salt ~n_instrs
                       report.Client.r_traps;
                 },
                 None )
         in
         (* The client→server hop is bytes: seal into the wire
            envelope (through this domain's reusable arena), damage
            in transit if drawn, then validate with the single-pass
            streaming scan.  Only an accepted report is ever
            materialised back into a record.  The envelope carries the
            session key; its field is fixed-width, so the flipped-byte
            position below is independent of which session this is. *)
         let bytes =
           Protocol.Encode.encode (enc_arena ()) ~session:t.s_id ~client:c
             ~plan_id:use_plan_id report
         in
         let bytes =
           match flip_salt with
           | Some salt -> Faults.Tamper.flip_wire_byte ~salt bytes
           | None -> bytes
         in
         match
           Protocol.Encode.ingest ~session:t.s_id ~n_instrs
             ~plan_id:ctx.x_plan_id bytes
         with
         | Ok r ->
           let sv_matches = r.Client.r_signature = Some t.target_sig in
           let sv_relevant = sv_matches || r.Client.r_signature = None in
           (* Refinement inputs, precomputed here so the slot-order
              consume fold is O(1) per slot.  The retained oracle
              recomputes them from the kept reports instead. *)
           let sv_confirmed =
             if t.streaming && sv_matches then
               IntSet.inter ctx.x_tracked_set
                 (IntSet.of_list (Client.executed_set r))
             else IntSet.empty
           in
           let sv_discovered =
             if t.streaming && sv_relevant then
               List.filter_map
                 (fun (w : Hw.Watchpoint.trap) ->
                   if IntSet.mem w.Hw.Watchpoint.w_iid ctx.x_tracked_set then
                     None
                   else Some w.Hw.Watchpoint.w_iid)
                 r.Client.r_traps
             else []
           in
           let sv_predictors =
             if (t.streaming || t.early) && sv_relevant then
               Predict.Predictor.of_run ~ranges:config.Config.range_predicates
                 ~tracked:ctx.x_tracked ~branch_outcomes:r.Client.r_branches
                 ~traps:r.Client.r_traps ()
             else []
           in
           valid :=
             Some
               {
                 sv_report = r;
                 (* Re-read, not recomputed: [encode] already paid for
                    the digest; the audit fold must stay off the slot
                    hot path's budget. *)
                 sv_digest = Protocol.Encode.wire_digest bytes;
                 sv_matches;
                 sv_relevant;
                 sv_confirmed;
                 sv_discovered;
                 sv_predictors;
               };
           running := false
         | Error rej -> rejects := rej :: !rejects
       end);
      if !running then
        if !attempt >= config.Config.max_retries then begin
          quarantined := true;
          running := false
        end
        else begin
          delay :=
            !delay
            +. (config.Config.retry_backoff_s *. (2.0 ** float_of_int !attempt));
          incr attempt
        end
    done;
    {
      o_valid = !valid;
      o_attempts = !attempt + 1;
      o_lost = !lost;
      o_rejects = List.rev !rejects;
      o_kinds = List.rev !kinds;
      o_delay = !delay;
      o_quarantined = !quarantined;
    }

  (* Start a gathering pass over fresh clients.  The old [run_pass]
     evaluated its initial condition before streaming any slot; a pass
     that fails it is born stopped and completes immediately with
     (0, 0), exactly like the old [if ... then 0]. *)
  let start_pass t ctx ~first =
    let budget = t.config.Config.max_clients_per_iter - t.clients in
    let stopped = budget <= 0 || (not (quota_open t)) || t.it_exited in
    t.phase <-
      Gathering
        {
          g_ctx = ctx;
          g_base = t.client_counter;
          g_budget = max budget 0;
          g_first = first;
          g_granted = 0;
          g_delivered = 0;
          g_consumed = 0;
          g_stopped = stopped;
          g_valid = 0;
          g_slots = 0;
        }

  (* --- offline: choose the tracked portion, build the patch --- *)
  let begin_iteration t =
    t.iteration <- t.iteration + 1;
    let t0 = Sys.time () in
    let tracked =
      List.sort_uniq compare
        (Slicing.Slicer.take t.slice t.sigma @ IntSet.elements t.discovered)
    in
    let plan =
      Instrument.Place.compute ~enable_cf:t.config.Config.enable_cf
        ~enable_df:t.config.Config.enable_df t.program tracked
    in
    (* Client [c] arms rotation group [c mod n]: precomputed as an
       array -- the per-client [List.nth] lookup was O(groups) on the
       fleet hot path. *)
    let groups =
      Array.of_list
        (wp_groups ~wp_capacity:t.config.Config.wp_capacity
           plan.Instrument.Plan.wp_targets)
    in
    let plan_id = Instrument.Plan.id plan in
    let prev = t.prev_plan in
    t.offline_time <- t.offline_time +. (Sys.time () -. t0);
    t.fails <- 0;
    t.succs <- 0;
    t.clients <- 0;
    t.ov_len <- 0;
    t.iter_reports <- [];
    t.it_dispatched <- 0;
    t.it_lost <- 0;
    t.it_rejected <- 0;
    t.it_retried <- 0;
    t.it_quarantined <- 0;
    t.it_valid <- 0;
    t.it_exited <- false;
    let ctx =
      {
        x_tracked = tracked;
        x_tracked_set = IntSet.of_list tracked;
        x_plan = plan;
        x_plan_id = plan_id;
        x_groups = groups;
        x_prev = prev;
      }
    in
    start_pass t ctx ~first:None

  (* Everything after an iteration's slot gathering: ledgers,
     refinement, the sketch, the oracle, convergence, the trace entry,
     and the stop/sigma decision.  Verbatim from the synchronous
     loop. *)
  let wrapup t ctx ~degraded =
    if degraded then t.f_degraded <- t.f_degraded + 1;
    t.f_dispatched <- t.f_dispatched + t.it_dispatched;
    t.f_valid <- t.f_valid + t.it_valid;
    t.f_lost <- t.f_lost + t.it_lost;
    t.f_rejected <- t.f_rejected + t.it_rejected;
    t.f_retried <- t.f_retried + t.it_retried;
    t.f_quarantined <- t.f_quarantined + t.it_quarantined;
    t.prev_plan <- Some (ctx.x_plan, ctx.x_plan_id, ctx.x_groups);
    (* --- refinement (§3.2): keep tracked statements that executed in
       failing runs; adopt watchpoint-discovered statements the
       alias-free slice missed.

       Streaming mode already folded every accepted report into
       [confirmed]/[discovered]/[acc] at consume time (set unions and
       counter sums commute, so fold-as-they-arrive equals
       fold-at-the-end); this batch replay is the retained oracle's
       path over the reports it kept. --- *)
    if not t.streaming then
      List.iter
        (fun ((r : Client.report), matches) ->
          if matches then begin
            let executed = IntSet.of_list (Client.executed_set r) in
            t.confirmed <-
              IntSet.union t.confirmed (IntSet.inter ctx.x_tracked_set executed)
          end;
          (* Statements the alias-free slice missed are discovered by any
             monitored run whose watchpoints trap on them -- successful
             runs included (in failing runs the watchpoint may only be
             armed after the racing write already happened). *)
          List.iter
            (fun (w : Hw.Watchpoint.trap) ->
              if not (IntSet.mem w.w_iid ctx.x_tracked_set) then
                t.discovered <- IntSet.add w.w_iid t.discovered)
            r.r_traps;
          t.observations <-
            Predict.Stats.
              {
                predictors =
                  Predict.Predictor.of_run
                    ~ranges:t.config.Config.range_predicates
                    ~tracked:ctx.x_tracked ~branch_outcomes:r.r_branches
                    ~traps:r.r_traps ();
                failing = matches;
              }
            :: t.observations)
        t.iter_reports;
    (* --- build the sketch from the representative failing run --- *)
    (match t.repr_failing with
     | None -> ()
     | Some repr ->
       (* Gist reports program counters as *source lines* (§4), so the
          statement set is closed over source lines: every IR
          instruction on a line one pc hit is part of the sketch. *)
       let core_set =
         IntSet.union t.confirmed
           (IntSet.union t.discovered (IntSet.singleton t.failure.pc))
       in
       let lines = Hashtbl.create 16 in
       IntSet.iter
         (fun iid ->
           let l = Ir.Program.loc_of t.program iid in
           if l.line > 0 then Hashtbl.replace lines (l.file, l.line) ())
         core_set;
       let stmt_set =
         List.fold_left
           (fun acc (i : Ir.Types.instr) ->
             if i.loc.line > 0 && Hashtbl.mem lines (i.loc.file, i.loc.line)
             then IntSet.add i.iid acc
             else acc)
           core_set
           (Ir.Program.all_instrs t.program)
       in
       let per_thread =
         List.filter_map
           (fun (tid, iids) ->
             let filtered =
               List.filter (fun iid -> IntSet.mem iid stmt_set) iids
             in
             if filtered = [] then None else Some (tid, filtered))
           repr.r_executed
       in
       (* [Acc.rank] is bit-identical to [Stats.rank] over the same
          observations (integer counts, total-order sort). *)
       let ranked =
         if t.streaming then Predict.Stats.Acc.rank t.acc
         else Predict.Stats.rank t.observations
       in
       let sketch =
         Fsketch.Sketch.build ~bug_name:t.bug_name
           ~failure_type:t.failure_type ~program:t.program ~failure:t.failure
           ~per_thread ~traps:repr.r_traps ~ranked
       in
       t.best_sketch <- Some sketch;
       (* --- developer decision (§3.2.1): stop AsT or double sigma --- *)
       let satisfied =
         match t.oracle with Some f -> f sketch | None -> false
       in
       if satisfied then t.stop <- true);
    let oracle_stop = t.stop in
    (* Convergence across iterations: when the same predictor holds
       separation at the end of two consecutive non-degraded
       iterations, skip the remaining sigma doublings -- the ranking
       has stabilised within the stated confidence.  A degraded
       iteration resets the streak: its counts were thinned by
       faults. *)
    let sep_winner =
      if t.early && not degraded then
        Predict.Stats.Acc.separated ~delta:t.config.Config.separation_delta
          t.acc
      else None
    in
    (match sep_winner with
     | Some p ->
       (match t.prev_winner with
        | Some q when Predict.Predictor.compare p q = 0 ->
          t.win_streak <- t.win_streak + 1
        | _ -> t.win_streak <- 1);
       t.prev_winner <- Some p
     | None ->
       t.win_streak <- 0;
       t.prev_winner <- None);
    let converged_now = t.early && (not t.stop) && t.win_streak >= 2 in
    if converged_now then t.stop <- true;
    t.trace <-
      {
        it_sigma = t.sigma;
        it_tracked = List.length ctx.x_tracked;
        it_fails = t.fails;
        it_succs = t.succs;
        it_clients = t.clients;
        it_avg_overhead = ov_avg t;
        it_oracle_pass = oracle_stop;
        it_dispatched = t.it_dispatched;
        it_lost = t.it_lost;
        it_rejected = t.it_rejected;
        it_retried = t.it_retried;
        it_quarantined = t.it_quarantined;
        it_degraded = degraded;
        it_early_exit =
          (if converged_now then Some Converged
           else if t.it_exited then Some Separated
           else None);
      }
      :: t.trace;
    if not t.stop then begin
      if t.iteration >= t.config.Config.max_iterations then t.stop <- true
      else if degraded then
        (* Degraded mode: hold sigma for another iteration rather than
           doubling on evidence the faults thinned out. *)
        ()
      else if t.sigma >= t.slice_size then t.stop <- true
      else t.sigma <- t.sigma * 2
    end;
    if t.stop then begin
      t.online_time <- Sys.time () -. t.t_online0 -. t.offline_time;
      t.phase <- Done
    end
    else begin_iteration t

  (* The old consume body, verbatim: all slot accounting happens here,
     in slot order.  Returns whether gathering should continue. *)
  let consume t (g : gather) o =
    t.clients <- t.clients + 1;
    g.g_slots <- g.g_slots + 1;
    t.it_dispatched <- t.it_dispatched + o.o_attempts;
    t.it_lost <- t.it_lost + o.o_lost;
    t.it_rejected <- t.it_rejected + List.length o.o_rejects;
    t.it_retried <- t.it_retried + (o.o_attempts - 1);
    if o.o_quarantined then t.it_quarantined <- t.it_quarantined + 1;
    t.sim_delay <- t.sim_delay +. o.o_delay;
    (* Runs that executed (everything but lost dispatches) are
       monitored production runs, valid or not. *)
    t.total_runs <- t.total_runs + (o.o_attempts - o.o_lost);
    List.iter (fun k -> bump t.by_kind (Faults.Fault.kind_name k)) o.o_kinds;
    List.iter
      (fun rej -> bump t.by_reason (Protocol.reject_label rej))
      o.o_rejects;
    (match o.o_valid with
     | None -> ()
     | Some sv ->
       let report = sv.sv_report in
       g.g_valid <- g.g_valid + 1;
       t.it_valid <- t.it_valid + 1;
       t.audit <- Faults.Fault.mix t.audit sv.sv_digest;
       ov_push t report.Client.r_overhead_pct;
       t.base_cycles <- t.base_cycles +. report.r_base_cycles;
       t.extra_cycles <- t.extra_cycles +. report.r_extra_cycles;
       if sv.sv_matches then begin
         (* Recurrences (the Table 1 latency metric) count only the
            failing runs AsT actually needed, not surplus failures
            that happen while waiting for enough successful runs. *)
         if t.fails < t.config.Config.fail_quota then
           t.recurrences <- t.recurrences + 1;
         t.fails <- t.fails + 1;
         t.repr_failing <- Some report
       end
       else if report.Client.r_signature = None then t.succs <- t.succs + 1;
       (* Other failures are different bugs: ignored here. *)
       if sv.sv_relevant then begin
         if t.streaming then begin
           (* Fold the slot's contribution the moment it is accepted,
              in slot order; the report itself is dropped (only
              [repr_failing] retains one). *)
           t.confirmed <- IntSet.union t.confirmed sv.sv_confirmed;
           List.iter
             (fun iid -> t.discovered <- IntSet.add iid t.discovered)
             sv.sv_discovered
         end
         else t.iter_reports <- (report, sv.sv_matches) :: t.iter_reports;
         if t.streaming || t.early then
           Predict.Stats.Acc.add t.acc
             Predict.Stats.
               { predictors = sv.sv_predictors; failing = sv.sv_matches }
       end);
    (* Adaptive checkpoint: at fixed consumed-slot boundaries (report
       counts, never wall-clock, so the decision is bit-identical at
       any [--jobs] and under any multiplexing), and only while the
       iteration's valid fraction holds quorum (lost reports bias the
       counts -- never stop early on a sample the faults thinned out),
       stop gathering the moment the bound separates the leader. *)
    if
      t.early && (not t.it_exited)
      && t.clients mod t.config.Config.checkpoint_every = 0
      && (not (below_quorum t t.it_valid t.clients))
      && Predict.Stats.Acc.separated ~delta:t.config.Config.separation_delta
           t.acc
         <> None
    then t.it_exited <- true;
    (not t.it_exited)
    && quota_open t
    && t.clients < t.config.Config.max_clients_per_iter

  (* A pass is complete once every granted slot's outcome came back
     and either the fold said stop or the budget is exhausted.  Then:
     advance the client counter by the slots actually consumed
     (discarded surplus never counts — same as [map_until]'s return
     value), and decide quorum.  Quorum with graceful degradation: if
     fewer than [quorum_frac] of pass 1's slots delivered a valid
     report, re-run once with fresh clients (lost and rejected slots
     stay consumed); if the fleet still cannot reach quorum the
     iteration is degraded and sigma is carried forward instead of
     doubled -- never steer AsT from a sample the faults have thinned
     out. *)
  let finish_pass t (g : gather) =
    t.client_counter <- g.g_base + g.g_consumed;
    match g.g_first with
    | None ->
      let v1 = g.g_valid and s1 = g.g_slots in
      if
        below_quorum t v1 s1 && quota_open t
        && t.clients < t.config.Config.max_clients_per_iter
      then start_pass t g.g_ctx ~first:(Some (v1, s1))
      else wrapup t g.g_ctx ~degraded:(below_quorum t v1 s1)
    | Some (v1, s1) ->
      wrapup t g.g_ctx
        ~degraded:(below_quorum t (v1 + g.g_valid) (s1 + g.g_slots))

  let rec need t =
    match t.phase with
    | Done -> Finished
    | Gathering g ->
      if g.g_delivered >= g.g_granted && (g.g_stopped || g.g_granted >= g.g_budget)
      then begin
        finish_pass t g;
        need t
      end
      else if g.g_stopped then
        (* Outcomes are still outstanding but the fold already
           stopped: nothing more to grant — deliver what is out. *)
        Slots 0
      else Slots (g.g_budget - g.g_granted)

  let grant t k =
    match t.phase with
    | Done -> [||]
    | Gathering g ->
      let k = if g.g_stopped then 0 else max 0 (min k (g.g_budget - g.g_granted)) in
      let ctx = g.g_ctx in
      let base = g.g_base + g.g_granted in
      g.g_granted <- g.g_granted + k;
      Array.init k (fun j ->
          let c = base + j in
          fun () -> run_slot t ctx c)

  let deliver t outcomes =
    match t.phase with
    | Done -> ()
    | Gathering g ->
      Array.iter
        (fun o ->
          g.g_delivered <- g.g_delivered + 1;
          if not g.g_stopped then begin
            (* The consumed count includes the outcome whose consume
               says stop, exactly like [map_until]. *)
            g.g_consumed <- g.g_consumed + 1;
            if not (consume t g o) then g.g_stopped <- true
          end)
        outcomes

  let create ?(config = Config.default) ?(ingest = Streaming) ?oracle
      ?(id = 0) ~bug_name ~failure_type ~program ~workload_of
      ~(failure : Exec.Failure.report) () =
    let config = Config.check config in
    let t_offline0 = Sys.time () in
    (* Compile the program once up front (memoised in
       [Analysis.Cache]): every client run and PT decode below then
       hits the cache, and the one-time lowering cost is charged to
       the offline phase where it belongs, not to the first monitored
       client. *)
    ignore (Analysis.Cache.lowered program);
    (* Exclusive upper bound on valid statement ids for payload
       validation (iids are 1-based, so this is max iid + 1, not the
       instruction count). *)
    let n_instrs =
      1
      + List.fold_left
          (fun m (i : Ir.Types.instr) -> max m i.iid)
          0
          (Ir.Program.all_instrs program)
    in
    let slice = Slicing.Slicer.compute program failure in
    let target_sig = Exec.Failure.signature failure in
    let streaming = ingest = Streaming in
    (* The adaptive stopping rule needs the streaming sufficient
       statistics even in retained mode, so its decisions are
       identical in both ingest modes (the retained ranking itself
       still comes from the replayed observations). *)
    let early = config.Config.early_exit in
    let offline_time = Sys.time () -. t_offline0 in
    let t =
      {
        s_id = id;
        config;
        bug_name;
        failure_type;
        program;
        workload_of;
        failure;
        oracle;
        streaming;
        early;
        n_instrs;
        slice;
        slice_size = Slicing.Slicer.instr_count slice;
        target_sig;
        t_online0 = Sys.time ();
        offline_time;
        online_time = 0.0;
        sigma = config.Config.sigma0;
        discovered = IntSet.empty;
        confirmed = IntSet.empty;
        acc = Predict.Stats.Acc.create ();
        observations = [];
        repr_failing = None;
        audit = 0;
        base_cycles = 0.0;
        extra_cycles = 0.0;
        ov_buf = Array.make 256 0.0;
        ov_len = 0;
        recurrences = 0;
        total_runs = 0;
        client_counter = 0;
        iteration = 0;
        best_sketch = None;
        stop = false;
        trace = [];
        f_dispatched = 0;
        f_valid = 0;
        f_lost = 0;
        f_rejected = 0;
        f_retried = 0;
        f_quarantined = 0;
        f_degraded = 0;
        by_kind = Hashtbl.create 8;
        by_reason = Hashtbl.create 8;
        sim_delay = 0.0;
        prev_winner = None;
        win_streak = 0;
        prev_plan = None;
        fails = 0;
        succs = 0;
        clients = 0;
        iter_reports = [];
        it_dispatched = 0;
        it_lost = 0;
        it_rejected = 0;
        it_retried = 0;
        it_quarantined = 0;
        it_valid = 0;
        it_exited = false;
        phase = Done;
      }
    in
    begin_iteration t;
    t

  let result t =
    (match t.phase with
     | Gathering _ ->
       invalid_arg "Server.Session.result: diagnosis not finished"
     | Done -> ());
    let sketch =
      match t.best_sketch with
      | Some s -> s
      | None ->
        (* No monitored failure recurred: the sketch degenerates to
           the failing statement alone. *)
        Fsketch.Sketch.build ~bug_name:t.bug_name
          ~failure_type:t.failure_type ~program:t.program ~failure:t.failure
          ~per_thread:[ (t.failure.tid, [ t.failure.pc ]) ]
          ~traps:[] ~ranked:[]
    in
    {
      sketch;
      slice = t.slice;
      iterations = t.iteration;
      recurrences = t.recurrences;
      total_runs = t.total_runs;
      (* When no valid report carried base cycles, every per-run
         overhead was 0/0 = 0 as well, so 0.0 is the old list-average
         fallback without retaining the list. *)
      avg_overhead_pct =
        (if t.base_cycles > 0.0 then 100.0 *. t.extra_cycles /. t.base_cycles
         else 0.0);
      offline_time_s = t.offline_time;
      (* Retry backoff and straggler deadlines happen in fleet time,
         not server CPU time: charge them to the online phase. *)
      online_time_s = max t.online_time 0.0 +. t.sim_delay;
      final_sigma = t.sigma;
      tracked =
        List.sort_uniq compare
          (Slicing.Slicer.take t.slice t.sigma @ IntSet.elements t.discovered);
      trace = List.rev t.trace;
      fleet =
        {
          f_dispatched = t.f_dispatched;
          f_delivered = t.f_dispatched - t.f_lost;
          f_valid = t.f_valid;
          f_lost = t.f_lost;
          f_rejected = t.f_rejected;
          f_retried = t.f_retried;
          f_quarantined = t.f_quarantined;
          f_degraded_iters = t.f_degraded;
          f_by_kind =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.by_kind []
            |> List.sort compare;
          f_by_reason =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.by_reason []
            |> List.sort compare;
        };
    }

  (* ---------------------------------------------------------------- *)
  (* Live introspection: the cheap counters a service status view
     reads without perturbing the state machine. *)

  type progress = {
    p_iteration : int;
    p_sigma : int;
    p_tracked : int;      (* statements tracked this iteration *)
    p_clients : int;      (* fleet slots consumed this iteration *)
    p_valid : int;        (* accepted reports this iteration *)
    p_fails : int;
    p_succs : int;
    p_total_runs : int;   (* monitored production runs, whole session *)
    p_finished : bool;
  }

  let progress t =
    {
      p_iteration = t.iteration;
      p_sigma = t.sigma;
      p_tracked =
        (match t.phase with
         | Gathering g -> List.length g.g_ctx.x_tracked
         | Done -> 0);
      p_clients = t.clients;
      p_valid = t.it_valid;
      p_fails = t.fails;
      p_succs = t.succs;
      p_total_runs = t.total_runs;
      p_finished = t.phase = Done;
    }

  (* What a thunk that raised looks like after containment: the
     service substitutes this deterministic "client crashed, nothing
     arrived" outcome so a poisoned slot degrades exactly like a
     fleet-fault crash instead of taking the scheduler down. *)
  let crashed_outcome t =
    {
      o_valid = None;
      o_attempts = 1;
      o_lost = 1;
      o_rejects = [];
      o_kinds = [ Faults.Fault.Crash ];
      o_delay = t.config.Config.straggler_timeout_s;
      o_quarantined = false;
    }

  (* ---------------------------------------------------------------- *)
  (* Snapshot / restore: the full session state machine as versioned,
     digest-checked bytes (the wire protocol's own varint and digest
     machinery), so a crash-only service can checkpoint mid-diagnosis
     and restore a bit-identical continuation.

     What is serialized: every field that is not a pure function of
     the create-time inputs.  Derived state — the slice, the lowered
     program, the instrumentation plan, watchpoint groups, plan ids —
     is rebuilt deterministically from the serialized tracked lists at
     restore ([Instrument.Place.compute] is a pure function of
     (program, tracked)), which keeps snapshots O(slice + trace), not
     O(program).  [best_sketch] is deliberately not serialized: every
     path from a gathering phase to [Done] passes through [wrapup],
     which rebuilds it from [repr_failing] and the restored sets.

     Snapshots are only legal at a quiescent point: no granted thunk
     still outstanding (the service checkpoints at round boundaries,
     where delivery is always complete) and the session not yet
     finished (a finished session is a completion, not a checkpoint
     candidate). *)

  module W = Hw.Wirebuf

  let snapshot_magic = 0x675A (* "gZ" *)
  let snapshot_version = 1

  type snapshot_error =
    | Snapshot_truncated
    | Snapshot_bad_magic
    | Snapshot_bad_version of int
    | Snapshot_bad_digest
    | Snapshot_mismatch of string

  let snapshot_error_to_string = function
    | Snapshot_truncated -> "snapshot truncated"
    | Snapshot_bad_magic -> "snapshot bytes carry the wrong magic"
    | Snapshot_bad_version v ->
      Printf.sprintf "snapshot version %d, this build reads %d" v
        snapshot_version
    | Snapshot_bad_digest -> "snapshot digest mismatch (corrupt bytes)"
    | Snapshot_mismatch what ->
      Printf.sprintf "snapshot disagrees with the spec it was restored \
                      against: %s" what

  let put_list b put l =
    W.put_uint b (List.length l);
    List.iter (fun x -> put b x) l

  let get_list r get =
    let n = W.get_uint r in
    let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (get r :: acc) in
    go n []

  let put_opt b put = function
    | None -> W.put_uint b 0
    | Some x ->
      W.put_uint b 1;
      put b x

  let get_opt r get =
    match W.get_uint r with
    | 0 -> None
    | 1 -> Some (get r)
    | _ -> raise W.Short

  let put_pred b (p : Predict.Predictor.t) =
    match p with
    | Predict.Predictor.Branch_taken (iid, taken) ->
      W.put_uint b 1;
      W.put_uint b iid;
      W.put_bool b taken
    | Predict.Predictor.Data_value (iid, v) ->
      W.put_uint b 2;
      W.put_uint b iid;
      W.put_string b v
    | Predict.Predictor.Value_range (iid, v) ->
      W.put_uint b 3;
      W.put_uint b iid;
      W.put_string b v
    | Predict.Predictor.Race (k, a, bb) ->
      W.put_uint b 4;
      W.put_string b k;
      W.put_uint b a;
      W.put_uint b bb
    | Predict.Predictor.Atomicity (k, a, bb, c) ->
      W.put_uint b 5;
      W.put_string b k;
      W.put_uint b a;
      W.put_uint b bb;
      W.put_uint b c

  let get_pred r : Predict.Predictor.t =
    match W.get_uint r with
    | 1 ->
      let iid = W.get_uint r in
      let taken = W.get_bool r in
      Predict.Predictor.Branch_taken (iid, taken)
    | 2 ->
      let iid = W.get_uint r in
      let v = W.get_string r in
      Predict.Predictor.Data_value (iid, v)
    | 3 ->
      let iid = W.get_uint r in
      let v = W.get_string r in
      Predict.Predictor.Value_range (iid, v)
    | 4 ->
      let k = W.get_string r in
      let a = W.get_uint r in
      let bb = W.get_uint r in
      Predict.Predictor.Race (k, a, bb)
    | 5 ->
      let k = W.get_string r in
      let a = W.get_uint r in
      let bb = W.get_uint r in
      let c = W.get_uint r in
      Predict.Predictor.Atomicity (k, a, bb, c)
    | _ -> raise W.Short

  let put_iteration_info b (it : iteration_info) =
    W.put_uint b it.it_sigma;
    W.put_uint b it.it_tracked;
    W.put_uint b it.it_fails;
    W.put_uint b it.it_succs;
    W.put_uint b it.it_clients;
    W.put_float b it.it_avg_overhead;
    W.put_bool b it.it_oracle_pass;
    W.put_uint b it.it_dispatched;
    W.put_uint b it.it_lost;
    W.put_uint b it.it_rejected;
    W.put_uint b it.it_retried;
    W.put_uint b it.it_quarantined;
    W.put_bool b it.it_degraded;
    W.put_uint b
      (match it.it_early_exit with
       | None -> 0
       | Some Separated -> 1
       | Some Converged -> 2)

  let get_iteration_info r : iteration_info =
    let it_sigma = W.get_uint r in
    let it_tracked = W.get_uint r in
    let it_fails = W.get_uint r in
    let it_succs = W.get_uint r in
    let it_clients = W.get_uint r in
    let it_avg_overhead = W.get_float r in
    let it_oracle_pass = W.get_bool r in
    let it_dispatched = W.get_uint r in
    let it_lost = W.get_uint r in
    let it_rejected = W.get_uint r in
    let it_retried = W.get_uint r in
    let it_quarantined = W.get_uint r in
    let it_degraded = W.get_bool r in
    let it_early_exit =
      match W.get_uint r with
      | 0 -> None
      | 1 -> Some Separated
      | 2 -> Some Converged
      | _ -> raise W.Short
    in
    {
      it_sigma; it_tracked; it_fails; it_succs; it_clients; it_avg_overhead;
      it_oracle_pass; it_dispatched; it_lost; it_rejected; it_retried;
      it_quarantined; it_degraded; it_early_exit;
    }

  let put_assoc b l =
    put_list b
      (fun b (k, v) ->
        W.put_string b k;
        W.put_uint b v)
      l

  let get_assoc r =
    get_list r (fun r ->
        let k = W.get_string r in
        let v = W.get_uint r in
        (k, v))

  let put_report_opt b o =
    put_opt b (fun b rep -> Protocol.Encode.put_report b rep) o

  let snapshot t =
    let g =
      match t.phase with
      | Done -> invalid_arg "Session.snapshot: session already finished"
      | Gathering g ->
        if g.g_delivered < g.g_granted then
          invalid_arg
            "Session.snapshot: granted thunks still outstanding (snapshot \
             only at a round boundary)";
        g
    in
    let b = Buffer.create 1024 in
    (* Spec guard fields, checked against restore's arguments. *)
    W.put_string b t.bug_name;
    W.put_bool b t.streaming;
    W.put_bool b t.early;
    W.put_uint b t.n_instrs;
    (* Host-time ledgers (never bit-compared, but carried so recovery
       does not forget the offline phase already paid). *)
    W.put_float b t.offline_time;
    W.put_float b t.online_time;
    (* Cross-iteration AsT state. *)
    W.put_uint b t.sigma;
    put_list b (fun b i -> W.put_uint b i) (IntSet.elements t.discovered);
    put_list b (fun b i -> W.put_uint b i) (IntSet.elements t.confirmed);
    (let cells, total_failing, n_obs = Predict.Stats.Acc.export t.acc in
     put_list b
       (fun b (p, (f, s, cooc)) ->
         put_pred b p;
         W.put_uint b f;
         W.put_uint b s;
         (* [c_cooc] is a full-width wrapping fingerprint sum: zigzag
            would overflow on magnitudes >= 2^61, so carry the sign
            bit out of band instead. *)
         W.put_bool b (cooc < 0);
         W.put_uint b (cooc land max_int))
       cells;
     W.put_uint b total_failing;
     W.put_uint b n_obs);
    put_list b
      (fun b (o : Predict.Stats.observation) ->
        put_list b put_pred o.Predict.Stats.predictors;
        W.put_bool b o.Predict.Stats.failing)
      t.observations;
    put_report_opt b t.repr_failing;
    W.put_uint b t.audit;
    W.put_float b t.base_cycles;
    W.put_float b t.extra_cycles;
    W.put_uint b t.ov_len;
    for i = 0 to t.ov_len - 1 do
      W.put_float b t.ov_buf.(i)
    done;
    W.put_uint b t.recurrences;
    W.put_uint b t.total_runs;
    W.put_uint b t.client_counter;
    W.put_uint b t.iteration;
    W.put_bool b t.stop;
    put_list b put_iteration_info t.trace;
    W.put_uint b t.f_dispatched;
    W.put_uint b t.f_valid;
    W.put_uint b t.f_lost;
    W.put_uint b t.f_rejected;
    W.put_uint b t.f_retried;
    W.put_uint b t.f_quarantined;
    W.put_uint b t.f_degraded;
    put_assoc b
      (List.sort compare
         (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.by_kind []));
    put_assoc b
      (List.sort compare
         (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.by_reason []));
    W.put_float b t.sim_delay;
    put_opt b put_pred t.prev_winner;
    W.put_uint b t.win_streak;
    (* The previous iteration's plan, as its tracked list: the plan,
       id and groups are recomputed at restore. *)
    put_opt b
      (fun b (tracked : iid list) -> put_list b (fun b i -> W.put_uint b i) tracked)
      (Option.map (fun (p, _, _) -> p.Instrument.Plan.tracked) t.prev_plan);
    (* Per-iteration state. *)
    W.put_uint b t.fails;
    W.put_uint b t.succs;
    W.put_uint b t.clients;
    put_list b
      (fun b ((rep : Client.report), matches) ->
        Protocol.Encode.put_report b rep;
        W.put_bool b matches)
      t.iter_reports;
    W.put_uint b t.it_dispatched;
    W.put_uint b t.it_lost;
    W.put_uint b t.it_rejected;
    W.put_uint b t.it_retried;
    W.put_uint b t.it_quarantined;
    W.put_uint b t.it_valid;
    W.put_bool b t.it_exited;
    (* The gathering pass. *)
    put_list b (fun b i -> W.put_uint b i) g.g_ctx.x_tracked;
    W.put_uint b g.g_base;
    W.put_uint b g.g_budget;
    put_opt b
      (fun b (v, s) ->
        W.put_uint b v;
        W.put_uint b s)
      g.g_first;
    W.put_uint b g.g_granted;
    W.put_uint b g.g_consumed;
    W.put_bool b g.g_stopped;
    W.put_uint b g.g_valid;
    W.put_uint b g.g_slots;
    let payload = Buffer.contents b in
    let out = Buffer.create (String.length payload + 16) in
    W.put_uint out snapshot_magic;
    W.put_uint out snapshot_version;
    W.put_uint out t.s_id;
    Buffer.add_int64_le out
      (Int64.of_int
         (Protocol.Encode.digest ~client:0 ~session:t.s_id
            ~plan_id:snapshot_version payload));
    Buffer.add_string out payload;
    Buffer.contents out

  let restore ?(config = Config.default) ?(ingest = Streaming) ?oracle
      ~bug_name ~failure_type ~program ~workload_of
      ~(failure : Exec.Failure.report) bytes =
    try
      let r = W.reader bytes in
      let magic = W.get_uint r in
      if magic <> snapshot_magic then Error Snapshot_bad_magic
      else begin
        let version = W.get_uint r in
        if version <> snapshot_version then Error (Snapshot_bad_version version)
        else begin
          let s_id = W.get_uint r in
          if r.W.pos + 8 > r.W.limit then raise W.Short;
          let d = Int64.to_int (String.get_int64_le r.W.src r.W.pos) in
          r.W.pos <- r.W.pos + 8;
          let payload_start = r.W.pos in
          if
            Protocol.Encode.digest ~pos:payload_start ~client:0 ~session:s_id
              ~plan_id:snapshot_version bytes
            <> d
          then Error Snapshot_bad_digest
          else begin
            let config = Config.check config in
            let mismatch what = Error (Snapshot_mismatch what) in
            let got_bug = W.get_string r in
            let got_streaming = W.get_bool r in
            let got_early = W.get_bool r in
            let got_n_instrs = W.get_uint r in
            let streaming = ingest = Streaming in
            let early = config.Config.early_exit in
            ignore (Analysis.Cache.lowered program);
            let n_instrs =
              1
              + List.fold_left
                  (fun m (i : Ir.Types.instr) -> max m i.iid)
                  0
                  (Ir.Program.all_instrs program)
            in
            if got_bug <> bug_name then
              mismatch (Printf.sprintf "bug %S vs %S" got_bug bug_name)
            else if got_streaming <> streaming then mismatch "ingest mode"
            else if got_early <> early then mismatch "early-exit flag"
            else if got_n_instrs <> n_instrs then mismatch "program shape"
            else begin
              let offline_time = W.get_float r in
              let online_time = W.get_float r in
              let sigma = W.get_uint r in
              let discovered =
                IntSet.of_list (get_list r (fun r -> W.get_uint r))
              in
              let confirmed =
                IntSet.of_list (get_list r (fun r -> W.get_uint r))
              in
              let cells =
                get_list r (fun r ->
                    let p = get_pred r in
                    let f = W.get_uint r in
                    let s = W.get_uint r in
                    let neg = W.get_bool r in
                    let low = W.get_uint r in
                    let cooc = if neg then low lor min_int else low in
                    (p, (f, s, cooc)))
              in
              let total_failing = W.get_uint r in
              let n_obs = W.get_uint r in
              let acc = Predict.Stats.Acc.import ~cells ~total_failing ~n_obs in
              let observations =
                get_list r (fun r ->
                    let predictors = get_list r get_pred in
                    let failing = W.get_bool r in
                    Predict.Stats.{ predictors; failing })
              in
              let repr_failing =
                get_opt r (fun r -> Protocol.Encode.get_report r)
              in
              let audit = W.get_uint r in
              let base_cycles = W.get_float r in
              let extra_cycles = W.get_float r in
              let ov_len = W.get_uint r in
              let ov_buf = Array.make (max 256 ov_len) 0.0 in
              for i = 0 to ov_len - 1 do
                ov_buf.(i) <- W.get_float r
              done;
              let recurrences = W.get_uint r in
              let total_runs = W.get_uint r in
              let client_counter = W.get_uint r in
              let iteration = W.get_uint r in
              let stop = W.get_bool r in
              let trace = get_list r get_iteration_info in
              let f_dispatched = W.get_uint r in
              let f_valid = W.get_uint r in
              let f_lost = W.get_uint r in
              let f_rejected = W.get_uint r in
              let f_retried = W.get_uint r in
              let f_quarantined = W.get_uint r in
              let f_degraded = W.get_uint r in
              let by_kind = Hashtbl.create 8 in
              List.iter (fun (k, v) -> Hashtbl.replace by_kind k v) (get_assoc r);
              let by_reason = Hashtbl.create 8 in
              List.iter
                (fun (k, v) -> Hashtbl.replace by_reason k v)
                (get_assoc r);
              let sim_delay = W.get_float r in
              let prev_winner = get_opt r get_pred in
              let win_streak = W.get_uint r in
              let prev_tracked =
                get_opt r (fun r -> get_list r (fun r -> W.get_uint r))
              in
              let fails = W.get_uint r in
              let succs = W.get_uint r in
              let clients = W.get_uint r in
              let iter_reports =
                get_list r (fun r ->
                    let rep = Protocol.Encode.get_report r in
                    let matches = W.get_bool r in
                    (rep, matches))
              in
              let it_dispatched = W.get_uint r in
              let it_lost = W.get_uint r in
              let it_rejected = W.get_uint r in
              let it_retried = W.get_uint r in
              let it_quarantined = W.get_uint r in
              let it_valid = W.get_uint r in
              let it_exited = W.get_bool r in
              let x_tracked = get_list r (fun r -> W.get_uint r) in
              let g_base = W.get_uint r in
              let g_budget = W.get_uint r in
              let g_first =
                get_opt r (fun r ->
                    let v = W.get_uint r in
                    let s = W.get_uint r in
                    (v, s))
              in
              let g_granted = W.get_uint r in
              let g_consumed = W.get_uint r in
              let g_stopped = W.get_bool r in
              let g_valid = W.get_uint r in
              let g_slots = W.get_uint r in
              if not (W.eof r) then Error Snapshot_truncated
              else begin
                (* Rebuild every derived structure from the serialized
                   tracked lists — pure functions of (program, tracked),
                   so the restored plans, ids and groups are the bytes'
                   exact originals. *)
                let t0 = Sys.time () in
                let plan_of tracked =
                  let plan =
                    Instrument.Place.compute ~enable_cf:config.Config.enable_cf
                      ~enable_df:config.Config.enable_df program tracked
                  in
                  let groups =
                    Array.of_list
                      (wp_groups ~wp_capacity:config.Config.wp_capacity
                         plan.Instrument.Plan.wp_targets)
                  in
                  (plan, Instrument.Plan.id plan, groups)
                in
                let prev_plan = Option.map plan_of prev_tracked in
                let plan, plan_id, groups = plan_of x_tracked in
                let slice = Slicing.Slicer.compute program failure in
                let t =
                  {
                    s_id;
                    config;
                    bug_name;
                    failure_type;
                    program;
                    workload_of;
                    failure;
                    oracle;
                    streaming;
                    early;
                    n_instrs;
                    slice;
                    slice_size = Slicing.Slicer.instr_count slice;
                    target_sig = Exec.Failure.signature failure;
                    t_online0 = Sys.time ();
                    offline_time = offline_time +. (Sys.time () -. t0);
                    online_time;
                    sigma;
                    discovered;
                    confirmed;
                    acc;
                    observations;
                    repr_failing;
                    audit;
                    base_cycles;
                    extra_cycles;
                    ov_buf;
                    ov_len;
                    recurrences;
                    total_runs;
                    client_counter;
                    iteration;
                    best_sketch = None;
                    stop;
                    trace;
                    f_dispatched;
                    f_valid;
                    f_lost;
                    f_rejected;
                    f_retried;
                    f_quarantined;
                    f_degraded;
                    by_kind;
                    by_reason;
                    sim_delay;
                    prev_winner;
                    win_streak;
                    prev_plan;
                    fails;
                    succs;
                    clients;
                    iter_reports;
                    it_dispatched;
                    it_lost;
                    it_rejected;
                    it_retried;
                    it_quarantined;
                    it_valid;
                    it_exited;
                    phase =
                      Gathering
                        {
                          g_ctx =
                            {
                              x_tracked;
                              x_tracked_set = IntSet.of_list x_tracked;
                              x_plan = plan;
                              x_plan_id = plan_id;
                              x_groups = groups;
                              x_prev = prev_plan;
                            };
                          g_base;
                          g_budget;
                          g_first;
                          g_granted;
                          g_delivered = g_granted;
                          g_consumed;
                          g_stopped;
                          g_valid;
                          g_slots;
                        };
                  }
                in
                Ok t
              end
            end
          end
        end
      end
    with W.Short -> Error Snapshot_truncated
end

(* The one-shot entry point, now a thin single-session driver over
   {!Session} (and the reference oracle the differential suite holds
   the multiplexed service against).  The grant batch mirrors
   [Pool.map_until]'s default, so slot batching — and therefore wall
   clock — matches the old synchronous loop. *)
let diagnose ?(config = Config.default) ?(pool = Parallel.Pool.sequential)
    ?(ingest = Streaming) ?oracle ~bug_name ~failure_type ~program ~workload_of
    ~(failure : Exec.Failure.report) () =
  let s =
    Session.create ~config ~ingest ?oracle ~bug_name ~failure_type ~program
      ~workload_of ~failure ()
  in
  let jobs = Parallel.Pool.jobs pool in
  let batch = if jobs = 0 then 1 else jobs * 4 in
  let rec loop () =
    match Session.need s with
    | Session.Finished -> Session.result s
    | Session.Slots n ->
      let thunks = Session.grant s (min batch n) in
      Session.deliver s (Parallel.Pool.map_array pool (fun th -> th ()) thunks);
      loop ()
  in
  loop ()

(* Did the adaptive rule stop the whole diagnosis (as opposed to the
   oracle, the iteration cap, or sigma reaching the slice)? *)
let converged d =
  List.exists (fun it -> it.it_early_exit = Some Converged) d.trace
