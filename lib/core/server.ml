(* The Gist server: static slicing, adaptive slice tracking (AsT),
   slice refinement from client reports, statistical predictor ranking,
   and failure-sketch construction (paper Fig. 2, steps 1, 3, 5).

   AsT (§3.2.1): track sigma statements backward from the failure;
   double sigma each iteration until the developer (the [oracle]
   callback) judges the sketch sufficient. *)

open Ir.Types
module IntSet = Set.Make (Int)

type iteration_info = {
  it_sigma : int;
  it_tracked : int;
  it_fails : int;
  it_succs : int;
  it_clients : int;
  it_avg_overhead : float;
  it_oracle_pass : bool;
}

type diagnosis = {
  sketch : Fsketch.Sketch.t;
  slice : Slicing.Slicer.t;
  iterations : int;
  recurrences : int;     (* matching failing runs consumed by AsT *)
  total_runs : int;      (* monitored production runs *)
  avg_overhead_pct : float; (* fleet-wide: aggregate extra / aggregate base *)
  offline_time_s : float; (* static analysis + instrumentation time *)
  online_time_s : float;  (* simulated fleet wall-clock *)
  final_sigma : int;
  tracked : iid list;     (* statements tracked in the last iteration *)
  trace : iteration_info list; (* per-AsT-iteration progress *)
}

(* Find the first production failure (unmonitored runs): what a
   coredump/stack-trace report gives the developer to start from. *)
let first_failure ?(max_runs = 2000) ?(preempt_prob = 0.35)
    ?(max_steps = 400_000) program workload_of =
  let rec go k =
    if k >= max_runs then None
    else
      let result =
        Exec.Interp.run ~max_steps ~preempt_prob program (workload_of k)
      in
      match result.outcome with
      | Exec.Interp.Failed rep -> Some rep
      | Exec.Interp.Success -> go (k + 1)
  in
  go 0

(* Split watchpoint targets into rotation groups of at most
   [wp_capacity]; client [c] arms group [c mod n_groups] (§3.2.3's
   cooperative approach when targets exceed the debug registers). *)
let wp_groups ~wp_capacity targets =
  let rec chunks = function
    | [] -> []
    | l ->
      let rec take k = function
        | x :: tl when k > 0 ->
          let a, b = take (k - 1) tl in
          (x :: a, b)
        | rest -> ([], rest)
      in
      let g, rest = take wp_capacity l in
      g :: chunks rest
  in
  match chunks targets with [] -> [ [] ] | gs -> gs

let diagnose ?(config = Config.default) ?(pool = Parallel.Pool.sequential)
    ?oracle ~bug_name ~failure_type ~program ~workload_of
    ~(failure : Exec.Failure.report) () =
  let t_offline0 = Sys.time () in
  (* Compile the program once up front (memoised in [Analysis.Cache]):
     every client run and PT decode below then hits the cache, and the
     one-time lowering cost is charged to the offline phase where it
     belongs, not to the first monitored client. *)
  ignore (Analysis.Cache.lowered program);
  let slice = Slicing.Slicer.compute program failure in
  let target_sig = Exec.Failure.signature failure in
  let offline_time = ref (Sys.time () -. t_offline0) in
  let t_online0 = Sys.time () in
  let sigma = ref config.Config.sigma0 in
  let discovered = ref IntSet.empty in
  let confirmed = ref IntSet.empty in
  let observations = ref [] in
  let repr_failing : Client.report option ref = ref None in
  let overheads = ref [] in
  let base_cycles = ref 0.0 and extra_cycles = ref 0.0 in
  let recurrences = ref 0 in
  let total_runs = ref 0 in
  let client_counter = ref 0 in
  let iteration = ref 0 in
  let best_sketch = ref None in
  let slice_size = Slicing.Slicer.instr_count slice in
  let stop = ref false in
  let trace = ref [] in
  while not !stop do
    incr iteration;
    (* --- offline: choose the tracked portion, build the patch --- *)
    let t0 = Sys.time () in
    let tracked =
      List.sort_uniq compare
        (Slicing.Slicer.take slice !sigma @ IntSet.elements !discovered)
    in
    let plan =
      Instrument.Place.compute ~enable_cf:config.enable_cf
        ~enable_df:config.enable_df program tracked
    in
    (* Client [c] arms rotation group [c mod n]: precomputed as an
       array -- the per-client [List.nth] lookup was O(groups) on the
       fleet hot path. *)
    let groups =
      Array.of_list
        (wp_groups ~wp_capacity:config.wp_capacity
           plan.Instrument.Plan.wp_targets)
    in
    let n_groups = Array.length groups in
    offline_time := !offline_time +. (Sys.time () -. t0);
    (* --- online: gather monitored failing and successful runs ---

       Client runs are dispatched in batches across [pool]; each run is
       a pure function of (client index, plan), so speculative surplus
       runs are discarded without trace.  All accounting happens in
       [consume], in client order, making quotas, recurrence counts and
       the representative failing run bit-identical to the sequential
       loop. *)
    let fails = ref 0 and succs = ref 0 and clients = ref 0 in
    let iter_overheads = ref [] in
    let iter_reports = ref [] in
    let base = !client_counter in
    let quota_open () = !fails < config.fail_quota || !succs < config.succ_quota in
    let consumed =
      if not (quota_open ()) then 0
      else
        Parallel.Pool.map_until pool
          ~next:(fun i ->
            if i >= config.max_clients_per_iter then None
            else
              let c = base + i in
              Some
                (fun () ->
                  Client.run_one ~wp_capacity:config.wp_capacity
                    ~preempt_prob:config.preempt_prob
                    ~max_steps:config.max_steps
                    ~data_source:config.data_source
                    ~redact:config.redact_values ~plan
                    ~wp_allowed:groups.(c mod n_groups) program
                    (workload_of c)))
          ~consume:(fun _ (report : Client.report) ->
            incr clients;
            incr total_runs;
            overheads := report.r_overhead_pct :: !overheads;
            iter_overheads := report.r_overhead_pct :: !iter_overheads;
            base_cycles := !base_cycles +. report.r_base_cycles;
            extra_cycles := !extra_cycles +. report.r_extra_cycles;
            let matches = report.r_signature = Some target_sig in
            if matches then begin
              (* Recurrences (the Table 1 latency metric) count only the
                 failing runs AsT actually needed, not surplus failures
                 that happen while waiting for enough successful runs. *)
              if !fails < config.fail_quota then incr recurrences;
              incr fails;
              repr_failing := Some report
            end
            else if report.r_signature = None then incr succs;
            (* Other failures are different bugs: ignored here. *)
            if matches || report.r_signature = None then
              iter_reports := (report, matches) :: !iter_reports;
            quota_open () && !clients < config.max_clients_per_iter)
          ()
    in
    client_counter := base + consumed;
    (* --- refinement (§3.2): keep tracked statements that executed in
       failing runs; adopt watchpoint-discovered statements the
       alias-free slice missed --- *)
    let tracked_set = IntSet.of_list tracked in
    List.iter
      (fun ((r : Client.report), matches) ->
        if matches then begin
          let executed = IntSet.of_list (Client.executed_set r) in
          confirmed := IntSet.union !confirmed (IntSet.inter tracked_set executed)
        end;
        (* Statements the alias-free slice missed are discovered by any
           monitored run whose watchpoints trap on them -- successful
           runs included (in failing runs the watchpoint may only be
           armed after the racing write already happened). *)
        List.iter
          (fun (w : Hw.Watchpoint.trap) ->
            if not (IntSet.mem w.w_iid tracked_set) then
              discovered := IntSet.add w.w_iid !discovered)
          r.r_traps;
        observations :=
          Predict.Stats.
            {
              predictors =
                Predict.Predictor.of_run ~ranges:config.range_predicates
                  ~tracked ~branch_outcomes:r.r_branches ~traps:r.r_traps ();
              failing = matches;
            }
          :: !observations)
      !iter_reports;
    (* --- build the sketch from the representative failing run --- *)
    (match !repr_failing with
     | None -> ()
     | Some repr ->
       (* Gist reports program counters as *source lines* (§4), so the
          statement set is closed over source lines: every IR
          instruction on a line one pc hit is part of the sketch. *)
       let core_set =
         IntSet.union !confirmed
           (IntSet.union !discovered (IntSet.singleton failure.pc))
       in
       let lines = Hashtbl.create 16 in
       IntSet.iter
         (fun iid ->
           let l = Ir.Program.loc_of program iid in
           if l.line > 0 then Hashtbl.replace lines (l.file, l.line) ())
         core_set;
       let stmt_set =
         List.fold_left
           (fun acc (i : Ir.Types.instr) ->
             if i.loc.line > 0 && Hashtbl.mem lines (i.loc.file, i.loc.line)
             then IntSet.add i.iid acc
             else acc)
           core_set
           (Ir.Program.all_instrs program)
       in
       let per_thread =
         List.filter_map
           (fun (tid, iids) ->
             let filtered = List.filter (fun iid -> IntSet.mem iid stmt_set) iids in
             if filtered = [] then None else Some (tid, filtered))
           repr.r_executed
       in
       let ranked = Predict.Stats.rank !observations in
       let sketch =
         Fsketch.Sketch.build ~bug_name ~failure_type ~program
           ~failure ~per_thread ~traps:repr.r_traps ~ranked
       in
       best_sketch := Some sketch;
       (* --- developer decision (§3.2.1): stop AsT or double sigma --- *)
       let satisfied = match oracle with Some f -> f sketch | None -> false in
       if satisfied then stop := true);
    (let avg_l l =
       match l with
       | [] -> 0.0
       | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
     in
     trace :=
       {
         it_sigma = !sigma;
         it_tracked = List.length tracked;
         it_fails = !fails;
         it_succs = !succs;
         it_clients = !clients;
         it_avg_overhead = avg_l !iter_overheads;
         it_oracle_pass = !stop;
       }
       :: !trace);
    if not !stop then begin
      if !sigma >= slice_size || !iteration >= config.max_iterations then
        stop := true
      else sigma := !sigma * 2
    end
  done;
  let online_time = Sys.time () -. t_online0 -. !offline_time in
  let sketch =
    match !best_sketch with
    | Some s -> s
    | None ->
      (* No monitored failure recurred: the sketch degenerates to the
         failing statement alone. *)
      Fsketch.Sketch.build ~bug_name ~failure_type ~program ~failure
        ~per_thread:[ (failure.tid, [ failure.pc ]) ]
        ~traps:[] ~ranked:[]
  in
  let avg l =
    match l with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  {
    sketch;
    slice;
    iterations = !iteration;
    recurrences = !recurrences;
    total_runs = !total_runs;
    avg_overhead_pct =
      (if !base_cycles > 0.0 then 100.0 *. !extra_cycles /. !base_cycles
       else avg !overheads);
    offline_time_s = !offline_time;
    online_time_s = max online_time 0.0;
    final_sigma = !sigma;
    tracked =
      List.sort_uniq compare
        (Slicing.Slicer.take slice !sigma @ IntSet.elements !discovered);
    trace = List.rev !trace;
  }
