(* The Gist server: static slicing, adaptive slice tracking (AsT),
   slice refinement from client reports, statistical predictor ranking,
   and failure-sketch construction (paper Fig. 2, steps 1, 3, 5).

   AsT (§3.2.1): track sigma statements backward from the failure;
   double sigma each iteration until the developer (the [oracle]
   callback) judges the sketch sufficient. *)

open Ir.Types
module IntSet = Set.Make (Int)

type iteration_info = {
  it_sigma : int;
  it_tracked : int;
  it_fails : int;
  it_succs : int;
  it_clients : int;
  it_avg_overhead : float;
  it_oracle_pass : bool;
  it_dispatched : int;   (* dispatches, including retries *)
  it_lost : int;         (* crashed / dropped / timed-out dispatches *)
  it_rejected : int;     (* reports refused by validation *)
  it_retried : int;      (* re-dispatches after a loss or rejection *)
  it_quarantined : int;  (* slots abandoned after [max_retries] *)
  it_degraded : bool;    (* valid reports stayed below quorum *)
}

(* Fleet-protocol health across the whole diagnosis. *)
type fleet_stats = {
  f_dispatched : int;
  f_delivered : int;     (* reports that arrived (valid + rejected) *)
  f_valid : int;
  f_lost : int;
  f_rejected : int;
  f_retried : int;
  f_quarantined : int;
  f_degraded_iters : int;
  f_by_kind : (string * int) list;   (* injected fault kind -> count *)
  f_by_reason : (string * int) list; (* rejection reason -> count *)
}

type diagnosis = {
  sketch : Fsketch.Sketch.t;
  slice : Slicing.Slicer.t;
  iterations : int;
  recurrences : int;     (* matching failing runs consumed by AsT *)
  total_runs : int;      (* monitored production runs *)
  avg_overhead_pct : float; (* fleet-wide: aggregate extra / aggregate base *)
  offline_time_s : float; (* static analysis + instrumentation time *)
  online_time_s : float;  (* simulated fleet wall-clock, incl. retry backoff *)
  final_sigma : int;
  tracked : iid list;     (* statements tracked in the last iteration *)
  trace : iteration_info list; (* per-AsT-iteration progress *)
  fleet : fleet_stats;
}

(* Find the first production failure (unmonitored runs): what a
   coredump/stack-trace report gives the developer to start from. *)
let first_failure ?(max_runs = 2000) ?(preempt_prob = 0.35)
    ?(max_steps = 400_000) program workload_of =
  let rec go k =
    if k >= max_runs then None
    else
      let result =
        Exec.Interp.run ~max_steps ~preempt_prob program (workload_of k)
      in
      match result.outcome with
      | Exec.Interp.Failed rep -> Some rep
      | Exec.Interp.Success -> go (k + 1)
  in
  go 0

(* Split watchpoint targets into rotation groups of at most
   [wp_capacity]; client [c] arms group [c mod n_groups] (§3.2.3's
   cooperative approach when targets exceed the debug registers). *)
let wp_groups ~wp_capacity targets =
  if wp_capacity <= 0 then
    invalid_arg
      (Printf.sprintf "Server.wp_groups: wp_capacity must be positive (got %d)"
         wp_capacity);
  let rec chunks = function
    | [] -> []
    | l ->
      let rec take k = function
        | x :: tl when k > 0 ->
          let a, b = take (k - 1) tl in
          (x :: a, b)
        | rest -> ([], rest)
      in
      let g, rest = take wp_capacity l in
      g :: chunks rest
  in
  match chunks targets with [] -> [ [] ] | gs -> gs

let diagnose ?(config = Config.default) ?(pool = Parallel.Pool.sequential)
    ?oracle ~bug_name ~failure_type ~program ~workload_of
    ~(failure : Exec.Failure.report) () =
  let t_offline0 = Sys.time () in
  (* Compile the program once up front (memoised in [Analysis.Cache]):
     every client run and PT decode below then hits the cache, and the
     one-time lowering cost is charged to the offline phase where it
     belongs, not to the first monitored client. *)
  ignore (Analysis.Cache.lowered program);
  (* Exclusive upper bound on valid statement ids for payload
     validation (iids are 1-based, so this is max iid + 1, not the
     instruction count). *)
  let n_instrs =
    1
    + List.fold_left
        (fun m (i : Ir.Types.instr) -> max m i.iid)
        0
        (Ir.Program.all_instrs program)
  in
  let slice = Slicing.Slicer.compute program failure in
  let target_sig = Exec.Failure.signature failure in
  let offline_time = ref (Sys.time () -. t_offline0) in
  let t_online0 = Sys.time () in
  let sigma = ref config.Config.sigma0 in
  let discovered = ref IntSet.empty in
  let confirmed = ref IntSet.empty in
  let observations = ref [] in
  let repr_failing : Client.report option ref = ref None in
  let overheads = ref [] in
  let base_cycles = ref 0.0 and extra_cycles = ref 0.0 in
  let recurrences = ref 0 in
  let total_runs = ref 0 in
  let client_counter = ref 0 in
  let iteration = ref 0 in
  let best_sketch = ref None in
  let slice_size = Slicing.Slicer.instr_count slice in
  let stop = ref false in
  let trace = ref [] in
  (* Fleet-protocol accounting (faults, rejections, retries). *)
  let rates = config.Config.fault_rates in
  let f_dispatched = ref 0 and f_valid = ref 0 and f_lost = ref 0 in
  let f_rejected = ref 0 and f_retried = ref 0 in
  let f_quarantined = ref 0 and f_degraded = ref 0 in
  let by_kind : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let by_reason : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let bump tbl k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  let sim_delay = ref 0.0 in
  (* Previous iteration's (plan, digest, rotation groups): what a
     stale client runs under. *)
  let prev_plan = ref None in
  while not !stop do
    incr iteration;
    (* --- offline: choose the tracked portion, build the patch --- *)
    let t0 = Sys.time () in
    let tracked =
      List.sort_uniq compare
        (Slicing.Slicer.take slice !sigma @ IntSet.elements !discovered)
    in
    let plan =
      Instrument.Place.compute ~enable_cf:config.enable_cf
        ~enable_df:config.enable_df program tracked
    in
    (* Client [c] arms rotation group [c mod n]: precomputed as an
       array -- the per-client [List.nth] lookup was O(groups) on the
       fleet hot path. *)
    let groups =
      Array.of_list
        (wp_groups ~wp_capacity:config.wp_capacity
           plan.Instrument.Plan.wp_targets)
    in
    let plan_id = Instrument.Plan.id plan in
    let prev = !prev_plan in
    offline_time := !offline_time +. (Sys.time () -. t0);
    (* --- online: gather monitored failing and successful runs ---

       Fleet slots are dispatched in batches across [pool]; each slot
       -- its run, any injected faults, retries with exponential
       backoff, and protocol validation -- is a pure function of (slot
       index, plan), so speculative surplus slots are discarded without
       trace.  All accounting happens in [consume], in slot order,
       making quotas, recurrence counts and the representative failing
       run bit-identical to the sequential loop at any pool size, with
       or without fault injection. *)
    let fails = ref 0 and succs = ref 0 and clients = ref 0 in
    let iter_overheads = ref [] in
    let iter_reports = ref [] in
    let it_dispatched = ref 0 and it_lost = ref 0 and it_rejected = ref 0 in
    let it_retried = ref 0 and it_quarantined = ref 0 and it_valid = ref 0 in
    let quota_open () = !fails < config.fail_quota || !succs < config.succ_quota in
    (* One fleet slot: dispatch, injected faults, bounded retry with
       exponential backoff in simulated fleet time, quarantine once
       [max_retries] re-dispatches are spent.  A crashed client, a
       dropped report and a straggler all look the same to the server
       (nothing arrives by the deadline), so each costs a full
       [straggler_timeout_s] wait and the run itself is skipped --
       nothing it produced could have arrived. *)
    let run_slot c =
      let lost = ref 0 and rejects = ref [] and kinds = ref [] in
      let delay = ref 0.0 in
      let valid = ref None in
      let attempt = ref 0 in
      let quarantined = ref false in
      let running = ref true in
      while !running do
        let inj =
          Faults.Fault.draw rates ~seed:config.Config.fault_seed ~client:c
            ~attempt:!attempt
        in
        (if
           inj.Faults.Fault.j_crash || inj.Faults.Fault.j_drop
           || inj.Faults.Fault.j_straggler
         then begin
           incr lost;
           delay := !delay +. config.Config.straggler_timeout_s;
           kinds :=
             (if inj.Faults.Fault.j_crash then Faults.Fault.Crash
              else if inj.Faults.Fault.j_drop then Faults.Fault.Drop
              else Faults.Fault.Straggler)
             :: !kinds
         end
         else begin
           (* A stale client runs under the previous iteration's plan
              and rotation, and seals with that plan's digest; the
              server's freshness check rejects the report.  On the
              first iteration there is no previous plan to be stale
              against. *)
           let stale = inj.Faults.Fault.j_stale_plan && prev <> None in
           let use_plan, use_plan_id, use_groups =
             if stale then Option.get prev else (plan, plan_id, groups)
           in
           if stale then kinds := Faults.Fault.Stale_plan :: !kinds;
           let tamper =
             match
               (inj.Faults.Fault.j_pt_truncate, inj.Faults.Fault.j_pt_corrupt)
             with
             | None, None -> None
             | tr, co ->
               Some
                 (fun ~tid packets ->
                   let packets =
                     match tr with
                     | Some salt ->
                       Faults.Tamper.truncate_packets
                         ~salt:(Faults.Fault.mix salt tid) packets
                     | None -> packets
                   in
                   match co with
                   | Some salt ->
                     Faults.Tamper.corrupt_packets
                       ~salt:(Faults.Fault.mix salt tid) ~n_instrs packets
                   | None -> packets)
           in
           if inj.Faults.Fault.j_pt_truncate <> None then
             kinds := Faults.Fault.Pt_truncate :: !kinds;
           if inj.Faults.Fault.j_pt_corrupt <> None then
             kinds := Faults.Fault.Pt_corrupt :: !kinds;
           let n_g = Array.length use_groups in
           let report =
             Client.run_one ~wp_capacity:config.wp_capacity
               ~preempt_prob:config.preempt_prob ~max_steps:config.max_steps
               ~data_source:config.data_source ~redact:config.redact_values
               ?tamper ~plan:use_plan ~wp_allowed:use_groups.(c mod n_g)
               program (workload_of c)
           in
           (* Watchpoint-log corruption: either in-ring (pre-seal, so
              the checksum matches the damaged payload and only the
              semantic range check can catch it) or in transit
              (post-seal, caught by the checksum).  Both validation
              layers stay exercised under any fault mix. *)
           let report, flip_in_transit =
             match inj.Faults.Fault.j_wp_corrupt with
             | None -> (report, false)
             | Some salt ->
               kinds := Faults.Fault.Wp_corrupt :: !kinds;
               if Faults.Tamper.wp_corrupt_in_transit ~salt then (report, true)
               else
                 ( {
                     report with
                     Client.r_traps =
                       Faults.Tamper.corrupt_traps ~salt ~n_instrs
                         report.Client.r_traps;
                   },
                   false )
           in
           let env = Protocol.seal ~client:c ~plan_id:use_plan_id report in
           let env =
             if flip_in_transit then
               { env with Protocol.e_checksum = env.Protocol.e_checksum lxor 1 }
             else env
           in
           match Protocol.validate ~n_instrs ~plan_id env with
           | Ok r ->
             valid := Some r;
             running := false
           | Error rej -> rejects := rej :: !rejects
         end);
        if !running then
          if !attempt >= config.Config.max_retries then begin
            quarantined := true;
            running := false
          end
          else begin
            delay :=
              !delay
              +. (config.Config.retry_backoff_s *. (2.0 ** float_of_int !attempt));
            incr attempt
          end
      done;
      ( !valid,
        !attempt + 1,
        !lost,
        List.rev !rejects,
        List.rev !kinds,
        !delay,
        !quarantined )
    in
    let run_pass () =
      let base = !client_counter in
      let pass_valid = ref 0 and pass_slots = ref 0 in
      let budget = config.max_clients_per_iter - !clients in
      let consumed =
        if budget <= 0 || not (quota_open ()) then 0
        else
          Parallel.Pool.map_until pool
            ~next:(fun i ->
              if i >= budget then None
              else
                let c = base + i in
                Some (fun () -> run_slot c))
            ~consume:(fun _
                          ( valid,
                            attempts,
                            lost,
                            rejects,
                            kinds,
                            delay,
                            quarantined ) ->
              incr clients;
              incr pass_slots;
              it_dispatched := !it_dispatched + attempts;
              it_lost := !it_lost + lost;
              it_rejected := !it_rejected + List.length rejects;
              it_retried := !it_retried + (attempts - 1);
              if quarantined then incr it_quarantined;
              sim_delay := !sim_delay +. delay;
              (* Runs that executed (everything but lost dispatches)
                 are monitored production runs, valid or not. *)
              total_runs := !total_runs + (attempts - lost);
              List.iter (fun k -> bump by_kind (Faults.Fault.kind_name k)) kinds;
              List.iter
                (fun rej -> bump by_reason (Protocol.reject_label rej))
                rejects;
              (match valid with
               | None -> ()
               | Some (report : Client.report) ->
                 incr pass_valid;
                 incr it_valid;
                 overheads := report.r_overhead_pct :: !overheads;
                 iter_overheads := report.r_overhead_pct :: !iter_overheads;
                 base_cycles := !base_cycles +. report.r_base_cycles;
                 extra_cycles := !extra_cycles +. report.r_extra_cycles;
                 let matches = report.r_signature = Some target_sig in
                 if matches then begin
                   (* Recurrences (the Table 1 latency metric) count
                      only the failing runs AsT actually needed, not
                      surplus failures that happen while waiting for
                      enough successful runs. *)
                   if !fails < config.fail_quota then incr recurrences;
                   incr fails;
                   repr_failing := Some report
                 end
                 else if report.r_signature = None then incr succs;
                 (* Other failures are different bugs: ignored here. *)
                 if matches || report.r_signature = None then
                   iter_reports := (report, matches) :: !iter_reports);
              quota_open () && !clients < config.max_clients_per_iter)
            ()
      in
      client_counter := base + consumed;
      (!pass_valid, !pass_slots)
    in
    (* Quorum with graceful degradation: if fewer than [quorum_frac]
       of a pass's slots delivered a valid report, re-run once with
       fresh clients (lost and rejected slots stay consumed); if the
       fleet still cannot reach quorum the iteration is degraded and
       sigma is carried forward instead of doubled -- never steer AsT
       from a sample the faults have thinned out. *)
    let below_quorum v s =
      s > 0 && float_of_int v < config.Config.quorum_frac *. float_of_int s
    in
    let v1, s1 = run_pass () in
    let degraded =
      if
        below_quorum v1 s1 && quota_open ()
        && !clients < config.max_clients_per_iter
      then begin
        let v2, s2 = run_pass () in
        below_quorum (v1 + v2) (s1 + s2)
      end
      else below_quorum v1 s1
    in
    if degraded then incr f_degraded;
    f_dispatched := !f_dispatched + !it_dispatched;
    f_valid := !f_valid + !it_valid;
    f_lost := !f_lost + !it_lost;
    f_rejected := !f_rejected + !it_rejected;
    f_retried := !f_retried + !it_retried;
    f_quarantined := !f_quarantined + !it_quarantined;
    prev_plan := Some (plan, plan_id, groups);
    (* --- refinement (§3.2): keep tracked statements that executed in
       failing runs; adopt watchpoint-discovered statements the
       alias-free slice missed --- *)
    let tracked_set = IntSet.of_list tracked in
    List.iter
      (fun ((r : Client.report), matches) ->
        if matches then begin
          let executed = IntSet.of_list (Client.executed_set r) in
          confirmed := IntSet.union !confirmed (IntSet.inter tracked_set executed)
        end;
        (* Statements the alias-free slice missed are discovered by any
           monitored run whose watchpoints trap on them -- successful
           runs included (in failing runs the watchpoint may only be
           armed after the racing write already happened). *)
        List.iter
          (fun (w : Hw.Watchpoint.trap) ->
            if not (IntSet.mem w.w_iid tracked_set) then
              discovered := IntSet.add w.w_iid !discovered)
          r.r_traps;
        observations :=
          Predict.Stats.
            {
              predictors =
                Predict.Predictor.of_run ~ranges:config.range_predicates
                  ~tracked ~branch_outcomes:r.r_branches ~traps:r.r_traps ();
              failing = matches;
            }
          :: !observations)
      !iter_reports;
    (* --- build the sketch from the representative failing run --- *)
    (match !repr_failing with
     | None -> ()
     | Some repr ->
       (* Gist reports program counters as *source lines* (§4), so the
          statement set is closed over source lines: every IR
          instruction on a line one pc hit is part of the sketch. *)
       let core_set =
         IntSet.union !confirmed
           (IntSet.union !discovered (IntSet.singleton failure.pc))
       in
       let lines = Hashtbl.create 16 in
       IntSet.iter
         (fun iid ->
           let l = Ir.Program.loc_of program iid in
           if l.line > 0 then Hashtbl.replace lines (l.file, l.line) ())
         core_set;
       let stmt_set =
         List.fold_left
           (fun acc (i : Ir.Types.instr) ->
             if i.loc.line > 0 && Hashtbl.mem lines (i.loc.file, i.loc.line)
             then IntSet.add i.iid acc
             else acc)
           core_set
           (Ir.Program.all_instrs program)
       in
       let per_thread =
         List.filter_map
           (fun (tid, iids) ->
             let filtered = List.filter (fun iid -> IntSet.mem iid stmt_set) iids in
             if filtered = [] then None else Some (tid, filtered))
           repr.r_executed
       in
       let ranked = Predict.Stats.rank !observations in
       let sketch =
         Fsketch.Sketch.build ~bug_name ~failure_type ~program
           ~failure ~per_thread ~traps:repr.r_traps ~ranked
       in
       best_sketch := Some sketch;
       (* --- developer decision (§3.2.1): stop AsT or double sigma --- *)
       let satisfied = match oracle with Some f -> f sketch | None -> false in
       if satisfied then stop := true);
    (let avg_l l =
       match l with
       | [] -> 0.0
       | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
     in
     trace :=
       {
         it_sigma = !sigma;
         it_tracked = List.length tracked;
         it_fails = !fails;
         it_succs = !succs;
         it_clients = !clients;
         it_avg_overhead = avg_l !iter_overheads;
         it_oracle_pass = !stop;
         it_dispatched = !it_dispatched;
         it_lost = !it_lost;
         it_rejected = !it_rejected;
         it_retried = !it_retried;
         it_quarantined = !it_quarantined;
         it_degraded = degraded;
       }
       :: !trace);
    if not !stop then begin
      if !iteration >= config.max_iterations then stop := true
      else if degraded then
        (* Degraded mode: hold sigma for another iteration rather than
           doubling on evidence the faults thinned out. *)
        ()
      else if !sigma >= slice_size then stop := true
      else sigma := !sigma * 2
    end
  done;
  let online_time = Sys.time () -. t_online0 -. !offline_time in
  let sketch =
    match !best_sketch with
    | Some s -> s
    | None ->
      (* No monitored failure recurred: the sketch degenerates to the
         failing statement alone. *)
      Fsketch.Sketch.build ~bug_name ~failure_type ~program ~failure
        ~per_thread:[ (failure.tid, [ failure.pc ]) ]
        ~traps:[] ~ranked:[]
  in
  let avg l =
    match l with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  {
    sketch;
    slice;
    iterations = !iteration;
    recurrences = !recurrences;
    total_runs = !total_runs;
    avg_overhead_pct =
      (if !base_cycles > 0.0 then 100.0 *. !extra_cycles /. !base_cycles
       else avg !overheads);
    offline_time_s = !offline_time;
    (* Retry backoff and straggler deadlines happen in fleet time, not
       server CPU time: charge them to the online phase. *)
    online_time_s = max online_time 0.0 +. !sim_delay;
    final_sigma = !sigma;
    tracked =
      List.sort_uniq compare
        (Slicing.Slicer.take slice !sigma @ IntSet.elements !discovered);
    trace = List.rev !trace;
    fleet =
      {
        f_dispatched = !f_dispatched;
        f_delivered = !f_dispatched - !f_lost;
        f_valid = !f_valid;
        f_lost = !f_lost;
        f_rejected = !f_rejected;
        f_retried = !f_retried;
        f_quarantined = !f_quarantined;
        f_degraded_iters = !f_degraded;
        f_by_kind =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_kind []
          |> List.sort compare;
        f_by_reason =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_reason []
          |> List.sort compare;
      };
  }
