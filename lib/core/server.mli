(** The Gist server: static slicing, adaptive slice tracking (AsT),
    slice refinement from client reports, statistical predictor
    ranking, and failure-sketch construction (paper Fig. 2, steps 1, 3
    and 5). *)

open Ir.Types

(** Why the adaptive stopping rule ([Config.early_exit]) cut work
    short.  [Separated]: a checkpoint inside the iteration found the
    top predictor's F_beta lower confidence bound above every rival's
    upper bound ({!Predict.Stats.Acc.separated}), so the rest of the
    iteration's client budget was skipped.  [Converged]: the same
    predictor held separation at the end of two consecutive
    non-degraded iterations, so the remaining sigma doublings were
    skipped and the diagnosis stopped. *)
type early_exit = Separated | Converged

(** ["separated"] / ["converged"], for reports and JSON. *)
val early_exit_label : early_exit -> string

(** Per-AsT-iteration progress, for reporting and the Fig. 12 sweep. *)
type iteration_info = {
  it_sigma : int;
  it_tracked : int;
  it_fails : int;
  it_succs : int;
  it_clients : int;
  it_avg_overhead : float;
  it_oracle_pass : bool;
  it_dispatched : int;  (** dispatches, including retries *)
  it_lost : int;        (** crashed / dropped / timed-out dispatches *)
  it_rejected : int;    (** reports refused by {!Protocol.validate} *)
  it_retried : int;     (** re-dispatches after a loss or rejection *)
  it_quarantined : int; (** slots abandoned after [max_retries] *)
  it_degraded : bool;   (** valid reports stayed below quorum *)
  it_early_exit : early_exit option;
      (** adaptive stopping-rule verdict; always [None] when
          [Config.early_exit] is off *)
}

(** Fleet-protocol health across the whole diagnosis. *)
type fleet_stats = {
  f_dispatched : int;
  f_delivered : int;  (** reports that arrived (valid + rejected) *)
  f_valid : int;
  f_lost : int;
  f_rejected : int;
  f_retried : int;
  f_quarantined : int;
  f_degraded_iters : int;
  f_by_kind : (string * int) list;
      (** injected fault kind ({!Faults.Fault.kind_name}) -> count *)
  f_by_reason : (string * int) list;
      (** rejection reason ({!Protocol.reject_label}) -> count *)
}

(** How valid reports feed refinement and ranking.

    [Streaming] (the default, and the production path): each accepted
    report is folded into per-predictor sufficient statistics
    ({!Predict.Stats.Acc}) and the confirmed/discovered sets the
    moment it is consumed, then dropped — server state per iteration
    is O(slice), not O(fleet).

    [Retained] is the reference oracle, kept like [Exec.Refinterp]:
    accepted reports are retained and refinement replays the original
    batch loop.  Both modes share the wire protocol, fault regime and
    slot ordering, and produce bit-identical diagnoses. *)
type ingest_mode = Streaming | Retained

type diagnosis = {
  sketch : Fsketch.Sketch.t;
  slice : Slicing.Slicer.t;
  iterations : int;
  recurrences : int;  (** matching failing runs AsT consumed (Table 1) *)
  total_runs : int;   (** monitored production runs *)
  avg_overhead_pct : float;
      (** fleet-wide: aggregate extra cycles over aggregate base cycles *)
  offline_time_s : float; (** static analysis + instrumentation time *)
  online_time_s : float;
      (** simulated fleet wall-clock, including retry backoff and
          straggler deadlines *)
  final_sigma : int;
  tracked : iid list; (** statements tracked in the last iteration *)
  trace : iteration_info list;
  fleet : fleet_stats;
}

(** Scan unmonitored production runs for the first failure: the
    coredump/stack-trace report a developer starts from. *)
val first_failure :
  ?max_runs:int ->
  ?preempt_prob:float ->
  ?max_steps:int ->
  program ->
  (int -> Exec.Interp.workload) ->
  Exec.Failure.report option

(** Split watchpoint targets into rotation groups of at most
    [wp_capacity]; client [c] arms group [c mod n] (§3.2.3's
    cooperative approach).  Always returns at least one (possibly
    empty) group.
    @raise Invalid_argument if [wp_capacity <= 0]. *)
val wp_groups : wp_capacity:int -> iid list -> iid list list

(** One bug's AsT diagnosis as an event-driven state machine, for
    drivers that multiplex many concurrent diagnoses over one pool
    (the [Serve] service; {!diagnose} is the one-session case).

    Protocol: ask {!need}; on [Slots n], take up to [n] thunks with
    {!grant} and run them anywhere (they are pure — any order, any
    domain); hand every outcome of a grant back with {!deliver}, in
    grant order; repeat until [Finished], then read {!result}.

    Drivers may speculate: grant more slots than the fold will
    consume, run them concurrently, and deliver the whole batch —
    outcomes arriving after the in-order fold decides to stop are
    discarded unconsumed, exactly like {!Parallel.Pool.map_until}'s
    surplus.  Because all accounting happens in [deliver], in slot
    order, every field of the diagnosis except host-time is a pure
    function of the session's inputs: bit-identical whatever the
    batching, interleaving with other sessions, or pool size. *)
module Session : sig
  type t

  (** What the session wants next.  [Slots n]: up to [n] more fleet
      slots this gathering pass ([Slots 0] only while speculative
      outcomes are still outstanding — deliver them).  [Finished]:
      {!result} is ready. *)
  type need = Slots of int | Finished

  (** One fleet slot's outcome, opaque: produced by a granted thunk,
      meaningful only to {!deliver} on the same session. *)
  type outcome

  (** [create ~bug_name ~failure_type ~program ~workload_of ~failure ()]
      runs the offline phase (slice, via {!Analysis.Cache}) and arms
      the first iteration.  [id] (default 0) keys this session's wire
      envelopes ({!Protocol.envelope}[.e_session]); a multi-bug driver
      must give each live session a distinct id so mis-routed reports
      are rejected, not silently folded into another bug's statistics.
      The id never influences the diagnosis result — only host-time
      fields can differ between ids.
      @raise Config.Invalid if [config] fails {!Config.validate}. *)
  val create :
    ?config:Config.t ->
    ?ingest:ingest_mode ->
    ?oracle:(Fsketch.Sketch.t -> bool) ->
    ?id:int ->
    bug_name:string ->
    failure_type:string ->
    program:program ->
    workload_of:(int -> Exec.Interp.workload) ->
    failure:Exec.Failure.report ->
    unit ->
    t

  val id : t -> int

  (** Advances through all non-gathering work (pass wrap-up, quorum
      re-runs, refinement, ranking, the next iteration's plan) until
      the session either needs slots or is done. *)
  val need : t -> need

  (** [grant t k] hands out up to [k] slot thunks (fewer near the end
      of a pass's budget; [[||]] when stopped or finished).  Each
      thunk is pure and reentrant w.r.t. the session's mutable state. *)
  val grant : t -> int -> (unit -> outcome) array

  (** Fold a granted batch's outcomes back, in grant order.  Must
      receive every outcome of every grant, exactly once. *)
  val deliver : t -> outcome array -> unit

  (** @raise Invalid_argument before {!need} returns [Finished]. *)
  val result : t -> diagnosis

  (** {2 Introspection} *)

  (** A cheap live view of the state machine, for a service status
      report.  Reading it never perturbs the session. *)
  type progress = {
    p_iteration : int;
    p_sigma : int;
    p_tracked : int;    (** statements tracked this iteration *)
    p_clients : int;    (** fleet slots consumed this iteration *)
    p_valid : int;      (** accepted reports this iteration *)
    p_fails : int;
    p_succs : int;
    p_total_runs : int; (** monitored production runs, whole session *)
    p_finished : bool;
  }

  val progress : t -> progress

  (** Running digest of every report this session accepted, in consume
      order (wire digests folded through {!Faults.Fault.mix}).  Two
      sessions that consumed the same reports in the same order agree;
      the recovery audit compares it against the journaled value. *)
  val audit : t -> int

  (** The outcome the containment layer substitutes for a granted
      thunk that raised: deterministic "client crashed, nothing
      arrived", so a poisoned slot degrades exactly like a fleet-fault
      crash instead of killing the service. *)
  val crashed_outcome : t -> outcome

  (** {2 Crash-only snapshots}

      The full session state machine as versioned, digest-checked
      bytes, built from the wire protocol's own varint and digest
      machinery ({!Protocol.Encode}).  Derived state (slice, plans,
      watchpoint groups) is rebuilt deterministically at restore from
      the serialized tracked lists, so snapshots are O(slice + trace)
      and a restored session is a bit-identical continuation: the same
      grants, deliveries and final diagnosis (host-time fields aside)
      as the never-interrupted original. *)

  (** Why bytes were refused by {!restore}. *)
  type snapshot_error =
    | Snapshot_truncated
    | Snapshot_bad_magic
    | Snapshot_bad_version of int
    | Snapshot_bad_digest  (** framing intact, checksum wrong *)
    | Snapshot_mismatch of string
        (** valid bytes, wrong spec: bug name, ingest mode, early-exit
            flag or program shape disagree with the restore arguments *)

  val snapshot_error_to_string : snapshot_error -> string

  (** Serialize the session.  Only legal at a quiescent point: every
      granted thunk delivered and the session not yet finished.
      @raise Invalid_argument mid-grant or after [Finished]. *)
  val snapshot : t -> string

  (** [restore ~bug_name ~failure_type ~program ~workload_of ~failure
      bytes] rebuilds the session from {!snapshot} output plus the
      same create-time spec.  [config], [ingest] and [oracle] must
      match the original [create] (the codec cross-checks what it
      can: bug name, ingest mode, early-exit flag, program shape). *)
  val restore :
    ?config:Config.t ->
    ?ingest:ingest_mode ->
    ?oracle:(Fsketch.Sketch.t -> bool) ->
    bug_name:string ->
    failure_type:string ->
    program:program ->
    workload_of:(int -> Exec.Interp.workload) ->
    failure:Exec.Failure.report ->
    string ->
    (t, snapshot_error) result
end

(** [diagnose ~bug_name ~failure_type ~program ~workload_of ~failure ()]
    runs the full pipeline: slice, then AsT iterations (track the sigma
    closest slice statements plus everything watchpoints discovered,
    gather failing/successful monitored runs, refine, rank predictors,
    build the sketch) until [oracle] — the developer of §3.2.1 — is
    satisfied, sigma exceeds the slice, or [config.max_iterations] is
    reached.

    Every report travels in a {!Protocol} envelope and is validated
    before aggregation; when [config.fault_rates] is non-zero, faults
    are injected deterministically from [config.fault_seed].  Lost and
    rejected dispatches are retried with exponential backoff (in
    simulated fleet time) up to [config.max_retries], then the slot is
    quarantined; an iteration whose valid reports stay below
    [config.quorum_frac] re-runs once with fresh clients and, still
    short of quorum, degrades — sigma is carried forward instead of
    doubled.

    [pool] (default: sequential) dispatches the fleet slots of each
    AsT iteration across domains.  Each slot — its run, any injected
    faults, retries and validation — is a pure function of its index
    and the iteration's instrumentation plan, and results are consumed
    in slot order, so the resulting diagnosis — sketch, recurrences,
    total runs, per-iteration trace, fleet stats — is bit-identical to
    the sequential run whatever the pool size.

    When [config.early_exit] is on, the sequential stopping rule runs
    on top: at fixed consumed-slot checkpoints (every
    [config.checkpoint_every] slots — report counts, never wall-clock,
    so decisions stay bit-identical at any pool size) the iteration
    stops the moment {!Predict.Stats.Acc.separated} holds at error
    rate [config.separation_delta] and the iteration's valid fraction
    still meets quorum; the whole diagnosis stops once the same
    predictor holds separation after two consecutive non-degraded
    iterations.  Degraded iterations suppress both (and reset the
    streak): counts thinned by faults must not steer the rule.

    @raise Config.Invalid if [config] fails {!Config.validate}. *)
val diagnose :
  ?config:Config.t ->
  ?pool:Parallel.Pool.t ->
  ?ingest:ingest_mode ->
  ?oracle:(Fsketch.Sketch.t -> bool) ->
  bug_name:string ->
  failure_type:string ->
  program:program ->
  workload_of:(int -> Exec.Interp.workload) ->
  failure:Exec.Failure.report ->
  unit ->
  diagnosis

(** Did the adaptive rule stop this diagnosis (any iteration recorded
    [Converged])?  Always false when [Config.early_exit] was off. *)
val converged : diagnosis -> bool
