(** Gist configuration.  Defaults mirror the paper's setup: sigma
    starts at 2 and doubles per AsT iteration (§3.2.1), 4 hardware
    watchpoints per client (§3.2.3). *)

(** How data flow reaches the server: hardware watchpoints (the
    paper's prototype) or PTWRITE-style data packets in the PT stream
    (the §6 hardware proposal: no debug-register budget, no cooperative
    rotation, but data only while tracing is on). *)
type data_source = Watchpoints | Ptwrite

type t = {
  sigma0 : int;               (** initial tracked slice size *)
  max_iterations : int;       (** AsT iterations before giving up *)
  fail_quota : int;           (** matching failures gathered per iteration *)
  succ_quota : int;           (** successful runs gathered per iteration *)
  max_clients_per_iter : int;
  wp_capacity : int;          (** hardware watchpoints per client *)
  enable_cf : bool;           (** control-flow tracking (Intel PT) *)
  enable_df : bool;           (** data-flow tracking (watchpoints) *)
  preempt_prob : float;       (** production scheduling nondeterminism *)
  max_steps : int;            (** hang-detector budget per run *)
  data_source : data_source;  (** extension: Ptwrite replaces watchpoints *)
  range_predicates : bool;    (** extension: §6 range/inequality predicates *)
  redact_values : bool;       (** extension: hash string values leaving clients *)
  fault_rates : Faults.Fault.rates;
      (** injected fleet faults ({!Faults.Fault.zero} = off) *)
  fault_seed : int;
      (** seeds the fault-injection stream, independent of run seeds *)
  max_retries : int;
      (** re-dispatches per client slot before the slot is quarantined *)
  retry_backoff_s : float;
      (** base of the exponential retry backoff, in simulated fleet time *)
  straggler_timeout_s : float;
      (** per-dispatch give-up deadline, in simulated fleet time *)
  quorum_frac : float;
      (** valid-report fraction below which an iteration degrades *)
  early_exit : bool;
      (** adaptive AsT: stop gathering at the first checkpoint where the
          top predictor's F_beta confidence bound separates it from the
          runner-up, and stop the diagnosis when the same predictor wins
          two consecutive iterations with separation *)
  separation_delta : float;
      (** error rate of the separation confidence bound, in (0, 1) *)
  checkpoint_every : int;
      (** evaluate the separation bound every N consumed client slots —
          report-count boundaries, not wall-clock, so decisions are
          bit-identical at any [--jobs] *)
}

(** The paper's exhaustive setup; [early_exit] is off, making this the
    reference oracle for the adaptive path. *)
val default : t

(** [default] with [early_exit = true]: the adaptive production preset. *)
val adaptive : t

(** {2 Validation} *)

type error =
  | Bad_sigma0 of int               (** must be positive *)
  | Bad_max_clients_per_iter of int (** must be positive *)
  | Bad_quorum_frac of float        (** must be in (0, 1] *)
  | Bad_separation_delta of float   (** must be in (0, 1) *)
  | Bad_checkpoint_every of int     (** must be positive *)

exception Invalid of error

val error_to_string : error -> string

(** Typed validation at construction time: [Ok t] or the first failing
    knob. *)
val validate : t -> (t, error) result

(** [check t] is [t] if valid; raises {!Invalid} otherwise.
    {!Server.diagnose} calls this on entry. *)
val check : t -> t
