(** Gist configuration.  Defaults mirror the paper's setup: sigma
    starts at 2 and doubles per AsT iteration (§3.2.1), 4 hardware
    watchpoints per client (§3.2.3). *)

(** How data flow reaches the server: hardware watchpoints (the
    paper's prototype) or PTWRITE-style data packets in the PT stream
    (the §6 hardware proposal: no debug-register budget, no cooperative
    rotation, but data only while tracing is on). *)
type data_source = Watchpoints | Ptwrite

type t = {
  sigma0 : int;               (** initial tracked slice size *)
  max_iterations : int;       (** AsT iterations before giving up *)
  fail_quota : int;           (** matching failures gathered per iteration *)
  succ_quota : int;           (** successful runs gathered per iteration *)
  max_clients_per_iter : int;
  wp_capacity : int;          (** hardware watchpoints per client *)
  enable_cf : bool;           (** control-flow tracking (Intel PT) *)
  enable_df : bool;           (** data-flow tracking (watchpoints) *)
  preempt_prob : float;       (** production scheduling nondeterminism *)
  max_steps : int;            (** hang-detector budget per run *)
  data_source : data_source;  (** extension: Ptwrite replaces watchpoints *)
  range_predicates : bool;    (** extension: §6 range/inequality predicates *)
  redact_values : bool;       (** extension: hash string values leaving clients *)
  fault_rates : Faults.Fault.rates;
      (** injected fleet faults ({!Faults.Fault.zero} = off) *)
  fault_seed : int;
      (** seeds the fault-injection stream, independent of run seeds *)
  max_retries : int;
      (** re-dispatches per client slot before the slot is quarantined *)
  retry_backoff_s : float;
      (** base of the exponential retry backoff, in simulated fleet time *)
  straggler_timeout_s : float;
      (** per-dispatch give-up deadline, in simulated fleet time *)
  quorum_frac : float;
      (** valid-report fraction below which an iteration degrades *)
}

val default : t
