(* Gist configuration knobs.  The defaults mirror the paper's setup:
   sigma starts at 2 (§3.2.1), doubles per AsT iteration, 4 hardware
   watchpoints per client (§3.2.3). *)

(* How data flow reaches the server: hardware watchpoints (the paper's
   prototype) or PTWRITE-style data packets in the PT stream (the §6
   hardware proposal: no debug-register budget, no cooperative
   rotation, but data only while tracing is on). *)
type data_source = Watchpoints | Ptwrite

type t = {
  sigma0 : int;              (* initial tracked slice size *)
  max_iterations : int;      (* AsT iterations before giving up *)
  fail_quota : int;          (* matching failures to gather per iteration *)
  succ_quota : int;          (* successful runs to gather per iteration *)
  max_clients_per_iter : int;
  wp_capacity : int;         (* hardware watchpoints per client *)
  enable_cf : bool;          (* control-flow tracking (Intel PT) *)
  enable_df : bool;          (* data-flow tracking (watchpoints) *)
  preempt_prob : float;      (* production scheduling nondeterminism *)
  max_steps : int;           (* hang detector budget per run *)
  data_source : data_source; (* extension: Ptwrite replaces watchpoints *)
  range_predicates : bool;   (* extension: mine §6 range/inequality predicates *)
  redact_values : bool;      (* extension: hash string values leaving clients *)
  fault_rates : Faults.Fault.rates; (* injected fleet faults (zero = off) *)
  fault_seed : int;          (* fault-injection stream, independent of run seeds *)
  max_retries : int;         (* re-dispatches per client slot before quarantine *)
  retry_backoff_s : float;   (* base of the exponential retry backoff (simulated) *)
  straggler_timeout_s : float; (* give-up deadline per dispatch (simulated) *)
  quorum_frac : float;       (* valid-report fraction below which an iteration degrades *)
}

let default =
  {
    sigma0 = 2;
    max_iterations = 8;
    fail_quota = 1;
    succ_quota = 8;
    max_clients_per_iter = 600;
    wp_capacity = 4;
    enable_cf = true;
    enable_df = true;
    preempt_prob = 0.35;
    max_steps = 400_000;
    data_source = Watchpoints;
    range_predicates = false;
    redact_values = false;
    fault_rates = Faults.Fault.zero;
    fault_seed = 1;
    max_retries = 2;
    retry_backoff_s = 0.5;
    straggler_timeout_s = 5.0;
    quorum_frac = 0.5;
  }
