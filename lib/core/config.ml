(* Gist configuration knobs.  The defaults mirror the paper's setup:
   sigma starts at 2 (§3.2.1), doubles per AsT iteration, 4 hardware
   watchpoints per client (§3.2.3). *)

(* How data flow reaches the server: hardware watchpoints (the paper's
   prototype) or PTWRITE-style data packets in the PT stream (the §6
   hardware proposal: no debug-register budget, no cooperative
   rotation, but data only while tracing is on). *)
type data_source = Watchpoints | Ptwrite

type t = {
  sigma0 : int;              (* initial tracked slice size *)
  max_iterations : int;      (* AsT iterations before giving up *)
  fail_quota : int;          (* matching failures to gather per iteration *)
  succ_quota : int;          (* successful runs to gather per iteration *)
  max_clients_per_iter : int;
  wp_capacity : int;         (* hardware watchpoints per client *)
  enable_cf : bool;          (* control-flow tracking (Intel PT) *)
  enable_df : bool;          (* data-flow tracking (watchpoints) *)
  preempt_prob : float;      (* production scheduling nondeterminism *)
  max_steps : int;           (* hang detector budget per run *)
  data_source : data_source; (* extension: Ptwrite replaces watchpoints *)
  range_predicates : bool;   (* extension: mine §6 range/inequality predicates *)
  redact_values : bool;      (* extension: hash string values leaving clients *)
  fault_rates : Faults.Fault.rates; (* injected fleet faults (zero = off) *)
  fault_seed : int;          (* fault-injection stream, independent of run seeds *)
  max_retries : int;         (* re-dispatches per client slot before quarantine *)
  retry_backoff_s : float;   (* base of the exponential retry backoff (simulated) *)
  straggler_timeout_s : float; (* give-up deadline per dispatch (simulated) *)
  quorum_frac : float;       (* valid-report fraction below which an iteration degrades *)
  early_exit : bool;         (* stop gathering once the top predictor separates *)
  separation_delta : float;  (* error rate of the separation confidence bound *)
  checkpoint_every : int;    (* evaluate the bound every N consumed slots *)
}

let default =
  {
    sigma0 = 2;
    max_iterations = 8;
    fail_quota = 1;
    succ_quota = 8;
    max_clients_per_iter = 600;
    wp_capacity = 4;
    enable_cf = true;
    enable_df = true;
    preempt_prob = 0.35;
    max_steps = 400_000;
    data_source = Watchpoints;
    range_predicates = false;
    redact_values = false;
    fault_rates = Faults.Fault.zero;
    fault_seed = 1;
    max_retries = 2;
    retry_backoff_s = 0.5;
    straggler_timeout_s = 5.0;
    quorum_frac = 0.5;
    early_exit = false;
    separation_delta = 0.05;
    checkpoint_every = 8;
  }

(* The adaptive production preset: identical to [default] except the
   sequential stopping rule is armed.  The exhaustive [default] stays
   the reference oracle (the CLI's [--no-early-exit]). *)
let adaptive = { default with early_exit = true }

(* ------------------------------------------------------------------ *)
(* Validation: reject nonsense knobs with a typed error at
   construction time (the same treatment [wp_capacity] got in
   [Server.wp_groups]) instead of hanging or dividing by zero deep in
   the AsT loop. *)

type error =
  | Bad_sigma0 of int               (* must be positive *)
  | Bad_max_clients_per_iter of int (* must be positive *)
  | Bad_quorum_frac of float        (* must be in (0, 1] *)
  | Bad_separation_delta of float   (* must be in (0, 1) *)
  | Bad_checkpoint_every of int     (* must be positive *)

exception Invalid of error

let error_to_string = function
  | Bad_sigma0 n -> Printf.sprintf "sigma0 must be positive (got %d)" n
  | Bad_max_clients_per_iter n ->
    Printf.sprintf "max_clients_per_iter must be positive (got %d)" n
  | Bad_quorum_frac f ->
    Printf.sprintf "quorum_frac must be in (0, 1] (got %g)" f
  | Bad_separation_delta f ->
    Printf.sprintf "separation_delta must be in (0, 1) (got %g)" f
  | Bad_checkpoint_every n ->
    Printf.sprintf "checkpoint_every must be positive (got %d)" n

let validate t =
  if t.sigma0 <= 0 then Error (Bad_sigma0 t.sigma0)
  else if t.max_clients_per_iter <= 0 then
    Error (Bad_max_clients_per_iter t.max_clients_per_iter)
  else if not (t.quorum_frac > 0.0 && t.quorum_frac <= 1.0) then
    Error (Bad_quorum_frac t.quorum_frac)
  else if not (t.separation_delta > 0.0 && t.separation_delta < 1.0) then
    Error (Bad_separation_delta t.separation_delta)
  else if t.checkpoint_every <= 0 then
    Error (Bad_checkpoint_every t.checkpoint_every)
  else Ok t

let check t =
  match validate t with Ok t -> t | Error e -> raise (Invalid e)
