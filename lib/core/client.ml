(* The Gist client: one production endpoint executing one run under the
   instrumentation plan the server shipped, then reporting back the
   decoded control-flow trace, watchpoint log, and outcome (paper
   Fig. 2, steps 2 and 4). *)

open Ir.Types

type report = {
  r_seed : int;
  r_outcome : Exec.Interp.outcome;
  r_signature : Exec.Failure.signature option;
  r_executed : (int * iid list) list; (* per thread, PT-decoded order *)
  r_branches : (iid * bool) list;     (* PT-decoded branch outcomes *)
  r_traps : Hw.Watchpoint.trap list;
  r_counters : Exec.Cost.t;
  r_overhead_pct : float;
  r_base_cycles : float;   (* un-instrumented work, cost-model cycles *)
  r_extra_cycles : float;  (* PT + watchpoint cycles added by Gist *)
  r_steps : int;
  r_pt_errors : (int * Hw.Pt.error) list; (* per-tid decode faults *)
}

let failing r = r.r_signature <> None

(* Privacy extension (paper §6: "quantify and anonymize the information
   Gist ships from production runs at user endpoints"): string values
   are replaced by a stable hash before leaving the client, so value
   predictors still discriminate but user data never does. *)
let redact_value (v : Exec.Value.t) =
  match v with
  | Exec.Value.VStr s ->
    Exec.Value.VStr (Printf.sprintf "str#%08x" (Hashtbl.hash s))
  | other -> other

let redact_trap (t : Hw.Watchpoint.trap) =
  { t with Hw.Watchpoint.w_value = redact_value t.w_value }

(* Run one client.  [wp_allowed] is this client's share of the
   cooperative watchpoint rotation.  [data_source] selects between the
   paper's hardware watchpoints and the §6 PTWRITE extension (data
   packets in the PT stream: no register budget, no rotation). *)
let run_one ?(wp_capacity = 4) ?(preempt_prob = 0.35) ?(max_steps = 400_000)
    ?(data_source = Config.Watchpoints) ?(redact = false) ?tamper
    ~(plan : Instrument.Plan.t) ~wp_allowed program
    (w : Exec.Interp.workload) : report =
  let counters = Exec.Cost.create () in
  let pt = Hw.Pt.create counters in
  let wp = Hw.Watchpoint.create ~capacity:wp_capacity counters in
  let data_via_pt = data_source = Config.Ptwrite in
  let wp_allowed = if data_via_pt then [] else wp_allowed in
  let hooks =
    Instrument.Runtime.hooks ~data_via_pt ~plan ~pt ~wp ~wp_allowed
  in
  let result =
    Exec.Interp.run ~hooks ~counters ~max_steps ~preempt_prob program w
  in
  Hw.Pt.finish pt;
  (* Each stream leaves the recorder as ring *bytes* ([Hw.Pt.wire_of])
     and is decoded back through the byte codec before the control-flow
     walk — the same path a real client takes from its PT ring pages.
     The fault layer's [tamper] hook damages those bytes (in-ring harm,
     before the report is sealed); a damaged ring yields its clean
     decoded prefix plus a typed error the server validates against.
     An [Empty_stream] from the walk over a *well-formed* empty ring is
     benign (the thread simply never enabled tracing — every thread
     gets a stream via the runtime hooks); only a ring whose bytes were
     dropped entirely books the error. *)
  let decoded, pt_errors =
    List.fold_left
      (fun (ds, es) tid ->
        let bytes = Hw.Pt.wire_of pt tid in
        let bytes =
          match tamper with None -> bytes | Some f -> f ~tid bytes
        in
        let packets, wire_err = Hw.Pt.Wire.decode bytes in
        let d, walk_err = Hw.Pt.decode_checked program packets in
        let err =
          match (wire_err, walk_err) with
          | Some e, _ -> Some e (* byte-level damage wins: it came first *)
          | None, Some Hw.Pt.Empty_stream -> None
          | None, e -> e
        in
        ( (tid, d) :: ds,
          match err with None -> es | Some e -> (tid, e) :: es ))
      ([], []) (Hw.Pt.all_tids pt)
  in
  let decoded = List.rev decoded in
  let pt_errors = List.rev pt_errors in
  let signature =
    match result.outcome with
    | Exec.Interp.Failed rep -> Some (Exec.Failure.signature rep)
    | Exec.Interp.Success -> None
  in
  (* PT truncation at a crash drops the failing statement's final
     instance (nothing after the last packet is decodable); the failure
     report pins it down, so append it to the failing thread's sequence
     -- unconditionally: earlier successful executions of the same
     statement may already appear, but the *crash instance* is the one
     the sketch must order. *)
  let executed =
    List.map (fun (tid, (d : Hw.Pt.decoded)) -> (tid, d.d_iids)) decoded
  in
  let executed =
    match result.outcome with
    | Exec.Interp.Failed rep ->
      let patched = ref false in
      let l =
        List.map
          (fun (tid, iids) ->
            if tid = rep.tid then begin
              patched := true;
              (tid, iids @ [ rep.pc ])
            end
            else (tid, iids))
          executed
      in
      if !patched then l else (rep.tid, [ rep.pc ]) :: l
    | Exec.Interp.Success -> executed
  in
  let branches =
    List.concat_map (fun (_, (d : Hw.Pt.decoded)) -> d.d_branches) decoded
  in
  let traps =
    if data_via_pt then
      (* PTWRITE mode: data arrives as timestamped packets inside the
         per-thread streams; TSC gives the cross-thread total order the
         watchpoint unit used to provide. *)
      List.concat_map
        (fun (tid, (d : Hw.Pt.decoded)) ->
          List.map
            (fun (w : Hw.Pt.ptw) ->
              Hw.Watchpoint.
                {
                  w_seq = w.Hw.Pt.p_tsc;
                  w_tid = tid;
                  w_iid = w.Hw.Pt.p_iid;
                  w_addr = w.Hw.Pt.p_addr;
                  w_rw =
                    (if w.Hw.Pt.p_write then Exec.Interp.Write
                     else Exec.Interp.Read);
                  w_value = w.Hw.Pt.p_value;
                })
            d.d_data)
        decoded
      |> List.sort (fun a b ->
          compare a.Hw.Watchpoint.w_seq b.Hw.Watchpoint.w_seq)
    else Hw.Watchpoint.traps wp
  in
  let traps = if redact then List.map redact_trap traps else traps in
  {
    r_seed = w.seed;
    r_outcome = result.outcome;
    r_signature = signature;
    r_executed = executed;
    r_branches = branches;
    r_traps = traps;
    r_counters = counters;
    r_overhead_pct = Exec.Cost.gist_overhead_percent counters;
    r_base_cycles = Exec.Cost.base_cycles counters;
    r_extra_cycles =
      Exec.Cost.pt_extra_cycles counters +. Exec.Cost.wp_extra_cycles counters;
    r_steps = result.steps;
    r_pt_errors = pt_errors;
  }

(* All statements this run is known to have executed. *)
let executed_set r =
  List.concat_map snd r.r_executed |> List.sort_uniq compare
