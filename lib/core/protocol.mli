(** The fleet wire protocol: a versioned, checksummed envelope around
    each client report, validated by the server before anything reaches
    aggregation or predictor ranking.

    Layers, checked in order: protocol version; an explicit full-walk
    checksum over every report field (transit integrity); the plan
    digest the client echoes back (freshness — a report built under a
    previous iteration's plan is useless because its tracked set and
    watchpoint rotation no longer match); the client-side PT decoder's
    typed damage flags (structure); and statement-id range checks
    (semantics). *)

(** Current protocol version. *)
val version : int

type envelope = {
  e_version : int;
  e_client : int;   (** fleet slot that produced the report *)
  e_plan_id : int;  (** digest of the plan the client ran under *)
  e_checksum : int; (** full-walk digest of [e_report] *)
  e_report : Client.report;
}

(** Why a report was refused.  A rejected report never reaches
    predictor ranking. *)
type reject =
  | Bad_version of int
  | Bad_checksum
  | Stale_plan of { expected : int; got : int }
  | Damaged_trace of string  (** client-side PT decode fault *)
  | Bad_payload of string    (** statement id outside the program *)

(** Stable key for per-reason counters ("bad-checksum", ...). *)
val reject_label : reject -> string

val reject_to_string : reject -> string

(** Explicit digest over every report field ([Hashtbl.hash] truncates
    its traversal and would miss tail tampering). *)
val checksum : Client.report -> int

val seal : client:int -> plan_id:int -> Client.report -> envelope

(** [validate ~n_instrs ~plan_id env] runs every validation layer;
    [Error] carries the first failure.  [n_instrs] is the exclusive
    upper bound on valid statement ids (iids are 1-based, so pass
    max iid + 1). *)
val validate :
  n_instrs:int -> plan_id:int -> envelope -> (Client.report, reject) result
