(** The fleet wire protocol: a versioned, checksummed envelope around
    each client report, validated by the server before anything reaches
    aggregation or predictor ranking.

    Layers, checked in order: protocol version; an explicit full-walk
    checksum over every report field (transit integrity); the plan
    digest the client echoes back (freshness — a report built under a
    previous iteration's plan is useless because its tracked set and
    watchpoint rotation no longer match); the client-side PT decoder's
    typed damage flags (structure); and statement-id range checks
    (semantics). *)

(** Current protocol version (3: the multi-bug service era — the
    envelope is keyed by diagnosis session as well as fleet slot, so a
    server multiplexing many concurrent bugs rejects mis-routed
    reports instead of silently folding them into another bug's
    statistics). *)
val version : int

type envelope = {
  e_version : int;
  e_client : int;   (** fleet slot that produced the report *)
  e_session : int;  (** diagnosis session (bug) the report belongs to *)
  e_plan_id : int;  (** digest of the plan the client ran under *)
  e_checksum : int; (** full-walk digest of [e_report] *)
  e_report : Client.report;
}

(** Why a report was refused.  A rejected report never reaches
    predictor ranking. *)
type reject =
  | Bad_version of int
  | Bad_checksum
  | Wrong_session of { expected : int; got : int }
      (** routed to the wrong diagnosis session — checked after
          integrity, before freshness *)
  | Stale_plan of { expected : int; got : int }
  | Dropped_trace of int
      (** a thread's PT ring arrived with no bytes at all — a
          transport drop, deliberately distinct from [Damaged_trace]
          so fleet-health counters don't book drops as corruption *)
  | Damaged_trace of string  (** client-side PT decode fault *)
  | Bad_payload of string    (** statement id outside the program *)

(** Stable key for per-reason counters ("bad-checksum", ...). *)
val reject_label : reject -> string

val reject_to_string : reject -> string

(** Explicit digest over every report field ([Hashtbl.hash] truncates
    its traversal and would miss tail tampering). *)
val checksum : Client.report -> int

(** [session] defaults to 0 — the id single-bug drivers use, so
    one-shot call sites need not change. *)
val seal : ?session:int -> client:int -> plan_id:int -> Client.report -> envelope

(** [validate ~n_instrs ~plan_id env] runs every validation layer;
    [Error] carries the first failure.  [n_instrs] is the exclusive
    upper bound on valid statement ids (iids are 1-based, so pass
    max iid + 1).  [session] (default 0) is the id of the diagnosis
    session doing the validating. *)
val validate :
  ?session:int ->
  n_instrs:int -> plan_id:int -> envelope -> (Client.report, reject) result

(** The byte form an envelope takes on the wire: varint [version] and
    [client], a fixed 4-byte LE [session] word (fixed-width so the
    envelope's length — and therefore which byte a deterministic
    in-transit damage model flips — never depends on the session id),
    a varint [plan_id], an 8-byte LE digest, then the varint-packed
    report payload with statement ids delta-encoded.

    Payload field order mirrors {!validate}'s reject priority
    ([r_pt_errors] lead, then executed / branches / traps), so
    {!Encode.ingest} classifies rejects with one allocation-free
    forward scan and materialises only accepted reports. *)
module Encode : sig
  (** Reusable encode scratch; give each [Parallel.Pool] worker its
      own.  Buffers grow to the fleet's largest report and stay
      there — steady-state encoding allocates only the returned
      string. *)
  type arena

  val arena : unit -> arena

  (** [encode a ~client ~plan_id report] seals a report into its wire
      bytes (header, digest, payload).  [session] defaults to 0. *)
  val encode :
    arena -> ?session:int -> client:int -> plan_id:int -> Client.report ->
    string

  (** [check ~n_instrs ~plan_id bytes] runs every validation layer of
      {!ingest} without materialising the report: the allocation-free
      integrity verdict a relay (or a server deciding whether a
      delivery is worth decoding) pays per envelope.  Never raises. *)
  val check :
    ?session:int ->
    n_instrs:int -> plan_id:int -> string -> (unit, reject) result

  (** [ingest ~n_instrs ~plan_id bytes] is {!validate} over the wire
      form: same layers, same priority, one forward scan; the report
      is decoded only once every layer has passed.  Never raises —
      arbitrary bytes yield a [reject]. *)
  val ingest :
    ?session:int ->
    n_instrs:int -> plan_id:int -> string -> (Client.report, reject) result

  (** {2 Codec primitives reused by the crash-only session snapshots}

      The report payload codec and the envelope digest, exposed so the
      {!Gist.Server.Session} snapshot / journal machinery serializes
      retained reports and checksums its own records with exactly the
      wire protocol's encoding — one binary dialect in the tree, not
      two. *)

  (** Append one report's payload encoding to the buffer (the bytes
      {!encode} seals inside an envelope). *)
  val put_report : Buffer.t -> Client.report -> unit

  (** Decode one report payload at the reader's cursor.
      @raise Hw.Wirebuf.Short on truncated bytes. *)
  val get_report : Hw.Wirebuf.reader -> Client.report

  (** [digest ?pos ~client ~session ~plan_id payload]: the 62-bit
      envelope digest over [payload.[pos..]] with the header fields
      mixed in — the checksum every envelope carries, reusable for any
      record that wants the same integrity guarantee. *)
  val digest :
    ?pos:int -> client:int -> session:int -> plan_id:int -> string -> int

  (** Re-read the digest field of an envelope {!encode} produced,
      without walking the payload.
      @raise Hw.Wirebuf.Short on bytes shorter than a header. *)
  val wire_digest : string -> int
end
