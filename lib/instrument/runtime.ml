(* Assemble interpreter hooks that interpret an instrumentation plan:
   toggling the PT recorder, arming watchpoints at access pre-points
   (evaluating the address the upcoming instruction will touch), and
   routing memory accesses through the watchpoint unit. *)

open Ir.Types

(* Address the instruction at this pre-point is about to access. *)
let addr_of_access (ctx : Exec.Interp.pre_ctx) =
  match ctx.ctx_instr.kind with
  | Load (_, base, off) | Store (base, off, _) -> (
    match base with
    | Reg r -> (
      match ctx.read_reg r with
      | Some (Exec.Value.VPtr a) -> Some (a + off)
      | _ -> None)
    | _ -> None)
  | Load_global (_, g) | Store_global (g, _) -> ctx.global_addr g
  | _ -> None

(* [wp_allowed] restricts which plan watchpoint targets this particular
   client arms: the cooperative rotation of §3.2.3 when the tracked
   slice touches more addresses than the 4 debug registers. *)
let hooks ~data_via_pt ~(plan : Plan.t) ~(pt : Hw.Pt.recorder)
    ~(wp : Hw.Watchpoint.t) ~wp_allowed =
  let h = Exec.Interp.no_hooks () in
  h.pre_instr <-
    (fun ctx ->
      let iid = ctx.ctx_instr.iid in
      List.iter
        (fun (a : Plan.action) ->
          match a with
          | Pt_stop -> Hw.Pt.disable pt ~tid:ctx.ctx_tid ~pc:iid
          | Pt_start -> Hw.Pt.enable pt ~tid:ctx.ctx_tid ~pc:iid
          | Wp_arm ->
            if List.mem iid wp_allowed then (
              match addr_of_access ctx with
              | Some addr -> ignore (Hw.Watchpoint.arm wp addr)
              | None -> ()))
        (Plan.actions_at plan iid);
      Hw.Pt.note_pc pt ~tid:ctx.ctx_tid ~pc:iid);
  h.mem_access <-
    (fun ~tid ~instr ~addr ~rw ~value ->
      (* PTWRITE extension: instrumented accesses emit data packets in
         the PT stream instead of (or alongside) trapping a watchpoint;
         no debug-register budget, no cooperative rotation. *)
      if data_via_pt && List.mem instr.iid plan.Plan.wp_targets then
        Hw.Pt.on_data pt ~tid ~iid:instr.iid ~addr ~rw ~value;
      Hw.Watchpoint.on_access wp ~tid ~iid:instr.iid ~addr ~rw ~value);
  h.branch <- (fun ~tid ~instr:_ ~taken -> Hw.Pt.on_branch pt ~tid ~taken);
  h.ret <- (fun ~tid ~instr:_ ~resume -> Hw.Pt.on_ret pt ~tid ~resume);
  h

(* Full-tracing hooks (no plan): PT enabled for every thread from its
   first instruction -- the Fig. 13 "Intel PT full tracing" setup. *)
let full_tracing_hooks ~(pt : Hw.Pt.recorder) =
  let h = Exec.Interp.no_hooks () in
  h.pre_instr <-
    (fun ctx ->
      if not (Hw.Pt.enabled pt ctx.ctx_tid) then
        Hw.Pt.enable pt ~tid:ctx.ctx_tid ~pc:ctx.ctx_instr.iid;
      Hw.Pt.note_pc pt ~tid:ctx.ctx_tid ~pc:ctx.ctx_instr.iid);
  h.branch <- (fun ~tid ~instr:_ ~taken -> Hw.Pt.on_branch pt ~tid ~taken);
  h.ret <- (fun ~tid ~instr:_ ~resume -> Hw.Pt.on_ret pt ~tid ~resume);
  h
