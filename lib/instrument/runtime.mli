(** Interpreter hooks that execute an instrumentation plan: toggling
    the PT recorder, arming watchpoints at access pre-points, and
    routing shared accesses through the watchpoint unit. *)

(** Address the instruction at this pre-point is about to access, when
    resolvable (its base register holds a pointer / the global exists). *)
val addr_of_access : Exec.Interp.pre_ctx -> int option

(** [hooks ~plan ~pt ~wp ~wp_allowed] interprets [plan].  [wp_allowed]
    restricts which watchpoint targets this client arms — the
    cooperative rotation of §3.2.3 when the tracked slice touches more
    addresses than the debug-register budget.  With [data_via_pt],
    every tracked memory access additionally emits a PTWRITE data
    packet while traced — the §6 hardware extension that makes
    watchpoints unnecessary (pass an empty [wp_allowed] to disable them
    entirely). *)
val hooks :
  data_via_pt:bool ->
  plan:Plan.t ->
  pt:Hw.Pt.recorder ->
  wp:Hw.Watchpoint.t ->
  wp_allowed:Ir.Types.iid list ->
  Exec.Interp.hooks

(** Full-tracing hooks (no plan): PT enabled for every thread from its
    first instruction — the Fig. 13 "Intel PT full tracing" setup. *)
val full_tracing_hooks : pt:Hw.Pt.recorder -> Exec.Interp.hooks
