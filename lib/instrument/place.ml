(* Instrumentation placement (paper §3.2.2-§3.2.3, Fig. 4).

   For each tracked statement [s] in basic block [bb]:
   - Intel PT tracing *starts* at the terminator of every predecessor
     of [bb] (capturing the branch into [bb]) and at the head of [bb]
     itself (covering function entry).  The start is elided when the
     previously tracked statement strictly dominates [s]: tracing is
     then already on (the sdom optimisation of Fig. 4 box I/II).
   - Tracing *stops* right after [s] and before [s]'s immediate
     postdominator -- unless [s] strictly dominates the next tracked
     statement, in which case tracing must continue.
   - A hardware watchpoint is armed at the pre-point of each tracked
     memory access: after the access's immediate dominator and before
     the access (Fig. 4.(b)). *)

open Ir.Types

let is_wp_target (i : instr) =
  match i.kind with
  | Load _ | Store _ | Load_global _ | Store_global _ -> true
  | _ -> false

(* Pre-point helpers, all expressed as iids. *)
let block_head (cfg : Analysis.Cfg.t) b = (Analysis.Cfg.block cfg b).instrs.(0).iid

let block_terminator (cfg : Analysis.Cfg.t) b =
  let bl = Analysis.Cfg.block cfg b in
  bl.instrs.(Array.length bl.instrs - 1).iid

let compute ?(enable_cf = true) ?(enable_df = true) program tracked : Plan.t =
  let plan = Plan.{ (empty ()) with tracked } in
  let icfg = Analysis.Cache.icfg program in
  (* Group tracked statements per function, in textual order (iids are
     assigned in textual order). *)
  let by_func = Hashtbl.create 8 in
  List.iter
    (fun iid ->
      let pos = Ir.Program.position_of program iid in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_func pos.p_func) in
      Hashtbl.replace by_func pos.p_func (iid :: cur))
    tracked;
  if enable_cf then
    Hashtbl.iter
      (fun fname iids ->
        let cfg = Analysis.Icfg.cfg_of icfg fname in
        let sorted = List.sort compare iids in
        let pos_of iid = Option.get (Analysis.Cfg.find_iid cfg iid) in
        let rec walk prev = function
          | [] -> ()
          | iid :: rest ->
            ignore prev;
            let (bb, k) = pos_of iid in
            (* Start tracking at each predecessor's terminator (to
               capture the incoming branch) and at the head of the
               statement's own block.  Unlike the paper's sdom elision
               we always place the (idempotent) starts: a stop planted
               for an earlier statement on a back edge may have cut the
               traced interval the elision would rely on. *)
            List.iter
              (fun p -> Plan.add_action plan (block_terminator cfg p) Pt_start)
              (Analysis.Cfg.preds cfg bb);
            Plan.add_action plan (block_head cfg bb) Pt_start;
            (* Guard: a call between the block head and this statement
               may carry a stop inside the callee; re-enable at the
               statement itself so it is always traced. *)
            Plan.add_action plan iid Pt_start;
            (* Stop after [iid] unless it strictly dominates the next
               tracked statement. *)
            let continues =
              match rest with
              | next :: _ ->
                Analysis.Cfg.instr_strictly_dominates cfg (bb, k) (pos_of next)
              | [] -> false
            in
            (* Stop right after the statement and before its immediate
               postdominator (Fig. 4 box II).  A source statement spans
               several IR instructions, so the stop point is the first
               following instruction on a *different* source line; when
               the statement ends its block, tracing stops on entry to
               each successor block instead. *)
            if not continues then begin
              let bl = Analysis.Cfg.block cfg bb in
              let line = bl.instrs.(k).loc in
              let rec next_off j =
                if j >= Array.length bl.instrs then None
                else if bl.instrs.(j).loc <> line then Some bl.instrs.(j).iid
                else next_off (j + 1)
              in
              match next_off (k + 1) with
              | Some stop_iid -> Plan.add_action plan stop_iid Pt_stop
              | None ->
                List.iter
                  (fun s -> Plan.add_action plan (block_head cfg s) Pt_stop)
                  (Analysis.Cfg.succs cfg bb)
            end;
            walk (Some iid) rest
        in
        walk None sorted)
      by_func;
  (* Peephole: a loop whose body holds tracked statements gets a
     Pt_stop at the loop-header entry and a Pt_start at the loop-header
     terminator -- a PGD/PGE pair a couple of instructions apart on
     every iteration.  Dropping such a pair keeps tracing on across the
     back edge: strictly more trace (a few TNT bits), far fewer toggle
     events.  Dropping a stop+start pair is always sound -- the traced
     region only grows. *)
  if enable_cf then
    Hashtbl.iter
      (fun fname _ ->
        let cfg = Analysis.Icfg.cfg_of icfg fname in
        for b = 0 to Analysis.Cfg.n_blocks cfg - 1 do
          let bl = Analysis.Cfg.block cfg b in
          let n = Array.length bl.instrs in
          if n <= 4 then begin
            let head = bl.instrs.(0).iid and term = bl.instrs.(n - 1).iid in
            let head_acts = Plan.actions_at plan head in
            let term_acts = Plan.actions_at plan term in
            (* Only the stop may be dropped: a start is needed on paths
               that arrive with tracing off, and enabling is idempotent
               anyway. *)
            if List.mem Plan.Pt_stop head_acts && List.mem Plan.Pt_start term_acts
            then
              Hashtbl.replace plan.Plan.actions head
                (List.filter (fun a -> a <> Plan.Pt_stop) head_acts)
          end
        done)
      by_func;
  (* Second peephole, instruction-level: a Pt_stop from which some
     Pt_start is reachable within a few instructions buys almost no
     trace reduction but costs a PGD/PGE toggle pair on every passage
     (typical shape: tracked statements inside a hot loop).  Dropping
     the stop is sound -- the traced region only grows -- and turns
     toggle churn into a handful of TNT bits. *)
  if enable_cf then begin
    let near_start_horizon = 8 in
    let stops_to_drop = ref [] in
    Hashtbl.iter
      (fun stop_iid acts ->
        if List.mem Plan.Pt_stop acts then begin
          let pos = Ir.Program.position_of program stop_iid in
          let cfg = Analysis.Icfg.cfg_of icfg pos.p_func in
          let succs_of (b, k) =
            let bl = Analysis.Cfg.block cfg b in
            if k + 1 < Array.length bl.instrs then [ (b, k + 1) ]
            else List.map (fun s -> (s, 0)) (Analysis.Cfg.succs cfg b)
          in
          let has_start (b, k) =
            let i = (Analysis.Cfg.block cfg b).instrs.(k) in
            List.mem Plan.Pt_start (Plan.actions_at plan i.iid)
          in
          (* BFS over intra-procedural instruction successors. *)
          let seen = Hashtbl.create 16 in
          let found = ref (List.mem Plan.Pt_start acts) in
          let rec bfs frontier depth =
            if depth < near_start_horizon && frontier <> [] && not !found then begin
              let next =
                List.concat_map
                  (fun p ->
                    if Hashtbl.mem seen p then []
                    else begin
                      Hashtbl.replace seen p ();
                      if has_start p then begin
                        found := true;
                        []
                      end
                      else succs_of p
                    end)
                  frontier
              in
              bfs next (depth + 1)
            end
          in
          (match Analysis.Cfg.find_iid cfg stop_iid with
           | Some p -> if not !found then bfs (succs_of p) 0
           | None -> ());
          if !found then stops_to_drop := stop_iid :: !stops_to_drop
        end)
      plan.Plan.actions;
    List.iter
      (fun iid ->
        Hashtbl.replace plan.Plan.actions iid
          (List.filter (fun a -> a <> Plan.Pt_stop) (Plan.actions_at plan iid)))
      !stops_to_drop
  end;
  let wp_targets =
    if enable_df then
      List.filter (fun iid -> is_wp_target (Ir.Program.instr_at program iid))
        tracked
      |> List.sort_uniq compare
    else []
  in
  List.iter (fun iid -> Plan.add_action plan iid Plan.Wp_arm) wp_targets;
  Plan.{ plan with wp_targets }
