(** Instrumentation placement (paper §3.2.2-§3.2.3, Fig. 4).

    For each tracked statement: Intel PT starts at every predecessor
    block's terminator (capturing the incoming branch), at the
    statement's block head, and at the statement itself (a guard for
    stops planted inside callees); it stops right after the statement —
    at the next instruction on a different source line, or on entry to
    each successor block — unless the statement strictly dominates the
    next tracked one.  A watchpoint is armed at the pre-point of each
    tracked memory access (after its immediate dominator, before the
    access).

    Two toggle-churn peepholes then drop [Pt_stop]s that a nearby
    [Pt_start] would immediately undo (loop back edges, short gaps):
    dropping a stop only grows the traced region, so it is always
    sound. *)

open Ir.Types

(** Loads and stores (heap or global): the watchpoint-eligible
    statements. *)
val is_wp_target : instr -> bool

(** [compute ?enable_cf ?enable_df program tracked] builds the plan for
    monitoring [tracked].  [enable_cf]/[enable_df] (default true) gate
    the control-flow (PT) and data-flow (watchpoint) parts — the
    Fig. 10 ablations. *)
val compute :
  ?enable_cf:bool -> ?enable_df:bool -> program -> iid list -> Plan.t
