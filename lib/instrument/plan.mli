(** An instrumentation plan: the "binary patch" Gist ships to
    production clients (the paper's prototype uses bsdiff patches, §4;
    here a plan is interpreted by {!Runtime}).  Actions fire at the
    pre-point of an instruction, just before it executes. *)

open Ir.Types

type action =
  | Pt_stop   (** disable Intel PT (applied before a co-located start) *)
  | Pt_start  (** enable Intel PT *)
  | Wp_arm    (** arm a watchpoint on the address this access will touch *)

type t = {
  actions : (iid, action list) Hashtbl.t;
  tracked : iid list;    (** the slice portion being monitored *)
  wp_targets : iid list; (** tracked memory accesses eligible for watchpoints *)
}

val empty : unit -> t

(** Idempotent; keeps stops ordered before starts at a shared point. *)
val add_action : t -> iid -> action -> unit

val actions_at : t -> iid -> action list

(** Total number of patch points (for reporting). *)
val n_actions : t -> int

(** A stable content digest of the plan (patch points, tracked set,
    watchpoint targets).  Clients echo it in their report envelope so
    the server can reject reports produced under a stale plan. *)
val id : t -> int

val pp : Format.formatter -> t -> unit
