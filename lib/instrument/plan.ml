(* An instrumentation plan: the "binary patch" Gist ships to production
   clients (paper §4 uses bsdiff patches; here a plan is interpreted by
   the runtime hooks in [Runtime]).  Actions fire at the pre-point of
   an instruction, i.e. just before it executes. *)

open Ir.Types

type action =
  | Pt_stop   (* disable Intel PT tracing (applied before Pt_start) *)
  | Pt_start  (* enable Intel PT tracing *)
  | Wp_arm    (* arm a hardware watchpoint on the address this access will touch *)

type t = {
  actions : (iid, action list) Hashtbl.t;
  tracked : iid list;     (* the slice portion being monitored *)
  wp_targets : iid list;  (* tracked memory accesses eligible for watchpoints *)
}

let empty () = { actions = Hashtbl.create 8; tracked = []; wp_targets = [] }

let add_action t iid a =
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.actions iid) in
  if not (List.mem a cur) then
    (* Keep stops before starts so a shared point flushes then restarts. *)
    let next = List.sort compare (a :: cur) in
    Hashtbl.replace t.actions iid next

let actions_at t iid = Option.value ~default:[] (Hashtbl.find_opt t.actions iid)

let n_actions t = Hashtbl.fold (fun _ l acc -> acc + List.length l) t.actions 0

let pp ppf t =
  Fmt.pf ppf "@[<v>plan: tracked=[%a] wp=[%a]@,"
    Fmt.(list ~sep:(any " ") int) t.tracked
    Fmt.(list ~sep:(any " ") int) t.wp_targets;
  Hashtbl.fold (fun iid acts acc -> (iid, acts) :: acc) t.actions []
  |> List.sort compare
  |> List.iter (fun (iid, acts) ->
      Fmt.pf ppf "  @%d: %a@," iid
        Fmt.(list ~sep:(any ",") (fun ppf -> function
           | Pt_stop -> Fmt.string ppf "pt-stop"
           | Pt_start -> Fmt.string ppf "pt-start"
           | Wp_arm -> Fmt.string ppf "wp-arm"))
        acts);
  Fmt.pf ppf "@]"
