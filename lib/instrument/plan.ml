(* An instrumentation plan: the "binary patch" Gist ships to production
   clients (paper §4 uses bsdiff patches; here a plan is interpreted by
   the runtime hooks in [Runtime]).  Actions fire at the pre-point of
   an instruction, i.e. just before it executes. *)

open Ir.Types

type action =
  | Pt_stop   (* disable Intel PT tracing (applied before Pt_start) *)
  | Pt_start  (* enable Intel PT tracing *)
  | Wp_arm    (* arm a hardware watchpoint on the address this access will touch *)

type t = {
  actions : (iid, action list) Hashtbl.t;
  tracked : iid list;     (* the slice portion being monitored *)
  wp_targets : iid list;  (* tracked memory accesses eligible for watchpoints *)
}

let empty () = { actions = Hashtbl.create 8; tracked = []; wp_targets = [] }

let add_action t iid a =
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.actions iid) in
  if not (List.mem a cur) then
    (* Keep stops before starts so a shared point flushes then restarts. *)
    let next = List.sort compare (a :: cur) in
    Hashtbl.replace t.actions iid next

let actions_at t iid = Option.value ~default:[] (Hashtbl.find_opt t.actions iid)

let n_actions t = Hashtbl.fold (fun _ l acc -> acc + List.length l) t.actions 0

(* A stable content digest (splitmix64-style avalanche fold over the
   sorted patch points, tracked set and watchpoint targets).  Clients
   echo it in their report envelope; the server rejects reports built
   under a plan from a previous iteration. *)
let id t =
  let mix h x =
    let open Int64 in
    let z = add (of_int h) (mul (of_int ((2 * x) + 1)) 0x9E3779B97F4A7C15L) in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = logxor z (shift_right_logical z 31) in
    to_int (logand z 0x3FFFFFFFFFFFFFFFL)
  in
  let action_tag = function Pt_stop -> 1 | Pt_start -> 2 | Wp_arm -> 3 in
  let h = List.fold_left mix 17 t.tracked in
  let h = List.fold_left mix (mix h 0x51) t.wp_targets in
  Hashtbl.fold (fun iid acts acc -> (iid, acts) :: acc) t.actions []
  |> List.sort compare
  |> List.fold_left
       (fun h (iid, acts) ->
         List.fold_left (fun h a -> mix h (action_tag a)) (mix h iid) acts)
       (mix h 0x52)

let pp ppf t =
  Fmt.pf ppf "@[<v>plan: tracked=[%a] wp=[%a]@,"
    Fmt.(list ~sep:(any " ") int) t.tracked
    Fmt.(list ~sep:(any " ") int) t.wp_targets;
  Hashtbl.fold (fun iid acts acc -> (iid, acts) :: acc) t.actions []
  |> List.sort compare
  |> List.iter (fun (iid, acts) ->
      Fmt.pf ppf "  @%d: %a@," iid
        Fmt.(list ~sep:(any ",") (fun ppf -> function
           | Pt_stop -> Fmt.string ppf "pt-stop"
           | Pt_start -> Fmt.string ppf "pt-start"
           | Wp_arm -> Fmt.string ppf "wp-arm"))
        acts);
  Fmt.pf ppf "@]"
